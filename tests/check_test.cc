// Tests for odycheck: scenario synthesis, invariant oracles, the runner's
// determinism, and the shrinker (DESIGN.md §11).

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/check/fuzz_runner.h"
#include "src/check/fuzz_scenario.h"
#include "src/check/oracles.h"
#include "src/check/shrink.h"
#include "src/core/resource.h"
#include "src/core/viceroy.h"
#include "src/net/link.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"
#include "src/strategies/centralized.h"

namespace odyssey {
namespace {

// --- Scenario generation ---

TEST(FuzzScenarioTest, GenerationIsDeterministic) {
  const FuzzScenario a = GenerateScenario(42);
  const FuzzScenario b = GenerateScenario(42);
  EXPECT_EQ(a.ElementCount(), b.ElementCount());
  EXPECT_EQ(a.Describe(), b.Describe());
  const FuzzScenario c = GenerateScenario(43);
  EXPECT_NE(a.Describe(), c.Describe());
}

TEST(FuzzScenarioTest, GenerationHonorsDocumentedGuarantees) {
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    const FuzzScenario scenario = GenerateScenario(seed);
    EXPECT_GT(scenario.horizon, 0) << "seed " << seed;
    ASSERT_FALSE(scenario.segments.empty()) << "seed " << seed;
    EXPECT_GT(scenario.segments.back().bandwidth_bps, 0.0) << "seed " << seed;
    for (const FuzzSegment& segment : scenario.segments) {
      EXPECT_GT(segment.duration, 0) << "seed " << seed;
      EXPECT_GE(segment.bandwidth_bps, 0.0) << "seed " << seed;
    }
    ASSERT_FALSE(scenario.apps.empty()) << "seed " << seed;
    for (const FuzzApp& app : scenario.apps) {
      EXPECT_GE(app.start, 0) << "seed " << seed;
      EXPECT_LT(app.start, scenario.horizon) << "seed " << seed;
      for (const FuzzOp& op : app.ops) {
        EXPECT_GE(op.at, app.start) << "seed " << seed;
        EXPECT_LE(op.at, scenario.horizon) << "seed " << seed;
      }
    }
    EXPECT_EQ(scenario.seed, seed);
  }
}

TEST(FuzzScenarioTest, GenerationCoversEveryWarden) {
  std::set<FuzzWardenKind> seen;
  for (uint64_t seed = 1; seed <= 64 && seen.size() < kFuzzWardenKinds; ++seed) {
    for (const FuzzApp& app : GenerateScenario(seed).apps) {
      seen.insert(app.warden);
    }
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kFuzzWardenKinds));
}

TEST(FuzzScenarioTest, ElementCountSumsParts) {
  FuzzScenario scenario;
  scenario.segments = {FuzzSegment{kSecond, 1000.0, 0}};
  scenario.apps.push_back(FuzzApp{FuzzWardenKind::kWeb, 0, {FuzzOp{}, FuzzOp{}}});
  scenario.faults.push_back(FuzzFault{});
  EXPECT_EQ(scenario.ElementCount(), 5u);  // 1 segment + 1 app + 2 ops + 1 fault
}

TEST(FuzzScenarioTest, IntegrateCapacityBytesMatchesHandComputation) {
  FuzzScenario scenario;
  scenario.horizon = 20 * kSecond;
  scenario.segments = {FuzzSegment{10 * kSecond, 1000.0, 0},
                       FuzzSegment{5 * kSecond, 2000.0, 0}};
  EXPECT_DOUBLE_EQ(IntegrateCapacityBytes(scenario, 10 * kSecond), 10000.0);
  EXPECT_DOUBLE_EQ(IntegrateCapacityBytes(scenario, 15 * kSecond), 20000.0);
  // Past the end of the trace the final segment persists (Modulator
  // semantics), so the bound keeps growing at the last segment's rate.
  EXPECT_DOUBLE_EQ(IntegrateCapacityBytes(scenario, 20 * kSecond), 30000.0);
}

// --- The mobility dimension (ScenarioOptions::mobility) ---

TEST(FuzzScenarioTest, MobilityOffMatchesDefaultGenerator) {
  // The flag must be invisible when off: historical seeds keep producing
  // byte-identical scenarios.
  ScenarioOptions options;
  options.mobility = false;
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    EXPECT_EQ(GenerateScenario(seed, options).Describe(), GenerateScenario(seed).Describe())
        << "seed " << seed;
  }
}

TEST(FuzzScenarioTest, MobilityGenerationIsDeterministic) {
  ScenarioOptions options;
  options.mobility = true;
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    EXPECT_EQ(GenerateScenario(seed, options).Describe(),
              GenerateScenario(seed, options).Describe())
        << "seed " << seed;
  }
}

TEST(FuzzScenarioTest, MobilityScenariosHonorDrainGuarantee) {
  ScenarioOptions options;
  options.mobility = true;
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    const FuzzScenario scenario = GenerateScenario(seed, options);
    ASSERT_FALSE(scenario.segments.empty()) << "seed " << seed;
    EXPECT_GT(scenario.segments.back().bandwidth_bps, 0.0) << "seed " << seed;
    for (const FuzzSegment& segment : scenario.segments) {
      EXPECT_GT(segment.duration, 0) << "seed " << seed;
      EXPECT_GE(segment.bandwidth_bps, 0.0) << "seed " << seed;
    }
  }
}

TEST(FuzzScenarioTest, MobilityProducesShadowsTheHandRolledDrawCannot) {
  // The hand-rolled draw caps zero-bandwidth segments at 3 s; a dead zone
  // crossed at walking pace lasts far longer.  Finding one proves the
  // mobility waveforms actually reach the runner with shapes the original
  // generator never produced.
  ScenarioOptions options;
  options.mobility = true;
  bool long_shadow = false;
  for (uint64_t seed = 1; seed <= 200 && !long_shadow; ++seed) {
    for (const FuzzSegment& segment : GenerateScenario(seed, options).segments) {
      if (segment.bandwidth_bps == 0.0 && segment.duration > 3 * kSecond) {
        long_shadow = true;
        break;
      }
    }
  }
  EXPECT_TRUE(long_shadow) << "no mobility scenario produced a shadow beyond the 3 s cap";
}

TEST(FuzzRunnerTest, MobilitySeedsAreViolationFree) {
  ScenarioOptions options;
  options.mobility = true;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const FuzzRunResult result = RunFuzzScenario(GenerateScenario(seed, options));
    EXPECT_TRUE(result.ok()) << "seed " << seed << "\n"
                             << FormatViolations(result.violations);
  }
}

// --- Runner determinism and clean mainline ---

TEST(FuzzRunnerTest, RunIsDeterministic) {
  const FuzzScenario scenario = GenerateScenario(7);
  const FuzzRunResult a = RunFuzzScenario(scenario);
  const FuzzRunResult b = RunFuzzScenario(scenario);
  EXPECT_EQ(a.violation_count, b.violation_count);
  EXPECT_EQ(a.upcalls_delivered, b.upcalls_delivered);
  EXPECT_EQ(a.requests_granted, b.requests_granted);
  EXPECT_EQ(a.requests_denied, b.requests_denied);
  EXPECT_EQ(a.cancels_ok, b.cancels_ok);
  EXPECT_EQ(a.tsops_issued, b.tsops_issued);
  EXPECT_DOUBLE_EQ(a.bytes_delivered, b.bytes_delivered);
  EXPECT_EQ(FormatViolations(a.violations), FormatViolations(b.violations));
}

TEST(FuzzRunnerTest, MainlineSeedsAreViolationFree) {
  uint64_t total_upcalls = 0;
  uint64_t total_tsops = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const FuzzRunResult result = RunFuzzScenario(GenerateScenario(seed));
    EXPECT_TRUE(result.ok()) << "seed " << seed << "\n"
                             << FormatViolations(result.violations);
    total_upcalls += result.upcalls_delivered;
    total_tsops += result.tsops_issued;
  }
  // The workload must actually exercise the stack, not vacuously pass.
  EXPECT_GT(total_upcalls, 0u);
  EXPECT_GT(total_tsops, 0u);
}

TEST(FuzzRunnerTest, SelftestMutationMatchesCompileFlag) {
  FuzzRunOptions options;
  options.selftest_mutation = true;
  uint64_t violations = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    violations += RunFuzzScenario(GenerateScenario(seed), options).violation_count;
  }
  if (kFuzzSelftestCompiled) {
    EXPECT_GT(violations, 0u) << "seeded mutation compiled in but never detected";
  } else {
    EXPECT_EQ(violations, 0u) << "mutation must be inert without ODYSSEY_FUZZ_SELFTEST";
  }
}

TEST(FuzzRunnerTest, SelftestTiebreakMatchesCompileFlag) {
  FuzzRunOptions options;
  options.selftest_tiebreak = true;
  uint64_t violations = 0;
  uint64_t tie_pairs = 0;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const FuzzRunResult result = RunFuzzScenario(GenerateScenario(seed), options);
    violations += result.violation_count;
    tie_pairs += result.tie_pairs_audited;
  }
  EXPECT_GT(tie_pairs, 0u) << "scenarios stopped producing same-timestamp events";
  if (kFuzzSelftestCompiled) {
    EXPECT_GT(violations, 0u) << "LIFO tie mutation compiled in but never detected";
  } else {
    EXPECT_EQ(violations, 0u) << "mutation must be inert without ODYSSEY_FUZZ_SELFTEST";
  }
}

// --- Oracle unit tests against a minimal hand-driven rig ---

class OracleSetTest : public testing::Test {
 protected:
  OracleSetTest() {
    scenario_.horizon = 10 * kSecond;
    scenario_.segments = {FuzzSegment{10 * kSecond, 120.0 * 1024, 10 * kMillisecond}};
    auto strategy = std::make_unique<CentralizedStrategy>(&sim_);
    strategy_ = strategy.get();
    viceroy_ = std::make_unique<Viceroy>(&sim_, std::move(strategy));
    link_ = std::make_unique<Link>(&sim_, 120.0 * 1024, 10 * kMillisecond);
    oracles_ = std::make_unique<OracleSet>(scenario_, &sim_, viceroy_.get(), strategy_,
                                           link_.get());
  }

  std::vector<std::string> OracleNames() const {
    std::vector<std::string> names;
    for (const FuzzViolation& violation : oracles_->violations()) {
      names.push_back(violation.oracle);
    }
    return names;
  }

  FuzzScenario scenario_;
  Simulation sim_;
  CentralizedStrategy* strategy_ = nullptr;
  std::unique_ptr<Viceroy> viceroy_;
  std::unique_ptr<Link> link_;
  std::unique_ptr<OracleSet> oracles_;
};

TEST_F(OracleSetTest, CleanDeliverySequenceRecordsNothing) {
  oracles_->OnWindowRegistered(1, 10, 10.0, 20.0);
  oracles_->OnUpcallDelivered(1, 1, 10, ResourceId::kNetworkBandwidth, 25.0, 0);
  oracles_->OnWindowRegistered(1, 11, 10.0, 20.0);
  oracles_->OnUpcallDelivered(1, 2, 11, ResourceId::kNetworkBandwidth, 5.0, 0);
  EXPECT_EQ(oracles_->violation_count(), 0u) << FormatViolations(oracles_->violations());
}

TEST_F(OracleSetTest, DetectsDuplicateDelivery) {
  oracles_->OnWindowRegistered(1, 10, 10.0, 20.0);
  oracles_->OnUpcallDelivered(1, 1, 10, ResourceId::kNetworkBandwidth, 25.0, 0);
  oracles_->OnUpcallDelivered(1, 1, 10, ResourceId::kNetworkBandwidth, 25.0, 0);
  const std::vector<std::string> names = OracleNames();
  ASSERT_FALSE(names.empty());
  EXPECT_NE(std::find(names.begin(), names.end(), "upcall-duplicate"), names.end())
      << FormatViolations(oracles_->violations());
}

TEST_F(OracleSetTest, DetectsLostDelivery) {
  oracles_->OnWindowRegistered(1, 10, 10.0, 20.0);
  oracles_->OnUpcallDelivered(1, 2, 10, ResourceId::kNetworkBandwidth, 25.0, 0);
  const std::vector<std::string> names = OracleNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "upcall-lost"), names.end())
      << FormatViolations(oracles_->violations());
}

TEST_F(OracleSetTest, DetectsDeliveryInsideWindow) {
  oracles_->OnWindowRegistered(1, 10, 10.0, 20.0);
  oracles_->OnUpcallDelivered(1, 1, 10, ResourceId::kNetworkBandwidth, 15.0, 0);
  const std::vector<std::string> names = OracleNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "upcall-window"), names.end())
      << FormatViolations(oracles_->violations());
}

TEST_F(OracleSetTest, DetectsDeliveryAfterCancel) {
  oracles_->OnWindowRegistered(1, 10, 10.0, 20.0);
  oracles_->OnWindowCancelled(10);
  oracles_->OnUpcallDelivered(1, 1, 10, ResourceId::kNetworkBandwidth, 25.0, 0);
  const std::vector<std::string> names = OracleNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "upcall-after-cancel"), names.end())
      << FormatViolations(oracles_->violations());
}

TEST_F(OracleSetTest, DetectsUnknownRequest) {
  oracles_->OnUpcallDelivered(1, 1, 999, ResourceId::kNetworkBandwidth, 25.0, 0);
  const std::vector<std::string> names = OracleNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "upcall-unknown-request"), names.end())
      << FormatViolations(oracles_->violations());
}

TEST_F(OracleSetTest, TieBreaksInSchedulingOrderAreCleanAndCounted) {
  oracles_->OnTieBreak(100 * kMillisecond, 0, 1);
  oracles_->OnTieBreak(100 * kMillisecond, 1, 2);
  oracles_->OnTieBreak(200 * kMillisecond, 7, 12);  // gaps are fine; order is what matters
  EXPECT_EQ(oracles_->violation_count(), 0u) << FormatViolations(oracles_->violations());
  EXPECT_EQ(oracles_->tie_pairs_audited(), 3u);
}

TEST_F(OracleSetTest, DetectsSameTimeOrderInversion) {
  oracles_->OnTieBreak(100 * kMillisecond, 5, 3);  // popped out of scheduling order
  const std::vector<std::string> names = OracleNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "same-time-order"), names.end())
      << FormatViolations(oracles_->violations());
  EXPECT_EQ(oracles_->tie_pairs_audited(), 1u);
}

TEST_F(OracleSetTest, DetectsSameTimeSeqDuplication) {
  // seq == prev_seq means one scheduling slot fired twice — just as fatal
  // to determinism as an inversion, and the <= check catches both.
  oracles_->OnTieBreak(100 * kMillisecond, 4, 4);
  const std::vector<std::string> names = OracleNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "same-time-order"), names.end())
      << FormatViolations(oracles_->violations());
}

TEST_F(OracleSetTest, DetectsClockRegression) {
  oracles_->OnStep(100 * kMillisecond);
  oracles_->OnStep(50 * kMillisecond);
  const std::vector<std::string> names = OracleNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "clock-monotonicity"), names.end())
      << FormatViolations(oracles_->violations());
}

TEST_F(OracleSetTest, RecordingCapStoresBoundedButCountsAll) {
  for (uint64_t seq = 1; seq <= 100; ++seq) {
    // Same seq every time: 99 duplicates after the first delivery.
    oracles_->OnUpcallDelivered(1, 1, 999, ResourceId::kNetworkBandwidth, 25.0, 0);
  }
  EXPECT_GT(oracles_->violation_count(), oracles_->violations().size());
  EXPECT_LE(oracles_->violations().size(),
            2 * OracleSet::kMaxRecordedPerOracle);  // duplicate + unknown-request
}

// --- Shrinker ---

TEST(ShrinkTest, MinimizesToPredicateCore) {
  const FuzzScenario scenario = GenerateScenario(11);
  // Content-based predicate: the scenario still schedules at least one
  // request op.  The 1-minimal core is one segment, one app, one op.
  const ScenarioPredicate has_request = [](const FuzzScenario& candidate) {
    for (const FuzzApp& app : candidate.apps) {
      for (const FuzzOp& op : app.ops) {
        if (op.kind == FuzzOpKind::kRequest) {
          return true;
        }
      }
    }
    return false;
  };
  ASSERT_TRUE(has_request(scenario));
  const ShrinkResult result = ShrinkWithPredicate(scenario, has_request);
  EXPECT_TRUE(has_request(result.minimized));
  EXPECT_LE(result.final_elements, result.initial_elements);
  EXPECT_LE(result.final_elements, 3u);  // segment + app + op
  EXPECT_EQ(result.final_elements, result.minimized.ElementCount());
  EXPECT_GT(result.attempts, 0);
  EXPECT_GT(result.accepted, 0);
}

TEST(ShrinkTest, ShrinkIsDeterministic) {
  const FuzzScenario scenario = GenerateScenario(11);
  const ScenarioPredicate nonempty = [](const FuzzScenario& candidate) {
    return !candidate.apps.empty();
  };
  const ShrinkResult a = ShrinkWithPredicate(scenario, nonempty);
  const ShrinkResult b = ShrinkWithPredicate(scenario, nonempty);
  EXPECT_EQ(a.minimized.Describe(), b.minimized.Describe());
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(ShrinkTest, HasViolationOfMatchesByNameAndAny) {
  FuzzRunResult result;
  result.violations.push_back(FuzzViolation{"upcall-duplicate", 0, 1, "x"});
  result.violation_count = 1;
  EXPECT_TRUE(HasViolationOf(result, "upcall-duplicate"));
  EXPECT_TRUE(HasViolationOf(result, ""));
  EXPECT_FALSE(HasViolationOf(result, "fair-share"));
  EXPECT_FALSE(HasViolationOf(FuzzRunResult{}, ""));
}

TEST(ShrinkTest, ReproSnippetIsSelfContained) {
  FuzzScenario scenario;
  scenario.seed = 77;
  scenario.horizon = 5 * kSecond;
  scenario.segments = {FuzzSegment{5 * kSecond, 40.0 * 1024, 10 * kMillisecond}};
  FuzzApp app;
  app.warden = FuzzWardenKind::kSpeech;
  app.start = kSecond;
  app.ops.push_back(FuzzOp{2 * kSecond, FuzzOpKind::kRequest, 0.5, 1.5, 0, 0.25});
  scenario.apps.push_back(std::move(app));
  const std::string snippet = EmitReproSnippet(scenario, "upcall-duplicate");
  EXPECT_NE(snippet.find("TEST("), std::string::npos);
  EXPECT_NE(snippet.find("FuzzScenario"), std::string::npos);
  EXPECT_NE(snippet.find("RunFuzzScenario"), std::string::npos);
  EXPECT_NE(snippet.find("upcall-duplicate"), std::string::npos);
  EXPECT_NE(snippet.find("77"), std::string::npos);
  EXPECT_NE(snippet.find("kSpeech"), std::string::npos);
  EXPECT_NE(snippet.find("src/check/fuzz_runner.h"), std::string::npos);
}

TEST(ShrinkTest, CanonicalTraceIsDeterministicAndNonEmpty) {
  const FuzzScenario scenario = GenerateScenario(3);
  const std::string a = CanonicalTraceForScenario(scenario);
  const std::string b = CanonicalTraceForScenario(scenario);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace odyssey

// Tests for the route prefetch agent (§2.3's emergency-response scenario).

#include <gtest/gtest.h>

#include "src/apps/prefetch_agent.h"
#include "src/core/battery_model.h"
#include "src/metrics/experiment.h"
#include "src/servers/file_server.h"
#include "src/wardens/file_warden.h"

namespace odyssey {
namespace {

constexpr double kKb = 1024.0;

class PrefetchTest : public ::testing::Test {
 protected:
  PrefetchTest() : rig_(1, StrategyKind::kOdyssey), file_server_(&rig_.sim().rng()) {
    for (int i = 0; i < 12; ++i) {
      route_.push_back("areas/sector-" + std::to_string(i));
      file_server_.Publish(route_.back(), 64.0 * kKb);
    }
    rig_.client().InstallWarden(std::make_unique<FileWarden>(&file_server_));
  }

  PrefetchAgentOptions Options() {
    PrefetchAgentOptions options;
    options.route = route_;
    options.advance_period = 10 * kSecond;
    return options;
  }

  ExperimentRig rig_;
  FileServer file_server_;
  std::vector<std::string> route_;
};

TEST_F(PrefetchTest, HighBandwidthGivesNearPerfectHitRate) {
  PrefetchAgent agent(&rig_.client(), Options());
  rig_.Replay(MakeConstant(kHighBandwidth, 10 * kMinute), /*prime=*/false);
  agent.Start();
  rig_.sim().RunUntil(3 * kMinute);
  ASSERT_TRUE(agent.finished());
  ASSERT_EQ(agent.visits().size(), route_.size());
  // Every area after the first was warmed before the user arrived.
  EXPECT_GE(agent.HitRate(), 0.99);
  EXPECT_GE(agent.prefetches_issued(), static_cast<int>(route_.size()) - 1);
  // A prefetched visit is served from the cache, essentially instantly.
  EXPECT_LT(agent.visits().back().fetch_time, 50 * kMillisecond);
}

TEST_F(PrefetchTest, StarvedLinkMissesSomeAreas) {
  // 64 KB per area every 10 s needs ~6.5 KB/s just to keep up; at 4 KB/s
  // the prefetcher cannot stay ahead.
  PrefetchAgent agent(&rig_.client(), Options());
  rig_.Replay(MakeConstant(4.0 * kKb, 20 * kMinute), /*prime=*/false);
  agent.Start();
  rig_.sim().RunUntil(5 * kMinute);
  EXPECT_LT(agent.HitRate(), 0.8);
}

TEST_F(PrefetchTest, DepthPolicyFollowsBandwidthAndBattery) {
  PrefetchAgentOptions options = Options();
  options.min_battery_minutes = 30.0;
  PrefetchAgent agent(&rig_.client(), options);
  EXPECT_EQ(agent.ChooseDepth(kHighBandwidth, 100.0), 3);   // capped at max_depth
  EXPECT_EQ(agent.ChooseDepth(30.0 * kKb, 100.0), 1);       // slow link: shallow
  EXPECT_EQ(agent.ChooseDepth(kHighBandwidth, 10.0), 0);    // low battery: stop
}

TEST_F(PrefetchTest, LowBatterySuppressesPrefetching) {
  PrefetchAgentOptions options = Options();
  options.min_battery_minutes = 30.0;
  PrefetchAgent agent(&rig_.client(), options);
  BatteryModel::Config battery_config;
  battery_config.capacity_minutes = 10.0;  // already below the floor
  BatteryModel battery(&rig_.sim(), &rig_.client().viceroy(), &rig_.link(), battery_config);
  rig_.Replay(MakeConstant(kHighBandwidth, 10 * kMinute), /*prime=*/false);
  battery.Start();
  agent.Start();
  rig_.sim().RunUntil(3 * kMinute);
  EXPECT_EQ(agent.prefetches_issued(), 0);
  EXPECT_GT(agent.prefetches_suppressed_battery(), 0);
  // Visits still work — on demand, paying the fetch each time.
  EXPECT_EQ(agent.visits().size(), route_.size());
  EXPECT_LT(agent.HitRate(), 0.01);
}

TEST_F(PrefetchTest, EmptyRouteFinishesImmediately) {
  PrefetchAgentOptions options;
  PrefetchAgent agent(&rig_.client(), options);
  agent.Start();
  EXPECT_TRUE(agent.finished());
  EXPECT_DOUBLE_EQ(agent.HitRate(), 0.0);
}

}  // namespace
}  // namespace odyssey

// Unit tests for the RPC endpoint and observation logs.

#include <gtest/gtest.h>

#include "src/net/link.h"
#include "src/rpc/endpoint.h"
#include "src/rpc/observation_log.h"
#include "src/sim/simulation.h"

namespace odyssey {
namespace {

constexpr double kKb = 1024.0;

class RecordingListener : public LogListener {
 public:
  void OnRoundTrip(ConnectionId connection, const RoundTripObservation& obs) override {
    last_connection = connection;
    round_trips.push_back(obs);
  }
  void OnThroughput(ConnectionId connection, const ThroughputObservation& obs) override {
    last_connection = connection;
    throughputs.push_back(obs);
  }

  ConnectionId last_connection = 0;
  std::vector<RoundTripObservation> round_trips;
  std::vector<ThroughputObservation> throughputs;
};

TEST(ObservationLogTest, RecordsAndNotifies) {
  ObservationLog log(7);
  RecordingListener listener;
  log.AddListener(&listener);
  log.RecordRoundTrip(100, 21 * kMillisecond);
  log.RecordThroughput(200, 1000.0, kSecond);
  EXPECT_EQ(listener.last_connection, 7u);
  ASSERT_EQ(log.round_trips().size(), 1u);
  ASSERT_EQ(log.throughputs().size(), 1u);
  EXPECT_EQ(log.round_trips()[0].rtt, 21 * kMillisecond);
  EXPECT_DOUBLE_EQ(log.TotalBulkBytes(), 1000.0);
}

TEST(ObservationLogTest, RemoveListenerStopsNotifications) {
  ObservationLog log(1);
  RecordingListener listener;
  log.AddListener(&listener);
  log.RemoveListener(&listener);
  log.RecordRoundTrip(0, 1);
  EXPECT_TRUE(listener.round_trips.empty());
}

TEST(EndpointTest, UniqueIds) {
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 0);
  Endpoint a(&sim, &link, "a");
  Endpoint b(&sim, &link, "b");
  EXPECT_NE(a.id(), b.id());
  EXPECT_EQ(a.log().connection(), a.id());
}

TEST(EndpointTest, PingLogsLatencyDominatedRoundTrip) {
  Simulation sim;
  Link link(&sim, 120.0 * kKb, 10500);
  Endpoint endpoint(&sim, &link, "server");
  endpoint.Ping(Endpoint::Done());
  sim.Run();
  ASSERT_EQ(endpoint.log().round_trips().size(), 1u);
  const Duration rtt = endpoint.log().round_trips()[0].rtt;
  // Two 64-byte control messages at 120 KB/s cost ~1 ms; the rest is the
  // 21 ms round-trip latency.
  EXPECT_GE(rtt, 21 * kMillisecond);
  EXPECT_LE(rtt, 23 * kMillisecond);
}

TEST(EndpointTest, CallExcludesServerCompute) {
  Simulation sim;
  Link link(&sim, 120.0 * kKb, 10500);
  Endpoint endpoint(&sim, &link, "server");
  Time done_at = -1;
  endpoint.Call(64.0, 64.0, 5 * kSecond, [&] { done_at = sim.now(); });
  sim.Run();
  // Completion waits for the server's 5 s of compute...
  EXPECT_GT(done_at, 5 * kSecond);
  // ...but the logged round trip excludes it.
  ASSERT_EQ(endpoint.log().round_trips().size(), 1u);
  EXPECT_LT(endpoint.log().round_trips()[0].rtt, 100 * kMillisecond);
}

TEST(EndpointTest, FetchWindowLogsThroughput) {
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 0);
  Endpoint endpoint(&sim, &link, "server");
  endpoint.FetchWindow(50.0 * kKb, Endpoint::Done());
  sim.Run();
  ASSERT_EQ(endpoint.log().throughputs().size(), 1u);
  const ThroughputObservation& obs = endpoint.log().throughputs()[0];
  EXPECT_DOUBLE_EQ(obs.window_bytes, 50.0 * kKb);
  // 50 KB at 100 KB/s plus the 64-byte request.
  EXPECT_NEAR(DurationToSeconds(obs.elapsed), 0.5, 0.01);
  EXPECT_DOUBLE_EQ(endpoint.bytes_transferred(), 50.0 * kKb);
}

TEST(EndpointTest, FetchSplitsIntoWindows) {
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 0);
  Endpoint endpoint(&sim, &link, "server");
  endpoint.set_window_bytes(32.0 * kKb);
  bool done = false;
  endpoint.Fetch(100.0 * kKb, 0, [&] { done = true; });
  sim.Run();
  EXPECT_TRUE(done);
  // One round trip for the transfer request...
  EXPECT_EQ(endpoint.log().round_trips().size(), 1u);
  // ...then 32+32+32+4 KB windows.
  ASSERT_EQ(endpoint.log().throughputs().size(), 4u);
  EXPECT_DOUBLE_EQ(endpoint.log().throughputs()[3].window_bytes, 4.0 * kKb);
  EXPECT_NEAR(endpoint.bytes_transferred(), 100.0 * kKb, 0.1);
}

TEST(EndpointTest, FetchZeroBytesCompletesWithoutWindows) {
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 0);
  Endpoint endpoint(&sim, &link, "server");
  bool done = false;
  endpoint.Fetch(0.0, 0, [&] { done = true; });
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(endpoint.log().throughputs().empty());
}

TEST(EndpointTest, SendMirrorsFetchTiming) {
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 0);
  Endpoint fetcher(&sim, &link, "down");
  Time fetch_done = -1;
  fetcher.Fetch(64.0 * kKb, 0, [&] { fetch_done = sim.now(); });
  sim.Run();

  Simulation sim2;
  Link link2(&sim2, 100.0 * kKb, 0);
  Endpoint sender(&sim2, &link2, "up");
  Time send_done = -1;
  sender.Send(64.0 * kKb, 0, [&] { send_done = sim2.now(); });
  sim2.Run();

  EXPECT_EQ(fetch_done, send_done);
}

TEST(EndpointTest, ConcurrentEndpointsShareTheLink) {
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 0);
  Endpoint a(&sim, &link, "a");
  Endpoint b(&sim, &link, "b");
  Time a_done = -1;
  Time b_done = -1;
  a.FetchWindow(50.0 * kKb, [&] { a_done = sim.now(); });
  b.FetchWindow(50.0 * kKb, [&] { b_done = sim.now(); });
  sim.Run();
  // Both windows share the link, so each takes ~1 s rather than ~0.5 s.
  EXPECT_NEAR(DurationToSeconds(a_done), 1.0, 0.02);
  EXPECT_NEAR(DurationToSeconds(b_done), 1.0, 0.02);
}

TEST(EndpointTest, ObservedThroughputReflectsContention) {
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 0);
  Endpoint a(&sim, &link, "a");
  Endpoint b(&sim, &link, "b");
  a.FetchWindow(50.0 * kKb, Endpoint::Done());
  b.FetchWindow(50.0 * kKb, Endpoint::Done());
  sim.Run();
  const ThroughputObservation& obs = a.log().throughputs()[0];
  const double observed_bps = obs.window_bytes / DurationToSeconds(obs.elapsed);
  EXPECT_NEAR(observed_bps, 50.0 * kKb, 2.0 * kKb);
}

}  // namespace
}  // namespace odyssey

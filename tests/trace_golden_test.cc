// Golden-trace determinism regression (see DESIGN.md §9).
//
// Runs the Figure-8 Step-Up supply-agility scenario — the same code path
// bench_fig08 traces under --trace-out — and checks two properties:
//
//  1. Determinism: two same-seed runs in one process canonicalize to the
//     exact same event sequence, even though process-global id counters
//     (connection ids, span ids) differ between the runs.
//  2. Stability: the canonical trace matches the checked-in golden file.
//     Any change to instrumentation, scheduling order, estimator behaviour,
//     or RPC sequencing shows up here as a precise first-divergence report.
//
// To regenerate the golden file after an intentional behaviour change:
//   ODY_REGEN_GOLDEN=1 ./trace_golden_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/metrics/scenarios.h"
#include "src/trace/chrome_trace_exporter.h"
#include "src/trace/trace_diff.h"
#include "src/trace/trace_recorder.h"

namespace odyssey {
namespace {

// Bounded so the golden file stays reviewable; kDropNewest keeps the
// recorded prefix stable no matter how long the scenario runs beyond it.
constexpr size_t kGoldenCapacity = 4096;
constexpr uint64_t kGoldenSeed = 1;

const char* GoldenPath() { return ODYSSEY_GOLDEN_DIR "/fig08_stepup_trace.txt"; }

std::vector<std::string> RunCanonicalStepUp() {
  TraceRecorder recorder(kGoldenCapacity, TraceRecorder::OverflowPolicy::kDropNewest);
  (void)RunSupplyAgilityTrial(Waveform::kStepUp, kGoldenSeed, &recorder);
  std::string error;
  const std::string json = ChromeTraceExporter::ToJson(recorder);
  const std::vector<std::string> canon = CanonicalizeChromeTrace(json, &error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_FALSE(canon.empty());
  return canon;
}

TEST(TraceGoldenTest, SameSeedRunsCanonicalizeIdentically) {
  const std::vector<std::string> first = RunCanonicalStepUp();
  const std::vector<std::string> second = RunCanonicalStepUp();
  const TraceDiffResult diff = DiffCanonical(first, second);
  EXPECT_TRUE(diff.identical) << diff.Format();
}

TEST(TraceGoldenTest, MatchesCheckedInGolden) {
  const std::vector<std::string> canon = RunCanonicalStepUp();

  if (std::getenv("ODY_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath(), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    for (const std::string& line : canon) {
      out << line << "\n";
    }
    GTEST_SKIP() << "regenerated " << GoldenPath() << " (" << canon.size() << " events)";
  }

  std::ifstream in(GoldenPath(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << GoldenPath()
                         << "; regenerate with ODY_REGEN_GOLDEN=1";
  std::vector<std::string> golden;
  std::string line;
  while (std::getline(in, line)) {
    golden.push_back(line);
  }

  const TraceDiffResult diff = DiffCanonical(golden, canon);
  EXPECT_TRUE(diff.identical) << diff.Format()
                              << "\n(if the change is intentional, regenerate with "
                                 "ODY_REGEN_GOLDEN=1 ./trace_golden_test)";
}

}  // namespace
}  // namespace odyssey

// Unit tests for the wardens, run against the full experiment rig, plus
// edge cases of the request/cancel/upcall contract they sit on.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/core/tsop_codec.h"
#include "src/metrics/experiment.h"
#include "src/servers/calibration.h"
#include "src/servers/telemetry_server.h"
#include "src/wardens/telemetry_warden.h"

namespace odyssey {
namespace {

constexpr double kKb = 1024.0;

std::string VideoPath() { return std::string(kOdysseyRoot) + "video/default"; }
std::string WebPath() { return std::string(kOdysseyRoot) + "web/session"; }
std::string SpeechPath() { return std::string(kOdysseyRoot) + "speech/janus"; }
std::string BitstreamPath() { return std::string(kOdysseyRoot) + "bitstream/stream"; }

class WardenTest : public ::testing::Test {
 protected:
  WardenTest() : rig_(1, StrategyKind::kOdyssey) {
    app_ = rig_.client().RegisterApplication("test-app");
    rig_.Replay(MakeConstant(kHighBandwidth, 10 * kMinute), /*prime=*/false);
  }

  ExperimentRig rig_;
  AppId app_ = 0;
};

// --- Video warden ---

TEST_F(WardenTest, VideoOpenReturnsMeta) {
  VideoMetaReply meta;
  Status status;
  rig_.client().Tsop(app_, VideoPath(), kVideoOpen, kDefaultMovie,
                     [&](Status s, std::string out) {
                       status = s;
                       EXPECT_TRUE(UnpackStruct(out, &meta));
                     });
  ASSERT_TRUE(status.ok());
  EXPECT_DOUBLE_EQ(meta.fps, kVideoFps);
  EXPECT_EQ(meta.frame_count, kVideoFramesPerTrial);
  EXPECT_EQ(meta.track_count, 3);
  // Track requirements honour the §6.1.3 design: JPEG(99) fits the high
  // bandwidth, JPEG(50) fits the low bandwidth.
  EXPECT_LT(meta.required_bps[0], kHighBandwidth);
  EXPECT_GT(meta.required_bps[0], kLowBandwidth);
  EXPECT_LT(meta.required_bps[1], kLowBandwidth);
  EXPECT_GT(meta.fidelity[0], meta.fidelity[1]);
  EXPECT_GT(meta.fidelity[1], meta.fidelity[2]);
}

TEST_F(WardenTest, VideoOpenUnknownMovieFails) {
  Status status;
  rig_.client().Tsop(app_, std::string(kOdysseyRoot) + "video/nope", kVideoOpen, "nope",
                     [&](Status s, std::string) { status = s; });
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(WardenTest, VideoReadAheadFillsBuffer) {
  rig_.client().Tsop(app_, VideoPath(), kVideoOpen, kDefaultMovie, [](Status, std::string) {});
  rig_.sim().RunUntil(2 * kSecond);
  // After two seconds at high bandwidth the prefetcher has frames ready:
  // taking frame 0 succeeds at full fidelity.
  VideoTakeFrameReply reply;
  rig_.client().Tsop(app_, VideoPath(), kVideoTakeFrame, PackStruct(VideoTakeFrameRequest{0}),
                     [&](Status, std::string out) { EXPECT_TRUE(UnpackStruct(out, &reply)); });
  EXPECT_TRUE(reply.present);
  EXPECT_EQ(reply.track, 0);
  EXPECT_DOUBLE_EQ(reply.fidelity, kVideoJpeg99Fidelity);
}

TEST_F(WardenTest, VideoMissedDeadlineReportsAbsent) {
  rig_.client().Tsop(app_, VideoPath(), kVideoOpen, kDefaultMovie, [](Status, std::string) {});
  rig_.sim().RunUntil(2 * kSecond);
  // Frame 500 has certainly not been prefetched two seconds in.
  VideoTakeFrameReply reply;
  rig_.client().Tsop(app_, VideoPath(), kVideoTakeFrame,
                     PackStruct(VideoTakeFrameRequest{500}),
                     [&](Status, std::string out) { EXPECT_TRUE(UnpackStruct(out, &reply)); });
  EXPECT_FALSE(reply.present);
}

TEST_F(WardenTest, VideoUpgradeDiscardsLowFidelityPrefetch) {
  rig_.client().Tsop(app_, VideoPath(), kVideoOpen, kDefaultMovie, [](Status, std::string) {});
  // Switch to the B/W track and let the prefetcher fill with B/W frames.
  rig_.client().Tsop(app_, VideoPath(), kVideoSetTrack, PackStruct(VideoSetTrackRequest{2}),
                     [](Status, std::string) {});
  rig_.sim().RunUntil(3 * kSecond);
  // Upgrade to JPEG(99): prefetched B/W frames must be discarded (§5.1).
  rig_.client().Tsop(app_, VideoPath(), kVideoSetTrack, PackStruct(VideoSetTrackRequest{0}),
                     [](Status, std::string) {});
  rig_.sim().RunUntil(3 * kSecond + 100 * kMillisecond);
  VideoWardenStats stats;
  rig_.client().Tsop(app_, VideoPath(), kVideoStats, "",
                     [&](Status, std::string out) { EXPECT_TRUE(UnpackStruct(out, &stats)); });
  EXPECT_GT(stats.frames_discarded_upgrade, 0);
  // After the refetch completes, frame 0 is served at the new fidelity.
  rig_.sim().RunUntil(6 * kSecond);
  VideoTakeFrameReply reply;
  rig_.client().Tsop(app_, VideoPath(), kVideoTakeFrame, PackStruct(VideoTakeFrameRequest{0}),
                     [&](Status, std::string out) { EXPECT_TRUE(UnpackStruct(out, &reply)); });
  EXPECT_TRUE(reply.present);
  EXPECT_DOUBLE_EQ(reply.fidelity, kVideoJpeg99Fidelity);
}

TEST_F(WardenTest, VideoDowngradeKeepsBetterFrames) {
  rig_.client().Tsop(app_, VideoPath(), kVideoOpen, kDefaultMovie, [](Status, std::string) {});
  rig_.sim().RunUntil(2 * kSecond);  // buffer JPEG(99) frames
  rig_.client().Tsop(app_, VideoPath(), kVideoSetTrack, PackStruct(VideoSetTrackRequest{1}),
                     [](Status, std::string) {});
  // Already-buffered higher-fidelity frames are kept and displayed.
  VideoTakeFrameReply reply;
  rig_.client().Tsop(app_, VideoPath(), kVideoTakeFrame, PackStruct(VideoTakeFrameRequest{0}),
                     [&](Status, std::string out) { EXPECT_TRUE(UnpackStruct(out, &reply)); });
  EXPECT_TRUE(reply.present);
  EXPECT_DOUBLE_EQ(reply.fidelity, kVideoJpeg99Fidelity);
}

TEST_F(WardenTest, VideoBadRequestsRejected) {
  Status status;
  rig_.client().Tsop(app_, VideoPath(), kVideoSetTrack, "garbage",
                     [&](Status s, std::string) { status = s; });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  rig_.client().Tsop(app_, VideoPath(), 999, "", [&](Status s, std::string) { status = s; });
  EXPECT_EQ(status.code(), StatusCode::kUnsupported);
  rig_.client().Tsop(app_, VideoPath(), kVideoOpen, kDefaultMovie, [](Status, std::string) {});
  rig_.client().Tsop(app_, VideoPath(), kVideoSetTrack, PackStruct(VideoSetTrackRequest{99}),
                     [&](Status s, std::string) { status = s; });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(WardenTest, VideoStorageOverheadModest) {
  // §5.1: storing all tracks costs "about 60% more" than the best alone.
  MovieMeta movie = VideoServer::MakeDefaultMovie("m", 100);
  EXPECT_GT(movie.StorageOverhead(), 0.2);
  EXPECT_LT(movie.StorageOverhead(), 0.8);
}

// --- Web warden ---

TEST_F(WardenTest, WebOpenReportsLevels) {
  WebSessionInfo info;
  Status status;
  rig_.client().Tsop(app_, WebPath(), kWebOpen, kTestImageUrl, [&](Status s, std::string out) {
    status = s;
    EXPECT_TRUE(UnpackStruct(out, &info));
  });
  ASSERT_TRUE(status.ok());
  EXPECT_DOUBLE_EQ(info.original_bytes, kWebImageBytes);
  // Sizes strictly decrease with fidelity level.
  EXPECT_GT(info.level_bytes[0], info.level_bytes[1]);
  EXPECT_GT(info.level_bytes[1], info.level_bytes[2]);
  EXPECT_GT(info.level_bytes[2], info.level_bytes[3]);
  EXPECT_DOUBLE_EQ(info.level_fidelity[0], 1.0);
  EXPECT_DOUBLE_EQ(info.level_fidelity[3], 0.05);
}

TEST_F(WardenTest, WebFetchAtRequestedFidelity) {
  rig_.client().Tsop(app_, WebPath(), kWebOpen, kTestImageUrl, [](Status, std::string) {});
  rig_.client().Tsop(app_, WebPath(), kWebSetFidelity, PackStruct(WebSetFidelityRequest{1}),
                     [](Status, std::string) {});
  WebFetchReply reply;
  bool done = false;
  rig_.client().Tsop(app_, WebPath(), kWebFetch, "", [&](Status, std::string out) {
    EXPECT_TRUE(UnpackStruct(out, &reply));
    done = true;
  });
  rig_.sim().RunUntil(5 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_DOUBLE_EQ(reply.fidelity, 0.5);
  EXPECT_DOUBLE_EQ(reply.bytes, kWebJpeg50Bytes);
}

TEST_F(WardenTest, WebFetchTimeScalesWithSize) {
  rig_.client().Tsop(app_, WebPath(), kWebOpen, kTestImageUrl, [](Status, std::string) {});
  const auto timed_fetch = [&](int level) {
    rig_.client().Tsop(app_, WebPath(), kWebSetFidelity, PackStruct(WebSetFidelityRequest{level}),
                       [](Status, std::string) {});
    const Time start = rig_.sim().now();
    Time end = start;
    rig_.client().Tsop(app_, WebPath(), kWebFetch, "", [&](Status, std::string) {
      end = rig_.sim().now();
    });
    rig_.sim().RunUntil(rig_.sim().now() + 10 * kSecond);
    return end - start;
  };
  const Duration full = timed_fetch(0);
  const Duration tiny = timed_fetch(3);
  EXPECT_GT(full, tiny);
}

TEST_F(WardenTest, WebUnknownUrlFails) {
  Status status;
  rig_.client().Tsop(app_, WebPath(), kWebOpen, "http://nowhere/x.gif",
                     [&](Status s, std::string) { status = s; });
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(WardenTest, WebFetchWithoutOpenFails) {
  Status status;
  rig_.client().Tsop(app_, WebPath(), kWebFetch, "", [&](Status s, std::string) { status = s; });
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

// --- Speech warden ---

TEST_F(WardenTest, SpeechAdaptivePlanPrefersHybridAtPaperBandwidths) {
  // At both 120 KB/s and 40 KB/s hybrid beats remote (Figure 12).
  EXPECT_EQ(SpeechWarden::AdaptivePlan(kSpeechRawBytes, kHighBandwidth, 21 * kMillisecond),
            SpeechMode::kAlwaysHybrid);
  EXPECT_EQ(SpeechWarden::AdaptivePlan(kSpeechRawBytes, kLowBandwidth, 21 * kMillisecond),
            SpeechMode::kAlwaysHybrid);
}

TEST_F(WardenTest, SpeechAdaptivePlanShipsRawAtVeryHighBandwidth) {
  // "We have confirmed that at higher bandwidths an adaptive strategy has
  // benefits": when shipping is nearly free, avoiding the slow local first
  // pass wins.
  EXPECT_EQ(SpeechWarden::AdaptivePlan(kSpeechRawBytes, 10000.0 * kKb, kMillisecond),
            SpeechMode::kAlwaysRemote);
}

TEST_F(WardenTest, SpeechAdaptivePlanFallsBackToLocalWhenDisconnected) {
  EXPECT_EQ(SpeechWarden::AdaptivePlan(kSpeechRawBytes, 100.0, 21 * kMillisecond),
            SpeechMode::kAlwaysLocal);
}

TEST_F(WardenTest, SpeechRecognizeCompletesAndReportsPlan) {
  rig_.client().Tsop(app_, SpeechPath(), kSpeechSetMode,
                     PackStruct(SpeechSetModeRequest{static_cast<int>(SpeechMode::kAlwaysHybrid)}),
                     [](Status, std::string) {});
  SpeechResult result;
  bool done = false;
  const Time start = rig_.sim().now();
  Time end = start;
  rig_.client().Tsop(app_, SpeechPath(), kSpeechRecognize,
                     PackStruct(SpeechUtterance{kSpeechRawBytes}),
                     [&](Status, std::string out) {
                       EXPECT_TRUE(UnpackStruct(out, &result));
                       end = rig_.sim().now();
                       done = true;
                     });
  rig_.sim().RunUntil(10 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(result.plan, static_cast<int>(SpeechMode::kAlwaysHybrid));
  // Local preprocess + ship 4.8 KB + recognition ~ 0.7 s.
  EXPECT_NEAR(DurationToSeconds(end - start), 0.71, 0.1);
}

TEST_F(WardenTest, SpeechLocalSlowerThanHybrid) {
  const auto run_mode = [&](SpeechMode mode) {
    rig_.client().Tsop(app_, SpeechPath(), kSpeechSetMode,
                       PackStruct(SpeechSetModeRequest{static_cast<int>(mode)}),
                       [](Status, std::string) {});
    const Time start = rig_.sim().now();
    Time end = start;
    rig_.client().Tsop(app_, SpeechPath(), kSpeechRecognize,
                       PackStruct(SpeechUtterance{kSpeechRawBytes}),
                       [&](Status, std::string) { end = rig_.sim().now(); });
    rig_.sim().RunUntil(rig_.sim().now() + 30 * kSecond);
    return end - start;
  };
  const Duration hybrid = run_mode(SpeechMode::kAlwaysHybrid);
  const Duration local = run_mode(SpeechMode::kAlwaysLocal);
  EXPECT_GT(local, 3 * hybrid);
}

TEST_F(WardenTest, SpeechRejectsBadRequests) {
  Status status;
  rig_.client().Tsop(app_, SpeechPath(), kSpeechRecognize, PackStruct(SpeechUtterance{-5.0}),
                     [&](Status s, std::string) { status = s; });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  rig_.client().Tsop(app_, SpeechPath(), kSpeechSetMode, PackStruct(SpeechSetModeRequest{9}),
                     [&](Status s, std::string) { status = s; });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(WardenTest, SpeechNetworkTimeoutFallsBackToLocal) {
  // A hybrid recognition whose transfer stalls in a radio shadow is
  // abandoned after the watchdog timeout and recognized locally.
  rig_.client().Tsop(app_, SpeechPath(), kSpeechSetMode,
                     PackStruct(SpeechSetModeRequest{static_cast<int>(SpeechMode::kAlwaysHybrid)}),
                     [](Status, std::string) {});
  // Cut the link before the utterance ships.
  rig_.modulator().Replay(MakeConstant(0.0, 5 * kMinute, kOneWayLatency));
  SpeechResult result;
  bool finished = false;
  const Time start = rig_.sim().now();
  Time end = start;
  rig_.client().Tsop(app_, SpeechPath(), kSpeechRecognize,
                     PackStruct(SpeechUtterance{kSpeechRawBytes}),
                     [&](Status, std::string out) {
                       EXPECT_TRUE(UnpackStruct(out, &result));
                       end = rig_.sim().now();
                       finished = true;
                     });
  rig_.sim().RunUntil(rig_.sim().now() + 30 * kSecond);
  ASSERT_TRUE(finished);
  EXPECT_EQ(result.plan, static_cast<int>(SpeechMode::kAlwaysLocal));
  // Local preprocess + watchdog timeout + local recognition.
  EXPECT_GT(end - start, kSpeechNetworkTimeout);
  EXPECT_LT(end - start, kSpeechNetworkTimeout + 2 * kSpeechRecognizeLocal);
}

TEST_F(WardenTest, SpeechLateNetworkReplyAfterTimeoutIsDropped) {
  // The network reply arriving after the watchdog went local must not
  // complete the tsop twice.
  rig_.client().Tsop(app_, SpeechPath(), kSpeechSetMode,
                     PackStruct(SpeechSetModeRequest{static_cast<int>(SpeechMode::kAlwaysRemote)}),
                     [](Status, std::string) {});
  // Choke the link so the transfer finishes after the watchdog but before
  // the run ends.
  rig_.modulator().Replay(MakeConstant(2.0 * 1024.0, 5 * kMinute, kOneWayLatency));
  int completions = 0;
  rig_.client().Tsop(app_, SpeechPath(), kSpeechRecognize,
                     PackStruct(SpeechUtterance{kSpeechRawBytes}),
                     [&](Status, std::string) { ++completions; });
  rig_.sim().RunUntil(rig_.sim().now() + kMinute);
  EXPECT_EQ(completions, 1);
}

// --- Bitstream warden ---

TEST_F(WardenTest, BitstreamConsumesAtFullRate) {
  BitstreamStarted started;
  rig_.client().Tsop(app_, BitstreamPath(), kBitstreamStart,
                     PackStruct(BitstreamParams{0.0, 64.0 * kKb}),
                     [&](Status, std::string out) { EXPECT_TRUE(UnpackStruct(out, &started)); });
  EXPECT_GT(started.connection, 0u);
  rig_.sim().RunUntil(20 * kSecond);
  BitstreamTotals totals;
  rig_.client().Tsop(app_, BitstreamPath(), kBitstreamStop, "",
                     [&](Status, std::string out) { EXPECT_TRUE(UnpackStruct(out, &totals)); });
  // ~20 s at ~120 KB/s less protocol overhead.
  EXPECT_GT(totals.bytes_consumed, 0.85 * 20.0 * 120.0 * kKb);
  EXPECT_LT(totals.bytes_consumed, 1.01 * 20.0 * 120.0 * kKb);
}

TEST_F(WardenTest, BitstreamPacingLimitsConsumption) {
  rig_.client().Tsop(app_, BitstreamPath(), kBitstreamStart,
                     PackStruct(BitstreamParams{12.0 * kKb, 16.0 * kKb}),
                     [](Status, std::string) {});
  rig_.sim().RunUntil(20 * kSecond);
  BitstreamTotals totals;
  rig_.client().Tsop(app_, BitstreamPath(), kBitstreamStop, "",
                     [&](Status, std::string out) { EXPECT_TRUE(UnpackStruct(out, &totals)); });
  EXPECT_NEAR(totals.bytes_consumed, 20.0 * 12.0 * kKb, 3.0 * 16.0 * kKb);
}

TEST_F(WardenTest, BitstreamStopHalts) {
  rig_.client().Tsop(app_, BitstreamPath(), kBitstreamStart,
                     PackStruct(BitstreamParams{0.0, 0.0}), [](Status, std::string) {});
  rig_.sim().RunUntil(5 * kSecond);
  BitstreamTotals totals;
  rig_.client().Tsop(app_, BitstreamPath(), kBitstreamStop, "",
                     [&](Status, std::string out) { EXPECT_TRUE(UnpackStruct(out, &totals)); });
  const double at_stop = totals.bytes_consumed;
  rig_.sim().RunUntil(10 * kSecond);
  // No further consumption after stop (the in-flight window may land).
  BitstreamStarted restarted;
  rig_.client().Tsop(app_, BitstreamPath(), kBitstreamStart,
                     PackStruct(BitstreamParams{0.0, 0.0}),
                     [&](Status, std::string out) { EXPECT_TRUE(UnpackStruct(out, &restarted)); });
  rig_.client().Tsop(app_, BitstreamPath(), kBitstreamStop, "",
                     [&](Status, std::string out) { EXPECT_TRUE(UnpackStruct(out, &totals)); });
  EXPECT_LE(totals.bytes_consumed, at_stop + 65.0 * kKb);
}

TEST_F(WardenTest, BitstreamStopWithoutStartFails) {
  Status status;
  rig_.client().Tsop(app_, BitstreamPath(), kBitstreamStop, "",
                     [&](Status s, std::string) { status = s; });
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

// --- Edge cases: window bounds, cancel vs. upcall, dead-link tsops ---

TEST_F(WardenTest, FidelityTransitionExactlyAtWindowBoundStaysInside) {
  Viceroy& viceroy = rig_.client().viceroy();
  viceroy.SetStaticLevel(ResourceId::kDiskCacheSpace, 100.0);
  int upcalls = 0;
  double seen_level = -1.0;
  ResourceDescriptor descriptor;
  descriptor.resource = ResourceId::kDiskCacheSpace;
  descriptor.lower = 50.0;
  descriptor.upper = 150.0;
  descriptor.handler = [&](RequestId, ResourceId, double level) {
    ++upcalls;
    seen_level = level;
  };
  const RequestResult result = rig_.client().Request(app_, descriptor);
  ASSERT_TRUE(result.ok());
  // A transition that lands exactly on either bound is still inside the
  // window of tolerance (§4.2 violation is strict): no upcall.
  viceroy.SetStaticLevel(ResourceId::kDiskCacheSpace, 50.0);
  rig_.sim().RunUntil(rig_.sim().now() + kSecond);
  EXPECT_EQ(upcalls, 0);
  viceroy.SetStaticLevel(ResourceId::kDiskCacheSpace, 150.0);
  rig_.sim().RunUntil(rig_.sim().now() + kSecond);
  EXPECT_EQ(upcalls, 0);
  // The first step past the bound violates the window, exactly once.
  viceroy.SetStaticLevel(ResourceId::kDiskCacheSpace, 150.5);
  rig_.sim().RunUntil(rig_.sim().now() + kSecond);
  EXPECT_EQ(upcalls, 1);
  EXPECT_DOUBLE_EQ(seen_level, 150.5);
  // The upcall consumed the registration; further motion is silent.
  viceroy.SetStaticLevel(ResourceId::kDiskCacheSpace, 10.0);
  rig_.sim().RunUntil(rig_.sim().now() + kSecond);
  EXPECT_EQ(upcalls, 1);
}

TEST_F(WardenTest, CancelDuringUpcallDeliveryCannotSuppressIt) {
  Viceroy& viceroy = rig_.client().viceroy();
  viceroy.SetStaticLevel(ResourceId::kDiskCacheSpace, 100.0);
  int upcalls = 0;
  ResourceDescriptor descriptor;
  descriptor.resource = ResourceId::kDiskCacheSpace;
  descriptor.lower = 90.0;
  descriptor.upper = 110.0;
  descriptor.handler = [&](RequestId, ResourceId, double) { ++upcalls; };
  const RequestResult result = rig_.client().Request(app_, descriptor);
  ASSERT_TRUE(result.ok());
  // Violating the window posts the upcall and consumes the registration;
  // the delivery is in flight but not yet in the application.
  viceroy.SetStaticLevel(ResourceId::kDiskCacheSpace, 10.0);
  EXPECT_EQ(upcalls, 0);
  // A cancel racing the in-flight upcall must lose: the entry is gone, so
  // the cancel reports failure and the delivery still happens exactly once.
  EXPECT_FALSE(rig_.client().Cancel(result.id).ok());
  rig_.sim().RunUntil(rig_.sim().now() + kSecond);
  EXPECT_EQ(upcalls, 1);

  // The dual guarantee (the upcall-after-cancel oracle relies on it): a
  // cancel that returns ok proves no upcall was posted, so none may ever
  // arrive for that registration.
  int late_upcalls = 0;
  ResourceDescriptor second;
  second.resource = ResourceId::kDiskCacheSpace;
  second.lower = 5.0;
  second.upper = 20.0;
  second.handler = [&](RequestId, ResourceId, double) { ++late_upcalls; };
  const RequestResult granted = rig_.client().Request(app_, second);
  ASSERT_TRUE(granted.ok());
  EXPECT_TRUE(rig_.client().Cancel(granted.id).ok());
  viceroy.SetStaticLevel(ResourceId::kDiskCacheSpace, 1000.0);
  rig_.sim().RunUntil(rig_.sim().now() + kSecond);
  EXPECT_EQ(late_upcalls, 0);
}

TEST_F(WardenTest, SpeechRecognizeOnZeroBandwidthLinkEndsLocal) {
  // An adaptive recognition issued while the link is dead must complete —
  // either by planning local outright or via the watchdog — never hang.
  rig_.modulator().Replay(MakeConstant(0.0, 5 * kMinute, kOneWayLatency));
  rig_.client().Tsop(app_, SpeechPath(), kSpeechSetMode,
                     PackStruct(SpeechSetModeRequest{static_cast<int>(SpeechMode::kAdaptive)}),
                     [](Status, std::string) {});
  SpeechResult result;
  bool finished = false;
  rig_.client().Tsop(app_, SpeechPath(), kSpeechRecognize,
                     PackStruct(SpeechUtterance{kSpeechRawBytes}),
                     [&](Status s, std::string out) {
                       EXPECT_TRUE(s.ok());
                       EXPECT_TRUE(UnpackStruct(out, &result));
                       finished = true;
                     });
  rig_.sim().RunUntil(rig_.sim().now() + kMinute);
  ASSERT_TRUE(finished);
  EXPECT_EQ(result.plan, static_cast<int>(SpeechMode::kAlwaysLocal));
}

TEST_F(WardenTest, TelemetrySubscribeOnZeroBandwidthLinkStallsSafely) {
  TelemetryServer server(&rig_.sim());
  server.CreateFeed("stocks/ACME", 100 * kMillisecond, 100.0, 0.2);
  rig_.client().InstallWarden(std::make_unique<TelemetryWarden>(&server));
  rig_.modulator().Replay(MakeConstant(0.0, 5 * kMinute, kOneWayLatency));
  const std::string path = std::string(kOdysseyRoot) + "telemetry/stocks/ACME";
  // Subscribing is a control operation: it must succeed with no network.
  Status subscribed;
  rig_.client().Tsop(app_, path, kTelemetrySubscribe,
                     PackStruct(TelemetrySubscribeRequest{0}),
                     [&](Status s, std::string) { subscribed = s; });
  ASSERT_TRUE(subscribed.ok());
  rig_.sim().RunUntil(rig_.sim().now() + 20 * kSecond);
  // The poll pipeline stalls on the dead link: it must neither fabricate
  // samples nor crash, and the stats op still answers locally.
  TelemetryStats stats;
  Status stats_status;
  rig_.client().Tsop(app_, path, kTelemetryStats, "",
                     [&](Status s, std::string out) {
                       stats_status = s;
                       EXPECT_TRUE(UnpackStruct(out, &stats));
                     });
  ASSERT_TRUE(stats_status.ok());
  EXPECT_LE(stats.samples_delivered, 2);
  Status unsubscribed;
  rig_.client().Tsop(app_, path, kTelemetryUnsubscribe, "",
                     [&](Status s, std::string) { unsubscribed = s; });
  EXPECT_TRUE(unsubscribed.ok());
}

}  // namespace
}  // namespace odyssey

// Property and golden tests for src/mobility (DESIGN.md §14).
//
// The contracts under test are the ones the rest of the system leans on:
// every model is a pure function of (seed, params, virtual time) — bit
// identical across runs and across RunIndexedTasks worker counts — moves no
// faster than max_speed_mps(), and never leaves its arena; the radio
// pipeline is deterministic and monotone in distance (with shadowing off);
// and sampled waveforms keep the drain guarantee the fuzzer documents.
//
// To regenerate the golden waveform after an intentional pipeline change:
//   ODY_REGEN_GOLDEN=1 ./mobility_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/harness/worker_pool.h"
#include "src/mobility/mobility_model.h"
#include "src/mobility/radio_environment.h"
#include "src/mobility/waveform_source.h"
#include "src/tracemod/replay_trace.h"

namespace odyssey {
namespace {

constexpr uint64_t kSeeds[] = {1, 2, 3, 17, 1997, 0xdeadbeefull};

// Builds every model kind at |seed| with default parameters.
std::vector<std::unique_ptr<MobilityModel>> AllModels(uint64_t seed) {
  std::vector<std::unique_ptr<MobilityModel>> models;
  models.push_back(std::make_unique<RandomWaypoint>(RandomWaypointParams{}, seed));
  models.push_back(std::make_unique<ManhattanGrid>(ManhattanGridParams{}, seed));
  models.push_back(std::make_unique<GaussMarkov>(GaussMarkovParams{}, seed));
  models.push_back(std::make_unique<WaypointTrace>());
  return models;
}

// --- Determinism ---

TEST(MobilityModelTest, TracksAreBitIdenticalAcrossConstructions) {
  for (const uint64_t seed : kSeeds) {
    const auto first = AllModels(seed);
    const auto second = AllModels(seed);
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
      for (Time t = 0; t <= 130 * kSecond; t += 173 * kMillisecond) {
        const Vec2 a = first[i]->PositionAt(t);
        const Vec2 b = second[i]->PositionAt(t);
        EXPECT_EQ(a.x, b.x) << first[i]->name() << " seed " << seed << " t " << t;
        EXPECT_EQ(a.y, b.y) << first[i]->name() << " seed " << seed << " t " << t;
      }
    }
  }
}

TEST(MobilityModelTest, DifferentSeedsGiveDifferentTracks) {
  const RandomWaypoint a(RandomWaypointParams{}, 1);
  const RandomWaypoint b(RandomWaypointParams{}, 2);
  bool differs = false;
  for (Time t = 0; t <= 120 * kSecond && !differs; t += kSecond) {
    differs = Distance(a.PositionAt(t), b.PositionAt(t)) > 1e-9;
  }
  EXPECT_TRUE(differs);
}

TEST(MobilityWaveformTest, WaveformIsBitIdenticalAcrossJobCounts) {
  // The campaign runner fans trials across a worker pool; a waveform built
  // on any worker must serialize byte-identically to one built serially.
  MobilityScenarioSpec spec;
  spec.layout = BaseStationLayout::kCellGrid;
  std::vector<std::string> serial(std::size(kSeeds));
  for (size_t i = 0; i < std::size(kSeeds); ++i) {
    serial[i] = MakeMobilityWaveform(spec, kSeeds[i]).Serialize();
  }
  std::vector<std::string> pooled(std::size(kSeeds));
  RunIndexedTasks(4, std::size(kSeeds), [&](size_t i) {  // ody_lint: owned-capture
    pooled[i] = MakeMobilityWaveform(spec, kSeeds[i]).Serialize();
  });
  EXPECT_EQ(serial, pooled);
}

// --- Physical plausibility ---

TEST(MobilityModelTest, PositionsAreContinuousUnderMaxSpeed) {
  // No teleports: between consecutive samples the displacement is bounded
  // by max_speed * dt.  Leg end times are rounded to whole microseconds
  // (floor), so a leg's realized speed can exceed nominal by up to one
  // microsecond's worth — the 1e-3 relative slack covers that with room.
  constexpr Duration kDt = 100 * kMillisecond;
  for (const uint64_t seed : kSeeds) {
    for (const auto& model : AllModels(seed)) {
      const double bound = model->max_speed_mps() * DurationToSeconds(kDt) * 1.001 + 1e-9;
      Vec2 prev = model->PositionAt(0);
      for (Time t = kDt; t <= 130 * kSecond; t += kDt) {
        const Vec2 next = model->PositionAt(t);
        EXPECT_LE(Distance(prev, next), bound)
            << model->name() << " seed " << seed << " t " << t;
        prev = next;
      }
    }
  }
}

TEST(MobilityModelTest, PositionsStayInsideArena) {
  for (const uint64_t seed : kSeeds) {
    for (const auto& model : AllModels(seed)) {
      const Arena& arena = model->arena();
      for (Time t = 0; t <= 130 * kSecond; t += 250 * kMillisecond) {
        const Vec2 p = model->PositionAt(t);
        EXPECT_GE(p.x, 0.0) << model->name() << " seed " << seed << " t " << t;
        EXPECT_LE(p.x, arena.width_m) << model->name() << " seed " << seed << " t " << t;
        EXPECT_GE(p.y, 0.0) << model->name() << " seed " << seed << " t " << t;
        EXPECT_LE(p.y, arena.height_m) << model->name() << " seed " << seed << " t " << t;
      }
    }
  }
}

TEST(MobilityModelTest, PositionIsTotalBeyondTrackEnds) {
  const RandomWaypoint model(RandomWaypointParams{}, 7);
  const Vec2 start = model.PositionAt(0);
  const Vec2 before = model.PositionAt(-5 * kSecond);
  EXPECT_EQ(before.x, start.x);
  EXPECT_EQ(before.y, start.y);
  // Legs are generated until they cover the nominal duration, so the track
  // ends at the final leg's boundary, somewhere past 120 s; after that the
  // model parks at the final position forever.
  const Vec2 parked = model.PositionAt(1000 * kSecond);
  const Vec2 later = model.PositionAt(100000 * kSecond);
  EXPECT_EQ(later.x, parked.x);
  EXPECT_EQ(later.y, parked.y);
}

// --- Radio environment ---

TEST(RadioEnvironmentTest, SnrFallsWithDistanceWithoutShadowing) {
  RadioParams params;
  params.shadowing_sigma_db = 0.0;
  const Arena arena;
  const RadioEnvironment env(BaseStationLayout::kSingleCell, arena, params, 1);
  ASSERT_EQ(env.stations().size(), 1u);
  const Vec2 station = env.stations()[0];
  double prev_snr = env.SnrDbAt(station);
  for (double d = 10.0; d <= 490.0; d += 20.0) {
    const double snr = env.SnrDbAt(Vec2{station.x + d, station.y});
    EXPECT_LT(snr, prev_snr) << "distance " << d;
    prev_snr = snr;
  }
}

TEST(RadioEnvironmentTest, TiersStepDownToDeadZone) {
  RadioParams params;
  params.shadowing_sigma_db = 0.0;
  const Arena arena{4000.0, 4000.0};
  const RadioEnvironment env(BaseStationLayout::kSingleCell, arena, params, 1);
  const Vec2 station = env.stations()[0];
  // At the station: the top tier.  Far enough out: the dead zone.
  EXPECT_EQ(env.TierAt(station), WaveLanTiers().front());
  EXPECT_EQ(env.TierAt(Vec2{0.0, 0.0}), DeadZoneTier());
  // The granted bandwidth is monotone non-increasing along a ray.
  double prev_bw = env.TierAt(station).bandwidth_bps;
  for (double d = 5.0; d <= 1995.0; d += 10.0) {
    const double bw = env.TierAt(Vec2{station.x + d, station.y}).bandwidth_bps;
    EXPECT_LE(bw, prev_bw) << "distance " << d;
    prev_bw = bw;
  }
}

TEST(RadioEnvironmentTest, ShadowingIsDeterministicPerSeed) {
  const Arena arena;
  const RadioParams params;
  const RadioEnvironment a(BaseStationLayout::kSingleCell, arena, params, 42);
  const RadioEnvironment b(BaseStationLayout::kSingleCell, arena, params, 42);
  const RadioEnvironment c(BaseStationLayout::kSingleCell, arena, params, 43);
  bool differs = false;
  for (double x = 0.0; x <= 1000.0; x += 37.0) {
    for (double y = 0.0; y <= 1000.0; y += 41.0) {
      const Vec2 p{x, y};
      EXPECT_EQ(a.ShadowingDbAt(p), b.ShadowingDbAt(p)) << x << "," << y;
      differs = differs || a.ShadowingDbAt(p) != c.ShadowingDbAt(p);
    }
  }
  EXPECT_TRUE(differs) << "seed does not influence shadowing";
}

TEST(RadioEnvironmentTest, LayoutsCoverTheArena) {
  const Arena arena;
  const RadioParams params;
  const RadioEnvironment single(BaseStationLayout::kSingleCell, arena, params, 1);
  EXPECT_EQ(single.stations().size(), 1u);
  const RadioEnvironment grid(BaseStationLayout::kCellGrid, arena, params, 1);
  EXPECT_GT(grid.stations().size(), 1u);
  const RadioEnvironment corridor(BaseStationLayout::kCorridor, arena, params, 1);
  EXPECT_GE(corridor.stations().size(), 2u);
  for (const Vec2& station : corridor.stations()) {
    EXPECT_EQ(station.y, arena.height_m / 2.0);
  }
}

// --- Waveform sampling ---

TEST(MobilityWaveformTest, SegmentsSumExactlyToDurationWithLiveTail) {
  for (const uint64_t seed : kSeeds) {
    for (int model = 0; model < kMobilityModelKinds; ++model) {
      for (int layout = 0; layout < kBaseStationLayouts; ++layout) {
        MobilityScenarioSpec spec;
        spec.model = static_cast<MobilityModelKind>(model);
        spec.layout = static_cast<BaseStationLayout>(layout);
        const ReplayTrace waveform = MakeMobilityWaveform(spec, seed);
        ASSERT_FALSE(waveform.empty());
        EXPECT_EQ(waveform.TotalDuration(), spec.duration)
            << MobilityModelKindName(spec.model) << "/" << BaseStationLayoutName(spec.layout)
            << " seed " << seed;
        EXPECT_GT(waveform.segments().back().bandwidth_bps, 0.0)
            << MobilityModelKindName(spec.model) << "/" << BaseStationLayoutName(spec.layout)
            << " seed " << seed;
        for (const TraceSegment& segment : waveform.segments()) {
          EXPECT_GT(segment.duration, 0);
          EXPECT_GE(segment.bandwidth_bps, 0.0);
        }
      }
    }
  }
}

TEST(MobilityWaveformTest, AdjacentSegmentsDiffer) {
  // The sampler merges runs of equal parameters, so no two neighbours may
  // share both bandwidth and latency (the live-tail patch may only alter
  // the final segment, which keeps the property).
  MobilityScenarioSpec spec;
  spec.layout = BaseStationLayout::kCellGrid;
  for (const uint64_t seed : kSeeds) {
    const ReplayTrace waveform = MakeMobilityWaveform(spec, seed);
    const std::vector<TraceSegment>& segments = waveform.segments();
    for (size_t i = 0; i + 2 < segments.size(); ++i) {
      const bool same_bandwidth = segments[i].bandwidth_bps == segments[i + 1].bandwidth_bps;
      EXPECT_FALSE(same_bandwidth && segments[i].latency == segments[i + 1].latency)
          << "seed " << seed << " segment " << i;
    }
  }
}

// --- Golden waveform ---

const char* GoldenPath() { return ODYSSEY_GOLDEN_DIR "/mobility_rwp_seed1.txt"; }

TEST(MobilityGoldenTest, RandomWaypointSeed1MatchesCheckedInWaveform) {
  // The default spec (random waypoint, single cell) at seed 1: any change
  // to the motion models, the radio pipeline, or the sampler shows up here
  // as a precise textual diff.
  const std::string current = MakeMobilityWaveform(MobilityScenarioSpec{}, 1).Serialize();

  if (std::getenv("ODY_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath(), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    out << current;
    GTEST_SKIP() << "regenerated " << GoldenPath();
  }

  std::ifstream in(GoldenPath(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << GoldenPath()
                         << "; regenerate with ODY_REGEN_GOLDEN=1";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(golden.str(), current)
      << "(if the change is intentional, regenerate with ODY_REGEN_GOLDEN=1 ./mobility_test)";
}

}  // namespace
}  // namespace odyssey

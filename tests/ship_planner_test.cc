// Tests for the generic function-versus-data shipping planner and the
// speech warden's vocabulary fidelity levels built on it.

#include <limits>

#include <gtest/gtest.h>

#include "src/core/ship_planner.h"
#include "src/core/tsop_codec.h"
#include "src/metrics/experiment.h"
#include "src/wardens/speech_warden.h"

namespace odyssey {
namespace {

constexpr double kKb = 1024.0;

TEST(ShipPlannerTest, LocalCandidateIgnoresNetwork) {
  ShipCandidate local{"local", 2 * kSecond, 0, 0.0, 0.0};
  EXPECT_TRUE(ShipPlanner::IsLocal(local));
  EXPECT_EQ(ShipPlanner::Predict(local, 0.0, 0), 2 * kSecond);
  EXPECT_EQ(ShipPlanner::Predict(local, 1e9, 0), 2 * kSecond);
}

TEST(ShipPlannerTest, NetworkCandidateInfeasibleAtZeroBandwidth) {
  ShipCandidate remote{"remote", 0, kSecond, 10.0 * kKb, 0.0};
  EXPECT_FALSE(ShipPlanner::IsLocal(remote));
  EXPECT_EQ(ShipPlanner::Predict(remote, 0.0, 0), std::numeric_limits<Duration>::max());
}

TEST(ShipPlannerTest, PredictSumsComputeTransferAndRtt) {
  ShipCandidate candidate{"c", 100 * kMillisecond, 200 * kMillisecond, 50.0 * kKb, 50.0 * kKb};
  const Duration predicted = ShipPlanner::Predict(candidate, 100.0 * kKb, 21 * kMillisecond);
  // 0.1 + 0.2 compute, 100KB/100KBps = 1.0 transfer, 0.021 rtt.
  EXPECT_EQ(predicted, SecondsToDuration(0.1 + 0.2 + 1.0 + 0.021));
}

TEST(ShipPlannerTest, RemoteOnlyComputeStillPaysRtt) {
  ShipCandidate candidate{"rpc", 0, kSecond, 0.0, 0.0};
  EXPECT_EQ(ShipPlanner::Predict(candidate, 100.0 * kKb, 21 * kMillisecond),
            kSecond + 21 * kMillisecond);
  EXPECT_EQ(ShipPlanner::Predict(candidate, 0.0, 21 * kMillisecond),
            std::numeric_limits<Duration>::max());
}

TEST(ShipPlannerTest, ChoosePicksFastestFeasible) {
  const std::vector<ShipCandidate> candidates = {
      {"slow-local", 10 * kSecond, 0, 0.0, 0.0},
      {"fast-remote", 0, kSecond, 10.0 * kKb, 0.0},
  };
  // Plenty of bandwidth: remote wins.
  EXPECT_EQ(ShipPlanner::Choose(candidates, 1000.0 * kKb, kMillisecond), 1);
  // No bandwidth: remote infeasible, local wins.
  EXPECT_EQ(ShipPlanner::Choose(candidates, 0.0, kMillisecond), 0);
}

TEST(ShipPlannerTest, ChooseEmptyOrAllInfeasible) {
  EXPECT_EQ(ShipPlanner::Choose({}, 1e6, 0), -1);
  const std::vector<ShipCandidate> only_remote = {{"r", 0, kSecond, 1.0, 0.0}};
  EXPECT_EQ(ShipPlanner::Choose(only_remote, 0.0, 0), -1);
}

TEST(ShipPlannerTest, CrossoverMovesWithBandwidth) {
  // Local costs a fixed 1 s; remote costs 0.1 s compute plus shipping 90 KB.
  const std::vector<ShipCandidate> candidates = {
      {"local", kSecond, 0, 0.0, 0.0},
      {"remote", 0, 100 * kMillisecond, 90.0 * kKb, 0.0},
  };
  // Below the crossover (90KB / 0.9s = 100 KB/s) local wins...
  EXPECT_EQ(ShipPlanner::Choose(candidates, 50.0 * kKb, 0), 0);
  // ...above it remote wins.
  EXPECT_EQ(ShipPlanner::Choose(candidates, 400.0 * kKb, 0), 1);
}

// --- Speech candidates through the planner ---

TEST(SpeechCandidatesTest, ThreePlansWithExpectedShape) {
  const std::vector<ShipCandidate> candidates = SpeechWarden::Candidates(kSpeechRawBytes, 0);
  ASSERT_EQ(candidates.size(), 3u);
  EXPECT_EQ(candidates[0].name, "hybrid");
  EXPECT_EQ(candidates[1].name, "remote");
  EXPECT_EQ(candidates[2].name, "local");
  // Hybrid ships 5:1 compressed data; remote ships raw.
  EXPECT_NEAR(candidates[0].upload_bytes * kSpeechCompressionRatio, candidates[1].upload_bytes,
              1.0);
  EXPECT_TRUE(ShipPlanner::IsLocal(candidates[2]));
  // Local is the most client-compute-intensive by far.
  EXPECT_GT(candidates[2].local_compute, 4 * candidates[0].local_compute);
}

TEST(SpeechCandidatesTest, SmallerVocabularyComputesFaster) {
  const auto full = SpeechWarden::Candidates(kSpeechRawBytes, 0);
  const auto tiny = SpeechWarden::Candidates(kSpeechRawBytes, 2);
  EXPECT_LT(tiny[0].remote_compute, full[0].remote_compute);
  EXPECT_LT(tiny[2].local_compute, full[2].local_compute);
  // Shipping costs do not change with vocabulary.
  EXPECT_DOUBLE_EQ(tiny[0].upload_bytes, full[0].upload_bytes);
}

TEST(SpeechVocabularyTest, NoGoalMeansFullFidelity) {
  EXPECT_EQ(SpeechWarden::ChooseVocabulary(SpeechMode::kAlwaysHybrid, kSpeechRawBytes, 0.0,
                                           kHighBandwidth, 21 * kMillisecond),
            0);
}

TEST(SpeechVocabularyTest, TightGoalLowersVocabulary) {
  // Hybrid at high bandwidth takes ~0.7 s at full vocabulary; a 0.5 s goal
  // forces a smaller one.
  const int vocab = SpeechWarden::ChooseVocabulary(SpeechMode::kAlwaysHybrid, kSpeechRawBytes,
                                                   0.5, kHighBandwidth, 21 * kMillisecond);
  EXPECT_GT(vocab, 0);
  // An impossible goal degrades to the tiny vocabulary rather than failing.
  const int tiny = SpeechWarden::ChooseVocabulary(SpeechMode::kAlwaysHybrid, kSpeechRawBytes,
                                                  0.01, kHighBandwidth, 21 * kMillisecond);
  EXPECT_EQ(tiny, static_cast<int>(std::size(kSpeechVocabularies)) - 1);
}

TEST(SpeechVocabularyTest, VocabularyFidelitiesStrictlyDecrease) {
  for (size_t i = 1; i < std::size(kSpeechVocabularies); ++i) {
    EXPECT_LT(kSpeechVocabularies[i].fidelity, kSpeechVocabularies[i - 1].fidelity);
    EXPECT_LT(kSpeechVocabularies[i].compute_factor, kSpeechVocabularies[i - 1].compute_factor);
  }
}

TEST(SpeechVocabularyTest, EndToEndGoalDrivenRecognition) {
  ExperimentRig rig(1, StrategyKind::kOdyssey);
  const AppId app = rig.client().RegisterApplication("speech");
  rig.Replay(MakeConstant(kHighBandwidth, 5 * kMinute), /*prime=*/false);

  const auto recognize = [&](double goal_seconds) {
    SpeechResult result;
    const Time start = rig.sim().now();
    Time end = start;
    rig.client().Tsop(app, std::string(kOdysseyRoot) + "speech/janus", kSpeechRecognize,
                      PackStruct(SpeechUtterance{kSpeechRawBytes, goal_seconds}),
                      [&](Status status, std::string out) {
                        ASSERT_TRUE(status.ok());
                        EXPECT_TRUE(UnpackStruct(out, &result));
                        end = rig.sim().now();
                      });
    rig.sim().RunUntil(rig.sim().now() + 30 * kSecond);
    return std::pair<SpeechResult, Duration>(result, end - start);
  };

  // Warm the estimator with one unconstrained recognition.
  recognize(0.0);
  const auto [full, full_time] = recognize(0.0);
  EXPECT_DOUBLE_EQ(full.fidelity, 1.0);
  const auto [fast, fast_time] = recognize(0.5);
  EXPECT_LT(fast.fidelity, 1.0);
  EXPECT_LT(fast_time, full_time);
  EXPECT_LE(DurationToSeconds(fast_time), 0.55);
}

}  // namespace
}  // namespace odyssey

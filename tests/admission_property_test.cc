// Property tests for AdmissionDecision and the admission broker.
//
// The three properties the QoS layer promises (DESIGN.md §16):
//   * monotonicity — with commitments held fixed, raising the supply
//     estimate never flips a decision from admit to reject;
//   * exactly-once — every level-passing registration attempt produces
//     exactly one logged decision, and every granted request id appears in
//     exactly one admit event;
//   * reject means nothing — a rejected attempt registers no window, moves
//     no bytes, and its app never hears an upcall.
// Plus the degrade path: a supply drop below the committed total sheds the
// largest commitments, caps the victims at their fair share, and the cap
// lifts when the app re-registers.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/viceroy.h"
#include "src/metrics/experiment.h"
#include "src/net/link.h"
#include "src/net/modulator.h"
#include "src/rpc/endpoint.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"
#include "src/strategies/admission_broker.h"
#include "src/strategies/centralized.h"
#include "src/tracemod/replay_trace.h"

namespace odyssey {
namespace {

constexpr double kKb = 1024.0;

using Verdict = AdmissionVerdict;
using Event = AdmissionBrokerStrategy::AdmissionEvent;

ResourceDescriptor BandwidthWindow(double lower, double upper) {
  ResourceDescriptor descriptor;
  descriptor.resource = ResourceId::kNetworkBandwidth;
  descriptor.lower = lower;
  descriptor.upper = upper;
  descriptor.handler = [](RequestId, ResourceId, double) {};
  return descriptor;
}

// A standalone broker (no viceroy) whose estimate is driven by synthetic
// throughput observations, so probes can interleave with supply movement
// at exact points.
class BrokerProbe {
 public:
  BrokerProbe() : link_(&sim_, 400.0 * kKb, 10 * kMillisecond) {
    auto inner = std::make_unique<CentralizedStrategy>(&sim_);
    broker_ = std::make_unique<AdmissionBrokerStrategy>(&sim_, std::move(inner));
    for (int i = 0; i < 2; ++i) {
      endpoints_.push_back(
          std::make_unique<Endpoint>(&sim_, &link_, "server" + std::to_string(i)));
      broker_->AttachConnection(static_cast<AppId>(i + 1), endpoints_.back().get());
    }
  }

  // Feeds one second of observations at |rate_bps| per connection and
  // drains the simulation.
  void Feed(double rate_bps) {
    const Duration period = 50 * kMillisecond;
    for (int tick = 1; tick <= 20; ++tick) {
      sim_.Post(tick * period, [this, rate_bps, period] {
        for (const std::unique_ptr<Endpoint>& endpoint : endpoints_) {
          endpoint->log().RecordThroughput(sim_.now(), rate_bps * DurationToSeconds(period),
                                           period);
        }
      });
    }
    sim_.Run();
  }

  AdmissionBrokerStrategy& broker() { return *broker_; }
  Simulation& sim() { return sim_; }

 private:
  Simulation sim_{11};
  Link link_;
  std::unique_ptr<AdmissionBrokerStrategy> broker_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

TEST(AdmissionPropertyTest, DecisionMonotoneInSupply) {
  BrokerProbe probe;
  probe.Feed(40.0 * kKb);
  ASSERT_TRUE(probe.broker().HasEstimate());

  // Fix one modest commitment for the whole sweep (well under the lowest
  // supply the sweep sees, so the degrade path never touches it).
  const ResourceDescriptor held = BandwidthWindow(10.0 * kKb, 200.0 * kKb);
  ASSERT_EQ(probe.broker().DecideAdmission(1, held, probe.sim().now()).verdict,
            Verdict::kAdmitted);
  probe.broker().OnWindowRegistered(1, 77, held);
  ASSERT_DOUBLE_EQ(probe.broker().CommittedTotal(), 10.0 * kKb);

  // Probe the same descriptor as the estimate climbs, recording
  // (supply, verdict) pairs.
  const ResourceDescriptor probe_window = BandwidthWindow(95.0 * kKb, 500.0 * kKb);
  struct Sample {
    double supply;
    Verdict verdict;
  };
  std::vector<Sample> samples;
  for (const double rate : {40.0, 60.0, 80.0, 100.0, 130.0, 160.0}) {
    probe.Feed(rate * kKb);
    const Time now = probe.sim().now();
    samples.push_back({probe.broker().TotalSupply(now),
                       probe.broker().DecideAdmission(2, probe_window, now).verdict});
  }
  // The sweep must actually cross the admission threshold.
  EXPECT_TRUE(std::any_of(samples.begin(), samples.end(),
                          [](const Sample& s) { return s.verdict == Verdict::kRejected; }));
  EXPECT_TRUE(std::any_of(samples.begin(), samples.end(),
                          [](const Sample& s) { return s.verdict == Verdict::kAdmitted; }));
  // Monotonicity over every pair: more supply never turns admit into
  // reject while commitments are fixed.
  for (const Sample& low : samples) {
    for (const Sample& high : samples) {
      if (low.supply <= high.supply && low.verdict == Verdict::kAdmitted) {
        EXPECT_EQ(high.verdict, Verdict::kAdmitted)
            << "admit at supply " << low.supply << " but reject at " << high.supply;
      }
    }
  }
}

// A full viceroy rig around the broker, for the lifecycle properties.
class BrokerRig {
 public:
  BrokerRig() : link_(&sim_, 200.0 * kKb, 10 * kMillisecond) {
    auto inner = std::make_unique<CentralizedStrategy>(&sim_);
    auto broker = std::make_unique<AdmissionBrokerStrategy>(&sim_, std::move(inner));
    broker_ = broker.get();
    viceroy_ = std::make_unique<Viceroy>(&sim_, std::move(broker), kUpcallLatency);
    viceroy_->upcalls().set_delivery_observer(
        [this](AppId app, uint64_t, RequestId, ResourceId, double, Time) {
          upcalls_by_app_[app] += 1;  // ody_lint: owned-capture
        });
  }

  ~BrokerRig() { viceroy_->upcalls().set_delivery_observer({}); }

  AppId AddApp(const std::string& name) {
    const AppId app = viceroy_->RegisterApplication(name);
    endpoints_.push_back(
        std::make_unique<Endpoint>(&sim_, &link_, name + "-server"));
    viceroy_->AttachConnection(app, endpoints_.back().get());
    return app;
  }

  void Feed(double rate_bps) {
    const Duration period = 50 * kMillisecond;
    for (int tick = 1; tick <= 20; ++tick) {
      sim_.Post(tick * period, [this, rate_bps, period] {
        for (const std::unique_ptr<Endpoint>& endpoint : endpoints_) {
          endpoint->log().RecordThroughput(sim_.now(), rate_bps * DurationToSeconds(period),
                                           period);
        }
      });
    }
    sim_.Run();
  }

  RequestResult Request(AppId app, double lo_frac, double hi_frac) {
    const double level = viceroy_->CurrentLevel(app, ResourceId::kNetworkBandwidth);
    return viceroy_->Request(app, BandwidthWindow(level * lo_frac, level * hi_frac + 1.0));
  }

  uint64_t UpcallsFor(AppId app) const {
    const auto it = upcalls_by_app_.find(app);
    return it == upcalls_by_app_.end() ? 0 : it->second;
  }

  Simulation& sim() { return sim_; }
  Viceroy& viceroy() { return *viceroy_; }
  AdmissionBrokerStrategy& broker() { return *broker_; }
  Link& link() { return link_; }

 private:
  Simulation sim_{13};
  Link link_;
  std::unique_ptr<Viceroy> viceroy_;
  AdmissionBrokerStrategy* broker_ = nullptr;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::map<AppId, uint64_t> upcalls_by_app_;
};

TEST(AdmissionPropertyTest, ExactlyOneDecisionPerRegistrationAttempt) {
  BrokerRig rig;
  const AppId first = rig.AddApp("first");
  const AppId second = rig.AddApp("second");
  rig.Feed(80.0 * kKb);

  // Level-passing attempt: one admit entry carrying the granted id.  A
  // half-level window: each app's availability runs well above half the
  // supply estimate (usage plus idle share), so 0.9-level commitments
  // would overcommit after just two windows.
  const RequestResult granted = rig.Request(first, 0.5, 1.2);
  ASSERT_TRUE(granted.ok());
  ASSERT_EQ(rig.broker().admission_log().size(), 1u);
  EXPECT_EQ(rig.broker().admission_log()[0].decision.verdict, Verdict::kAdmitted);
  EXPECT_EQ(rig.broker().admission_log()[0].request, granted.id);

  // Level-failing attempt: the window cannot contain the current level, so
  // the broker is never consulted — no new entry.
  const double level = rig.viceroy().CurrentLevel(first, ResourceId::kNetworkBandwidth);
  const RequestResult out_of_band =
      rig.viceroy().Request(first, BandwidthWindow(level * 4.0, level * 5.0));
  ASSERT_FALSE(out_of_band.ok());
  EXPECT_EQ(rig.broker().admission_log().size(), 1u);

  // Overcommit: a second window for |first| admits, then |second|'s
  // attempt rejects — one entry each, the reject carrying no request id.
  const RequestResult extra = rig.Request(first, 0.5, 1.2);
  ASSERT_TRUE(extra.ok());
  const RequestResult rejected = rig.Request(second, 0.9, 1.2);
  ASSERT_FALSE(rejected.ok());
  const std::vector<Event>& log = rig.broker().admission_log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[1].request, extra.id);
  EXPECT_EQ(log[2].decision.verdict, Verdict::kRejected);
  EXPECT_EQ(log[2].request, 0u);

  // Every granted id appears in exactly one admit event.
  for (const RequestId id : {granted.id, extra.id}) {
    int count = 0;
    for (const Event& event : log) {
      if (event.request == id && event.decision.verdict == Verdict::kAdmitted) {
        ++count;
      }
    }
    EXPECT_EQ(count, 1) << "request " << id;
  }
}

TEST(AdmissionPropertyTest, RejectedWindowDeliversNothing) {
  BrokerRig rig;
  const AppId greedy = rig.AddApp("greedy");
  const AppId late = rig.AddApp("late");
  rig.Feed(80.0 * kKb);

  ASSERT_TRUE(rig.Request(greedy, 0.5, 1.2).ok());
  ASSERT_TRUE(rig.Request(greedy, 0.5, 1.2).ok());
  const double bytes_before = rig.link().bytes_delivered();
  const RequestResult rejected = rig.Request(late, 0.9, 1.2);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.admission.verdict, Verdict::kRejected);
  EXPECT_EQ(rejected.admission.reason_code, AdmissionBrokerStrategy::kReasonOverCommitted);
  // Nothing registered: no id, no cancellable window, no bytes moved.
  EXPECT_EQ(rejected.id, 0u);
  EXPECT_FALSE(rig.viceroy().Cancel(rejected.id).ok());
  EXPECT_EQ(rig.link().bytes_delivered(), bytes_before);
  // And the rejected app never hears an upcall, however the estimate moves.
  rig.Feed(30.0 * kKb);
  rig.Feed(150.0 * kKb);
  EXPECT_EQ(rig.UpcallsFor(late), 0u);
}

TEST(AdmissionPropertyTest, SupplyDropDegradesLargestCommitmentAndReregistrationLifts) {
  // Driven without a viceroy: in the full rig the dropping availability
  // usually violates the window first, the upcall consumes it and the
  // commitment is released before supply falls below the committed total
  // (re-registration at the lower level is the common path).  The degrade
  // branch is the backstop for windows that hold on; exercise it directly.
  BrokerProbe probe;
  probe.Feed(80.0 * kKb);
  ASSERT_TRUE(probe.broker().HasEstimate());
  const Time at = probe.sim().now();
  const double supply = probe.broker().TotalSupply(at);

  // Two commitments: |big| (app 1) reserves twice what |small| (app 2)
  // does, together just inside the estimate.
  const ResourceDescriptor big_window = BandwidthWindow(supply * 0.6, supply * 2.0);
  const ResourceDescriptor small_window = BandwidthWindow(supply * 0.3, supply * 2.0);
  ASSERT_EQ(probe.broker().DecideAdmission(1, big_window, at).verdict, Verdict::kAdmitted);
  probe.broker().OnWindowRegistered(1, 101, big_window);
  ASSERT_EQ(probe.broker().DecideAdmission(2, small_window, at).verdict, Verdict::kAdmitted);
  probe.broker().OnWindowRegistered(2, 102, small_window);
  const double committed = probe.broker().CommittedTotal();
  ASSERT_DOUBLE_EQ(committed, supply * 0.9);

  // Collapse the estimate below the committed total: the broker must shed
  // the largest commitment and cap its app at the fair share of supply.
  probe.Feed(4.0 * kKb);
  probe.Feed(4.0 * kKb);
  probe.Feed(4.0 * kKb);
  ASSERT_LT(probe.broker().TotalSupply(probe.sim().now()), committed);
  ASSERT_TRUE(probe.broker().IsDegraded(1));
  EXPECT_LT(probe.broker().CommittedTotal(), committed);
  const std::vector<Event>& log = probe.broker().admission_log();
  const auto degrade = std::find_if(log.begin(), log.end(), [](const Event& event) {
    return event.decision.verdict == Verdict::kDegraded;
  });
  ASSERT_NE(degrade, log.end());
  EXPECT_EQ(degrade->app, 1u);
  EXPECT_EQ(degrade->request, 101u);
  EXPECT_EQ(degrade->decision.reason_code, AdmissionBrokerStrategy::kReasonOverloadDegrade);
  EXPECT_GT(degrade->decision.granted_level, 0.0);
  // The cap binds availability until the app re-registers.
  const Time now = probe.sim().now();
  EXPECT_LE(probe.broker().AvailabilityFor(1, now), degrade->decision.granted_level);

  // A freshly admitted window lifts the cap.
  const double low_supply = probe.broker().TotalSupply(now);
  const ResourceDescriptor retry = BandwidthWindow(low_supply * 0.2, low_supply * 3.0);
  ASSERT_EQ(probe.broker().DecideAdmission(1, retry, now).verdict, Verdict::kAdmitted);
  probe.broker().OnWindowRegistered(1, 103, retry);
  EXPECT_FALSE(probe.broker().IsDegraded(1));
}

}  // namespace
}  // namespace odyssey

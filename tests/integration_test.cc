// Integration tests: whole-system behaviours the paper's evaluation claims.

#include <gtest/gtest.h>

#include "src/apps/bitstream_app.h"
#include "src/apps/speech_frontend.h"
#include "src/apps/video_player.h"
#include "src/apps/web_browser.h"
#include "src/metrics/experiment.h"
#include "src/metrics/trial.h"

namespace odyssey {
namespace {

// --- Agility of supply estimation (Figure 8 behaviours) ---

class SupplyAgilityTest : public ::testing::Test {
 protected:
  // Runs a max-rate bitstream over |waveform| and samples the supply
  // estimate every 100 ms.  Returns the series relative to measurement
  // start.
  Series RunWaveform(Waveform waveform, uint64_t seed = 1) {
    ExperimentRig rig(seed, StrategyKind::kOdyssey);
    BitstreamApp app(&rig.client(), "bitstream");
    const Time measure = rig.Replay(MakeWaveform(waveform));
    app.Start();
    Sampler sampler(&rig.sim(), 100 * kMillisecond, measure, [&rig] {
      return rig.centralized()->TotalSupply(rig.sim().now());
    });
    rig.sim().ScheduleAt(measure, [&] { sampler.Run(measure + kWaveformLength); });
    rig.sim().RunUntil(measure + kWaveformLength);
    return sampler.series();
  }
};

TEST_F(SupplyAgilityTest, StepUpDetectedQuickly) {
  const Series series = RunWaveform(Waveform::kStepUp);
  // Paper: the Step-Up increase is detected almost instantaneously.
  const double settle =
      SettlingTime(series, 30.0, 0.9 * kHighBandwidth, 1.15 * kHighBandwidth);
  ASSERT_GE(settle, 0.0);
  EXPECT_LE(settle, 1.5);
}

TEST_F(SupplyAgilityTest, StepDownSettlesWithinAFewSeconds) {
  const Series series = RunWaveform(Waveform::kStepDown);
  // Paper: settling time ~2.0 s, limited by the window in flight when
  // bandwidth falls.
  const double settle = SettlingTime(series, 30.0, 0.85 * kLowBandwidth, 1.2 * kLowBandwidth);
  ASSERT_GE(settle, 0.0);
  EXPECT_LE(settle, 5.0);
  EXPECT_GE(settle, 0.5);
}

TEST_F(SupplyAgilityTest, SteadyEstimateBeforeTransition) {
  const Series series = RunWaveform(Waveform::kStepUp);
  for (const auto& point : series) {
    if (point.t_seconds > 5.0 && point.t_seconds < 29.0) {
      EXPECT_NEAR(point.value, kLowBandwidth, 0.15 * kLowBandwidth)
          << "at t=" << point.t_seconds;
    }
  }
}

TEST_F(SupplyAgilityTest, ImpulseUpLeadingEdgeTraced) {
  const Series series = RunWaveform(Waveform::kImpulseUp);
  double peak = 0.0;
  for (const auto& point : series) {
    if (point.t_seconds >= 29.0 && point.t_seconds <= 32.0) {
      peak = std::max(peak, point.value);
    }
  }
  // The two-second impulse to 120 KB/s must be visible.
  EXPECT_GT(peak, 0.75 * kHighBandwidth);
}

TEST_F(SupplyAgilityTest, ImpulseDownReturnsToHigh) {
  const Series series = RunWaveform(Waveform::kImpulseDown);
  const double settle =
      SettlingTime(series, 31.0, 0.85 * kHighBandwidth, 1.15 * kHighBandwidth);
  ASSERT_GE(settle, 0.0);
  EXPECT_LE(settle, 6.0);
}

// --- Agility of demand estimation (Figure 9 behaviours) ---

TEST(DemandAgilityTest, SecondStreamConvergesTowardFairShare) {
  ExperimentRig rig(1, StrategyKind::kOdyssey);
  BitstreamApp first(&rig.client(), "bitstream-1");
  BitstreamApp second(&rig.client(), "bitstream-2");
  rig.Replay(MakeConstant(kHighBandwidth, 3 * kMinute), /*prime=*/false);
  first.Start();  // 100% utilization
  rig.sim().ScheduleAt(kMinute, [&] { second.Start(); });
  rig.sim().RunUntil(kMinute + 30 * kSecond);
  // With both streams saturating, each connection's share settles near the
  // fair share of 60 KB/s.
  const double share2 =
      rig.centralized()->ConnectionAvailability(second.connection(), rig.sim().now());
  EXPECT_NEAR(share2, kHighBandwidth / 2.0, 0.2 * kHighBandwidth);
  const double total = rig.centralized()->TotalSupply(rig.sim().now());
  EXPECT_NEAR(total, kHighBandwidth, 0.15 * kHighBandwidth);
}

TEST(DemandAgilityTest, LowUtilizationStreamsDoNotInflateSupply) {
  ExperimentRig rig(2, StrategyKind::kOdyssey);
  BitstreamApp first(&rig.client(), "bitstream-1");
  BitstreamApp second(&rig.client(), "bitstream-2");
  rig.Replay(MakeConstant(kHighBandwidth, 3 * kMinute), /*prime=*/false);
  first.Start(0.10 * kHighBandwidth);
  rig.sim().ScheduleAt(kMinute, [&] { second.Start(0.10 * kHighBandwidth); });
  rig.sim().RunUntil(2 * kMinute);
  const double total = rig.centralized()->TotalSupply(rig.sim().now());
  EXPECT_NEAR(total, kHighBandwidth, 0.2 * kHighBandwidth);
}

// --- Centralized versus uncoordinated management (Figure 14 behaviours) ---

struct ConcurrentResult {
  int video_drops = 0;
  double video_fidelity = 0.0;
  double web_seconds = 0.0;
  double web_fidelity = 0.0;
  double speech_seconds = 0.0;
};

ConcurrentResult RunConcurrent(StrategyKind strategy, uint64_t seed) {
  ExperimentRig rig(seed, strategy);
  VideoPlayerOptions video_options;
  video_options.frames_to_play = 2000;  // runs past the measured window
  VideoPlayer video(&rig.client(), video_options);
  WebBrowser web(&rig.client(), WebBrowserOptions{});
  SpeechFrontEnd speech(&rig.client(), SpeechFrontEndOptions{});

  // A shortened urban walk: high, low, high, low, high (30 s each).
  ReplayTrace trace;
  trace.Append(30 * kSecond, kHighBandwidth, kOneWayLatency);
  trace.Append(30 * kSecond, kLowBandwidth, kOneWayLatency);
  trace.Append(30 * kSecond, kHighBandwidth, kOneWayLatency);
  trace.Append(30 * kSecond, kLowBandwidth, kOneWayLatency);
  trace.Append(30 * kSecond, kHighBandwidth, kOneWayLatency);
  const Time measure = rig.Replay(trace);
  const Time end = measure + trace.TotalDuration();

  video.Start();
  web.Start();
  speech.Start();
  rig.sim().RunUntil(end);

  ConcurrentResult result;
  result.video_drops = video.DropsBetween(measure, end);
  result.video_fidelity = video.MeanFidelityBetween(measure, end);
  result.web_seconds = web.MeanSecondsBetween(measure, end);
  result.web_fidelity = web.MeanFidelityBetween(measure, end);
  result.speech_seconds = speech.MeanSecondsBetween(measure, end);
  return result;
}

TEST(ConcurrentStrategiesTest, OdysseyDropsFarFewerFramesThanBlindOptimism) {
  const ConcurrentResult odyssey = RunConcurrent(StrategyKind::kOdyssey, 1);
  const ConcurrentResult blind = RunConcurrent(StrategyKind::kBlindOptimism, 1);
  // Paper: "Odyssey drops a factor of 2 to 5 fewer frames than the other
  // strategies."
  EXPECT_LT(odyssey.video_drops * 2, blind.video_drops);
  // The trade: blind optimism plays higher fidelity but misses goals.
  EXPECT_GE(blind.video_fidelity, odyssey.video_fidelity);
}

TEST(ConcurrentStrategiesTest, OdysseyBeatsLaissezFaireOnDrops) {
  // Aggregate several seeds: at Odyssey's drop levels a single short trace
  // is noisy.
  int odyssey_drops = 0;
  int laissez_drops = 0;
  for (uint64_t seed = 2; seed <= 5; ++seed) {
    odyssey_drops += RunConcurrent(StrategyKind::kOdyssey, seed).video_drops;
    laissez_drops += RunConcurrent(StrategyKind::kLaissezFaire, seed).video_drops;
  }
  EXPECT_LT(odyssey_drops, laissez_drops);
}

TEST(ConcurrentStrategiesTest, OdysseyWebPagesLoadFaster) {
  const ConcurrentResult odyssey = RunConcurrent(StrategyKind::kOdyssey, 3);
  const ConcurrentResult blind = RunConcurrent(StrategyKind::kBlindOptimism, 3);
  // Paper: "Web pages are loaded and displayed roughly twice as fast."
  EXPECT_LT(odyssey.web_seconds, blind.web_seconds);
  EXPECT_LT(odyssey.web_fidelity, blind.web_fidelity + 1e-9);
}

TEST(ConcurrentStrategiesTest, AllAppsMakeProgressUnderEveryStrategy) {
  for (const StrategyKind strategy :
       {StrategyKind::kOdyssey, StrategyKind::kLaissezFaire, StrategyKind::kBlindOptimism}) {
    const ConcurrentResult result = RunConcurrent(strategy, 4);
    EXPECT_GT(result.web_seconds, 0.0) << StrategyKindName(strategy);
    EXPECT_GT(result.speech_seconds, 0.0) << StrategyKindName(strategy);
    EXPECT_GT(result.video_fidelity, 0.0) << StrategyKindName(strategy);
  }
}

// --- Determinism ---

TEST(DeterminismTest, SameSeedSameResult) {
  const ConcurrentResult a = RunConcurrent(StrategyKind::kOdyssey, 7);
  const ConcurrentResult b = RunConcurrent(StrategyKind::kOdyssey, 7);
  EXPECT_EQ(a.video_drops, b.video_drops);
  EXPECT_DOUBLE_EQ(a.video_fidelity, b.video_fidelity);
  EXPECT_DOUBLE_EQ(a.web_seconds, b.web_seconds);
  EXPECT_DOUBLE_EQ(a.speech_seconds, b.speech_seconds);
}

TEST(DeterminismTest, DifferentSeedsJitter) {
  const ConcurrentResult a = RunConcurrent(StrategyKind::kOdyssey, 8);
  const ConcurrentResult b = RunConcurrent(StrategyKind::kOdyssey, 9);
  // Trials differ (jittered compute costs) but only modestly.
  EXPECT_NE(a.web_seconds, b.web_seconds);
  EXPECT_NEAR(a.web_seconds, b.web_seconds, 0.5 * a.web_seconds);
}

}  // namespace
}  // namespace odyssey

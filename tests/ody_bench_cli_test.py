#!/usr/bin/env python3
"""End-to-end checks for the ody_bench CLI.

Drives the installed binary the way CI does: runs the smoke campaign at two
job counts and byte-compares the artifacts, then exercises the compare
gate's exit codes — pass on identical artifacts, fail on a synthetically
regressed baseline, usage errors on garbage.

Usage: ody_bench_cli_test.py <path-to-ody_bench>
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

FAILURES = []


def check(name, ok, detail=""):
    tag = "ok" if ok else "FAIL"
    print(f"{tag:4} {name}" + (f": {detail}" if detail and not ok else ""))
    if not ok:
        FAILURES.append(name)


def run(bench, *args, cwd=None):
    return subprocess.run([str(bench), *args], capture_output=True, text=True, cwd=cwd)


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <path-to-ody_bench>", file=sys.stderr)
        return 2
    bench = Path(sys.argv[1]).resolve()

    with tempfile.TemporaryDirectory(prefix="ody_bench_cli_") as tmp:
        tmp = Path(tmp)
        a = tmp / "smoke_j1.json"
        b = tmp / "smoke_j2.json"

        result = run(bench, "list")
        check("list exits 0", result.returncode == 0, result.stderr)
        check("list names tier1", "tier1" in result.stdout)
        check("list names scenarios", "fig08_supply_agility" in result.stdout)

        result = run(bench, "run", "--campaign=smoke", "--jobs=1", f"--out={a}")
        check("run --jobs=1 exits 0", result.returncode == 0, result.stderr)
        result = run(bench, "run", "--campaign=smoke", "--jobs=2", f"--out={b}")
        check("run --jobs=2 exits 0", result.returncode == 0, result.stderr)
        check(
            "artifacts are byte-identical across job counts",
            a.read_bytes() == b.read_bytes(),
        )

        # The default output name is BENCH_<campaign>.json in the cwd.
        result = run(bench, "run", "--campaign=smoke", cwd=tmp)
        check("run with default --out exits 0", result.returncode == 0, result.stderr)
        check("default artifact name", (tmp / "BENCH_smoke.json").is_file())

        result = run(bench, "compare", f"--baseline={a}", f"--current={b}")
        check("compare identical artifacts exits 0", result.returncode == 0, result.stderr)

        # A baseline whose lower-is-better mean is 20% below today's value
        # must fail the gate at 5% tolerance: the CLI is the CI gate, so the
        # nonzero exit is the contract.
        artifact = json.loads(a.read_text())
        regressed = False
        for metric in artifact["metrics"]:
            if metric["direction"] == "lower" and metric["mean"] > 0:
                metric["mean"] *= 0.8
                regressed = True
        check("smoke artifact has gateable metrics", regressed)
        baseline = tmp / "regressed_baseline.json"
        baseline.write_text(json.dumps(artifact))
        result = run(bench, "compare", f"--baseline={baseline}", f"--current={a}")
        check("compare regressed baseline exits 1", result.returncode == 1, result.stdout)
        check("compare reports the regression", "REGRESSED" in result.stdout)
        result = run(
            bench, "compare", f"--baseline={baseline}", f"--current={a}", "--tolerance=50"
        )
        check("loose tolerance passes the same delta", result.returncode == 0, result.stdout)

        garbage = tmp / "garbage.json"
        garbage.write_text("not json at all")
        result = run(bench, "compare", f"--baseline={garbage}", f"--current={a}")
        check("compare with garbage baseline exits 2", result.returncode == 2)
        result = run(bench, "run", "--campaign=no_such_campaign")
        check("run with unknown campaign exits 2", result.returncode == 2)
        result = run(bench, "frobnicate")
        check("unknown subcommand exits 2", result.returncode == 2)

    if FAILURES:
        print(f"{len(FAILURES)} CLI check(s) failed: {', '.join(FAILURES)}")
        return 1
    print("all ody_bench CLI checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// The strategy-conformance kit: what every registered bandwidth strategy
// must guarantee, as reusable workloads and rigs.
//
// The kit is the contract behind StrategyRegistry: a strategy that passes
// it can be selected by scenarios, ody_fuzz and ody_bench without weakening
// any invariant the rest of the system relies on.  Three layers:
//
//   * Shared workloads (ConformanceWorkload, DegenerateWorkload): fixed,
//     fully explicit FuzzScenarios — no generator draws — so every strategy
//     faces the identical op schedule and two runs differ only in the
//     strategy under test.  They execute through RunFuzzScenario with the
//     full OracleSet attached and a DifferentialLog capturing every
//     delivered upcall and every sampled availability figure bit-exactly.
//
//   * A direct viceroy rig (ConformanceRig): strategy + viceroy + endpoints
//     with a per-app upcall census, for the lifecycle assertions that need
//     to interleave requests, cancels and stimuli at exact points — no
//     upcall after cancel, no upcall (or registration) after an admission
//     reject.
//
//   * A stimulus (ConformanceRig::Stimulate) that moves every registered
//     strategy's availability estimate: it both replays a waveform step
//     through the modulator (blind optimism's source) and feeds synthetic
//     throughput observations into the endpoint logs (what the estimator
//     family consumes), so lifecycle tests don't special-case strategies.
//
// Used by strategy_conformance_test.cc (parameterized over the builtin
// registry) and available to future strategies' own suites.

#ifndef TESTS_STRATEGY_CONFORMANCE_H_
#define TESTS_STRATEGY_CONFORMANCE_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/check/fuzz_runner.h"
#include "src/check/fuzz_scenario.h"
#include "src/core/resource.h"
#include "src/core/viceroy.h"
#include "src/metrics/experiment.h"
#include "src/net/link.h"
#include "src/net/modulator.h"
#include "src/rpc/endpoint.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"
#include "src/strategies/strategy_registry.h"
#include "src/tracemod/replay_trace.h"

namespace odyssey {
namespace conformance {

inline FuzzOp RequestOp(Time at, double lo_frac, double hi_frac) {
  FuzzOp op;
  op.at = at;
  op.kind = FuzzOpKind::kRequest;
  op.window_lo_frac = lo_frac;
  op.window_hi_frac = hi_frac;
  return op;
}

inline FuzzOp TsopOp(Time at, int variant, double magnitude) {
  FuzzOp op;
  op.at = at;
  op.kind = FuzzOpKind::kTsop;
  op.variant = variant;
  op.magnitude = magnitude;
  return op;
}

inline FuzzOp CancelOp(Time at, int variant) {
  FuzzOp op;
  op.at = at;
  op.kind = FuzzOpKind::kCancel;
  op.variant = variant;
  return op;
}

inline FuzzSegment Segment(Duration duration, double bandwidth_bps) {
  FuzzSegment segment;
  segment.duration = duration;
  segment.bandwidth_bps = bandwidth_bps;
  segment.latency = 10 * kMillisecond;
  return segment;
}

// The shared multi-app workload: three wardens over a stepped waveform with
// window churn, sized so every strategy sees supply swings, contention and
// request-table reuse inside a second of wall clock.
inline FuzzScenario ConformanceWorkload(const std::string& strategy, uint64_t seed = 1997) {
  FuzzScenario scenario;
  scenario.seed = seed;
  scenario.strategy = strategy;
  scenario.horizon = 8 * kSecond;
  scenario.segments = {
      Segment(2 * kSecond, 900.0 * 1024.0),
      Segment(2 * kSecond, 250.0 * 1024.0),
      Segment(2 * kSecond, 600.0 * 1024.0),
      Segment(2 * kSecond, 900.0 * 1024.0),
  };
  const FuzzWardenKind wardens[] = {FuzzWardenKind::kVideo, FuzzWardenKind::kWeb,
                                    FuzzWardenKind::kSpeech};
  for (int i = 0; i < 3; ++i) {
    FuzzApp app;
    app.warden = wardens[i];
    app.start = (100 + 200 * static_cast<Time>(i)) * kMillisecond;
    app.ops.push_back(RequestOp(app.start + 200 * kMillisecond, 0.7, 1.3));
    for (Time at = app.start + 400 * kMillisecond; at < 7 * kSecond; at += 600 * kMillisecond) {
      app.ops.push_back(TsopOp(at, i + static_cast<int>(at / (600 * kMillisecond)), 0.2 + 0.1 * i));
    }
    app.ops.push_back(CancelOp(4 * kSecond + 100 * static_cast<Time>(i) * kMillisecond, i));
    app.ops.push_back(RequestOp(4 * kSecond + 400 * kMillisecond, 0.7, 1.3));
    scenario.apps.push_back(std::move(app));
  }
  return scenario;
}

// The degenerate workload: one application, one connection (the bitstream
// warden opens exactly one), constant supply, windows wide enough that the
// admission broker never accumulates commitments beyond the link.  On this
// input every audited strategy must be bit-identical to the seed
// centralized strategy: one flow on one server leaves the congestion
// manager's hierarchy with a single leaf, and leaves the broker nothing to
// degrade or reject.
inline FuzzScenario DegenerateWorkload(const std::string& strategy, uint64_t seed = 1997) {
  FuzzScenario scenario;
  scenario.seed = seed;
  scenario.strategy = strategy;
  scenario.horizon = 6 * kSecond;
  scenario.segments = {Segment(6 * kSecond, 400.0 * 1024.0)};
  FuzzApp app;
  app.warden = FuzzWardenKind::kBitstream;
  app.start = 100 * kMillisecond;
  app.ops.push_back(RequestOp(300 * kMillisecond, 0.5, 1.6));
  for (Time at = 500 * kMillisecond; at < 5 * kSecond; at += 500 * kMillisecond) {
    app.ops.push_back(TsopOp(at, static_cast<int>(at / (500 * kMillisecond)), 0.3));
  }
  app.ops.push_back(CancelOp(3 * kSecond, 0));
  app.ops.push_back(RequestOp(3300 * kMillisecond, 0.5, 1.6));
  scenario.apps.push_back(std::move(app));
  return scenario;
}

struct ConformanceRun {
  FuzzRunResult result;
  DifferentialLog log;
};

inline ConformanceRun Run(const FuzzScenario& scenario) {
  ConformanceRun run;
  FuzzRunOptions options;
  options.differential = &run.log;
  run.result = RunFuzzScenario(scenario, options);
  return run;
}

// A direct strategy + viceroy rig with a per-app upcall census, for
// lifecycle assertions the scenario runner cannot time precisely.
class ConformanceRig {
 public:
  explicit ConformanceRig(const std::string& strategy_name, uint64_t seed = 7)
      : sim_(seed), link_(&sim_, kLinkBps, 10 * kMillisecond), modulator_(&sim_, &link_) {
    StrategyContext context;
    context.sim = &sim_;
    context.modulator = &modulator_;
    std::unique_ptr<BandwidthStrategy> strategy =
        StrategyRegistry::Builtin().Create(strategy_name, std::move(context));
    strategy_ = strategy.get();
    viceroy_ = std::make_unique<Viceroy>(&sim_, std::move(strategy), kUpcallLatency);
    viceroy_->upcalls().set_delivery_observer(
        [this](AppId app, uint64_t, RequestId, ResourceId, double, Time) {
          upcalls_by_app_[app] += 1;  // ody_lint: owned-capture
        });
  }

  ~ConformanceRig() { viceroy_->upcalls().set_delivery_observer({}); }

  // Registers |name| with one connection to |server|.
  AppId AddApp(const std::string& name, const std::string& server) {
    const AppId app = viceroy_->RegisterApplication(name);
    endpoints_.push_back(std::make_unique<Endpoint>(&sim_, &link_, server));
    viceroy_->AttachConnection(app, endpoints_.back().get());
    return app;
  }

  // Registers a bandwidth window around the app's current level.
  RequestResult RequestWindow(AppId app, double lo_frac, double hi_frac) {
    const double level = viceroy_->CurrentLevel(app, ResourceId::kNetworkBandwidth);
    ResourceDescriptor descriptor;
    descriptor.resource = ResourceId::kNetworkBandwidth;
    descriptor.lower = level * lo_frac;
    descriptor.upper = level * hi_frac + 1.0;
    descriptor.handler = [](RequestId, ResourceId, double) {};
    return viceroy_->Request(app, descriptor);
  }

  // Makes every strategy's availability estimate move: feeds |rate_bps|
  // throughput observations into every endpoint log for a second of
  // virtual time, and replays a waveform step to the same rate so the
  // modulator-driven strategy moves too.  Drains the simulation after.
  void Stimulate(double rate_bps) {
    ReplayTrace wave;
    wave.Append(TraceSegment{kSecond, rate_bps, 10 * kMillisecond});
    modulator_.Replay(wave);
    const Duration period = 50 * kMillisecond;
    for (int tick = 1; tick <= 20; ++tick) {
      sim_.Post(tick * period, [this, rate_bps, period] {
        for (const std::unique_ptr<Endpoint>& endpoint : endpoints_) {
          endpoint->log().RecordThroughput(sim_.now(),
                                           rate_bps * DurationToSeconds(period), period);
          endpoint->log().RecordRoundTrip(sim_.now(), 20 * kMillisecond);
        }
      });
    }
    sim_.Run();
  }

  uint64_t UpcallsFor(AppId app) const {
    const auto it = upcalls_by_app_.find(app);
    return it == upcalls_by_app_.end() ? 0 : it->second;
  }

  Simulation& sim() { return sim_; }
  Viceroy& viceroy() { return *viceroy_; }
  BandwidthStrategy& strategy() { return *strategy_; }

  static constexpr double kLinkBps = 200.0 * 1024.0;

 private:
  Simulation sim_;
  Link link_;
  Modulator modulator_;
  std::unique_ptr<Viceroy> viceroy_;
  BandwidthStrategy* strategy_ = nullptr;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::map<AppId, uint64_t> upcalls_by_app_;
};

}  // namespace conformance
}  // namespace odyssey

#endif  // TESTS_STRATEGY_CONFORMANCE_H_

// Differential tests for the scaled viceroy hot core.
//
// The scale work (incremental supply model, indexed re-evaluation, slab
// request table, batched upcall dispatch) is behavior-preserving by
// construction; these tests prove it empirically by running the production
// stack and the pre-scale reference stack (NaiveSupplyModel + full-scan
// re-evaluation) over the same inputs and requiring *bit-identical* results
// — every availability figure and every delivered upcall, compared with
// exact floating-point equality, over hundreds of fuzzer scenarios
// including large-N populations.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/check/fuzz_runner.h"
#include "src/check/fuzz_scenario.h"
#include "src/check/scale_scenario.h"
#include "src/estimator/supply_model.h"
#include "src/harness/builtin_scenarios.h"
#include "src/harness/campaign.h"
#include "src/harness/scenario_registry.h"
#include "src/harness/worker_pool.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace odyssey {
namespace {

// --- Model-level differential -------------------------------------------
//
// Drives the incremental and naive supply models through the same random
// operation sequence and compares every observable after every operation.
// EXPECT_EQ on doubles is deliberate: the incremental model's contract is
// exact equality, not tolerance.

struct ModelPair {
  std::unique_ptr<SupplyModelInterface> fast =
      MakeSupplyModel(SupplyModelKind::kIncremental, SupplyModelConfig{});
  std::unique_ptr<SupplyModelInterface> naive =
      MakeSupplyModel(SupplyModelKind::kNaive, SupplyModelConfig{});

  void CheckIdentical(const std::vector<ConnectionId>& connections, Time now) {
    ASSERT_EQ(fast->has_supply(), naive->has_supply());
    ASSERT_EQ(fast->TotalSupply(), naive->TotalSupply());
    ASSERT_EQ(fast->ActiveConnectionCount(now), naive->ActiveConnectionCount(now));
    for (const ConnectionId connection : connections) {
      ASSERT_EQ(fast->UsageRateFor(connection, now), naive->UsageRateFor(connection, now))
          << "connection " << connection << " at " << now;
      ASSERT_EQ(fast->AvailabilityFor(connection, now), naive->AvailabilityFor(connection, now))
          << "connection " << connection << " at " << now;
    }
    // An unknown connection takes the idle fair-share branch in both.
    ASSERT_EQ(fast->AvailabilityFor(0, now), naive->AvailabilityFor(0, now));
  }
};

TEST(ScaleDifferentialTest, ModelsBitIdenticalOverRandomOperations) {
  constexpr int kSeeds = 200;
  constexpr int kOpsPerSeed = 150;
  for (int trial = 0; trial < kSeeds; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    Rng rng(DeriveTrialSeed(0x5ca1eULL, static_cast<uint64_t>(trial)));
    ModelPair pair;
    std::vector<ConnectionId> connections;
    ConnectionId next_id = 1;
    Time now = 0;
    for (int op = 0; op < kOpsPerSeed; ++op) {
      const double draw = rng.NextDouble();
      if (draw < 0.15 || connections.empty()) {
        const ConnectionId id = next_id++;
        connections.push_back(id);
        pair.fast->AddConnection(id);
        pair.naive->AddConnection(id);
      } else if (draw < 0.25) {
        const size_t victim = rng.UniformInt(connections.size());
        const ConnectionId id = connections[victim];
        connections.erase(connections.begin() + static_cast<ptrdiff_t>(victim));
        pair.fast->RemoveConnection(id);
        pair.naive->RemoveConnection(id);
      } else if (draw < 0.7) {
        const ConnectionId id = connections[rng.UniformInt(connections.size())];
        ThroughputObservation obs;
        obs.elapsed = 1 * kMillisecond +
                      static_cast<Duration>(rng.UniformInt(1 * kSecond));
        now += static_cast<Duration>(rng.UniformInt(200 * kMillisecond));
        obs.at = now;
        obs.window_bytes = rng.Uniform(0.0, 200.0 * 1024.0);
        pair.fast->OnThroughput(id, obs);
        pair.naive->OnThroughput(id, obs);
      } else if (draw < 0.85) {
        const ConnectionId id = connections[rng.UniformInt(connections.size())];
        RoundTripObservation obs;
        now += static_cast<Duration>(rng.UniformInt(200 * kMillisecond));
        obs.at = now;
        obs.rtt = 1 * kMillisecond + static_cast<Duration>(rng.UniformInt(100 * kMillisecond));
        pair.fast->OnRoundTrip(id, obs);
        pair.naive->OnRoundTrip(id, obs);
      } else if (draw < 0.9) {
        const ConnectionId id = connections[rng.UniformInt(connections.size())];
        FailureObservation obs;
        obs.at = now;
        obs.attempts = 1 + static_cast<int>(rng.UniformInt(4));
        pair.fast->OnFailure(id, obs);
        pair.naive->OnFailure(id, obs);
      } else {
        // Let the activity and supply windows slide with no new evidence.
        now += static_cast<Duration>(rng.UniformInt(3 * kSecond));
      }
      pair.CheckIdentical(connections, now);
      if (HasFatalFailure()) {
        return;
      }
    }
  }
}

// --- Full-stack differential --------------------------------------------
//
// Every fuzzer scenario runs twice: once on the production stack and once
// on the reference stack.  The pass criterion is equality of the complete
// DifferentialLog — the full upcall sequence (app, seq, request, resource,
// level, post and delivery times) and every periodic availability sample —
// plus a clean oracle verdict on both sides.

struct DifferentialOutcome {
  DifferentialLog production;
  DifferentialLog reference;
  uint64_t production_violations = 0;
  uint64_t reference_violations = 0;
};

DifferentialOutcome RunBothStacks(const FuzzScenario& scenario) {
  DifferentialOutcome outcome;
  FuzzRunOptions options;
  options.differential = &outcome.production;
  outcome.production_violations = RunFuzzScenario(scenario, options).violation_count;
  options.reference_stack = true;
  options.differential = &outcome.reference;
  outcome.reference_violations = RunFuzzScenario(scenario, options).violation_count;
  return outcome;
}

void ExpectLogsIdentical(const DifferentialOutcome& outcome, const std::string& label) {
  EXPECT_EQ(outcome.production_violations, 0u) << label;
  EXPECT_EQ(outcome.reference_violations, 0u) << label;
  ASSERT_EQ(outcome.production.upcalls.size(), outcome.reference.upcalls.size()) << label;
  for (size_t i = 0; i < outcome.production.upcalls.size(); ++i) {
    const UpcallRecord& a = outcome.production.upcalls[i];
    const UpcallRecord& b = outcome.reference.upcalls[i];
    ASSERT_TRUE(a == b) << label << " upcall " << i << ": app " << a.app << "/" << b.app
                        << " seq " << a.seq << "/" << b.seq << " level " << a.level << "/"
                        << b.level << " delivered " << a.delivered_at << "/" << b.delivered_at;
  }
  ASSERT_EQ(outcome.production.samples.size(), outcome.reference.samples.size()) << label;
  for (size_t i = 0; i < outcome.production.samples.size(); ++i) {
    ASSERT_EQ(outcome.production.samples[i], outcome.reference.samples[i])
        << label << " sample stream diverges at element " << i;
  }
}

TEST(ScaleDifferentialTest, FullStackIdenticalOverFuzzScenarios) {
  // 184 scenarios from the historical generator plus 16 large-N ones (up to
  // 64 apps): 200 total, each executed on both stacks.
  constexpr size_t kDefaultScenarios = 184;
  constexpr size_t kLargeScenarios = 16;
  constexpr size_t kTotal = kDefaultScenarios + kLargeScenarios;
  constexpr uint64_t kSweepSeed = 1997;

  std::vector<DifferentialOutcome> outcomes(kTotal);
  RunIndexedTasks(DefaultJobCount(), kTotal, [&](size_t i) {
    ScenarioOptions options;
    if (i >= kDefaultScenarios) {
      options.max_apps = 64;
    }
    outcomes[i] = RunBothStacks(GenerateScenario(DeriveTrialSeed(kSweepSeed, i), options));
  });

  for (size_t i = 0; i < kTotal; ++i) {
    ExpectLogsIdentical(outcomes[i],
                        "scenario " + std::to_string(i) +
                            (i >= kDefaultScenarios ? " (large-N)" : ""));
    if (HasFatalFailure()) {
      return;
    }
  }
}

// --- The tier_scale campaign --------------------------------------------

TEST(ScaleCampaignTest, ExpandsAgainstScaleAwareRegistry) {
  ScenarioRegistry registry;
  RegisterBuiltinScenarios(&registry);
  RegisterScaleScenarios(&registry);
  std::vector<PlannedTrial> plan;
  const Status status = ExpandCampaign(ScaleCampaign(), registry, &plan);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_GE(plan.size(), 5u);  // one sweep per variant, n100 runs three trials
}

TEST(ScaleCampaignTest, SmallVariantRunsCleanUnderOracles) {
  ScenarioRegistry registry;
  RegisterScaleScenarios(&registry);
  const Scenario* scenario = registry.Find("scale_core");
  ASSERT_NE(scenario, nullptr);
  const ScenarioVariant* variant = scenario->FindVariant("n100");
  ASSERT_NE(variant, nullptr);
  const TrialMetrics metrics = variant->run(1997, nullptr);
  double upcalls = -1.0;
  double violations = -1.0;
  double registered = -1.0;
  for (const MetricValue& metric : metrics) {
    if (metric.name == "upcalls") {
      upcalls = metric.value;
    } else if (metric.name == "oracle_violations") {
      violations = metric.value;
    } else if (metric.name == "windows_registered") {
      registered = metric.value;
    }
  }
  EXPECT_EQ(violations, 0.0);
  // The supply steps must actually have driven adaptation rounds.
  EXPECT_GE(upcalls, 100.0);
  EXPECT_GE(registered, 200.0);
}

}  // namespace
}  // namespace odyssey

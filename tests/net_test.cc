// Unit tests for the emulated network: the shared link and the modulator.

#include <vector>

#include <gtest/gtest.h>

#include "src/net/link.h"
#include "src/net/modulator.h"
#include "src/sim/simulation.h"
#include "src/tracemod/waveforms.h"

namespace odyssey {
namespace {

constexpr double kKb = 1024.0;

TEST(LinkTest, SingleFlowTransfersAtCapacity) {
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 0);
  Time done_at = -1;
  link.StartFlow(50.0 * kKb, [&] { done_at = sim.now(); });
  sim.Run();
  EXPECT_EQ(done_at, 500 * kMillisecond);
  EXPECT_DOUBLE_EQ(link.bytes_delivered(), 50.0 * kKb);
}

TEST(LinkTest, TwoFlowsShareCapacityEqually) {
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 0);
  Time a_done = -1;
  Time b_done = -1;
  link.StartFlow(50.0 * kKb, [&] { a_done = sim.now(); });
  link.StartFlow(50.0 * kKb, [&] { b_done = sim.now(); });
  sim.Run();
  // Each flow gets 50 KB/s, so both 50 KB flows take 1 s.
  EXPECT_EQ(a_done, kSecond);
  EXPECT_EQ(b_done, kSecond);
}

TEST(LinkTest, ShortFlowFinishesThenLongFlowSpeedsUp) {
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 0);
  Time short_done = -1;
  Time long_done = -1;
  link.StartFlow(25.0 * kKb, [&] { short_done = sim.now(); });
  link.StartFlow(75.0 * kKb, [&] { long_done = sim.now(); });
  sim.Run();
  // Shared until the short flow drains at t=0.5s (25KB at 50KB/s); the long
  // flow then has 50KB left at full rate: 0.5s more.
  EXPECT_EQ(short_done, 500 * kMillisecond);
  EXPECT_EQ(long_done, kSecond);
}

TEST(LinkTest, LateFlowJoinsSharing) {
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 0);
  Time a_done = -1;
  Time b_done = -1;
  link.StartFlow(100.0 * kKb, [&] { a_done = sim.now(); });
  sim.Schedule(500 * kMillisecond, [&] {
    link.StartFlow(25.0 * kKb, [&] { b_done = sim.now(); });
  });
  sim.Run();
  // A runs alone for 0.5s (50KB done), then shares: A's remaining 50KB at
  // 50KB/s = 1s -> done at 1.5s.  B's 25KB at 50KB/s = 0.5s -> done at 1.0s,
  // after which A is alone again... recompute: at t=1.0 B done, A has 25KB
  // left, full rate -> done at 1.25s.
  EXPECT_EQ(b_done, kSecond);
  EXPECT_EQ(a_done, 1250 * kMillisecond);
}

TEST(LinkTest, CapacityChangeMidFlow) {
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 0);
  Time done_at = -1;
  link.StartFlow(100.0 * kKb, [&] { done_at = sim.now(); });
  sim.Schedule(500 * kMillisecond, [&] { link.SetCapacity(50.0 * kKb); });
  sim.Run();
  // 50KB in the first 0.5s, then 50KB at 50KB/s = 1s -> 1.5s total.
  EXPECT_EQ(done_at, 1500 * kMillisecond);
}

TEST(LinkTest, ZeroCapacityStallsUntilRestored) {
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 0);
  Time done_at = -1;
  link.StartFlow(100.0 * kKb, [&] { done_at = sim.now(); });
  sim.Schedule(500 * kMillisecond, [&] { link.SetCapacity(0.0); });
  sim.Schedule(10 * kSecond, [&] { link.SetCapacity(100.0 * kKb); });
  sim.Run();
  // 50KB before the shadow; stalled 0.5s..10s; remaining 50KB takes 0.5s.
  EXPECT_EQ(done_at, 10500 * kMillisecond);
}

TEST(LinkTest, CancelFlowNeverCompletes) {
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 0);
  bool completed = false;
  const FlowId id = link.StartFlow(100.0 * kKb, [&] { completed = true; });
  sim.Schedule(100 * kMillisecond, [&] { link.CancelFlow(id); });
  sim.Run();
  EXPECT_FALSE(completed);
  EXPECT_EQ(link.active_flow_count(), 0u);
}

TEST(LinkTest, CancelZeroByteFlowSuppressesCallback) {
  // Regression: zero-byte flows complete through a pre-scheduled event, and
  // CancelFlow used to lose the handle, so the callback fired anyway.
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 0);
  bool completed = false;
  const FlowId id = link.StartFlow(0.0, [&] { completed = true; });
  EXPECT_EQ(link.active_flow_count(), 1u);
  link.CancelFlow(id);
  EXPECT_EQ(link.active_flow_count(), 0u);
  sim.Run();
  EXPECT_FALSE(completed);
}

TEST(LinkTest, CancelFlowKeepsRemainingFlowsAccurate) {
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 0);
  Time survivor_done = -1;
  const FlowId victim = link.StartFlow(100.0 * kKb, [] {});
  link.StartFlow(100.0 * kKb, [&] { survivor_done = sim.now(); });
  // Cancel the victim at 1 s: each flow moved 50 KB by then, and the
  // survivor's remaining 50 KB speeds up to the full capacity.
  sim.Schedule(kSecond, [&] { link.CancelFlow(victim); });
  sim.Run();
  EXPECT_EQ(survivor_done, 1500 * kMillisecond);
  EXPECT_NEAR(link.bytes_delivered(), 150.0 * kKb, 1.0);
}

TEST(LinkTest, CancelUnknownFlowIsIgnored) {
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 0);
  bool completed = false;
  const FlowId id = link.StartFlow(1.0 * kKb, [&] { completed = true; });
  sim.Run();
  EXPECT_TRUE(completed);
  link.CancelFlow(id);       // already completed
  link.CancelFlow(id + 99);  // never existed
  EXPECT_EQ(link.active_flow_count(), 0u);
}

TEST(LinkTest, OutageGateStallsAndResumesFlows) {
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 0);
  Time done_at = -1;
  link.StartFlow(150.0 * kKb, [&] { done_at = sim.now(); });
  sim.Schedule(kSecond, [&] { link.SetOutage(true); });
  sim.Schedule(3 * kSecond, [&] { link.SetOutage(false); });
  sim.Run();
  // 100 KB in the first second, stalled for two, the rest in 0.5 s.
  EXPECT_EQ(done_at, 3500 * kMillisecond);
  EXPECT_DOUBLE_EQ(link.effective_capacity_bps(), 100.0 * kKb);
}

TEST(LinkTest, OutagePreservesNominalCapacity) {
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 0);
  link.SetOutage(true);
  EXPECT_DOUBLE_EQ(link.capacity_bps(), 100.0 * kKb);
  EXPECT_DOUBLE_EQ(link.effective_capacity_bps(), 0.0);
  link.SetCapacity(40.0 * kKb);  // modulator transition during the outage
  link.SetOutage(false);
  EXPECT_DOUBLE_EQ(link.effective_capacity_bps(), 40.0 * kKb);
}

TEST(LinkTest, ExtraLatencyIsAdditiveAndClampsAtZero) {
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 10 * kMillisecond);
  link.SetExtraLatency(5 * kMillisecond);
  EXPECT_EQ(link.latency(), 15 * kMillisecond);
  link.SetExtraLatency(-50 * kMillisecond);
  EXPECT_EQ(link.latency(), 0);
  link.SetExtraLatency(0);
  EXPECT_EQ(link.latency(), 10 * kMillisecond);
}

TEST(LinkTest, ZeroByteFlowCompletesAsync) {
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 0);
  bool completed = false;
  link.StartFlow(0.0, [&] { completed = true; });
  EXPECT_FALSE(completed);  // never synchronously inside StartFlow
  sim.Run();
  EXPECT_TRUE(completed);
}

TEST(LinkTest, CompletionCallbackCanStartNextFlow) {
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 0);
  Time second_done = -1;
  link.StartFlow(50.0 * kKb, [&] {
    link.StartFlow(50.0 * kKb, [&] { second_done = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(second_done, kSecond);
}

TEST(LinkTest, ManyFlowsConserveBytes) {
  Simulation sim;
  Link link(&sim, 64.0 * kKb, 0);
  int completed = 0;
  for (int i = 1; i <= 20; ++i) {
    link.StartFlow(static_cast<double>(i) * kKb, [&] { ++completed; });
  }
  sim.Run();
  EXPECT_EQ(completed, 20);
  EXPECT_NEAR(link.bytes_delivered(), 210.0 * kKb, 1.0);
}

TEST(LinkTest, FairShareRateAccountsForFlows) {
  Simulation sim;
  Link link(&sim, 100.0, 0);
  EXPECT_DOUBLE_EQ(link.FairShareRate(), 100.0);
  link.StartFlow(1000.0, nullptr);
  link.StartFlow(1000.0, nullptr);
  EXPECT_DOUBLE_EQ(link.FairShareRate(), 50.0);
}

TEST(ModulatorTest, AppliesSegmentsOnSchedule) {
  Simulation sim;
  Link link(&sim, 1.0, 0);
  Modulator modulator(&sim, &link);
  ReplayTrace trace;
  trace.Append(10 * kSecond, 100.0, 1000);
  trace.Append(10 * kSecond, 200.0, 2000);
  modulator.Replay(trace);
  EXPECT_DOUBLE_EQ(link.capacity_bps(), 100.0);
  EXPECT_EQ(link.latency(), 1000);
  sim.RunUntil(15 * kSecond);
  EXPECT_DOUBLE_EQ(link.capacity_bps(), 200.0);
  EXPECT_EQ(link.latency(), 2000);
}

TEST(ModulatorTest, FinalSegmentPersists) {
  Simulation sim;
  Link link(&sim, 1.0, 0);
  Modulator modulator(&sim, &link);
  modulator.Replay(MakeConstant(123.0, kSecond));
  sim.RunUntil(100 * kSecond);
  EXPECT_DOUBLE_EQ(link.capacity_bps(), 123.0);
}

TEST(ModulatorTest, TransitionListenersFireInOrder) {
  Simulation sim;
  Link link(&sim, 1.0, 0);
  Modulator modulator(&sim, &link);
  std::vector<double> seen;
  modulator.AddTransitionListener(
      [&](const TraceSegment& segment) { seen.push_back(segment.bandwidth_bps); });
  modulator.Replay(MakeStepUp());
  sim.RunUntil(kWaveformLength);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(seen[0], kLowBandwidth);
  EXPECT_DOUBLE_EQ(seen[1], kHighBandwidth);
}

TEST(ModulatorTest, TheoreticalBandwidthTracksTrace) {
  Simulation sim;
  Link link(&sim, 1.0, 0);
  Modulator modulator(&sim, &link);
  sim.Schedule(5 * kSecond, [&] { modulator.Replay(MakeStepUp()); });
  sim.RunUntil(5 * kSecond);
  EXPECT_DOUBLE_EQ(modulator.TheoreticalBandwidthAt(6 * kSecond), kLowBandwidth);
  EXPECT_DOUBLE_EQ(modulator.TheoreticalBandwidthAt(36 * kSecond), kHighBandwidth);
}

TEST(ModulatorTest, ReplayRestartsCleanly) {
  Simulation sim;
  Link link(&sim, 1.0, 0);
  Modulator modulator(&sim, &link);
  modulator.Replay(MakeStepUp());
  modulator.Replay(MakeConstant(42.0, kSecond));  // cancels the pending step
  sim.RunUntil(2 * kWaveformLength);
  EXPECT_DOUBLE_EQ(link.capacity_bps(), 42.0);
}

}  // namespace
}  // namespace odyssey

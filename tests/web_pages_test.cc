// Tests for full-page Web adaptation (§8: "we intend to incorporate
// adaptation for objects other than images in the Web application").

#include <gtest/gtest.h>

#include "src/core/tsop_codec.h"
#include "src/metrics/experiment.h"
#include "src/wardens/web_warden.h"

namespace odyssey {
namespace {

constexpr double kKb = 1024.0;
constexpr char kPageUrl[] = "http://origin/guide.html";

class WebPageTest : public ::testing::Test {
 protected:
  WebPageTest() : rig_(1, StrategyKind::kOdyssey) {
    // A local-guide page: 6 KB of markup plus three inline images.
    rig_.distillation_server().PublishPage(kPageUrl, 6.0 * kKb,
                                           {22.0 * kKb, 11.0 * kKb, 44.0 * kKb});
    app_ = rig_.client().RegisterApplication("browser");
    rig_.Replay(MakeConstant(kHighBandwidth, 10 * kMinute), /*prime=*/false);
  }

  std::string Path() { return std::string(kOdysseyRoot) + "web/page"; }

  WebPageInfo OpenPage() {
    WebPageInfo info;
    rig_.client().Tsop(app_, Path(), kWebOpenPage, kPageUrl,
                       [&](Status status, std::string out) {
                         ASSERT_TRUE(status.ok()) << status.ToString();
                         EXPECT_TRUE(UnpackStruct(out, &info));
                       });
    return info;
  }

  WebPageFetchReply FetchPage() {
    WebPageFetchReply reply;
    bool done = false;
    rig_.client().Tsop(app_, Path(), kWebFetchPage, "", [&](Status status, std::string out) {
      ASSERT_TRUE(status.ok()) << status.ToString();
      EXPECT_TRUE(UnpackStruct(out, &reply));
      done = true;
    });
    const Time deadline = rig_.sim().now() + kMinute;
    while (!done && rig_.sim().now() < deadline) {
      rig_.sim().RunUntil(rig_.sim().now() + 10 * kMillisecond);
    }
    EXPECT_TRUE(done);
    return reply;
  }

  void SetLevel(int level) {
    rig_.client().Tsop(app_, Path(), kWebSetFidelity, PackStruct(WebSetFidelityRequest{level}),
                       [](Status, std::string) {});
  }

  ExperimentRig rig_;
  AppId app_ = 0;
};

TEST_F(WebPageTest, OpenReportsPerLevelTotals) {
  const WebPageInfo info = OpenPage();
  EXPECT_DOUBLE_EQ(info.html_bytes, 6.0 * kKb);
  EXPECT_EQ(info.image_count, 3);
  // Full quality: markup + all original image bytes.
  EXPECT_DOUBLE_EQ(info.level_total_bytes[0], (6.0 + 22.0 + 11.0 + 44.0) * kKb);
  // Lower levels strictly shrink, but never below the markup size.
  EXPECT_GT(info.level_total_bytes[0], info.level_total_bytes[1]);
  EXPECT_GT(info.level_total_bytes[1], info.level_total_bytes[2]);
  EXPECT_GT(info.level_total_bytes[2], info.level_total_bytes[3]);
  EXPECT_GT(info.level_total_bytes[3], info.html_bytes);
}

TEST_F(WebPageTest, MarkupNeverDegrades) {
  OpenPage();
  SetLevel(3);  // JPEG(5)
  const WebPageFetchReply reply = FetchPage();
  // The markup arrives in full even at the lowest image fidelity.
  EXPECT_DOUBLE_EQ(reply.html_bytes, 6.0 * kKb);
  EXPECT_DOUBLE_EQ(reply.fidelity, 0.05);
  EXPECT_LT(reply.image_bytes, 8.0 * kKb);  // three heavily distilled images
}

TEST_F(WebPageTest, FullQualityShipsOriginals) {
  OpenPage();
  const WebPageFetchReply reply = FetchPage();
  EXPECT_DOUBLE_EQ(reply.fidelity, 1.0);
  EXPECT_DOUBLE_EQ(reply.image_bytes, (22.0 + 11.0 + 44.0) * kKb);
}

TEST_F(WebPageTest, LowerFidelityFetchesFaster) {
  OpenPage();
  const Time full_start = rig_.sim().now();
  FetchPage();
  const Duration full_cost = rig_.sim().now() - full_start;
  SetLevel(3);
  const Time low_start = rig_.sim().now();
  FetchPage();
  const Duration low_cost = rig_.sim().now() - low_start;
  EXPECT_LT(low_cost, full_cost / 2);
}

TEST_F(WebPageTest, UnknownPageFails) {
  Status status;
  rig_.client().Tsop(app_, Path(), kWebOpenPage, "http://origin/missing.html",
                     [&](Status s, std::string) { status = s; });
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(WebPageTest, FetchPageWithoutOpenFails) {
  Status status;
  rig_.client().Tsop(app_, Path(), kWebFetchPage, "",
                     [&](Status s, std::string) { status = s; });
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(WebPageTest, ImageSessionIsNotAPageSession) {
  rig_.client().Tsop(app_, Path(), kWebOpen, kTestImageUrl, [](Status, std::string) {});
  Status status;
  rig_.client().Tsop(app_, Path(), kWebFetchPage, "",
                     [&](Status s, std::string) { status = s; });
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace odyssey

// Agility regression goldens (Figure 8).
//
// The fig08 benchmark prints supply-estimate agility for human inspection;
// this suite pins the same metrics inside tolerance bands so a regression
// in the estimator, the RPC layer, or the retry machinery fails ctest
// instead of silently bending a chart.  The retry policy is enabled for
// every trial: a correct implementation logs only the successful attempt's
// span, so timeouts and backoff must not move the estimate on a clean
// (fault-free) waveform replay.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/apps/bitstream_app.h"
#include "src/metrics/experiment.h"
#include "src/rpc/endpoint.h"
#include "src/tracemod/waveforms.h"

namespace odyssey {
namespace {

constexpr Duration kSamplePeriod = 100 * kMillisecond;

struct Sample {
  double seconds = 0.0;  // relative to the start of the measured portion
  double supply_bps = 0.0;
};

using Series = std::vector<Sample>;

Series RunTrial(Waveform waveform, uint64_t seed) {
  ExperimentRig rig(seed, StrategyKind::kOdyssey);
  rig.client().set_retry_policy(RetryPolicy::Default());
  BitstreamApp app(&rig.client(), "bitstream");
  const Time measure = rig.Replay(MakeWaveform(waveform));
  app.Start();

  Series series;
  for (Time at = measure; at < measure + kWaveformLength; at += kSamplePeriod) {
    rig.sim().ScheduleAt(at, [&series, &rig, measure] {
      series.push_back(Sample{DurationToSeconds(rig.sim().now() - measure),
                              rig.centralized()->TotalSupply(rig.sim().now())});
    });
  }
  rig.sim().RunUntil(measure + kWaveformLength);
  return series;
}

// Mean estimate over samples in [begin_s, end_s).
double MeanBetween(const Series& series, double begin_s, double end_s) {
  double sum = 0.0;
  int count = 0;
  for (const Sample& sample : series) {
    if (sample.seconds >= begin_s && sample.seconds < end_s) {
      sum += sample.supply_bps;
      ++count;
    }
  }
  return count > 0 ? sum / count : 0.0;
}

// Seconds from |from_s| until the estimate enters [lo, hi] and stays there
// through the end of the series; negative if it never settles.
double SettlingTime(const Series& series, double from_s, double lo, double hi) {
  double last_outside = from_s;
  bool seen = false;
  for (const Sample& sample : series) {
    if (sample.seconds < from_s) {
      continue;
    }
    seen = true;
    if (sample.supply_bps < lo || sample.supply_bps > hi) {
      last_outside = sample.seconds;
    }
  }
  if (!seen || last_outside >= series.back().seconds) {
    return -1.0;
  }
  return last_outside - from_s;
}

double MaxBetween(const Series& series, double begin_s, double end_s) {
  double best = 0.0;
  for (const Sample& sample : series) {
    if (sample.seconds >= begin_s && sample.seconds < end_s && sample.supply_bps > best) {
      best = sample.supply_bps;
    }
  }
  return best;
}

// The paper's nominal acceptance band (±15%).
constexpr double kBandLo = 0.85;
constexpr double kBandHi = 1.15;

TEST(AgilityRegressionTest, StepUpSettlesQuickly) {
  const Series series = RunTrial(Waveform::kStepUp, 1);
  ASSERT_FALSE(series.empty());

  // Steady low before the transition.
  const double before = MeanBetween(series, 20.0, 30.0);
  EXPECT_GT(before, kBandLo * kLowBandwidth);
  EXPECT_LT(before, kBandHi * kLowBandwidth);

  // The paper: Step-Up is detected almost instantaneously.  Allow a couple
  // of window completions of slack.
  const double settle =
      SettlingTime(series, 30.0, kBandLo * kHighBandwidth, kBandHi * kHighBandwidth);
  EXPECT_GE(settle, 0.0) << "estimate never settled at the high level";
  EXPECT_LE(settle, 3.0);

  const double after = MeanBetween(series, 40.0, 60.0);
  EXPECT_GT(after, kBandLo * kHighBandwidth);
  EXPECT_LT(after, kBandHi * kHighBandwidth);
}

TEST(AgilityRegressionTest, StepDownSettlesWithinWindow) {
  const Series series = RunTrial(Waveform::kStepDown, 1);
  ASSERT_FALSE(series.empty());

  const double before = MeanBetween(series, 20.0, 30.0);
  EXPECT_GT(before, kBandLo * kHighBandwidth);
  EXPECT_LT(before, kBandHi * kHighBandwidth);

  // The paper reports ~2.0 s (stale highs must age out of the envelope).
  const double settle =
      SettlingTime(series, 30.0, kBandLo * kLowBandwidth, kBandHi * kLowBandwidth);
  EXPECT_GE(settle, 0.0) << "estimate never settled at the low level";
  EXPECT_LE(settle, 5.0);

  const double after = MeanBetween(series, 40.0, 60.0);
  EXPECT_GT(after, kBandLo * kLowBandwidth);
  EXPECT_LT(after, kBandHi * kLowBandwidth);
}

TEST(AgilityRegressionTest, ImpulseUpTracesLeadingEdgeAndReturns) {
  const Series series = RunTrial(Waveform::kImpulseUp, 1);
  ASSERT_FALSE(series.empty());

  // The 2 s excursion to high is wide enough to be seen...
  EXPECT_GT(MaxBetween(series, 29.0, 34.0), kBandLo * kHighBandwidth);

  // ...and the estimate returns to the low level after the trailing edge.
  const double settle =
      SettlingTime(series, 32.0, kBandLo * kLowBandwidth, kBandHi * kLowBandwidth);
  EXPECT_GE(settle, 0.0) << "estimate never returned to the low level";
  EXPECT_LE(settle, 8.0);
}

TEST(AgilityRegressionTest, ImpulseDownRecoversAfterTrailingEdge) {
  const Series series = RunTrial(Waveform::kImpulseDown, 1);
  ASSERT_FALSE(series.empty());

  // The paper notes the 2 s downward impulse is too short for the estimate
  // to settle at the low level; the regression contract is only that the
  // estimate dips below the high band and re-settles at high afterwards.
  const double dip_floor = MeanBetween(series, 20.0, 30.0);
  EXPECT_GT(dip_floor, kBandLo * kHighBandwidth);

  const double settle =
      SettlingTime(series, 32.0, kBandLo * kHighBandwidth, kBandHi * kHighBandwidth);
  EXPECT_GE(settle, 0.0) << "estimate never re-settled at the high level";
  EXPECT_LE(settle, 8.0);

  const double after = MeanBetween(series, 45.0, 60.0);
  EXPECT_GT(after, kBandLo * kHighBandwidth);
  EXPECT_LT(after, kBandHi * kHighBandwidth);
}

TEST(AgilityRegressionTest, TrialsAreSeedDeterministic) {
  const Series a = RunTrial(Waveform::kStepDown, 7);
  const Series b = RunTrial(Waveform::kStepDown, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_DOUBLE_EQ(a[i].seconds, b[i].seconds);
    ASSERT_DOUBLE_EQ(a[i].supply_bps, b[i].supply_bps) << "sample " << i;
  }
}

TEST(AgilityRegressionTest, RetryMachineryDoesNotMoveCleanEstimates) {
  // On a fault-free replay the retry policy must be invisible: no timeouts
  // fire, so the estimate matches a run with the policy disabled.
  Series with_policy = RunTrial(Waveform::kStepDown, 3);

  ExperimentRig rig(3, StrategyKind::kOdyssey);
  BitstreamApp app(&rig.client(), "bitstream");
  const Time measure = rig.Replay(MakeWaveform(Waveform::kStepDown));
  app.Start();
  Series without_policy;
  for (Time at = measure; at < measure + kWaveformLength; at += kSamplePeriod) {
    rig.sim().ScheduleAt(at, [&without_policy, &rig, measure] {
      without_policy.push_back(Sample{DurationToSeconds(rig.sim().now() - measure),
                                      rig.centralized()->TotalSupply(rig.sim().now())});
    });
  }
  rig.sim().RunUntil(measure + kWaveformLength);

  ASSERT_EQ(with_policy.size(), without_policy.size());
  for (size_t i = 0; i < with_policy.size(); ++i) {
    ASSERT_DOUBLE_EQ(with_policy[i].supply_bps, without_policy[i].supply_bps)
        << "sample " << i << " at t=" << with_policy[i].seconds;
  }
}

}  // namespace
}  // namespace odyssey

// Unit tests for the Odyssey object namespace and the OdysseyClient facade.

#include <memory>

#include <gtest/gtest.h>

#include "src/core/object_namespace.h"
#include "src/core/odyssey_client.h"
#include "src/core/warden.h"
#include "src/net/link.h"
#include "src/sim/simulation.h"
#include "src/strategies/laissez_faire.h"

namespace odyssey {
namespace {

// A warden that records the operations it receives.
class ProbeWarden : public Warden {
 public:
  explicit ProbeWarden(std::string name) : Warden(std::move(name)) {}

  void Tsop(AppId app, const std::string& path, int opcode, const std::string& in,
            TsopCallback done) override {
    last_app = app;
    last_path = path;
    last_opcode = opcode;
    last_in = in;
    done(OkStatus(), "probe-out");
  }

  void Read(AppId, const std::string& path, ReadCallback done) override {
    done(OkStatus(), "read:" + path);
  }

  void Write(AppId, const std::string& path, std::string data, WriteCallback done) override {
    last_path = path;
    last_in = std::move(data);
    done(OkStatus());
  }

  AppId last_app = 0;
  std::string last_path;
  int last_opcode = 0;
  std::string last_in;
};

TEST(ObjectNamespaceTest, InstallAndResolve) {
  ObjectNamespace ns;
  ProbeWarden warden("video");
  ASSERT_TRUE(ns.Install(&warden).ok());
  ObjectNamespace::Resolution resolution;
  ASSERT_TRUE(ns.Resolve("/odyssey/video/movies/m1", &resolution).ok());
  EXPECT_EQ(resolution.warden, &warden);
  EXPECT_EQ(resolution.relative_path, "movies/m1");
}

TEST(ObjectNamespaceTest, ResolveWardenRootYieldsEmptyRelative) {
  ObjectNamespace ns;
  ProbeWarden warden("web");
  ASSERT_TRUE(ns.Install(&warden).ok());
  ObjectNamespace::Resolution resolution;
  ASSERT_TRUE(ns.Resolve("/odyssey/web", &resolution).ok());
  EXPECT_EQ(resolution.relative_path, "");
}

TEST(ObjectNamespaceTest, RejectsDuplicateInstall) {
  ObjectNamespace ns;
  ProbeWarden a("video");
  ProbeWarden b("video");
  ASSERT_TRUE(ns.Install(&a).ok());
  EXPECT_EQ(ns.Install(&b).code(), StatusCode::kAlreadyExists);
}

TEST(ObjectNamespaceTest, RejectsBadNames) {
  ObjectNamespace ns;
  ProbeWarden slashy("a/b");
  EXPECT_EQ(ns.Install(&slashy).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ns.Install(nullptr).code(), StatusCode::kInvalidArgument);
}

TEST(ObjectNamespaceTest, NonOdysseyPathsNotFound) {
  ObjectNamespace ns;
  ProbeWarden warden("video");
  ASSERT_TRUE(ns.Install(&warden).ok());
  ObjectNamespace::Resolution resolution;
  EXPECT_FALSE(ns.Resolve("/usr/lib/libc.so", &resolution).ok());
  EXPECT_FALSE(ns.Resolve("/odyssey/unknown/x", &resolution).ok());
  EXPECT_FALSE(ObjectNamespace::IsOdysseyPath("/etc/passwd"));
  EXPECT_TRUE(ObjectNamespace::IsOdysseyPath("/odyssey/video/x"));
}

TEST(ObjectNamespaceTest, ListsWardenNames) {
  ObjectNamespace ns;
  ProbeWarden a("alpha");
  ProbeWarden b("beta");
  ASSERT_TRUE(ns.Install(&a).ok());
  ASSERT_TRUE(ns.Install(&b).ok());
  EXPECT_EQ(ns.WardenNames(), (std::vector<std::string>{"alpha", "beta"}));
}

class OdysseyClientTest : public ::testing::Test {
 protected:
  OdysseyClientTest()
      : link_(&sim_, 1e6, 0),
        client_(&sim_, &link_, std::make_unique<LaissezFaireStrategy>()) {}

  Simulation sim_;
  Link link_;
  OdysseyClient client_;
};

TEST_F(OdysseyClientTest, TsopRoutesThroughNamespace) {
  auto owned = std::make_unique<ProbeWarden>("probe");
  ProbeWarden* warden = owned.get();
  ASSERT_NE(client_.InstallWarden(std::move(owned)), nullptr);
  const AppId app = client_.RegisterApplication("app");

  Status seen;
  std::string out;
  client_.Tsop(app, "/odyssey/probe/obj", 7, "payload", [&](Status status, std::string data) {
    seen = status;
    out = std::move(data);
  });
  EXPECT_TRUE(seen.ok());
  EXPECT_EQ(out, "probe-out");
  EXPECT_EQ(warden->last_app, app);
  EXPECT_EQ(warden->last_path, "obj");
  EXPECT_EQ(warden->last_opcode, 7);
  EXPECT_EQ(warden->last_in, "payload");
}

TEST_F(OdysseyClientTest, TsopOnUnknownPathFails) {
  const AppId app = client_.RegisterApplication("app");
  Status seen;
  client_.Tsop(app, "/odyssey/nothing/obj", 1, "", [&](Status status, std::string) {
    seen = status;
  });
  EXPECT_EQ(seen.code(), StatusCode::kNotFound);
}

TEST_F(OdysseyClientTest, ReadAndWriteRoute) {
  ASSERT_NE(client_.InstallWarden(std::make_unique<ProbeWarden>("probe")), nullptr);
  const AppId app = client_.RegisterApplication("app");
  std::string data;
  client_.Read(app, "/odyssey/probe/file", [&](Status, std::string d) { data = std::move(d); });
  EXPECT_EQ(data, "read:file");
  Status write_status(StatusCode::kUnavailable);
  client_.Write(app, "/odyssey/probe/file", "hello",
                [&](Status status) { write_status = status; });
  EXPECT_TRUE(write_status.ok());
}

TEST_F(OdysseyClientTest, DefaultWardenOpsUnsupported) {
  // Warden base class rejects everything it does not implement.
  class EmptyWarden : public Warden {
   public:
    EmptyWarden() : Warden("empty") {}
  };
  ASSERT_NE(client_.InstallWarden(std::make_unique<EmptyWarden>()), nullptr);
  const AppId app = client_.RegisterApplication("app");
  Status tsop_status;
  client_.Tsop(app, "/odyssey/empty/x", 1, "", [&](Status s, std::string) { tsop_status = s; });
  EXPECT_EQ(tsop_status.code(), StatusCode::kUnsupported);
  Status read_status;
  client_.Read(app, "/odyssey/empty/x", [&](Status s, std::string) { read_status = s; });
  EXPECT_EQ(read_status.code(), StatusCode::kUnsupported);
  Status write_status;
  client_.Write(app, "/odyssey/empty/x", "", [&](Status s) { write_status = s; });
  EXPECT_EQ(write_status.code(), StatusCode::kUnsupported);
}

TEST_F(OdysseyClientTest, DuplicateWardenInstallFails) {
  ASSERT_NE(client_.InstallWarden(std::make_unique<ProbeWarden>("dup")), nullptr);
  EXPECT_EQ(client_.InstallWarden(std::make_unique<ProbeWarden>("dup")), nullptr);
}

TEST_F(OdysseyClientTest, OpenYieldsUsableDescriptor) {
  ASSERT_NE(client_.InstallWarden(std::make_unique<ProbeWarden>("probe")), nullptr);
  const AppId app = client_.RegisterApplication("app");
  const auto open = client_.Open(app, "/odyssey/probe/deep/path");
  ASSERT_TRUE(open.status.ok());
  EXPECT_GE(open.fd, 3);

  std::string out;
  client_.TsopFd(app, open.fd, 5, "x", [&](Status, std::string data) { out = std::move(data); });
  EXPECT_EQ(out, "probe-out");
  std::string read_data;
  client_.ReadFd(app, open.fd, [&](Status, std::string data) { read_data = std::move(data); });
  EXPECT_EQ(read_data, "read:deep/path");
  Status write_status;
  client_.WriteFd(app, open.fd, "payload", [&](Status s) { write_status = s; });
  EXPECT_TRUE(write_status.ok());
  EXPECT_TRUE(client_.Close(app, open.fd).ok());
}

TEST_F(OdysseyClientTest, DescriptorsAreScopedToTheirApp) {
  ASSERT_NE(client_.InstallWarden(std::make_unique<ProbeWarden>("probe")), nullptr);
  const AppId owner = client_.RegisterApplication("owner");
  const AppId intruder = client_.RegisterApplication("intruder");
  const auto open = client_.Open(owner, "/odyssey/probe/x");
  ASSERT_TRUE(open.status.ok());
  Status status;
  client_.TsopFd(intruder, open.fd, 1, "", [&](Status s, std::string) { status = s; });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(client_.Close(intruder, open.fd).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(client_.Close(owner, open.fd).ok());
}

TEST_F(OdysseyClientTest, ClosedDescriptorRejected) {
  ASSERT_NE(client_.InstallWarden(std::make_unique<ProbeWarden>("probe")), nullptr);
  const AppId app = client_.RegisterApplication("app");
  const auto open = client_.Open(app, "/odyssey/probe/x");
  ASSERT_TRUE(client_.Close(app, open.fd).ok());
  Status status;
  client_.TsopFd(app, open.fd, 1, "", [&](Status s, std::string) { status = s; });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(client_.Close(app, open.fd).code(), StatusCode::kInvalidArgument);
}

TEST_F(OdysseyClientTest, OpenUnknownPathFails) {
  const AppId app = client_.RegisterApplication("app");
  const auto open = client_.Open(app, "/odyssey/missing/x");
  EXPECT_FALSE(open.status.ok());
  EXPECT_EQ(open.fd, -1);
}

TEST_F(OdysseyClientTest, DescriptorsAreDistinct) {
  ASSERT_NE(client_.InstallWarden(std::make_unique<ProbeWarden>("probe")), nullptr);
  const AppId app = client_.RegisterApplication("app");
  const auto a = client_.Open(app, "/odyssey/probe/a");
  const auto b = client_.Open(app, "/odyssey/probe/b");
  EXPECT_NE(a.fd, b.fd);
  std::string read_a;
  client_.ReadFd(app, a.fd, [&](Status, std::string data) { read_a = std::move(data); });
  std::string read_b;
  client_.ReadFd(app, b.fd, [&](Status, std::string data) { read_b = std::move(data); });
  EXPECT_EQ(read_a, "read:a");
  EXPECT_EQ(read_b, "read:b");
}

TEST_F(OdysseyClientTest, RequestByPathValidatesTheObject) {
  ASSERT_NE(client_.InstallWarden(std::make_unique<ProbeWarden>("probe")), nullptr);
  const AppId app = client_.RegisterApplication("app");
  ResourceDescriptor descriptor{ResourceId::kBatteryPower, 0.0, 1e9, nullptr};
  // Figure 3(a): request(in path, in resource-descriptor, out request-id).
  const RequestResult ok = client_.Request(app, "/odyssey/probe/obj", descriptor);
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(client_.Cancel(ok.id).ok());
  const RequestResult bad = client_.Request(app, "/not/odyssey", descriptor);
  EXPECT_FALSE(bad.ok());
}

TEST_F(OdysseyClientTest, RequestByDescriptorValidatesOwnership) {
  ASSERT_NE(client_.InstallWarden(std::make_unique<ProbeWarden>("probe")), nullptr);
  const AppId app = client_.RegisterApplication("app");
  const AppId other = client_.RegisterApplication("other");
  const auto open = client_.Open(app, "/odyssey/probe/obj");
  ASSERT_TRUE(open.status.ok());
  ResourceDescriptor descriptor{ResourceId::kBatteryPower, 0.0, 1e9, nullptr};
  EXPECT_TRUE(client_.RequestFd(app, open.fd, descriptor).ok());
  EXPECT_FALSE(client_.RequestFd(other, open.fd, descriptor).ok());
  EXPECT_FALSE(client_.RequestFd(app, 9999, descriptor).ok());
}

TEST_F(OdysseyClientTest, OpenConnectionAttachesToViceroy) {
  const AppId app = client_.RegisterApplication("app");
  Endpoint* endpoint = client_.OpenConnection(app, "server");
  ASSERT_NE(endpoint, nullptr);
  // The laissez-faire strategy now tracks the connection: feeding the log
  // changes the app's availability.
  endpoint->log().RecordThroughput(0, 64.0 * 1024.0, 521 * kMillisecond);
  EXPECT_GT(client_.CurrentLevel(app, ResourceId::kNetworkBandwidth), 0.0);
}

}  // namespace
}  // namespace odyssey

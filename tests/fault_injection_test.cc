// Fault-matrix tests: deterministic fault injection composed with the RPC
// retry machinery, the estimator, and the full warden stack.
//
// The contract under test (see DESIGN.md "Fault model"):
//   (a) no hung callbacks — every exchange settles, by success or by
//       kDeadlineExceeded after bounded retries;
//   (b) retries are bounded by RetryPolicy::max_attempts;
//   (c) fidelity steps down while a fault is active and recovers after;
//   (d) identical seeds and plans reproduce identical outcomes.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <tuple>

#include "src/apps/speech_frontend.h"
#include "src/apps/video_player.h"
#include "src/apps/web_browser.h"
#include "src/core/status.h"
#include "src/estimator/supply_model.h"
#include "src/metrics/experiment.h"
#include "src/net/fault_injector.h"
#include "src/net/link.h"
#include "src/rpc/endpoint.h"
#include "src/sim/simulation.h"

namespace odyssey {
namespace {

constexpr double kKb = 1024.0;

// A policy with deterministic timing (no jitter) for exact-value tests.
RetryPolicy ExactPolicy() {
  RetryPolicy policy = RetryPolicy::Default();
  policy.timeout = 500 * kMillisecond;
  policy.backoff_base = 100 * kMillisecond;
  policy.jitter = 0.0;
  return policy;
}

// --- FaultInjector unit tests -------------------------------------------

TEST(FaultInjectorTest, SameSeedSameDropPattern) {
  Simulation sim;
  Link link(&sim, 120.0 * kKb, 0);
  FaultInjector a(&sim, &link);
  FaultInjector b(&sim, &link);
  FaultPlan plan;
  plan.WithSeed(42).WithDropProbability(0.3);
  a.Arm(plan);
  b.Arm(plan);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.ShouldDropMessage(), b.ShouldDropMessage()) << "message " << i;
  }
  EXPECT_EQ(a.messages_dropped(), b.messages_dropped());
  EXPECT_GT(a.messages_dropped(), 0u);
  EXPECT_LT(a.messages_dropped(), 1000u);
}

TEST(FaultInjectorTest, DifferentSeedDifferentDropPattern) {
  Simulation sim;
  Link link(&sim, 120.0 * kKb, 0);
  FaultInjector a(&sim, &link);
  FaultInjector b(&sim, &link);
  a.Arm(FaultPlan().WithSeed(1).WithDropProbability(0.3));
  b.Arm(FaultPlan().WithSeed(2).WithDropProbability(0.3));
  int disagreements = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.ShouldDropMessage() != b.ShouldDropMessage()) {
      ++disagreements;
    }
  }
  EXPECT_GT(disagreements, 0);
}

TEST(FaultInjectorTest, ScheduledDropsAreExactAndSeedIndependent) {
  Simulation sim;
  Link link(&sim, 120.0 * kKb, 0);
  FaultInjector injector(&sim, &link);
  injector.Arm(FaultPlan().WithSeed(7).WithDroppedMessage(2).WithDroppedMessage(5));
  std::vector<bool> pattern;
  pattern.reserve(6);
  for (int i = 0; i < 6; ++i) {
    pattern.push_back(injector.ShouldDropMessage());
  }
  EXPECT_EQ(pattern, (std::vector<bool>{false, true, false, false, true, false}));
  EXPECT_EQ(injector.messages_dropped(), 2u);
}

TEST(FaultInjectorTest, RearmResetsStreamAndCounters) {
  Simulation sim;
  Link link(&sim, 120.0 * kKb, 0);
  FaultInjector injector(&sim, &link);
  FaultPlan plan;
  plan.WithSeed(9).WithDropProbability(0.5);
  injector.Arm(plan);
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) {
    first.push_back(injector.ShouldDropMessage());
  }
  injector.Arm(plan);
  EXPECT_EQ(injector.messages_offered(), 0u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(injector.ShouldDropMessage(), first[static_cast<size_t>(i)]);
  }
}

TEST(FaultInjectorTest, OutageWindowGatesTheLink) {
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 0);
  FaultInjector injector(&sim, &link);
  injector.Arm(FaultPlan().WithOutage(1 * kSecond, 2 * kSecond));

  // 150 KB started at t=0: 1 s moves 100 KB, the outage stalls the last
  // 50 KB for 2 s, and transfer resumes at 3 s, completing at 3.5 s.
  Time completed = 0;
  link.StartFlow(150.0 * kKb, [&] { completed = sim.now(); });
  sim.Run();
  EXPECT_EQ(completed, 3500 * kMillisecond);
  EXPECT_FALSE(link.in_outage());
}

TEST(FaultInjectorTest, OutageComposesWithCapacityChanges) {
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 0);
  FaultInjector injector(&sim, &link);
  injector.Arm(FaultPlan().WithOutage(1 * kSecond, 1 * kSecond));
  // Halve the capacity mid-outage; an outage is a gate, not a saved
  // capacity, so the modulator's change must hold once the outage lifts.
  sim.Schedule(1500 * kMillisecond, [&] { link.SetCapacity(50.0 * kKb); });

  Time completed = 0;
  link.StartFlow(150.0 * kKb, [&] { completed = sim.now(); });
  sim.Run();
  // 1 s at 100 KB/s, 1 s stalled, then 50 KB at the new 50 KB/s rate.
  EXPECT_EQ(completed, 3 * kSecond);
  EXPECT_DOUBLE_EQ(link.capacity_bps(), 50.0 * kKb);
}

TEST(FaultInjectorTest, LatencySpikeIsAdditiveAndReverts) {
  Simulation sim;
  Link link(&sim, 120.0 * kKb, 10 * kMillisecond);
  FaultInjector injector(&sim, &link);
  injector.Arm(FaultPlan().WithLatencySpike(1 * kSecond, 1 * kSecond, 300 * kMillisecond));
  EXPECT_EQ(link.latency(), 10 * kMillisecond);
  sim.RunUntil(1500 * kMillisecond);
  EXPECT_EQ(link.latency(), 310 * kMillisecond);
  sim.RunUntil(2500 * kMillisecond);
  EXPECT_EQ(link.latency(), 10 * kMillisecond);
}

TEST(FaultInjectorTest, ServerStallExtraSumsCoveringWindows) {
  Simulation sim;
  Link link(&sim, 120.0 * kKb, 0);
  FaultInjector injector(&sim, &link);
  injector.Arm(FaultPlan()
                   .WithServerStall(1 * kSecond, 2 * kSecond, 100 * kMillisecond)
                   .WithServerStall(2 * kSecond, 2 * kSecond, 50 * kMillisecond));
  EXPECT_EQ(injector.ServerStallExtra(0), 0);
  EXPECT_EQ(injector.ServerStallExtra(1500 * kMillisecond), 100 * kMillisecond);
  EXPECT_EQ(injector.ServerStallExtra(2500 * kMillisecond), 150 * kMillisecond);
  EXPECT_EQ(injector.ServerStallExtra(3500 * kMillisecond), 50 * kMillisecond);
  EXPECT_EQ(injector.ServerStallExtra(4 * kSecond), 0);
}

TEST(FaultInjectorTest, FlowKillCancelsEveryActiveFlow) {
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 0);
  FaultInjector injector(&sim, &link);
  injector.Arm(FaultPlan().WithFlowKill(500 * kMillisecond));
  bool first_completed = false;
  bool second_completed = false;
  link.StartFlow(100.0 * kKb, [&] { first_completed = true; });
  link.StartFlow(200.0 * kKb, [&] { second_completed = true; });
  sim.Run();
  EXPECT_FALSE(first_completed);
  EXPECT_FALSE(second_completed);
  EXPECT_EQ(injector.flows_killed(), 2u);
  EXPECT_EQ(link.active_flow_count(), 0u);
}

// --- Endpoint retry/timeout/backoff -------------------------------------

TEST(EndpointRetryTest, DroppedRequestIsRetriedAndSucceeds) {
  Simulation sim;
  Link link(&sim, 120.0 * kKb, 10500);
  FaultInjector injector(&sim, &link);
  injector.Arm(FaultPlan().WithDroppedMessage(1));
  Endpoint endpoint(&sim, &link, "server");
  endpoint.set_retry_policy(ExactPolicy());
  endpoint.set_fault_injector(&injector);

  int done_count = 0;
  Status final_status;
  endpoint.Ping([&](Status status) {
    ++done_count;
    final_status = status;
  });
  sim.Run();

  EXPECT_EQ(done_count, 1);
  EXPECT_TRUE(final_status.ok());
  EXPECT_EQ(endpoint.retries(), 1u);
  EXPECT_EQ(endpoint.timeouts(), 1u);
  EXPECT_EQ(endpoint.exchanges_failed(), 0u);
  ASSERT_EQ(endpoint.log().round_trips().size(), 1u);
}

TEST(EndpointRetryTest, RetriedCallLogsOnlyItsOwnSpan) {
  // The estimator must not be poisoned by retransmission-inflated samples:
  // a call whose first attempt was lost logs the same round trip as a call
  // that succeeded immediately.
  Duration clean_rtt = 0;
  {
    Simulation sim;
    Link link(&sim, 120.0 * kKb, 10500);
    Endpoint endpoint(&sim, &link, "server");
    endpoint.set_retry_policy(ExactPolicy());
    endpoint.Ping(Endpoint::StatusDone());
    sim.Run();
    ASSERT_EQ(endpoint.log().round_trips().size(), 1u);
    clean_rtt = endpoint.log().round_trips()[0].rtt;
  }
  Simulation sim;
  Link link(&sim, 120.0 * kKb, 10500);
  FaultInjector injector(&sim, &link);
  injector.Arm(FaultPlan().WithDroppedMessage(1));
  Endpoint endpoint(&sim, &link, "server");
  endpoint.set_retry_policy(ExactPolicy());
  endpoint.set_fault_injector(&injector);
  endpoint.Ping(Endpoint::StatusDone());
  sim.Run();
  ASSERT_EQ(endpoint.log().round_trips().size(), 1u);
  EXPECT_EQ(endpoint.log().round_trips()[0].rtt, clean_rtt);
}

TEST(EndpointRetryTest, RetriedWindowLogsOnlyItsOwnSpan) {
  Duration clean_elapsed = 0;
  {
    Simulation sim;
    Link link(&sim, 120.0 * kKb, 10500);
    Endpoint endpoint(&sim, &link, "server");
    endpoint.set_retry_policy(ExactPolicy());
    endpoint.FetchWindow(4.0 * kKb, Endpoint::StatusDone());
    sim.Run();
    ASSERT_EQ(endpoint.log().throughputs().size(), 1u);
    clean_elapsed = endpoint.log().throughputs()[0].elapsed;
  }
  Simulation sim;
  Link link(&sim, 120.0 * kKb, 10500);
  FaultInjector injector(&sim, &link);
  injector.Arm(FaultPlan().WithDroppedMessage(1));
  Endpoint endpoint(&sim, &link, "server");
  endpoint.set_retry_policy(ExactPolicy());
  endpoint.set_fault_injector(&injector);
  endpoint.FetchWindow(4.0 * kKb, Endpoint::StatusDone());
  sim.Run();
  ASSERT_EQ(endpoint.log().throughputs().size(), 1u);
  EXPECT_EQ(endpoint.log().throughputs()[0].elapsed, clean_elapsed);
}

TEST(EndpointRetryTest, TotalLossFailsAfterBoundedRetries) {
  // The ISSUE's acceptance scenario: at 100% drop the exchange must settle
  // with a failure after max_attempts, not hang.
  Simulation sim;
  Link link(&sim, 120.0 * kKb, 10500);
  FaultInjector injector(&sim, &link);
  injector.Arm(FaultPlan().WithDropProbability(1.0));
  Endpoint endpoint(&sim, &link, "server");
  const RetryPolicy policy = ExactPolicy();
  endpoint.set_retry_policy(policy);
  endpoint.set_fault_injector(&injector);

  int done_count = 0;
  Status final_status;
  endpoint.Fetch(64.0 * kKb, 0, [&](Status status) {
    ++done_count;
    final_status = status;
  });
  sim.Run();  // terminates: every attempt has a timeout

  EXPECT_EQ(done_count, 1);
  EXPECT_EQ(final_status.code(), StatusCode::kDeadlineExceeded);
  // The control exchange consumed the whole attempt budget and no more.
  EXPECT_EQ(endpoint.retries(), static_cast<uint64_t>(policy.max_attempts - 1));
  EXPECT_EQ(endpoint.exchanges_failed(), 1u);
  ASSERT_EQ(endpoint.log().failures().size(), 1u);
  EXPECT_EQ(endpoint.log().failures()[0].attempts, policy.max_attempts);
  EXPECT_TRUE(endpoint.log().round_trips().empty());
  EXPECT_TRUE(endpoint.log().throughputs().empty());
}

TEST(EndpointRetryTest, DisabledPolicyNeverTimesOutOrRetries) {
  // Default-constructed policy preserves the fair-weather protocol even
  // with an injector attached: a dropped message hangs the exchange (the
  // paper's infinite patience) instead of fabricating failures.
  Simulation sim;
  Link link(&sim, 120.0 * kKb, 10500);
  FaultInjector injector(&sim, &link);
  injector.Arm(FaultPlan().WithDroppedMessage(1));
  Endpoint endpoint(&sim, &link, "server");
  endpoint.set_fault_injector(&injector);
  int done_count = 0;
  endpoint.Ping([&](Status) { ++done_count; });
  sim.Run();
  EXPECT_EQ(done_count, 0);
  EXPECT_EQ(endpoint.retries(), 0u);
  EXPECT_EQ(endpoint.timeouts(), 0u);
}

TEST(EndpointRetryTest, FailuresCollapseSupplyEstimate) {
  SupplyModel model;
  model.AddConnection(1);
  model.OnThroughput(1, ThroughputObservation{1 * kSecond, 100.0 * kKb, 1 * kSecond});
  EXPECT_GT(model.TotalSupply(), 50.0 * kKb);
  // Sustained failures age the stale high sample out of the envelope.
  model.OnFailure(1, FailureObservation{2 * kSecond, 4});
  model.OnFailure(1, FailureObservation{4 * kSecond, 4});
  EXPECT_DOUBLE_EQ(model.TotalSupply(), 0.0);
  EXPECT_DOUBLE_EQ(model.AvailabilityFor(1, 4 * kSecond), 0.0);
}

TEST(EndpointRetryTest, BackoffGrowsExponentially) {
  // With jitter disabled the k-th retry waits base * multiplier^(k-1):
  // attempts at t, t+budget+100ms, t+2*budget+300ms, t+3*budget+700ms.
  Simulation sim;
  Link link(&sim, 1e9, 0);  // instant transfer; timing is all budget+backoff
  FaultInjector injector(&sim, &link);
  injector.Arm(FaultPlan().WithDropProbability(1.0));
  Endpoint endpoint(&sim, &link, "server");
  RetryPolicy policy = ExactPolicy();
  policy.min_rate_bytes_per_sec = 0.0;  // no byte allowance: budget == timeout
  endpoint.set_retry_policy(policy);
  endpoint.set_fault_injector(&injector);

  Time failed_at = -1;
  endpoint.Ping([&](Status status) {
    EXPECT_FALSE(status.ok());
    failed_at = sim.now();
  });
  sim.Run();
  // 4 attempts x 500 ms timeout + backoffs 100 + 200 + 400 ms = 2.7 s.
  EXPECT_EQ(failed_at, 2700 * kMillisecond);
}

// --- The fault matrix ----------------------------------------------------

enum class FaultKind { kDrop, kOutage, kLatencySpike, kServerStall };
enum class Workload { kVideo, kWeb, kSpeech };

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "Drop";
    case FaultKind::kOutage:
      return "Outage";
    case FaultKind::kLatencySpike:
      return "LatencySpike";
    case FaultKind::kServerStall:
      return "ServerStall";
  }
  return "Unknown";
}

const char* WorkloadName(Workload workload) {
  switch (workload) {
    case Workload::kVideo:
      return "Video";
    case Workload::kWeb:
      return "Web";
    case Workload::kSpeech:
      return "Speech";
  }
  return "Unknown";
}

constexpr Time kFaultStart = 20 * kSecond;
constexpr Time kFaultEnd = 28 * kSecond;
constexpr Time kHorizon = 58 * kSecond;

// Measurement windows around the fault.
constexpr Time kBeforeBegin = 10 * kSecond;
constexpr Time kBeforeEnd = 20 * kSecond;
constexpr Time kDuringBegin = 21 * kSecond;
constexpr Time kDuringEnd = 28 * kSecond;
constexpr Time kAfterBegin = 40 * kSecond;
constexpr Time kAfterEnd = 56 * kSecond;

FaultPlan PlanFor(FaultKind kind, uint64_t seed) {
  FaultPlan plan;
  plan.WithSeed(seed);
  switch (kind) {
    case FaultKind::kDrop:
      // Steady loss over the whole run; retries must absorb it.
      plan.WithDropProbability(0.15);
      break;
    case FaultKind::kOutage:
      plan.WithOutage(kFaultStart, kFaultEnd - kFaultStart);
      break;
    case FaultKind::kLatencySpike:
      // Large enough that every workload's quality metric moves: at 800 ms
      // extra one-way latency a video batch window's observed rate falls
      // below the middle track's requirement no matter which track the
      // player was on.
      plan.WithLatencySpike(kFaultStart, kFaultEnd - kFaultStart, 800 * kMillisecond);
      break;
    case FaultKind::kServerStall:
      plan.WithServerStall(kFaultStart, kFaultEnd - kFaultStart, 2500 * kMillisecond);
      break;
  }
  return plan;
}

struct ScenarioResult {
  bool completed = false;      // the workload made progress past the fault
  double before = 0.0;         // fidelity (or -mean-seconds) before the fault
  double during = 0.0;         // ... while it was active
  double after = 0.0;          // ... after recovery
  bool degraded = false;       // some degradation signal fired during the fault
  uint64_t messages_dropped = 0;
  uint64_t messages_offered = 0;
  std::string fingerprint;     // full deterministic outcome digest
};

ScenarioResult RunScenario(FaultKind kind, Workload workload, uint64_t seed) {
  ExperimentRig rig(seed, StrategyKind::kOdyssey);
  rig.client().set_retry_policy(RetryPolicy::Default());
  FaultInjector injector(&rig.sim(), &rig.link());
  rig.client().set_fault_injector(&injector);
  injector.Arm(PlanFor(kind, seed));

  std::unique_ptr<VideoPlayer> player;
  std::unique_ptr<WebBrowser> browser;
  std::unique_ptr<SpeechFrontEnd> speech;
  std::unique_ptr<WebBrowser> background;  // keeps estimates alive for speech

  switch (workload) {
    case Workload::kVideo: {
      VideoPlayerOptions options;
      options.movie = kDefaultMovie;
      options.frames_to_play = 560;  // 56 s at 10 fps
      player = std::make_unique<VideoPlayer>(&rig.client(), options);
      player->Start();
      break;
    }
    case Workload::kWeb: {
      WebBrowserOptions options;
      options.url = kTestImageUrl;
      options.think_time = 100 * kMillisecond;
      browser = std::make_unique<WebBrowser>(&rig.client(), options);
      browser->Start();
      break;
    }
    case Workload::kSpeech: {
      speech = std::make_unique<SpeechFrontEnd>(&rig.client(), SpeechFrontEndOptions{});
      speech->Start();
      // Speech goes fully local when disconnected; background web traffic
      // re-probes the network so the estimate (and the plan) can recover.
      WebBrowserOptions options;
      options.url = kTestImageUrl;
      options.think_time = 1 * kSecond;
      background = std::make_unique<WebBrowser>(&rig.client(), options);
      background->Start();
      break;
    }
  }

  rig.sim().RunUntil(kHorizon);

  ScenarioResult result;
  result.messages_dropped = injector.messages_dropped();
  result.messages_offered = injector.messages_offered();

  std::ostringstream fp;
  fp.precision(17);

  switch (workload) {
    case Workload::kVideo: {
      result.completed = player->finished();
      result.before = player->MeanFidelityBetween(kBeforeBegin, kBeforeEnd);
      result.during = player->MeanFidelityBetween(kDuringBegin, kDuringEnd);
      result.after = player->MeanFidelityBetween(kAfterBegin, kAfterEnd);
      const int drops_before = player->DropsBetween(kBeforeBegin, kBeforeEnd);
      const int drops_during = player->DropsBetween(kDuringBegin, kDuringEnd);
      result.degraded = result.during < result.before - 1e-9 || drops_during > drops_before;
      fp << "video " << player->outcomes().size() << " " << player->track_switches();
      for (const FrameOutcome& outcome : player->outcomes()) {
        fp << " " << outcome.at << ":" << outcome.displayed << ":" << outcome.fidelity;
      }
      break;
    }
    case Workload::kWeb: {
      const auto& outcomes = browser->outcomes();
      result.completed = !outcomes.empty() && outcomes.back().started > kAfterBegin;
      result.before = browser->MeanFidelityBetween(kBeforeBegin, kBeforeEnd);
      result.during = browser->MeanFidelityBetween(kDuringBegin, kDuringEnd);
      result.after = browser->MeanFidelityBetween(kAfterBegin, kAfterEnd);
      result.degraded = result.during < result.before - 1e-9 || browser->failed_fetches() > 0;
      fp << "web " << outcomes.size() << " " << browser->failed_fetches();
      for (const WebFetchOutcome& outcome : outcomes) {
        fp << " " << outcome.started << ":" << outcome.elapsed << ":" << outcome.fidelity;
      }
      break;
    }
    case Workload::kSpeech: {
      const auto& outcomes = speech->outcomes();
      result.completed = !outcomes.empty() && outcomes.back().started > kAfterBegin;
      // For speech the figure of merit is recognition time (smaller is
      // better); negate so "during < before" still means degradation.
      result.before = -speech->MeanSecondsBetween(kBeforeBegin, kBeforeEnd);
      result.during = -speech->MeanSecondsBetween(kDuringBegin, kDuringEnd);
      result.after = -speech->MeanSecondsBetween(kAfterBegin, kAfterEnd);
      bool local_during = false;
      for (const RecognitionOutcome& outcome : outcomes) {
        if (outcome.started >= kDuringBegin && outcome.started < kDuringEnd &&
            outcome.plan == static_cast<int>(SpeechMode::kAlwaysLocal)) {
          local_during = true;
        }
      }
      result.degraded = result.during < result.before - 1e-9 || local_during;
      fp << "speech " << outcomes.size();
      for (const RecognitionOutcome& outcome : outcomes) {
        fp << " " << outcome.started << ":" << outcome.elapsed << ":" << outcome.plan;
      }
      break;
    }
  }
  fp << " | dropped=" << result.messages_dropped << " offered=" << result.messages_offered;
  result.fingerprint = fp.str();
  return result;
}

class FaultMatrixTest : public ::testing::TestWithParam<std::tuple<FaultKind, Workload>> {};

TEST_P(FaultMatrixTest, CompletesDegradesRecoversDeterministically) {
  const auto [fault, workload] = GetParam();
  const ScenarioResult result = RunScenario(fault, workload, /*seed=*/1);

  // (a) No hung callbacks: the workload kept producing outcomes well past
  // the fault window.
  EXPECT_TRUE(result.completed) << "workload stalled";

  // (b) Bounded retries: the message volume stays sane (a retry storm or
  // timeout loop would multiply it).
  EXPECT_LT(result.messages_offered, 100000u);
  if (fault == FaultKind::kDrop) {
    EXPECT_GT(result.messages_dropped, 0u);
  }

  // (c) Fidelity steps down during a windowed fault and recovers after.
  if (fault != FaultKind::kDrop) {
    EXPECT_TRUE(result.degraded) << "no degradation signal during the fault";
    EXPECT_GT(result.after, result.during - 1e-9) << "no recovery after the fault";
    if (workload != Workload::kSpeech) {
      // Fidelity metrics are positive; recovery should reach at least half
      // of the pre-fault quality.  (Speech's metric is a negated mean
      // recognition time, for which this bound is meaningless.)
      EXPECT_GT(result.after, 0.5 * result.before - 1e-9) << "recovery too weak";
    }
  }

  // (d) Identical seeds reproduce identical outcomes, byte for byte.
  const ScenarioResult replay = RunScenario(fault, workload, /*seed=*/1);
  EXPECT_EQ(result.fingerprint, replay.fingerprint);
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultsAllWardens, FaultMatrixTest,
    ::testing::Combine(::testing::Values(FaultKind::kDrop, FaultKind::kOutage,
                                         FaultKind::kLatencySpike, FaultKind::kServerStall),
                       ::testing::Values(Workload::kVideo, Workload::kWeb, Workload::kSpeech)),
    [](const ::testing::TestParamInfo<std::tuple<FaultKind, Workload>>& param_info) {
      return std::string(FaultKindName(std::get<0>(param_info.param))) +
             WorkloadName(std::get<1>(param_info.param));
    });

// --- End-to-end total loss through the full stack ------------------------

TEST(TotalLossTest, WebBrowserDegradesInsteadOfHanging) {
  ExperimentRig rig(1, StrategyKind::kOdyssey);
  rig.client().set_retry_policy(RetryPolicy::Default());
  FaultInjector injector(&rig.sim(), &rig.link());
  rig.client().set_fault_injector(&injector);

  WebBrowserOptions options;
  options.url = kTestImageUrl;
  options.think_time = 100 * kMillisecond;
  WebBrowser browser(&rig.client(), options);
  browser.Start();
  // Let the session open and one clean fetch complete, then lose everything.
  rig.sim().RunUntil(5 * kSecond);
  ASSERT_FALSE(browser.outcomes().empty());
  injector.Arm(FaultPlan().WithDropProbability(1.0));
  rig.sim().RunUntil(45 * kSecond);

  // The loop is still alive, every fetch since the loss failed cleanly, and
  // the collapsed supply estimate reads as disconnection.
  EXPECT_TRUE(browser.running());
  EXPECT_GT(browser.failed_fetches(), 0);
  const auto& outcomes = browser.outcomes();
  ASSERT_GT(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes.back().failed);
  EXPECT_GT(outcomes.back().started, 30 * kSecond);
  ASSERT_NE(rig.centralized(), nullptr);
  EXPECT_DOUBLE_EQ(rig.centralized()->supply_model().TotalSupply(), 0.0);
}

}  // namespace
}  // namespace odyssey

// Tests for the measurement utilities: statistics, settling time, tables,
// trial running, sampling, and series merging.

#include <gtest/gtest.h>

#include "src/metrics/stats.h"
#include "src/metrics/table.h"
#include "src/metrics/trial.h"

namespace odyssey {
namespace {

TEST(StatsTest, EmptyIsZero) {
  Stats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(StatsTest, SingleSample) {
  Stats stats;
  stats.Add(7.0);
  EXPECT_EQ(stats.count(), 1);
  EXPECT_DOUBLE_EQ(stats.mean(), 7.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 7.0);
  EXPECT_DOUBLE_EQ(stats.max(), 7.0);
}

TEST(StatsTest, KnownMeanAndSampleStddev) {
  // Paper tables use mean (stddev) of five trials; sample stddev uses n-1.
  Stats stats({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(StatsTest, WelfordMatchesNaiveOnLargeStream) {
  Stats stats;
  double sum = 0.0;
  double sumsq = 0.0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    const double x = 1000.0 + (i % 17) * 0.25;
    stats.Add(x);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / kN;
  const double var = (sumsq - kN * mean * mean) / (kN - 1);
  EXPECT_NEAR(stats.mean(), mean, 1e-9);
  EXPECT_NEAR(stats.stddev() * stats.stddev(), var, 1e-6);
}

TEST(StatsTest, FormatMatchesPaperStyle) {
  Stats stats({1.0, 2.0, 3.0});
  EXPECT_EQ(stats.Format(2), "2.00 (1.00)");
  EXPECT_EQ(stats.Format(0), "2 (1)");
}

TEST(PercentileTest, NearestRankOnKnownSamples) {
  // The NIST nearest-rank example: rank = ceil(p/100 * n) into the sorted
  // samples, never interpolated.
  const std::vector<double> samples = {15.0, 20.0, 35.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(Percentile(samples, 5.0), 15.0);    // ceil(0.25) = 1st
  EXPECT_DOUBLE_EQ(Percentile(samples, 30.0), 20.0);   // ceil(1.5) = 2nd
  EXPECT_DOUBLE_EQ(Percentile(samples, 40.0), 20.0);   // ceil(2.0) = 2nd
  EXPECT_DOUBLE_EQ(Percentile(samples, 50.0), 35.0);   // ceil(2.5) = 3rd
  EXPECT_DOUBLE_EQ(Percentile(samples, 100.0), 50.0);  // always the max
}

TEST(PercentileTest, OrderInsensitiveAndClamped) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> shuffled = {3.0, 1.0, 4.0, 2.0};
  for (double pct : {1.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(Percentile(sorted, pct), Percentile(shuffled, pct)) << pct;
  }
  // Out-of-range percentiles clamp to (0, 100]; empty input yields zero.
  EXPECT_DOUBLE_EQ(Percentile(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(sorted, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(sorted, 250.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50.0), 0.0);
}

TEST(PercentileTest, SingleSampleIsEveryPercentile) {
  for (double pct : {1.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(Percentile({42.0}, pct), 42.0);
  }
}

TEST(SummarizeTest, CombinesMomentsAndPercentiles) {
  // 1..100: mean 50.5, p50 = 50th sample = 50, p95 = 95, p99 = 99.
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) {
    samples.push_back(static_cast<double>(i));
  }
  const SummaryStats summary = Summarize(samples);
  EXPECT_EQ(summary.count, 100);
  EXPECT_DOUBLE_EQ(summary.mean, 50.5);
  EXPECT_NEAR(summary.stddev, 29.011, 0.001);
  EXPECT_DOUBLE_EQ(summary.min, 1.0);
  EXPECT_DOUBLE_EQ(summary.max, 100.0);
  EXPECT_DOUBLE_EQ(summary.p50, 50.0);
  EXPECT_DOUBLE_EQ(summary.p95, 95.0);
  EXPECT_DOUBLE_EQ(summary.p99, 99.0);
}

TEST(SummarizeTest, EmptyIsAllZero) {
  const SummaryStats summary = Summarize({});
  EXPECT_EQ(summary.count, 0);
  EXPECT_DOUBLE_EQ(summary.mean, 0.0);
  EXPECT_DOUBLE_EQ(summary.p99, 0.0);
}

TEST(SettlingTimeTest, FindsEntryIntoBand) {
  Series series;
  for (int i = 0; i <= 100; ++i) {
    // Ramps from 0 to 100 over t=0..10s.
    series.push_back(SeriesPoint{i * 0.1, static_cast<double>(i)});
  }
  // Band [80, 200] is entered at value 80 -> t = 8.0; measuring from 5.0.
  EXPECT_NEAR(SettlingTime(series, 5.0, 80.0, 200.0), 3.0, 0.11);
}

TEST(SettlingTimeTest, MustStayInsideThroughEnd) {
  Series series = {{0.0, 100.0}, {1.0, 50.0}, {2.0, 100.0}, {3.0, 100.0}};
  // Enters [90,110] at t=0 but leaves at t=1; the settle is at t=2.
  EXPECT_DOUBLE_EQ(SettlingTime(series, 0.0, 90.0, 110.0), 2.0);
}

TEST(SettlingTimeTest, NeverSettlesIsNegative) {
  Series series = {{0.0, 1.0}, {1.0, 2.0}};
  EXPECT_LT(SettlingTime(series, 0.0, 90.0, 110.0), 0.0);
  EXPECT_LT(SettlingTime({}, 0.0, 0.0, 1.0), 0.0);
}

TEST(TableTest, AlignsColumnsAndPadsRows) {
  Table table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer-name"});  // short row padded with an empty cell
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header separator line present, sized to the widest row.
  EXPECT_NE(out.find("-----"), std::string::npos);
  const size_t header_width = out.find('\n');
  ASSERT_NE(header_width, std::string::npos);
  const size_t separator_start = header_width + 1;
  const size_t separator_end = out.find('\n', separator_start);
  EXPECT_GE(separator_end - separator_start, std::string("longer-name  value").size());
}

TEST(RunTrialsTest, SeedsAreDeterministicAndDistinct) {
  const auto results = RunTrials<uint64_t>(5, [](uint64_t seed) { return seed * 10; });
  ASSERT_EQ(results.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(results[i], static_cast<uint64_t>((i + 1) * 10));
  }
}

TEST(SamplerTest, SamplesAtPeriodRelativeToEpoch) {
  Simulation sim;
  double value = 1.0;
  Sampler sampler(&sim, kSecond, 10 * kSecond, [&] { return value; });
  sim.ScheduleAt(10 * kSecond, [&] { sampler.Run(15 * kSecond); });
  sim.ScheduleAt(12 * kSecond + 1, [&] { value = 2.0; });
  sim.RunUntil(20 * kSecond);
  const Series& series = sampler.series();
  ASSERT_EQ(series.size(), 6u);  // t = 0..5 s relative to the epoch
  EXPECT_DOUBLE_EQ(series[0].t_seconds, 0.0);
  EXPECT_DOUBLE_EQ(series[5].t_seconds, 5.0);
  EXPECT_DOUBLE_EQ(series[2].value, 1.0);
  EXPECT_DOUBLE_EQ(series[3].value, 2.0);
}

TEST(MergeSeriesTest, MeanMinMaxAcrossTrials) {
  std::vector<Series> trials = {
      {{0.0, 1.0}, {1.0, 10.0}},
      {{0.0, 3.0}, {1.0, 20.0}},
      {{0.0, 5.0}, {1.0, 30.0}},
  };
  const SeriesBand band = MergeSeries(trials);
  ASSERT_EQ(band.t_seconds.size(), 2u);
  EXPECT_DOUBLE_EQ(band.mean[0], 3.0);
  EXPECT_DOUBLE_EQ(band.min[0], 1.0);
  EXPECT_DOUBLE_EQ(band.max[0], 5.0);
  EXPECT_DOUBLE_EQ(band.mean[1], 20.0);
}

TEST(MergeSeriesTest, TruncatesToShortestTrial) {
  std::vector<Series> trials = {
      {{0.0, 1.0}, {1.0, 2.0}, {2.0, 3.0}},
      {{0.0, 1.0}},
  };
  const SeriesBand band = MergeSeries(trials);
  EXPECT_EQ(band.t_seconds.size(), 1u);
  EXPECT_TRUE(MergeSeries({}).t_seconds.empty());
}

}  // namespace
}  // namespace odyssey

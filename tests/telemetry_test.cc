// Tests for the telemetry data type: sampling rate and timeliness as
// fidelity dimensions (§2.2) and the background information filter (§2.3).

#include <gtest/gtest.h>

#include "src/apps/filter_app.h"
#include "src/apps/video_player.h"
#include "src/core/tsop_codec.h"
#include "src/metrics/experiment.h"
#include "src/servers/telemetry_server.h"
#include "src/wardens/telemetry_warden.h"

namespace odyssey {
namespace {

constexpr double kKb = 1024.0;

// --- Server ---

TEST(TelemetryServerTest, FeedsProduceAtNativeRate) {
  Simulation sim(1);
  TelemetryServer server(&sim);
  server.CreateFeed("f", 100 * kMillisecond, 50.0, 0.5);
  sim.RunUntil(10 * kSecond);
  std::vector<TelemetrySample> samples;
  ASSERT_TRUE(server.Latest("f", 1000, &samples).ok());
  // One initial sample plus one per period.
  EXPECT_NEAR(static_cast<double>(samples.size()), 101.0, 2.0);
  // Newest last, timestamps non-decreasing.
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].produced_at, samples[i - 1].produced_at);
  }
}

TEST(TelemetryServerTest, InjectedEventShowsInNextSample) {
  Simulation sim(2);
  TelemetryServer server(&sim);
  server.CreateFeed("f", 100 * kMillisecond, 0.0, 0.0);  // no noise
  sim.RunUntil(kSecond);
  ASSERT_TRUE(server.InjectEvent("f", 42.0).ok());
  sim.RunUntil(2 * kSecond);
  std::vector<TelemetrySample> samples;
  ASSERT_TRUE(server.Latest("f", 1, &samples).ok());
  EXPECT_NEAR(samples.back().value, 42.0, 1e-9);
}

TEST(TelemetryServerTest, ErrorsOnUnknownFeed) {
  Simulation sim(3);
  TelemetryServer server(&sim);
  std::vector<TelemetrySample> samples;
  EXPECT_EQ(server.Latest("nope", 1, &samples).code(), StatusCode::kNotFound);
  EXPECT_EQ(server.InjectEvent("nope", 1.0).code(), StatusCode::kNotFound);
  Duration period = 0;
  EXPECT_EQ(server.NativePeriod("nope", &period).code(), StatusCode::kNotFound);
  server.CreateFeed("f", kSecond, 0.0, 0.0);
  EXPECT_EQ(server.Latest("f", 0, &samples).code(), StatusCode::kInvalidArgument);
}

// --- Warden ---

class TelemetryWardenTest : public ::testing::Test {
 protected:
  TelemetryWardenTest() : rig_(1, StrategyKind::kOdyssey), server_(&rig_.sim()) {
    server_.CreateFeed("stocks/ACME", 100 * kMillisecond, 100.0, 0.2);
    warden_ = static_cast<TelemetryWarden*>(
        rig_.client().InstallWarden(std::make_unique<TelemetryWarden>(&server_)));
    app_ = rig_.client().RegisterApplication("monitor");
    rig_.Replay(MakeConstant(kHighBandwidth, 30 * kMinute), /*prime=*/false);
  }

  std::string Path() { return std::string(kOdysseyRoot) + "telemetry/stocks/ACME"; }

  void Subscribe(int fixed_level) {
    rig_.client().Tsop(app_, Path(), kTelemetrySubscribe,
                       PackStruct(TelemetrySubscribeRequest{fixed_level}),
                       [](Status, std::string) {});
  }

  TelemetryStats Stats() {
    TelemetryStats stats;
    rig_.client().Tsop(app_, Path(), kTelemetryStats, "",
                       [&](Status, std::string out) { EXPECT_TRUE(UnpackStruct(out, &stats)); });
    return stats;
  }

  ExperimentRig rig_;
  TelemetryServer server_;
  TelemetryWarden* warden_ = nullptr;
  AppId app_ = 0;
};

TEST_F(TelemetryWardenTest, LiveLevelDeliversEverySample) {
  Subscribe(0);
  rig_.sim().RunUntil(20 * kSecond);
  const TelemetryStats stats = Stats();
  // Close to the native 10 samples/second for ~20 s (the poll pipeline
  // serializes fetches, so delivery runs slightly under the native rate).
  EXPECT_GT(stats.samples_delivered, 120);
  EXPECT_LT(stats.mean_staleness_ms, 300.0);
}

TEST_F(TelemetryWardenTest, DigestLevelThinsAndBatches) {
  Subscribe(2);
  rig_.sim().RunUntil(20 * kSecond);
  const TelemetryStats stats = Stats();
  // One of 16 native samples, delivered in batches of 4: far fewer
  // deliveries, far higher staleness.
  EXPECT_LT(stats.samples_delivered, 20);
  EXPECT_GT(stats.mean_staleness_ms, 1000.0);
  EXPECT_LT(stats.polls, 10);
}

TEST_F(TelemetryWardenTest, SampleCallbackReceivesData) {
  int seen = 0;
  warden_->SetSampleCallback(app_, [&](const std::string& feed, const TelemetrySample&) {
    EXPECT_EQ(feed, "stocks/ACME");
    ++seen;
  });
  Subscribe(0);
  rig_.sim().RunUntil(5 * kSecond);
  EXPECT_GT(seen, 20);
}

TEST_F(TelemetryWardenTest, SamplesAreMonotoneAndUnique) {
  Time last = -1;
  warden_->SetSampleCallback(app_, [&](const std::string&, const TelemetrySample& sample) {
    EXPECT_GT(sample.produced_at, last);
    last = sample.produced_at;
  });
  Subscribe(0);
  rig_.sim().RunUntil(10 * kSecond);
}

TEST_F(TelemetryWardenTest, AdaptiveLevelFollowsBandwidth) {
  EXPECT_EQ(TelemetryWarden::AdaptiveLevel(kHighBandwidth), 0);
  EXPECT_EQ(TelemetryWarden::AdaptiveLevel(10.0 * kKb), 1);
  EXPECT_EQ(TelemetryWarden::AdaptiveLevel(1.0 * kKb), 2);
}

TEST_F(TelemetryWardenTest, UnsubscribeStopsDeliveries) {
  Subscribe(0);
  rig_.sim().RunUntil(5 * kSecond);
  TelemetryStats final_stats;
  rig_.client().Tsop(app_, Path(), kTelemetryUnsubscribe, "",
                     [&](Status, std::string out) { EXPECT_TRUE(UnpackStruct(out, &final_stats)); });
  const int at_stop = final_stats.samples_delivered;
  rig_.sim().RunUntil(15 * kSecond);
  // No subscription -> stats are frozen (a fresh query still sees them).
  EXPECT_EQ(Stats().samples_delivered, at_stop);
}

TEST_F(TelemetryWardenTest, BadRequestsRejected) {
  Status status;
  rig_.client().Tsop(app_, std::string(kOdysseyRoot) + "telemetry/no/such/feed",
                     kTelemetrySubscribe, PackStruct(TelemetrySubscribeRequest{0}),
                     [&](Status s, std::string) { status = s; });
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  rig_.client().Tsop(app_, Path(), kTelemetrySetLevel, PackStruct(TelemetrySetLevelRequest{7}),
                     [&](Status s, std::string) { status = s; });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  rig_.client().Tsop(app_, Path(), kTelemetryStats, "",
                     [&](Status s, std::string) { status = s; });
  EXPECT_EQ(status.code(), StatusCode::kNotFound);  // never subscribed
}

// --- The background filter application ---

class FilterAppTest : public ::testing::Test {
 protected:
  FilterAppTest() : rig_(1, StrategyKind::kOdyssey), server_(&rig_.sim()) {
    server_.CreateFeed("stocks/ACME", 100 * kMillisecond, 100.0, 0.05);
    warden_ = static_cast<TelemetryWarden*>(
        rig_.client().InstallWarden(std::make_unique<TelemetryWarden>(&server_)));
  }

  ExperimentRig rig_;
  TelemetryServer server_;
  TelemetryWarden* warden_ = nullptr;
};

TEST_F(FilterAppTest, AlertsOnInjectedEvent) {
  FilterApp filter(&rig_.client(), warden_, FilterAppOptions{"stocks/ACME", 5.0, 0});
  rig_.Replay(MakeConstant(kHighBandwidth, 10 * kMinute), /*prime=*/false);
  filter.Start();
  rig_.sim().RunUntil(10 * kSecond);
  EXPECT_TRUE(filter.alerts().empty());  // quiet market, no alerts
  ASSERT_TRUE(server_.InjectEvent("stocks/ACME", 25.0).ok());
  rig_.sim().RunUntil(15 * kSecond);
  ASSERT_EQ(filter.alerts().size(), 1u);
  // At the live level, detection lags production by well under a second.
  EXPECT_LT(filter.alerts()[0].detection_lag(), kSecond);
}

TEST_F(FilterAppTest, DigestLevelDetectsLater) {
  FilterApp live(&rig_.client(), warden_, FilterAppOptions{"stocks/ACME", 5.0, 0});
  rig_.Replay(MakeConstant(kHighBandwidth, 10 * kMinute), /*prime=*/false);
  live.Start();
  rig_.sim().RunUntil(10 * kSecond);
  ASSERT_TRUE(server_.InjectEvent("stocks/ACME", 25.0).ok());
  rig_.sim().RunUntil(30 * kSecond);
  ASSERT_FALSE(live.alerts().empty());
  const Duration live_lag = live.alerts()[0].detection_lag();

  // Same scenario at the digest level, in a fresh world.
  ExperimentRig rig2(1, StrategyKind::kOdyssey);
  TelemetryServer server2(&rig2.sim());
  server2.CreateFeed("stocks/ACME", 100 * kMillisecond, 100.0, 0.05);
  auto* warden2 = static_cast<TelemetryWarden*>(
      rig2.client().InstallWarden(std::make_unique<TelemetryWarden>(&server2)));
  FilterApp digest(&rig2.client(), warden2, FilterAppOptions{"stocks/ACME", 5.0, 2});
  rig2.Replay(MakeConstant(kHighBandwidth, 10 * kMinute), /*prime=*/false);
  digest.Start();
  rig2.sim().RunUntil(10 * kSecond);
  ASSERT_TRUE(server2.InjectEvent("stocks/ACME", 25.0).ok());
  rig2.sim().RunUntil(40 * kSecond);
  ASSERT_FALSE(digest.alerts().empty());
  EXPECT_GT(digest.alerts()[0].detection_lag(), 2 * live_lag);
}

TEST_F(FilterAppTest, StopFreezesStats) {
  FilterApp filter(&rig_.client(), warden_, FilterAppOptions{"stocks/ACME", 5.0, 0});
  rig_.Replay(MakeConstant(kHighBandwidth, 10 * kMinute), /*prime=*/false);
  filter.Start();
  rig_.sim().RunUntil(5 * kSecond);
  filter.Stop();
  EXPECT_GT(filter.final_stats().samples_delivered, 0);
  const int seen = filter.samples_seen();
  rig_.sim().RunUntil(15 * kSecond);
  EXPECT_EQ(filter.samples_seen(), seen);
}

TEST_F(FilterAppTest, BackgroundFilterCoexistsWithForegroundVideo) {
  // §2.3's point: the background monitor and a foreground application run
  // concurrently under centralized management without starving each other.
  FilterApp filter(&rig_.client(), warden_, FilterAppOptions{"stocks/ACME", 5.0, -1});
  VideoPlayerOptions video_options;
  video_options.frames_to_play = 500;
  VideoPlayer video(&rig_.client(), video_options);
  rig_.Replay(MakeConstant(kHighBandwidth, 10 * kMinute), /*prime=*/false);
  filter.Start();
  video.Start();
  rig_.sim().RunUntil(kMinute);
  ASSERT_TRUE(server_.InjectEvent("stocks/ACME", 25.0).ok());
  rig_.sim().RunUntil(2 * kMinute);
  // The video played nearly drop-free and the filter still caught the event.
  EXPECT_LE(video.DropsBetween(0, kMinute), 45);
  EXPECT_FALSE(filter.alerts().empty());
}

}  // namespace
}  // namespace odyssey

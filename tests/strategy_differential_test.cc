// Differential tests pinning the congestion manager's hierarchical
// allocation to the per-connection reference.
//
// The congestion manager changes arbitration only where the hierarchy is
// non-trivial: two or more flows sharing one server.  On scenarios where
// every server carries exactly one flow, its server budget is a single
// per-connection availability and the equal split divides by one, so it
// must be *bit-identical* to the seed centralized strategy — every
// delivered upcall, every sampled supply and availability double, every
// delivered byte (scale_differential_test.cc's standard of proof, applied
// across the strategy boundary instead of the supply-model one).
//
// Single-flow-per-server scenarios are built two ways: fixed workloads from
// the conformance kit, and fuzzer-generated scenarios rewritten so each app
// takes a distinct warden — every warden opens one connection to its own
// service, so distinct wardens mean distinct servers with one flow each.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/check/fuzz_runner.h"
#include "src/check/fuzz_scenario.h"
#include "src/harness/campaign.h"
#include "tests/strategy_conformance.h"

namespace odyssey {
namespace {

// Runs |scenario| once per strategy and requires bit-identical logs.
void ExpectIdenticalRuns(FuzzScenario scenario) {
  scenario.strategy = "odyssey";
  DifferentialLog reference;
  FuzzRunOptions options;
  options.differential = &reference;
  const FuzzRunResult reference_result = RunFuzzScenario(scenario, options);

  scenario.strategy = "congestion-manager";
  DifferentialLog hierarchical;
  options.differential = &hierarchical;
  const FuzzRunResult hierarchical_result = RunFuzzScenario(scenario, options);

  EXPECT_EQ(reference_result.violation_count, 0u);
  EXPECT_EQ(hierarchical_result.violation_count, 0u);
  ASSERT_EQ(hierarchical.upcalls.size(), reference.upcalls.size()) << scenario.Describe();
  for (size_t i = 0; i < reference.upcalls.size(); ++i) {
    EXPECT_EQ(hierarchical.upcalls[i], reference.upcalls[i])
        << "upcall " << i << " diverged\n"
        << scenario.Describe();
  }
  ASSERT_EQ(hierarchical.samples.size(), reference.samples.size()) << scenario.Describe();
  for (size_t i = 0; i < reference.samples.size(); ++i) {
    // Exact floating-point equality: a 1-leaf hierarchy sums one term and
    // divides by one, both of which are exact.
    EXPECT_EQ(hierarchical.samples[i], reference.samples[i])
        << "sample " << i << " diverged\n"
        << scenario.Describe();
  }
  EXPECT_EQ(hierarchical_result.bytes_delivered, reference_result.bytes_delivered);
  EXPECT_EQ(hierarchical_result.upcalls_delivered, reference_result.upcalls_delivered);
  EXPECT_EQ(hierarchical_result.requests_granted, reference_result.requests_granted);
}

// Rewrites |scenario| so every app takes a distinct warden (and therefore a
// distinct server); apps beyond the six warden kinds are dropped.
FuzzScenario SingleFlowPerServer(FuzzScenario scenario) {
  if (scenario.apps.size() > static_cast<size_t>(kFuzzWardenKinds)) {
    scenario.apps.resize(kFuzzWardenKinds);
  }
  for (size_t i = 0; i < scenario.apps.size(); ++i) {
    scenario.apps[i].warden = static_cast<FuzzWardenKind>(i);
  }
  return scenario;
}

TEST(StrategyDifferentialTest, FixedWorkloadsBitIdentical) {
  ExpectIdenticalRuns(SingleFlowPerServer(conformance::ConformanceWorkload("")));
  ExpectIdenticalRuns(conformance::DegenerateWorkload(""));
}

TEST(StrategyDifferentialTest, FuzzedSingleFlowScenariosBitIdentical) {
  constexpr int kRuns = 60;
  constexpr uint64_t kSweepSeed = 0x0dfaceb0c1997ULL;
  for (int i = 0; i < kRuns; ++i) {
    const uint64_t seed = DeriveTrialSeed(kSweepSeed, static_cast<uint64_t>(i));
    ExpectIdenticalRuns(SingleFlowPerServer(GenerateScenario(seed)));
  }
}

TEST(StrategyDifferentialTest, SharedServerScenariosDiverge) {
  // Control: with several flows on one server the hierarchy is real, and
  // the two strategies must NOT be byte-for-byte the same arbiter.  Two
  // bitstream apps share the "bitstream" service, so the congestion
  // manager pools their estimates where the reference keeps them separate.
  FuzzScenario scenario = conformance::ConformanceWorkload("");
  for (FuzzApp& app : scenario.apps) {
    app.warden = FuzzWardenKind::kBitstream;
  }

  scenario.strategy = "odyssey";
  DifferentialLog reference;
  FuzzRunOptions options;
  options.differential = &reference;
  RunFuzzScenario(scenario, options);

  scenario.strategy = "congestion-manager";
  DifferentialLog hierarchical;
  options.differential = &hierarchical;
  RunFuzzScenario(scenario, options);

  EXPECT_NE(hierarchical.samples, reference.samples);
}

}  // namespace
}  // namespace odyssey

// Unit tests for the odytrace subsystem: the ring-buffer recorder, the
// recording macros (enabled and null-recorder paths), the chrome-trace
// exporter round-tripped through the bundled JSON parser, and the
// canonicalizer / differ / validator.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/trace/chrome_trace_exporter.h"
#include "src/trace/trace_diff.h"
#include "src/trace/trace_json.h"
#include "src/trace/trace_macros.h"
#include "src/trace/trace_recorder.h"
#include "src/trace/trace_session.h"

namespace odyssey {
namespace {

TraceEvent MakeInstant(Time ts, const char* name, uint64_t id = 0) {
  TraceEvent event;
  event.ts = ts;
  event.category = TraceCategory::kSim;
  event.phase = TracePhase::kInstant;
  event.name = name;
  event.id = id;
  return event;
}

TEST(TraceRecorderTest, RecordsInOrderBelowCapacity) {
  TraceRecorder recorder(8);
  for (int i = 0; i < 5; ++i) {
    recorder.Record(MakeInstant(i * 10, "tick", static_cast<uint64_t>(i)));
  }
  EXPECT_EQ(recorder.size(), 5u);
  EXPECT_EQ(recorder.capacity(), 8u);
  EXPECT_EQ(recorder.recorded_count(), 5u);
  EXPECT_EQ(recorder.dropped_count(), 0u);
  const std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts, static_cast<Time>(i) * 10);
    EXPECT_EQ(events[i].id, i);
  }
}

TEST(TraceRecorderTest, DropNewestKeepsStablePrefix) {
  TraceRecorder recorder(4, TraceRecorder::OverflowPolicy::kDropNewest);
  for (int i = 0; i < 10; ++i) {
    recorder.Record(MakeInstant(i, "tick", static_cast<uint64_t>(i)));
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.recorded_count(), 10u);
  EXPECT_EQ(recorder.dropped_count(), 6u);
  const std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The first four events survive — the prefix is stable under overflow.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, i);
  }
}

TEST(TraceRecorderTest, OverwriteOldestWrapsAround) {
  TraceRecorder recorder(4, TraceRecorder::OverflowPolicy::kOverwriteOldest);
  for (int i = 0; i < 10; ++i) {
    recorder.Record(MakeInstant(i, "tick", static_cast<uint64_t>(i)));
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.recorded_count(), 10u);
  EXPECT_EQ(recorder.dropped_count(), 6u);
  const std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The most recent window survives, unwrapped into chronological order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, 6 + i);
    EXPECT_EQ(events[i].ts, static_cast<Time>(6 + i));
  }
}

TEST(TraceRecorderTest, CategoryCountsAndClear) {
  TraceRecorder recorder(16);
  TraceEvent event = MakeInstant(1, "a");
  event.category = TraceCategory::kRpc;
  recorder.Record(event);
  recorder.Record(event);
  event.category = TraceCategory::kFault;
  recorder.Record(event);
  EXPECT_EQ(recorder.category_counts()[static_cast<int>(TraceCategory::kRpc)], 2u);
  EXPECT_EQ(recorder.category_counts()[static_cast<int>(TraceCategory::kFault)], 1u);

  const uint64_t span_before = recorder.NextSpanId();
  recorder.Clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.recorded_count(), 0u);
  EXPECT_EQ(recorder.category_counts()[static_cast<int>(TraceCategory::kRpc)], 0u);
  // Span ids keep increasing across Clear so correlation ids stay unique.
  EXPECT_GT(recorder.NextSpanId(), span_before);
}

TEST(TraceMacrosTest, NullRecorderIsANoOp) {
  TraceRecorder* recorder = nullptr;
  int evaluations = 0;
  const auto count = [&evaluations] { return ++evaluations; };
  // None of these may crash; the argument expressions are still evaluated
  // (the macros promise single evaluation, not zero evaluation).
  ODY_TRACE_INSTANT(recorder, kSim, "noop", 0, 0);
  ODY_TRACE_INSTANT1(recorder, kSim, "noop", 0, 0, "v", count());
  ODY_TRACE_COUNTER(recorder, kSim, "noop", 0, 0, count());
  ODY_TRACE_BEGIN(recorder, kSim, "noop", 0, 1);
  ODY_TRACE_END(recorder, kSim, "noop", 0, 1);
  EXPECT_EQ(ODY_TRACE_SPAN_ID(recorder), 0u);
  EXPECT_LE(evaluations, 2);
}

TEST(TraceMacrosTest, RecordsThroughMacros) {
  TraceRecorder recorder(16);
  const uint64_t span = ODY_TRACE_SPAN_ID(&recorder);
  EXPECT_EQ(span, 1u);
  ODY_TRACE_BEGIN1(&recorder, kRpc, "call", 100, span, "bytes", 42);
  ODY_TRACE_END1(&recorder, kRpc, "call", 250, span, "rtt_us", 150);
  ODY_TRACE_COUNTER(&recorder, kViceroy, "queue_depth", 300, 7, 3);
  ODY_TRACE_INSTANT2(&recorder, kApp, "adapt", 400, 9, "level", 1.5, "window", 2.0);

  const std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].phase, TracePhase::kSpanBegin);
  EXPECT_STREQ(events[0].name, "call");
  EXPECT_EQ(events[0].id, span);
  EXPECT_DOUBLE_EQ(events[0].arg0, 42.0);
  EXPECT_EQ(events[1].phase, TracePhase::kSpanEnd);
  EXPECT_EQ(events[2].phase, TracePhase::kCounter);
  EXPECT_STREQ(events[2].arg0_name, "value");
  EXPECT_DOUBLE_EQ(events[2].arg0, 3.0);
  EXPECT_EQ(events[3].phase, TracePhase::kInstant);
  EXPECT_STREQ(events[3].arg1_name, "window");
  EXPECT_DOUBLE_EQ(events[3].arg1, 2.0);
}

TEST(JsonTest, ParsesWhatTheExporterEmits) {
  std::string error;
  const JsonValue value = ParseJson(
      R"({"a": [1, -2.5, "x\n\"y\""], "b": {"t": true, "n": null}, "u": "é"})", &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_TRUE(value.is_object());
  const JsonValue* a = value.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array_items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->array_items()[1].number_value(), -2.5);
  EXPECT_EQ(a->array_items()[2].string_value(), "x\n\"y\"");
  EXPECT_EQ(value.Find("u")->string_value(), "\xc3\xa9");
  EXPECT_TRUE(value.Find("b")->Find("n")->is_null());
}

TEST(JsonTest, RejectsMalformedInput) {
  std::string error;
  ParseJson("{\"a\": ", &error);
  EXPECT_FALSE(error.empty());
  ParseJson("[1, 2,]", &error);
  EXPECT_FALSE(error.empty());
}

TEST(ChromeTraceExporterTest, ExportParsesBackAndValidates) {
  TraceRecorder recorder(64);
  const uint64_t span = recorder.NextSpanId();
  ODY_TRACE_BEGIN1(&recorder, kRpc, "call", 10, span, "bytes", 100);
  ODY_TRACE_END1(&recorder, kRpc, "call", 20, span, "rtt_us", 10);
  ODY_TRACE_INSTANT(&recorder, kFault, "message_drop", 15, 3);
  ODY_TRACE_COUNTER(&recorder, kEstimator, "supply_bps", 25, 0, 81920);

  const std::string json = ChromeTraceExporter::ToJson(recorder);
  std::string error;
  const JsonValue root = ParseJson(json, &error);
  ASSERT_TRUE(error.empty()) << error;
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  const TraceValidationResult validation = ValidateChromeTrace(json);
  EXPECT_TRUE(validation.ok) << validation.error;
  EXPECT_EQ(validation.event_count, 4u);
  const std::vector<std::string> expected = {"estimator", "fault", "rpc"};
  EXPECT_EQ(validation.categories, expected);
}

TEST(ChromeTraceExporterTest, ReportsDroppedEventsInMetadata) {
  TraceRecorder recorder(2);
  for (int i = 0; i < 5; ++i) {
    recorder.Record(MakeInstant(i, "tick"));
  }
  const std::string json = ChromeTraceExporter::ToJson(recorder);
  std::string error;
  const JsonValue root = ParseJson(json, &error);
  ASSERT_TRUE(error.empty()) << error;
  const JsonValue* other = root.Find("otherData");
  ASSERT_NE(other, nullptr);
  const JsonValue* dropped = other->Find("dropped_events");
  ASSERT_NE(dropped, nullptr);
  // otherData values are strings in the chrome-trace format.
  EXPECT_EQ(dropped->string_value(), "3");
}

TEST(TraceDiffTest, IdenticalTracesCompareEqual) {
  TraceRecorder recorder(64);
  ODY_TRACE_INSTANT(&recorder, kNet, "link_transition", 5, 1);
  ODY_TRACE_COUNTER(&recorder, kEstimator, "rtt_us", 7, 2, 120);
  const std::string json = ChromeTraceExporter::ToJson(recorder);

  std::string error;
  const std::vector<std::string> canon = CanonicalizeChromeTrace(json, &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(canon.size(), 2u);
  const TraceDiffResult diff = DiffCanonical(canon, canon);
  EXPECT_TRUE(diff.identical);
}

TEST(TraceDiffTest, CanonicalizationRenumbersIds) {
  // Two recorders with the same event structure but different raw span ids
  // (as happens when process-global counters differ between runs) must
  // canonicalize identically.
  const auto record = [](TraceRecorder* recorder, uint64_t base) {
    ODY_TRACE_BEGIN(recorder, kRpc, "call", 10, base + 1);
    ODY_TRACE_BEGIN(recorder, kRpc, "call", 12, base + 2);
    ODY_TRACE_END(recorder, kRpc, "call", 20, base + 1);
    ODY_TRACE_END(recorder, kRpc, "call", 22, base + 2);
  };
  TraceRecorder a(16);
  TraceRecorder b(16);
  record(&a, 100);
  record(&b, 900);
  std::string error;
  const std::vector<std::string> canon_a =
      CanonicalizeChromeTrace(ChromeTraceExporter::ToJson(a), &error);
  ASSERT_TRUE(error.empty()) << error;
  const std::vector<std::string> canon_b =
      CanonicalizeChromeTrace(ChromeTraceExporter::ToJson(b), &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(canon_a, canon_b);
  EXPECT_TRUE(DiffCanonical(canon_a, canon_b).identical);
}

TEST(TraceDiffTest, ReportsFirstDivergentField) {
  TraceRecorder a(16);
  TraceRecorder b(16);
  ODY_TRACE_COUNTER(&a, kViceroy, "queue_depth", 50, 1, 3);
  ODY_TRACE_COUNTER(&b, kViceroy, "queue_depth", 50, 1, 4);
  std::string error;
  const std::vector<std::string> canon_a =
      CanonicalizeChromeTrace(ChromeTraceExporter::ToJson(a), &error);
  const std::vector<std::string> canon_b =
      CanonicalizeChromeTrace(ChromeTraceExporter::ToJson(b), &error);
  const TraceDiffResult diff = DiffCanonical(canon_a, canon_b);
  ASSERT_FALSE(diff.identical);
  EXPECT_EQ(diff.index, 0u);
  EXPECT_EQ(diff.ts_a, 50);
  EXPECT_EQ(diff.field, "arg.value");
  EXPECT_NE(diff.value_a, diff.value_b);
  EXPECT_NE(diff.Format().find("divergence"), std::string::npos);
}

TEST(TraceDiffTest, ReportsMissingEvent) {
  TraceRecorder a(16);
  TraceRecorder b(16);
  ODY_TRACE_INSTANT(&a, kSim, "tick", 1, 0);
  ODY_TRACE_INSTANT(&b, kSim, "tick", 1, 0);
  ODY_TRACE_INSTANT(&b, kSim, "tock", 2, 0);
  std::string error;
  const std::vector<std::string> canon_a =
      CanonicalizeChromeTrace(ChromeTraceExporter::ToJson(a), &error);
  const std::vector<std::string> canon_b =
      CanonicalizeChromeTrace(ChromeTraceExporter::ToJson(b), &error);
  const TraceDiffResult diff = DiffCanonical(canon_a, canon_b);
  ASSERT_FALSE(diff.identical);
  EXPECT_EQ(diff.index, 1u);
  EXPECT_EQ(diff.field, "missing_event");
  EXPECT_EQ(diff.value_a, "<absent>");
}

TEST(TraceValidationTest, RejectsBadSchemas) {
  EXPECT_FALSE(ValidateChromeTrace("not json").ok);
  EXPECT_FALSE(ValidateChromeTrace("{}").ok);
  EXPECT_FALSE(ValidateChromeTrace(R"({"traceEvents": [{"ph": "Z"}]})").ok);
  EXPECT_FALSE(ValidateChromeTrace(
                   R"({"traceEvents": [{"ph": "i", "ts": 1, "name": "x", "cat": "nope"}]})")
                   .ok);
  EXPECT_FALSE(
      ValidateChromeTrace(R"({"traceEvents": [{"ph": "b", "ts": 1, "name": "x", "cat": "rpc"}]})")
          .ok);
  EXPECT_TRUE(ValidateChromeTrace(R"({"traceEvents": []})").ok);
}

TEST(TraceSessionTest, FromArgsConsumesFlagAndEnables) {
  std::string arg0 = "bench";
  std::string arg1 = "--trace-out=/tmp/out.json";
  std::string arg2 = "--other";
  char* argv[] = {arg0.data(), arg1.data(), arg2.data(), nullptr};
  int argc = 3;
  TraceSession session = TraceSession::FromArgs(&argc, argv);
  EXPECT_TRUE(session.enabled());
  EXPECT_NE(session.recorder(), nullptr);
  EXPECT_EQ(session.path(), "/tmp/out.json");
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "--other");
}

TEST(TraceSessionTest, AbsentFlagMeansDisabled) {
  std::string arg0 = "bench";
  char* argv[] = {arg0.data(), nullptr};
  int argc = 1;
  TraceSession session = TraceSession::FromArgs(&argc, argv);
  EXPECT_FALSE(session.enabled());
  EXPECT_EQ(session.recorder(), nullptr);
  std::string error;
  EXPECT_TRUE(session.Export(&error));  // disabled export is a no-op success
  EXPECT_TRUE(error.empty());
}

}  // namespace
}  // namespace odyssey

// Property-based tests: invariants that must hold across swept parameter
// spaces, exercised with parameterized gtest suites.

#include <algorithm>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/bitstream_app.h"
#include "src/apps/video_player.h"
#include "src/core/upcall.h"
#include "src/estimator/supply_model.h"
#include "src/metrics/experiment.h"
#include "src/net/fault_injector.h"
#include "src/net/link.h"
#include "src/rpc/endpoint.h"
#include "src/sim/simulation.h"

namespace odyssey {
namespace {

constexpr double kKb = 1024.0;

// --- Link conservation: delivered bytes never exceed capacity * time ---

class LinkConservation : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(LinkConservation, DeliveredBytesBoundedByCapacity) {
  const double capacity = std::get<0>(GetParam());
  const int flows = std::get<1>(GetParam());
  Simulation sim(7);
  Link link(&sim, capacity, 0);
  int completed = 0;
  for (int i = 0; i < flows; ++i) {
    link.StartFlow(37.0 * kKb + i * 11.0, [&] { ++completed; });
  }
  sim.RunUntil(10 * kSecond);
  const double max_deliverable = capacity * 10.0 + 1.0;
  EXPECT_LE(link.bytes_delivered(), max_deliverable);
  // And everything that could complete, did.
  double total_offered = 0.0;
  for (int i = 0; i < flows; ++i) {
    total_offered += 37.0 * kKb + i * 11.0;
  }
  if (total_offered <= capacity * 10.0) {
    EXPECT_EQ(completed, flows);
    EXPECT_NEAR(link.bytes_delivered(), total_offered, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LinkConservation,
    ::testing::Combine(::testing::Values(10.0 * kKb, 40.0 * kKb, 120.0 * kKb, 1000.0 * kKb),
                       ::testing::Values(1, 3, 8, 20)));

// --- Processor sharing is fair: equal flows finish together ---

class LinkFairness : public ::testing::TestWithParam<int> {};

TEST_P(LinkFairness, EqualFlowsFinishTogether) {
  const int flows = GetParam();
  Simulation sim;
  Link link(&sim, 100.0 * kKb, 0);
  std::vector<Time> done(flows, -1);
  for (int i = 0; i < flows; ++i) {
    link.StartFlow(20.0 * kKb, [&done, i, &sim] { done[i] = sim.now(); });
  }
  sim.Run();
  for (int i = 1; i < flows; ++i) {
    EXPECT_EQ(done[i], done[0]);
  }
  // n equal flows at C/n each: total time = n * bytes / C.
  EXPECT_NEAR(DurationToSeconds(done[0]), flows * 20.0 / 100.0, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LinkFairness, ::testing::Values(2, 3, 5, 9, 16));

// --- RPC timing: a fetch takes at least the ideal transfer time ---

class RpcTiming : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RpcTiming, FetchTimeBoundedBelowByIdeal) {
  const double capacity = std::get<0>(GetParam());
  const double bytes = std::get<1>(GetParam());
  Simulation sim;
  Link link(&sim, capacity, 10500);
  Endpoint endpoint(&sim, &link, "server");
  Time done_at = -1;
  endpoint.Fetch(bytes, 0, [&] { done_at = sim.now(); });
  sim.Run();
  ASSERT_GE(done_at, 0);
  const double ideal_seconds = bytes / capacity;
  EXPECT_GE(DurationToSeconds(done_at), ideal_seconds);
  // ...and overhead is bounded: request round trips per window plus slack.
  const double windows = std::max(1.0, bytes / kDefaultWindowBytes) + 1.0;
  EXPECT_LE(DurationToSeconds(done_at), ideal_seconds + windows * 0.1 + 0.1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RpcTiming,
    ::testing::Combine(::testing::Values(20.0 * kKb, 40.0 * kKb, 120.0 * kKb, 500.0 * kKb),
                       ::testing::Values(1.0 * kKb, 30.0 * kKb, 64.0 * kKb, 300.0 * kKb)));

// --- Estimator: supply estimate converges for any constant link rate ---

class EstimatorConvergence : public ::testing::TestWithParam<double> {};

TEST_P(EstimatorConvergence, BitstreamDrivesEstimateToLinkRate) {
  const double rate = GetParam();
  ExperimentRig rig(3, StrategyKind::kOdyssey);
  BitstreamApp app(&rig.client(), "bitstream");
  rig.Replay(MakeConstant(rate, 2 * kMinute), /*prime=*/false);
  app.Start();
  rig.sim().RunUntil(kMinute);
  EXPECT_NEAR(rig.centralized()->TotalSupply(rig.sim().now()), rate, 0.12 * rate)
      << "rate " << rate;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EstimatorConvergence,
                         ::testing::Values(20.0 * kKb, 40.0 * kKb, 80.0 * kKb, 120.0 * kKb,
                                           240.0 * kKb, 1000.0 * kKb));

// --- Availability invariants over random usage patterns ---

class AvailabilityInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AvailabilityInvariants, SharesRespectFloorAndCeiling) {
  Rng rng(GetParam());
  SupplyModel model;
  constexpr int kConnections = 4;
  for (ConnectionId c = 1; c <= kConnections; ++c) {
    model.AddConnection(c);
  }
  // Random interleaved observations.
  Time now = 0;
  for (int i = 0; i < 200; ++i) {
    now += static_cast<Duration>(rng.Uniform(50, 400)) * kMillisecond;
    const ConnectionId c = 1 + rng.UniformInt(kConnections);
    const double bytes = rng.Uniform(4.0, 64.0) * kKb;
    const Duration elapsed =
        static_cast<Duration>(rng.Uniform(50, 800)) * kMillisecond + 21 * kMillisecond;
    model.OnThroughput(c, {now, bytes, elapsed});
  }
  const double supply = model.TotalSupply();
  ASSERT_GT(supply, 0.0);
  const int active = model.ActiveConnectionCount(now);
  double total_available = 0.0;
  for (ConnectionId c = 1; c <= kConnections; ++c) {
    const double a = model.AvailabilityFor(c, now);
    // Ceiling: nobody is ever promised more than the whole supply.
    EXPECT_LE(a, supply + 1e-9);
    // Floor: an active connection always gets at least a fair share.
    EXPECT_GE(a, supply / (active + 1) - 1e-9);
    total_available += a;
  }
  // Shares are availabilities, not reservations, so they may overlap; but
  // their sum is bounded by fair shares plus the headroom handed out once
  // per connection in the worst case.
  EXPECT_LE(total_available, 2.0 * kConnections * supply);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AvailabilityInvariants,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Upcall ordering under stress ---

class UpcallStress : public ::testing::TestWithParam<int> {};

TEST_P(UpcallStress, OrderPreservedAcrossManyPostsAndApps) {
  const int per_app = GetParam();
  Simulation sim(11);
  UpcallDispatcher dispatcher(&sim);
  constexpr int kApps = 5;
  std::vector<std::vector<int>> delivered(kApps);
  // Interleave posts across apps from timer events.
  for (int i = 0; i < per_app; ++i) {
    sim.Schedule(static_cast<Duration>(sim.rng().UniformInt(1000)), [&, i] {
      for (AppId app = 1; app <= kApps; ++app) {
        dispatcher.Post(app, i, ResourceId::kNetworkBandwidth, i,
                        [&delivered, app, i](RequestId, ResourceId, double) {
                          delivered[app - 1].push_back(i);
                        });
      }
    });
  }
  sim.Run();
  for (int app = 0; app < kApps; ++app) {
    ASSERT_EQ(delivered[app].size(), static_cast<size_t>(per_app));
    // Exactly once each; order matches post order *per posting event*.
    std::vector<int> sorted = delivered[app];
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < per_app; ++i) {
      EXPECT_EQ(sorted[i], i);
    }
  }
  EXPECT_EQ(dispatcher.delivered_count(), static_cast<uint64_t>(per_app * kApps));
}

INSTANTIATE_TEST_SUITE_P(Sweep, UpcallStress, ::testing::Values(1, 10, 100));

// --- Upcall §4.3 semantics under random Block/Unblock and network faults ---

class UpcallInterleaving : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UpcallInterleaving, ExactlyOnceInOrderUnderRandomBlockingAndFaults) {
  const uint64_t seed = GetParam();
  Simulation sim(seed);
  UpcallDispatcher dispatcher(&sim, /*delivery_latency=*/1 * kMillisecond);

  // Background RPC traffic through a faulty link, with retries enabled, so
  // timeout/backoff/outage events interleave with dispatcher events on the
  // same queue.
  Link link(&sim, 100.0 * kKb, 10 * kMillisecond);
  FaultInjector injector(&sim, &link);
  FaultPlan plan;
  plan.WithSeed(seed)
      .WithDropProbability(0.3)
      .WithOutage(2 * kSecond, 1 * kSecond)
      .WithLatencySpike(4 * kSecond, 1 * kSecond, 200 * kMillisecond)
      .WithFlowKill(3 * kSecond)
      .WithFlowKill(5 * kSecond);
  injector.Arm(plan);
  Endpoint endpoint(&sim, &link, "server");
  endpoint.set_retry_policy(RetryPolicy::Default());
  endpoint.set_fault_injector(&injector);
  int fetches_left = 60;
  std::function<void()> pump = [&] {
    if (--fetches_left < 0) {
      return;
    }
    endpoint.Fetch(8.0 * kKb, 0,
                   [&](Status) { sim.Schedule(50 * kMillisecond, [&] { pump(); }); });
  };
  pump();

  constexpr int kApps = 3;
  std::vector<uint64_t> posted(kApps, 0);
  std::vector<std::vector<uint64_t>> delivered(kApps);
  constexpr int kOps = 300;
  for (int i = 0; i < kOps; ++i) {
    sim.Schedule(static_cast<Duration>(sim.rng().UniformInt(8000)) * kMillisecond, [&] {
      const AppId app = 1 + static_cast<AppId>(sim.rng().UniformInt(kApps));
      const double r = sim.rng().NextDouble();
      if (r < 0.6) {
        // Carry the expected per-app sequence number in the request id so
        // the handler can report which upcall it was.
        const uint64_t expected = ++posted[app - 1];
        const uint64_t seq =
            dispatcher.Post(app, expected, ResourceId::kNetworkBandwidth, 0.0,
                            [&dispatcher, &delivered, app](RequestId request, ResourceId, double) {
                              // Never delivered while the app is blocked.
                              EXPECT_FALSE(dispatcher.blocked(app));
                              delivered[app - 1].push_back(request);
                            });
        EXPECT_EQ(seq, expected);
      } else if (r < 0.8) {
        dispatcher.Block(app);
      } else {
        dispatcher.Unblock(app);
      }
    });
  }
  // Drain: whatever is still blocked at the end gets released.
  sim.Schedule(9 * kSecond, [&] {
    for (AppId app = 1; app <= kApps; ++app) {
      dispatcher.Unblock(app);
    }
  });
  sim.Run();

  uint64_t total_posted = 0;
  for (int app = 0; app < kApps; ++app) {
    total_posted += posted[app];
    // Exactly once, in order: the delivered sequence is precisely 1..n.
    ASSERT_EQ(delivered[app].size(), posted[app]) << "app " << app + 1;
    for (size_t i = 0; i < delivered[app].size(); ++i) {
      ASSERT_EQ(delivered[app][i], i + 1) << "app " << app + 1;
    }
    EXPECT_EQ(dispatcher.last_delivered_seq(app + 1), posted[app]);
  }
  EXPECT_EQ(dispatcher.delivered_count(), total_posted);
  EXPECT_EQ(fetches_left, -1) << "background traffic stalled";
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpcallInterleaving,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- Video sustainability: a track within budget plays nearly drop-free ---

class VideoSustainability : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(VideoSustainability, TrackWithinBudgetPlaysCleanly) {
  const int track = std::get<0>(GetParam());
  const double headroom = std::get<1>(GetParam());
  ExperimentRig rig(4, StrategyKind::kOdyssey);

  // Give the link exactly the track's requirement times the headroom.
  MovieMeta movie = VideoServer::MakeDefaultMovie("m", 300);
  const double required =
      VideoWarden::RequiredBandwidth(movie.tracks[track].frame_bytes, movie.fps);
  ASSERT_TRUE(rig.video_server().AddMovie(std::move(movie)).ok());

  VideoPlayerOptions options;
  options.movie = "m";
  options.fixed_track = track;
  options.frames_to_play = 300;
  VideoPlayer player(&rig.client(), options);
  rig.Replay(MakeConstant(required * headroom, 2 * kMinute), /*prime=*/false);
  player.Start();
  rig.sim().RunUntil(kMinute);
  ASSERT_TRUE(player.finished());
  if (headroom >= 1.1) {
    EXPECT_LE(player.DropsBetween(0, kMinute), 9);  // <3% even with VBR jitter
  } else {
    // At 60% of required bandwidth, drops must be heavy.
    EXPECT_GE(player.DropsBetween(0, kMinute), 60);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, VideoSustainability,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(0.6, 1.1, 1.5)));

// --- Trace algebra invariants ---

class TraceInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TraceInvariants, SerializationRoundTripsRandomTraces) {
  Rng rng(GetParam());
  ReplayTrace trace;
  const int segments = 1 + static_cast<int>(rng.UniformInt(12));
  for (int i = 0; i < segments; ++i) {
    trace.Append(static_cast<Duration>(rng.Uniform(0.1, 90.0) * kSecond),
                 rng.Uniform(1.0, 2000.0) * kKb,
                 static_cast<Duration>(rng.UniformInt(50000)));
  }
  ReplayTrace parsed;
  ASSERT_TRUE(ReplayTrace::Parse(trace.Serialize(), &parsed));
  ASSERT_EQ(parsed.segments().size(), trace.segments().size());
  for (size_t i = 0; i < trace.segments().size(); ++i) {
    // Serialization is decimal text; tolerate rounding at the micro scale.
    EXPECT_NEAR(static_cast<double>(parsed.segments()[i].duration),
                static_cast<double>(trace.segments()[i].duration), 1);
    EXPECT_NEAR(parsed.segments()[i].bandwidth_bps, trace.segments()[i].bandwidth_bps,
                trace.segments()[i].bandwidth_bps * 1e-4);
    EXPECT_EQ(parsed.segments()[i].latency, trace.segments()[i].latency);
  }
  // Concat preserves total duration; scaling preserves it too.
  EXPECT_EQ(trace.Concat(parsed).TotalDuration(), 2 * trace.TotalDuration());
  EXPECT_EQ(trace.ScaledBandwidth(0.5).TotalDuration(), trace.TotalDuration());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceInvariants, ::testing::Values(21, 22, 23, 24, 25));

// --- Determinism across the whole stack ---

class StackDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StackDeterminism, IdenticalSeedsIdenticalEstimates) {
  const auto run = [&](uint64_t seed) {
    ExperimentRig rig(seed, StrategyKind::kOdyssey);
    BitstreamApp app(&rig.client(), "bitstream");
    rig.Replay(MakeStepDown());
    app.Start();
    rig.sim().RunUntil(70 * kSecond);
    return rig.centralized()->TotalSupply(rig.sim().now());
  };
  EXPECT_DOUBLE_EQ(run(GetParam()), run(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StackDeterminism, ::testing::Values(1, 99, 12345));

// --- Availability decomposes into fair share plus competed-for headroom ---
//
// After *any* interleaving of attach/detach/observe, every availability
// figure equals min(fair share + competed-for headroom share, supply),
// reconstructed here from public accessors alone and compared with exact
// floating-point equality — the incremental model's contract is bit
// identity, not tolerance.

class AvailabilityDecomposition : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AvailabilityDecomposition, ExactlyFairSharePlusCompetedFor) {
  Rng rng(GetParam());
  SupplyModel model;
  std::vector<ConnectionId> ids;
  ConnectionId next = 1;
  Time now = 0;
  for (int i = 0; i < 400; ++i) {
    const double draw = rng.NextDouble();
    if (draw < 0.1 || ids.empty()) {
      ids.push_back(next);
      model.AddConnection(next++);
    } else if (draw < 0.18) {
      const size_t victim = rng.UniformInt(ids.size());
      model.RemoveConnection(ids[victim]);
      ids.erase(ids.begin() + static_cast<ptrdiff_t>(victim));
    } else {
      now += static_cast<Duration>(rng.Uniform(10, 300)) * kMillisecond;
      const ConnectionId c = ids[rng.UniformInt(ids.size())];
      model.OnThroughput(c, {now, rng.Uniform(1.0, 64.0) * kKb,
                             static_cast<Duration>(rng.Uniform(30, 800)) * kMillisecond});
    }
    const double supply = model.TotalSupply();
    const int active = model.ActiveConnectionCount(now);
    // Ascending id order, matching the model's own aggregation; idle
    // connections contribute exactly 0.0, so the sums are bit-identical.
    double total_usage = 0.0;
    for (const ConnectionId c : ids) {
      total_usage += model.UsageRateFor(c, now);
    }
    for (const ConnectionId c : ids) {
      const double availability = model.AvailabilityFor(c, now);
      if (supply <= 0.0) {
        EXPECT_EQ(availability, 0.0);
        continue;
      }
      const double rate = model.UsageRateFor(c, now);
      const int share_ways = active + (rate > 16.0 ? 0 : 1);
      const double fair = supply / static_cast<double>(share_ways < 1 ? 1 : share_ways);
      double expected = fair;
      if (total_usage > 0.0) {
        const double slack = supply > total_usage ? supply - total_usage : 0.0;
        const double sum = fair + slack * (rate / total_usage);
        expected = sum < supply ? sum : supply;
      }
      ASSERT_EQ(availability, expected) << "connection " << c << " at " << now;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AvailabilityDecomposition,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// --- Unregister is the exact inverse of register ---
//
// Pushing a probe connection through AddConnection/RemoveConnection leaves
// every observable bit-identical to its value before the pair, at any point
// in a long random history; and across ten thousand random operations the
// incremental model never drifts from the naive reference.

TEST(RegisterInverseProperty, NoDriftAfterTenThousandRandomOps) {
  Rng rng(4242);
  SupplyModel model;
  NaiveSupplyModel reference;
  std::vector<ConnectionId> ids;
  ConnectionId next = 1;
  Time now = 0;
  for (int i = 0; i < 10000; ++i) {
    const double draw = rng.NextDouble();
    if (draw < 0.1 || ids.empty()) {
      ids.push_back(next);
      model.AddConnection(next);
      reference.AddConnection(next);
      ++next;
    } else if (draw < 0.18) {
      const size_t victim = rng.UniformInt(ids.size());
      model.RemoveConnection(ids[victim]);
      reference.RemoveConnection(ids[victim]);
      ids.erase(ids.begin() + static_cast<ptrdiff_t>(victim));
    } else {
      now += static_cast<Duration>(rng.Uniform(10, 300)) * kMillisecond;
      const ConnectionId c = ids[rng.UniformInt(ids.size())];
      const ThroughputObservation obs{now, rng.Uniform(1.0, 64.0) * kKb,
                                      static_cast<Duration>(rng.Uniform(30, 800)) *
                                          kMillisecond};
      model.OnThroughput(c, obs);
      reference.OnThroughput(c, obs);
    }
    if (i % 250 == 0) {
      const double supply_before = model.TotalSupply();
      const int active_before = model.ActiveConnectionCount(now);
      std::vector<double> avail_before;
      avail_before.reserve(ids.size());
      for (const ConnectionId c : ids) {
        avail_before.push_back(model.AvailabilityFor(c, now));
      }
      const ConnectionId probe = next++;
      model.AddConnection(probe);
      reference.AddConnection(probe);
      model.RemoveConnection(probe);
      reference.RemoveConnection(probe);
      ASSERT_EQ(model.TotalSupply(), supply_before);
      ASSERT_EQ(model.ActiveConnectionCount(now), active_before);
      for (size_t k = 0; k < ids.size(); ++k) {
        ASSERT_EQ(model.AvailabilityFor(ids[k], now), avail_before[k])
            << "connection " << ids[k] << " drifted across a register/unregister pair";
      }
    }
    ASSERT_EQ(model.TotalSupply(), reference.TotalSupply());
    ASSERT_EQ(model.ActiveConnectionCount(now), reference.ActiveConnectionCount(now));
    if (!ids.empty()) {
      const ConnectionId c = ids[rng.UniformInt(ids.size())];
      ASSERT_EQ(model.AvailabilityFor(c, now), reference.AvailabilityFor(c, now));
    }
  }
}

}  // namespace
}  // namespace odyssey

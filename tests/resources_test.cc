// Tests for the extended resource management (battery, money, disk cache)
// and the file warden's consistency-as-fidelity dimension.

#include <gtest/gtest.h>

#include "src/apps/bitstream_app.h"
#include "src/core/battery_model.h"
#include "src/core/cache_manager.h"
#include "src/core/money_meter.h"
#include "src/core/tsop_codec.h"
#include "src/metrics/experiment.h"
#include "src/servers/file_server.h"
#include "src/wardens/file_warden.h"

namespace odyssey {
namespace {

constexpr double kKb = 1024.0;
constexpr double kMb = 1024.0 * 1024.0;

// --- Battery ---

class BatteryTest : public ::testing::Test {
 protected:
  BatteryTest() : rig_(1, StrategyKind::kOdyssey) {
    app_ = rig_.client().RegisterApplication("app");
  }

  ExperimentRig rig_;
  AppId app_ = 0;
};

TEST_F(BatteryTest, DrainsWithTime) {
  BatteryModel::Config config;
  config.capacity_minutes = 10.0;
  BatteryModel battery(&rig_.sim(), &rig_.client().viceroy(), &rig_.link(), config);
  battery.Start();
  rig_.Replay(MakeConstant(kHighBandwidth, 10 * kMinute), /*prime=*/false);
  rig_.sim().RunUntil(4 * kMinute);
  EXPECT_NEAR(battery.remaining_minutes(), 6.0, 0.2);
  EXPECT_NEAR(rig_.client().CurrentLevel(app_, ResourceId::kBatteryPower), 6.0, 0.2);
}

TEST_F(BatteryTest, NetworkTrafficCostsExtraLifetime) {
  BatteryModel::Config config;
  config.capacity_minutes = 100.0;
  config.network_minutes_per_mb = 1.0;
  BatteryModel battery(&rig_.sim(), &rig_.client().viceroy(), &rig_.link(), config);
  battery.Start();
  BitstreamApp stream(&rig_.client(), "bitstream");
  rig_.Replay(MakeConstant(kHighBandwidth, 10 * kMinute), /*prime=*/false);
  stream.Start();
  rig_.sim().RunUntil(2 * kMinute);
  // Two minutes idle drain plus ~13 MB of traffic at a minute per MB.
  const double moved_mb = rig_.link().bytes_delivered() / kMb;
  EXPECT_GT(moved_mb, 10.0);
  EXPECT_NEAR(battery.remaining_minutes(), 100.0 - 2.0 - moved_mb, 1.0);
}

TEST_F(BatteryTest, LowBatteryFiresUpcall) {
  BatteryModel::Config config;
  config.capacity_minutes = 5.0;
  BatteryModel battery(&rig_.sim(), &rig_.client().viceroy(), &rig_.link(), config);
  battery.Start();
  double level_seen = -1.0;
  ResourceDescriptor descriptor;
  descriptor.resource = ResourceId::kBatteryPower;
  descriptor.lower = 3.0;  // warn below three minutes remaining
  descriptor.handler = [&](RequestId, ResourceId, double level) { level_seen = level; };
  ASSERT_TRUE(rig_.client().Request(app_, descriptor).ok());
  rig_.Replay(MakeConstant(kHighBandwidth, kMinute), /*prime=*/false);
  rig_.sim().RunUntil(10 * kMinute);
  EXPECT_GE(level_seen, 0.0);
  EXPECT_LT(level_seen, 3.0);
}

TEST_F(BatteryTest, ExhaustsAtZeroAndStops) {
  BatteryModel::Config config;
  config.capacity_minutes = 1.0;
  BatteryModel battery(&rig_.sim(), &rig_.client().viceroy(), &rig_.link(), config);
  battery.Start();
  rig_.Replay(MakeConstant(kHighBandwidth, kMinute), /*prime=*/false);
  rig_.sim().RunUntil(5 * kMinute);
  EXPECT_TRUE(battery.exhausted());
  EXPECT_DOUBLE_EQ(battery.remaining_minutes(), 0.0);
}

// --- Money ---

TEST(MoneyTest, ChargesPerMegabyte) {
  ExperimentRig rig(1, StrategyKind::kOdyssey);
  const AppId app = rig.client().RegisterApplication("app");
  MoneyMeter::Config config;
  config.budget_cents = 100.0;
  config.cents_per_mb = 2.0;
  MoneyMeter meter(&rig.sim(), &rig.client().viceroy(), &rig.link(), config);
  meter.Start();
  BitstreamApp stream(&rig.client(), "bitstream");
  rig.Replay(MakeConstant(kHighBandwidth, 10 * kMinute), /*prime=*/false);
  stream.Start();
  rig.sim().RunUntil(2 * kMinute);
  const double moved_mb = rig.link().bytes_delivered() / kMb;
  EXPECT_NEAR(meter.spent_cents(), moved_mb * 2.0, 0.5);
  EXPECT_NEAR(rig.client().CurrentLevel(app, ResourceId::kMoney), meter.remaining_cents(),
              1e-9);
}

TEST(MoneyTest, BudgetExhaustionFiresUpcall) {
  ExperimentRig rig(2, StrategyKind::kOdyssey);
  const AppId app = rig.client().RegisterApplication("app");
  MoneyMeter::Config config;
  config.budget_cents = 5.0;
  config.cents_per_mb = 1.0;
  MoneyMeter meter(&rig.sim(), &rig.client().viceroy(), &rig.link(), config);
  meter.Start();
  bool warned = false;
  ResourceDescriptor descriptor;
  descriptor.resource = ResourceId::kMoney;
  descriptor.lower = 2.0;
  descriptor.handler = [&](RequestId, ResourceId, double) { warned = true; };
  ASSERT_TRUE(rig.client().Request(app, descriptor).ok());
  BitstreamApp stream(&rig.client(), "bitstream");
  rig.Replay(MakeConstant(kHighBandwidth, 10 * kMinute), /*prime=*/false);
  stream.Start();
  rig.sim().RunUntil(2 * kMinute);  // >5 MB moved, budget gone
  EXPECT_TRUE(warned);
  EXPECT_DOUBLE_EQ(meter.remaining_cents(), 0.0);
}

TEST(MoneyTest, TariffChangeTakesEffect) {
  ExperimentRig rig(3, StrategyKind::kOdyssey);
  MoneyMeter::Config config;
  config.budget_cents = 1000.0;
  config.cents_per_mb = 0.0;  // free WaveLAN
  MoneyMeter meter(&rig.sim(), &rig.client().viceroy(), &rig.link(), config);
  meter.Start();
  BitstreamApp stream(&rig.client(), "bitstream");
  rig.Replay(MakeConstant(kHighBandwidth, 10 * kMinute), /*prime=*/false);
  stream.Start();
  rig.sim().RunUntil(kMinute);
  EXPECT_NEAR(meter.spent_cents(), 0.0, 1e-9);
  meter.SetTariff(10.0);  // hand off to metered cellular
  rig.sim().RunUntil(2 * kMinute);
  EXPECT_GT(meter.spent_cents(), 10.0);
}

// --- Cache manager ---

TEST(CacheManagerTest, ReserveReleaseAccounting) {
  Simulation sim;
  Viceroy viceroy(&sim, std::make_unique<LaissezFaireStrategy>());
  CacheManager cache(&viceroy, 100.0);
  const AppId app = viceroy.RegisterApplication("app");
  EXPECT_DOUBLE_EQ(viceroy.CurrentLevel(app, ResourceId::kDiskCacheSpace), 100.0);
  EXPECT_TRUE(cache.Reserve(60.0));
  EXPECT_DOUBLE_EQ(cache.free_kb(), 40.0);
  EXPECT_FALSE(cache.Reserve(50.0));  // does not fit
  EXPECT_DOUBLE_EQ(cache.used_kb(), 60.0);
  cache.Release(30.0);
  EXPECT_TRUE(cache.Reserve(50.0));
  cache.Release(1000.0);  // over-release clamps
  EXPECT_DOUBLE_EQ(cache.used_kb(), 0.0);
  EXPECT_DOUBLE_EQ(viceroy.CurrentLevel(app, ResourceId::kDiskCacheSpace), 100.0);
}

TEST(CacheManagerTest, PressureFiresUpcall) {
  Simulation sim;
  Viceroy viceroy(&sim, std::make_unique<LaissezFaireStrategy>());
  CacheManager cache(&viceroy, 100.0);
  const AppId app = viceroy.RegisterApplication("app");
  bool squeezed = false;
  ResourceDescriptor descriptor;
  descriptor.resource = ResourceId::kDiskCacheSpace;
  descriptor.lower = 20.0;
  descriptor.handler = [&](RequestId, ResourceId, double) { squeezed = true; };
  ASSERT_TRUE(viceroy.Request(app, descriptor).ok());
  ASSERT_TRUE(cache.Reserve(90.0));
  sim.Run();
  EXPECT_TRUE(squeezed);
}

// --- File warden: consistency as fidelity ---

class FileWardenTest : public ::testing::Test {
 protected:
  FileWardenTest()
      : rig_(1, StrategyKind::kOdyssey),
        file_server_(&rig_.sim().rng()),
        cache_(&rig_.client().viceroy(), 64.0) {
    file_server_.Publish("etc/motd", 8.0 * kKb);
    file_server_.Publish("maps/campus", 32.0 * kKb);
    file_server_.Publish("big/archive", 512.0 * kKb);
    warden_ = static_cast<FileWarden*>(
        rig_.client().InstallWarden(std::make_unique<FileWarden>(&file_server_, &cache_)));
    app_ = rig_.client().RegisterApplication("reader");
    rig_.Replay(MakeConstant(kHighBandwidth, 30 * kMinute), /*prime=*/false);
  }

  std::string Path(const std::string& rel) { return std::string(kOdysseyRoot) + "files/" + rel; }

  FileReadReply ReadFile(const std::string& rel, Duration budget = 30 * kSecond) {
    FileReadReply reply;
    bool done = false;
    rig_.client().Tsop(app_, Path(rel), kFileRead, "", [&](Status status, std::string out) {
      ASSERT_TRUE(status.ok()) << status.ToString();
      ASSERT_TRUE(UnpackStruct(out, &reply));
      done = true;
    });
    // Advance in small steps so the clock stops near the completion instant
    // (tests reason about elapsed time and validation TTLs).
    const Time deadline = rig_.sim().now() + budget;
    while (!done && rig_.sim().now() < deadline) {
      rig_.sim().RunUntil(rig_.sim().now() + 10 * kMillisecond);
    }
    EXPECT_TRUE(done);
    return reply;
  }

  void SetLevel(FileConsistency level) {
    rig_.client().Tsop(app_, Path(""), kFileSetConsistency,
                       PackStruct(FileSetConsistencyRequest{static_cast<int>(level)}),
                       [](Status, std::string) {});
  }

  FileWardenStats Stats() {
    FileWardenStats stats;
    rig_.client().Tsop(app_, Path(""), kFileStats, "",
                       [&](Status, std::string out) { EXPECT_TRUE(UnpackStruct(out, &stats)); });
    return stats;
  }

  ExperimentRig rig_;
  FileServer file_server_;
  CacheManager cache_;
  FileWarden* warden_ = nullptr;
  AppId app_ = 0;
};

TEST_F(FileWardenTest, FirstReadMissesThenHits) {
  SetLevel(FileConsistency::kOptimistic);
  const FileReadReply first = ReadFile("etc/motd");
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.version, 1u);
  const FileReadReply second = ReadFile("etc/motd");
  EXPECT_TRUE(second.cache_hit);
  const FileWardenStats stats = Stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.cache_hits, 1);
}

TEST_F(FileWardenTest, StrictSeesServerUpdatesImmediately) {
  SetLevel(FileConsistency::kStrict);
  EXPECT_EQ(ReadFile("etc/motd").version, 1u);
  ASSERT_TRUE(file_server_.Update("etc/motd").ok());
  const FileReadReply reply = ReadFile("etc/motd");
  EXPECT_EQ(reply.version, 2u);
  EXPECT_DOUBLE_EQ(reply.fidelity, 1.0);
  const FileWardenStats stats = Stats();
  EXPECT_GE(stats.validations, 1);
  EXPECT_EQ(stats.refetches, 1);
  EXPECT_EQ(stats.stale_serves, 0);
}

TEST_F(FileWardenTest, OptimisticServesStaleData) {
  SetLevel(FileConsistency::kOptimistic);
  EXPECT_EQ(ReadFile("etc/motd").version, 1u);
  ASSERT_TRUE(file_server_.Update("etc/motd").ok());
  const FileReadReply reply = ReadFile("etc/motd");
  EXPECT_EQ(reply.version, 1u);  // stale copy, knowingly
  EXPECT_DOUBLE_EQ(reply.fidelity, 0.3);
  EXPECT_EQ(Stats().stale_serves, 1);
}

TEST_F(FileWardenTest, PeriodicValidatesAfterTtl) {
  SetLevel(FileConsistency::kPeriodic);
  EXPECT_EQ(ReadFile("etc/motd").version, 1u);
  ASSERT_TRUE(file_server_.Update("etc/motd").ok());
  // Within the TTL the cached copy is trusted...
  EXPECT_EQ(ReadFile("etc/motd").version, 1u);
  // ...after the TTL the next read validates and refetches.
  rig_.sim().RunUntil(rig_.sim().now() + FileWarden::kPeriodicTtl + kSecond);
  EXPECT_EQ(ReadFile("etc/motd").version, 2u);
}

TEST_F(FileWardenTest, StrictCostsMoreTimeThanOptimistic) {
  SetLevel(FileConsistency::kStrict);
  ReadFile("etc/motd");  // warm
  const Time strict_start = rig_.sim().now();
  ReadFile("etc/motd");
  const Duration strict_cost = rig_.sim().now() - strict_start;

  SetLevel(FileConsistency::kOptimistic);
  const Time optimistic_start = rig_.sim().now();
  ReadFile("etc/motd");
  const Duration optimistic_cost = rig_.sim().now() - optimistic_start;
  // The strict read pays at least a validation round trip; the optimistic
  // read is local.  (Costs are measured as elapsed virtual time around the
  // synchronous RunUntil; the strict path must be visibly slower.)
  EXPECT_GT(strict_cost, optimistic_cost);
}

TEST_F(FileWardenTest, LruEvictionUnderCachePressure) {
  // The cache holds 64 KB; motd (8) + campus (32) fit, archive (512) never
  // does.
  SetLevel(FileConsistency::kOptimistic);
  ReadFile("etc/motd");
  ReadFile("maps/campus");
  EXPECT_NEAR(cache_.used_kb(), 40.0, 0.5);
  // The archive exceeds the whole cache: everything is evicted in the
  // attempt, and it is served uncached.
  ReadFile("big/archive", kMinute);
  EXPECT_GT(Stats().evictions, 0);
  EXPECT_NEAR(cache_.used_kb(), 0.0, 0.5);
  // Both small files now miss again.
  const FileReadReply motd = ReadFile("etc/motd");
  EXPECT_FALSE(motd.cache_hit);
}

TEST_F(FileWardenTest, AdaptiveLevelFollowsBandwidth) {
  EXPECT_EQ(FileWarden::AdaptiveLevel(kHighBandwidth), FileConsistency::kStrict);
  EXPECT_EQ(FileWarden::AdaptiveLevel(20.0 * kKb), FileConsistency::kPeriodic);
  EXPECT_EQ(FileWarden::AdaptiveLevel(4.0 * kKb), FileConsistency::kOptimistic);
  EXPECT_EQ(FileWarden::AdaptiveLevel(0.0), FileConsistency::kOptimistic);
}

TEST_F(FileWardenTest, ReadPathYieldsVersionedDescriptor) {
  SetLevel(FileConsistency::kStrict);
  std::string data;
  rig_.client().Read(app_, Path("etc/motd"), [&](Status status, std::string out) {
    ASSERT_TRUE(status.ok());
    data = std::move(out);
  });
  rig_.sim().RunUntil(rig_.sim().now() + 10 * kSecond);
  EXPECT_EQ(data, "file:etc/motd@v1");
}

TEST_F(FileWardenTest, UnknownFileFails) {
  Status status;
  rig_.client().Tsop(app_, Path("no/such"), kFileRead, "",
                     [&](Status s, std::string) { status = s; });
  rig_.sim().RunUntil(rig_.sim().now() + 5 * kSecond);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(FileWardenTest, BadConsistencyRejected) {
  Status status;
  rig_.client().Tsop(app_, Path(""), kFileSetConsistency,
                     PackStruct(FileSetConsistencyRequest{9}),
                     [&](Status s, std::string) { status = s; });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(FileServerTest, PublishUpdateStat) {
  Rng rng(1);
  FileServer server(&rng);
  server.Publish("a", 100.0);
  FileInfo info;
  ASSERT_TRUE(server.Stat("a", &info).ok());
  EXPECT_EQ(info.version, 1u);
  ASSERT_TRUE(server.Update("a").ok());
  ASSERT_TRUE(server.Stat("a", &info).ok());
  EXPECT_EQ(info.version, 2u);
  EXPECT_EQ(server.Update("missing").code(), StatusCode::kNotFound);
  EXPECT_EQ(server.file_count(), 1u);
}

}  // namespace
}  // namespace odyssey

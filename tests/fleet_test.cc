// Property tests for the fleet subsystem (src/fleet, DESIGN.md §15):
// the estimate merge is a pure function of the delivered message set (never
// of arrival order), staleness weighting is monotone, the dispatcher's
// delays and drops are deterministic, the FleetSupplyModel clamp respects
// its documented bounds, the scenario generator's fleet dimension leaves
// historical seeds untouched, and a whole fleet fuzz run is bit-identical
// when repeated.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/check/fuzz_runner.h"
#include "src/check/fuzz_scenario.h"
#include "src/estimator/supply_model.h"
#include "src/fleet/fleet_aggregator.h"
#include "src/fleet/fleet_dispatcher.h"
#include "src/fleet/fleet_fuzz.h"
#include "src/fleet/fleet_message.h"
#include "src/fleet/fleet_oracle.h"
#include "src/fleet/fleet_supply_model.h"
#include "src/net/fault_injector.h"
#include "src/net/link.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"
#include "src/tracemod/replay_trace.h"

namespace odyssey {
namespace {

FleetMessage Estimate(FleetNodeId origin, FleetServerId server, uint64_t seq, Time sent_at,
                      double supply_bps, int32_t active) {
  FleetMessage message;
  message.kind = FleetMessageKind::kEstimate;
  message.origin = origin;
  message.server = server;
  message.seq = seq;
  message.sent_at = sent_at;
  message.supply_bps = supply_bps;
  message.usage_bps = supply_bps / 2.0;
  message.active = active;
  return message;
}

// ---------------------------------------------------------------------------
// Aggregation merge properties.

TEST(FleetAggregatorTest, MergeIsPermutationInvariant) {
  Simulation sim(1);
  FleetDispatcher dispatcher(&sim);

  // A message set with duplicates, stale seqs arriving late, and several
  // origins; delivered to two aggregators in opposite orders.
  std::vector<FleetMessage> messages = {
      Estimate(1, 0, 2, 100 * kMillisecond, 64000.0, 1),
      Estimate(2, 0, 5, 300 * kMillisecond, 96000.0, 2),
      Estimate(1, 0, 1, 50 * kMillisecond, 10.0, 0),  // stale seq: must lose
      Estimate(3, 0, 1, 200 * kMillisecond, 32000.0, 1),
      Estimate(2, 0, 5, 300 * kMillisecond, 96000.0, 2),  // exact duplicate
      Estimate(2, 1, 3, 250 * kMillisecond, 48000.0, 1),
  };

  FleetAggregator forward(&sim, &dispatcher, /*self=*/100, /*seed=*/7);
  FleetAggregator backward(&sim, &dispatcher, /*self=*/101, /*seed=*/8);
  for (const FleetMessage& message : messages) {
    forward.OnMessage(message);
  }
  for (auto it = messages.rbegin(); it != messages.rend(); ++it) {
    backward.OnMessage(*it);
  }

  const Time now = 500 * kMillisecond;
  for (FleetServerId server : {FleetServerId{0}, FleetServerId{1}}) {
    const FleetAggregator::ServerView a = forward.ViewOf(server, now);
    const FleetAggregator::ServerView b = backward.ViewOf(server, now);
    EXPECT_EQ(a.valid, b.valid);
    // Bit-identical, not merely close: the merge folds origins in ascending
    // id regardless of arrival order, so the arithmetic is the same.
    EXPECT_EQ(a.supply_bps, b.supply_bps);
    EXPECT_EQ(a.active_clients, b.active_clients);
    EXPECT_EQ(a.reporting, b.reporting);
    EXPECT_EQ(forward.PeersFor(server), backward.PeersFor(server));
  }
}

TEST(FleetAggregatorTest, StrictlyHigherSeqWins) {
  Simulation sim(1);
  FleetDispatcher dispatcher(&sim);
  FleetAggregator agg(&sim, &dispatcher, /*self=*/100, /*seed=*/7);

  agg.OnMessage(Estimate(1, 0, 3, 100 * kMillisecond, 80000.0, 1));
  // A reordered older report and a same-seq replay must both lose.
  agg.OnMessage(Estimate(1, 0, 2, 150 * kMillisecond, 1.0, 1));
  agg.OnMessage(Estimate(1, 0, 3, 150 * kMillisecond, 2.0, 1));

  const FleetAggregator::ServerView view = agg.ViewOf(0, 200 * kMillisecond);
  ASSERT_TRUE(view.valid);
  EXPECT_DOUBLE_EQ(view.supply_bps, 80000.0);
}

TEST(FleetAggregatorTest, StalenessWeightingIsMonotone) {
  Simulation sim(1);
  FleetDispatcher dispatcher(&sim);
  const Time now = 20 * kSecond;

  // Origin 2's fresh report says 200 KB/s; origin 1's aging report says
  // 100 KB/s.  As origin 1's report ages, the merge must move monotonically
  // toward the fresh figure.
  double previous = 0.0;
  for (int age_s = 0; age_s <= 8; ++age_s) {
    FleetAggregator agg(&sim, &dispatcher, /*self=*/100, /*seed=*/7);
    agg.OnMessage(Estimate(1, 0, 1, now - age_s * kSecond, 100.0 * 1024.0, 1));
    agg.OnMessage(Estimate(2, 0, 1, now, 200.0 * 1024.0, 1));
    const FleetAggregator::ServerView view = agg.ViewOf(0, now);
    ASSERT_TRUE(view.valid);
    EXPECT_GE(view.supply_bps, 100.0 * 1024.0);
    EXPECT_LE(view.supply_bps, 200.0 * 1024.0);
    if (age_s > 0) {
      EXPECT_GT(view.supply_bps, previous) << "age " << age_s << "s";
    }
    previous = view.supply_bps;
  }

  // At age == staleness_tau the old report carries exactly half weight:
  // (0.5 * 100 + 1 * 200) / 1.5 KB/s.
  FleetAggregatorConfig config;
  FleetAggregator agg(&sim, &dispatcher, /*self=*/100, /*seed=*/7, config);
  agg.OnMessage(Estimate(1, 0, 1, now - config.staleness_tau, 100.0 * 1024.0, 1));
  agg.OnMessage(Estimate(2, 0, 1, now, 200.0 * 1024.0, 1));
  EXPECT_NEAR(agg.ViewOf(0, now).supply_bps, (0.5 * 100.0 + 200.0) / 1.5 * 1024.0, 1e-6);

  // Past stale_after the report leaves the merge entirely.
  FleetAggregator expired(&sim, &dispatcher, /*self=*/100, /*seed=*/7, config);
  expired.OnMessage(Estimate(1, 0, 1, now - config.stale_after - kSecond, 100.0 * 1024.0, 1));
  expired.OnMessage(Estimate(2, 0, 1, now, 200.0 * 1024.0, 1));
  const FleetAggregator::ServerView view = expired.ViewOf(0, now);
  ASSERT_TRUE(view.valid);
  EXPECT_DOUBLE_EQ(view.supply_bps, 200.0 * 1024.0);
  EXPECT_EQ(view.reporting, 1);
}

// ---------------------------------------------------------------------------
// Dispatcher determinism.

TEST(FleetDispatcherTest, DelayIsLatencyPlusSerialization) {
  Simulation sim(1);
  FleetDispatcher dispatcher(&sim);

  // 9600 B/s and 10 ms one-way: serialization of a 96-byte control message
  // costs exactly another 10 ms.
  ReplayTrace waveform;
  waveform.Append(10 * kSecond, 9600.0, 10 * kMillisecond);

  std::vector<Time> delivered_at;
  dispatcher.RegisterNode(0, &waveform, nullptr, [](const FleetMessage&) {});
  dispatcher.RegisterNode(1, nullptr, nullptr,
                          [&](const FleetMessage&) { delivered_at.push_back(sim.now()); });

  EXPECT_TRUE(dispatcher.Send(0, 1, Estimate(0, 0, 1, 0, 1000.0, 1)));
  sim.Run();
  ASSERT_EQ(delivered_at.size(), 1u);
  EXPECT_EQ(delivered_at[0], 20 * kMillisecond);
  EXPECT_EQ(dispatcher.messages_sent(), 1u);
  EXPECT_EQ(dispatcher.messages_delivered(), 1u);
  EXPECT_EQ(dispatcher.messages_dropped(), 0u);
}

TEST(FleetDispatcherTest, OutagesAndShadowsDropDeterministically) {
  Simulation sim(1);
  FleetDispatcher dispatcher(&sim);

  // Node 0's radio shadow: zero bandwidth for the first second.
  ReplayTrace shadowed;
  shadowed.Append(1 * kSecond, 0.0, 10 * kMillisecond);
  shadowed.Append(10 * kSecond, 9600.0, 10 * kMillisecond);

  // Node 1 spends [0, 2s) in an outage; sends toward it during the window
  // are lost at delivery time.
  Link link(&sim, 9600.0, 10 * kMillisecond);
  FaultInjector injector(&sim, &link);
  FaultPlan plan;
  plan.WithSeed(7).WithOutage(0, 2 * kSecond);
  injector.Arm(plan);

  uint64_t received = 0;
  dispatcher.RegisterNode(0, &shadowed, nullptr, [](const FleetMessage&) {});
  dispatcher.RegisterNode(1, nullptr, &injector, [&](const FleetMessage&) { ++received; });

  // In the shadow: lost at the sender.
  EXPECT_FALSE(dispatcher.Send(0, 1, Estimate(0, 0, 1, 0, 1000.0, 1)));
  // Past the shadow but into the receiver's outage: leaves the sender,
  // dies at delivery.
  Time now = 0;
  sim.ScheduleAt(1100 * kMillisecond, [&] {
    now = sim.now();
    EXPECT_TRUE(dispatcher.Send(0, 1, Estimate(0, 0, 2, now, 1000.0, 1)));
  });
  sim.RunUntil(1200 * kMillisecond);
  EXPECT_EQ(received, 0u);

  // Both attempts count as sends, both count as drops (one at the sender's
  // shadow, one at the receiver's outage), nothing is delivered.
  EXPECT_EQ(dispatcher.messages_sent(), 2u);
  EXPECT_EQ(dispatcher.messages_delivered(), 0u);
  EXPECT_EQ(dispatcher.messages_dropped(), 2u);
}

// ---------------------------------------------------------------------------
// FleetSupplyModel clamp bounds.

TEST(FleetSupplyModelTest, ClampStaysWithinDocumentedBounds) {
  Simulation sim(1);
  FleetDispatcher dispatcher(&sim);
  FleetAggregator agg(&sim, &dispatcher, /*self=*/0, /*seed=*/7);

  FleetSupplyModel fleet(&agg);
  FleetSupplyModel local_only(nullptr);
  const Time now = 10 * kSecond;
  for (FleetSupplyModel* model : {&fleet, &local_only}) {
    model->AddConnection(1);
    ThroughputObservation obs;
    obs.at = now - kSecond;
    obs.window_bytes = 50000.0;
    obs.elapsed = 1 * kSecond;
    model->OnThroughput(1, obs);
  }
  fleet.MapConnection(1, 0);

  // No fleet view yet: the model degenerates to the local one exactly.
  EXPECT_LT(fleet.ServerCapFor(0, now), 0.0);
  EXPECT_EQ(fleet.AvailabilityFor(1, now), local_only.AvailabilityFor(1, now));

  const double local_avail = local_only.AvailabilityFor(1, now);
  const double local_floor = local_only.TotalSupply() /
                             static_cast<double>(local_only.ActiveConnectionCount(now) + 1);

  // Two active peers crowd the server at a small merged supply: the cap
  // falls below the local floor, and the floor must win.
  agg.OnMessage(Estimate(1, 0, 1, now, 30000.0, 1));
  agg.OnMessage(Estimate(2, 0, 1, now, 30000.0, 1));
  EXPECT_DOUBLE_EQ(fleet.ServerCapFor(0, now), 30000.0 / 3.0);
  EXPECT_DOUBLE_EQ(fleet.AvailabilityFor(1, now), local_floor);

  // A generous merged supply: the cap lands between floor and the local
  // figure and becomes the availability.
  agg.OnMessage(Estimate(1, 0, 2, now, 90000.0, 1));
  agg.OnMessage(Estimate(2, 0, 2, now, 90000.0, 1));
  const double cap = fleet.ServerCapFor(0, now);
  EXPECT_DOUBLE_EQ(cap, 90000.0 / 3.0);
  ASSERT_GT(cap, local_floor);
  ASSERT_LT(cap, local_avail);
  EXPECT_DOUBLE_EQ(fleet.AvailabilityFor(1, now), cap);

  // An unmapped connection never consults the fleet view.
  fleet.AddConnection(2);
  local_only.AddConnection(2);
  EXPECT_EQ(fleet.AvailabilityFor(2, now), local_only.AvailabilityFor(2, now));
}

// ---------------------------------------------------------------------------
// Scenario generator: the fleet dimension.

TEST(FleetScenarioTest, DefaultsLeaveHistoricalSeedsUntouched) {
  ScenarioOptions off;
  off.fleet = false;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    EXPECT_EQ(GenerateScenario(seed).Describe(), GenerateScenario(seed, off).Describe());
    EXPECT_EQ(GenerateScenario(seed).fleet_nodes, 0);
  }
}

std::string StripFleetLine(const std::string& description) {
  std::string out;
  size_t pos = 0;
  while (pos < description.size()) {
    size_t end = description.find('\n', pos);
    if (end == std::string::npos) {
      end = description.size() - 1;
    }
    const std::string line = description.substr(pos, end - pos + 1);
    if (line.find("fleet nodes=") == std::string::npos) {
      out += line;
    }
    pos = end + 1;
  }
  return out;
}

TEST(FleetScenarioTest, FleetDimensionOnlyAppendsDraws) {
  ScenarioOptions on;
  on.fleet = true;
  int armed = 0;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    const FuzzScenario base = GenerateScenario(seed);
    const FuzzScenario fleet = GenerateScenario(seed, on);
    // The fleet draws happen after every historical draw: everything but
    // the fleet fields is identical.
    EXPECT_EQ(base.Describe(), StripFleetLine(fleet.Describe())) << "seed " << seed;
    if (fleet.fleet_nodes != 0) {
      ++armed;
      EXPECT_GE(fleet.fleet_nodes, 2);
      EXPECT_LE(fleet.fleet_nodes, 8);
      EXPECT_GE(fleet.fleet_servers, 1);
      EXPECT_LE(fleet.fleet_servers, 2);
    } else {
      EXPECT_EQ(fleet.fleet_servers, 0);
    }
  }
  // Roughly half the scenarios arm the dimension.
  EXPECT_GT(armed, 60 / 5);
  EXPECT_LT(armed, 60 * 4 / 5);
}

TEST(FleetScenarioTest, NodeWaveformsAreDeterministicAndBounded) {
  ScenarioOptions on;
  on.fleet = true;
  FuzzScenario scenario;
  for (uint64_t seed = 1;; ++seed) {
    ASSERT_LT(seed, 1000u);
    scenario = GenerateScenario(seed, on);
    if (scenario.fleet_nodes >= 2) {
      break;
    }
  }

  // Node 0 rides the scenario verbatim.
  EXPECT_EQ(FleetNodeScenario(scenario, 0).Describe(), scenario.Describe());

  for (int node = 1; node < scenario.fleet_nodes; ++node) {
    const FuzzScenario once = FleetNodeScenario(scenario, node);
    const FuzzScenario again = FleetNodeScenario(scenario, node);
    EXPECT_EQ(once.Describe(), again.Describe());
    ASSERT_EQ(once.segments.size(), scenario.segments.size());
    for (size_t i = 0; i < once.segments.size(); ++i) {
      const FuzzSegment& base = scenario.segments[i];
      const FuzzSegment& scaled = once.segments[i];
      EXPECT_EQ(scaled.duration, base.duration);
      EXPECT_EQ(scaled.latency, base.latency);
      if (base.bandwidth_bps <= 0.0) {
        EXPECT_EQ(scaled.bandwidth_bps, 0.0);  // radio shadows stay shadows
      } else {
        EXPECT_GE(scaled.bandwidth_bps, base.bandwidth_bps * 0.5);
        EXPECT_LT(scaled.bandwidth_bps, base.bandwidth_bps * 1.5);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Whole-run bit-identity and the quiescence gates.

TEST(FleetFuzzTest, RunIsBitIdenticalWhenRepeated) {
  ScenarioOptions on;
  on.fleet = true;
  int exercised = 0;
  for (uint64_t seed = 1; seed <= 40 && exercised < 3; ++seed) {
    const FuzzScenario scenario = GenerateScenario(seed, on);
    if (scenario.fleet_nodes < 2) {
      continue;
    }
    ++exercised;
    const FuzzRunResult a = RunFleetFuzzScenario(scenario);
    const FuzzRunResult b = RunFleetFuzzScenario(scenario);
    EXPECT_TRUE(a.ok()) << FormatViolations(a.violations);
    EXPECT_EQ(a.violation_count, b.violation_count);
    EXPECT_EQ(a.upcalls_delivered, b.upcalls_delivered);
    EXPECT_EQ(a.requests_granted, b.requests_granted);
    EXPECT_EQ(a.requests_denied, b.requests_denied);
    EXPECT_EQ(a.cancels_ok, b.cancels_ok);
    EXPECT_EQ(a.tsops_issued, b.tsops_issued);
    EXPECT_EQ(a.tie_pairs_audited, b.tie_pairs_audited);
    EXPECT_EQ(a.bytes_delivered, b.bytes_delivered);
  }
  EXPECT_EQ(exercised, 3);
}

TEST(FleetOracleTest, QuiescenceHelpersGateTheConvergenceCheck) {
  ReplayTrace live;
  live.Append(4 * kSecond, 9600.0, 10 * kMillisecond);
  EXPECT_TRUE(WaveformLiveThroughout(live, 2 * kSecond, 6 * kSecond));

  ReplayTrace shadow_tail;
  shadow_tail.Append(2 * kSecond, 9600.0, 10 * kMillisecond);
  shadow_tail.Append(2 * kSecond, 0.0, 10 * kMillisecond);
  EXPECT_FALSE(WaveformLiveThroughout(shadow_tail, kSecond, 4 * kSecond));
  EXPECT_TRUE(WaveformLiveThroughout(shadow_tail, 0, kSecond));

  FaultPlan quiet;
  quiet.WithOutage(0, kSecond);
  EXPECT_TRUE(FaultPlanQuietAfter(quiet, 2 * kSecond));
  EXPECT_FALSE(FaultPlanQuietAfter(quiet, 500 * kMillisecond));

  FaultPlan noisy;
  noisy.WithDropProbability(0.1);
  EXPECT_FALSE(FaultPlanQuietAfter(noisy, 2 * kSecond));
}

}  // namespace
}  // namespace odyssey

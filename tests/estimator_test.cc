// Unit tests for EWMA smoothing, usage accounting, per-connection
// estimation, and the centralized supply model (§6.2.1).

#include <gtest/gtest.h>

#include "src/estimator/connection_estimator.h"
#include "src/estimator/ewma.h"
#include "src/estimator/sliding_max.h"
#include "src/estimator/supply_model.h"
#include "src/estimator/usage_meter.h"

namespace odyssey {
namespace {

constexpr double kKb = 1024.0;

TEST(EwmaTest, FirstSampleInitializes) {
  EwmaFilter filter(0.5);
  EXPECT_FALSE(filter.has_value());
  filter.Update(10.0);
  EXPECT_TRUE(filter.has_value());
  EXPECT_DOUBLE_EQ(filter.value(), 10.0);
}

TEST(EwmaTest, WeightsNewestByAlpha) {
  EwmaFilter filter(0.75);
  filter.Update(0.0);
  filter.Update(100.0);
  EXPECT_DOUBLE_EQ(filter.value(), 75.0);
  filter.Update(100.0);
  EXPECT_DOUBLE_EQ(filter.value(), 93.75);
}

TEST(EwmaTest, PrimeSeedsWithoutObservation) {
  EwmaFilter filter(0.5);
  filter.Prime(42.0);
  EXPECT_TRUE(filter.has_value());
  filter.Update(0.0);
  EXPECT_DOUBLE_EQ(filter.value(), 21.0);
}

TEST(EwmaTest, ResetClears) {
  EwmaFilter filter(0.5);
  filter.Update(1.0);
  filter.Reset();
  EXPECT_FALSE(filter.has_value());
}

TEST(EwmaTest, AlphaOneTracksExactly) {
  EwmaFilter filter(1.0);
  filter.Update(5.0);
  filter.Update(9.0);
  EXPECT_DOUBLE_EQ(filter.value(), 9.0);
}

TEST(UsageMeterTest, SteadyConsumptionConvergesToRate) {
  UsageMeter meter(2 * kSecond);
  // 10 KB every 100 ms == 100 KB/s.
  for (int i = 0; i < 200; ++i) {
    meter.Record(i * 100 * kMillisecond, 10.0 * kKb);
  }
  EXPECT_NEAR(meter.RateAt(200 * 100 * kMillisecond), 100.0 * kKb, 5.0 * kKb);
}

TEST(UsageMeterTest, DecaysWhenIdle) {
  UsageMeter meter(kSecond);
  meter.Record(0, 100.0 * kKb);
  const double at_once = meter.RateAt(0);
  const double later = meter.RateAt(3 * kSecond);
  EXPECT_LT(later, at_once * 0.06);  // e^-3 ~ 0.05
}

TEST(UsageMeterTest, ActiveThreshold) {
  UsageMeter meter(kSecond);
  EXPECT_FALSE(meter.ActiveAt(0));
  meter.Record(0, 64.0 * kKb);
  EXPECT_TRUE(meter.ActiveAt(0));
  EXPECT_FALSE(meter.ActiveAt(20 * kSecond));
}

TEST(UsageMeterTest, IntervalDeliverySpreadsBytes) {
  UsageMeter meter(2 * kSecond);
  // 100 KB delivered over (0, 4s]: half of it lies in any trailing 2 s
  // window inside the transfer.
  meter.Record(0, 4 * kSecond, 100.0 * kKb);
  EXPECT_NEAR(meter.RateAt(4 * kSecond), 25.0 * kKb, 0.1 * kKb);
  EXPECT_NEAR(meter.RateAt(2 * kSecond), 25.0 * kKb, 0.1 * kKb);
  // A window straddling the end of the transfer sees a partial overlap.
  EXPECT_NEAR(meter.RateAt(5 * kSecond), 12.5 * kKb, 0.1 * kKb);
}

TEST(UsageMeterTest, BackToBackTransfersReadSteadyRate) {
  UsageMeter meter(2 * kSecond);
  // Continuous 40 KB/s: 20 KB windows covering (i*0.5, (i+1)*0.5].
  for (int i = 0; i < 40; ++i) {
    meter.Record(i * 500 * kMillisecond, (i + 1) * 500 * kMillisecond, 20.0 * kKb);
  }
  // Phase independence: any query instant reads 40 KB/s.
  for (Time at = 15 * kSecond; at <= 20 * kSecond; at += 333 * kMillisecond) {
    EXPECT_NEAR(meter.RateAt(at), 40.0 * kKb, 0.5 * kKb) << "at " << at;
  }
}

TEST(UsageMeterTest, ActiveThresholdIsStrictlyGreater) {
  UsageMeter meter(2 * kSecond);
  meter.Record(0, 32.0);  // 32 bytes over a 2 s window: exactly 16.0 B/s
  EXPECT_EQ(meter.RateAt(0), 16.0);
  EXPECT_FALSE(meter.ActiveAt(0));  // the fair-share threshold is strict
  meter.Record(0, 1.0);  // 16.5 B/s
  EXPECT_TRUE(meter.ActiveAt(0));
}

TEST(UsageMeterTest, EventExpiresExactlyOneTauAfterItsEnd) {
  UsageMeter meter(kSecond);
  meter.Record(0, 10.0);
  EXPECT_EQ(meter.RateAt(kSecond - 1), 10.0);
  EXPECT_FALSE(meter.empty());
  // At end + tau the event is fully left of the window and gets pruned.
  EXPECT_EQ(meter.RateAt(kSecond), 0.0);
  EXPECT_TRUE(meter.empty());
}

TEST(UsageMeterTest, RingGrowthPreservesWindowContents) {
  UsageMeter meter(2 * kSecond);
  double expected_bytes = 0.0;
  for (int i = 0; i < 21; ++i) {  // crosses the initial 8-slot capacity twice
    meter.Record(i * 10 * kMillisecond, static_cast<double>(i + 1));
    expected_bytes += static_cast<double>(i + 1);
  }
  EXPECT_EQ(meter.RateAt(20 * 10 * kMillisecond), expected_bytes / 2.0);
  EXPECT_EQ(meter.last_event(), 20 * 10 * kMillisecond);
}

TEST(UsageMeterTest, SlotReuseAfterPruneKeepsExactAccounting) {
  UsageMeter meter(kSecond);
  for (int i = 0; i < 8; ++i) {  // fill the initial ring exactly
    meter.Record(i * 100 * kMillisecond, 10.0);
  }
  // Reading far in the future prunes everything; the head has wrapped.
  EXPECT_EQ(meter.RateAt(10 * kSecond), 0.0);
  EXPECT_TRUE(meter.empty());
  // New events land in recycled slots; the window must account exactly.
  meter.Record(10 * kSecond, 11 * kSecond, 40.0);
  meter.Record(11 * kSecond, 5.0);
  EXPECT_EQ(meter.RateAt(11 * kSecond), 45.0);
  // Half the interval delivery has slid out of the window half a tau later.
  EXPECT_EQ(meter.RateAt(11 * kSecond + 500 * kMillisecond), 25.0);
}

TEST(SlidingMaxTest, TracksMaximumInWindow) {
  SlidingMax sliding(2 * kSecond);
  EXPECT_FALSE(sliding.has_value());
  sliding.Push(0, 10.0);
  sliding.Push(kSecond, 5.0);
  EXPECT_DOUBLE_EQ(sliding.value(), 10.0);
  // The 10 ages out once the window slides past it.
  sliding.Push(3 * kSecond, 4.0);
  EXPECT_DOUBLE_EQ(sliding.value(), 5.0);
  sliding.Push(4 * kSecond, 1.0);
  EXPECT_DOUBLE_EQ(sliding.value(), 4.0);
}

TEST(SlidingMaxTest, RisesInstantly) {
  SlidingMax sliding(2 * kSecond);
  sliding.Push(0, 10.0);
  sliding.Push(1, 100.0);
  EXPECT_DOUBLE_EQ(sliding.value(), 100.0);
}

TEST(SlidingMaxTest, HoldsWithoutNewSamples) {
  // Anchored at the last push: passive estimation holds its last belief.
  SlidingMax sliding(2 * kSecond);
  sliding.Push(0, 42.0);
  EXPECT_DOUBLE_EQ(sliding.value(), 42.0);
  EXPECT_EQ(sliding.last_push(), 0);
}

TEST(SlidingMaxTest, ResetClears) {
  SlidingMax sliding(kSecond);
  sliding.Push(0, 1.0);
  sliding.Reset();
  EXPECT_FALSE(sliding.has_value());
  EXPECT_DOUBLE_EQ(sliding.value(), 0.0);
}

TEST(UsageMeterTest, ResetZeroes) {
  UsageMeter meter(kSecond);
  meter.Record(0, 100.0);
  meter.Reset();
  EXPECT_DOUBLE_EQ(meter.RateAt(0), 0.0);
}

TEST(ConnectionEstimatorTest, PrimedRttBeforeObservations) {
  ConnectionEstimator estimator;
  EXPECT_EQ(estimator.smoothed_rtt(), 21 * kMillisecond);
  EXPECT_FALSE(estimator.has_bandwidth());
  EXPECT_DOUBLE_EQ(estimator.bandwidth_bps(), 0.0);
}

TEST(ConnectionEstimatorTest, BandwidthFromWindowSubtractsRtt) {
  ConnectionEstimator estimator;
  // 64 KB window in 0.5 s + 21 ms of request/ack overhead.
  estimator.OnThroughput({kSecond, 64.0 * kKb, 521 * kMillisecond});
  EXPECT_NEAR(estimator.bandwidth_bps(), 128.0 * kKb, 1.0 * kKb);
  EXPECT_EQ(estimator.last_observation(), kSecond);
}

TEST(ConnectionEstimatorTest, SmoothingUsesThroughputAlpha) {
  ConnectionEstimator estimator;
  estimator.OnThroughput({0, 64.0 * kKb, 521 * kMillisecond});   // 128 KB/s
  estimator.OnThroughput({0, 64.0 * kKb, 1021 * kMillisecond});  // 64 KB/s
  // new = 0.875*64 + 0.125*128 = 72 KB/s
  EXPECT_NEAR(estimator.bandwidth_bps(), 72.0 * kKb, 1.0 * kKb);
}

TEST(ConnectionEstimatorTest, RttRiseCapLimitsAnomalies) {
  ConnectionEstimator estimator;  // primed at 21 ms, cap 50%
  estimator.OnRoundTrip({0, 1000 * kMillisecond});  // wild outlier
  // Capped at 21*1.5 = 31.5ms, then EWMA: 0.75*31.5 + 0.25*21 = 28.875.
  EXPECT_NEAR(static_cast<double>(estimator.smoothed_rtt()), 28875.0, 1.0);
}

TEST(ConnectionEstimatorTest, RttFallsFreely) {
  ConnectionEstimator estimator;  // primed at 21 ms
  estimator.OnRoundTrip({0, 1 * kMillisecond});
  // No cap on drops: 0.75*1 + 0.25*21 = 6 ms.
  EXPECT_NEAR(static_cast<double>(estimator.smoothed_rtt()), 6000.0, 1.0);
}

TEST(ConnectionEstimatorTest, CapDisabledWhenNonPositive) {
  EstimatorConfig config;
  config.rtt_rise_cap = 0.0;
  ConnectionEstimator estimator(config);
  estimator.OnRoundTrip({0, 1000 * kMillisecond});
  EXPECT_GT(estimator.smoothed_rtt(), 700 * kMillisecond);
}

TEST(ConnectionEstimatorTest, TinyWindowDoesNotExplode) {
  ConnectionEstimator estimator;
  // Window completed in about one RTT: effective transfer time floors.
  estimator.OnThroughput({0, 1.0 * kKb, 21 * kMillisecond});
  EXPECT_LT(estimator.bandwidth_bps(), 1.0 * kKb / 0.0001 + 1.0);
  EXPECT_GT(estimator.bandwidth_bps(), 0.0);
}

// --- Supply model ---

class SupplyModelTest : public ::testing::Test {
 protected:
  // Feeds a steady stream of windows on |connection| observing |raw_bps|,
  // one per |period|, from |start| for |count| windows.
  void FeedSteady(ConnectionId connection, double raw_bps, Time start, int count,
                  Duration period = 500 * kMillisecond) {
    for (int i = 0; i < count; ++i) {
      const Time at = start + i * period;
      const double bytes = raw_bps * DurationToSeconds(period);
      // elapsed = transfer time + smoothed rtt so the raw estimate ~raw_bps.
      const Duration elapsed = period + 21 * kMillisecond;
      model_.OnThroughput(connection, {at, bytes, elapsed});
    }
  }

  SupplyModel model_;
};

TEST_F(SupplyModelTest, SingleConnectionSupplyTracksObservedRate) {
  model_.AddConnection(1);
  FeedSteady(1, 120.0 * kKb, 0, 20);
  EXPECT_NEAR(model_.TotalSupply(), 120.0 * kKb, 6.0 * kKb);
}

TEST_F(SupplyModelTest, TwoConcurrentStreamsSumToCapacity) {
  model_.AddConnection(1);
  model_.AddConnection(2);
  // Both observe 60 KB/s concurrently (sharing a 120 KB/s link).
  for (int i = 0; i < 40; ++i) {
    const Time at = i * 500 * kMillisecond;
    const double bytes = 30.0 * kKb;
    model_.OnThroughput(1, {at, bytes, 521 * kMillisecond});
    model_.OnThroughput(2, {at + 10 * kMillisecond, bytes, 521 * kMillisecond});
  }
  EXPECT_NEAR(model_.TotalSupply(), 120.0 * kKb, 12.0 * kKb);
}

TEST_F(SupplyModelTest, AvailabilityFairShareForNewConnection) {
  model_.AddConnection(1);
  model_.AddConnection(2);
  FeedSteady(1, 120.0 * kKb, 0, 20);
  const Time now = 20 * 500 * kMillisecond;
  // Connection 2 has no recent use: it gets the fair share of one more
  // active connection joining.
  const double availability = model_.AvailabilityFor(2, now);
  EXPECT_NEAR(availability, model_.TotalSupply() / 2.0, 2.0 * kKb);
}

TEST_F(SupplyModelTest, HeadroomSplitsProportionallyToUse) {
  model_.AddConnection(1);
  model_.AddConnection(2);
  // Both connections burst at ~100 KB/s link rate but consume different
  // long-run rates (50 vs 10 KB/s), leaving headroom to compete for.
  for (int i = 0; i < 40; ++i) {
    const Time at = i * kSecond;
    model_.OnThroughput(1, {at, 50.0 * kKb, 521 * kMillisecond});
    model_.OnThroughput(2, {at + 100 * kMillisecond, 10.0 * kKb, 121 * kMillisecond});
  }
  const Time now = 40 * kSecond;
  const double a1 = model_.AvailabilityFor(1, now);
  const double a2 = model_.AvailabilityFor(2, now);
  const double supply = model_.TotalSupply();
  EXPECT_GT(a1, a2);                       // heavier user gets more headroom
  EXPECT_GE(a2, supply / 2.0 - kKb);       // floor: fair share
  EXPECT_LE(a1, supply + 1.0);             // cap: never more than the supply
}

TEST_F(SupplyModelTest, SaturatedLinkYieldsFairSharesOnly) {
  model_.AddConnection(1);
  model_.AddConnection(2);
  // Two saturating streams each observe ~60 KB/s of a 120 KB/s link; all
  // capacity is in use, so there is no headroom to compete for.
  for (int i = 0; i < 40; ++i) {
    const Time at = i * 500 * kMillisecond;
    model_.OnThroughput(1, {at, 30.0 * kKb, 521 * kMillisecond});
    model_.OnThroughput(2, {at + 10 * kMillisecond, 30.0 * kKb, 521 * kMillisecond});
  }
  // Sample at the final observation: the streams are still flowing there.
  const Time now = 39 * 500 * kMillisecond + 10 * kMillisecond;
  EXPECT_NEAR(model_.AvailabilityFor(1, now), model_.TotalSupply() / 2.0, 3.0 * kKb);
  EXPECT_NEAR(model_.AvailabilityFor(2, now), model_.TotalSupply() / 2.0, 3.0 * kKb);
}

TEST_F(SupplyModelTest, UnknownConnectionGetsFairShare) {
  model_.AddConnection(1);
  FeedSteady(1, 100.0 * kKb, 0, 20);
  const double availability = model_.AvailabilityFor(99, 10 * kSecond);
  EXPECT_NEAR(availability, model_.TotalSupply() / 2.0, 2.0 * kKb);
}

TEST_F(SupplyModelTest, NoSupplyMeansZeroAvailability) {
  model_.AddConnection(1);
  EXPECT_DOUBLE_EQ(model_.AvailabilityFor(1, 0), 0.0);
}

TEST_F(SupplyModelTest, RemoveConnectionForgetsIt) {
  model_.AddConnection(1);
  FeedSteady(1, 100.0 * kKb, 0, 5);
  model_.RemoveConnection(1);
  EXPECT_EQ(model_.EstimatorFor(1), nullptr);
  // Observations for removed connections are ignored.
  model_.OnThroughput(1, {10 * kSecond, 1000.0, kSecond});
  EXPECT_EQ(model_.EstimatorFor(1), nullptr);
}

TEST_F(SupplyModelTest, ActiveCountDropsWithIdleness) {
  model_.AddConnection(1);
  model_.AddConnection(2);
  // Interleave the feeds: observations reach the model in global time order,
  // as the event loop delivers them.
  for (int i = 0; i < 10; ++i) {
    FeedSteady(1, 100.0 * kKb, i * 500 * kMillisecond, 1);
    FeedSteady(2, 100.0 * kKb, i * 500 * kMillisecond, 1);
  }
  const Time busy = 10 * 500 * kMillisecond;
  EXPECT_EQ(model_.ActiveConnectionCount(busy), 2);
  // After 30 s of silence both decayed; count floors at 1.
  EXPECT_EQ(model_.ActiveConnectionCount(busy + 30 * kSecond), 1);
}

// Property sweep: supply estimation converges to the true rate for a wide
// range of link speeds.
class SupplyConvergence : public ::testing::TestWithParam<double> {};

TEST_P(SupplyConvergence, ConvergesWithinTenPercent) {
  const double true_bps = GetParam();
  SupplyModel model;
  model.AddConnection(1);
  for (int i = 0; i < 30; ++i) {
    const Time at = i * 500 * kMillisecond;
    model.OnThroughput(1, {at, true_bps * 0.5, 521 * kMillisecond});
  }
  EXPECT_NEAR(model.TotalSupply(), true_bps, 0.1 * true_bps);
}

INSTANTIATE_TEST_SUITE_P(Rates, SupplyConvergence,
                         ::testing::Values(10.0 * kKb, 40.0 * kKb, 120.0 * kKb, 500.0 * kKb,
                                           2000.0 * kKb));

}  // namespace
}  // namespace odyssey

// Unit tests for the Odyssey core: status, resources, tsop codec, upcall
// dispatch, the request table, and the viceroy.

#include <algorithm>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/request_table.h"
#include "src/core/resource.h"
#include "src/core/status.h"
#include "src/core/tsop_codec.h"
#include "src/core/upcall.h"
#include "src/core/viceroy.h"
#include "src/sim/simulation.h"
#include "src/strategies/laissez_faire.h"

namespace odyssey {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesMessage) {
  const Status status = NotFoundError("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kOutOfBounds, StatusCode::kNotFound,
        StatusCode::kInvalidArgument, StatusCode::kUnsupported, StatusCode::kAlreadyExists,
        StatusCode::kUnavailable}) {
    EXPECT_STRNE(StatusCodeName(code), "UNKNOWN");
  }
}

TEST(ResourceTest, Figure3cTableComplete) {
  // Figure 3(c): six generic resources with their units.
  EXPECT_EQ(std::size(kAllResources), 6u);
  EXPECT_STREQ(ResourceUnit(ResourceId::kNetworkBandwidth), "bytes/second");
  EXPECT_STREQ(ResourceUnit(ResourceId::kNetworkLatency), "microseconds");
  EXPECT_STREQ(ResourceUnit(ResourceId::kDiskCacheSpace), "kilobytes");
  EXPECT_STREQ(ResourceUnit(ResourceId::kCpu), "SPECint95");
  EXPECT_STREQ(ResourceUnit(ResourceId::kBatteryPower), "minutes");
  EXPECT_STREQ(ResourceUnit(ResourceId::kMoney), "cents");
  for (const ResourceId resource : kAllResources) {
    EXPECT_STRNE(ResourceName(resource), "Unknown");
  }
}

TEST(TsopCodecTest, RoundTripsPodStruct) {
  struct Sample {
    int a;
    double b;
  };
  const std::string packed = PackStruct(Sample{7, 2.5});
  Sample out{};
  ASSERT_TRUE(UnpackStruct(packed, &out));
  EXPECT_EQ(out.a, 7);
  EXPECT_DOUBLE_EQ(out.b, 2.5);
}

TEST(TsopCodecTest, RejectsSizeMismatch) {
  struct Sample {
    int a;
  };
  Sample out{};
  EXPECT_FALSE(UnpackStruct("wrong size", &out));
  EXPECT_FALSE(UnpackStruct("", &out));
}

// --- Upcall dispatcher ---

TEST(UpcallTest, DeliversWithParameters) {
  Simulation sim;
  UpcallDispatcher dispatcher(&sim);
  RequestId seen_request = 0;
  ResourceId seen_resource = ResourceId::kMoney;
  double seen_level = 0.0;
  dispatcher.Post(1, 42, ResourceId::kNetworkBandwidth, 1234.0,
                  [&](RequestId request, ResourceId resource, double level) {
                    seen_request = request;
                    seen_resource = resource;
                    seen_level = level;
                  });
  sim.Run();
  EXPECT_EQ(seen_request, 42u);
  EXPECT_EQ(seen_resource, ResourceId::kNetworkBandwidth);
  EXPECT_DOUBLE_EQ(seen_level, 1234.0);
  EXPECT_EQ(dispatcher.delivered_count(), 1u);
}

TEST(UpcallTest, InOrderPerReceiver) {
  Simulation sim;
  UpcallDispatcher dispatcher(&sim);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    dispatcher.Post(1, i, ResourceId::kNetworkBandwidth, 0.0,
                    [&order, i](RequestId, ResourceId, double) { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(dispatcher.last_delivered_seq(1), 5u);
}

TEST(UpcallTest, ExactlyOnce) {
  Simulation sim;
  UpcallDispatcher dispatcher(&sim);
  int count = 0;
  dispatcher.Post(1, 1, ResourceId::kNetworkBandwidth, 0.0,
                  [&](RequestId, ResourceId, double) { ++count; });
  sim.Run();
  sim.Run();  // draining again must not redeliver
  EXPECT_EQ(count, 1);
}

TEST(UpcallTest, NotDeliveredSynchronously) {
  Simulation sim;
  UpcallDispatcher dispatcher(&sim);
  bool delivered = false;
  dispatcher.Post(1, 1, ResourceId::kNetworkBandwidth, 0.0,
                  [&](RequestId, ResourceId, double) { delivered = true; });
  EXPECT_FALSE(delivered);  // queued, not run re-entrantly
  sim.Run();
  EXPECT_TRUE(delivered);
}

TEST(UpcallTest, BlockHoldsAndUnblockDrainsInOrder) {
  Simulation sim;
  UpcallDispatcher dispatcher(&sim);
  std::vector<int> order;
  dispatcher.Block(1);
  EXPECT_TRUE(dispatcher.blocked(1));
  for (int i = 0; i < 3; ++i) {
    dispatcher.Post(1, i, ResourceId::kNetworkBandwidth, 0.0,
                    [&order, i](RequestId, ResourceId, double) { order.push_back(i); });
  }
  sim.Run();
  EXPECT_TRUE(order.empty());
  dispatcher.Unblock(1);
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(UpcallTest, HandlerMayPostMore) {
  Simulation sim;
  UpcallDispatcher dispatcher(&sim);
  std::vector<int> order;
  dispatcher.Post(1, 1, ResourceId::kNetworkBandwidth, 0.0,
                  [&](RequestId, ResourceId, double) {
                    order.push_back(1);
                    dispatcher.Post(1, 2, ResourceId::kNetworkBandwidth, 0.0,
                                    [&](RequestId, ResourceId, double) { order.push_back(2); });
                  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(UpcallTest, IndependentQueuesPerApp) {
  Simulation sim;
  UpcallDispatcher dispatcher(&sim);
  dispatcher.Block(1);
  bool app2_delivered = false;
  dispatcher.Post(1, 1, ResourceId::kNetworkBandwidth, 0.0, nullptr);
  dispatcher.Post(2, 2, ResourceId::kNetworkBandwidth, 0.0,
                  [&](RequestId, ResourceId, double) { app2_delivered = true; });
  sim.Run();
  EXPECT_TRUE(app2_delivered);  // app 2 unaffected by app 1's block
  EXPECT_EQ(dispatcher.last_delivered_seq(1), 0u);
}

TEST(UpcallTest, DeliveryLatencyApplied) {
  Simulation sim;
  UpcallDispatcher dispatcher(&sim, 5 * kMillisecond);
  Time delivered_at = -1;
  dispatcher.Post(1, 1, ResourceId::kNetworkBandwidth, 0.0,
                  [&](RequestId, ResourceId, double) { delivered_at = sim.now(); });
  sim.Run();
  EXPECT_EQ(delivered_at, 5 * kMillisecond);
}

// --- Request table ---

TEST(RequestTableTest, RegisterAndCancel) {
  RequestTable table;
  const RequestId id = table.Register(1, ResourceDescriptor{});
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.Cancel(id).ok());
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.Cancel(id).code(), StatusCode::kNotFound);
}

TEST(RequestTableTest, TakeViolatedConsumesOnlyViolations) {
  RequestTable table;
  ResourceDescriptor in_window{ResourceId::kNetworkBandwidth, 0.0, 100.0, nullptr};
  ResourceDescriptor narrow{ResourceId::kNetworkBandwidth, 50.0, 60.0, nullptr};
  table.Register(1, in_window);
  const RequestId narrow_id = table.Register(1, narrow);
  const auto violated = table.TakeViolated(ResourceId::kNetworkBandwidth, 1, 75.0);
  ASSERT_EQ(violated.size(), 1u);
  EXPECT_EQ(violated[0].id, narrow_id);
  EXPECT_EQ(table.size(), 1u);  // the satisfied window remains
}

TEST(RequestTableTest, TakeViolatedScopedToAppAndResource) {
  RequestTable table;
  ResourceDescriptor descriptor{ResourceId::kNetworkBandwidth, 50.0, 60.0, nullptr};
  table.Register(1, descriptor);
  table.Register(2, descriptor);
  descriptor.resource = ResourceId::kBatteryPower;
  table.Register(1, descriptor);
  EXPECT_TRUE(table.TakeViolated(ResourceId::kNetworkBandwidth, 3, 0.0).empty());
  EXPECT_EQ(table.TakeViolated(ResourceId::kNetworkBandwidth, 1, 0.0).size(), 1u);
  EXPECT_EQ(table.size(), 2u);
}

TEST(RequestTableTest, BoundaryLevelsAreInsideWindow) {
  RequestTable table;
  table.Register(1, ResourceDescriptor{ResourceId::kNetworkBandwidth, 50.0, 60.0, nullptr});
  EXPECT_TRUE(table.TakeViolated(ResourceId::kNetworkBandwidth, 1, 50.0).empty());
  EXPECT_TRUE(table.TakeViolated(ResourceId::kNetworkBandwidth, 1, 60.0).empty());
  EXPECT_EQ(table.TakeViolated(ResourceId::kNetworkBandwidth, 1, 49.999).size(), 1u);
}

TEST(RequestTableTest, EntriesForFilters) {
  RequestTable table;
  table.Register(1, ResourceDescriptor{ResourceId::kNetworkBandwidth, 0, 1, nullptr});
  table.Register(1, ResourceDescriptor{ResourceId::kMoney, 0, 1, nullptr});
  EXPECT_EQ(table.EntriesFor(1, ResourceId::kMoney).size(), 1u);
  EXPECT_TRUE(table.EntriesFor(2, ResourceId::kMoney).empty());
}

TEST(RequestTableTest, SlotReuseAfterCancelDropsStaleWindow) {
  RequestTable table;
  const RequestId first =
      table.Register(1, ResourceDescriptor{ResourceId::kNetworkBandwidth, 50.0, 60.0, nullptr});
  ASSERT_TRUE(table.Cancel(first).ok());
  // Re-registering reuses the freed slot; only the new window may be visible
  // anywhere — the interval index must not retain the cancelled bounds.
  const RequestId second =
      table.Register(1, ResourceDescriptor{ResourceId::kNetworkBandwidth, 200.0, 300.0, nullptr});
  EXPECT_NE(second, first);
  EXPECT_EQ(table.Cancel(first).code(), StatusCode::kNotFound);
  std::vector<AppId> apps;
  table.CollectViolatedApps(ResourceId::kNetworkBandwidth, 250.0, &apps);
  EXPECT_TRUE(apps.empty());  // inside the new window
  table.CollectViolatedApps(ResourceId::kNetworkBandwidth, 55.0, &apps);
  ASSERT_EQ(apps.size(), 1u);  // inside the *old* window, outside the new one
  EXPECT_EQ(apps[0], 1);
  const auto entries = table.EntriesFor(1, ResourceId::kNetworkBandwidth);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].id, second);
  EXPECT_EQ(entries[0].descriptor.lower, 200.0);
  const auto violated = table.TakeViolated(ResourceId::kNetworkBandwidth, 1, 55.0);
  ASSERT_EQ(violated.size(), 1u);
  EXPECT_EQ(violated[0].id, second);
  EXPECT_EQ(table.size(), 0u);
}

TEST(RequestTableTest, ClassScopedProbesDoNotCrossClasses) {
  RequestTable table;
  // App 1's windows live in class 1, app 2's in class 2.  A class-2 probe at
  // a level far above app 1's window must not sweep app 1 in — that
  // cross-class bleed is exactly what made whole-table idle-level probes
  // quadratic.
  table.Register(1, ResourceDescriptor{ResourceId::kNetworkBandwidth, 50.0, 100.0, nullptr}, 1);
  table.Register(2, ResourceDescriptor{ResourceId::kNetworkBandwidth, 150.0, 200.0, nullptr}, 2);
  std::vector<AppId> apps;
  table.CollectViolatedApps(ResourceId::kNetworkBandwidth, 2, 300.0, &apps);
  ASSERT_EQ(apps.size(), 1u);  // only app 2, even though 300 > app 1's upper
  EXPECT_EQ(apps[0], 2);
  apps.clear();
  table.CollectViolatedApps(ResourceId::kNetworkBandwidth, 1, 10.0, &apps);
  ASSERT_EQ(apps.size(), 1u);  // only app 1, even though 10 < app 2's lower
  EXPECT_EQ(apps[0], 1);
  apps.clear();
  // The class-less overload unions every class.
  table.CollectViolatedApps(ResourceId::kNetworkBandwidth, 125.0, &apps);
  std::sort(apps.begin(), apps.end());
  ASSERT_EQ(apps.size(), 2u);
  EXPECT_EQ(apps[0], 1);
  EXPECT_EQ(apps[1], 2);
}

TEST(RequestTableTest, ReclassifyMovesWindowsBetweenClasses) {
  RequestTable table;
  table.Register(1, ResourceDescriptor{ResourceId::kNetworkBandwidth, 50.0, 100.0, nullptr}, 1);
  table.Register(1, ResourceDescriptor{ResourceId::kNetworkBandwidth, 60.0, 90.0, nullptr}, 1);
  table.Reclassify(1, 2);
  std::vector<AppId> apps;
  // The old class is empty now; the new one answers for both windows.
  table.CollectViolatedApps(ResourceId::kNetworkBandwidth, 1, 300.0, &apps);
  EXPECT_TRUE(apps.empty());
  table.CollectViolatedApps(ResourceId::kNetworkBandwidth, 2, 300.0, &apps);
  EXPECT_EQ(apps.size(), 2u);
  apps.clear();
  // Probes stay exact after the move: a level inside both windows finds
  // nothing, one between them finds only the narrower window's owner.
  table.CollectViolatedApps(ResourceId::kNetworkBandwidth, 2, 75.0, &apps);
  EXPECT_TRUE(apps.empty());
  table.CollectViolatedApps(ResourceId::kNetworkBandwidth, 2, 55.0, &apps);
  EXPECT_EQ(apps.size(), 1u);
}

TEST(RequestTableTest, IdsStayUniqueAcrossSlotChurn) {
  RequestTable table;
  std::vector<RequestId> retired;
  for (int round = 0; round < 5; ++round) {
    const RequestId id =
        table.Register(7, ResourceDescriptor{ResourceId::kNetworkBandwidth, 0.0, 1.0, nullptr});
    for (const RequestId old : retired) {
      EXPECT_NE(id, old);
      // A stale handle from an earlier round never cancels the new occupant.
      EXPECT_EQ(table.Cancel(old).code(), StatusCode::kNotFound);
    }
    EXPECT_EQ(table.size(), 1u);
    ASSERT_TRUE(table.Cancel(id).ok());
    retired.push_back(id);
  }
  EXPECT_EQ(table.size(), 0u);
}

// --- Viceroy ---

class ViceroyTest : public ::testing::Test {
 protected:
  ViceroyTest() : viceroy_(&sim_, std::make_unique<LaissezFaireStrategy>()) {}

  Simulation sim_;
  Viceroy viceroy_;
};

TEST_F(ViceroyTest, RegistersApplications) {
  const AppId a = viceroy_.RegisterApplication("alpha");
  const AppId b = viceroy_.RegisterApplication("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(viceroy_.ApplicationName(a), "alpha");
  EXPECT_EQ(viceroy_.ApplicationName(999), "<unknown>");
}

TEST_F(ViceroyTest, StaticResourcesHaveDefaults) {
  const AppId app = viceroy_.RegisterApplication("app");
  EXPECT_GT(viceroy_.CurrentLevel(app, ResourceId::kBatteryPower), 0.0);
  EXPECT_GT(viceroy_.CurrentLevel(app, ResourceId::kDiskCacheSpace), 0.0);
  EXPECT_GT(viceroy_.CurrentLevel(app, ResourceId::kCpu), 0.0);
  EXPECT_GT(viceroy_.CurrentLevel(app, ResourceId::kMoney), 0.0);
}

TEST_F(ViceroyTest, RequestWithinWindowRegisters) {
  const AppId app = viceroy_.RegisterApplication("app");
  ResourceDescriptor descriptor{ResourceId::kBatteryPower, 0.0, 1e9, nullptr};
  const RequestResult result = viceroy_.Request(app, descriptor);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.id, 0u);
  EXPECT_TRUE(viceroy_.Cancel(result.id).ok());
}

TEST_F(ViceroyTest, RequestOutsideWindowReturnsLevel) {
  // §4.2: "If the resource is currently outside the bounds of the tolerance
  // window, an error code and the current available resource level are
  // returned."
  const AppId app = viceroy_.RegisterApplication("app");
  ResourceDescriptor descriptor{ResourceId::kBatteryPower, 1e9, 2e9, nullptr};
  const RequestResult result = viceroy_.Request(app, descriptor);
  EXPECT_FALSE(result.ok());
  EXPECT_DOUBLE_EQ(result.current_level,
                   viceroy_.CurrentLevel(app, ResourceId::kBatteryPower));
}

TEST_F(ViceroyTest, StaticLevelChangeFiresUpcall) {
  const AppId app = viceroy_.RegisterApplication("app");
  double seen_level = -1.0;
  ResourceDescriptor descriptor{ResourceId::kBatteryPower, 100.0,
                                std::numeric_limits<double>::max(),
                                [&](RequestId, ResourceId, double level) { seen_level = level; }};
  ASSERT_TRUE(viceroy_.Request(app, descriptor).ok());
  viceroy_.SetStaticLevel(ResourceId::kBatteryPower, 50.0);  // battery draining
  sim_.Run();
  EXPECT_DOUBLE_EQ(seen_level, 50.0);
  // The registration was consumed: further changes are silent.
  seen_level = -1.0;
  viceroy_.SetStaticLevel(ResourceId::kBatteryPower, 10.0);
  sim_.Run();
  EXPECT_DOUBLE_EQ(seen_level, -1.0);
}

TEST_F(ViceroyTest, ChangeWithinWindowIsSilent) {
  const AppId app = viceroy_.RegisterApplication("app");
  bool fired = false;
  ResourceDescriptor descriptor{ResourceId::kMoney, 0.0, 100.0,
                                [&](RequestId, ResourceId, double) { fired = true; }};
  ASSERT_TRUE(viceroy_.Request(app, descriptor).ok());
  viceroy_.SetStaticLevel(ResourceId::kMoney, 20.0);
  sim_.Run();
  EXPECT_FALSE(fired);
}

TEST_F(ViceroyTest, CancelPreventsUpcall) {
  const AppId app = viceroy_.RegisterApplication("app");
  bool fired = false;
  ResourceDescriptor descriptor{ResourceId::kMoney, 10.0, 100.0,
                                [&](RequestId, ResourceId, double) { fired = true; }};
  const RequestResult result = viceroy_.Request(app, descriptor);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(viceroy_.Cancel(result.id).ok());
  viceroy_.SetStaticLevel(ResourceId::kMoney, 0.0);
  sim_.Run();
  EXPECT_FALSE(fired);
}

TEST_F(ViceroyTest, BandwidthAndLatencyNotSettable) {
  const AppId app = viceroy_.RegisterApplication("app");
  viceroy_.SetStaticLevel(ResourceId::kNetworkBandwidth, 1e6);
  EXPECT_DOUBLE_EQ(viceroy_.CurrentLevel(app, ResourceId::kNetworkBandwidth), 0.0);
}

TEST_F(ViceroyTest, UpcallsForTwoAppsIndependent) {
  const AppId a = viceroy_.RegisterApplication("a");
  const AppId b = viceroy_.RegisterApplication("b");
  int fired_a = 0;
  int fired_b = 0;
  ResourceDescriptor descriptor{ResourceId::kMoney, 10.0, 100.0, nullptr};
  descriptor.handler = [&](RequestId, ResourceId, double) { ++fired_a; };
  ASSERT_TRUE(viceroy_.Request(a, descriptor).ok());
  descriptor.handler = [&](RequestId, ResourceId, double) { ++fired_b; };
  ASSERT_TRUE(viceroy_.Request(b, descriptor).ok());
  viceroy_.SetStaticLevel(ResourceId::kMoney, 5.0);
  sim_.Run();
  EXPECT_EQ(fired_a, 1);
  EXPECT_EQ(fired_b, 1);
}

}  // namespace
}  // namespace odyssey

// Tests for the three adaptive applications and the bitstream consumer.

#include <gtest/gtest.h>

#include "src/apps/bitstream_app.h"
#include "src/apps/speech_frontend.h"
#include "src/apps/video_player.h"
#include "src/apps/web_browser.h"
#include "src/metrics/experiment.h"

namespace odyssey {
namespace {

constexpr double kKb = 1024.0;

// --- Video player ---

TEST(VideoPlayerTest, Jpeg99PlaysCleanlyAtHighBandwidth) {
  ExperimentRig rig(1, StrategyKind::kOdyssey);
  VideoPlayerOptions options;
  options.fixed_track = 0;
  options.frames_to_play = 300;
  VideoPlayer player(&rig.client(), options);
  rig.Replay(MakeConstant(kHighBandwidth, 2 * kMinute), /*prime=*/false);
  player.Start();
  rig.sim().RunUntil(40 * kSecond);
  ASSERT_TRUE(player.finished());
  EXPECT_EQ(player.outcomes().size(), 300u);
  // The high bandwidth is sufficient to fetch JPEG(99) frames (§6.2.2).
  EXPECT_LE(player.DropsBetween(0, 40 * kSecond), 6);
  EXPECT_NEAR(player.MeanFidelityBetween(0, 40 * kSecond), 1.0, 0.02);
}

TEST(VideoPlayerTest, Jpeg50PlaysCleanlyAtLowBandwidth) {
  ExperimentRig rig(1, StrategyKind::kOdyssey);
  VideoPlayerOptions options;
  options.fixed_track = 1;
  options.frames_to_play = 300;
  VideoPlayer player(&rig.client(), options);
  rig.Replay(MakeConstant(kLowBandwidth, 2 * kMinute), /*prime=*/false);
  player.Start();
  rig.sim().RunUntil(40 * kSecond);
  EXPECT_LE(player.DropsBetween(0, 40 * kSecond), 6);
  EXPECT_NEAR(player.MeanFidelityBetween(0, 40 * kSecond), 0.5, 0.02);
}

TEST(VideoPlayerTest, Jpeg99DropsHeavilyAtLowBandwidth) {
  ExperimentRig rig(1, StrategyKind::kOdyssey);
  VideoPlayerOptions options;
  options.fixed_track = 0;
  options.frames_to_play = 300;
  VideoPlayer player(&rig.client(), options);
  rig.Replay(MakeConstant(kLowBandwidth, 2 * kMinute), /*prime=*/false);
  player.Start();
  rig.sim().RunUntil(40 * kSecond);
  // 40/112 of frames can arrive; roughly two-thirds drop.
  EXPECT_GT(player.DropsBetween(0, 40 * kSecond), 150);
}

TEST(VideoPlayerTest, AdaptiveConvergesToJpeg99AtHighBandwidth) {
  ExperimentRig rig(2, StrategyKind::kOdyssey);
  VideoPlayerOptions options;
  options.frames_to_play = 300;
  VideoPlayer player(&rig.client(), options);
  rig.Replay(MakeConstant(kHighBandwidth, 2 * kMinute), /*prime=*/false);
  player.Start();
  rig.sim().RunUntil(40 * kSecond);
  EXPECT_EQ(player.current_track(), 0);
  // After the brief startup transient, fidelity is full.
  EXPECT_GT(player.MeanFidelityBetween(10 * kSecond, 40 * kSecond), 0.95);
}

TEST(VideoPlayerTest, AdaptiveDowngradesOnStepDown) {
  ExperimentRig rig(3, StrategyKind::kOdyssey);
  VideoPlayerOptions options;
  options.frames_to_play = 900;
  VideoPlayer player(&rig.client(), options);
  const Time measure = rig.Replay(MakeStepDown());  // 30 s priming at high
  player.Start();
  rig.sim().RunUntil(measure + kWaveformLength);
  // During the low half the player should sit on JPEG(50).
  EXPECT_EQ(player.current_track(), 1);
  EXPECT_GT(player.track_switches(), 0);
  const double late_fidelity =
      player.MeanFidelityBetween(measure + 40 * kSecond, measure + 60 * kSecond);
  EXPECT_NEAR(late_fidelity, 0.5, 0.05);
  // Much better than static JPEG(99) would do: only transition drops.
  EXPECT_LT(player.DropsBetween(measure, measure + kWaveformLength), 80);
}

TEST(VideoPlayerTest, AdaptiveUpgradesOnStepUp) {
  ExperimentRig rig(4, StrategyKind::kOdyssey);
  VideoPlayerOptions options;
  options.frames_to_play = 900;
  VideoPlayer player(&rig.client(), options);
  const Time measure = rig.Replay(MakeStepUp());
  player.Start();
  rig.sim().RunUntil(measure + kWaveformLength);
  EXPECT_EQ(player.current_track(), 0);
  const double late_fidelity =
      player.MeanFidelityBetween(measure + 40 * kSecond, measure + 60 * kSecond);
  EXPECT_GT(late_fidelity, 0.9);
}

TEST(VideoPlayerTest, AdaptiveStaysOnJpeg50ThroughImpulseUp) {
  // Paper: "For Impulse-Up, Odyssey shows only JPEG(50) frames" — the two
  // second excursion to high bandwidth is not worth chasing far.
  ExperimentRig rig(6, StrategyKind::kOdyssey);
  VideoPlayerOptions options;
  options.frames_to_play = 900;
  VideoPlayer player(&rig.client(), options);
  const Time measure = rig.Replay(MakeImpulseUp());
  player.Start();
  rig.sim().RunUntil(measure + kWaveformLength);
  const double fidelity = player.MeanFidelityBetween(measure, measure + kWaveformLength);
  EXPECT_NEAR(fidelity, 0.5, 0.1);
  // Far fewer drops than a static JPEG(99) would suffer on this waveform.
  EXPECT_LT(player.DropsBetween(measure, measure + kWaveformLength), 100);
}

TEST(VideoPlayerTest, AdaptiveNearFullFidelityThroughImpulseDown) {
  // Paper: "for Impulse-Down almost all JPEG(99) frames".
  ExperimentRig rig(7, StrategyKind::kOdyssey);
  VideoPlayerOptions options;
  options.frames_to_play = 900;
  VideoPlayer player(&rig.client(), options);
  const Time measure = rig.Replay(MakeImpulseDown());
  player.Start();
  rig.sim().RunUntil(measure + kWaveformLength);
  EXPECT_GT(player.MeanFidelityBetween(measure, measure + kWaveformLength), 0.9);
}

TEST(WebBrowserTest, ImpulseUpBrieflyFoolsTheBrowser) {
  // Paper: "In the Impulse-Up case, Odyssey is fooled into fetching better
  // quality images for a brief period by the impulse's transient increase
  // in bandwidth" — fidelity rises above JPEG(50)'s 0.5 but stays far from
  // full quality.
  ExperimentRig rig(6, StrategyKind::kOdyssey);
  WebBrowser browser(&rig.client(), WebBrowserOptions{});
  const Time measure = rig.Replay(MakeImpulseUp());
  browser.Start();
  rig.sim().RunUntil(measure + kWaveformLength);
  browser.Stop();
  const double fidelity = browser.MeanFidelityBetween(measure, measure + kWaveformLength);
  EXPECT_GT(fidelity, 0.45);
  EXPECT_LT(fidelity, 0.75);
}

TEST(SpeechFrontEndTest, RemoteStrategySlowerOnStepWaveforms) {
  // Paper Figure 12: always-remote pays ~0.1s more than hybrid on the Step
  // waveforms.
  ExperimentRig rig(6, StrategyKind::kOdyssey);
  SpeechFrontEndOptions options;
  options.mode = SpeechMode::kAlwaysRemote;
  SpeechFrontEnd remote(&rig.client(), options);
  const Time measure = rig.Replay(MakeStepUp());
  remote.Start();
  rig.sim().RunUntil(measure + kWaveformLength);
  remote.Stop();
  ExperimentRig rig2(6, StrategyKind::kOdyssey);
  SpeechFrontEndOptions hybrid_options;
  hybrid_options.mode = SpeechMode::kAlwaysHybrid;
  SpeechFrontEnd hybrid(&rig2.client(), hybrid_options);
  const Time measure2 = rig2.Replay(MakeStepUp());
  hybrid.Start();
  rig2.sim().RunUntil(measure2 + kWaveformLength);
  hybrid.Stop();
  EXPECT_GT(remote.MeanSecondsBetween(measure, measure + kWaveformLength),
            hybrid.MeanSecondsBetween(measure2, measure2 + kWaveformLength) + 0.05);
}

TEST(VideoPlayerTest, FidelityAveragesDisplayedFramesOnly) {
  ExperimentRig rig(5, StrategyKind::kOdyssey);
  VideoPlayerOptions options;
  options.fixed_track = 0;
  options.frames_to_play = 100;
  VideoPlayer player(&rig.client(), options);
  rig.Replay(MakeConstant(kLowBandwidth, kMinute), /*prime=*/false);
  player.Start();
  rig.sim().RunUntil(20 * kSecond);
  // Heavy drops, but every displayed frame is JPEG(99): fidelity stays 1.0.
  EXPECT_GT(player.DropsBetween(0, 20 * kSecond), 10);
  EXPECT_DOUBLE_EQ(player.MeanFidelityBetween(0, 20 * kSecond), 1.0);
}

// --- Web browser ---

TEST(WebBrowserTest, FullQualityMeetsGoalOnEthernet) {
  ExperimentRig rig(1, StrategyKind::kOdyssey);
  WebBrowserOptions options;
  options.fixed_level = 0;
  WebBrowser browser(&rig.client(), options);
  rig.Replay(MakeEthernetBaseline(kMinute), /*prime=*/false);
  browser.Start();
  rig.sim().RunUntil(30 * kSecond);
  browser.Stop();
  const double mean = browser.MeanSecondsBetween(0, 30 * kSecond);
  // The paper's Ethernet baseline: 0.20 s per fetch.
  EXPECT_NEAR(mean, 0.20, 0.03);
}

TEST(WebBrowserTest, FullQualityMissesGoalAtLowBandwidth) {
  ExperimentRig rig(2, StrategyKind::kOdyssey);
  WebBrowserOptions options;
  options.fixed_level = 0;
  WebBrowser browser(&rig.client(), options);
  rig.Replay(MakeConstant(kLowBandwidth, 2 * kMinute), /*prime=*/false);
  browser.Start();
  rig.sim().RunUntil(60 * kSecond);
  browser.Stop();
  EXPECT_GT(browser.MeanSecondsBetween(0, 60 * kSecond), DurationToSeconds(kWebGoal));
}

TEST(WebBrowserTest, AdaptiveMeetsGoalAtBothBandwidths) {
  for (const double bandwidth : {kHighBandwidth, kLowBandwidth}) {
    ExperimentRig rig(3, StrategyKind::kOdyssey);
    WebBrowser browser(&rig.client(), WebBrowserOptions{});
    const Time measure = rig.Replay(MakeConstant(bandwidth, 2 * kMinute));
    browser.Start();
    rig.sim().RunUntil(measure + kMinute);
    browser.Stop();
    EXPECT_LE(browser.MeanSecondsBetween(measure, measure + kMinute),
              DurationToSeconds(kWebGoal) * 1.05)
        << "bandwidth " << bandwidth;
  }
}

TEST(WebBrowserTest, AdaptivePicksFullQualityAtHighBandwidth) {
  ExperimentRig rig(4, StrategyKind::kOdyssey);
  WebBrowser browser(&rig.client(), WebBrowserOptions{});
  const Time measure = rig.Replay(MakeConstant(kHighBandwidth, 2 * kMinute));
  browser.Start();
  rig.sim().RunUntil(measure + kMinute);
  browser.Stop();
  EXPECT_GT(browser.MeanFidelityBetween(measure, measure + kMinute), 0.9);
}

TEST(WebBrowserTest, AdaptiveDegradesToJpeg50AtLowBandwidth) {
  // §6.2.2: "At low bandwidth JPEG(50) is the best possible."
  ExperimentRig rig(5, StrategyKind::kOdyssey);
  WebBrowser browser(&rig.client(), WebBrowserOptions{});
  const Time measure = rig.Replay(MakeConstant(kLowBandwidth, 2 * kMinute));
  browser.Start();
  rig.sim().RunUntil(measure + kMinute);
  browser.Stop();
  EXPECT_NEAR(browser.MeanFidelityBetween(measure, measure + kMinute), 0.5, 0.05);
}

TEST(WebBrowserTest, PredictTimeMonotoneInBandwidth) {
  WebSessionInfo info;
  info.level_bytes[0] = kWebImageBytes;
  info.level_bytes[1] = kWebJpeg50Bytes;
  const Duration slow = WebBrowser::PredictTime(info, 0, 10.0 * kKb, 21 * kMillisecond);
  const Duration fast = WebBrowser::PredictTime(info, 0, 1000.0 * kKb, 21 * kMillisecond);
  EXPECT_GT(slow, fast);
  EXPECT_EQ(WebBrowser::PredictTime(info, 0, 0.0, 0),
            std::numeric_limits<Duration>::max());
}

// --- Speech front end ---

TEST(SpeechFrontEndTest, HybridFasterThanRemoteAtLowBandwidth) {
  ExperimentRig rig(1, StrategyKind::kOdyssey);
  SpeechFrontEndOptions hybrid_options;
  hybrid_options.mode = SpeechMode::kAlwaysHybrid;
  SpeechFrontEnd hybrid(&rig.client(), hybrid_options);
  rig.Replay(MakeConstant(kLowBandwidth, 5 * kMinute), /*prime=*/false);
  hybrid.Start();
  rig.sim().RunUntil(kMinute);
  hybrid.Stop();

  ExperimentRig rig2(1, StrategyKind::kOdyssey);
  SpeechFrontEndOptions remote_options;
  remote_options.mode = SpeechMode::kAlwaysRemote;
  SpeechFrontEnd remote(&rig2.client(), remote_options);
  rig2.Replay(MakeConstant(kLowBandwidth, 5 * kMinute), /*prime=*/false);
  remote.Start();
  rig2.sim().RunUntil(kMinute);
  remote.Stop();

  const double hybrid_mean = hybrid.MeanSecondsBetween(0, kMinute);
  const double remote_mean = remote.MeanSecondsBetween(0, kMinute);
  EXPECT_LT(hybrid_mean, remote_mean);
  EXPECT_NEAR(hybrid_mean, 0.85, 0.08);
  EXPECT_NEAR(remote_mean, 1.15, 0.12);
}

TEST(SpeechFrontEndTest, AdaptiveMatchesAlwaysHybrid) {
  // Figure 12: "Odyssey duplicates the always-hybrid strategy" at the
  // reference bandwidths.
  ExperimentRig rig(2, StrategyKind::kOdyssey);
  SpeechFrontEnd adaptive(&rig.client(), SpeechFrontEndOptions{});
  const Time measure = rig.Replay(MakeConstant(kHighBandwidth, 5 * kMinute));
  adaptive.Start();
  rig.sim().RunUntil(measure + kMinute);
  adaptive.Stop();
  ASSERT_FALSE(adaptive.outcomes().empty());
  int hybrid_count = 0;
  int total = 0;
  for (const auto& outcome : adaptive.outcomes()) {
    if (outcome.started >= measure) {
      ++total;
      hybrid_count += outcome.plan == static_cast<int>(SpeechMode::kAlwaysHybrid) ? 1 : 0;
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_EQ(hybrid_count, total);
  EXPECT_NEAR(adaptive.MeanSecondsBetween(measure, measure + kMinute), 0.78, 0.08);
}

// --- Bitstream app ---

TEST(BitstreamAppTest, StartExposesConnection) {
  ExperimentRig rig(1, StrategyKind::kOdyssey);
  BitstreamApp app(&rig.client(), "bitstream-1");
  rig.Replay(MakeConstant(kHighBandwidth, kMinute), /*prime=*/false);
  app.Start();
  rig.sim().RunUntil(kSecond);
  EXPECT_TRUE(app.running());
  EXPECT_GT(app.connection(), 0u);
  app.Stop();
  rig.sim().RunUntil(2 * kSecond);
  EXPECT_FALSE(app.running());
}

TEST(BitstreamAppTest, DrivesSupplyEstimateToLinkRate) {
  ExperimentRig rig(2, StrategyKind::kOdyssey);
  BitstreamApp app(&rig.client(), "bitstream-1");
  rig.Replay(MakeConstant(kHighBandwidth, kMinute), /*prime=*/false);
  app.Start();
  rig.sim().RunUntil(20 * kSecond);
  ASSERT_NE(rig.centralized(), nullptr);
  EXPECT_NEAR(rig.centralized()->TotalSupply(rig.sim().now()), kHighBandwidth,
              0.1 * kHighBandwidth);
}

}  // namespace
}  // namespace odyssey

// The strategy-conformance suite: every strategy in the builtin registry,
// through the same kit (strategy_conformance.h), under the same assertions.
//
// A strategy earns its registry entry by passing this suite unmodified:
//   * the shared workload runs clean under the full oracle set (for audited
//     strategies that includes the fair-share floor and supply audits),
//   * reruns are bit-identical (every upcall, every sampled double),
//   * the degenerate one-app/one-connection input reproduces the seed
//     centralized strategy's behavior exactly (audited strategies),
//   * no upcall is ever delivered for a cancelled or rejected window,
//   * delivered bytes never exceed the link's capacity integral.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/check/oracles.h"
#include "src/strategies/arbitration_strategy.h"
#include "tests/strategy_conformance.h"

namespace odyssey {
namespace {

using conformance::ConformanceRig;
using conformance::ConformanceWorkload;
using conformance::DegenerateWorkload;

class StrategyConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  const StrategyInfo& Info() const {
    const StrategyInfo* info = StrategyRegistry::Builtin().Find(GetParam());
    EXPECT_NE(info, nullptr);
    return *info;
  }
};

// Gtest test names cannot contain '-'.
std::string TestName(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

INSTANTIATE_TEST_SUITE_P(Zoo, StrategyConformanceTest,
                         ::testing::ValuesIn(StrategyRegistry::Builtin().Names()), TestName);

TEST_P(StrategyConformanceTest, SharedWorkloadRunsCleanUnderOracles) {
  const FuzzScenario scenario = ConformanceWorkload(GetParam());
  const conformance::ConformanceRun run = conformance::Run(scenario);
  EXPECT_EQ(run.result.violation_count, 0u) << FormatViolations(run.result.violations);
  // The workload must actually exercise the strategy: windows register and
  // adaptation happens (otherwise the clean oracle run proves nothing).
  EXPECT_GT(run.result.requests_granted, 0u);
  EXPECT_GT(run.result.upcalls_delivered, 0u);
}

TEST_P(StrategyConformanceTest, ByteConservationHolds) {
  const FuzzScenario scenario = ConformanceWorkload(GetParam());
  FuzzRunOptions options;
  const FuzzRunResult result = RunFuzzScenario(scenario, options);
  const double bound = IntegrateCapacityBytes(scenario, scenario.horizon + options.drain_grace);
  EXPECT_LE(result.bytes_delivered, bound);
  EXPECT_GT(result.bytes_delivered, 0.0);
}

TEST_P(StrategyConformanceTest, RerunsAreBitIdentical) {
  const conformance::ConformanceRun first = conformance::Run(ConformanceWorkload(GetParam()));
  const conformance::ConformanceRun second = conformance::Run(ConformanceWorkload(GetParam()));
  ASSERT_EQ(first.log.upcalls.size(), second.log.upcalls.size());
  for (size_t i = 0; i < first.log.upcalls.size(); ++i) {
    EXPECT_EQ(first.log.upcalls[i], second.log.upcalls[i]) << "upcall " << i;
  }
  ASSERT_EQ(first.log.samples.size(), second.log.samples.size());
  for (size_t i = 0; i < first.log.samples.size(); ++i) {
    // Exact equality, not tolerance: determinism is bit-level.
    EXPECT_EQ(first.log.samples[i], second.log.samples[i]) << "sample " << i;
  }
  EXPECT_EQ(first.result.upcalls_delivered, second.result.upcalls_delivered);
  EXPECT_EQ(first.result.requests_granted, second.result.requests_granted);
  EXPECT_EQ(first.result.admission_rejects, second.result.admission_rejects);
  EXPECT_EQ(first.result.bytes_delivered, second.result.bytes_delivered);
}

TEST_P(StrategyConformanceTest, DegenerateInputMatchesSeedStrategy) {
  if (!Info().audited) {
    GTEST_SKIP() << GetParam() << " defines its own isolated estimates; equivalence to the "
                 << "centralized arbiter is not part of its contract";
  }
  const conformance::ConformanceRun seed = conformance::Run(DegenerateWorkload("odyssey"));
  const conformance::ConformanceRun zoo = conformance::Run(DegenerateWorkload(GetParam()));
  // One app, one flow, one server: the hierarchy has a single leaf and the
  // broker has nothing to arbitrate, so behavior must be bit-identical.
  EXPECT_EQ(zoo.result.admission_rejects, 0u);
  ASSERT_EQ(zoo.log.upcalls.size(), seed.log.upcalls.size());
  for (size_t i = 0; i < seed.log.upcalls.size(); ++i) {
    EXPECT_EQ(zoo.log.upcalls[i], seed.log.upcalls[i]) << "upcall " << i;
  }
  ASSERT_EQ(zoo.log.samples.size(), seed.log.samples.size());
  for (size_t i = 0; i < seed.log.samples.size(); ++i) {
    EXPECT_EQ(zoo.log.samples[i], seed.log.samples[i]) << "sample " << i;
  }
  EXPECT_EQ(zoo.result.bytes_delivered, seed.result.bytes_delivered);
}

TEST_P(StrategyConformanceTest, FairShareFloorForAdmittedFlows) {
  if (!Info().audited) {
    GTEST_SKIP() << GetParam() << " runs un-audited: no shared supply to divide";
  }
  // Four apps, one flow each, identical traffic: every admitted flow must
  // keep at least (roughly) its fair share of the shared estimate.
  ConformanceRig rig(GetParam());
  std::vector<AppId> apps;
  for (int i = 0; i < 4; ++i) {
    apps.push_back(rig.AddApp("app" + std::to_string(i), "server" + std::to_string(i) + ":0"));
  }
  rig.Stimulate(120.0 * 1024.0);
  const Time now = rig.sim().now();
  const double supply = rig.strategy().TotalSupply(now);
  ASSERT_GT(supply, 0.0);
  for (const AppId app : apps) {
    EXPECT_GE(rig.strategy().AvailabilityFor(app, now), 0.99 * supply / 4.0) << "app " << app;
  }
}

TEST_P(StrategyConformanceTest, NoUpcallAfterCancel) {
  ConformanceRig rig(GetParam());
  const AppId app = rig.AddApp("app", "server:0");
  rig.Stimulate(60.0 * 1024.0);
  const RequestResult window = rig.RequestWindow(app, 0.9, 1.1);
  ASSERT_TRUE(window.ok());
  ASSERT_TRUE(rig.viceroy().Cancel(window.id).ok());
  // Push availability far outside the cancelled window; nothing may fire.
  rig.Stimulate(180.0 * 1024.0);
  EXPECT_EQ(rig.UpcallsFor(app), 0u);
}

TEST_P(StrategyConformanceTest, UpcallDeliveredWithoutCancel) {
  // Positive control for NoUpcallAfterCancel: the same stimulus with the
  // window left registered must deliver an upcall for every strategy.
  ConformanceRig rig(GetParam());
  const AppId app = rig.AddApp("app", "server:0");
  rig.Stimulate(60.0 * 1024.0);
  const RequestResult window = rig.RequestWindow(app, 0.9, 1.1);
  ASSERT_TRUE(window.ok());
  rig.Stimulate(180.0 * 1024.0);
  EXPECT_GT(rig.UpcallsFor(app), 0u);
}

TEST_P(StrategyConformanceTest, RegistryMetadataMatchesBehavior) {
  ConformanceRig rig(GetParam());
  EXPECT_EQ(rig.strategy().name(), Info().name);
  EXPECT_EQ(rig.strategy().audit_surface() != nullptr, Info().audited);
  EXPECT_EQ(rig.strategy().arbitration() != nullptr, Info().admission);
}

TEST_P(StrategyConformanceTest, RejectRegistersNothingAndDeliversNoUpcalls) {
  if (!Info().admission) {
    GTEST_SKIP() << GetParam() << " does not admission-control";
  }
  ConformanceRig rig(GetParam());
  const AppId greedy = rig.AddApp("greedy", "server:0");
  const AppId late = rig.AddApp("late", "server:1");
  rig.Stimulate(100.0 * 1024.0);
  // The first app holds two windows, committing nearly the whole estimate;
  // the second app's window cannot fit and must be rejected, registering
  // nothing.  (One fair-share window per app can never overcommit: the
  // broker only rejects when commitments accumulate.)
  const RequestResult first = rig.RequestWindow(greedy, 0.5, 1.2);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.admission.verdict, AdmissionVerdict::kAdmitted);
  const RequestResult extra = rig.RequestWindow(greedy, 0.5, 1.2);
  ASSERT_TRUE(extra.ok());
  const RequestResult second = rig.RequestWindow(late, 0.9, 1.2);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.admission.verdict, AdmissionVerdict::kRejected);
  EXPECT_EQ(second.id, 0u);
  // Push the estimate around: the rejected app holds no window, so no
  // upcall may ever reach it.
  rig.Stimulate(40.0 * 1024.0);
  rig.Stimulate(180.0 * 1024.0);
  EXPECT_EQ(rig.UpcallsFor(late), 0u);
}

}  // namespace
}  // namespace odyssey

// Tests for odycampaign: the scenario registry, seed derivation, campaign
// expansion, the worker pool, jobs-invariance of artifacts, and the
// regression gate.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/sync.h"
#include "src/harness/bench_artifact.h"
#include "src/harness/builtin_scenarios.h"
#include "src/harness/campaign.h"
#include "src/harness/campaign_runner.h"
#include "src/harness/scenario_registry.h"
#include "src/harness/worker_pool.h"
#include "src/sim/random.h"

namespace odyssey {
namespace {

// A deterministic two-variant scenario for runner tests: cheap, but with
// metrics that depend on the seed so ordering mistakes are visible.
Scenario MakeToyScenario(const std::string& name) {
  Scenario scenario;
  scenario.name = name;
  scenario.description = "toy scenario for harness tests";
  for (const std::string variant_name : {"alpha", "beta"}) {
    const double bias = variant_name == "alpha" ? 0.0 : 1000.0;
    scenario.variants.push_back(ScenarioVariant{
        variant_name, [bias](uint64_t seed, TraceRecorder*) -> TrialMetrics {
          Rng rng(seed);
          return {
              {"latency_ms", bias + rng.Uniform(1.0, 2.0), MetricDirection::kLowerIsBetter},
              {"fidelity", rng.Uniform(0.5, 1.0), MetricDirection::kHigherIsBetter},
              {"events", static_cast<double>(1 + rng.UniformInt(100)), MetricDirection::kEither},
          };
        }});
  }
  return scenario;
}

ScenarioRegistry MakeToyRegistry() {
  ScenarioRegistry registry;
  EXPECT_TRUE(registry.Register(MakeToyScenario("toy")).ok());
  return registry;
}

CampaignSpec MakeToyCampaign(int trials = 8) {
  CampaignSpec spec;
  spec.name = "toy_campaign";
  spec.description = "toy campaign for harness tests";
  spec.seed = 42;
  spec.sweeps = {{"toy", {}, trials}};
  return spec;
}

// --- ScenarioRegistry ---

TEST(ScenarioRegistryTest, RegisterAndFind) {
  ScenarioRegistry registry;
  ASSERT_TRUE(registry.Register(MakeToyScenario("zeta")).ok());
  ASSERT_TRUE(registry.Register(MakeToyScenario("alpha")).ok());
  EXPECT_EQ(registry.size(), 2u);
  ASSERT_NE(registry.Find("zeta"), nullptr);
  EXPECT_EQ(registry.Find("zeta")->variants.size(), 2u);
  EXPECT_EQ(registry.Find("missing"), nullptr);
  // Names come back sorted regardless of registration order.
  EXPECT_EQ(registry.scenario_names(), (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(ScenarioRegistryTest, RejectsInvalidScenarios) {
  ScenarioRegistry registry;
  Scenario unnamed = MakeToyScenario("");
  EXPECT_EQ(registry.Register(unnamed).code(), StatusCode::kInvalidArgument);

  Scenario empty = MakeToyScenario("empty");
  empty.variants.clear();
  EXPECT_EQ(registry.Register(empty).code(), StatusCode::kInvalidArgument);

  Scenario duplicated = MakeToyScenario("dup");
  duplicated.variants.push_back(duplicated.variants.front());
  EXPECT_EQ(registry.Register(duplicated).code(), StatusCode::kInvalidArgument);

  ASSERT_TRUE(registry.Register(MakeToyScenario("taken")).ok());
  EXPECT_EQ(registry.Register(MakeToyScenario("taken")).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ScenarioRegistryTest, FindVariant) {
  const Scenario scenario = MakeToyScenario("toy");
  ASSERT_NE(scenario.FindVariant("alpha"), nullptr);
  EXPECT_EQ(scenario.FindVariant("alpha")->name, "alpha");
  EXPECT_EQ(scenario.FindVariant("gamma"), nullptr);
}

TEST(ScenarioRegistryTest, BuiltinsRegisterCleanly) {
  ScenarioRegistry registry;
  RegisterBuiltinScenarios(&registry);
  EXPECT_EQ(registry.size(), 11u);  // one per figure/ablation/extension + mobility pair
  for (const std::string& name : registry.scenario_names()) {
    const Scenario* scenario = registry.Find(name);
    ASSERT_NE(scenario, nullptr);
    EXPECT_FALSE(scenario->description.empty()) << name;
    EXPECT_FALSE(scenario->variants.empty()) << name;
  }
}

// --- DeriveTrialSeed ---

TEST(DeriveTrialSeedTest, MatchesSequentialSplitMixStream) {
  // The O(1) jump must agree with walking the stream: seed i is output
  // number i + 1 of the SplitMix64 sequence rooted at the campaign seed.
  for (uint64_t campaign_seed : {0ull, 1ull, 1997ull, 0xdeadbeefcafeull}) {
    SplitMix64 stream(campaign_seed);
    for (uint64_t index = 0; index < 100; ++index) {
      EXPECT_EQ(DeriveTrialSeed(campaign_seed, index), stream.Next())
          << "campaign_seed=" << campaign_seed << " index=" << index;
    }
  }
}

TEST(DeriveTrialSeedTest, DistinctAcrossIndicesAndCampaigns) {
  std::set<uint64_t> seen;
  for (uint64_t index = 0; index < 4096; ++index) {
    seen.insert(DeriveTrialSeed(1997, index));
  }
  EXPECT_EQ(seen.size(), 4096u);
  // Nearby campaign seeds must not collide over small index ranges either.
  for (uint64_t campaign_seed = 0; campaign_seed < 64; ++campaign_seed) {
    for (uint64_t index = 0; index < 64; ++index) {
      seen.insert(DeriveTrialSeed(campaign_seed, index));
    }
  }
  EXPECT_EQ(seen.size(), 4096u + 64u * 64u);
}

TEST(DeriveTrialSeedTest, GoldenValuesPinCrossPlatformStability) {
  // Fixed-width arithmetic only: these exact values must hold on every
  // platform, or committed baselines stop matching fresh runs.
  EXPECT_EQ(DeriveTrialSeed(0, 0), 0xe220a8397b1dcdafull);
  EXPECT_EQ(DeriveTrialSeed(0, 1), 0x6e789e6aa1b965f4ull);
  EXPECT_EQ(DeriveTrialSeed(1997, 0), 0x880f66bab6e34ba9ull);
}

// --- ExpandCampaign ---

TEST(ExpandCampaignTest, FlattensSweepsInOrder) {
  const ScenarioRegistry registry = MakeToyRegistry();
  CampaignSpec spec = MakeToyCampaign(3);
  std::vector<PlannedTrial> plan;
  ASSERT_TRUE(ExpandCampaign(spec, registry, &plan).ok());
  ASSERT_EQ(plan.size(), 6u);  // 2 variants x 3 trials
  EXPECT_EQ(plan[0].variant, "alpha");
  EXPECT_EQ(plan[2].variant, "alpha");
  EXPECT_EQ(plan[3].variant, "beta");
  for (size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].trial_index, i);
    EXPECT_EQ(plan[i].seed, DeriveTrialSeed(spec.seed, i));
    EXPECT_EQ(plan[i].trial, static_cast<int>(i % 3));
  }
}

TEST(ExpandCampaignTest, RejectsUnknownNamesAndBadCounts) {
  const ScenarioRegistry registry = MakeToyRegistry();
  std::vector<PlannedTrial> plan;

  CampaignSpec unknown_scenario = MakeToyCampaign();
  unknown_scenario.sweeps[0].scenario = "missing";
  EXPECT_EQ(ExpandCampaign(unknown_scenario, registry, &plan).code(), StatusCode::kNotFound);

  CampaignSpec unknown_variant = MakeToyCampaign();
  unknown_variant.sweeps[0].variants = {"alpha", "gamma"};
  EXPECT_EQ(ExpandCampaign(unknown_variant, registry, &plan).code(), StatusCode::kNotFound);

  CampaignSpec no_trials = MakeToyCampaign(0);
  EXPECT_EQ(ExpandCampaign(no_trials, registry, &plan).code(), StatusCode::kInvalidArgument);
}

TEST(ExpandCampaignTest, BuiltinCampaignsAllExpand) {
  ScenarioRegistry registry;
  RegisterBuiltinScenarios(&registry);
  for (const CampaignSpec& campaign : BuiltinCampaigns()) {
    std::vector<PlannedTrial> plan;
    EXPECT_TRUE(ExpandCampaign(campaign, registry, &plan).ok()) << campaign.name;
    EXPECT_FALSE(plan.empty()) << campaign.name;
  }
  EXPECT_NE(FindCampaign(BuiltinCampaigns(), "tier1"), nullptr);
  EXPECT_EQ(FindCampaign(BuiltinCampaigns(), "nope"), nullptr);
}

// --- Worker pool ---

TEST(WorkerPoolTest, CoversEveryIndexExactlyOnce) {
  for (int jobs : {1, 2, 8}) {
    constexpr size_t kCount = 500;
    std::vector<std::atomic<int>> hits(kCount);
    RunIndexedTasks(jobs, kCount, [&hits](size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " i=" << i;
    }
  }
}

TEST(WorkerPoolTest, HandlesEdgeCounts) {
  int calls = 0;
  RunIndexedTasks(4, 0, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  RunIndexedTasks(4, 1, [&calls](size_t) { ++calls; });  // runs inline
  EXPECT_EQ(calls, 1);
  EXPECT_GE(DefaultJobCount(), 1);
}

TEST(WorkerPoolTest, DestructionAbandonsUnclaimedIndices) {
  constexpr int kJobs = 4;
  constexpr size_t kCount = 1000;
  Mutex mu;
  CondVar entered_cv;
  CondVar gate_cv;
  int entered = 0;
  bool gate_open = false;
  std::atomic<size_t> ran{0};
  {
    WorkerPool pool(kJobs, kCount, [&](size_t) {
      {
        MutexLock lock(&mu);
        ++entered;
        entered_cv.NotifyAll();
        gate_cv.Wait(&mu, [&] { return gate_open; });
      }
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    // Park every worker inside its first claimed task, so 996 indices are
    // queued but unclaimed when the pool is torn down.
    {
      MutexLock lock(&mu);
      entered_cv.Wait(&mu, [&] { return entered >= kJobs; });
    }
    pool.Abandon();
    pool.Abandon();  // repeated Abandon is a documented no-op
    {
      MutexLock lock(&mu);
      gate_open = true;
      gate_cv.NotifyAll();
    }
  }  // ~WorkerPool joins the workers; unclaimed indices never run
  EXPECT_EQ(ran.load(), static_cast<size_t>(kJobs));
  EXPECT_LT(ran.load(), kCount);
}

TEST(WorkerPoolTest, JoinRethrowsFirstExceptionAndAbandonsSiblings) {
  constexpr size_t kCount = 64;
  std::atomic<size_t> ran{0};
  WorkerPool pool(4, kCount, [&ran](size_t i) {
    if (i == 3) {
      throw std::runtime_error("task failed mid-claim");
    }
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_THROW(pool.Join(), std::runtime_error);
  // The throw abandons the run: siblings finish their in-flight task and
  // stop claiming, so the failing index plus the unclaimed tail never
  // count as completed.
  EXPECT_LT(pool.completed(), kCount);
  EXPECT_EQ(pool.completed(), ran.load());
}

TEST(WorkerPoolTest, DoubleJoinIsSafe) {
  // Failure path: the first Join() rethrows, the second is a no-op (the
  // exception is consumed, not re-armed).
  WorkerPool failing(2, 8, [](size_t i) {
    if (i == 0) {
      throw std::runtime_error("boom");
    }
  });
  EXPECT_THROW(failing.Join(), std::runtime_error);
  EXPECT_NO_THROW(failing.Join());

  // Success path: repeated Join() stays a no-op and completed() is stable.
  std::atomic<size_t> ran{0};
  WorkerPool clean(2, 16, [&ran](size_t) { ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_NO_THROW(clean.Join());
  EXPECT_NO_THROW(clean.Join());
  EXPECT_EQ(clean.completed(), static_cast<size_t>(16));
  EXPECT_EQ(ran.load(), static_cast<size_t>(16));
}

// --- Campaign runner and jobs invariance ---

TEST(CampaignRunnerTest, ResultsInPlanOrderWithDerivedSeeds) {
  const ScenarioRegistry registry = MakeToyRegistry();
  const CampaignSpec spec = MakeToyCampaign(4);
  CampaignResult result;
  ASSERT_TRUE(RunCampaign(spec, registry, CampaignRunOptions{}, &result).ok());
  ASSERT_EQ(result.trials.size(), 8u);
  for (size_t i = 0; i < result.trials.size(); ++i) {
    EXPECT_EQ(result.trials[i].plan.trial_index, i);
    EXPECT_EQ(result.trials[i].metrics.size(), 3u);
  }
  // beta trials carry the +1000 bias, so a slot mix-up is loud.
  EXPECT_LT(result.trials[0].metrics[0].value, 100.0);
  EXPECT_GT(result.trials[4].metrics[0].value, 900.0);
}

TEST(CampaignRunnerTest, FailsCleanlyOnBadSpec) {
  const ScenarioRegistry registry = MakeToyRegistry();
  CampaignSpec spec = MakeToyCampaign();
  spec.sweeps[0].scenario = "missing";
  CampaignResult result;
  EXPECT_EQ(RunCampaign(spec, registry, CampaignRunOptions{}, &result).code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(result.trials.empty());
}

TEST(CampaignRunnerTest, ArtifactBytesAreInvariantUnderJobs) {
  const ScenarioRegistry registry = MakeToyRegistry();
  const CampaignSpec spec = MakeToyCampaign(16);
  std::string reference;
  for (int jobs : {1, 2, 4, 13}) {
    CampaignRunOptions options;
    options.jobs = jobs;
    CampaignResult result;
    ASSERT_TRUE(RunCampaign(spec, registry, options, &result).ok());
    BenchArtifact artifact;
    ASSERT_TRUE(AggregateCampaign(result, &artifact).ok());
    const std::string json = ArtifactToJson(artifact);
    if (jobs == 1) {
      reference = json;
    } else {
      EXPECT_EQ(json, reference) << "jobs=" << jobs << " changed the artifact bytes";
    }
  }
}

// --- Artifacts ---

BenchArtifact MakeToyArtifact() {
  const ScenarioRegistry registry = MakeToyRegistry();
  CampaignResult result;
  EXPECT_TRUE(RunCampaign(MakeToyCampaign(8), registry, CampaignRunOptions{}, &result).ok());
  BenchArtifact artifact;
  EXPECT_TRUE(AggregateCampaign(result, &artifact).ok());
  return artifact;
}

TEST(BenchArtifactTest, AggregateSummarizesPerVariantMetrics) {
  const BenchArtifact artifact = MakeToyArtifact();
  EXPECT_EQ(artifact.schema_version, BenchArtifact::kSchemaVersion);
  EXPECT_EQ(artifact.campaign, "toy_campaign");
  EXPECT_EQ(artifact.campaign_seed, 42u);
  EXPECT_EQ(artifact.trials, 16u);
  ASSERT_EQ(artifact.metrics.size(), 6u);  // 2 variants x 3 metrics
  EXPECT_EQ(artifact.metrics[0].variant, "alpha");
  EXPECT_EQ(artifact.metrics[0].metric, "latency_ms");
  EXPECT_EQ(artifact.metrics[0].direction, MetricDirection::kLowerIsBetter);
  EXPECT_EQ(artifact.metrics[0].stats.count, 8);
  EXPECT_GE(artifact.metrics[0].stats.p99, artifact.metrics[0].stats.p50);
  EXPECT_EQ(artifact.metrics[3].variant, "beta");
  EXPECT_GT(artifact.metrics[3].stats.mean, 1000.0);
}

TEST(BenchArtifactTest, AggregateRejectsInconsistentTrialMetrics) {
  CampaignResult result;
  result.spec = MakeToyCampaign();
  TrialOutcome a;
  a.plan = {"toy", "alpha", 0, 0, 1};
  a.metrics = {{"latency_ms", 1.0, MetricDirection::kLowerIsBetter}};
  TrialOutcome b = a;
  b.plan.trial = 1;
  b.metrics = {{"renamed", 1.0, MetricDirection::kLowerIsBetter}};
  result.trials = {a, b};
  BenchArtifact artifact;
  EXPECT_EQ(AggregateCampaign(result, &artifact).code(), StatusCode::kInvalidArgument);
}

TEST(BenchArtifactTest, JsonRoundTrip) {
  const BenchArtifact artifact = MakeToyArtifact();
  const std::string json = ArtifactToJson(artifact);
  BenchArtifact parsed;
  ASSERT_TRUE(ParseArtifact(json, &parsed).ok());
  EXPECT_EQ(parsed.schema_version, artifact.schema_version);
  EXPECT_EQ(parsed.campaign, artifact.campaign);
  EXPECT_EQ(parsed.description, artifact.description);
  EXPECT_EQ(parsed.campaign_seed, artifact.campaign_seed);
  EXPECT_EQ(parsed.trials, artifact.trials);
  ASSERT_EQ(parsed.metrics.size(), artifact.metrics.size());
  for (size_t i = 0; i < parsed.metrics.size(); ++i) {
    EXPECT_EQ(parsed.metrics[i].scenario, artifact.metrics[i].scenario);
    EXPECT_EQ(parsed.metrics[i].variant, artifact.metrics[i].variant);
    EXPECT_EQ(parsed.metrics[i].metric, artifact.metrics[i].metric);
    EXPECT_EQ(parsed.metrics[i].direction, artifact.metrics[i].direction);
    EXPECT_DOUBLE_EQ(parsed.metrics[i].stats.mean, artifact.metrics[i].stats.mean);
    EXPECT_DOUBLE_EQ(parsed.metrics[i].stats.p95, artifact.metrics[i].stats.p95);
  }
  // Serializing the parse reproduces the original bytes exactly.
  EXPECT_EQ(ArtifactToJson(parsed), json);
}

TEST(BenchArtifactTest, ParseRejectsGarbage) {
  BenchArtifact artifact;
  EXPECT_EQ(ParseArtifact("not json", &artifact).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseArtifact("[1, 2]", &artifact).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseArtifact("{\"campaign\": \"x\"}", &artifact).code(),
            StatusCode::kInvalidArgument);

  // A future schema version must be refused, not half-read.
  std::string wrong_version = ArtifactToJson(MakeToyArtifact());
  const size_t at = wrong_version.find("\"schema_version\": 1");
  ASSERT_NE(at, std::string::npos);
  wrong_version.replace(at, std::string("\"schema_version\": 1").size(),
                        "\"schema_version\": 2");
  EXPECT_EQ(ParseArtifact(wrong_version, &artifact).code(), StatusCode::kInvalidArgument);
}

// --- The regression gate ---

TEST(CompareArtifactsTest, IdenticalArtifactsPass) {
  const BenchArtifact artifact = MakeToyArtifact();
  const ComparisonReport report = CompareArtifacts(artifact, artifact, 5.0);
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.HasRegression());
  EXPECT_TRUE(report.failures.empty());
  EXPECT_EQ(report.rows.size(), artifact.metrics.size());
}

TEST(CompareArtifactsTest, SyntheticRegressionFailsTheGate) {
  // The CI contract: against a baseline whose lower-is-better mean was
  // recorded 20% below today's value, compare must fail the build.
  const BenchArtifact current = MakeToyArtifact();
  BenchArtifact regressed_baseline = current;
  for (MetricSummary& summary : regressed_baseline.metrics) {
    if (summary.direction == MetricDirection::kLowerIsBetter) {
      summary.stats.mean *= 0.8;
    }
  }
  const ComparisonReport report = CompareArtifacts(regressed_baseline, current, 5.0);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasRegression());
  int regressed = 0;
  for (const ComparisonRow& row : report.rows) {
    if (row.regressed) {
      ++regressed;
      EXPECT_EQ(row.direction, MetricDirection::kLowerIsBetter);
      EXPECT_GT(row.delta_pct, 5.0);
    }
  }
  EXPECT_EQ(regressed, 2);  // latency_ms for both variants
}

TEST(CompareArtifactsTest, DirectionAwareGating) {
  const BenchArtifact baseline = MakeToyArtifact();

  // Fidelity (higher-is-better) dropping beyond tolerance regresses...
  BenchArtifact worse = baseline;
  for (MetricSummary& summary : worse.metrics) {
    if (summary.direction == MetricDirection::kHigherIsBetter) {
      summary.stats.mean *= 0.9;
    }
  }
  EXPECT_TRUE(CompareArtifacts(baseline, worse, 5.0).HasRegression());
  // ...but the same drop passes a looser tolerance.
  EXPECT_FALSE(CompareArtifacts(baseline, worse, 15.0).HasRegression());

  // Improvements never regress: lower latency and higher fidelity pass 0%.
  BenchArtifact better = baseline;
  for (MetricSummary& summary : better.metrics) {
    if (summary.direction == MetricDirection::kLowerIsBetter) {
      summary.stats.mean *= 0.5;
    } else if (summary.direction == MetricDirection::kHigherIsBetter) {
      summary.stats.mean *= 1.5;
    }
  }
  EXPECT_FALSE(CompareArtifacts(baseline, better, 0.0).HasRegression());

  // kEither metrics never gate, no matter how far they move.
  BenchArtifact wild = baseline;
  for (MetricSummary& summary : wild.metrics) {
    if (summary.direction == MetricDirection::kEither) {
      summary.stats.mean *= 100.0;
    }
  }
  EXPECT_FALSE(CompareArtifacts(baseline, wild, 0.0).HasRegression());
}

TEST(CompareArtifactsTest, StructuralMismatchesAreFailures) {
  const BenchArtifact baseline = MakeToyArtifact();

  BenchArtifact renamed = baseline;
  renamed.campaign = "other";
  EXPECT_FALSE(CompareArtifacts(baseline, renamed, 5.0).ok());

  BenchArtifact reseeded = baseline;
  reseeded.campaign_seed = 7;
  EXPECT_FALSE(CompareArtifacts(baseline, reseeded, 5.0).ok());

  // A metric that vanished from the current run fails even if everything
  // still present matches.
  BenchArtifact pruned = baseline;
  pruned.metrics.pop_back();
  EXPECT_FALSE(CompareArtifacts(baseline, pruned, 5.0).ok());
  // The reverse — current grew a metric — is fine.
  EXPECT_TRUE(CompareArtifacts(pruned, baseline, 5.0).ok());
}

}  // namespace
}  // namespace odyssey

// Compile-pass fixture for the odysan thread-safety annotations: the full
// vocabulary — ODY_CAPABILITY mutex, MutexLock RAII scope, ODY_GUARDED_BY
// members, ODY_REQUIRES / ODY_EXCLUDES contracts, CondVar waits — used
// correctly must stay clean under clang++ -Wthread-safety -Werror.  Paired
// with thread_safety_violation.cc, which proves the analysis is actually
// armed (a misuse fails to compile).
#include "src/core/contract.h"
#include "src/core/sync.h"

namespace odyssey {

class Mailbox {
 public:
  void Deposit(int value) ODY_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    value_ = value;
    full_ = true;
    cv_.NotifyOne();
  }

  int Take() ODY_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (!full_) {
      cv_.Wait(&mu_);  // ODY_REQUIRES(*mu): the lock above satisfies it
    }
    full_ = false;
    return DrainLocked();
  }

 private:
  // The caller (Take) holds mu_, which ODY_REQUIRES makes explicit.
  int DrainLocked() ODY_REQUIRES(mu_) { return value_; }

  Mutex mu_;
  CondVar cv_;
  int value_ ODY_GUARDED_BY(mu_) = 0;
  bool full_ ODY_GUARDED_BY(mu_) = false;
};

void Use() {
  Mailbox box;
  box.Deposit(7);
  static_cast<void>(box.Take());
}

}  // namespace odyssey

// Compile-fail fixture: dropping a [[nodiscard]] Status must not compile.
//
// This file is NOT part of any build target.  The status_nodiscard_compile_fail
// ctest (tests/CMakeLists.txt) compiles it with -Werror=unused-result and
// expects the compiler to reject it; if it ever compiles, the nodiscard
// contract on Status has regressed.

#include "src/core/status.h"

namespace odyssey {

Status ProduceStatus() { return UnavailableError("always"); }

void IgnoresTheResult() {
  ProduceStatus();  // must fail: ignoring a [[nodiscard] ] Status
}

}  // namespace odyssey

// Compile-PASS fixture (the sibling of the WILL_FAIL fixtures here): with
// -DODYSSEY_TRACE_DISABLED every ODY_TRACE_* macro must still compile
// cleanly under -Wall -Wextra -Werror — including call sites that hoist
// values or span ids used only for tracing — while evaluating nothing.

#include <cstdint>

#include "src/trace/trace_macros.h"

namespace odyssey {

inline void InstrumentedFunction(TraceRecorder* recorder) {
  const std::uint64_t span = ODY_TRACE_SPAN_ID(recorder);
  const double hoisted_for_tracing = 42.0;
  ODY_TRACE_BEGIN1(recorder, kRpc, "call", 10, span, "bytes", hoisted_for_tracing);
  ODY_TRACE_END1(recorder, kRpc, "call", 20, span, "rtt_us", 10);
  ODY_TRACE_INSTANT(recorder, kFault, "drop", 15, 3);
  ODY_TRACE_INSTANT2(recorder, kApp, "adapt", 16, 4, "level", 1.0, "window", 2.0);
  ODY_TRACE_COUNTER(recorder, kViceroy, "queue_depth", 17, 0, 3);
}

}  // namespace odyssey

// Compile-fail fixture for the odysan thread-safety annotations: touching
// an ODY_GUARDED_BY member without holding its mutex must not compile when
// Clang's -Wthread-safety analysis runs with -Werror.  The CMake harness
// registers this with WILL_FAIL (Clang builds only — other compilers expand
// the annotations to nothing and the analysis does not exist).
#include "src/core/contract.h"
#include "src/core/sync.h"

namespace odyssey {

class Counter {
 public:
  // VIOLATION: writes count_ without acquiring mu_.  The analysis reports
  // "writing variable 'count_' requires holding mutex 'mu_'".
  void Bump() { ++count_; }

 private:
  Mutex mu_;
  int count_ ODY_GUARDED_BY(mu_) = 0;
};

void Use() {
  Counter counter;
  counter.Bump();
}

}  // namespace odyssey

// Unit tests for the discrete-event simulation kernel.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/event_queue.h"
#include "src/sim/random.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace odyssey {
namespace {

TEST(TimeTest, SecondsRoundTrip) {
  EXPECT_EQ(SecondsToDuration(1.0), kSecond);
  EXPECT_EQ(SecondsToDuration(0.001), kMillisecond);
  EXPECT_EQ(SecondsToDuration(0.0), 0);
  EXPECT_DOUBLE_EQ(DurationToSeconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(DurationToMillis(kSecond), 1000.0);
}

TEST(TimeTest, SecondsToDurationRounds) {
  EXPECT_EQ(SecondsToDuration(1e-7), 0);       // below resolution
  EXPECT_EQ(SecondsToDuration(1.5e-6), 2);     // rounds to nearest
  EXPECT_EQ(SecondsToDuration(-1.5e-6), -2);   // symmetric for negatives
}

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.ScheduleAt(30, [&] { order.push_back(3); });
  queue.ScheduleAt(10, [&] { order.push_back(1); });
  queue.ScheduleAt(20, [&] { order.push_back(2); });
  Time when = 0;
  while (queue.RunNext(&when)) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimeIsFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  Time when = 0;
  while (queue.RunNext(&when)) {
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue queue;
  bool fired = false;
  EventHandle handle = queue.ScheduleAt(10, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.Cancel();
  EXPECT_FALSE(handle.pending());
  Time when = 0;
  EXPECT_FALSE(queue.RunNext(&when));
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelAfterFireIsNoop) {
  EventQueue queue;
  int fires = 0;
  EventHandle handle = queue.ScheduleAt(10, [&] { ++fires; });
  Time when = 0;
  EXPECT_TRUE(queue.RunNext(&when));
  EXPECT_FALSE(handle.pending());
  handle.Cancel();  // must not crash or affect anything
  EXPECT_EQ(fires, 1);
}

TEST(EventQueueTest, DefaultHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.Cancel();  // no-op
}

TEST(EventQueueTest, PeekSkipsTombstones) {
  EventQueue queue;
  EventHandle early = queue.ScheduleAt(10, [] {});
  queue.ScheduleAt(20, [] {});
  early.Cancel();
  Time when = 0;
  ASSERT_TRUE(queue.PeekTime(&when));
  EXPECT_EQ(when, 20);
}

// One audit record per consecutively fired same-timestamp pair, carrying
// the tie-break key (when, prev_seq, seq) the determinism oracle checks.
TEST(EventQueueTest, TieObserverReportsSameTimePairs) {
  EventQueue queue;
  struct Pair {
    Time when;
    uint64_t prev_seq;
    uint64_t seq;
  };
  std::vector<Pair> pairs;
  queue.set_tie_observer([&pairs](Time when, uint64_t prev_seq, uint64_t seq) {
    pairs.push_back({when, prev_seq, seq});
  });
  queue.PostAt(5, [] {});   // seq 0
  queue.PostAt(5, [] {});   // seq 1
  queue.PostAt(5, [] {});   // seq 2
  queue.PostAt(10, [] {});  // seq 3
  queue.PostAt(10, [] {});  // seq 4
  queue.PostAt(20, [] {});  // seq 5: lone timestamp, never reported
  Time when = 0;
  while (queue.RunNext(&when)) {
  }
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0].when, 5);
  EXPECT_EQ(pairs[0].prev_seq, 0u);
  EXPECT_EQ(pairs[0].seq, 1u);
  EXPECT_EQ(pairs[1].when, 5);
  EXPECT_EQ(pairs[1].prev_seq, 1u);
  EXPECT_EQ(pairs[1].seq, 2u);
  EXPECT_EQ(pairs[2].when, 10);
  EXPECT_EQ(pairs[2].prev_seq, 3u);
  EXPECT_EQ(pairs[2].seq, 4u);
}

// Distinct timestamps never produce audit records, even back-to-back, and
// clearing the observer stops the audit without disturbing pop order.
TEST(EventQueueTest, TieObserverSilentAcrossDistinctTimes) {
  EventQueue queue;
  int reports = 0;
  queue.set_tie_observer([&reports](Time, uint64_t, uint64_t) { ++reports; });
  std::vector<int> order;
  queue.PostAt(1, [&order] { order.push_back(1); });
  queue.PostAt(2, [&order] { order.push_back(2); });
  queue.PostAt(3, [&order] { order.push_back(3); });
  Time when = 0;
  while (queue.RunNext(&when)) {
  }
  EXPECT_EQ(reports, 0);
  queue.set_tie_observer({});  // detach: same-time events below go unaudited
  queue.PostAt(4, [&order] { order.push_back(4); });
  queue.PostAt(4, [&order] { order.push_back(5); });
  while (queue.RunNext(&when)) {
  }
  EXPECT_EQ(reports, 0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

#ifdef ODYSSEY_FUZZ_SELFTEST
// The seeded tie-break-removal mutation: same-timestamp events pop
// newest-first, which the tie observer surfaces as inverted seq pairs.
// This is the signal the same-time-order oracle must convert into a
// violation (check_test.cc covers that half).
TEST(EventQueueTest, SelftestLifoTiesInvertsSameTimePops) {
  EventQueue queue;
  queue.set_selftest_lifo_ties(true);
  std::vector<int> order;
  bool inverted = false;
  queue.set_tie_observer([&inverted](Time, uint64_t prev_seq, uint64_t seq) {
    if (seq <= prev_seq) {
      inverted = true;
    }
  });
  for (int i = 0; i < 4; ++i) {
    queue.PostAt(7, [&order, i] { order.push_back(i); });
  }
  Time when = 0;
  while (queue.RunNext(&when)) {
  }
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1, 0}));
  EXPECT_TRUE(inverted);
}
#endif  // ODYSSEY_FUZZ_SELFTEST

TEST(SimulationTest, ClockAdvancesWithEvents) {
  Simulation sim;
  Time seen = -1;
  sim.Schedule(5 * kSecond, [&] { seen = sim.now(); });
  sim.Run();
  EXPECT_EQ(seen, 5 * kSecond);
  EXPECT_EQ(sim.now(), 5 * kSecond);
}

TEST(SimulationTest, NegativeDelayClampsToNow) {
  Simulation sim;
  bool ran = false;
  sim.Schedule(kSecond, [&] {
    sim.Schedule(-5, [&] { ran = true; });
  });
  sim.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), kSecond);
}

TEST(SimulationTest, RunUntilStopsAtDeadlineAndSetsClock) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(1 * kSecond, [&] { ++fired; });
  sim.Schedule(10 * kSecond, [&] { ++fired; });
  sim.RunUntil(5 * kSecond);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 5 * kSecond);
  sim.RunUntil(20 * kSecond);
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, StepRunsOneEvent) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(1, [&] { ++fired; });
  sim.Schedule(2, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulationTest, EventsScheduledDuringRunExecute) {
  Simulation sim;
  std::vector<Time> times;
  sim.Schedule(kSecond, [&] {
    times.push_back(sim.now());
    sim.Schedule(kSecond, [&] { times.push_back(sim.now()); });
  });
  sim.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], kSecond);
  EXPECT_EQ(times[1], 2 * kSecond);
}

TEST(RngTest, DeterministicBySeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntBounded) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, NormalHasRoughMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sumsq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.Normal(5.0, 2.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / kN;
  const double var = sumsq / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, JitterFactorStaysPositive) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.JitterFactor(0.5), 0.0);
  }
}

}  // namespace
}  // namespace odyssey

// Unit tests for replay traces and the paper's reference waveforms.

#include <gtest/gtest.h>

#include "src/tracemod/replay_trace.h"
#include "src/tracemod/waveforms.h"

namespace odyssey {
namespace {

TEST(ReplayTraceTest, EmptyTraceYieldsZeroSegment) {
  ReplayTrace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.TotalDuration(), 0);
  EXPECT_DOUBLE_EQ(trace.At(5 * kSecond).bandwidth_bps, 0.0);
}

TEST(ReplayTraceTest, AtSelectsSegmentByTime) {
  ReplayTrace trace;
  trace.Append(10 * kSecond, 100.0, 1000);
  trace.Append(20 * kSecond, 200.0, 2000);
  EXPECT_DOUBLE_EQ(trace.At(0).bandwidth_bps, 100.0);
  EXPECT_DOUBLE_EQ(trace.At(10 * kSecond - 1).bandwidth_bps, 100.0);
  EXPECT_DOUBLE_EQ(trace.At(10 * kSecond).bandwidth_bps, 200.0);
  EXPECT_DOUBLE_EQ(trace.At(29 * kSecond).bandwidth_bps, 200.0);
}

TEST(ReplayTraceTest, PastEndHoldsFinalSegment) {
  ReplayTrace trace;
  trace.Append(10 * kSecond, 100.0, 1000);
  EXPECT_DOUBLE_EQ(trace.At(1000 * kSecond).bandwidth_bps, 100.0);
  EXPECT_EQ(trace.At(1000 * kSecond).latency, 1000);
}

TEST(ReplayTraceTest, TotalDurationSumsSegments) {
  ReplayTrace trace;
  trace.Append(10 * kSecond, 1.0, 0);
  trace.Append(5 * kSecond, 2.0, 0);
  EXPECT_EQ(trace.TotalDuration(), 15 * kSecond);
}

TEST(ReplayTraceTest, IntegralBytesSumsSegmentAreas) {
  ReplayTrace trace;
  trace.Append(10 * kSecond, 100.0, 0);
  trace.Append(20 * kSecond, 200.0, 0);
  EXPECT_DOUBLE_EQ(trace.IntegralBytes(0), 0.0);
  EXPECT_DOUBLE_EQ(trace.IntegralBytes(5 * kSecond), 500.0);
  EXPECT_DOUBLE_EQ(trace.IntegralBytes(10 * kSecond), 1000.0);
  EXPECT_DOUBLE_EQ(trace.IntegralBytes(30 * kSecond), 1000.0 + 4000.0);
}

TEST(ReplayTraceTest, IntegralBytesFinalSegmentPersists) {
  // Past the end of the trace the final segment's bandwidth keeps accruing,
  // matching the At() rule and the modulation daemon's behaviour.
  ReplayTrace trace;
  trace.Append(10 * kSecond, 100.0, 0);
  trace.Append(10 * kSecond, 50.0, 0);
  EXPECT_DOUBLE_EQ(trace.IntegralBytes(40 * kSecond), 1000.0 + 500.0 + 20.0 * 50.0);
}

TEST(ReplayTraceTest, IntegralBytesZeroWidthSegmentsContributeNothing) {
  ReplayTrace trace;
  trace.Append(kSecond, 100.0, 0);
  trace.Append(0, 1.0e9, 0);  // zero width: no area regardless of bandwidth
  trace.Append(kSecond, 100.0, 0);
  EXPECT_DOUBLE_EQ(trace.IntegralBytes(2 * kSecond), 200.0);
  // A zero-width *final* segment still persists past the end (At() rule).
  ReplayTrace tail;
  tail.Append(kSecond, 100.0, 0);
  tail.Append(0, 10.0, 0);
  EXPECT_DOUBLE_EQ(tail.IntegralBytes(2 * kSecond), 100.0 + 10.0);
}

TEST(ReplayTraceTest, IntegralBytesZeroBandwidthShadowIsFlat) {
  ReplayTrace trace;
  trace.Append(kSecond, 100.0, 0);
  trace.Append(5 * kSecond, 0.0, 0);  // radio shadow
  trace.Append(kSecond, 100.0, 0);
  EXPECT_DOUBLE_EQ(trace.IntegralBytes(6 * kSecond), 100.0);
  EXPECT_DOUBLE_EQ(trace.IntegralBytes(7 * kSecond), 200.0);
}

TEST(ReplayTraceTest, IntegralBytesEmptyTraceIsZero) {
  ReplayTrace trace;
  EXPECT_DOUBLE_EQ(trace.IntegralBytes(100 * kSecond), 0.0);
}

TEST(ReplayTraceTest, WithPrimingPrefixesFirstSegment) {
  ReplayTrace trace = MakeStepUp();
  ReplayTrace primed = trace.WithPriming(30 * kSecond);
  EXPECT_EQ(primed.TotalDuration(), trace.TotalDuration() + 30 * kSecond);
  EXPECT_DOUBLE_EQ(primed.At(0).bandwidth_bps, kLowBandwidth);
  EXPECT_DOUBLE_EQ(primed.At(59 * kSecond).bandwidth_bps, kLowBandwidth);
  EXPECT_DOUBLE_EQ(primed.At(61 * kSecond).bandwidth_bps, kHighBandwidth);
}

TEST(ReplayTraceTest, PrimingEmptyTraceIsEmpty) {
  ReplayTrace trace;
  EXPECT_TRUE(trace.WithPriming(kSecond).empty());
}

TEST(ReplayTraceTest, ConcatJoinsSegments) {
  ReplayTrace a = MakeConstant(100.0, kSecond);
  ReplayTrace b = MakeConstant(200.0, kSecond);
  ReplayTrace joined = a.Concat(b);
  EXPECT_EQ(joined.segments().size(), 2u);
  EXPECT_DOUBLE_EQ(joined.At(0).bandwidth_bps, 100.0);
  EXPECT_DOUBLE_EQ(joined.At(kSecond + 1).bandwidth_bps, 200.0);
}

TEST(ReplayTraceTest, ScaledBandwidthScalesOnlyBandwidth) {
  ReplayTrace trace = MakeConstant(100.0, kSecond, 777);
  ReplayTrace scaled = trace.ScaledBandwidth(2.5);
  EXPECT_DOUBLE_EQ(scaled.At(0).bandwidth_bps, 250.0);
  EXPECT_EQ(scaled.At(0).latency, 777);
  EXPECT_EQ(scaled.TotalDuration(), kSecond);
}

TEST(ReplayTraceTest, SerializeParseRoundTrip) {
  ReplayTrace trace = MakeUrbanScenario();
  ReplayTrace parsed;
  ASSERT_TRUE(ReplayTrace::Parse(trace.Serialize(), &parsed));
  EXPECT_EQ(parsed, trace);
}

TEST(ReplayTraceTest, ParseIgnoresCommentsAndBlanks) {
  ReplayTrace parsed;
  ASSERT_TRUE(ReplayTrace::Parse("# comment\n\n1.5 1000 250  # trailing\n", &parsed));
  ASSERT_EQ(parsed.segments().size(), 1u);
  EXPECT_EQ(parsed.segments()[0].duration, SecondsToDuration(1.5));
  EXPECT_DOUBLE_EQ(parsed.segments()[0].bandwidth_bps, 1000.0);
  EXPECT_EQ(parsed.segments()[0].latency, 250);
}

TEST(ReplayTraceTest, ParseRejectsMalformedLines) {
  ReplayTrace parsed;
  EXPECT_FALSE(ReplayTrace::Parse("1.0 only-two\n", &parsed));
  EXPECT_FALSE(ReplayTrace::Parse("-1.0 100 0\n", &parsed));
  EXPECT_FALSE(ReplayTrace::Parse("1.0 -100 0\n", &parsed));
}

// --- Figure 7: the reference waveforms ---

TEST(WaveformTest, StepUpShape) {
  ReplayTrace trace = MakeStepUp();
  EXPECT_EQ(trace.TotalDuration(), kWaveformLength);
  EXPECT_DOUBLE_EQ(trace.BandwidthAt(0), kLowBandwidth);
  EXPECT_DOUBLE_EQ(trace.BandwidthAt(29 * kSecond), kLowBandwidth);
  EXPECT_DOUBLE_EQ(trace.BandwidthAt(30 * kSecond), kHighBandwidth);
  EXPECT_DOUBLE_EQ(trace.BandwidthAt(59 * kSecond), kHighBandwidth);
}

TEST(WaveformTest, StepDownShape) {
  ReplayTrace trace = MakeStepDown();
  EXPECT_DOUBLE_EQ(trace.BandwidthAt(0), kHighBandwidth);
  EXPECT_DOUBLE_EQ(trace.BandwidthAt(31 * kSecond), kLowBandwidth);
}

TEST(WaveformTest, ImpulseUpIsTwoSecondsWide) {
  ReplayTrace trace = MakeImpulseUp();
  EXPECT_EQ(trace.TotalDuration(), kWaveformLength);
  EXPECT_DOUBLE_EQ(trace.BandwidthAt(28 * kSecond), kLowBandwidth);
  EXPECT_DOUBLE_EQ(trace.BandwidthAt(29 * kSecond), kHighBandwidth);
  EXPECT_DOUBLE_EQ(trace.BandwidthAt(30 * kSecond), kHighBandwidth);
  EXPECT_DOUBLE_EQ(trace.BandwidthAt(31 * kSecond), kLowBandwidth);
}

TEST(WaveformTest, ImpulseDownIsTwoSecondsWide) {
  ReplayTrace trace = MakeImpulseDown();
  EXPECT_DOUBLE_EQ(trace.BandwidthAt(28 * kSecond), kHighBandwidth);
  EXPECT_DOUBLE_EQ(trace.BandwidthAt(30 * kSecond), kLowBandwidth);
  EXPECT_DOUBLE_EQ(trace.BandwidthAt(31 * kSecond), kHighBandwidth);
}

TEST(WaveformTest, AllWaveformsHaveNames) {
  for (const Waveform waveform : AllWaveforms()) {
    EXPECT_FALSE(WaveformName(waveform).empty());
    EXPECT_EQ(MakeWaveform(waveform).TotalDuration(), kWaveformLength);
  }
}

TEST(WaveformTest, CustomParamsRespected) {
  WaveformParams params;
  params.high_bps = 500.0;
  params.low_bps = 50.0;
  params.length = 10 * kSecond;
  params.impulse_width = 4 * kSecond;
  ReplayTrace trace = MakeImpulseUp(params);
  EXPECT_EQ(trace.TotalDuration(), 10 * kSecond);
  EXPECT_DOUBLE_EQ(trace.BandwidthAt(5 * kSecond), 500.0);
  EXPECT_DOUBLE_EQ(trace.BandwidthAt(1 * kSecond), 50.0);
}

// --- Figure 13: the urban scenario ---

TEST(UrbanScenarioTest, FifteenMinutesTotal) {
  ReplayTrace trace = MakeUrbanScenario();
  EXPECT_EQ(trace.TotalDuration(), 15 * kMinute);
  EXPECT_EQ(trace.segments().size(), 9u);
}

TEST(UrbanScenarioTest, StartsAndEndsWellConnected) {
  ReplayTrace trace = MakeUrbanScenario();
  EXPECT_DOUBLE_EQ(trace.BandwidthAt(0), kHighBandwidth);
  EXPECT_DOUBLE_EQ(trace.BandwidthAt(15 * kMinute - 1), kHighBandwidth);
  // The final well-connected stretch is 4 minutes.
  EXPECT_DOUBLE_EQ(trace.BandwidthAt(11 * kMinute + 1), kHighBandwidth);
  EXPECT_DOUBLE_EQ(trace.BandwidthAt(11 * kMinute - 1), kLowBandwidth);
}

TEST(UrbanScenarioTest, SegmentMinutesMatchFigure13) {
  ReplayTrace trace = MakeUrbanScenario();
  const int expected_minutes[] = {3, 1, 1, 1, 2, 1, 1, 1, 4};
  for (size_t i = 0; i < trace.segments().size(); ++i) {
    EXPECT_EQ(trace.segments()[i].duration, expected_minutes[i] * kMinute) << "segment " << i;
  }
}

TEST(EthernetBaselineTest, FastAndFlat) {
  ReplayTrace trace = MakeEthernetBaseline(kMinute);
  EXPECT_EQ(trace.TotalDuration(), kMinute);
  EXPECT_GT(trace.BandwidthAt(0), 8.0 * kHighBandwidth);
}

}  // namespace
}  // namespace odyssey

// Death tests for the contract layer (src/core/contract.h) and for the
// runtime invariants it guards: a violated contract must abort loudly with
// the condition and location, never corrupt a trial silently.

#include <gtest/gtest.h>

#include "src/core/contract.h"
#include "src/estimator/ewma.h"
#include "src/estimator/sliding_max.h"
#include "src/net/link.h"
#include "src/sim/simulation.h"

namespace odyssey {
namespace {

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, AssertPassesOnTrueCondition) {
  ODY_ASSERT(1 + 1 == 2);
  ODY_ASSERT(true, "with a message");
  SUCCEED();
}

TEST(ContractDeathTest, AssertAbortsOnFalseCondition) {
  EXPECT_DEATH(ODY_ASSERT(1 + 1 == 3), "ODY_ASSERT failed: 1 \\+ 1 == 3");
}

TEST(ContractDeathTest, AssertReportsMessageAndLocation) {
  EXPECT_DEATH(ODY_ASSERT(false, "the message"), "contract_test\\.cc");
  EXPECT_DEATH(ODY_ASSERT(false, "the message"), "the message");
}

TEST(ContractDeathTest, UnreachableAlwaysAborts) {
  EXPECT_DEATH(ODY_UNREACHABLE("fell off the switch"), "ODY_UNREACHABLE");
}

#ifndef NDEBUG
TEST(ContractDeathTest, DcheckAbortsInDebugBuilds) {
  EXPECT_DEATH(ODY_DCHECK(false, "debug only"), "ODY_DCHECK failed");
}
#else
TEST(ContractDeathTest, DcheckCompilesOutInReleaseBuilds) {
  int evaluations = 0;
  // The condition must parse but never run.
  ODY_DCHECK(++evaluations > 0);
  EXPECT_EQ(evaluations, 0);
}
#endif

// --- Deployed invariants ---

TEST(ContractDeathTest, EwmaRejectsAlphaOutsideUnitInterval) {
  EXPECT_DEATH(EwmaFilter(1.5), "alpha outside");
  EXPECT_DEATH(EwmaFilter(-0.1), "alpha outside");
}

TEST(ContractDeathTest, LinkRejectsNegativeFlowBytes) {
  Simulation sim(1);
  Link link(&sim, /*capacity_bps=*/1e6, /*latency=*/kMillisecond);
  EXPECT_DEATH(link.StartFlow(-1.0, nullptr), "negative bytes");
}

#ifndef NDEBUG
TEST(ContractDeathTest, SlidingMaxRejectsTimeTravel) {
  SlidingMax window(10 * kSecond);
  window.Push(5 * kSecond, 1.0);
  EXPECT_DEATH(window.Push(4 * kSecond, 2.0), "time-ordered");
}
#endif

}  // namespace
}  // namespace odyssey

// Unit tests for the bandwidth-management strategy zoo: the paper's three
// policies (§6.2.3), the congestion manager, the admission broker, and the
// registry that names them all.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/net/link.h"
#include "src/net/modulator.h"
#include "src/rpc/endpoint.h"
#include "src/sim/simulation.h"
#include "src/strategies/admission_broker.h"
#include "src/strategies/blind_optimism.h"
#include "src/strategies/centralized.h"
#include "src/strategies/congestion_manager.h"
#include "src/strategies/laissez_faire.h"
#include "src/strategies/strategy_registry.h"
#include "src/tracemod/waveforms.h"

namespace odyssey {
namespace {

constexpr double kKb = 1024.0;

class StrategyFixture : public ::testing::Test {
 protected:
  StrategyFixture() : link_(&sim_, 120.0 * kKb, 10500) {}

  // Runs a bulk fetch on |endpoint| and drains the simulation.
  void FetchAndRun(Endpoint& endpoint, double bytes) {
    endpoint.Fetch(bytes, 0, Endpoint::Done());
    sim_.Run();
  }

  Simulation sim_;
  Link link_;
};

TEST_F(StrategyFixture, CentralizedEstimatesSupplyFromTraffic) {
  Endpoint endpoint(&sim_, &link_, "server");
  CentralizedStrategy strategy(&sim_);
  strategy.AttachConnection(1, &endpoint);
  FetchAndRun(endpoint, 512.0 * kKb);
  EXPECT_NEAR(strategy.TotalSupply(sim_.now()), 120.0 * kKb, 12.0 * kKb);
  EXPECT_NEAR(strategy.AvailabilityFor(1, sim_.now()), 120.0 * kKb, 12.0 * kKb);
  EXPECT_GT(strategy.SmoothedRttFor(1), 0);
}

TEST_F(StrategyFixture, CentralizedChangeCallbackFires) {
  Endpoint endpoint(&sim_, &link_, "server");
  CentralizedStrategy strategy(&sim_);
  strategy.AttachConnection(1, &endpoint);
  int changes = 0;
  strategy.SetChangeCallback([&] { ++changes; });
  FetchAndRun(endpoint, 128.0 * kKb);
  EXPECT_GT(changes, 0);
}

TEST_F(StrategyFixture, CentralizedDetachStopsAccounting) {
  Endpoint endpoint(&sim_, &link_, "server");
  CentralizedStrategy strategy(&sim_);
  strategy.AttachConnection(1, &endpoint);
  strategy.DetachConnection(&endpoint);
  FetchAndRun(endpoint, 128.0 * kKb);
  EXPECT_DOUBLE_EQ(strategy.TotalSupply(sim_.now()), 0.0);
}

TEST_F(StrategyFixture, CentralizedUnknownAppZero) {
  CentralizedStrategy strategy(&sim_);
  EXPECT_DOUBLE_EQ(strategy.AvailabilityFor(42, 0), 0.0);
  EXPECT_EQ(strategy.SmoothedRttFor(42), 0);
}

TEST_F(StrategyFixture, LaissezFaireSeesOnlyOwnLog) {
  Endpoint a(&sim_, &link_, "a");
  Endpoint b(&sim_, &link_, "b");
  LaissezFaireStrategy strategy;
  strategy.AttachConnection(1, &a);
  strategy.AttachConnection(2, &b);
  FetchAndRun(a, 512.0 * kKb);
  // App 1 estimated from its own traffic; app 2 has seen nothing.
  EXPECT_GT(strategy.AvailabilityFor(1, sim_.now()), 100.0 * kKb);
  EXPECT_DOUBLE_EQ(strategy.AvailabilityFor(2, sim_.now()), 0.0);
}

TEST_F(StrategyFixture, LaissezFaireOverestimatesUnderIntermittentContention) {
  // Both connections observe the full link rate whenever the other is idle:
  // each app concludes it has ~120 KB/s even though sustained concurrent use
  // would yield 60 KB/s each.  This is the §6.2.3 pathology.
  Endpoint a(&sim_, &link_, "a");
  Endpoint b(&sim_, &link_, "b");
  LaissezFaireStrategy strategy;
  strategy.AttachConnection(1, &a);
  strategy.AttachConnection(2, &b);
  // Alternate bursts with idle gaps.
  a.Fetch(256.0 * kKb, 0, Endpoint::Done());
  sim_.Run();
  b.Fetch(256.0 * kKb, 0, Endpoint::Done());
  sim_.Run();
  const double sum = strategy.AvailabilityFor(1, sim_.now()) +
                     strategy.AvailabilityFor(2, sim_.now());
  EXPECT_GT(sum, 1.5 * 120.0 * kKb);  // the two apps believe in >1.5 links
}

TEST_F(StrategyFixture, BlindOptimismTracksTransitionsInstantly) {
  Modulator modulator(&sim_, &link_);
  BlindOptimismStrategy strategy(&modulator);
  modulator.Replay(MakeStepUp());
  EXPECT_DOUBLE_EQ(strategy.AvailabilityFor(1, sim_.now()), kLowBandwidth);
  sim_.RunUntil(31 * kSecond);
  EXPECT_DOUBLE_EQ(strategy.AvailabilityFor(1, sim_.now()), kHighBandwidth);
}

TEST_F(StrategyFixture, BlindOptimismIgnoresCompetition) {
  Modulator modulator(&sim_, &link_);
  BlindOptimismStrategy strategy(&modulator);
  modulator.Replay(MakeConstant(120.0 * kKb, kMinute));
  // Every app is told the full theoretical bandwidth.
  EXPECT_DOUBLE_EQ(strategy.AvailabilityFor(1, 0), 120.0 * kKb);
  EXPECT_DOUBLE_EQ(strategy.AvailabilityFor(2, 0), 120.0 * kKb);
  EXPECT_DOUBLE_EQ(strategy.TotalSupply(0), 120.0 * kKb);
}

TEST_F(StrategyFixture, BlindOptimismStillEstimatesRtt) {
  Modulator modulator(&sim_, &link_);
  Endpoint endpoint(&sim_, &link_, "server");
  BlindOptimismStrategy strategy(&modulator);
  modulator.Replay(MakeConstant(120.0 * kKb, kMinute));
  strategy.AttachConnection(1, &endpoint);
  endpoint.Ping(Endpoint::Done());
  sim_.Run();
  EXPECT_GT(strategy.SmoothedRttFor(1), 0);
}

TEST_F(StrategyFixture, BlindOptimismChangeCallbackAtTransition) {
  Modulator modulator(&sim_, &link_);
  BlindOptimismStrategy strategy(&modulator);
  int changes = 0;
  strategy.SetChangeCallback([&] { ++changes; });
  modulator.Replay(MakeStepUp());
  sim_.RunUntil(kWaveformLength);
  EXPECT_EQ(changes, 2);  // initial segment + the step
}

TEST_F(StrategyFixture, StrategiesHaveDistinctNames) {
  Modulator modulator(&sim_, &link_);
  CentralizedStrategy centralized(&sim_);
  LaissezFaireStrategy laissez;
  BlindOptimismStrategy blind(&modulator);
  EXPECT_EQ(centralized.name(), "odyssey");
  EXPECT_EQ(laissez.name(), "laissez-faire");
  EXPECT_EQ(blind.name(), "blind-optimism");
}

TEST(CongestionManagerTest, ServerKeyIsServicePrefix) {
  EXPECT_EQ(CongestionManagerStrategy::ServerKeyOf("video:bigbuck"), "video");
  EXPECT_EQ(CongestionManagerStrategy::ServerKeyOf("video:sintel"), "video");
  EXPECT_EQ(CongestionManagerStrategy::ServerKeyOf("plain"), "plain");
  EXPECT_EQ(CongestionManagerStrategy::ServerKeyOf(":anonymous"), "");
}

TEST_F(StrategyFixture, CongestionManagerTracksFlowsAcrossAttachDetach) {
  Endpoint a(&sim_, &link_, "video:a");
  Endpoint b(&sim_, &link_, "video:b");
  Endpoint c(&sim_, &link_, "web:c");
  CongestionManagerStrategy strategy(&sim_);
  strategy.AttachConnection(1, &a);
  strategy.AttachConnection(2, &b);
  strategy.AttachConnection(3, &c);
  EXPECT_EQ(strategy.ServerOf(a.id()), "video");
  EXPECT_EQ(strategy.ServerOf(c.id()), "web");
  EXPECT_EQ(strategy.FlowsOf("video"), (std::vector<ConnectionId>{a.id(), b.id()}));
  EXPECT_EQ(strategy.FlowsOf("web"), std::vector<ConnectionId>{c.id()});
  strategy.DetachConnection(&a);
  EXPECT_EQ(strategy.ServerOf(a.id()), "");
  EXPECT_EQ(strategy.FlowsOf("video"), std::vector<ConnectionId>{b.id()});
  strategy.DetachConnection(&b);
  EXPECT_TRUE(strategy.FlowsOf("video").empty());
}

TEST_F(StrategyFixture, CongestionManagerPoolsFlowsSharingAServer) {
  // Two apps, one flow each, both to the "video" server.  Only the first
  // generates traffic, but shared congestion state means the server budget
  // is split equally: both flows report the identical share.
  Endpoint a(&sim_, &link_, "video:a");
  Endpoint b(&sim_, &link_, "video:b");
  CongestionManagerStrategy strategy(&sim_);
  strategy.AttachConnection(1, &a);
  strategy.AttachConnection(2, &b);
  FetchAndRun(a, 512.0 * kKb);
  const Time now = sim_.now();
  EXPECT_GT(strategy.ConnectionAvailability(a.id(), now), 0.0);
  EXPECT_DOUBLE_EQ(strategy.ConnectionAvailability(a.id(), now),
                   strategy.ConnectionAvailability(b.id(), now));
  EXPECT_DOUBLE_EQ(strategy.AvailabilityFor(1, now), strategy.AvailabilityFor(2, now));
}

TEST_F(StrategyFixture, CongestionManagerAppAvailabilitySumsItsFlows) {
  // One app with flows to two distinct servers: the hierarchy's app level
  // is the sum of its flows' shares.
  Endpoint a(&sim_, &link_, "video:a");
  Endpoint b(&sim_, &link_, "web:b");
  CongestionManagerStrategy strategy(&sim_);
  strategy.AttachConnection(1, &a);
  strategy.AttachConnection(1, &b);
  FetchAndRun(a, 256.0 * kKb);
  const Time now = sim_.now();
  EXPECT_DOUBLE_EQ(strategy.AvailabilityFor(1, now),
                   strategy.ConnectionAvailability(a.id(), now) +
                       strategy.ConnectionAvailability(b.id(), now));
}

TEST_F(StrategyFixture, CongestionManagerHintsAreInexact) {
  // Redistribution breaks the incremental idle-level bookkeeping, so the
  // viceroy must be told to full-scan.
  Endpoint a(&sim_, &link_, "video:a");
  CongestionManagerStrategy strategy(&sim_);
  strategy.AttachConnection(1, &a);
  FetchAndRun(a, 128.0 * kKb);
  const ReevalHint hint = strategy.TakeReevalHint(sim_.now());
  EXPECT_FALSE(hint.exact);
  EXPECT_TRUE(hint.idle_levels.empty());
}

ResourceDescriptor Window(double lower, double upper) {
  ResourceDescriptor descriptor;
  descriptor.resource = ResourceId::kNetworkBandwidth;
  descriptor.lower = lower;
  descriptor.upper = upper;
  descriptor.handler = [](RequestId, ResourceId, double) {};
  return descriptor;
}

TEST_F(StrategyFixture, AdmissionBrokerAdmitsOptimisticallyWithoutEstimate) {
  AdmissionBrokerStrategy broker(&sim_, std::make_unique<CentralizedStrategy>(&sim_));
  EXPECT_FALSE(broker.HasEstimate());
  const AdmissionDecision decision = broker.DecideAdmission(1, Window(64.0 * kKb, 128.0 * kKb), 0);
  EXPECT_EQ(decision.verdict, AdmissionVerdict::kAdmitted);
  EXPECT_EQ(decision.reason_code, AdmissionBrokerStrategy::kReasonNoEstimate);
  ASSERT_EQ(broker.admission_log().size(), 1u);
  EXPECT_EQ(broker.admission_log()[0].app, 1u);
}

TEST_F(StrategyFixture, AdmissionBrokerLifecycleReleasesCommitments) {
  AdmissionBrokerStrategy broker(&sim_, std::make_unique<CentralizedStrategy>(&sim_));
  const ResourceDescriptor window = Window(32.0 * kKb, 96.0 * kKb);
  ASSERT_EQ(broker.DecideAdmission(1, window, 0).verdict, AdmissionVerdict::kAdmitted);
  broker.OnWindowRegistered(1, 5, window);
  EXPECT_DOUBLE_EQ(broker.CommittedTotal(), 32.0 * kKb);
  // The registration id lands on the pending admit event.
  EXPECT_EQ(broker.admission_log()[0].request, 5u);
  broker.OnWindowCancelled(5);
  EXPECT_DOUBLE_EQ(broker.CommittedTotal(), 0.0);
  // Consume releases just like cancel.
  ASSERT_EQ(broker.DecideAdmission(1, window, 0).verdict, AdmissionVerdict::kAdmitted);
  broker.OnWindowRegistered(1, 6, window);
  broker.OnWindowConsumed(6);
  EXPECT_DOUBLE_EQ(broker.CommittedTotal(), 0.0);
}

TEST_F(StrategyFixture, AdmissionBrokerDelegatesEstimationToInner) {
  Endpoint endpoint(&sim_, &link_, "server");
  AdmissionBrokerStrategy broker(&sim_, std::make_unique<CentralizedStrategy>(&sim_));
  broker.AttachConnection(1, &endpoint);
  FetchAndRun(endpoint, 256.0 * kKb);
  EXPECT_EQ(broker.name(), "admission-broker");
  ASSERT_NE(broker.audit_surface(), nullptr);
  EXPECT_TRUE(broker.HasEstimate());
  EXPECT_DOUBLE_EQ(broker.TotalSupply(sim_.now()), broker.inner().TotalSupply(sim_.now()));
  // No degradation standing: availability passes straight through.
  EXPECT_DOUBLE_EQ(broker.AvailabilityFor(1, sim_.now()),
                   broker.inner().AvailabilityFor(1, sim_.now()));
}

TEST(StrategyRegistryTest, BuiltinListsTheZooInRegistrationOrder) {
  const std::vector<std::string> expected = {"odyssey", "laissez-faire", "blind-optimism",
                                             "congestion-manager", "admission-broker"};
  EXPECT_EQ(StrategyRegistry::Builtin().Names(), expected);
  EXPECT_EQ(StrategyRegistry::Builtin().Find("no-such-strategy"), nullptr);
}

TEST(StrategyRegistryTest, MetadataFlagsMatchTheZoo) {
  const StrategyRegistry& registry = StrategyRegistry::Builtin();
  EXPECT_TRUE(registry.Find("odyssey")->audited);
  EXPECT_FALSE(registry.Find("odyssey")->admission);
  EXPECT_FALSE(registry.Find("laissez-faire")->audited);
  EXPECT_FALSE(registry.Find("blind-optimism")->audited);
  EXPECT_TRUE(registry.Find("congestion-manager")->audited);
  EXPECT_TRUE(registry.Find("admission-broker")->audited);
  EXPECT_TRUE(registry.Find("admission-broker")->admission);
}

TEST(StrategyRegistryTest, CreateBuildsEveryRegisteredStrategy) {
  Simulation sim(3);
  Link link(&sim, 120.0 * kKb, 10500);
  Modulator modulator(&sim, &link);
  for (const std::string& name : StrategyRegistry::Builtin().Names()) {
    StrategyContext context;
    context.sim = &sim;
    context.modulator = &modulator;
    const std::unique_ptr<BandwidthStrategy> strategy =
        StrategyRegistry::Builtin().Create(name, std::move(context));
    ASSERT_NE(strategy, nullptr) << name;
    EXPECT_EQ(strategy->name(), name);
    const StrategyInfo* info = StrategyRegistry::Builtin().Find(name);
    EXPECT_EQ(strategy->audit_surface() != nullptr, info->audited) << name;
    EXPECT_EQ(strategy->arbitration() != nullptr, info->admission) << name;
  }
}

}  // namespace
}  // namespace odyssey

// Unit tests for the three bandwidth-management strategies (§6.2.3).

#include <memory>

#include <gtest/gtest.h>

#include "src/net/link.h"
#include "src/net/modulator.h"
#include "src/rpc/endpoint.h"
#include "src/sim/simulation.h"
#include "src/strategies/blind_optimism.h"
#include "src/strategies/centralized.h"
#include "src/strategies/laissez_faire.h"
#include "src/tracemod/waveforms.h"

namespace odyssey {
namespace {

constexpr double kKb = 1024.0;

class StrategyFixture : public ::testing::Test {
 protected:
  StrategyFixture() : link_(&sim_, 120.0 * kKb, 10500) {}

  // Runs a bulk fetch on |endpoint| and drains the simulation.
  void FetchAndRun(Endpoint& endpoint, double bytes) {
    endpoint.Fetch(bytes, 0, Endpoint::Done());
    sim_.Run();
  }

  Simulation sim_;
  Link link_;
};

TEST_F(StrategyFixture, CentralizedEstimatesSupplyFromTraffic) {
  Endpoint endpoint(&sim_, &link_, "server");
  CentralizedStrategy strategy(&sim_);
  strategy.AttachConnection(1, &endpoint);
  FetchAndRun(endpoint, 512.0 * kKb);
  EXPECT_NEAR(strategy.TotalSupply(sim_.now()), 120.0 * kKb, 12.0 * kKb);
  EXPECT_NEAR(strategy.AvailabilityFor(1, sim_.now()), 120.0 * kKb, 12.0 * kKb);
  EXPECT_GT(strategy.SmoothedRttFor(1), 0);
}

TEST_F(StrategyFixture, CentralizedChangeCallbackFires) {
  Endpoint endpoint(&sim_, &link_, "server");
  CentralizedStrategy strategy(&sim_);
  strategy.AttachConnection(1, &endpoint);
  int changes = 0;
  strategy.SetChangeCallback([&] { ++changes; });
  FetchAndRun(endpoint, 128.0 * kKb);
  EXPECT_GT(changes, 0);
}

TEST_F(StrategyFixture, CentralizedDetachStopsAccounting) {
  Endpoint endpoint(&sim_, &link_, "server");
  CentralizedStrategy strategy(&sim_);
  strategy.AttachConnection(1, &endpoint);
  strategy.DetachConnection(&endpoint);
  FetchAndRun(endpoint, 128.0 * kKb);
  EXPECT_DOUBLE_EQ(strategy.TotalSupply(sim_.now()), 0.0);
}

TEST_F(StrategyFixture, CentralizedUnknownAppZero) {
  CentralizedStrategy strategy(&sim_);
  EXPECT_DOUBLE_EQ(strategy.AvailabilityFor(42, 0), 0.0);
  EXPECT_EQ(strategy.SmoothedRttFor(42), 0);
}

TEST_F(StrategyFixture, LaissezFaireSeesOnlyOwnLog) {
  Endpoint a(&sim_, &link_, "a");
  Endpoint b(&sim_, &link_, "b");
  LaissezFaireStrategy strategy;
  strategy.AttachConnection(1, &a);
  strategy.AttachConnection(2, &b);
  FetchAndRun(a, 512.0 * kKb);
  // App 1 estimated from its own traffic; app 2 has seen nothing.
  EXPECT_GT(strategy.AvailabilityFor(1, sim_.now()), 100.0 * kKb);
  EXPECT_DOUBLE_EQ(strategy.AvailabilityFor(2, sim_.now()), 0.0);
}

TEST_F(StrategyFixture, LaissezFaireOverestimatesUnderIntermittentContention) {
  // Both connections observe the full link rate whenever the other is idle:
  // each app concludes it has ~120 KB/s even though sustained concurrent use
  // would yield 60 KB/s each.  This is the §6.2.3 pathology.
  Endpoint a(&sim_, &link_, "a");
  Endpoint b(&sim_, &link_, "b");
  LaissezFaireStrategy strategy;
  strategy.AttachConnection(1, &a);
  strategy.AttachConnection(2, &b);
  // Alternate bursts with idle gaps.
  a.Fetch(256.0 * kKb, 0, Endpoint::Done());
  sim_.Run();
  b.Fetch(256.0 * kKb, 0, Endpoint::Done());
  sim_.Run();
  const double sum = strategy.AvailabilityFor(1, sim_.now()) +
                     strategy.AvailabilityFor(2, sim_.now());
  EXPECT_GT(sum, 1.5 * 120.0 * kKb);  // the two apps believe in >1.5 links
}

TEST_F(StrategyFixture, BlindOptimismTracksTransitionsInstantly) {
  Modulator modulator(&sim_, &link_);
  BlindOptimismStrategy strategy(&modulator);
  modulator.Replay(MakeStepUp());
  EXPECT_DOUBLE_EQ(strategy.AvailabilityFor(1, sim_.now()), kLowBandwidth);
  sim_.RunUntil(31 * kSecond);
  EXPECT_DOUBLE_EQ(strategy.AvailabilityFor(1, sim_.now()), kHighBandwidth);
}

TEST_F(StrategyFixture, BlindOptimismIgnoresCompetition) {
  Modulator modulator(&sim_, &link_);
  BlindOptimismStrategy strategy(&modulator);
  modulator.Replay(MakeConstant(120.0 * kKb, kMinute));
  // Every app is told the full theoretical bandwidth.
  EXPECT_DOUBLE_EQ(strategy.AvailabilityFor(1, 0), 120.0 * kKb);
  EXPECT_DOUBLE_EQ(strategy.AvailabilityFor(2, 0), 120.0 * kKb);
  EXPECT_DOUBLE_EQ(strategy.TotalSupply(0), 120.0 * kKb);
}

TEST_F(StrategyFixture, BlindOptimismStillEstimatesRtt) {
  Modulator modulator(&sim_, &link_);
  Endpoint endpoint(&sim_, &link_, "server");
  BlindOptimismStrategy strategy(&modulator);
  modulator.Replay(MakeConstant(120.0 * kKb, kMinute));
  strategy.AttachConnection(1, &endpoint);
  endpoint.Ping(Endpoint::Done());
  sim_.Run();
  EXPECT_GT(strategy.SmoothedRttFor(1), 0);
}

TEST_F(StrategyFixture, BlindOptimismChangeCallbackAtTransition) {
  Modulator modulator(&sim_, &link_);
  BlindOptimismStrategy strategy(&modulator);
  int changes = 0;
  strategy.SetChangeCallback([&] { ++changes; });
  modulator.Replay(MakeStepUp());
  sim_.RunUntil(kWaveformLength);
  EXPECT_EQ(changes, 2);  // initial segment + the step
}

TEST_F(StrategyFixture, StrategiesHaveDistinctNames) {
  Modulator modulator(&sim_, &link_);
  CentralizedStrategy centralized(&sim_);
  LaissezFaireStrategy laissez;
  BlindOptimismStrategy blind(&modulator);
  EXPECT_EQ(centralized.name(), "odyssey");
  EXPECT_EQ(laissez.name(), "laissez-faire");
  EXPECT_EQ(blind.name(), "blind-optimism");
}

}  // namespace
}  // namespace odyssey

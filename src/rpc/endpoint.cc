#include "src/rpc/endpoint.h"

#include <utility>

namespace odyssey {

ConnectionId Endpoint::next_id_ = 1;

Endpoint::Endpoint(Simulation* sim, Link* link, std::string name)
    : sim_(sim), link_(link), name_(std::move(name)), id_(next_id_++), log_(id_) {}

void Endpoint::Call(double request_bytes, double response_bytes, Duration server_compute,
                    Done done) {
  const Time start = sim_->now();
  // Request transmission, then one-way latency to the server.
  link_->StartFlow(request_bytes, [this, start, response_bytes, server_compute,
                                   done = std::move(done)]() mutable {
    sim_->Schedule(link_->latency() + server_compute, [this, start, response_bytes,
                                                       server_compute,
                                                       done = std::move(done)]() mutable {
      // Response transmission, then one-way latency back to the client.
      link_->StartFlow(response_bytes, [this, start, server_compute,
                                        done = std::move(done)]() mutable {
        sim_->Schedule(link_->latency(), [this, start, server_compute,
                                          done = std::move(done)]() mutable {
          const Duration rtt = (sim_->now() - start) - server_compute;
          log_.RecordRoundTrip(sim_->now(), rtt < 0 ? 0 : rtt);
          if (done) {
            done();
          }
        });
      });
    });
  });
}

void Endpoint::Ping(Done done) {
  Call(kControlMessageBytes, kControlMessageBytes, 0, std::move(done));
}

void Endpoint::FetchWindow(double bytes, Done done) {
  const Time start = sim_->now();
  // Window request upstream...
  link_->StartFlow(kControlMessageBytes, [this, start, bytes, done = std::move(done)]() mutable {
    sim_->Schedule(link_->latency(), [this, start, bytes, done = std::move(done)]() mutable {
      // ...then the window's data downstream.
      link_->StartFlow(bytes, [this, start, bytes, done = std::move(done)]() mutable {
        sim_->Schedule(link_->latency(), [this, start, bytes, done = std::move(done)]() mutable {
          bytes_transferred_ += bytes;
          log_.RecordThroughput(sim_->now(), bytes, sim_->now() - start);
          if (done) {
            done();
          }
        });
      });
    });
  });
}

void Endpoint::Fetch(double total_bytes, Duration server_compute, Done done) {
  // The transfer request is a small exchange: it logs a round trip and
  // absorbs the server's compute time before data begins to flow.
  Call(kControlMessageBytes, kControlMessageBytes, server_compute,
       [this, total_bytes, done = std::move(done)]() mutable {
         TransferWindows(total_bytes, std::move(done));
       });
}

void Endpoint::Send(double total_bytes, Duration server_compute, Done done) {
  // Under the shared-capacity link model an upstream window is timed the
  // same way as a downstream one: control message one way, data the other.
  Call(kControlMessageBytes, kControlMessageBytes, server_compute,
       [this, total_bytes, done = std::move(done)]() mutable {
         TransferWindows(total_bytes, std::move(done));
       });
}

void Endpoint::TransferWindows(double remaining, Done done) {
  if (remaining <= 0.0) {
    if (done) {
      done();
    }
    return;
  }
  const double this_window = remaining < window_bytes_ ? remaining : window_bytes_;
  FetchWindow(this_window, [this, remaining, this_window, done = std::move(done)]() mutable {
    TransferWindows(remaining - this_window, std::move(done));
  });
}

}  // namespace odyssey

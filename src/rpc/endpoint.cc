#include "src/rpc/endpoint.h"

#include <string>
#include <utility>

#include "src/core/contract.h"
#include "src/trace/trace_macros.h"

namespace odyssey {
namespace {

// Patience granted to an attempt that moves |bytes| of payload: the policy's
// base timeout plus transfer time at the policy's floor rate.
Duration AttemptBudget(const RetryPolicy& policy, double bytes, Duration server_compute) {
  ODY_DCHECK(bytes >= 0.0, "attempt with negative payload bytes");
  ODY_DCHECK(server_compute >= 0, "attempt with negative server compute");
  Duration allowance = 0;
  if (bytes > 0.0 && policy.min_rate_bytes_per_sec > 0.0) {
    allowance = SecondsToDuration(bytes / policy.min_rate_bytes_per_sec);
  }
  // Deadline accounting must stay non-negative: a negative budget would arm
  // a timeout in the simulation's past.
  const Duration budget = policy.timeout + server_compute + allowance;
  ODY_ASSERT(budget >= 0, "attempt budget went negative");
  return budget;
}

}  // namespace

Endpoint::Endpoint(Simulation* sim, Link* link, std::string name)
    : sim_(sim), link_(link), name_(std::move(name)), id_(sim->NextConnectionId()), log_(id_) {}

void Endpoint::Call(double request_bytes, double response_bytes, Duration server_compute,
                    StatusDone done) {
  CallAttempt(request_bytes, response_bytes, server_compute, 1, std::move(done));
}

void Endpoint::Ping(StatusDone done) {
  Call(kControlMessageBytes, kControlMessageBytes, 0, std::move(done));
}

void Endpoint::FetchWindow(double bytes, StatusDone done) {
  WindowAttempt(bytes, 1, std::move(done));
}

void Endpoint::Fetch(double total_bytes, Duration server_compute, StatusDone done) {
  // The transfer request is a small exchange: it logs a round trip and
  // absorbs the server's compute time before data begins to flow.
  Call(kControlMessageBytes, kControlMessageBytes, server_compute,
       [this, total_bytes, done = std::move(done)](Status status) mutable {
         if (!status.ok()) {
           if (done) {
             done(std::move(status));
           }
           return;
         }
         TransferWindows(total_bytes, std::move(done));
       });
}

void Endpoint::Send(double total_bytes, Duration server_compute, StatusDone done) {
  // Under the shared-capacity link model an upstream window is timed the
  // same way as a downstream one: control message one way, data the other.
  Call(kControlMessageBytes, kControlMessageBytes, server_compute,
       [this, total_bytes, done = std::move(done)](Status status) mutable {
         if (!status.ok()) {
           if (done) {
             done(std::move(status));
           }
           return;
         }
         TransferWindows(total_bytes, std::move(done));
       });
}

void Endpoint::TransferWindows(double remaining, StatusDone done) {
  if (remaining <= 0.0) {
    if (done) {
      done(OkStatus());
    }
    return;
  }
  const double this_window = remaining < window_bytes_ ? remaining : window_bytes_;
  FetchWindow(this_window,
              [this, remaining, this_window, done = std::move(done)](Status status) mutable {
                if (!status.ok()) {
                  if (done) {
                    done(std::move(status));
                  }
                  return;
                }
                TransferWindows(remaining - this_window, std::move(done));
              });
}

void Endpoint::CallAttempt(double request_bytes, double response_bytes, Duration server_compute,
                           int attempt, StatusDone done) {
  const Time start = sim_->now();
  auto state = std::make_shared<AttemptState>();
  auto cb = std::make_shared<StatusDone>(std::move(done));
  const uint64_t span = ODY_TRACE_SPAN_ID(sim_->trace());
  ODY_TRACE_BEGIN2(sim_->trace(), kRpc, "rpc_call", sim_->now(), span, "bytes",
                   request_bytes + response_bytes, "attempt", attempt);

  if (policy_.enabled()) {
    ArmTimeout(AttemptBudget(policy_, request_bytes + response_bytes, server_compute), state,
               [this, request_bytes, response_bytes, server_compute, attempt, span, cb] {
                 ODY_TRACE_END(sim_->trace(), kRpc, "rpc_call", sim_->now(), span);
                 ODY_TRACE_INSTANT1(sim_->trace(), kRpc, "rpc_timeout", sim_->now(), id_,
                                    "attempt", attempt);
                 RetryOrFail(attempt,
                             [this, request_bytes, response_bytes, server_compute, cb](int next) {
                               CallAttempt(request_bytes, response_bytes, server_compute, next,
                                           std::move(*cb));
                             },
                             cb);
               });
  }

  // Request transmission, then one-way latency to the server.
  SendMessage(request_bytes, state,
              [this, start, response_bytes, server_compute, span, state, cb] {
    // A stalled server adds compute the client did not budget for, so a
    // stall window is visible to the retry machinery as a slow exchange.
    const Duration stall =
        injector_ != nullptr ? injector_->ServerStallExtra(sim_->now() + link_->latency()) : 0;
    sim_->Schedule(
        link_->latency() + server_compute + stall,
        [this, start, response_bytes, server_compute, span, state, cb] {
          if (state->aborted) {
            return;
          }
          // Response transmission, then one-way latency back to the client.
          SendMessage(response_bytes, state, [this, start, server_compute, span, state, cb] {
            sim_->Schedule(link_->latency(), [this, start, server_compute, span, state, cb] {
              if (state->aborted) {
                return;
              }
              state->completed = true;
              // Only this attempt's own span is logged, so retransmissions
              // never inflate the estimator's round-trip samples.
              const Duration rtt = (sim_->now() - start) - server_compute;
              log_.RecordRoundTrip(sim_->now(), rtt < 0 ? 0 : rtt);
              ODY_TRACE_END1(sim_->trace(), kRpc, "rpc_call", sim_->now(), span, "rtt_us",
                             static_cast<double>(rtt < 0 ? 0 : rtt));
              if (*cb) {
                (*cb)(OkStatus());
              }
            });
          });
        });
  });
}

void Endpoint::WindowAttempt(double bytes, int attempt, StatusDone done) {
  const Time start = sim_->now();
  auto state = std::make_shared<AttemptState>();
  auto cb = std::make_shared<StatusDone>(std::move(done));
  const uint64_t span = ODY_TRACE_SPAN_ID(sim_->trace());
  ODY_TRACE_BEGIN2(sim_->trace(), kRpc, "rpc_window", sim_->now(), span, "bytes", bytes,
                   "attempt", attempt);

  if (policy_.enabled()) {
    ArmTimeout(AttemptBudget(policy_, bytes, 0), state, [this, bytes, attempt, span, cb] {
      ODY_TRACE_END(sim_->trace(), kRpc, "rpc_window", sim_->now(), span);
      ODY_TRACE_INSTANT1(sim_->trace(), kRpc, "rpc_timeout", sim_->now(), id_, "attempt",
                         attempt);
      RetryOrFail(attempt,
                  [this, bytes, cb](int next) { WindowAttempt(bytes, next, std::move(*cb)); },
                  cb);
    });
  }

  // Window request upstream...
  SendMessage(kControlMessageBytes, state, [this, start, bytes, span, state, cb] {
    // A stalled server delays its turn-around on the window request.
    const Duration stall =
        injector_ != nullptr ? injector_->ServerStallExtra(sim_->now() + link_->latency()) : 0;
    sim_->Schedule(link_->latency() + stall, [this, start, bytes, span, state, cb] {
      if (state->aborted) {
        return;
      }
      // ...then the window's data downstream.
      SendMessage(bytes, state, [this, start, bytes, span, state, cb] {
        sim_->Schedule(link_->latency(), [this, start, bytes, span, state, cb] {
          if (state->aborted) {
            return;
          }
          state->completed = true;
          ODY_DCHECK(bytes >= 0.0, "window completed with negative bytes");
          bytes_transferred_ += bytes;
          // The logged span covers only the successful attempt.
          log_.RecordThroughput(sim_->now(), bytes, sim_->now() - start);
          ODY_TRACE_END1(sim_->trace(), kRpc, "rpc_window", sim_->now(), span, "bytes", bytes);
          if (*cb) {
            (*cb)(OkStatus());
          }
        });
      });
    });
  });
}

void Endpoint::SendMessage(double bytes, const AttemptPtr& state, std::function<void()> next) {
  if (injector_ != nullptr && injector_->ShouldDropMessage()) {
    // Lost in transit: nothing progresses until the attempt's timeout
    // settles it (or forever, under the fair-weather protocol).
    return;
  }
  state->flow = link_->StartFlow(bytes, [state, next = std::move(next)] {
    state->flow = 0;
    if (state->aborted) {
      return;
    }
    next();
  });
}

EventHandle Endpoint::ArmTimeout(Duration budget, const AttemptPtr& state,
                                 std::function<void()> on_timeout) {
  return sim_->Schedule(budget, [this, state, on_timeout = std::move(on_timeout)] {
    if (state->completed) {
      return;
    }
    state->aborted = true;
    ++timeouts_;
    if (state->flow != 0) {
      link_->CancelFlow(state->flow);
      state->flow = 0;
    }
    on_timeout();
  });
}

void Endpoint::RetryOrFail(int attempt, std::function<void(int)> retry,
                           const std::shared_ptr<StatusDone>& done) {
  if (attempt < policy_.max_attempts) {
    ++retries_;
    const Duration backoff = BackoffDelay(attempt);
    ODY_TRACE_INSTANT2(sim_->trace(), kRpc, "rpc_retry", sim_->now(), id_, "attempt",
                       attempt, "backoff_us", static_cast<double>(backoff));
    sim_->Schedule(backoff, [retry = std::move(retry), attempt] { retry(attempt + 1); });
    return;
  }
  ++exchanges_failed_;
  ODY_TRACE_INSTANT1(sim_->trace(), kRpc, "rpc_failed", sim_->now(), id_, "attempts", attempt);
  log_.RecordFailure(sim_->now(), attempt);
  if (*done) {
    (*done)(Status(StatusCode::kDeadlineExceeded,
                   name_ + ": exchange exhausted " + std::to_string(attempt) + " attempts"));
  }
}

Duration Endpoint::BackoffDelay(int attempt) {
  double delay = static_cast<double>(policy_.backoff_base);
  for (int i = 1; i < attempt; ++i) {
    delay *= policy_.backoff_multiplier;
  }
  if (policy_.jitter > 0.0) {
    // Seeded jitter from the simulation's stream keeps trials reproducible
    // while decorrelating concurrent endpoints' retry schedules.
    delay *= sim_->rng().Uniform(1.0 - policy_.jitter, 1.0 + policy_.jitter);
  }
  return delay < 1.0 ? 1 : static_cast<Duration>(delay);
}

}  // namespace odyssey

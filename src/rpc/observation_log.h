// Per-endpoint observation logs for passive network monitoring (§6.2.1).
//
// The paper's user-level RPC mechanism logs two kinds of entries: *round
// trip* entries recorded for small exchanges (request/response time less
// server computation) and *throughput* entries arising from windowed bulk
// transfers.  Each distinct endpoint has its own log, and the viceroy
// subscribes to every log to drive estimation.

#ifndef SRC_RPC_OBSERVATION_LOG_H_
#define SRC_RPC_OBSERVATION_LOG_H_

#include <cstdint>
#include <vector>

#include "src/sim/time.h"

namespace odyssey {

// Identifies a client-server connection (an rpc::Endpoint).
using ConnectionId = uint64_t;

// A small request/response exchange: |rtt| excludes server compute time.
struct RoundTripObservation {
  Time at = 0;
  Duration rtt = 0;
};

// One window's worth of bulk data: |elapsed| spans window request to last
// byte received (or data sent to acknowledgement received).
struct ThroughputObservation {
  Time at = 0;
  double window_bytes = 0.0;
  Duration elapsed = 0;
};

// A transport failure: an exchange exhausted its timeout and bounded
// retries.  Passive monitoring cannot see a dead link through samples that
// never complete; failures are the only downward evidence an outage
// produces, so strategies treat them as disconnection signals.
struct FailureObservation {
  Time at = 0;
  // Attempts consumed before giving up (>= 1).
  int attempts = 0;
};

// Receives observations as they are logged.  Implemented by the viceroy's
// bandwidth strategies.
class LogListener {
 public:
  virtual ~LogListener() = default;
  virtual void OnRoundTrip(ConnectionId connection, const RoundTripObservation& obs) = 0;
  virtual void OnThroughput(ConnectionId connection, const ThroughputObservation& obs) = 0;
  // Default no-op: only disconnection-aware strategies care.
  virtual void OnFailure(ConnectionId connection, const FailureObservation& obs) {
    (void)connection;
    (void)obs;
  }
};

class ObservationLog {
 public:
  explicit ObservationLog(ConnectionId connection) : connection_(connection) {}

  ConnectionId connection() const { return connection_; }

  void AddListener(LogListener* listener) { listeners_.push_back(listener); }
  void RemoveListener(LogListener* listener) {
    std::erase(listeners_, listener);
  }

  void RecordRoundTrip(Time at, Duration rtt) {
    round_trips_.push_back(RoundTripObservation{at, rtt});
    for (LogListener* listener : listeners_) {
      listener->OnRoundTrip(connection_, round_trips_.back());
    }
  }

  void RecordThroughput(Time at, double window_bytes, Duration elapsed) {
    throughputs_.push_back(ThroughputObservation{at, window_bytes, elapsed});
    for (LogListener* listener : listeners_) {
      listener->OnThroughput(connection_, throughputs_.back());
    }
  }

  void RecordFailure(Time at, int attempts) {
    failures_.push_back(FailureObservation{at, attempts});
    for (LogListener* listener : listeners_) {
      listener->OnFailure(connection_, failures_.back());
    }
  }

  const std::vector<RoundTripObservation>& round_trips() const { return round_trips_; }
  const std::vector<ThroughputObservation>& throughputs() const { return throughputs_; }
  const std::vector<FailureObservation>& failures() const { return failures_; }

  // Total bytes covered by throughput entries; used by demand accounting
  // sanity checks.
  double TotalBulkBytes() const {
    double total = 0.0;
    for (const auto& obs : throughputs_) {
      total += obs.window_bytes;
    }
    return total;
  }

 private:
  ConnectionId connection_;
  std::vector<RoundTripObservation> round_trips_;
  std::vector<ThroughputObservation> throughputs_;
  std::vector<FailureObservation> failures_;
  std::vector<LogListener*> listeners_;
};

}  // namespace odyssey

#endif  // SRC_RPC_OBSERVATION_LOG_H_

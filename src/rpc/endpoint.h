// A user-level RPC endpoint over the emulated network.
//
// Models the paper's RPC mechanism (built on UDP): a conventional
// request/response protocol for small exchanges plus a sliding-window
// bulk-transfer protocol.  Every operation feeds the endpoint's observation
// log; wardens never contact servers except through an Endpoint, mirroring
// the Odyssey architecture in which wardens are entirely responsible for
// server communication.
//
// All calls are asynchronous: completion callbacks fire after the modeled
// latency, transmission and server-compute delays have elapsed in virtual
// time.

#ifndef SRC_RPC_ENDPOINT_H_
#define SRC_RPC_ENDPOINT_H_

#include <functional>
#include <string>

#include "src/net/link.h"
#include "src/rpc/observation_log.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace odyssey {

// Size of protocol control messages (requests, acknowledgements).  Small so
// the measured round trip is dominated by latency, matching the paper's
// 21 ms protocol RTT at both bandwidth levels.
inline constexpr double kControlMessageBytes = 64.0;

// Default bulk-transfer window.  64 KB at 120 KB/s yields ~0.55 s windows;
// because a throughput estimate is generated only at the end of a window,
// this reproduces the ~2 s Step-Down settling time the paper reports.
inline constexpr double kDefaultWindowBytes = 64.0 * 1024.0;

class Endpoint {
 public:
  using Done = std::function<void()>;

  // |name| identifies the remote service for diagnostics.  Each endpoint is
  // assigned a process-unique ConnectionId.
  Endpoint(Simulation* sim, Link* link, std::string name);

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  ConnectionId id() const { return id_; }
  const std::string& name() const { return name_; }
  ObservationLog& log() { return log_; }
  const ObservationLog& log() const { return log_; }
  Simulation* sim() { return sim_; }
  Link* link() { return link_; }

  double window_bytes() const { return window_bytes_; }
  void set_window_bytes(double bytes) { window_bytes_ = bytes; }

  // Small request/response exchange.  |server_compute| is the (known)
  // server-side processing time, excluded from the logged round trip.
  void Call(double request_bytes, double response_bytes, Duration server_compute, Done done);

  // Minimal exchange with control-sized messages; logs a round trip.
  void Ping(Done done);

  // Transfers one window's worth of data from the server, logging a
  // throughput entry spanning request to last byte.
  void FetchWindow(double bytes, Done done);

  // Full bulk fetch: a control exchange (logging a round trip, covering the
  // transfer request and any server compute), then |total_bytes| moved in
  // window-sized units, each logging a throughput entry.
  void Fetch(double total_bytes, Duration server_compute, Done done);

  // Pushes |total_bytes| to the server in window-sized units; each window's
  // send-to-acknowledgement time logs a throughput entry.  Symmetric to
  // Fetch under the link's shared-capacity model.
  void Send(double total_bytes, Duration server_compute, Done done);

  // Total application payload bytes moved (both directions).
  double bytes_transferred() const { return bytes_transferred_; }

 private:
  // Runs the window pipeline for |remaining| bytes, then |done|.
  void TransferWindows(double remaining, Done done);

  Simulation* sim_;
  Link* link_;
  std::string name_;
  ConnectionId id_;
  ObservationLog log_;
  double window_bytes_ = kDefaultWindowBytes;
  double bytes_transferred_ = 0.0;

  static ConnectionId next_id_;
};

}  // namespace odyssey

#endif  // SRC_RPC_ENDPOINT_H_

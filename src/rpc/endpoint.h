// A user-level RPC endpoint over the emulated network.
//
// Models the paper's RPC mechanism (built on UDP): a conventional
// request/response protocol for small exchanges plus a sliding-window
// bulk-transfer protocol.  Every operation feeds the endpoint's observation
// log; wardens never contact servers except through an Endpoint, mirroring
// the Odyssey architecture in which wardens are entirely responsible for
// server communication.
//
// All calls are asynchronous: completion callbacks fire after the modeled
// latency, transmission and server-compute delays have elapsed in virtual
// time.
//
// Failure semantics: with a RetryPolicy installed (see set_retry_policy),
// every exchange carries a per-attempt timeout; a lost or stalled attempt
// is retried with exponential backoff plus seeded jitter up to a bounded
// attempt budget, after which the status-aware completion fires with
// kDeadlineExceeded and a FailureObservation enters the log.  Only the
// final successful attempt's own timing is logged, so retransmissions never
// inflate the estimator's round-trip or throughput samples.  Without a
// policy (the default) behavior is the original fair-weather protocol:
// infinite patience, no retries — existing timing-sensitive callers are
// unaffected.

#ifndef SRC_RPC_ENDPOINT_H_
#define SRC_RPC_ENDPOINT_H_

#include <functional>
#include <memory>
#include <string>

#include "src/core/status.h"
#include "src/net/fault_injector.h"
#include "src/net/link.h"
#include "src/rpc/observation_log.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace odyssey {

// Size of protocol control messages (requests, acknowledgements).  Small so
// the measured round trip is dominated by latency, matching the paper's
// 21 ms protocol RTT at both bandwidth levels.
inline constexpr double kControlMessageBytes = 64.0;

// Default bulk-transfer window.  64 KB at 120 KB/s yields ~0.55 s windows;
// because a throughput estimate is generated only at the end of a window,
// this reproduces the ~2 s Step-Down settling time the paper reports.
inline constexpr double kDefaultWindowBytes = 64.0 * 1024.0;

// Timeout, retry and backoff policy for one endpoint.  A zero |timeout|
// disables the whole mechanism (the default): calls wait forever, exactly
// as the paper's fair-weather protocol did.
struct RetryPolicy {
  // Per-attempt deadline for the network portion of an exchange; known
  // server compute is budgeted on top, so a slow server is not mistaken
  // for a dead link.  Zero disables timeouts and retries.
  Duration timeout = 0;
  // Total attempts per exchange (first try + retries), >= 1.
  int max_attempts = 4;
  // Delay before retry k (1-based) is backoff_base * multiplier^(k-1),
  // multiplicatively jittered by +/- jitter to decorrelate retry storms.
  Duration backoff_base = 100 * kMillisecond;
  double backoff_multiplier = 2.0;
  double jitter = 0.2;
  // Floor transfer rate used to size an attempt's deadline: moving |bytes|
  // earns an extra bytes / min_rate_bytes_per_sec of patience on top of
  // |timeout|, so a large window on a slow-but-alive link is not mistaken
  // for a dead one.
  double min_rate_bytes_per_sec = 16.0 * 1024.0;

  bool enabled() const { return timeout > 0; }

  // A conventional profile for fault-tolerant operation: 2 s attempts,
  // 4 attempts, 100 ms initial backoff doubling per retry.
  static RetryPolicy Default() {
    RetryPolicy policy;
    policy.timeout = 2 * kSecond;
    return policy;
  }
};

class Endpoint {
 public:
  using Done = std::function<void()>;
  using StatusDone = std::function<void(Status)>;

  // |name| identifies the remote service for diagnostics.  Each endpoint is
  // assigned the next ConnectionId of its simulation, so id assignment is a
  // pure function of construction order within the trial — independent of
  // any other trial running in the process.
  Endpoint(Simulation* sim, Link* link, std::string name);

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  ConnectionId id() const { return id_; }
  const std::string& name() const { return name_; }
  ObservationLog& log() { return log_; }
  const ObservationLog& log() const { return log_; }
  Simulation* sim() { return sim_; }
  Link* link() { return link_; }

  double window_bytes() const { return window_bytes_; }
  void set_window_bytes(double bytes) { window_bytes_ = bytes; }

  // Installs the failure semantics.  Affects exchanges started afterwards.
  void set_retry_policy(const RetryPolicy& policy) { policy_ = policy; }
  const RetryPolicy& retry_policy() const { return policy_; }

  // Routes this endpoint's messages through |injector| (null detaches).
  // The injector must outlive the endpoint's traffic.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  // --- Status-aware interface ---

  // Small request/response exchange.  |server_compute| is the (known)
  // server-side processing time, excluded from the logged round trip.
  void Call(double request_bytes, double response_bytes, Duration server_compute,
            StatusDone done);

  // Minimal exchange with control-sized messages; logs a round trip.
  void Ping(StatusDone done);

  // Transfers one window's worth of data from the server, logging a
  // throughput entry spanning request to last byte.
  void FetchWindow(double bytes, StatusDone done);

  // Full bulk fetch: a control exchange (logging a round trip, covering the
  // transfer request and any server compute), then |total_bytes| moved in
  // window-sized units, each logging a throughput entry.  Fails with the
  // first window's error; completed windows stay counted.
  void Fetch(double total_bytes, Duration server_compute, StatusDone done);

  // Pushes |total_bytes| to the server in window-sized units; each window's
  // send-to-acknowledgement time logs a throughput entry.  Symmetric to
  // Fetch under the link's shared-capacity model.
  void Send(double total_bytes, Duration server_compute, StatusDone done);

  // --- Legacy interface (status discarded; kept for fair-weather callers) ---

  void Call(double request_bytes, double response_bytes, Duration server_compute, Done done) {
    Call(request_bytes, response_bytes, server_compute, Wrap(std::move(done)));
  }
  void Ping(Done done) { Ping(Wrap(std::move(done))); }
  void FetchWindow(double bytes, Done done) { FetchWindow(bytes, Wrap(std::move(done))); }
  void Fetch(double total_bytes, Duration server_compute, Done done) {
    Fetch(total_bytes, server_compute, Wrap(std::move(done)));
  }
  void Send(double total_bytes, Duration server_compute, Done done) {
    Send(total_bytes, server_compute, Wrap(std::move(done)));
  }

  // Total application payload bytes moved (both directions).
  double bytes_transferred() const { return bytes_transferred_; }

  // --- Failure-path accounting (tests, diagnostics) ---

  // Retries issued over the endpoint's lifetime (attempts beyond the first).
  uint64_t retries() const { return retries_; }
  // Exchanges that exhausted their attempt budget.
  uint64_t exchanges_failed() const { return exchanges_failed_; }
  // Attempts abandoned by the per-attempt timeout.
  uint64_t timeouts() const { return timeouts_; }

 private:
  // Per-attempt bookkeeping shared between an attempt's continuations and
  // its timeout event, so exactly one of them settles the attempt.
  struct AttemptState {
    bool aborted = false;    // the timeout fired; late completions are dropped
    bool completed = false;  // the attempt finished; the timeout is a no-op
    FlowId flow = 0;         // in-flight flow, cancelled on abort (0 = none)
  };
  using AttemptPtr = std::shared_ptr<AttemptState>;

  static StatusDone Wrap(Done done) {
    return [done = std::move(done)](Status) {
      if (done) {
        done();
      }
    };
  }

  // One attempt of the request/response exchange.
  void CallAttempt(double request_bytes, double response_bytes, Duration server_compute,
                   int attempt, StatusDone done);
  // One attempt of the windowed transfer.
  void WindowAttempt(double bytes, int attempt, StatusDone done);

  // Starts |bytes| through the link (or silently loses them, per the
  // injector), invoking |next| only if the attempt is still live.
  void SendMessage(double bytes, const AttemptPtr& state, std::function<void()> next);

  // Arms the per-attempt timeout; |on_timeout| runs the retry-or-fail path.
  EventHandle ArmTimeout(Duration budget, const AttemptPtr& state,
                         std::function<void()> on_timeout);

  // Retry after backoff, or fail the exchange and log the failure.  |done|
  // is shared with the retry closure; exactly one of the two consumes it.
  void RetryOrFail(int attempt, std::function<void(int)> retry,
                   const std::shared_ptr<StatusDone>& done);

  // Backoff before retry |attempt| (1-based retry count), jittered.
  Duration BackoffDelay(int attempt);

  // Runs the window pipeline for |remaining| bytes, then |done|.
  void TransferWindows(double remaining, StatusDone done);

  Simulation* sim_;
  Link* link_;
  std::string name_;
  ConnectionId id_;
  ObservationLog log_;
  double window_bytes_ = kDefaultWindowBytes;
  double bytes_transferred_ = 0.0;
  RetryPolicy policy_;
  FaultInjector* injector_ = nullptr;
  uint64_t retries_ = 0;
  uint64_t exchanges_failed_ = 0;
  uint64_t timeouts_ = 0;
};

}  // namespace odyssey

#endif  // SRC_RPC_ENDPOINT_H_

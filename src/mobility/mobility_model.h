// Mobility models: deterministic 2-D motion tracks for waveform generation.
//
// The paper evaluates agility against fixed reference waveforms, but a real
// mobile client's bandwidth is a function of *motion* — walking out of a
// cell, driving a street grid, loitering at a hotspot.  Each model here is a
// pure function of (seed, params, virtual time): construction precomputes
// the whole track from a SplitMix64-derived stream, and PositionAt(t) only
// interpolates, so identical inputs give bit-identical tracks on every
// platform and at any worker count.  The model taxonomy (random waypoint,
// Gauss-Markov, urban grid, trace replay) follows the INET catalogue the
// ROADMAP points at.
//
// Determinism rules (enforced by ody_lint's unseeded-random rule, which is
// stricter under src/mobility): models draw entropy only from the explicit
// seed parameter via src/sim/random.h — never from <random> engines,
// <random> distributions, or literal-seeded generators.

#ifndef SRC_MOBILITY_MOBILITY_MODEL_H_
#define SRC_MOBILITY_MOBILITY_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/sim/time.h"

namespace odyssey {

// A point in the arena, meters.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

double Distance(const Vec2& a, const Vec2& b);

// The rectangular region a model is confined to, meters.  Positions always
// lie in [0, width] x [0, height].
struct Arena {
  double width_m = 1000.0;
  double height_m = 1000.0;
};

// A 2-D position track over virtual time.  PositionAt is total: times
// before the track starts hold the initial position, times past the end
// hold the final one (mirroring ReplayTrace::At's final-segment rule).
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  virtual Vec2 PositionAt(Time t) const = 0;

  // The arena the track is bounded to.
  virtual const Arena& arena() const = 0;

  // Upper bound on instantaneous speed: for any t and dt > 0,
  // Distance(PositionAt(t), PositionAt(t + dt)) <= max_speed_mps() * dt.
  // The property tests in tests/mobility_test.cc hold every model to this.
  virtual double max_speed_mps() const = 0;

  virtual const char* name() const = 0;
};

// --- Random waypoint ---
//
// The classic pedestrian model: pick a uniform destination, walk to it at a
// uniform speed, pause, repeat.

struct RandomWaypointParams {
  Arena arena;
  double min_speed_mps = 0.7;        // slow walk
  double max_speed_mps = 2.0;        // brisk walk
  Duration max_pause = 5 * kSecond;  // uniform pause in [0, max_pause]
  Duration duration = 120 * kSecond;
};

// --- Manhattan grid ---
//
// An urban street grid: the walker moves along streets spaced block_m
// apart, and at each intersection turns left or right with probability
// turn_probability each (else continues straight), occasionally stopping
// as if at a light.  Headings that would leave the arena are re-drawn from
// the legal set, so a corner never teleports the walker.

struct ManhattanGridParams {
  Arena arena;
  double block_m = 100.0;
  double speed_mps = 12.0;  // city driving
  double turn_probability = 0.25;
  double stop_probability = 0.15;    // chance of stopping at an intersection
  Duration max_stop = 4 * kSecond;   // uniform stop in [0, max_stop]
  Duration duration = 120 * kSecond;
};

// --- Gauss-Markov ---
//
// Speed and heading evolve as first-order autoregressive processes:
// alpha = 1 keeps the previous velocity (straight line), alpha = 0 is
// memoryless Brownian wandering.  Near an arena edge the mean heading
// steers back toward the center, the standard boundary treatment.

struct GaussMarkovParams {
  Arena arena;
  double mean_speed_mps = 1.5;
  double max_speed_mps = 3.0;  // speeds are clamped to [0, max]
  double alpha = 0.75;         // memory
  double speed_sigma = 0.5;
  double heading_sigma_rad = 0.6;
  Duration step = kSecond;  // AR update period
  Duration duration = 120 * kSecond;
};

// --- Waypoint trace ---
//
// Replays the embedded vehicular trace table: a ~10-minute synthetic city
// drive (depart, cruise an avenue, stop at lights, cross town, loiter,
// return) recorded as (seconds, x, y) waypoints.  time_scale stretches the
// schedule (2.0 = half speed), space_scale the geometry; the model is
// deterministic regardless of seed.

struct WaypointTraceParams {
  double time_scale = 1.0;
  double space_scale = 1.0;
};

// One precomputed leg of a track: linear motion from |from| at time
// |begin| to |to| at time |end| (a pause when from == to).
struct TrackLeg {
  Time begin = 0;
  Time end = 0;
  Vec2 from;
  Vec2 to;
};

// Shared interpolating base: concrete models precompute legs_ in their
// constructor and inherit PositionAt.
class LegTrackModel : public MobilityModel {
 public:
  Vec2 PositionAt(Time t) const override;

 protected:
  std::vector<TrackLeg> legs_;
};

class RandomWaypoint final : public LegTrackModel {
 public:
  RandomWaypoint(const RandomWaypointParams& params, uint64_t seed);

  const Arena& arena() const override { return params_.arena; }
  double max_speed_mps() const override { return params_.max_speed_mps; }
  const char* name() const override { return "random_waypoint"; }

 private:
  RandomWaypointParams params_;
};

class ManhattanGrid final : public LegTrackModel {
 public:
  ManhattanGrid(const ManhattanGridParams& params, uint64_t seed);

  const Arena& arena() const override { return params_.arena; }
  double max_speed_mps() const override { return params_.speed_mps; }
  const char* name() const override { return "manhattan_grid"; }

 private:
  ManhattanGridParams params_;
};

class GaussMarkov final : public LegTrackModel {
 public:
  GaussMarkov(const GaussMarkovParams& params, uint64_t seed);

  const Arena& arena() const override { return params_.arena; }
  double max_speed_mps() const override { return params_.max_speed_mps; }
  const char* name() const override { return "gauss_markov"; }

 private:
  GaussMarkovParams params_;
};

class WaypointTrace final : public LegTrackModel {
 public:
  explicit WaypointTrace(const WaypointTraceParams& params = {});

  const Arena& arena() const override { return arena_; }
  double max_speed_mps() const override { return max_speed_mps_; }
  const char* name() const override { return "waypoint_trace"; }

 private:
  Arena arena_;
  double max_speed_mps_ = 0.0;
};

}  // namespace odyssey

#endif  // SRC_MOBILITY_MOBILITY_MODEL_H_

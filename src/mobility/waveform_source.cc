#include "src/mobility/waveform_source.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "src/sim/random.h"

namespace odyssey {
namespace {

// Stream tag separating the waveform pipeline's seed derivations from every
// other consumer of a trial seed.
constexpr uint64_t kWaveformTag = 0x6f64796d6f62ULL;  // "odymob"

}  // namespace

MobilityWaveformSource::MobilityWaveformSource(const MobilityModel* model,
                                               const RadioEnvironment* environment)
    : model_(model), environment_(environment) {}

ReplayTrace MobilityWaveformSource::Sample(const WaveformSourceOptions& options) const {
  ReplayTrace trace;
  if (options.duration <= 0) {
    return trace;
  }
  const Duration period = options.sample_period < 1 ? 1 : options.sample_period;
  TraceSegment current;
  bool have_segment = false;
  Time t = 0;
  while (t < options.duration) {
    const Duration span = std::min(period, options.duration - t);
    const BandwidthTier& tier = environment_->TierAt(model_->PositionAt(t));
    if (have_segment && tier.bandwidth_bps == current.bandwidth_bps &&
        tier.latency == current.latency) {
      current.duration += span;
    } else {
      if (have_segment) {
        trace.Append(current);
      }
      current = TraceSegment{span, tier.bandwidth_bps, tier.latency};
      have_segment = true;
    }
    t += span;
  }
  if (have_segment) {
    trace.Append(current);
  }
  if (options.ensure_live_tail && !trace.empty() &&
      trace.segments().back().bandwidth_bps <= 0.0) {
    // Track crawled to a stop inside a shadow: grant the cell-edge tier so
    // in-flight transfers can drain (see WaveformSourceOptions).
    const BandwidthTier& edge = WaveLanTiers().back();
    std::vector<TraceSegment> segments = trace.segments();
    segments.back().bandwidth_bps = edge.bandwidth_bps;
    segments.back().latency = edge.latency;
    trace = ReplayTrace(std::move(segments));
  }
  return trace;
}

const char* MobilityModelKindName(MobilityModelKind kind) {
  switch (kind) {
    case MobilityModelKind::kRandomWaypoint:
      return "random_waypoint";
    case MobilityModelKind::kManhattanGrid:
      return "manhattan_grid";
    case MobilityModelKind::kGaussMarkov:
      return "gauss_markov";
    case MobilityModelKind::kWaypointTrace:
      return "waypoint_trace";
  }
  return "unknown";
}

std::unique_ptr<MobilityModel> MakeMobilityModel(const MobilityScenarioSpec& spec,
                                                 uint64_t seed) {
  const double scale = spec.speed_scale > 0.0 ? spec.speed_scale : 1.0;
  switch (spec.model) {
    case MobilityModelKind::kRandomWaypoint: {
      RandomWaypointParams params;
      params.arena = spec.arena;
      params.min_speed_mps = 0.7 * scale;
      params.max_speed_mps = 2.0 * scale;
      params.duration = spec.duration;
      return std::make_unique<RandomWaypoint>(params, seed);
    }
    case MobilityModelKind::kManhattanGrid: {
      ManhattanGridParams params;
      params.arena = spec.arena;
      params.speed_mps = 12.0 * scale;
      params.duration = spec.duration;
      return std::make_unique<ManhattanGrid>(params, seed);
    }
    case MobilityModelKind::kGaussMarkov: {
      GaussMarkovParams params;
      params.arena = spec.arena;
      params.mean_speed_mps = 1.5 * scale;
      params.max_speed_mps = 3.0 * scale;
      params.speed_sigma = 0.5 * scale;
      params.alpha = spec.memory;
      params.duration = spec.duration;
      return std::make_unique<GaussMarkov>(params, seed);
    }
    case MobilityModelKind::kWaypointTrace: {
      WaypointTraceParams params;
      params.time_scale = 1.0 / scale;
      return std::make_unique<WaypointTrace>(params);
    }
  }
  return nullptr;
}

ReplayTrace MakeMobilityWaveform(const MobilityScenarioSpec& spec, uint64_t seed) {
  SplitMix64 mix(seed ^ kWaveformTag);
  const uint64_t model_seed = mix.Next();
  const uint64_t radio_seed = mix.Next();
  const std::unique_ptr<MobilityModel> model = MakeMobilityModel(spec, model_seed);
  // Stations cover the model's arena (kWaypointTrace fixes its own geometry).
  const RadioEnvironment environment(spec.layout, model->arena(), spec.radio, radio_seed);
  const MobilityWaveformSource source(model.get(), &environment);
  WaveformSourceOptions options;
  options.duration = spec.duration;
  options.sample_period = spec.sample_period;
  options.ensure_live_tail = spec.ensure_live_tail;
  return source.Sample(options);
}

}  // namespace odyssey

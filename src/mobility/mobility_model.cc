#include "src/mobility/mobility_model.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iterator>

#include "src/sim/random.h"

namespace odyssey {
namespace {

// Per-model stream tags: two models built from the same trial seed must not
// share a random stream.
constexpr uint64_t kRandomWaypointTag = 0x6f64796d2d727770ULL;
constexpr uint64_t kManhattanTag = 0x6f64796d2d6d6768ULL;
constexpr uint64_t kGaussMarkovTag = 0x6f64796d2d676d6bULL;

constexpr double kPi = 3.14159265358979323846;

Duration UniformPause(Rng& rng, Duration max_pause) {
  if (max_pause <= 0) {
    return 0;
  }
  return static_cast<Duration>(rng.UniformInt(static_cast<uint64_t>(max_pause) + 1));
}

// At least one microsecond, so every leg has positive width and leg speed
// stays finite.
Duration TravelTime(double meters, double speed_mps) {
  const Duration travel = SecondsToDuration(meters / speed_mps);
  return travel < 1 ? 1 : travel;
}

// Wraps an angle to [-pi, pi].
double WrapAngle(double radians) {
  while (radians > kPi) {
    radians -= 2.0 * kPi;
  }
  while (radians < -kPi) {
    radians += 2.0 * kPi;
  }
  return radians;
}

// The embedded vehicular trace: a ~10-minute synthetic city drive over a
// 1200 x 800 m downtown grid — depart, cruise the avenue with stops at
// lights, a drop-off, a 60-second loiter at a hotspot, and the return leg.
// Cruise legs run at 12 m/s; pauses are rows that repeat a position.
struct TraceRow {
  double seconds;
  double x;
  double y;
};

constexpr TraceRow kVehicularTrace[] = {
    {0.0, 40.0, 40.0},     {15.0, 40.0, 40.0},    {45.0, 400.0, 40.0},
    {55.0, 400.0, 40.0},   {85.0, 760.0, 40.0},   {90.0, 760.0, 40.0},
    {120.0, 760.0, 400.0}, {150.0, 1160.0, 400.0}, {165.0, 1160.0, 400.0},
    {195.0, 1160.0, 760.0}, {225.0, 800.0, 760.0}, {255.0, 800.0, 400.0},
    {270.0, 800.0, 400.0}, {300.0, 440.0, 400.0},  {330.0, 440.0, 760.0},
    {390.0, 440.0, 760.0}, {420.0, 80.0, 760.0},   {450.0, 80.0, 400.0},
    {480.0, 80.0, 40.0},   {495.0, 80.0, 40.0},    {510.0, 40.0, 40.0},
    {600.0, 40.0, 40.0},
};

}  // namespace

double Distance(const Vec2& a, const Vec2& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

Vec2 LegTrackModel::PositionAt(Time t) const {
  if (legs_.empty()) {
    return Vec2{};
  }
  if (t <= legs_.front().begin) {
    return legs_.front().from;
  }
  if (t >= legs_.back().end) {
    return legs_.back().to;
  }
  // First leg whose end lies past |t|; legs tile [begin, back().end).
  const auto it = std::upper_bound(
      legs_.begin(), legs_.end(), t,
      [](Time value, const TrackLeg& leg) { return value < leg.end; });
  const TrackLeg& leg = *it;
  const Duration span = leg.end - leg.begin;
  if (span <= 0) {
    return leg.to;
  }
  const double f = static_cast<double>(t - leg.begin) / static_cast<double>(span);
  return Vec2{leg.from.x + (leg.to.x - leg.from.x) * f,
              leg.from.y + (leg.to.y - leg.from.y) * f};
}

RandomWaypoint::RandomWaypoint(const RandomWaypointParams& params, uint64_t seed)
    : params_(params) {
  Rng rng(SplitMix64(seed ^ kRandomWaypointTag).Next());
  Vec2 position{rng.Uniform(0.0, params_.arena.width_m),
                rng.Uniform(0.0, params_.arena.height_m)};
  Time t = 0;
  while (t < params_.duration) {
    const Vec2 target{rng.Uniform(0.0, params_.arena.width_m),
                      rng.Uniform(0.0, params_.arena.height_m)};
    const double speed = rng.Uniform(params_.min_speed_mps, params_.max_speed_mps);
    const Duration travel = TravelTime(Distance(position, target), speed);
    legs_.push_back(TrackLeg{t, t + travel, position, target});
    t += travel;
    position = target;
    const Duration pause = UniformPause(rng, params_.max_pause);
    if (pause > 0) {
      legs_.push_back(TrackLeg{t, t + pause, position, position});
      t += pause;
    }
  }
}

ManhattanGrid::ManhattanGrid(const ManhattanGridParams& params, uint64_t seed)
    : params_(params) {
  Rng rng(SplitMix64(seed ^ kManhattanTag).Next());
  // Streets tile the arena exactly: blocks stretch up from block_m so the
  // outermost streets coincide with the arena boundary.
  const int cells_x =
      std::max(1, static_cast<int>(params_.arena.width_m / params_.block_m));
  const int cells_y =
      std::max(1, static_cast<int>(params_.arena.height_m / params_.block_m));
  const double spacing_x = params_.arena.width_m / cells_x;
  const double spacing_y = params_.arena.height_m / cells_y;

  int i = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(cells_x) + 1));
  int j = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(cells_y) + 1));
  // Headings counter-clockwise: +x, +y, -x, -y.
  constexpr int kDx[] = {1, 0, -1, 0};
  constexpr int kDy[] = {0, 1, 0, -1};
  int heading = static_cast<int>(rng.UniformInt(4));

  const auto legal = [&](int h) {
    const int ni = i + kDx[h];
    const int nj = j + kDy[h];
    return ni >= 0 && ni <= cells_x && nj >= 0 && nj <= cells_y;
  };
  const auto pick_legal = [&] {
    int options[4];
    int count = 0;
    for (int h = 0; h < 4; ++h) {
      if (legal(h)) {
        options[count++] = h;
      }
    }
    return options[rng.UniformInt(static_cast<uint64_t>(count))];
  };

  Time t = 0;
  while (t < params_.duration) {
    if (legal(heading)) {
      const double u = rng.NextDouble();
      int chosen = heading;
      if (u < params_.turn_probability) {
        chosen = (heading + 1) % 4;  // left
      } else if (u < 2.0 * params_.turn_probability) {
        chosen = (heading + 3) % 4;  // right
      }
      heading = legal(chosen) ? chosen : pick_legal();
    } else {
      heading = pick_legal();
    }
    const Vec2 from{i * spacing_x, j * spacing_y};
    i += kDx[heading];
    j += kDy[heading];
    const Vec2 to{i * spacing_x, j * spacing_y};
    const Duration travel = TravelTime(Distance(from, to), params_.speed_mps);
    legs_.push_back(TrackLeg{t, t + travel, from, to});
    t += travel;
    if (rng.NextDouble() < params_.stop_probability) {
      const Duration stop = UniformPause(rng, params_.max_stop);
      if (stop > 0) {
        legs_.push_back(TrackLeg{t, t + stop, to, to});
        t += stop;
      }
    }
  }
}

GaussMarkov::GaussMarkov(const GaussMarkovParams& params, uint64_t seed) : params_(params) {
  Rng rng(SplitMix64(seed ^ kGaussMarkovTag).Next());
  const double width = params_.arena.width_m;
  const double height = params_.arena.height_m;
  // Start away from the edges so the first steps are unconstrained.
  Vec2 position{rng.Uniform(0.25 * width, 0.75 * width),
                rng.Uniform(0.25 * height, 0.75 * height)};
  double speed = std::clamp(params_.mean_speed_mps, 0.0, params_.max_speed_mps);
  double heading = rng.Uniform(-kPi, kPi);
  const double alpha = std::clamp(params_.alpha, 0.0, 1.0);
  const double carry = std::sqrt(std::max(0.0, 1.0 - alpha * alpha));
  const Duration step = params_.step < 1 ? 1 : params_.step;
  const double dt = DurationToSeconds(step);

  Time t = 0;
  while (t < params_.duration) {
    // Near an edge the mean heading steers back toward the center; the
    // update blends the shortest angular difference so headings never
    // accumulate unbounded turns.
    double mean_heading = heading;
    const double margin_x = 0.15 * width;
    const double margin_y = 0.15 * height;
    if (position.x < margin_x || position.x > width - margin_x || position.y < margin_y ||
        position.y > height - margin_y) {
      mean_heading = std::atan2(height / 2.0 - position.y, width / 2.0 - position.x);
    }
    speed = std::clamp(alpha * speed + (1.0 - alpha) * params_.mean_speed_mps +
                           carry * params_.speed_sigma * rng.Normal(0.0, 1.0),
                       0.0, params_.max_speed_mps);
    heading = WrapAngle(heading + (1.0 - alpha) * WrapAngle(mean_heading - heading) +
                        carry * params_.heading_sigma_rad * rng.Normal(0.0, 1.0));
    Vec2 next{position.x + speed * dt * std::cos(heading),
              position.y + speed * dt * std::sin(heading)};
    // Clamping projects onto the arena; projection is non-expansive, so the
    // step never exceeds speed * dt and the continuity bound holds.
    next.x = std::clamp(next.x, 0.0, width);
    next.y = std::clamp(next.y, 0.0, height);
    legs_.push_back(TrackLeg{t, t + step, position, next});
    position = next;
    t += step;
  }
}

WaypointTrace::WaypointTrace(const WaypointTraceParams& params) {
  const double time_scale = params.time_scale > 0.0 ? params.time_scale : 1.0;
  const double space_scale = params.space_scale > 0.0 ? params.space_scale : 1.0;
  arena_ = Arena{0.0, 0.0};  // grown to the trace's tight bounding box below
  constexpr size_t kRows = std::size(kVehicularTrace);
  for (size_t row = 0; row + 1 < kRows; ++row) {
    const TraceRow& a = kVehicularTrace[row];
    const TraceRow& b = kVehicularTrace[row + 1];
    const Time begin = SecondsToDuration(a.seconds * time_scale);
    Time end = SecondsToDuration(b.seconds * time_scale);
    if (end <= begin) {
      end = begin + 1;
    }
    const Vec2 from{a.x * space_scale, a.y * space_scale};
    const Vec2 to{b.x * space_scale, b.y * space_scale};
    legs_.push_back(TrackLeg{begin, end, from, to});
    arena_.width_m = std::max({arena_.width_m, from.x, to.x});
    arena_.height_m = std::max({arena_.height_m, from.y, to.y});
    const double leg_speed =
        Distance(from, to) / DurationToSeconds(end - begin);
    max_speed_mps_ = std::max(max_speed_mps_, leg_speed);
  }
}

}  // namespace odyssey

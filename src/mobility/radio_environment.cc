#include "src/mobility/radio_environment.h"

#include <algorithm>
#include <cmath>

#include "src/sim/random.h"

namespace odyssey {
namespace {

// Corner-hash mixing constants (distinct odd multipliers per axis).
constexpr uint64_t kNoiseGammaX = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kNoiseGammaY = 0xc2b2ae3d27d4eb4fULL;

}  // namespace

const char* BaseStationLayoutName(BaseStationLayout layout) {
  switch (layout) {
    case BaseStationLayout::kSingleCell:
      return "single_cell";
    case BaseStationLayout::kCellGrid:
      return "cell_grid";
    case BaseStationLayout::kCorridor:
      return "corridor";
  }
  return "unknown";
}

const std::vector<BandwidthTier>& WaveLanTiers() {
  static const std::vector<BandwidthTier> kTiers = {
      {16.0, 256.0 * 1024.0, 8 * kMillisecond},   // full-rate WaveLAN, ~2 Mb/s
      {11.0, 128.0 * 1024.0, 12 * kMillisecond},  // ~1 Mb/s
      {7.0, 64.0 * 1024.0, 18 * kMillisecond},
      {4.0, 32.0 * 1024.0, 30 * kMillisecond},
      {2.0, 12.0 * 1024.0, 45 * kMillisecond},  // cell edge
  };
  return kTiers;
}

const BandwidthTier& DeadZoneTier() {
  static const BandwidthTier kDead = {-1e9, 0.0, 60 * kMillisecond};
  return kDead;
}

RadioEnvironment::RadioEnvironment(BaseStationLayout layout, const Arena& arena,
                                   const RadioParams& params, uint64_t seed)
    : params_(params), seed_(seed) {
  const double spacing = std::max(params_.station_spacing_m, 1.0);
  switch (layout) {
    case BaseStationLayout::kSingleCell:
      stations_.push_back(Vec2{arena.width_m / 2.0, arena.height_m / 2.0});
      break;
    case BaseStationLayout::kCellGrid: {
      const int cols = std::max(1, static_cast<int>(std::ceil(arena.width_m / spacing)));
      const int rows = std::max(1, static_cast<int>(std::ceil(arena.height_m / spacing)));
      for (int row = 0; row < rows; ++row) {
        for (int col = 0; col < cols; ++col) {
          stations_.push_back(Vec2{(col + 0.5) * arena.width_m / cols,
                                   (row + 0.5) * arena.height_m / rows});
        }
      }
      break;
    }
    case BaseStationLayout::kCorridor: {
      const int cols = std::max(2, static_cast<int>(std::ceil(arena.width_m / spacing)));
      for (int col = 0; col < cols; ++col) {
        stations_.push_back(Vec2{(col + 0.5) * arena.width_m / cols, arena.height_m / 2.0});
      }
      break;
    }
  }
}

double RadioEnvironment::CornerNoise(int64_t i, int64_t j) const {
  SplitMix64 mix(seed_ ^ (static_cast<uint64_t>(i) * kNoiseGammaX) ^
                 (static_cast<uint64_t>(j) * kNoiseGammaY));
  // Sum of three uniforms, centered and scaled: approximately normal with
  // unit standard deviation, bounded to [-3, 3], and fully determined by
  // (seed, corner) — no engine state leaks between corners.
  double sum = 0.0;
  for (int k = 0; k < 3; ++k) {
    sum += static_cast<double>(mix.Next() >> 11) * 0x1.0p-53;
  }
  return (sum - 1.5) * 2.0;
}

double RadioEnvironment::ShadowingDbAt(const Vec2& position) const {
  const double cell = std::max(params_.shadowing_cell_m, 1e-3);
  const double gx = position.x / cell;
  const double gy = position.y / cell;
  const double fi = std::floor(gx);
  const double fj = std::floor(gy);
  const auto i = static_cast<int64_t>(fi);
  const auto j = static_cast<int64_t>(fj);
  double tx = gx - fi;
  double ty = gy - fj;
  // Smoothstep fade keeps the field C1-continuous across cell borders.
  tx = tx * tx * (3.0 - 2.0 * tx);
  ty = ty * ty * (3.0 - 2.0 * ty);
  const double n00 = CornerNoise(i, j);
  const double n10 = CornerNoise(i + 1, j);
  const double n01 = CornerNoise(i, j + 1);
  const double n11 = CornerNoise(i + 1, j + 1);
  const double nx0 = n00 + (n10 - n00) * tx;
  const double nx1 = n01 + (n11 - n01) * tx;
  return params_.shadowing_sigma_db * (nx0 + (nx1 - nx0) * ty);
}

double RadioEnvironment::SnrDbAt(const Vec2& position) const {
  double best_rx_dbm = -1e12;
  for (const Vec2& station : stations_) {
    const double distance =
        std::max(Distance(position, station), params_.reference_distance_m);
    const double loss =
        params_.reference_loss_db +
        10.0 * params_.path_loss_exponent * std::log10(distance / params_.reference_distance_m);
    best_rx_dbm = std::max(best_rx_dbm, params_.tx_power_dbm - loss);
  }
  return best_rx_dbm + ShadowingDbAt(position) - params_.noise_floor_dbm;
}

const BandwidthTier& RadioEnvironment::TierAt(const Vec2& position) const {
  const double snr = SnrDbAt(position);
  for (const BandwidthTier& tier : WaveLanTiers()) {
    if (snr >= tier.min_snr_db) {
      return tier;
    }
  }
  return DeadZoneTier();
}

}  // namespace odyssey

// MobilityWaveformSource: samples a (model, radio environment) pair into the
// piecewise-constant ReplayTrace representation the rest of the system
// already consumes — the Modulator, the estimator, and all six wardens run
// unmodified over a motion-generated waveform.
//
// MobilityScenarioSpec + MakeMobilityWaveform is the one-call entry point
// the campaign variants, the fuzzer's mobility dimension, and the examples
// share: a spec plus a seed deterministically yields a waveform.

#ifndef SRC_MOBILITY_WAVEFORM_SOURCE_H_
#define SRC_MOBILITY_WAVEFORM_SOURCE_H_

#include <cstdint>
#include <memory>

#include "src/mobility/mobility_model.h"
#include "src/mobility/radio_environment.h"
#include "src/sim/time.h"
#include "src/tracemod/replay_trace.h"

namespace odyssey {

struct WaveformSourceOptions {
  Duration duration = 120 * kSecond;
  Duration sample_period = 500 * kMillisecond;
  // When true and the sampled waveform ends inside a radio shadow, the final
  // segment's parameters are replaced with the lowest live tier.  The
  // Modulator holds the final segment forever, so a dead tail would strand
  // every transfer still in flight at the end of the trace; the fuzzer's
  // drain guarantee (and the hand-rolled generator's "final segment has
  // positive bandwidth" rule) depend on this.
  bool ensure_live_tail = true;
};

class MobilityWaveformSource {
 public:
  // Neither pointer is owned; both must outlive the source.
  MobilityWaveformSource(const MobilityModel* model, const RadioEnvironment* environment);

  // Samples position -> tier every sample_period and merges runs of equal
  // parameters into segments.  Segment durations sum to exactly
  // options.duration.
  ReplayTrace Sample(const WaveformSourceOptions& options) const;

 private:
  const MobilityModel* model_;
  const RadioEnvironment* environment_;
};

// --- Named specs: the shared entry point ---

enum class MobilityModelKind : int {
  kRandomWaypoint = 0,
  kManhattanGrid = 1,
  kGaussMarkov = 2,
  kWaypointTrace = 3,
};

inline constexpr int kMobilityModelKinds = 4;

const char* MobilityModelKindName(MobilityModelKind kind);

// A complete mobility scenario: which model moves through which coverage
// layout, and how the pipeline is sampled.  speed_scale multiplies the
// model's default speeds (pedestrian defaults; ~3x is a jog, ~8x a drive);
// for kWaypointTrace it compresses the embedded drive's schedule instead.
// kWaypointTrace ignores |arena| (the embedded trace fixes its own).
struct MobilityScenarioSpec {
  MobilityModelKind model = MobilityModelKind::kRandomWaypoint;
  BaseStationLayout layout = BaseStationLayout::kSingleCell;
  Arena arena;
  double speed_scale = 1.0;
  double memory = 0.75;  // Gauss-Markov alpha (ignored by the other models)
  Duration duration = 120 * kSecond;
  Duration sample_period = 500 * kMillisecond;
  RadioParams radio;
  bool ensure_live_tail = true;
};

// Builds the spec's model from a SplitMix64-derived stream of |seed|.
std::unique_ptr<MobilityModel> MakeMobilityModel(const MobilityScenarioSpec& spec,
                                                 uint64_t seed);

// The full pipeline: model -> radio environment (stations covering the
// model's arena) -> sampled waveform.  A pure function of (spec, seed).
ReplayTrace MakeMobilityWaveform(const MobilityScenarioSpec& spec, uint64_t seed);

}  // namespace odyssey

#endif  // SRC_MOBILITY_WAVEFORM_SOURCE_H_

// The signal model: position -> strongest base station -> log-distance path
// loss with deterministic spatially-correlated shadowing -> SNR -> a stepped
// bandwidth tier (WaveLAN-like 2 Mb/s stepping down to a dead zone).
//
// Everything is a pure function of (layout, arena, params, seed, position):
// shadowing is value noise over a fixed grid of SplitMix64-hashed corners,
// so the same coordinates always see the same fade and two workers sampling
// the same environment agree bit for bit.

#ifndef SRC_MOBILITY_RADIO_ENVIRONMENT_H_
#define SRC_MOBILITY_RADIO_ENVIRONMENT_H_

#include <cstdint>
#include <vector>

#include "src/mobility/mobility_model.h"
#include "src/sim/time.h"

namespace odyssey {

// How base stations cover the arena.
enum class BaseStationLayout : int {
  kSingleCell = 0,  // one station at the arena center
  kCellGrid = 1,    // stations on a grid, one per ~station_spacing_m cell
  kCorridor = 2,    // a line of stations along the arena's horizontal axis
};

inline constexpr int kBaseStationLayouts = 3;

const char* BaseStationLayoutName(BaseStationLayout layout);

struct RadioParams {
  double tx_power_dbm = 20.0;
  double reference_loss_db = 40.0;  // path loss at the reference distance
  double reference_distance_m = 1.0;
  double path_loss_exponent = 3.0;
  double shadowing_sigma_db = 6.0;
  double shadowing_cell_m = 40.0;  // spatial correlation scale of the fading
  double noise_floor_dbm = -92.0;
  double station_spacing_m = 320.0;  // kCellGrid / kCorridor coverage pitch
};

// One rung of the bandwidth ladder: the rate and latency granted while the
// SNR is at least min_snr_db (and below the next rung up).
struct BandwidthTier {
  double min_snr_db = 0.0;
  double bandwidth_bps = 0.0;  // bytes/second, like TraceSegment
  Duration latency = 0;

  bool operator==(const BandwidthTier&) const = default;
};

// The WaveLAN-like ladder, best tier first: 256 KB/s (~2 Mb/s) at high SNR
// stepping down to 12 KB/s at the cell edge.  Positions below the last
// rung's threshold fall into DeadZoneTier().
const std::vector<BandwidthTier>& WaveLanTiers();

// The no-coverage tier: zero bandwidth (a radio shadow).
const BandwidthTier& DeadZoneTier();

class RadioEnvironment {
 public:
  RadioEnvironment(BaseStationLayout layout, const Arena& arena, const RadioParams& params,
                   uint64_t seed);

  const std::vector<Vec2>& stations() const { return stations_; }

  // Deterministic shadowing in dB at |position| (zero-mean, roughly
  // shadowing_sigma_db standard deviation, smooth over shadowing_cell_m).
  double ShadowingDbAt(const Vec2& position) const;

  // SNR via the strongest station: tx power minus log-distance path loss,
  // plus shadowing, over the noise floor.
  double SnrDbAt(const Vec2& position) const;

  // The bandwidth tier granted at |position| (DeadZoneTier() when the SNR
  // is below every rung).
  const BandwidthTier& TierAt(const Vec2& position) const;

 private:
  double CornerNoise(int64_t i, int64_t j) const;

  RadioParams params_;
  uint64_t seed_ = 0;
  std::vector<Vec2> stations_;
};

}  // namespace odyssey

#endif  // SRC_MOBILITY_RADIO_ENVIRONMENT_H_

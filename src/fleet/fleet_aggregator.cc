#include "src/fleet/fleet_aggregator.h"

#include <cmath>
#include <limits>
#include <utility>

#include "src/sim/random.h"

namespace odyssey {

FleetAggregator::FleetAggregator(Simulation* sim, FleetDispatcher* dispatcher, FleetNodeId self,
                                 uint64_t seed, const FleetAggregatorConfig& config)
    : sim_(sim),
      dispatcher_(dispatcher),
      self_(self),
      config_(config),
      stop_at_(std::numeric_limits<Time>::max()) {
  // Per-node phase offset, derived (not drawn) so it is independent of both
  // the simulation stream and every other node's phase.
  SplitMix64 mix(seed ^ (0x666c656574ULL + static_cast<uint64_t>(self) * 0x9e3779b97f4a7c15ULL));
  const auto period = static_cast<uint64_t>(config_.announce_period);
  phase_ = period == 0 ? 0 : static_cast<Duration>(mix.Next() % period);
}

void FleetAggregator::Start() {
  sim_->Post(phase_, [this] { Tick(); });
}

void FleetAggregator::Tick() {
  if (sim_->now() >= stop_at_) {
    return;
  }
  AnnounceNow();
  sim_->Post(config_.announce_period, [this] { Tick(); });
}

void FleetAggregator::AnnounceNow() {
  if (!source_) {
    return;
  }
  for (const LocalReport& report : source_()) {
    if (announced_.insert(report.server).second) {
      // First sight of this server: a discovery announce so peers learn the
      // membership even before they care about the estimate.
      FleetMessage hello;
      hello.kind = FleetMessageKind::kAnnounce;
      hello.origin = self_;
      hello.server = report.server;
      hello.seq = next_seq_++;
      hello.sent_at = sim_->now();
      OnMessage(hello);
      dispatcher_->Broadcast(self_, hello);
    }
    FleetMessage message;
    message.kind = FleetMessageKind::kEstimate;
    message.origin = self_;
    message.server = report.server;
    message.seq = next_seq_++;
    message.sent_at = sim_->now();
    message.supply_bps = report.supply_bps;
    message.usage_bps = report.usage_bps;
    message.active = report.active;
    // Self-delivery first: the node's own view is never staler than what it
    // just broadcast, even if every peer link is down.
    OnMessage(message);
    dispatcher_->Broadcast(self_, message);
    ++reports_broadcast_;
  }
}

void FleetAggregator::OnMessage(const FleetMessage& message) {
  members_[message.server].insert(message.origin);
  if (message.kind != FleetMessageKind::kEstimate) {
    return;
  }
  std::map<FleetNodeId, FleetMessage>& slot = reports_[message.server];
  const auto it = slot.find(message.origin);
  // Strictly-higher-seq wins: duplicated or reordered deliveries of older
  // reports cannot move the table, which is what keeps the merge a pure
  // function of the delivered set.
  if (it == slot.end() || message.seq > it->second.seq) {
    slot[message.origin] = message;
  }
}

FleetAggregator::ServerView FleetAggregator::ViewOf(FleetServerId server, Time now) const {
  ServerView view;
  const auto it = reports_.find(server);
  if (it == reports_.end()) {
    return view;
  }
  double weight_sum = 0.0;
  double supply_sum = 0.0;
  // Ascending origin id: with IEEE addition the sum depends on operand
  // order, so a fixed iteration order is part of the determinism contract.
  for (const auto& [origin, report] : it->second) {
    const Duration age = now - report.sent_at;
    if (age < 0 || age > config_.stale_after) {
      continue;
    }
    const double weight =
        std::exp2(-DurationToSeconds(age) / DurationToSeconds(config_.staleness_tau));
    weight_sum += weight;
    supply_sum += weight * report.supply_bps;
    ++view.reporting;
    if (report.active > 0 && age <= config_.activity_window) {
      ++view.active_clients;
      if (origin == self_) {
        view.self_active = true;
      }
    }
  }
  if (weight_sum > 0.0) {
    view.valid = true;
    view.supply_bps = supply_sum / weight_sum;
  }
  return view;
}

std::vector<FleetNodeId> FleetAggregator::PeersFor(FleetServerId server) const {
  std::vector<FleetNodeId> peers;
  const auto it = members_.find(server);
  if (it != members_.end()) {
    peers.assign(it->second.begin(), it->second.end());
  }
  return peers;
}

}  // namespace odyssey

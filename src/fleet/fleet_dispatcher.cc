#include "src/fleet/fleet_dispatcher.h"

#include <utility>

namespace odyssey {

void FleetDispatcher::RegisterNode(FleetNodeId node, const ReplayTrace* waveform,
                                   FaultInjector* injector, Handler handler) {
  nodes_[node] = Node{waveform, injector, std::move(handler)};
}

bool FleetDispatcher::Send(FleetNodeId from, FleetNodeId to, const FleetMessage& message) {
  const auto sender = nodes_.find(from);
  const auto receiver = nodes_.find(to);
  if (sender == nodes_.end() || receiver == nodes_.end()) {
    return false;
  }
  ++messages_sent_;
  const Time now = sim_->now();
  FaultInjector* out = sender->second.injector;
  if (out != nullptr && (out->InOutage(now) || out->ShouldDropMessage())) {
    ++messages_dropped_;
    return false;
  }
  // One-way delay: the sender's uplink parameters at the send instant.  A
  // zero-bandwidth radio shadow transmits nothing, so the message is lost
  // rather than queued — the same fate app traffic meets on a dead link.
  TraceSegment segment;
  if (sender->second.waveform != nullptr && !sender->second.waveform->empty()) {
    segment = sender->second.waveform->At(now);
    if (segment.bandwidth_bps <= 0.0) {
      ++messages_dropped_;
      return false;
    }
  } else {
    segment.bandwidth_bps = 0.0;  // ideal link: no serialization term
    segment.latency = 0;
  }
  Duration delay = segment.latency;
  if (segment.bandwidth_bps > 0.0) {
    delay += SecondsToDuration(kMessageBytes / segment.bandwidth_bps);
  }
  // |message| is POD and copied by value into the event; nothing of the
  // sender escapes into the delivery.
  sim_->Post(delay, [this, to, message] { Deliver(to, message); });
  return true;
}

int FleetDispatcher::Broadcast(FleetNodeId from, const FleetMessage& message) {
  int sent = 0;
  for (const auto& entry : nodes_) {
    if (entry.first == from) {
      continue;
    }
    if (Send(from, entry.first, message)) {
      ++sent;
    }
  }
  return sent;
}

void FleetDispatcher::Deliver(FleetNodeId to, const FleetMessage& message) {
  const auto it = nodes_.find(to);
  if (it == nodes_.end()) {
    return;
  }
  // A receiver inside an outage window is off the air: the message is lost
  // in flight, exactly as the link would lose an RPC leg.
  if (it->second.injector != nullptr && it->second.injector->InOutage(sim_->now())) {
    ++messages_dropped_;
    return;
  }
  ++messages_delivered_;
  if (it->second.handler) {
    it->second.handler(message);
  }
}

}  // namespace odyssey

#include "src/fleet/fleet_scenario.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/check/fuzz_scenario.h"
#include "src/check/oracles.h"
#include "src/core/contract.h"
#include "src/core/odyssey_client.h"
#include "src/core/resource.h"
#include "src/fleet/fleet_aggregator.h"
#include "src/fleet/fleet_dispatcher.h"
#include "src/fleet/fleet_oracle.h"
#include "src/fleet/fleet_supply_model.h"
#include "src/metrics/experiment.h"
#include "src/mobility/waveform_source.h"
#include "src/net/fault_injector.h"
#include "src/net/link.h"
#include "src/net/modulator.h"
#include "src/servers/file_server.h"
#include "src/servers/telemetry_server.h"
#include "src/sim/random.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"
#include "src/strategies/admission_broker.h"
#include "src/strategies/blind_optimism.h"
#include "src/strategies/centralized.h"
#include "src/strategies/congestion_manager.h"
#include "src/strategies/laissez_faire.h"
#include "src/tracemod/replay_trace.h"
#include "src/wardens/file_warden.h"
#include "src/wardens/telemetry_warden.h"

namespace odyssey {
namespace {

// Per-node stepped waveform, in KB/s per application; every quarter-horizon
// transition pushes availability outside the apps' [0.7x, 1.3x] windows.
constexpr double kFleetWaveKbps[] = {80.0, 220.0, 40.0, 140.0};

constexpr Duration kFeedPeriod = 50 * kMillisecond;
constexpr Duration kFairnessPeriod = 500 * kMillisecond;
constexpr Duration kOraclePeriod = 100 * kMillisecond;
constexpr Duration kDrainGrace = 2 * kSecond;
constexpr Duration kReadPeriod = 1 * kSecond;
// The convergence tail: no fault may touch a fleet message after
// horizon - kConvergenceTail (matches the fleet fuzz runner's constant).
constexpr Duration kConvergenceTail = 4 * kSecond;
constexpr double kConvergenceTolerance = 0.01;

enum class FleetStrategyKind {
  kOdyssey,
  kLaissezFaire,
  kBlindOptimism,
  kCongestionManager,
  kAdmissionBroker,
};

const char* FleetStrategyName(FleetStrategyKind kind) {
  switch (kind) {
    case FleetStrategyKind::kOdyssey:
      return "odyssey";
    case FleetStrategyKind::kLaissezFaire:
      return "laissez";
    case FleetStrategyKind::kBlindOptimism:
      return "blind";
    case FleetStrategyKind::kCongestionManager:
      return "cm";
    case FleetStrategyKind::kAdmissionBroker:
      return "broker";
  }
  return "?";
}

struct FleetParams {
  int nodes = 2;
  int servers = 2;
  FleetStrategyKind strategy = FleetStrategyKind::kOdyssey;
  bool mobility = false;
  Duration horizon = 8 * kSecond;
  int apps_per_node = 2;
};

// Stable service -> server-group mapping for warden-opened connections
// (FNV-1a 64, same scheme as the fleet fuzz runner); explicit "fleet-s<k>"
// services parse their suffix directly.
FleetServerId ServerGroupOf(const std::string& service, int servers) {
  constexpr char kPrefix[] = "fleet-s";
  if (service.rfind(kPrefix, 0) == 0) {
    return static_cast<FleetServerId>(
        std::stoul(service.substr(sizeof(kPrefix) - 1)) % static_cast<unsigned long>(servers));
  }
  uint64_t h = 1469598103934665603ULL;
  for (const char c : service) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<FleetServerId>(h % static_cast<uint64_t>(servers));
}

// The node's waveform: fixed quarters scaled by a per-node factor in
// [0.6, 1.4), or a motion-generated trace (model rotated per node).  Either
// way a pure function of (params, seed, node).
ReplayTrace NodeWaveform(const FleetParams& params, uint64_t seed, int node) {
  SplitMix64 mix(seed ^ (0x746965725f666cULL + static_cast<uint64_t>(node) * 0x9e3779b97f4a7c15ULL));
  if (params.mobility) {
    MobilityScenarioSpec spec;
    spec.model = static_cast<MobilityModelKind>(node % kMobilityModelKinds);
    spec.layout = (node % 2 == 0) ? BaseStationLayout::kSingleCell : BaseStationLayout::kCellGrid;
    spec.speed_scale = 1.0 + static_cast<double>(node % 3);
    spec.duration = params.horizon + kDrainGrace;
    spec.ensure_live_tail = true;
    return MakeMobilityWaveform(spec, mix.Next());
  }
  const double factor = 0.6 + static_cast<double>(mix.Next() >> 11) * 0x1.0p-53 * 0.8;
  const double per_app = static_cast<double>(params.apps_per_node);
  ReplayTrace trace;
  for (const double kbps : kFleetWaveKbps) {
    trace.Append(params.horizon / 4, kbps * 1024.0 * factor * per_app, 10 * kMillisecond);
  }
  return trace;
}

// The FuzzScenario handed to each node's OracleSet: segments mirror the
// node's waveform so the byte-conservation bound is the true capacity
// integral of that node's link.
FuzzScenario MirrorScenario(const ReplayTrace& waveform, Duration horizon, uint64_t seed) {
  FuzzScenario scenario;
  scenario.seed = seed;
  scenario.horizon = horizon;
  for (const TraceSegment& segment : waveform.segments()) {
    scenario.segments.push_back(FuzzSegment{segment.duration, segment.bandwidth_bps, segment.latency});
  }
  return scenario;
}

struct AppState {
  AppId id = 0;
  RequestId request = 0;  // current registration; 0 = none
  int server = 0;         // server group this app's connection maps to
  Endpoint* endpoint = nullptr;
  double weight = 1.0;    // synthetic-feed share of the node waveform
};

// One client node of the fleet rig.  Declaration order is destruction
// order in reverse: the oracle first, then the client (which detaches every
// endpoint from the strategy), then the aggregator the fleet model borrows.
struct FleetRigNode {
  FuzzScenario scenario;
  ReplayTrace waveform;
  FaultPlan plan;
  std::unique_ptr<Link> link;
  std::unique_ptr<Modulator> modulator;
  std::unique_ptr<FaultInjector> injector;
  std::unique_ptr<FleetAggregator> aggregator;
  FleetSupplyModel* model = nullptr;        // owned by the strategy (odyssey only)
  CentralizedStrategy* centralized = nullptr;  // owned by the client (odyssey only)
  std::unique_ptr<OdysseyClient> client;
  std::unique_ptr<OracleSet> oracle;
  std::vector<AppState> apps;
  uint64_t tick = 0;
};

class FleetRig {
 public:
  FleetRig(const FleetParams& params, uint64_t seed, TraceRecorder* trace)
      : params_(params), seed_(seed), sim_(seed) {
    ODY_ASSERT(params.servers >= 1 && params.servers <= 8, "fleet rig server count out of range");
    sim_.set_trace(trace);
  }

  TrialMetrics Run() {
    // Wall timing feeds only the stripped wall_* metrics, never the trial.
    // ody-lint: allow(fleet-pod-message)
    const auto wall_start = std::chrono::steady_clock::now();
    Build();
    Start();
    sim_.RunUntil(params_.horizon + kDrainGrace);
    Finish();
    // ody-lint: allow(fleet-pod-message)
    const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - wall_start;
    return Metrics(wall.count());
  }

 private:
  void Build() {
    file_server_ = std::make_unique<FileServer>(&sim_.rng());
    file_server_->Publish("doc/0", 32.0 * 1024.0);
    telemetry_server_ = std::make_unique<TelemetryServer>(&sim_);
    telemetry_server_->CreateFeed("feed0", 200 * kMillisecond, 100.0, 5.0);
    dispatcher_ = std::make_unique<FleetDispatcher>(&sim_);

    nodes_.reserve(static_cast<size_t>(params_.nodes));
    for (int i = 0; i < params_.nodes; ++i) {
      BuildNode(i);
    }
    for (int i = 0; i < params_.nodes; ++i) {
      FleetAggregator* aggregator = nodes_[static_cast<size_t>(i)]->aggregator.get();
      dispatcher_->RegisterNode(
          static_cast<FleetNodeId>(i), &nodes_[static_cast<size_t>(i)]->waveform,
          nodes_[static_cast<size_t>(i)]->injector.get(),
          [aggregator](const FleetMessage& message) {  // ody_lint: owned-capture
            aggregator->OnMessage(message);
          });
    }

    std::vector<FleetOracleSet::NodeBinding> bindings;
    bindings.reserve(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) {
      bindings.push_back(FleetOracleSet::NodeBinding{static_cast<FleetNodeId>(i),
                                                     nodes_[i]->model, nodes_[i]->aggregator.get()});
    }
    fleet_oracle_ = std::make_unique<FleetOracleSet>(&sim_, std::move(bindings), params_.servers);
  }

  void BuildNode(int index) {
    auto node = std::make_unique<FleetRigNode>();
    node->waveform = NodeWaveform(params_, seed_, index);
    node->scenario = MirrorScenario(node->waveform, params_.horizon, seed_);
    // Every fourth node (offset 1) rides out a mid-run outage, ending well
    // before the convergence tail.
    if (index % 4 == 1) {
      node->plan.WithSeed(SplitMix64(seed_ ^ (0x6f7574ULL + static_cast<uint64_t>(index))).Next());
      node->plan.WithOutage(params_.horizon / 4, 1 * kSecond);
    }
    const TraceSegment first = node->waveform.At(0);
    node->link = std::make_unique<Link>(&sim_, first.bandwidth_bps, first.latency);
    node->modulator = std::make_unique<Modulator>(&sim_, node->link.get());
    node->injector = std::make_unique<FaultInjector>(&sim_, node->link.get());
    if (!node->plan.empty()) {
      node->injector->Arm(node->plan);
    }
    node->aggregator = std::make_unique<FleetAggregator>(&sim_, dispatcher_.get(),
                                                         static_cast<FleetNodeId>(index), seed_);

    std::unique_ptr<BandwidthStrategy> strategy;
    switch (params_.strategy) {
      case FleetStrategyKind::kOdyssey: {
        auto model = std::make_unique<FleetSupplyModel>(node->aggregator.get());
        node->model = model.get();
        auto centralized = std::make_unique<CentralizedStrategy>(&sim_, std::move(model));
        node->centralized = centralized.get();
        strategy = std::move(centralized);
        break;
      }
      case FleetStrategyKind::kLaissezFaire:
        strategy = std::make_unique<LaissezFaireStrategy>();
        break;
      case FleetStrategyKind::kBlindOptimism:
        strategy = std::make_unique<BlindOptimismStrategy>(node->modulator.get());
        break;
      case FleetStrategyKind::kCongestionManager: {
        // Same sharded aggregation as odyssey, regrouped per server.
        auto model = std::make_unique<FleetSupplyModel>(node->aggregator.get());
        node->model = model.get();
        auto cm = std::make_unique<CongestionManagerStrategy>(&sim_, std::move(model));
        node->centralized = cm.get();
        strategy = std::move(cm);
        break;
      }
      case FleetStrategyKind::kAdmissionBroker: {
        // Admission control composed over the fleet-aggregated estimator:
        // the broker arbitrates registrations against cross-node supply.
        auto model = std::make_unique<FleetSupplyModel>(node->aggregator.get());
        node->model = model.get();
        auto inner = std::make_unique<CentralizedStrategy>(&sim_, std::move(model));
        node->centralized = inner.get();
        strategy = std::make_unique<AdmissionBrokerStrategy>(&sim_, std::move(inner));
        break;
      }
    }
    node->client = std::make_unique<OdysseyClient>(&sim_, node->link.get(), std::move(strategy),
                                                   kUpcallLatency);
    if (node->model != nullptr) {
      FleetSupplyModel* model = node->model;
      const int servers = params_.servers;
      node->client->set_connection_observer(
          [model, servers](Endpoint* endpoint, const std::string& service) {
            model->MapConnection(endpoint->id(), ServerGroupOf(service, servers));
          });
      node->aggregator->set_report_source(
          [model, this] { return model->LocalReports(sim_.now()); });  // ody_lint: owned-capture
    } else {
      // Laissez-faire and blind optimism nodes still publish estimates so
      // the discovery + convergence story covers every strategy: one report
      // per server group, carrying the strategy's whole-link supply.
      BandwidthStrategy* raw = &node->client->viceroy().strategy();
      const int servers = params_.servers;
      node->aggregator->set_report_source([raw, servers, this] {  // ody_lint: owned-capture
        std::vector<FleetAggregator::LocalReport> reports;
        if (!raw->HasEstimate()) {
          return reports;
        }
        for (int s = 0; s < servers; ++s) {
          FleetAggregator::LocalReport report;
          report.server = static_cast<FleetServerId>(s);
          report.supply_bps = raw->TotalSupply(sim_.now());
          report.active = 1;
          reports.push_back(report);
        }
        return reports;
      });
    }
    node->client->InstallWarden(std::make_unique<FileWarden>(file_server_.get()));
    node->client->InstallWarden(std::make_unique<TelemetryWarden>(telemetry_server_.get()));
    node->client->set_fault_injector(node->injector.get());

    node->oracle = std::make_unique<OracleSet>(node->scenario, &sim_, &node->client->viceroy(),
                                               node->centralized, node->link.get());

    SplitMix64 mix(seed_ ^ (0x61707073ULL + static_cast<uint64_t>(index)));
    for (int a = 0; a < params_.apps_per_node; ++a) {
      AppState app;
      app.id = node->client->RegisterApplication("fleet" + std::to_string(index) + "-" +
                                                 std::to_string(a));
      app.server = a % params_.servers;
      app.endpoint =
          node->client->OpenConnection(app.id, "fleet-s" + std::to_string(app.server));
      app.weight = 0.5 + static_cast<double>(mix.Next() >> 11) * 0x1.0p-53;
      node->apps.push_back(app);
    }
    nodes_.push_back(std::move(node));
  }

  void Start() {
    for (auto& node : nodes_) {
      FleetRigNode* raw = node.get();
      node->client->viceroy().upcalls().set_delivery_observer(
          [raw](AppId app, uint64_t seq, RequestId request, ResourceId resource, double level,
                Time posted_at) {
            raw->oracle->OnUpcallDelivered(app, seq, request, resource, level, posted_at);
          });
      node->modulator->Replay(node->waveform);
      node->aggregator->StopAt(params_.horizon);
      node->aggregator->Start();
      for (AppState& app : node->apps) {
        RegisterWindow(raw, &app,
                       node->client->CurrentLevel(app.id, ResourceId::kNetworkBandwidth));
      }
    }
    OracleSet* lead = nodes_.front()->oracle.get();
    sim_.set_step_observer([lead](Time when) { lead->OnStep(when); });  // ody_lint: owned-capture
    // ody_lint: owned-capture
    sim_.set_tie_observer([lead](Time when, uint64_t prev_seq, uint64_t seq) {
      lead->OnTieBreak(when, prev_seq, seq);
    });
    sim_.Post(kFeedPeriod, [this] { Feed(); });
    sim_.Post(kOraclePeriod, [this] { SampleOracles(); });
    // Fairness sampling skips the first quarter (cold estimators).
    sim_.PostAt(params_.horizon / 4, [this] { SampleFairness(); });
    sim_.Post(kReadPeriod, [this] { ReadSweep(); });
  }

  void Finish() {
    sim_.set_step_observer({});
    sim_.set_tie_observer({});
    const Time tail_start = params_.horizon - kConvergenceTail;
    bool quiescent = tail_start > 0;
    const Time end = params_.horizon + kDrainGrace;
    for (const auto& node : nodes_) {
      quiescent = quiescent && FaultPlanQuietAfter(node->plan, tail_start) &&
                  WaveformLiveThroughout(node->waveform, tail_start, end);
    }
    for (auto& node : nodes_) {
      node->client->viceroy().upcalls().set_delivery_observer({});
      node->oracle->Finish();
    }
    fleet_oracle_->Finish(quiescent, kConvergenceTolerance);
  }

  void RegisterWindow(FleetRigNode* node, AppState* app, double level) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      ResourceDescriptor descriptor;
      descriptor.resource = ResourceId::kNetworkBandwidth;
      descriptor.lower = level * 0.7;
      descriptor.upper = std::max(level * 1.3, descriptor.lower + 1.0);
      descriptor.handler = [this, node, app](RequestId, ResourceId resource, double new_level) {
        if (resource != ResourceId::kNetworkBandwidth) {
          return;
        }
        app->request = 0;  // the delivered upcall consumed the registration
        RegisterWindow(node, app, new_level);
      };
      const RequestResult result = node->client->Request(app->id, descriptor);
      if (result.ok()) {
        app->request = result.id;
        ++windows_registered_;
        node->oracle->OnWindowRegistered(app->id, result.id, descriptor.lower, descriptor.upper);
        return;
      }
      level = result.current_level;
    }
  }

  // Synthetic passive observations, as in the scale rig: each app's
  // connection reports its weighted share of the node waveform once per
  // feed period, with a round trip every tenth tick.
  void Feed() {
    const Time now = sim_.now();
    if (now >= params_.horizon) {
      return;
    }
    const double period_s = DurationToSeconds(kFeedPeriod);
    for (auto& node : nodes_) {
      const double rate =
          node->waveform.BandwidthAt(now) / static_cast<double>(params_.apps_per_node);
      int i = 0;
      for (AppState& app : node->apps) {
        app.endpoint->log().RecordThroughput(now, rate * app.weight * period_s, kFeedPeriod);
        if (static_cast<int>(node->tick % 10) == i % 10) {
          app.endpoint->log().RecordRoundTrip(
              now, 10 * kMillisecond + static_cast<Duration>(i) * 100);
        }
        ++i;
      }
      ++node->tick;
    }
    sim_.Post(kFeedPeriod, [this] { Feed(); });
  }

  // Real bytes through the warden path: each node's first app re-reads the
  // shared document once a second, so RPC retries and outage handling stay
  // exercised alongside the synthetic feed.
  void ReadSweep() {
    if (sim_.now() >= params_.horizon) {
      return;
    }
    for (auto& node : nodes_) {
      node->client->Read(node->apps.front().id, std::string(kOdysseyRoot) + "files/doc/0",
                         [](Status, std::string) {});
    }
    sim_.Post(kReadPeriod, [this] { ReadSweep(); });
  }

  void SampleOracles() {
    if (sim_.now() > params_.horizon) {
      return;
    }
    for (auto& node : nodes_) {
      node->oracle->Sample();
    }
    fleet_oracle_->Sample();
    sim_.Post(kOraclePeriod, [this] { SampleOracles(); });
  }

  // Fairness across the fleet, per server: each node's claim on server s is
  // the sum of its mapped apps' current levels.  Jain index over the claims
  // measures fairness; summed claims over the server's capacity share
  // (total fleet nominal bandwidth / servers) measures overclaim.
  void SampleFairness() {
    const Time now = sim_.now();
    if (now > params_.horizon) {
      return;
    }
    double fleet_nominal = 0.0;
    for (const auto& node : nodes_) {
      fleet_nominal += node->waveform.BandwidthAt(now);
    }
    const double server_capacity = fleet_nominal / static_cast<double>(params_.servers);
    for (int s = 0; s < params_.servers; ++s) {
      double sum = 0.0;
      double sum_sq = 0.0;
      for (const auto& node : nodes_) {
        double claim = 0.0;
        for (const AppState& app : node->apps) {
          if (app.server == s) {
            claim += node->client->CurrentLevel(app.id, ResourceId::kNetworkBandwidth);
          }
        }
        sum += claim;
        sum_sq += claim * claim;
      }
      auto& stats = fairness_[static_cast<size_t>(s)];
      if (sum_sq > 0.0) {
        stats.jain_sum += (sum * sum) / (static_cast<double>(nodes_.size()) * sum_sq);
        ++stats.jain_samples;
      }
      if (server_capacity > 0.0) {
        stats.overclaim_max = std::max(stats.overclaim_max, sum / server_capacity);
        stats.overclaim_sum += sum / server_capacity;
        ++stats.overclaim_samples;
      }
    }
    sim_.Post(kFairnessPeriod, [this] { SampleFairness(); });
  }

  TrialMetrics Metrics(double wall_seconds) {
    const double events = static_cast<double>(sim_.events_processed());
    double upcalls = 0.0;
    double latency_mean_sum = 0.0;
    double latency_max_ms = 0.0;
    uint64_t violations = fleet_oracle_->violation_count();
    for (const auto& node : nodes_) {
      const UpcallDispatcher& dispatcher = node->client->viceroy().upcalls();
      upcalls += static_cast<double>(dispatcher.delivered_count());
      latency_mean_sum += dispatcher.latency_mean_us() / 1000.0;
      latency_max_ms = std::max(latency_max_ms, DurationToMillis(dispatcher.latency_max()));
      violations += node->oracle->violation_count();
    }
    TrialMetrics metrics{
        {"sim_events", events, MetricDirection::kEither},
        {"upcalls", upcalls, MetricDirection::kEither},
        {"windows_registered", static_cast<double>(windows_registered_),
         MetricDirection::kEither},
        {"upcall_latency_mean_ms", latency_mean_sum / static_cast<double>(nodes_.size()),
         MetricDirection::kLowerIsBetter},
        {"upcall_latency_max_ms", latency_max_ms, MetricDirection::kLowerIsBetter},
        {"fleet_msgs", static_cast<double>(dispatcher_->messages_delivered()),
         MetricDirection::kEither},
        {"agg_spread_pct", fleet_oracle_->final_spread_pct(), MetricDirection::kLowerIsBetter},
        {"oracle_violations", static_cast<double>(violations), MetricDirection::kLowerIsBetter},
    };
    for (int s = 0; s < params_.servers; ++s) {
      const auto& stats = fairness_[static_cast<size_t>(s)];
      metrics.push_back({"fairness_s" + std::to_string(s),
                         stats.jain_samples > 0
                             ? stats.jain_sum / static_cast<double>(stats.jain_samples)
                             : 0.0,
                         MetricDirection::kHigherIsBetter});
      metrics.push_back({"overclaim_peak_s" + std::to_string(s), stats.overclaim_max,
                         MetricDirection::kLowerIsBetter});
      metrics.push_back({"overclaim_mean_s" + std::to_string(s),
                         stats.overclaim_samples > 0
                             ? stats.overclaim_sum / static_cast<double>(stats.overclaim_samples)
                             : 0.0,
                         MetricDirection::kLowerIsBetter});
    }
    // wall_* metrics depend on the machine and are stripped by
    // `ody_bench run --strip-wall-out` before CI's byte comparison.
    metrics.push_back({"wall_seconds", wall_seconds, MetricDirection::kEither});
    metrics.push_back({"wall_events_per_sec", wall_seconds > 0.0 ? events / wall_seconds : 0.0,
                       MetricDirection::kHigherIsBetter});
    return metrics;
  }

  struct FairnessStats {
    double jain_sum = 0.0;
    int jain_samples = 0;
    double overclaim_max = 0.0;
    double overclaim_sum = 0.0;
    int overclaim_samples = 0;
  };

  const FleetParams params_;
  const uint64_t seed_;
  Simulation sim_;
  std::unique_ptr<FileServer> file_server_;
  std::unique_ptr<TelemetryServer> telemetry_server_;
  std::unique_ptr<FleetDispatcher> dispatcher_;
  std::vector<std::unique_ptr<FleetRigNode>> nodes_;
  std::unique_ptr<FleetOracleSet> fleet_oracle_;
  // Indexed by server group; the rig caps servers well below this.
  FairnessStats fairness_[8] = {};
  uint64_t windows_registered_ = 0;
};

TrialMetrics RunFleetTrial(const FleetParams& params, uint64_t seed, TraceRecorder* trace) {
  FleetRig rig(params, seed, trace);
  return rig.Run();
}

}  // namespace

void RegisterFleetScenarios(ScenarioRegistry* registry) {
  Scenario scenario;
  scenario.name = "fleet_share";
  scenario.description =
      "N viceroys sharing M servers through fleet estimate aggregation, per strategy and "
      "waveform family, with all fuzzing oracles on";

  const auto add = [&scenario](const FleetParams& params) {
    const std::string name = "n" + std::to_string(params.nodes) + "_" +
                             FleetStrategyName(params.strategy) + "_" +
                             (params.mobility ? "mob" : "fixed");
    scenario.variants.push_back(ScenarioVariant{
        name, [params](uint64_t seed, TraceRecorder* trace) {
          return RunFleetTrial(params, seed, trace);
        }});
  };

  for (const int nodes : {2, 8, 32, 128}) {
    for (const FleetStrategyKind strategy :
         {FleetStrategyKind::kOdyssey, FleetStrategyKind::kLaissezFaire,
          FleetStrategyKind::kBlindOptimism, FleetStrategyKind::kCongestionManager,
          FleetStrategyKind::kAdmissionBroker}) {
      for (const bool mobility : {false, true}) {
        FleetParams params;
        params.nodes = nodes;
        params.strategy = strategy;
        params.mobility = mobility;
        add(params);
      }
    }
  }

  const Status status = registry->Register(std::move(scenario));
  ODY_ASSERT(status.ok(), "fleet scenario registration failed");
}

CampaignSpec FleetCampaign() {
  CampaignSpec spec;
  spec.name = "tier_fleet";
  spec.description =
      "fleet sharing: per-server fairness, overclaim and aggregation convergence for N in "
      "{2, 8, 32, 128} nodes under centralized, laissez-faire and blind-optimism management";
  const auto sweep = [&spec](int nodes, int trials) {
    for (const char* strategy : {"odyssey", "laissez", "blind"}) {
      for (const char* wave : {"fixed", "mob"}) {
        spec.sweeps.push_back(SweepSpec{
            "fleet_share",
            {"n" + std::to_string(nodes) + "_" + std::string(strategy) + "_" + wave},
            trials});
      }
    }
  };
  sweep(2, 2);
  sweep(8, 1);
  sweep(32, 1);
  sweep(128, 1);
  return spec;
}

}  // namespace odyssey

// Executes one fleet-dimension FuzzScenario against N full Odyssey stacks.
//
// RunFleetFuzzScenario is the multi-node sibling of RunFuzzScenario: when a
// scenario carries fleet_nodes >= 2 the rig builds that many client nodes —
// each a full viceroy + warden ensemble behind its own modulated link and
// fault injector — sharing one set of servers through the fleet estimate
// aggregation protocol (FleetDispatcher + FleetAggregator +
// FleetSupplyModel).  The scenario's apps are dealt round-robin across the
// nodes and driven by the same FuzzDriver as the single-node runner.
//
// Every node keeps the full single-node oracle set armed against its own
// stack (per-node waveform for byte conservation), and the fleet-level
// oracles (fleet-share-bounds, fleet-convergence) audit the cross-node
// views.  Like the single-node runner, the result is a pure function of
// (scenario, options).
//
// options.reference_stack and options.differential are single-node-only
// concepts and are ignored here.

#ifndef SRC_FLEET_FLEET_FUZZ_H_
#define SRC_FLEET_FLEET_FUZZ_H_

#include "src/check/fuzz_runner.h"
#include "src/check/fuzz_scenario.h"

namespace odyssey {

// The waveform node |node| rides in |scenario|: node 0 takes the scenario
// segments verbatim; other nodes scale each segment's bandwidth by a
// SplitMix64-derived factor in [0.5, 1.5) (radio shadows stay at zero,
// latencies are untouched), so nodes disagree about supply and the
// aggregation protocol has real work to do.  Exposed for tests.
FuzzScenario FleetNodeScenario(const FuzzScenario& scenario, int node);

FuzzRunResult RunFleetFuzzScenario(const FuzzScenario& scenario,
                                   const FuzzRunOptions& options = {});

}  // namespace odyssey

#endif  // SRC_FLEET_FLEET_FUZZ_H_

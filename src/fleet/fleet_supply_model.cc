#include "src/fleet/fleet_supply_model.h"

#include <algorithm>

namespace odyssey {

FleetSupplyModel::FleetSupplyModel(FleetAggregator* aggregator, const SupplyModelConfig& config)
    : local_(config), aggregator_(aggregator) {}

void FleetSupplyModel::MapConnection(ConnectionId connection, FleetServerId server) {
  server_of_[connection] = server;
}

void FleetSupplyModel::RemoveConnection(ConnectionId connection) {
  local_.RemoveConnection(connection);
  server_of_.erase(connection);
}

double FleetSupplyModel::ServerCapFor(FleetServerId server, Time now) const {
  if (aggregator_ == nullptr) {
    return -1.0;
  }
  const FleetAggregator::ServerView view = aggregator_->ViewOf(server, now);
  if (!view.valid) {
    return -1.0;
  }
  // The other active clients plus this one.  When this node is itself one
  // of the counted actives, the denominator is exactly the active count;
  // when it is quiescent (or not yet reporting), it enters as the
  // hypothetical extra client — the same convention the local model uses
  // for unknown connections.
  const int others = view.active_clients - (view.self_active ? 1 : 0);
  return view.supply_bps / static_cast<double>(others + 1);
}

double FleetSupplyModel::AvailabilityFor(ConnectionId connection, Time now) const {
  const double local = local_.AvailabilityFor(connection, now);
  if (aggregator_ == nullptr || !local_.has_supply()) {
    return local;
  }
  const auto it = server_of_.find(connection);
  if (it == server_of_.end()) {
    return local;
  }
  const double cap = ServerCapFor(it->second, now);
  if (cap < 0.0) {
    return local;
  }
  // Clamp by the server share, but never below the local fair-share floor:
  // the local oracles' invariants (floor <= availability <= supply) keep
  // holding bit-for-bit, and a crowded server pulls the figure down toward
  // its per-client share.
  const double floor =
      local_.TotalSupply() / static_cast<double>(local_.ActiveConnectionCount(now) + 1);
  return std::max(floor, std::min(local, cap));
}

std::vector<FleetAggregator::LocalReport> FleetSupplyModel::LocalReports(Time now) const {
  std::vector<FleetAggregator::LocalReport> reports;
  if (!local_.has_supply()) {
    return reports;
  }
  std::map<FleetServerId, FleetAggregator::LocalReport> by_server;
  for (const auto& [connection, server] : server_of_) {
    FleetAggregator::LocalReport& report = by_server[server];
    report.server = server;
    report.supply_bps = local_.TotalSupply();
    const double usage = local_.UsageRateFor(connection, now);
    report.usage_bps += usage;
    if (usage > 0.0) {
      ++report.active;
    }
  }
  reports.reserve(by_server.size());
  for (const auto& entry : by_server) {
    reports.push_back(entry.second);
  }
  return reports;
}

}  // namespace odyssey

// Discovery and estimate aggregation for one fleet node (DESIGN.md §15).
//
// Each node runs a FleetAggregator that (a) periodically announces the
// servers it talks to and broadcasts its latest per-server supply estimates
// over the FleetDispatcher, and (b) folds every received report into a
// per-(server, origin) table keyed by the report's sequence number.  The
// merged per-server view is a staleness-weighted average over the latest
// report of each origin, computed on demand:
//
//     weight(report) = 2^(-(now - sent_at) / staleness_tau)
//     supply(server) = sum(w_i * supply_i) / sum(w_i)
//
// Determinism under reordering: a report only replaces a slot when its seq
// is strictly higher, and the merge iterates origins in ascending id, so
// the view is a pure function of the delivered message *set* and |now| —
// never of arrival order.  Announce phases are SplitMix64-derived from
// (seed, node id), so no two nodes share a phase by accident and no draw
// touches the simulation's own stream.

#ifndef SRC_FLEET_FLEET_AGGREGATOR_H_
#define SRC_FLEET_FLEET_AGGREGATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "src/fleet/fleet_dispatcher.h"
#include "src/fleet/fleet_message.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace odyssey {

struct FleetAggregatorConfig {
  // Cadence of the periodic announce/estimate broadcast.
  Duration announce_period = 500 * kMillisecond;
  // Staleness half-life of the merge: a report's weight halves every tau.
  Duration staleness_tau = 2 * kSecond;
  // Reports older than this leave the merge entirely.
  Duration stale_after = 10 * kSecond;
  // An origin whose latest report is older than this (or shows no active
  // connections) stops counting toward the per-server active-client count,
  // mirroring SupplyModelConfig::activity_window.
  Duration activity_window = 5 * kSecond;
};

class FleetAggregator {
 public:
  // What the node publishes for one server each announce round.
  struct LocalReport {
    FleetServerId server = 0;
    double supply_bps = 0.0;
    double usage_bps = 0.0;
    int32_t active = 0;
  };
  using ReportSource = std::function<std::vector<LocalReport>()>;

  // The merged view of one server at a queried instant.
  struct ServerView {
    bool valid = false;       // at least one unexpired report
    double supply_bps = 0.0;  // staleness-weighted merge
    int active_clients = 0;   // distinct origins with recent active conns
    bool self_active = false; // whether this node is one of them
    int reporting = 0;        // origins contributing to the merge
  };

  FleetAggregator(Simulation* sim, FleetDispatcher* dispatcher, FleetNodeId self, uint64_t seed,
                  const FleetAggregatorConfig& config = {});

  FleetAggregator(const FleetAggregator&) = delete;
  FleetAggregator& operator=(const FleetAggregator&) = delete;

  // Supplies the per-server local reports each announce round broadcasts.
  void set_report_source(ReportSource source) { source_ = std::move(source); }

  // Starts the periodic announce loop at a seeded phase in [0, period).
  void Start();
  // Stops rescheduling after |when| (the rig calls this with the horizon so
  // the drain period is announce-free and the run can quiesce).
  void StopAt(Time when) { stop_at_ = when; }

  // Dispatcher delivery handler; also invoked locally on the node's own
  // reports so the self view is always at least as fresh as any peer's.
  void OnMessage(const FleetMessage& message);

  // One announce round now: a kAnnounce for any newly seen server, then a
  // fresh kEstimate per local report.  Public for tests and examples.
  void AnnounceNow();

  ServerView ViewOf(FleetServerId server, Time now) const;

  // Discovery result: every origin known to talk to |server| (from either
  // message kind), ascending.  Includes self once a local report named it.
  std::vector<FleetNodeId> PeersFor(FleetServerId server) const;

  FleetNodeId self() const { return self_; }
  uint64_t reports_broadcast() const { return reports_broadcast_; }

 private:
  void Tick();

  Simulation* sim_;
  FleetDispatcher* dispatcher_;
  FleetNodeId self_;
  FleetAggregatorConfig config_;
  Duration phase_;
  Time stop_at_;
  ReportSource source_;
  uint64_t next_seq_ = 1;
  uint64_t reports_broadcast_ = 0;
  // Latest report per (server, origin); highest seq wins.
  std::map<FleetServerId, std::map<FleetNodeId, FleetMessage>> reports_;
  // Per-server membership from announces and estimates alike.
  std::map<FleetServerId, std::set<FleetNodeId>> members_;
  std::set<FleetServerId> announced_;
};

}  // namespace odyssey

#endif  // SRC_FLEET_FLEET_AGGREGATOR_H_

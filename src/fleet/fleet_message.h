// Wire schema of the odyfleet control plane (DESIGN.md §15).
//
// Every message the FleetDispatcher carries between viceroy nodes is a
// plain-old-data struct: trivially copyable, standard layout, no pointers,
// no owning containers.  PODness is what makes the bus deterministic — a
// message is copied by value into the delivery event, so reordering or
// dropping deliveries can never alias sender state — and it is enforced
// both by the static_asserts below and by ody_lint's fleet-pod-message
// rule (tools/ody_lint).

#ifndef SRC_FLEET_FLEET_MESSAGE_H_
#define SRC_FLEET_FLEET_MESSAGE_H_

#include <cstdint>
#include <type_traits>

#include "src/sim/time.h"

namespace odyssey {

// A node's identity on the fleet bus.  Dense, assigned by the rig at
// composition time, starting at 0.
using FleetNodeId = uint32_t;

// A shared server's identity.  Dense per scenario; the rig maps each
// warden/service name onto one of these groups.
using FleetServerId = uint32_t;

enum class FleetMessageKind : uint32_t {
  // Discovery: "I talk to this server".  Carries no estimate; it only
  // establishes per-server membership so peers learn who shares a server.
  kAnnounce = 0,
  // Aggregation: the origin's latest local view of one server's supply.
  kEstimate = 1,
};

struct FleetMessage {
  FleetMessageKind kind = FleetMessageKind::kEstimate;
  FleetNodeId origin = 0;
  FleetServerId server = 0;
  // Per-origin monotone sequence number.  The aggregator keeps only the
  // highest-seq report per (origin, server), which makes the merged view a
  // pure function of the delivered message *set* rather than the arrival
  // order — the determinism-under-reordering argument of DESIGN.md §15.
  uint64_t seq = 0;
  // Virtual send time; the staleness-weighting input of the merge.
  Time sent_at = 0;
  // The origin's local total-supply estimate, bytes/second.
  double supply_bps = 0.0;
  // The origin's recent usage rate against this server, bytes/second.
  double usage_bps = 0.0;
  // The origin's count of recently active connections to this server.
  int32_t active = 0;
};

static_assert(std::is_trivially_copyable_v<FleetMessage>,
              "fleet messages are copied by value into delivery events");
static_assert(std::is_standard_layout_v<FleetMessage>,
              "fleet messages are a wire schema, not a class hierarchy");

}  // namespace odyssey

#endif  // SRC_FLEET_FLEET_MESSAGE_H_

// The virtual-time message bus between fleet nodes (DESIGN.md §15).
//
// Inter-viceroy control traffic rides the same waveforms and faults as app
// traffic: a send consults the sender's nominal link waveform (ReplayTrace)
// for one-way latency and serialization delay, and the sender's/receiver's
// FaultInjector for outages and probabilistic drops.  All delivery happens
// on the shared Simulation's event queue, so a fleet of N nodes remains a
// single-threaded, bit-reproducible discrete-event program.
//
// Determinism argument:
//   * A send's fate and delay are pure functions of (send time, sender
//     waveform, armed fault plan and its private seeded stream).
//   * Broadcast offers messages to peers in ascending node id, so the
//     injector's probabilistic stream is consumed in a fixed order.
//   * Same-timestamp deliveries pop in scheduling order (the event queue's
//     deterministic tie-break), and receivers only fold messages into
//     seq-keyed tables (see FleetAggregator), so even reordered deliveries
//     cannot change the merged state.

#ifndef SRC_FLEET_FLEET_DISPATCHER_H_
#define SRC_FLEET_FLEET_DISPATCHER_H_

#include <cstdint>
#include <functional>
#include <map>

#include "src/fleet/fleet_message.h"
#include "src/net/fault_injector.h"
#include "src/sim/simulation.h"
#include "src/tracemod/replay_trace.h"

namespace odyssey {

class FleetDispatcher {
 public:
  using Handler = std::function<void(const FleetMessage&)>;

  // Modeled size of one serialized control message; with the calibrated
  // waveforms (8-240 KB/s) serialization costs 0.4-12 ms per message.
  static constexpr double kMessageBytes = 96.0;

  explicit FleetDispatcher(Simulation* sim) : sim_(sim) {}

  FleetDispatcher(const FleetDispatcher&) = delete;
  FleetDispatcher& operator=(const FleetDispatcher&) = delete;

  // Registers a node.  |waveform| is the node's nominal link waveform
  // (borrowed; may be null for an ideal zero-delay link), |injector| the
  // node's fault injector (borrowed; may be null for a fault-free link),
  // and |handler| receives every message delivered to the node.
  void RegisterNode(FleetNodeId node, const ReplayTrace* waveform, FaultInjector* injector,
                    Handler handler);

  // Offers one message from |from| to |to|.  Returns false when the message
  // is lost at the sender (outage, probabilistic drop, or a zero-bandwidth
  // radio shadow at the send instant); a loss at the receiver is only
  // discovered at delivery time and counted in messages_dropped().
  bool Send(FleetNodeId from, FleetNodeId to, const FleetMessage& message);

  // Offers |message| to every other registered node, in ascending node id.
  // Returns the number of sends that left the sender.
  int Broadcast(FleetNodeId from, const FleetMessage& message);

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_delivered() const { return messages_delivered_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    const ReplayTrace* waveform = nullptr;
    FaultInjector* injector = nullptr;
    Handler handler;
  };

  void Deliver(FleetNodeId to, const FleetMessage& message);

  Simulation* sim_;
  std::map<FleetNodeId, Node> nodes_;
  uint64_t messages_sent_ = 0;
  uint64_t messages_delivered_ = 0;
  uint64_t messages_dropped_ = 0;
};

}  // namespace odyssey

#endif  // SRC_FLEET_FLEET_DISPATCHER_H_

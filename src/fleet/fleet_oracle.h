// Fleet-level invariant oracles (ISSUE 9; DESIGN.md §15).
//
// Two oracles extend the single-node set (src/check/oracles.h) to the
// multi-node world:
//
//   fleet-share-bounds   Every node's per-server cap lies within the
//                        per-server fair-share formulation: at least
//                        supply/(active_clients + 1), at most the merged
//                        server supply.
//   fleet-convergence    After a quiescent, fault-free tail every node's
//                        view of a server's supply agrees within tolerance
//                        (all nodes hold the same report set and query it
//                        at the same virtual instant, so disagreement means
//                        the merge is not a pure function of the set).
//
// Violations reuse FuzzViolation so the fuzz driver reports them alongside
// the single-node oracles'.

#ifndef SRC_FLEET_FLEET_ORACLE_H_
#define SRC_FLEET_FLEET_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/check/oracles.h"
#include "src/fleet/fleet_aggregator.h"
#include "src/fleet/fleet_message.h"
#include "src/fleet/fleet_supply_model.h"
#include "src/sim/simulation.h"

namespace odyssey {

class FleetOracleSet {
 public:
  struct NodeBinding {
    FleetNodeId node = 0;
    // Borrowed; |model| may be null (laissez-faire / blind-optimism nodes
    // have no fleet supply model — only the convergence oracle applies).
    const FleetSupplyModel* model = nullptr;
    const FleetAggregator* aggregator = nullptr;
  };

  FleetOracleSet(Simulation* sim, std::vector<NodeBinding> nodes, int servers);

  // Periodic audit: per-server share bounds on every node's current view.
  void Sample();

  // Final audit.  |check_convergence| only when the run guaranteed a
  // fault-free tail long enough for announce rounds to flush (see
  // FleetQuiescentTail); |tolerance| is the allowed relative spread.
  void Finish(bool check_convergence, double tolerance);

  // Largest relative per-server view spread seen at Finish, percent (0 when
  // fewer than two nodes held valid views).
  double final_spread_pct() const { return final_spread_pct_; }

  const std::vector<FuzzViolation>& violations() const { return violations_; }
  uint64_t violation_count() const { return total_violations_; }

 private:
  void Report(const std::string& oracle, std::string detail);

  Simulation* sim_;
  std::vector<NodeBinding> nodes_;
  int servers_;
  std::vector<FuzzViolation> violations_;
  uint64_t total_violations_ = 0;
  double final_spread_pct_ = 0.0;
};

// True when |waveform| has strictly positive bandwidth everywhere in
// [from, to] (the At() rule: the final segment persists).  The convergence
// oracle needs this — a radio shadow in the tail silently drops control
// traffic, which legitimately leaves peers with staler reports.
bool WaveformLiveThroughout(const ReplayTrace& waveform, Time from, Time to);

// True when |plan| cannot lose a fleet message after |tail_start|: no
// probabilistic or indexed drops at all (they are unbounded in time) and
// every outage window ends before the tail.
bool FaultPlanQuietAfter(const FaultPlan& plan, Time tail_start);

}  // namespace odyssey

#endif  // SRC_FLEET_FLEET_ORACLE_H_

#include "src/fleet/fleet_oracle.h"

#include <cmath>
#include <sstream>
#include <utility>

namespace odyssey {
namespace {

// Same shape as the single-node oracles' tolerance: exact arithmetic, so
// the epsilon only absorbs rounding.
double ShareEps(double supply) { return 1e-6 * supply + 1e-3; }

}  // namespace

FleetOracleSet::FleetOracleSet(Simulation* sim, std::vector<NodeBinding> nodes, int servers)
    : sim_(sim), nodes_(std::move(nodes)), servers_(servers) {}

void FleetOracleSet::Report(const std::string& oracle, std::string detail) {
  ++total_violations_;
  if (violations_.size() < OracleSet::kMaxRecordedPerOracle) {
    violations_.push_back(FuzzViolation{oracle, sim_->now(), 0, std::move(detail)});
  }
}

void FleetOracleSet::Sample() {
  const Time now = sim_->now();
  for (const NodeBinding& binding : nodes_) {
    if (binding.model == nullptr || binding.aggregator == nullptr) {
      continue;
    }
    for (int s = 0; s < servers_; ++s) {
      const auto server = static_cast<FleetServerId>(s);
      const FleetAggregator::ServerView view = binding.aggregator->ViewOf(server, now);
      if (!view.valid) {
        continue;
      }
      if (!std::isfinite(view.supply_bps) || view.supply_bps < 0.0) {
        std::ostringstream detail;
        detail << "node " << binding.node << " server " << s << " merged supply "
               << view.supply_bps;
        Report("fleet-share-bounds", detail.str());
        continue;
      }
      const double cap = binding.model->ServerCapFor(server, now);
      if (cap < 0.0) {
        continue;
      }
      // Per-server fair share (ISSUE 9): every client is promised at least
      // supply/(active_clients + 1) of the server, and never more than the
      // whole server supply.
      const double floor =
          view.supply_bps / static_cast<double>(view.active_clients + 1);
      const double eps = ShareEps(view.supply_bps);
      if (cap + eps < floor) {
        std::ostringstream detail;
        detail << "node " << binding.node << " server " << s << " cap " << cap
               << " below per-server fair-share floor " << floor << " (supply "
               << view.supply_bps << ", active " << view.active_clients << ")";
        Report("fleet-share-bounds", detail.str());
      }
      if (cap > view.supply_bps + eps) {
        std::ostringstream detail;
        detail << "node " << binding.node << " server " << s << " cap " << cap
               << " exceeds merged supply " << view.supply_bps;
        Report("fleet-share-bounds", detail.str());
      }
    }
  }
}

void FleetOracleSet::Finish(bool check_convergence, double tolerance) {
  Sample();
  const Time now = sim_->now();
  for (int s = 0; s < servers_; ++s) {
    const auto server = static_cast<FleetServerId>(s);
    double lo = 0.0;
    double hi = 0.0;
    int valid = 0;
    for (const NodeBinding& binding : nodes_) {
      if (binding.aggregator == nullptr) {
        continue;
      }
      const FleetAggregator::ServerView view = binding.aggregator->ViewOf(server, now);
      if (!view.valid) {
        continue;
      }
      if (valid == 0) {
        lo = hi = view.supply_bps;
      } else {
        lo = std::min(lo, view.supply_bps);
        hi = std::max(hi, view.supply_bps);
      }
      ++valid;
    }
    if (valid < 2 || hi <= 0.0) {
      continue;
    }
    const double spread = (hi - lo) / hi;
    final_spread_pct_ = std::max(final_spread_pct_, spread * 100.0);
    if (check_convergence && spread > tolerance) {
      std::ostringstream detail;
      detail << "server " << s << " views diverge after quiescent tail: min " << lo << " max "
             << hi << " spread " << spread * 100.0 << "% over " << valid << " nodes";
      Report("fleet-convergence", detail.str());
    }
  }
}

bool WaveformLiveThroughout(const ReplayTrace& waveform, Time from, Time to) {
  if (waveform.empty()) {
    return false;
  }
  Time cursor = 0;
  for (const TraceSegment& segment : waveform.segments()) {
    const Time begin = cursor;
    cursor += segment.duration;
    if (segment.bandwidth_bps <= 0.0 && begin < to && cursor > from) {
      return false;
    }
  }
  // Past the end the final segment persists (the At() rule), and the
  // generator's drain guarantee keeps it live; check anyway.
  return !(cursor < to && waveform.segments().back().bandwidth_bps <= 0.0);
}

bool FaultPlanQuietAfter(const FaultPlan& plan, Time tail_start) {
  if (plan.drop_probability > 0.0 || !plan.drop_messages.empty()) {
    return false;
  }
  for (const OutageWindow& outage : plan.outages) {
    if (outage.start + outage.duration > tail_start) {
      return false;
    }
  }
  return true;
}

}  // namespace odyssey

#include "src/fleet/fleet_fuzz.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/check/fuzz_driver.h"
#include "src/core/contract.h"
#include "src/core/odyssey_client.h"
#include "src/fleet/fleet_aggregator.h"
#include "src/fleet/fleet_dispatcher.h"
#include "src/fleet/fleet_oracle.h"
#include "src/fleet/fleet_supply_model.h"
#include "src/metrics/experiment.h"
#include "src/net/fault_injector.h"
#include "src/net/modulator.h"
#include "src/servers/calibration.h"
#include "src/servers/file_server.h"
#include "src/servers/telemetry_server.h"
#include "src/sim/random.h"
#include "src/strategies/centralized.h"
#include "src/strategies/strategy_registry.h"
#include "src/tracemod/replay_trace.h"
#include "src/wardens/bitstream_warden.h"
#include "src/wardens/file_warden.h"
#include "src/wardens/speech_warden.h"
#include "src/wardens/telemetry_warden.h"
#include "src/wardens/video_warden.h"
#include "src/wardens/web_warden.h"

namespace odyssey {
namespace {

// The quiescent tail the convergence oracle demands: longer than the
// generator's longest outage (kMaxOutage = 3s) plus a couple of announce
// rounds, so every node rebroadcasts at least once after the last fault.
constexpr Duration kConvergenceTail = 4 * kSecond;

// Stable service -> server-group mapping (FNV-1a 64; std::hash is
// implementation-defined and would break cross-platform reproducibility).
FleetServerId ServerGroupOf(const std::string& service, int servers) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : service) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<FleetServerId>(h % static_cast<uint64_t>(servers));
}

// One client node's rig.  Declaration order is destruction order in
// reverse: the oracle goes first, then the client (which detaches every
// endpoint from the strategy), and only then the aggregator the strategy's
// fleet model borrows.
struct FleetNode {
  FuzzScenario scenario;  // per-node waveform; referenced by the oracle
  ReplayTrace waveform;
  FaultPlan plan;
  std::unique_ptr<Link> link;
  std::unique_ptr<Modulator> modulator;
  std::unique_ptr<FaultInjector> injector;
  std::unique_ptr<FleetAggregator> aggregator;
  FleetSupplyModel* model = nullptr;        // owned by the strategy (centralized family)
  CentralizedStrategy* strategy = nullptr;  // audit surface; null for isolated estimates
  std::unique_ptr<OdysseyClient> client;
  std::unique_ptr<OracleSet> oracle;
};

}  // namespace

FuzzScenario FleetNodeScenario(const FuzzScenario& scenario, int node) {
  FuzzScenario out = scenario;
  if (node == 0) {
    return out;
  }
  SplitMix64 mix(scenario.seed ^ (0x666c656574ULL + static_cast<uint64_t>(node) * 0x9e3779b97f4a7c15ULL));
  const double factor = 0.5 + static_cast<double>(mix.Next() >> 11) * 0x1.0p-53;
  for (FuzzSegment& segment : out.segments) {
    if (segment.bandwidth_bps > 0.0) {
      segment.bandwidth_bps *= factor;
    }
  }
  return out;
}

FuzzRunResult RunFleetFuzzScenario(const FuzzScenario& scenario, const FuzzRunOptions& options) {
  ODY_ASSERT(scenario.fleet_nodes >= 2, "fleet runner needs a fleet-dimension scenario");
  ODY_ASSERT(scenario.fleet_servers >= 1, "fleet scenario names no server groups");
  FuzzRunResult result;
  const int node_count = scenario.fleet_nodes;
  const int server_groups = scenario.fleet_servers;

  Simulation sim(scenario.seed);
  if (options.trace != nullptr) {
    sim.set_trace(options.trace);
  }

  // One shared server farm, exactly the single-node runner's catalog.
  VideoServer video_server(&sim.rng());
  const Status added =
      video_server.AddMovie(VideoServer::MakeDefaultMovie(kDefaultMovie, kVideoFramesPerTrial));
  ODY_ASSERT(added.ok(), "fleet fuzz rig failed to seed the video catalog");
  DistillationServer distillation_server(&sim.rng());
  distillation_server.PublishImage(kTestImageUrl, kWebImageBytes);
  JanusServer janus_server(&sim.rng());
  FileServer file_server(&sim.rng());
  for (int i = 0; i < kFuzzFiles; ++i) {
    file_server.Publish("doc/" + std::to_string(i), (8.0 + 16.0 * i) * 1024.0);
  }
  TelemetryServer telemetry_server(&sim);
  telemetry_server.CreateFeed(kFuzzFeed, 200 * kMillisecond, 100.0, 5.0);

  FleetDispatcher dispatcher(&sim);

  std::vector<std::unique_ptr<FleetNode>> nodes;
  nodes.reserve(static_cast<size_t>(node_count));
  for (int i = 0; i < node_count; ++i) {
    auto node = std::make_unique<FleetNode>();
    node->scenario = FleetNodeScenario(scenario, i);
    node->waveform = BuildTrace(node->scenario);
    // Each node's injector stream is decoupled from its siblings': same
    // fault schedule, independent probabilistic draws.
    node->plan = BuildFaultPlan(scenario);
    node->plan.WithSeed(SplitMix64(node->plan.seed ^ static_cast<uint64_t>(i)).Next());

    const FuzzSegment first = node->scenario.segments.empty()
                                  ? FuzzSegment{kSecond, kHighBandwidth, kOneWayLatency}
                                  : node->scenario.segments.front();
    node->link = std::make_unique<Link>(&sim, first.bandwidth_bps, first.latency);
    node->modulator = std::make_unique<Modulator>(&sim, node->link.get());
    node->injector = std::make_unique<FaultInjector>(&sim, node->link.get());
    node->injector->Arm(node->plan);

    node->aggregator = std::make_unique<FleetAggregator>(
        &sim, &dispatcher, static_cast<FleetNodeId>(i), scenario.seed);
    // The node's strategy comes from the registry (the scenario's strategy
    // dimension); centralized-family strategies get the fleet-aggregated
    // supply model injected, so admission control and congestion-manager
    // grouping compose with sharded aggregation.
    const std::string strategy_name = scenario.strategy.empty() ? "odyssey" : scenario.strategy;
    const StrategyInfo* info = StrategyRegistry::Builtin().Find(strategy_name);
    ODY_ASSERT(info != nullptr, "unknown fleet strategy name");
    StrategyContext context;
    context.sim = &sim;
    context.modulator = node->modulator.get();
    if (info->audited) {
      auto model = std::make_unique<FleetSupplyModel>(node->aggregator.get());
      node->model = model.get();
      context.injected_model = std::move(model);
    }
    std::unique_ptr<BandwidthStrategy> strategy =
        StrategyRegistry::Builtin().Create(strategy_name, std::move(context));
    node->strategy = strategy->audit_surface();
    node->client = std::make_unique<OdysseyClient>(&sim, node->link.get(), std::move(strategy),
                                                   kUpcallLatency);

    if (node->model != nullptr) {
      FleetSupplyModel* model_ptr = node->model;
      node->client->set_connection_observer(
          [model_ptr, server_groups](Endpoint* endpoint, const std::string& service) {
            model_ptr->MapConnection(endpoint->id(), ServerGroupOf(service, server_groups));
          });
      node->aggregator->set_report_source(
          [model_ptr, &sim] { return model_ptr->LocalReports(sim.now()); });  // ody_lint: owned-capture
    } else {
      // Isolated-estimate strategies still publish whole-link estimates so
      // discovery and convergence cover them (same as the fleet campaign
      // rig): one report per server group at the strategy's total supply.
      BandwidthStrategy* raw = &node->client->viceroy().strategy();
      node->aggregator->set_report_source([raw, server_groups, &sim] {  // ody_lint: owned-capture
        std::vector<FleetAggregator::LocalReport> reports;
        if (!raw->HasEstimate()) {
          return reports;
        }
        for (int s = 0; s < server_groups; ++s) {
          FleetAggregator::LocalReport report;
          report.server = static_cast<FleetServerId>(s);
          report.supply_bps = raw->TotalSupply(sim.now());
          report.active = 1;
          reports.push_back(report);
        }
        return reports;
      });
    }

    node->client->InstallWarden(std::make_unique<VideoWarden>(&video_server));
    node->client->InstallWarden(std::make_unique<WebWarden>(&distillation_server));
    node->client->InstallWarden(std::make_unique<SpeechWarden>(&janus_server));
    node->client->InstallWarden(std::make_unique<BitstreamWarden>());
    node->client->InstallWarden(std::make_unique<FileWarden>(&file_server));
    node->client->InstallWarden(std::make_unique<TelemetryWarden>(&telemetry_server));
    node->client->set_retry_policy(RetryPolicy::Default());
    node->client->set_fault_injector(node->injector.get());

    node->oracle = std::make_unique<OracleSet>(node->scenario, &sim, &node->client->viceroy(),
                                               node->strategy, node->link.get());
    node->oracle->set_max_audited_connections(options.max_audited_connections);
    nodes.push_back(std::move(node));
  }

  // Register every node on the bus after all rigs exist (ascending ids, so
  // broadcast order is the id order).
  for (int i = 0; i < node_count; ++i) {
    FleetAggregator* aggregator = nodes[static_cast<size_t>(i)]->aggregator.get();
    dispatcher.RegisterNode(static_cast<FleetNodeId>(i), &nodes[static_cast<size_t>(i)]->waveform,
                            nodes[static_cast<size_t>(i)]->injector.get(),
                            [aggregator](const FleetMessage& message) {  // ody_lint: owned-capture
                              aggregator->OnMessage(message);
                            });
  }

  for (size_t i = 0; i < nodes.size(); ++i) {
    FleetNode* node = nodes[i].get();
    OracleSet* oracle = node->oracle.get();
    const bool mutate = options.selftest_mutation && i == 0;
    node->client->viceroy().upcalls().set_delivery_observer(
        [oracle, &result, mutate](AppId app, uint64_t seq, RequestId request, ResourceId resource,
                                  double level, Time posted_at) {
          ++result.upcalls_delivered;
          oracle->OnUpcallDelivered(app, seq, request, resource, level, posted_at);
#ifdef ODYSSEY_FUZZ_SELFTEST
          if (mutate && seq == 2) {
            // Same seeded defect as the single-node runner: node 0's second
            // upcall per app is observed twice (CI's fuzz-selftest job).
            oracle->OnUpcallDelivered(app, seq, request, resource, level, posted_at);
          }
#else
          (void)mutate;
#endif
        });
  }
  // The step/tie observers are simulation-global; node 0's oracle audits
  // them on behalf of the whole fleet.
  OracleSet* lead_oracle = nodes.front()->oracle.get();
  sim.set_step_observer([lead_oracle](Time when) { lead_oracle->OnStep(when); });  // ody_lint: owned-capture
  // ody_lint: owned-capture
  sim.set_tie_observer([lead_oracle](Time when, uint64_t prev_seq, uint64_t seq) {
    lead_oracle->OnTieBreak(when, prev_seq, seq);
  });
#ifdef ODYSSEY_FUZZ_SELFTEST
  if (options.selftest_tiebreak) {
    sim.set_selftest_lifo_ties(true);
  }
#endif

  std::vector<FleetOracleSet::NodeBinding> bindings;
  bindings.reserve(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    bindings.push_back(FleetOracleSet::NodeBinding{static_cast<FleetNodeId>(i),
                                                   nodes[i]->model, nodes[i]->aggregator.get()});
  }
  FleetOracleSet fleet_oracle(&sim, std::move(bindings), server_groups);

  const Time end = scenario.horizon + options.drain_grace;
  struct Sampler {
    Simulation* sim;
    std::vector<std::unique_ptr<FleetNode>>* nodes;
    FleetOracleSet* fleet_oracle;
    Time end;
    Duration period;
    void Tick() {
      for (auto& node : *nodes) {
        node->oracle->Sample();
      }
      fleet_oracle->Sample();
      if (sim->now() < end) {
        sim->Schedule(period, [this] { Tick(); });
      }
    }
  };
  Sampler sampler{&sim, &nodes, &fleet_oracle, end, options.oracle_period};
  // The sampler stops rescheduling at |end| and the sim drains before it
  // leaves scope.
  sim.Schedule(options.oracle_period, [&sampler] { sampler.Tick(); });  // ody_lint: owned-capture

  // Apps are dealt round-robin across the nodes, each driven by the shared
  // FuzzDriver against its node's client and oracle.
  std::vector<std::unique_ptr<FuzzDriver>> drivers;
  drivers.reserve(scenario.apps.size());
  for (size_t i = 0; i < scenario.apps.size(); ++i) {
    FleetNode* node = nodes[i % nodes.size()].get();
    drivers.push_back(std::make_unique<FuzzDriver>(node->client.get(), node->oracle.get(),
                                                   scenario.apps[i], static_cast<int>(i), &result));
    drivers.back()->Start();
  }

  for (auto& node : nodes) {
    node->modulator->Replay(node->waveform);
    node->aggregator->StopAt(scenario.horizon);
    node->aggregator->Start();
  }

  sim.RunUntil(scenario.horizon);
  for (auto& driver : drivers) {
    driver->Stop();
  }
  sim.RunUntil(end);

  // The convergence oracle only arms when the tail was provably quiet:
  // no fault kind that can eat a fleet message near or after the horizon,
  // and every node's radio live through the drain (a shadow silently drops
  // control traffic, legitimately leaving peers with staler reports).
  const Time tail_start = scenario.horizon - kConvergenceTail;
  bool quiescent_tail = tail_start > 0;
  for (const auto& node : nodes) {
    quiescent_tail = quiescent_tail && FaultPlanQuietAfter(node->plan, tail_start) &&
                     WaveformLiveThroughout(node->waveform, tail_start, end);
  }
  for (auto& node : nodes) {
    node->oracle->Finish();
  }
  fleet_oracle.Finish(quiescent_tail, 0.01);

  // Detach the observers before the stack unwinds: the oracles borrow the
  // viceroys and links, and no event may fire past this point anyway.
  for (auto& node : nodes) {
    node->client->viceroy().upcalls().set_delivery_observer({});
  }
  sim.set_step_observer({});
  sim.set_tie_observer({});

  for (const auto& node : nodes) {
    for (const FuzzViolation& violation : node->oracle->violations()) {
      result.violations.push_back(violation);
    }
    result.violation_count += node->oracle->violation_count();
    result.bytes_delivered += node->link->bytes_delivered();
  }
  for (const FuzzViolation& violation : fleet_oracle.violations()) {
    result.violations.push_back(violation);
  }
  result.violation_count += fleet_oracle.violation_count();
  result.tie_pairs_audited = lead_oracle->tie_pairs_audited();
  return result;
}

}  // namespace odyssey

// The tier_fleet campaign: N client nodes — each a full viceroy + warden
// stack behind its own waveform-modulated link — sharing M servers through
// the fleet estimate-aggregation protocol, under all fuzzing oracles.
//
// Each variant crosses a fleet size (N in {2, 8, 32, 128}) with a
// bandwidth-management strategy (odyssey = centralized arbitration against
// the fleet-merged *server* supply, laissez = per-node laissez-faire,
// blind = per-node blind optimism) and a waveform family (fixed steps or
// motion-generated mobility traces).  The headline figures are the
// per-server fairness (Jain index across nodes' claims) and overclaim
// (summed claims over the server's capacity share): centralized fleet
// arbitration keeps claims near the per-server fair share while the
// strategies that ignore their peers oversubscribe the shared servers.
//
// Like tier_scale this lives beside odyssey_check, keeping the OracleSet
// armed per node throughout (oracle_violations gates at zero).

#ifndef SRC_FLEET_FLEET_SCENARIO_H_
#define SRC_FLEET_FLEET_SCENARIO_H_

#include "src/harness/campaign.h"
#include "src/harness/scenario_registry.h"

namespace odyssey {

// Registers the "fleet_share" scenario (variants n<N>_<strategy>_<wave>).
// Asserts that registration succeeds, like RegisterScaleScenarios.
void RegisterFleetScenarios(ScenarioRegistry* registry);

// The tier_fleet campaign spec.  Callers that can run it (ody_bench, the
// fleet tests) append it to the built-in list after registering the fleet
// scenarios.
CampaignSpec FleetCampaign();

}  // namespace odyssey

#endif  // SRC_FLEET_FLEET_SCENARIO_H_

// A SupplyModelInterface that arbitrates against *server* supply.
//
// FleetSupplyModel wraps the incremental local SupplyModel and, for every
// connection mapped to a shared server, clamps the local availability
// figure by the fleet's merged view of that server:
//
//     cap    = merged_supply / (other_active_clients + 1)
//     floor  = local_supply  / (local_active + 1)
//     avail  = max(floor, min(local_avail, cap))
//
// The clamp keeps both local fair-share invariants intact (the result
// never drops below the local floor nor exceeds the local supply), while a
// server crowded by other clients pulls a connection's availability down
// toward its per-client share of the *server's* supply — the per-server
// fair-share formulation the tier_fleet oracles audit.  With no aggregator
// view (cold start, unmapped connection, every peer silent) the model
// degenerates to the local one exactly.

#ifndef SRC_FLEET_FLEET_SUPPLY_MODEL_H_
#define SRC_FLEET_FLEET_SUPPLY_MODEL_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/estimator/supply_model.h"
#include "src/fleet/fleet_aggregator.h"
#include "src/fleet/fleet_message.h"
#include "src/sim/time.h"

namespace odyssey {

class FleetSupplyModel : public SupplyModelInterface {
 public:
  // |aggregator| is borrowed and may be null, in which case the model is
  // exactly the local incremental model.
  explicit FleetSupplyModel(FleetAggregator* aggregator, const SupplyModelConfig& config = {});

  // Binds |connection| to a shared server group; subsequent availability
  // queries for it consult the fleet view.  Rebinding overwrites.
  void MapConnection(ConnectionId connection, FleetServerId server);

  // The per-server cap applied to connections of |server| at |now|: the
  // merged supply split among the other active clients plus this one.
  // Returns a negative value when no valid view exists (tests and oracles
  // treat that as "no clamp").
  double ServerCapFor(FleetServerId server, Time now) const;

  // Local reports for the aggregator's announce rounds: one entry per
  // mapped server, carrying the local supply estimate, the summed usage
  // rate of the server's connections and how many of them are active.
  std::vector<FleetAggregator::LocalReport> LocalReports(Time now) const;

  const FleetAggregator* aggregator() const { return aggregator_; }

  // SupplyModelInterface — everything delegates to the local model except
  // AvailabilityFor's fleet clamp.
  const char* name() const override { return "fleet"; }
  void AddConnection(ConnectionId connection) override { local_.AddConnection(connection); }
  void RemoveConnection(ConnectionId connection) override;
  void OnRoundTrip(ConnectionId connection, const RoundTripObservation& obs) override {
    local_.OnRoundTrip(connection, obs);
  }
  void OnThroughput(ConnectionId connection, const ThroughputObservation& obs) override {
    local_.OnThroughput(connection, obs);
  }
  void OnFailure(ConnectionId connection, const FailureObservation& obs) override {
    local_.OnFailure(connection, obs);
  }
  double TotalSupply() const override { return local_.TotalSupply(); }
  bool has_supply() const override { return local_.has_supply(); }
  double AvailabilityFor(ConnectionId connection, Time now) const override;
  int ActiveConnectionCount(Time now) const override { return local_.ActiveConnectionCount(now); }
  const ConnectionEstimator* EstimatorFor(ConnectionId connection) const override {
    return local_.EstimatorFor(connection);
  }
  double UsageRateFor(ConnectionId connection, Time now) const override {
    return local_.UsageRateFor(connection, now);
  }
  void CollectLiveConnections(Time now, std::vector<ConnectionId>* out) const override {
    local_.CollectLiveConnections(now, out);
  }
  uint64_t scan_ops() const override { return local_.scan_ops(); }

 private:
  SupplyModel local_;
  FleetAggregator* aggregator_;
  std::map<ConnectionId, FleetServerId> server_of_;
};

}  // namespace odyssey

#endif  // SRC_FLEET_FLEET_SUPPLY_MODEL_H_

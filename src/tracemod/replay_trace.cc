#include "src/tracemod/replay_trace.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <utility>

namespace odyssey {

ReplayTrace::ReplayTrace(std::vector<TraceSegment> segments) : segments_(std::move(segments)) {}

ReplayTrace& ReplayTrace::Append(Duration duration, double bandwidth_bps, Duration latency) {
  segments_.push_back(TraceSegment{duration, bandwidth_bps, latency});
  return *this;
}

ReplayTrace& ReplayTrace::Append(const TraceSegment& segment) {
  segments_.push_back(segment);
  return *this;
}

Duration ReplayTrace::TotalDuration() const {
  Duration total = 0;
  for (const auto& segment : segments_) {
    total += segment.duration;
  }
  return total;
}

TraceSegment ReplayTrace::At(Time t) const {
  if (segments_.empty()) {
    return TraceSegment{};
  }
  Time cursor = 0;
  for (const auto& segment : segments_) {
    cursor += segment.duration;
    if (t < cursor) {
      return segment;
    }
  }
  return segments_.back();
}

double ReplayTrace::IntegralBytes(Time until) const {
  double bytes = 0.0;
  Time t = 0;
  for (const auto& segment : segments_) {
    if (t >= until) {
      return bytes;
    }
    const Duration span = std::min(segment.duration, until - t);
    bytes += segment.bandwidth_bps * DurationToSeconds(span);
    t += span;
  }
  if (t < until && !segments_.empty()) {
    bytes += segments_.back().bandwidth_bps * DurationToSeconds(until - t);
  }
  return bytes;
}

ReplayTrace ReplayTrace::WithPriming(Duration lead) const {
  ReplayTrace primed;
  if (lead > 0 && !segments_.empty()) {
    primed.Append(lead, segments_.front().bandwidth_bps, segments_.front().latency);
  }
  for (const auto& segment : segments_) {
    primed.Append(segment);
  }
  return primed;
}

ReplayTrace ReplayTrace::Concat(const ReplayTrace& other) const {
  ReplayTrace joined = *this;
  for (const auto& segment : other.segments_) {
    joined.Append(segment);
  }
  return joined;
}

ReplayTrace ReplayTrace::ScaledBandwidth(double factor) const {
  ReplayTrace scaled = *this;
  for (auto& segment : scaled.segments_) {
    segment.bandwidth_bps *= factor;
  }
  return scaled;
}

std::string ReplayTrace::Serialize() const {
  std::ostringstream os;
  os.precision(15);  // full microsecond fidelity for durations of any length
  os << "# odyssey replay trace: <seconds> <bytes_per_sec> <latency_us>\n";
  for (const auto& segment : segments_) {
    os << DurationToSeconds(segment.duration) << " " << segment.bandwidth_bps << " "
       << segment.latency << "\n";
  }
  return os.str();
}

bool ReplayTrace::Parse(const std::string& text, ReplayTrace* out) {
  ReplayTrace parsed;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    // Strip comments.
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::istringstream fields(line);
    double seconds = 0.0;
    double bandwidth = 0.0;
    long long latency_us = 0;
    if (!(fields >> seconds)) {
      continue;  // blank line
    }
    if (!(fields >> bandwidth >> latency_us)) {
      return false;
    }
    if (seconds < 0.0 || bandwidth < 0.0 || latency_us < 0) {
      return false;
    }
    parsed.Append(SecondsToDuration(seconds), bandwidth, latency_us);
  }
  *out = std::move(parsed);
  return true;
}

std::ostream& operator<<(std::ostream& os, const ReplayTrace& trace) {
  return os << trace.Serialize();
}

}  // namespace odyssey

// The paper's reference waveforms (Figure 7) and the urban scenario trace
// (Figure 13), expressed as replay traces.
//
// From §6.1.1: each Step waveform is 60 seconds long with a single abrupt
// transition at the midpoint; each Impulse waveform approximates an ideal
// impulse with a two-second-wide excursion in the middle of a 60-second
// period.  §6.1.3 fixes the bandwidth levels at 120 KB/s (high) and 40 KB/s
// (low) with a 21 ms protocol round-trip time at both levels.

#ifndef SRC_TRACEMOD_WAVEFORMS_H_
#define SRC_TRACEMOD_WAVEFORMS_H_

#include <string>
#include <vector>

#include "src/sim/time.h"
#include "src/tracemod/replay_trace.h"

namespace odyssey {

// Experimental constants from §6.1.3.  Bandwidths are in bytes/second
// (1 KB = 1024 bytes).
inline constexpr double kHighBandwidth = 120.0 * 1024.0;  // 120 KB/s
inline constexpr double kLowBandwidth = 40.0 * 1024.0;    // 40 KB/s
// 21 ms measured protocol round trip => 10.5 ms one-way latency.
inline constexpr Duration kOneWayLatency = 10500;
inline constexpr Duration kWaveformLength = 60 * kSecond;
inline constexpr Duration kImpulseWidth = 2 * kSecond;
// The paper primes each experiment with 30 seconds of steady state.
inline constexpr Duration kPrimingPeriod = 30 * kSecond;
// The private-Ethernet baseline used by the Web experiments (§6.2.2); 10 Mb/s
// Ethernet moves roughly 1.1 MB/s of user data.
inline constexpr double kEthernetBandwidth = 1100.0 * 1024.0;
inline constexpr Duration kEthernetLatency = 500;  // 1 ms round trip

// Parameters for waveform construction; defaults reproduce the paper.
struct WaveformParams {
  double high_bps = kHighBandwidth;
  double low_bps = kLowBandwidth;
  Duration latency = kOneWayLatency;
  Duration length = kWaveformLength;
  Duration impulse_width = kImpulseWidth;
};

enum class Waveform {
  kStepUp,
  kStepDown,
  kImpulseUp,
  kImpulseDown,
};

// All four reference waveforms, in the order the paper's tables list them.
const std::vector<Waveform>& AllWaveforms();

// Human-readable name ("Step-Up", ...).
std::string WaveformName(Waveform waveform);

// Builds the requested reference waveform.
ReplayTrace MakeWaveform(Waveform waveform, const WaveformParams& params = {});

// Low for 30 s, then high for 30 s.
ReplayTrace MakeStepUp(const WaveformParams& params = {});
// High for 30 s, then low for 30 s.
ReplayTrace MakeStepDown(const WaveformParams& params = {});
// Low, with a 2 s excursion to high centered at the midpoint.
ReplayTrace MakeImpulseUp(const WaveformParams& params = {});
// High, with a 2 s excursion to low centered at the midpoint.
ReplayTrace MakeImpulseDown(const WaveformParams& params = {});

// A constant-bandwidth trace of the given length.
ReplayTrace MakeConstant(double bandwidth_bps, Duration length,
                         Duration latency = kOneWayLatency);

// The 15-minute synthetic urban trace of Figure 13: a user starts
// well-connected, crosses a region of intermittent quality, passes through
// the radio shadow of a large building, and returns to good connectivity.
// Segment minutes: H3 L1 H1 L1 H2 L1 H1 L1 H4.
ReplayTrace MakeUrbanScenario(const WaveformParams& params = {});

// The private-Ethernet baseline trace for the Web experiment.
ReplayTrace MakeEthernetBaseline(Duration length);

}  // namespace odyssey

#endif  // SRC_TRACEMOD_WAVEFORMS_H_

// Replay traces for trace modulation (Noble et al., SIGCOMM'97; paper §6.1.2).
//
// The paper emulates slow target networks over a fast LAN by delaying traffic
// according to a simple linear model (latency + bandwidth-induced delay) whose
// parameters are read from a *replay trace*.  A ReplayTrace here is a sequence
// of piecewise-constant segments, each giving a duration, a nominal bandwidth
// and a one-way latency.  The net::Modulator feeds these parameters to an
// emulated link at the right virtual times.

#ifndef SRC_TRACEMOD_REPLAY_TRACE_H_
#define SRC_TRACEMOD_REPLAY_TRACE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace odyssey {

// One piecewise-constant segment of a replay trace.
struct TraceSegment {
  Duration duration = 0;         // how long these parameters hold
  double bandwidth_bps = 0.0;    // nominal link bandwidth, bytes/second
  Duration latency = 0;          // one-way latency

  bool operator==(const TraceSegment&) const = default;
};

class ReplayTrace {
 public:
  ReplayTrace() = default;
  explicit ReplayTrace(std::vector<TraceSegment> segments);

  // Appends a segment; returns *this for fluent construction.
  ReplayTrace& Append(Duration duration, double bandwidth_bps, Duration latency);
  ReplayTrace& Append(const TraceSegment& segment);

  const std::vector<TraceSegment>& segments() const { return segments_; }
  bool empty() const { return segments_.empty(); }

  // Total duration of all segments.
  Duration TotalDuration() const;

  // Parameters in effect at time |t| (relative to trace start).  Times at or
  // past the end of the trace hold the final segment's parameters, matching
  // the modulation daemon's behaviour when a trace runs out.  An empty trace
  // yields a zero segment.
  TraceSegment At(Time t) const;

  // Nominal bandwidth at time |t| — the "theoretical bandwidth" dashed line
  // of Figure 8.
  double BandwidthAt(Time t) const { return At(t).bandwidth_bps; }

  // Integral of the nominal bandwidth over [0, until], in bytes — the upper
  // bound on what a link modulated by this trace can deliver.  The final
  // segment persists past the end of the trace (the At() rule), zero-width
  // segments contribute nothing, and zero-bandwidth shadows integrate to
  // zero.  This is the one audited integration path shared by the fuzzer's
  // byte-conservation oracle and mobility-generated waveforms.
  double IntegralBytes(Time until) const;

  // Returns a trace shifted in time by prefixing a segment that repeats the
  // first segment's parameters for |lead| microseconds.  Used to implement
  // the paper's 30-second priming period before observation starts.
  ReplayTrace WithPriming(Duration lead) const;

  // Concatenates |other| onto a copy of this trace.
  ReplayTrace Concat(const ReplayTrace& other) const;

  // Returns a copy with every bandwidth multiplied by |factor|.
  ReplayTrace ScaledBandwidth(double factor) const;

  // Serialization: one segment per line, "<seconds> <bytes_per_sec> <latency_us>".
  // Lines starting with '#' and blank lines are ignored on parse.
  std::string Serialize() const;
  static bool Parse(const std::string& text, ReplayTrace* out);

  bool operator==(const ReplayTrace&) const = default;

 private:
  std::vector<TraceSegment> segments_;
};

std::ostream& operator<<(std::ostream& os, const ReplayTrace& trace);

}  // namespace odyssey

#endif  // SRC_TRACEMOD_REPLAY_TRACE_H_

#include "src/tracemod/waveforms.h"

namespace odyssey {

const std::vector<Waveform>& AllWaveforms() {
  static const std::vector<Waveform> kAll = {
      Waveform::kStepUp,
      Waveform::kStepDown,
      Waveform::kImpulseUp,
      Waveform::kImpulseDown,
  };
  return kAll;
}

std::string WaveformName(Waveform waveform) {
  switch (waveform) {
    case Waveform::kStepUp:
      return "Step-Up";
    case Waveform::kStepDown:
      return "Step-Down";
    case Waveform::kImpulseUp:
      return "Impulse-Up";
    case Waveform::kImpulseDown:
      return "Impulse-Down";
  }
  return "Unknown";
}

ReplayTrace MakeWaveform(Waveform waveform, const WaveformParams& params) {
  switch (waveform) {
    case Waveform::kStepUp:
      return MakeStepUp(params);
    case Waveform::kStepDown:
      return MakeStepDown(params);
    case Waveform::kImpulseUp:
      return MakeImpulseUp(params);
    case Waveform::kImpulseDown:
      return MakeImpulseDown(params);
  }
  return ReplayTrace{};
}

ReplayTrace MakeStepUp(const WaveformParams& params) {
  const Duration half = params.length / 2;
  ReplayTrace trace;
  trace.Append(half, params.low_bps, params.latency);
  trace.Append(params.length - half, params.high_bps, params.latency);
  return trace;
}

ReplayTrace MakeStepDown(const WaveformParams& params) {
  const Duration half = params.length / 2;
  ReplayTrace trace;
  trace.Append(half, params.high_bps, params.latency);
  trace.Append(params.length - half, params.low_bps, params.latency);
  return trace;
}

ReplayTrace MakeImpulseUp(const WaveformParams& params) {
  const Duration lead = (params.length - params.impulse_width) / 2;
  const Duration tail = params.length - lead - params.impulse_width;
  ReplayTrace trace;
  trace.Append(lead, params.low_bps, params.latency);
  trace.Append(params.impulse_width, params.high_bps, params.latency);
  trace.Append(tail, params.low_bps, params.latency);
  return trace;
}

ReplayTrace MakeImpulseDown(const WaveformParams& params) {
  const Duration lead = (params.length - params.impulse_width) / 2;
  const Duration tail = params.length - lead - params.impulse_width;
  ReplayTrace trace;
  trace.Append(lead, params.high_bps, params.latency);
  trace.Append(params.impulse_width, params.low_bps, params.latency);
  trace.Append(tail, params.high_bps, params.latency);
  return trace;
}

ReplayTrace MakeConstant(double bandwidth_bps, Duration length, Duration latency) {
  ReplayTrace trace;
  trace.Append(length, bandwidth_bps, latency);
  return trace;
}

ReplayTrace MakeUrbanScenario(const WaveformParams& params) {
  // Figure 13 gives segment durations of 3,1,1,1,2,1,1,1,4 minutes.  The user
  // begins well-connected (3 min high), traverses an intermittent region,
  // passes the radio shadow of a large building, and ends well-connected
  // (4 min high).
  ReplayTrace trace;
  trace.Append(3 * kMinute, params.high_bps, params.latency);
  trace.Append(1 * kMinute, params.low_bps, params.latency);
  trace.Append(1 * kMinute, params.high_bps, params.latency);
  trace.Append(1 * kMinute, params.low_bps, params.latency);
  trace.Append(2 * kMinute, params.high_bps, params.latency);
  trace.Append(1 * kMinute, params.low_bps, params.latency);
  trace.Append(1 * kMinute, params.high_bps, params.latency);
  trace.Append(1 * kMinute, params.low_bps, params.latency);
  trace.Append(4 * kMinute, params.high_bps, params.latency);
  return trace;
}

ReplayTrace MakeEthernetBaseline(Duration length) {
  return MakeConstant(kEthernetBandwidth, length, kEthernetLatency);
}

}  // namespace odyssey

#include "src/apps/bitstream_app.h"

#include <utility>

#include "src/core/tsop_codec.h"
#include "src/trace/trace_macros.h"

namespace odyssey {

BitstreamApp::BitstreamApp(OdysseyClient* client, std::string name) : client_(client) {
  app_ = client_->RegisterApplication(std::move(name));
}

void BitstreamApp::Start(double target_bps, double window_bytes) {
  ODY_TRACE_INSTANT1(client_->sim()->trace(), kApp, "bitstream_app_start",
                     client_->sim()->now(), app_, "target_bps", target_bps);
  BitstreamParams params{target_bps, window_bytes};
  client_->Tsop(app_, std::string(kOdysseyRoot) + "bitstream/stream", kBitstreamStart,
                PackStruct(params), [this](Status status, std::string out) {
                  if (!status.ok()) {
                    return;
                  }
                  BitstreamStarted started;
                  if (UnpackStruct(out, &started)) {
                    connection_ = started.connection;
                  }
                  running_ = true;
                });
}

void BitstreamApp::Stop() {
  client_->Tsop(app_, std::string(kOdysseyRoot) + "bitstream/stream", kBitstreamStop, "",
                [this](Status, std::string) { running_ = false; });
}

}  // namespace odyssey

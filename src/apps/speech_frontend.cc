#include "src/apps/speech_frontend.h"

#include <utility>

#include "src/core/tsop_codec.h"

namespace odyssey {

SpeechFrontEnd::SpeechFrontEnd(OdysseyClient* client, SpeechFrontEndOptions options)
    : client_(client), options_(std::move(options)) {
  app_ = client_->RegisterApplication("speech-frontend");
  capture_factor_ = client_->sim()->rng().JitterFactor(0.04);
}

void SpeechFrontEnd::Start() {
  running_ = true;
  SpeechSetModeRequest request{static_cast<int>(options_.mode)};
  client_->Tsop(app_, std::string(kOdysseyRoot) + "speech/janus", kSpeechSetMode,
                PackStruct(request), [this](Status status, std::string) {
                  if (!status.ok()) {
                    running_ = false;
                    return;
                  }
                  RecognizeNext();
                });
}

void SpeechFrontEnd::RecognizeNext() {
  if (!running_) {
    return;
  }
  const Time started = client_->sim()->now();
  // Capture the raw utterance at the microphone...
  const auto capture =
      static_cast<Duration>(static_cast<double>(kSpeechCapture) * capture_factor_ *
                            client_->sim()->rng().JitterFactor(kComputeJitterStddev));
  client_->sim()->Schedule(capture, [this, started] {
    // ...then write it into the Odyssey namespace for recognition.
    SpeechUtterance utterance{options_.raw_bytes};
    client_->Tsop(app_, std::string(kOdysseyRoot) + "speech/janus", kSpeechRecognize,
                  PackStruct(utterance), [this, started](Status status, std::string out) {
                    if (!status.ok()) {
                      running_ = false;
                      return;
                    }
                    SpeechResult result;
                    if (!UnpackStruct(out, &result)) {
                      // A malformed recognition reply ends the session, the
                      // same as a failed recognition call.
                      running_ = false;
                      return;
                    }
                    outcomes_.push_back(RecognitionOutcome{
                        started, client_->sim()->now() - started, result.plan});
                    client_->sim()->Schedule(options_.think_time, [this] { RecognizeNext(); });
                  });
  });
}

double SpeechFrontEnd::MeanSecondsBetween(Time begin, Time end) const {
  double sum = 0.0;
  int count = 0;
  for (const auto& outcome : outcomes_) {
    if (outcome.started >= begin && outcome.started < end) {
      sum += DurationToSeconds(outcome.elapsed);
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / count;
}

}  // namespace odyssey

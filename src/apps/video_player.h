// The adaptive video player (xanim; §5.1, §6.2.2).
//
// When the player opens a movie it calculates the bandwidth requirement of
// each track from the movie metadata, begins at the highest possible
// quality, and registers the corresponding window of tolerance with
// Odyssey.  When notified of a significant change in bandwidth it
// determines a new fidelity level and switches to the corresponding track.
// The player's adaptation goal is to play the highest quality possible
// without dropping frames; a frame not buffered by its display deadline is
// dropped and playback moves on.

#ifndef SRC_APPS_VIDEO_PLAYER_H_
#define SRC_APPS_VIDEO_PLAYER_H_

#include <string>
#include <vector>

#include "src/core/odyssey_client.h"
#include "src/wardens/video_warden.h"

namespace odyssey {

struct VideoPlayerOptions {
  std::string movie = "default";
  // -1 plays adaptively (Odyssey); 0..n-1 pins a fixed track (static
  // strategy), best track first.
  int fixed_track = -1;
  // Total frames to display (may exceed the movie length; playback loops).
  int frames_to_play = 600;
  // Delay between opening the movie and the first display deadline, giving
  // the read-ahead pipeline a head start.
  Duration initial_buffer = 500 * kMillisecond;
};

// The outcome of one display deadline.
struct FrameOutcome {
  Time at = 0;
  int index = 0;
  bool displayed = false;
  double fidelity = 0.0;
};

class VideoPlayer {
 public:
  VideoPlayer(OdysseyClient* client, VideoPlayerOptions options);

  VideoPlayer(const VideoPlayer&) = delete;
  VideoPlayer& operator=(const VideoPlayer&) = delete;

  // Opens the movie and begins playback.
  void Start();

  bool finished() const { return finished_; }
  int current_track() const { return current_track_; }
  int track_switches() const { return track_switches_; }
  const std::vector<FrameOutcome>& outcomes() const { return outcomes_; }

  // Frames dropped among deadlines in [begin, end).
  int DropsBetween(Time begin, Time end) const;
  // The paper's fidelity metric: the average fidelity of frames displayed
  // in [begin, end).
  double MeanFidelityBetween(Time begin, Time end) const;

 private:
  void RegisterWindow();
  void AdaptTo(double bandwidth_bps);
  int ChooseTrack(double bandwidth_bps) const;
  void DisplayFrame(int index);

  OdysseyClient* client_;
  VideoPlayerOptions options_;
  AppId app_ = 0;
  VideoMetaReply meta_;
  int current_track_ = 0;
  int track_switches_ = 0;
  RequestId window_ = 0;
  bool window_active_ = false;
  Time display_epoch_ = 0;
  bool finished_ = false;
  std::vector<FrameOutcome> outcomes_;
};

}  // namespace odyssey

#endif  // SRC_APPS_VIDEO_PLAYER_H_

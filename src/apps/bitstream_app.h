// The bitstream application: the synthetic consumer used by the agility
// experiments (§6.2.1).

#ifndef SRC_APPS_BITSTREAM_APP_H_
#define SRC_APPS_BITSTREAM_APP_H_

#include <string>

#include "src/core/odyssey_client.h"
#include "src/wardens/bitstream_warden.h"

namespace odyssey {

class BitstreamApp {
 public:
  // |name| labels this instance ("bitstream-1", "bitstream-2").
  BitstreamApp(OdysseyClient* client, std::string name);

  BitstreamApp(const BitstreamApp&) = delete;
  BitstreamApp& operator=(const BitstreamApp&) = delete;

  // Starts consuming.  |target_bps| of zero consumes as fast as possible;
  // otherwise consumption is paced at the target rate.  |window_bytes| of
  // zero picks the warden default.
  void Start(double target_bps = 0.0, double window_bytes = 0.0);
  void Stop();

  bool running() const { return running_; }
  AppId app() const { return app_; }
  // The connection carrying the stream (0 until started).
  ConnectionId connection() const { return connection_; }

 private:
  OdysseyClient* client_;
  AppId app_ = 0;
  ConnectionId connection_ = 0;
  bool running_ = false;
};

}  // namespace odyssey

#endif  // SRC_APPS_BITSTREAM_APP_H_

#include "src/apps/filter_app.h"

#include <cmath>
#include <utility>

#include "src/core/tsop_codec.h"

namespace odyssey {

FilterApp::FilterApp(OdysseyClient* client, TelemetryWarden* warden, FilterAppOptions options)
    : client_(client), warden_(warden), options_(std::move(options)) {
  app_ = client_->RegisterApplication("filter:" + options_.feed);
}

void FilterApp::Start() {
  warden_->SetSampleCallback(app_, [this](const std::string&, const TelemetrySample& sample) {
    ++samples_seen_;
    if (!have_baseline_) {
      have_baseline_ = true;
      last_alert_value_ = sample.value;
      return;
    }
    if (std::abs(sample.value - last_alert_value_) >= options_.alert_delta) {
      last_alert_value_ = sample.value;
      alerts_.push_back(FilterAlert{client_->sim()->now(), sample.produced_at, sample.value});
    }
  });
  client_->Tsop(app_, std::string(kOdysseyRoot) + "telemetry/" + options_.feed,
                kTelemetrySubscribe, PackStruct(TelemetrySubscribeRequest{options_.fixed_level}),
                [](Status, std::string) {});
}

void FilterApp::Stop() {
  client_->Tsop(app_, std::string(kOdysseyRoot) + "telemetry/" + options_.feed,
                kTelemetryUnsubscribe, "", [this](Status status, std::string out) {
                  if (status.ok() && !UnpackStruct(out, &final_stats_)) {
                    // Malformed stats reply: keep the defaults rather than
                    // report half-unpacked numbers.
                    final_stats_ = TelemetryStats{};
                  }
                });
}

}  // namespace odyssey

// The background information filter (§2.3).
//
// "An information filtering application may run in the background
// monitoring data such as stock prices or enemy movements, and alert the
// user as appropriate."  The filter subscribes to a telemetry feed through
// the telemetry warden and raises an alert whenever the value moves more
// than a threshold from its last alerted level.  Because it is a
// *background* application, it is exactly the kind of concurrent consumer
// the viceroy must arbitrate against the foreground applications.

#ifndef SRC_APPS_FILTER_APP_H_
#define SRC_APPS_FILTER_APP_H_

#include <string>
#include <vector>

#include "src/core/odyssey_client.h"
#include "src/wardens/telemetry_warden.h"

namespace odyssey {

struct FilterAppOptions {
  std::string feed = "stocks/ACME";
  // Alert when the value moves this far from the last alerted value.
  double alert_delta = 5.0;
  // -1 adapts; otherwise pins a delivery level.
  int fixed_level = -1;
};

struct FilterAlert {
  Time at = 0;             // delivery (detection) time
  Time produced_at = 0;    // when the triggering sample was produced
  double value = 0.0;

  Duration detection_lag() const { return at - produced_at; }
};

class FilterApp {
 public:
  FilterApp(OdysseyClient* client, TelemetryWarden* warden, FilterAppOptions options);

  FilterApp(const FilterApp&) = delete;
  FilterApp& operator=(const FilterApp&) = delete;

  void Start();
  // Stops the subscription; final warden stats are captured.
  void Stop();

  AppId app() const { return app_; }
  const std::vector<FilterAlert>& alerts() const { return alerts_; }
  int samples_seen() const { return samples_seen_; }
  const TelemetryStats& final_stats() const { return final_stats_; }

 private:
  OdysseyClient* client_;
  TelemetryWarden* warden_;
  FilterAppOptions options_;
  AppId app_ = 0;
  double last_alert_value_ = 0.0;
  bool have_baseline_ = false;
  int samples_seen_ = 0;
  std::vector<FilterAlert> alerts_;
  TelemetryStats final_stats_;
};

}  // namespace odyssey

#endif  // SRC_APPS_FILTER_APP_H_

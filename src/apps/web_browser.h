// The adaptive Web browser (Netscape + cellophane; §5.2, §6.2.2).
//
// The cellophane redirects the browser's requests into the Odyssey Web
// warden and selects fidelity levels; Netscape passively benefits.  The
// adaptation goal is to display the best quality image that can be fetched
// within twice the Ethernet time (0.4 s): before each fetch the cellophane
// predicts the fetch-and-display time of every level from the current
// bandwidth and round-trip estimates and picks the best level that meets
// the goal.

#ifndef SRC_APPS_WEB_BROWSER_H_
#define SRC_APPS_WEB_BROWSER_H_

#include <string>
#include <vector>

#include "src/core/odyssey_client.h"
#include "src/wardens/web_warden.h"

namespace odyssey {

struct WebBrowserOptions {
  std::string url = "http://origin/test-image.jpg";
  // -1 adapts (Odyssey); 0..3 pins a fixed fidelity level.
  int fixed_level = -1;
  // Fetch-and-display time the adaptive policy tries to stay under.
  Duration goal = kWebGoal;
  // Idle time between fetches; the paper fetches "as fast as possible".
  Duration think_time = 0;
  // Pause before the loop resumes after a transport failure, so a dead
  // link is probed rather than hammered.
  Duration failure_pause = 500 * kMillisecond;
};

struct WebFetchOutcome {
  Time started = 0;
  Duration elapsed = 0;  // fetch + display
  double fidelity = 0.0;
  bool failed = false;  // the transport gave up; fidelity is 0
};

class WebBrowser {
 public:
  WebBrowser(OdysseyClient* client, WebBrowserOptions options);

  WebBrowser(const WebBrowser&) = delete;
  WebBrowser& operator=(const WebBrowser&) = delete;

  // Opens the session and begins the fetch loop.
  void Start();
  // Finishes the in-flight fetch and stops.
  void Stop() { running_ = false; }

  const std::vector<WebFetchOutcome>& outcomes() const { return outcomes_; }
  int current_level() const { return current_level_; }
  bool running() const { return running_; }
  int failed_fetches() const { return failed_fetches_; }

  // Mean fetch-and-display seconds over fetches started in [begin, end).
  double MeanSecondsBetween(Time begin, Time end) const;
  // Mean fidelity over the same fetches.
  double MeanFidelityBetween(Time begin, Time end) const;

  // The predicted fetch-and-display time of |level| at the given estimates
  // (exposed for tests).
  static Duration PredictTime(const WebSessionInfo& info, int level, double bandwidth_bps,
                              Duration rtt);

 private:
  int ChooseLevel() const;
  void RegisterWindow();
  void FetchNext();

  OdysseyClient* client_;
  WebBrowserOptions options_;
  AppId app_ = 0;
  WebSessionInfo info_;
  int current_level_ = 0;
  RequestId window_ = 0;
  bool window_active_ = false;
  bool running_ = false;
  // Run-level variation of the client's rendering cost.
  double render_factor_ = 1.0;
  int failed_fetches_ = 0;
  std::vector<WebFetchOutcome> outcomes_;
};

}  // namespace odyssey

#endif  // SRC_APPS_WEB_BROWSER_H_

#include "src/apps/prefetch_agent.h"

#include <utility>

#include "src/core/tsop_codec.h"

namespace odyssey {

PrefetchAgent::PrefetchAgent(OdysseyClient* client, PrefetchAgentOptions options)
    : client_(client), options_(std::move(options)) {
  app_ = client_->RegisterApplication("prefetch-agent");
}

void PrefetchAgent::Start() {
  if (options_.route.empty()) {
    finished_ = true;
    return;
  }
  VisitArea(0);
}

double PrefetchAgent::HitRate() const {
  if (visits_.size() <= 1) {
    return 0.0;
  }
  int hits = 0;
  for (size_t i = 1; i < visits_.size(); ++i) {
    hits += visits_[i].cache_hit ? 1 : 0;
  }
  return static_cast<double>(hits) / static_cast<double>(visits_.size() - 1);
}

int PrefetchAgent::ChooseDepth(double bandwidth_bps, double battery_minutes) const {
  if (options_.min_battery_minutes > 0.0 && battery_minutes < options_.min_battery_minutes) {
    return 0;  // shed speculative work first when energy is scarce
  }
  const int by_bandwidth = static_cast<int>(bandwidth_bps / options_.bandwidth_per_depth);
  const int depth = by_bandwidth < 1 ? 1 : by_bandwidth;
  return depth > options_.max_depth ? options_.max_depth : depth;
}

void PrefetchAgent::VisitArea(size_t index) {
  if (index >= options_.route.size()) {
    finished_ = true;
    return;
  }
  const std::string& area = options_.route[index];
  const Time start = client_->sim()->now();
  client_->Tsop(app_, std::string(kOdysseyRoot) + "files/" + area, kFileRead, "",
                [this, index, area, start](Status status, std::string out) {
                  // A failed read or malformed reply records a miss: |reply|
                  // keeps its cache_hit=false default.
                  FileReadReply reply;
                  if (status.ok() && !UnpackStruct(out, &reply)) {
                    reply = FileReadReply{};
                  }
                  visits_.push_back(AreaVisit{start, area, reply.cache_hit,
                                              client_->sim()->now() - start});
                });
  if (next_prefetch_ <= index) {
    next_prefetch_ = index + 1;
  }
  PumpPrefetch(index);
  client_->sim()->Schedule(options_.advance_period, [this, index] { VisitArea(index + 1); });
}

void PrefetchAgent::PumpPrefetch(size_t current_index) {
  if (prefetch_in_flight_ || finished_) {
    return;
  }
  const double bandwidth = client_->CurrentLevel(app_, ResourceId::kNetworkBandwidth);
  const double battery = client_->CurrentLevel(app_, ResourceId::kBatteryPower);
  const int depth = ChooseDepth(bandwidth, battery);
  if (depth == 0) {
    ++prefetches_suppressed_battery_;
    // Re-evaluate at the next visit; PumpPrefetch is called from VisitArea.
    return;
  }
  if (next_prefetch_ >= options_.route.size() ||
      next_prefetch_ > current_index + static_cast<size_t>(depth)) {
    return;
  }
  const size_t target = next_prefetch_++;
  prefetch_in_flight_ = true;
  ++prefetches_issued_;
  client_->Tsop(app_, std::string(kOdysseyRoot) + "files/" + options_.route[target], kFileRead,
                "", [this](Status, std::string) {
                  prefetch_in_flight_ = false;
                  // Continue warming from wherever the user now is.
                  PumpPrefetch(visits_.empty() ? 0 : visits_.size() - 1);
                });
}

}  // namespace odyssey

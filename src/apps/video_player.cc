#include "src/apps/video_player.h"

#include <limits>
#include <utility>

#include "src/core/contract.h"
#include "src/core/tsop_codec.h"

namespace odyssey {

VideoPlayer::VideoPlayer(OdysseyClient* client, VideoPlayerOptions options)
    : client_(client), options_(std::move(options)) {
  app_ = client_->RegisterApplication("xanim");
}

void VideoPlayer::Start() {
  client_->Tsop(app_, std::string(kOdysseyRoot) + "video/" + options_.movie, kVideoOpen,
                options_.movie, [this](Status status, std::string out) {
                  if (!status.ok() || !UnpackStruct(out, &meta_)) {
                    finished_ = true;
                    return;
                  }
                  // Begin at the highest possible quality (§5.1) unless a
                  // static strategy pins a track.
                  current_track_ = options_.fixed_track >= 0 ? options_.fixed_track : 0;
                  if (options_.fixed_track > 0) {
                    VideoSetTrackRequest request{options_.fixed_track};
                    client_->Tsop(app_, std::string(kOdysseyRoot) + "video/" + options_.movie,
                                  kVideoSetTrack, PackStruct(request),
                                  [](Status, std::string) {});
                  }
                  display_epoch_ = client_->sim()->now() + options_.initial_buffer;
                  client_->sim()->ScheduleAt(display_epoch_, [this] { DisplayFrame(0); });
                  if (options_.fixed_track < 0) {
                    // Give the read-ahead pipeline one buffer period to
                    // produce bandwidth observations before registering.
                    client_->sim()->Schedule(options_.initial_buffer, [this] {
                      AdaptTo(client_->CurrentLevel(app_, ResourceId::kNetworkBandwidth));
                    });
                  }
                });
}

int VideoPlayer::ChooseTrack(double bandwidth_bps) const {
  // Tracks are ordered best fidelity first; pick the best that fits.
  for (int i = 0; i < meta_.track_count; ++i) {
    if (meta_.required_bps[i] <= bandwidth_bps) {
      return i;
    }
  }
  return meta_.track_count - 1;  // even B/W may drop frames, but play on
}

void VideoPlayer::RegisterWindow() {
  // Tolerate anything between "still enough for my track" and "enough for
  // the next better track": outside that window the player wants an upcall.
  ResourceDescriptor descriptor;
  descriptor.resource = ResourceId::kNetworkBandwidth;
  descriptor.lower =
      current_track_ == meta_.track_count - 1 ? 0.0 : meta_.required_bps[current_track_];
  descriptor.upper = current_track_ == 0 ? std::numeric_limits<double>::max()
                                         : meta_.required_bps[current_track_ - 1];
  descriptor.handler = [this](RequestId, ResourceId, double level) {
    window_active_ = false;
    AdaptTo(level);
  };

  for (int attempt = 0; attempt < 4; ++attempt) {
    const RequestResult result = client_->Request(app_, descriptor);
    if (result.ok()) {
      window_ = result.id;
      window_active_ = true;
      return;
    }
    // Resource already outside the window: pick the fidelity matching the
    // returned level and try again (§4.2).
    const int track = ChooseTrack(result.current_level);
    if (track == current_track_) {
      // The level sits inside a gap (e.g. above our requirement but below
      // the next track's); widen by accepting the current choice.
      descriptor.lower = 0.0;
      descriptor.upper = meta_.required_bps[current_track_ == 0 ? 0 : current_track_ - 1];
      continue;
    }
    AdaptTo(result.current_level);
    return;
  }
  // Could not register; retry shortly rather than give up adaptation.
  client_->sim()->Schedule(200 * kMillisecond, [this] {
    if (!window_active_ && !finished_ && options_.fixed_track < 0) {
      RegisterWindow();
    }
  });
}

void VideoPlayer::AdaptTo(double bandwidth_bps) {
  if (finished_ || options_.fixed_track >= 0) {
    return;
  }
  const int track = ChooseTrack(bandwidth_bps);
  if (track != current_track_) {
    current_track_ = track;
    ++track_switches_;
    VideoSetTrackRequest request{track};
    client_->Tsop(app_, std::string(kOdysseyRoot) + "video/" + options_.movie, kVideoSetTrack,
                  PackStruct(request), [](Status, std::string) {});
  }
  if (!window_active_) {
    RegisterWindow();
  }
}

void VideoPlayer::DisplayFrame(int index) {
  VideoTakeFrameRequest request{index};
  client_->Tsop(app_, std::string(kOdysseyRoot) + "video/" + options_.movie, kVideoTakeFrame,
                PackStruct(request), [this, index](Status status, std::string out) {
                  // A failed call or malformed reply both count as a dropped
                  // frame: |reply| keeps its absent defaults.
                  VideoTakeFrameReply reply;
                  if (status.ok() && !UnpackStruct(out, &reply)) {
                    reply = VideoTakeFrameReply{};
                  }
                  outcomes_.push_back(FrameOutcome{client_->sim()->now(), index, reply.present,
                                                   reply.present ? reply.fidelity : 0.0});
                });
  if (index + 1 >= options_.frames_to_play) {
    finished_ = true;
    if (window_active_) {
      // The registration is live (window_active_), so cancel must succeed.
      const Status cancelled = client_->Cancel(window_);
      ODY_DCHECK(cancelled.ok(), "cancel of active video window failed");
      static_cast<void>(cancelled);
      window_active_ = false;
    }
    return;
  }
  const Duration frame_period = SecondsToDuration(1.0 / meta_.fps);
  const Time next_deadline = display_epoch_ + static_cast<Duration>(index + 1) * frame_period;
  client_->sim()->ScheduleAt(next_deadline, [this, index] { DisplayFrame(index + 1); });
}

int VideoPlayer::DropsBetween(Time begin, Time end) const {
  int drops = 0;
  for (const auto& outcome : outcomes_) {
    if (outcome.at >= begin && outcome.at < end && !outcome.displayed) {
      ++drops;
    }
  }
  return drops;
}

double VideoPlayer::MeanFidelityBetween(Time begin, Time end) const {
  double sum = 0.0;
  int displayed = 0;
  for (const auto& outcome : outcomes_) {
    if (outcome.at >= begin && outcome.at < end && outcome.displayed) {
      sum += outcome.fidelity;
      ++displayed;
    }
  }
  return displayed == 0 ? 0.0 : sum / displayed;
}

}  // namespace odyssey

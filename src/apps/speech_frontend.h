// The speech front end (§5.3, §6.2.2).
//
// Captures a raw utterance, hands it to the speech warden for recognition,
// and measures the time until the recognized text is available.  The
// benchmark recognizes a single short phrase, repeating as quickly as
// possible; recognition quality does not vary, so speed is the only metric.

#ifndef SRC_APPS_SPEECH_FRONTEND_H_
#define SRC_APPS_SPEECH_FRONTEND_H_

#include <vector>

#include "src/core/odyssey_client.h"
#include "src/wardens/speech_warden.h"

namespace odyssey {

struct SpeechFrontEndOptions {
  SpeechMode mode = SpeechMode::kAdaptive;
  double raw_bytes = kSpeechRawBytes;
  // Idle time between recognitions (zero = repeat immediately).
  Duration think_time = 0;
};

struct RecognitionOutcome {
  Time started = 0;
  Duration elapsed = 0;  // capture through recognized-text availability
  int plan = 0;          // the SpeechMode the warden executed
};

class SpeechFrontEnd {
 public:
  SpeechFrontEnd(OdysseyClient* client, SpeechFrontEndOptions options);

  SpeechFrontEnd(const SpeechFrontEnd&) = delete;
  SpeechFrontEnd& operator=(const SpeechFrontEnd&) = delete;

  void Start();
  void Stop() { running_ = false; }

  const std::vector<RecognitionOutcome>& outcomes() const { return outcomes_; }

  // Mean recognition seconds over recognitions started in [begin, end).
  double MeanSecondsBetween(Time begin, Time end) const;

 private:
  void RecognizeNext();

  OdysseyClient* client_;
  SpeechFrontEndOptions options_;
  AppId app_ = 0;
  bool running_ = false;
  // Run-level variation of the capture path's cost.
  double capture_factor_ = 1.0;
  std::vector<RecognitionOutcome> outcomes_;
};

}  // namespace odyssey

#endif  // SRC_APPS_SPEECH_FRONTEND_H_

// The route prefetch agent (§2.3).
//
// "An application used in emergency response situations may monitor
// physical location and motion, and prefetch damage-assessment information
// for the areas to be traversed shortly."  The agent walks a route of
// areas, each backed by a file on the file server; a background prefetcher
// warms the file warden's cache for the areas ahead.  Its look-ahead depth
// adapts to bandwidth availability, and it stops prefetching entirely when
// battery lifetime falls below a floor — speculative work is the first
// thing to shed when energy is scarce.

#ifndef SRC_APPS_PREFETCH_AGENT_H_
#define SRC_APPS_PREFETCH_AGENT_H_

#include <string>
#include <vector>

#include "src/core/odyssey_client.h"
#include "src/wardens/file_warden.h"

namespace odyssey {

struct PrefetchAgentOptions {
  // Area files, in traversal order (paths under /odyssey/files/).
  std::vector<std::string> route;
  // The user reaches the next area this often.
  Duration advance_period = 10 * kSecond;
  // Maximum areas prefetched ahead of the current position.
  int max_depth = 3;
  // Below this remaining battery (minutes), prefetching stops; visits
  // still fetch on demand.  Zero disables the battery gate.
  double min_battery_minutes = 0.0;
  // Bandwidth (bytes/second) needed per unit of look-ahead depth.
  double bandwidth_per_depth = 24.0 * 1024.0;
};

struct AreaVisit {
  Time at = 0;
  std::string area;
  bool cache_hit = false;     // the prefetcher had it ready
  Duration fetch_time = 0;    // how long the visit's read took
};

class PrefetchAgent {
 public:
  PrefetchAgent(OdysseyClient* client, PrefetchAgentOptions options);

  PrefetchAgent(const PrefetchAgent&) = delete;
  PrefetchAgent& operator=(const PrefetchAgent&) = delete;

  void Start();

  bool finished() const { return finished_; }
  const std::vector<AreaVisit>& visits() const { return visits_; }
  int prefetches_issued() const { return prefetches_issued_; }
  int prefetches_suppressed_battery() const { return prefetches_suppressed_battery_; }

  // Fraction of visits (after the first) that found their area already
  // cached.
  double HitRate() const;

  // Look-ahead depth the policy picks at the given levels (for tests).
  int ChooseDepth(double bandwidth_bps, double battery_minutes) const;

 private:
  void VisitArea(size_t index);
  void PumpPrefetch(size_t current_index);

  OdysseyClient* client_;
  PrefetchAgentOptions options_;
  AppId app_ = 0;
  bool finished_ = false;
  bool prefetch_in_flight_ = false;
  size_t next_prefetch_ = 0;
  int prefetches_issued_ = 0;
  int prefetches_suppressed_battery_ = 0;
  std::vector<AreaVisit> visits_;
};

}  // namespace odyssey

#endif  // SRC_APPS_PREFETCH_AGENT_H_

#include "src/apps/web_browser.h"

#include <limits>
#include <utility>

#include "src/core/tsop_codec.h"
#include "src/servers/calibration.h"

namespace odyssey {
namespace {

// Fixed path costs the cellophane attributes to any fetch: origin fetch and
// distillation at the server, rendering at the client.  (The cellophane
// learns these from past fetches; we model that knowledge as constants.)
Duration FixedCosts(int level) {
  Duration fixed = kWebOriginFetch + kWebRender;
  switch (static_cast<WebFidelity>(level)) {
    case WebFidelity::kFullQuality:
      break;
    case WebFidelity::kJpeg50:
      fixed += kWebDistill50;
      break;
    case WebFidelity::kJpeg25:
      fixed += kWebDistill25;
      break;
    case WebFidelity::kJpeg5:
      fixed += kWebDistill5;
      break;
  }
  return fixed;
}

}  // namespace

WebBrowser::WebBrowser(OdysseyClient* client, WebBrowserOptions options)
    : client_(client), options_(std::move(options)) {
  app_ = client_->RegisterApplication("netscape");
  render_factor_ = client_->sim()->rng().JitterFactor(0.08);
}

Duration WebBrowser::PredictTime(const WebSessionInfo& info, int level, double bandwidth_bps,
                                 Duration rtt) {
  if (bandwidth_bps <= 0.0) {
    return std::numeric_limits<Duration>::max();
  }
  return FixedCosts(level) + rtt + SecondsToDuration(info.level_bytes[level] / bandwidth_bps);
}

void WebBrowser::Start() {
  client_->Tsop(app_, std::string(kOdysseyRoot) + "web/session", kWebOpen, options_.url,
                [this](Status status, std::string out) {
                  if (!status.ok() || !UnpackStruct(out, &info_)) {
                    return;
                  }
                  running_ = true;
                  current_level_ = options_.fixed_level >= 0 ? options_.fixed_level : 0;
                  if (options_.fixed_level > 0) {
                    WebSetFidelityRequest request{options_.fixed_level};
                    client_->Tsop(app_, std::string(kOdysseyRoot) + "web/session",
                                  kWebSetFidelity, PackStruct(request),
                                  [](Status, std::string) {});
                  }
                  FetchNext();
                });
}

int WebBrowser::ChooseLevel() const {
  const double bandwidth = client_->CurrentLevel(app_, ResourceId::kNetworkBandwidth);
  const auto rtt =
      static_cast<Duration>(client_->CurrentLevel(app_, ResourceId::kNetworkLatency));
  for (int level = 0; level < 4; ++level) {
    if (PredictTime(info_, level, bandwidth, rtt) <= options_.goal) {
      return level;
    }
  }
  return 3;  // even JPEG(5) misses the goal; degrade as far as possible
}

void WebBrowser::RegisterWindow() {
  // Stay quiet while the current level both meets the goal and remains the
  // best that does: below |lower| this level misses the goal, above |upper|
  // a better level would meet it.
  const auto rtt =
      static_cast<Duration>(client_->CurrentLevel(app_, ResourceId::kNetworkLatency));
  const auto bandwidth_floor = [&](int level) {
    const Duration budget = options_.goal - FixedCosts(level) - rtt;
    if (budget <= 0) {
      return std::numeric_limits<double>::max();
    }
    return info_.level_bytes[level] / DurationToSeconds(budget);
  };

  ResourceDescriptor descriptor;
  descriptor.resource = ResourceId::kNetworkBandwidth;
  descriptor.lower = current_level_ == 3 ? 0.0 : bandwidth_floor(current_level_);
  descriptor.upper = current_level_ == 0 ? std::numeric_limits<double>::max()
                                         : bandwidth_floor(current_level_ - 1);
  descriptor.handler = [this](RequestId, ResourceId, double) {
    window_active_ = false;
    // The fetch loop re-chooses its level before every fetch; the upcall
    // just refreshes the registration.
    if (running_ && options_.fixed_level < 0) {
      RegisterWindow();
    }
  };
  const RequestResult result = client_->Request(app_, descriptor);
  window_active_ = result.ok();
  if (result.ok()) {
    window_ = result.id;
  }
}

void WebBrowser::FetchNext() {
  if (!running_) {
    return;
  }
  if (options_.fixed_level < 0) {
    const int level = ChooseLevel();
    if (level != current_level_) {
      current_level_ = level;
      WebSetFidelityRequest request{level};
      client_->Tsop(app_, std::string(kOdysseyRoot) + "web/session", kWebSetFidelity,
                    PackStruct(request), [](Status, std::string) {});
    }
    if (!window_active_) {
      RegisterWindow();
    }
  }

  const Time started = client_->sim()->now();
  client_->Tsop(app_, std::string(kOdysseyRoot) + "web/session", kWebFetch, "",
                [this, started](Status status, std::string out) {
                  WebFetchReply reply;
                  if (status.code() == StatusCode::kDeadlineExceeded ||
                      status.code() == StatusCode::kUnavailable) {
                    // Transport failure: the page never arrived.  Record a
                    // zero-fidelity outcome and keep the loop alive — the
                    // level chooser sees the collapsed availability estimate
                    // and degrades, and full service resumes with the
                    // network.  Stopping forever on a radio shadow would be
                    // the opposite of agility.
                    ++failed_fetches_;
                    outcomes_.push_back(WebFetchOutcome{
                        started, client_->sim()->now() - started, 0.0, true});
                    client_->sim()->Schedule(options_.failure_pause, [this] { FetchNext(); });
                    return;
                  }
                  if (!status.ok() || !UnpackStruct(out, &reply)) {
                    running_ = false;  // unrecoverable (bad URL, closed session)
                    return;
                  }
                  // Decode and display before the page is usable.
                  const auto render = static_cast<Duration>(
                      static_cast<double>(kWebRender) * render_factor_ *
                      client_->sim()->rng().JitterFactor(kComputeJitterStddev));
                  client_->sim()->Schedule(render, [this, started, reply] {
                    outcomes_.push_back(WebFetchOutcome{started, client_->sim()->now() - started,
                                                        reply.fidelity});
                    client_->sim()->Schedule(options_.think_time, [this] { FetchNext(); });
                  });
                });
}

double WebBrowser::MeanSecondsBetween(Time begin, Time end) const {
  double sum = 0.0;
  int count = 0;
  for (const auto& outcome : outcomes_) {
    if (outcome.started >= begin && outcome.started < end) {
      sum += DurationToSeconds(outcome.elapsed);
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / count;
}

double WebBrowser::MeanFidelityBetween(Time begin, Time end) const {
  double sum = 0.0;
  int count = 0;
  for (const auto& outcome : outcomes_) {
    if (outcome.started >= begin && outcome.started < end) {
      sum += outcome.fidelity;
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / count;
}

}  // namespace odyssey

#include "src/core/resource.h"

namespace odyssey {

const char* ResourceName(ResourceId resource) {
  switch (resource) {
    case ResourceId::kNetworkBandwidth:
      return "Network Bandwidth";
    case ResourceId::kNetworkLatency:
      return "Network Latency";
    case ResourceId::kDiskCacheSpace:
      return "Disk Cache Space";
    case ResourceId::kCpu:
      return "CPU";
    case ResourceId::kBatteryPower:
      return "Battery Power";
    case ResourceId::kMoney:
      return "Money";
  }
  return "Unknown";
}

const char* ResourceUnit(ResourceId resource) {
  switch (resource) {
    case ResourceId::kNetworkBandwidth:
      return "bytes/second";
    case ResourceId::kNetworkLatency:
      return "microseconds";
    case ResourceId::kDiskCacheSpace:
      return "kilobytes";
    case ResourceId::kCpu:
      return "SPECint95";
    case ResourceId::kBatteryPower:
      return "minutes";
    case ResourceId::kMoney:
      return "cents";
  }
  return "?";
}

const char* AdmissionVerdictName(AdmissionVerdict verdict) {
  switch (verdict) {
    case AdmissionVerdict::kAdmitted:
      return "admit";
    case AdmissionVerdict::kDegraded:
      return "degrade";
    case AdmissionVerdict::kRejected:
      return "reject";
  }
  return "?";
}

}  // namespace odyssey

#include "src/core/upcall.h"

#include <utility>

#include "src/core/contract.h"
#include "src/trace/trace_macros.h"

namespace odyssey {

uint64_t UpcallDispatcher::Post(AppId app, RequestId request, ResourceId resource, double level,
                                UpcallHandler handler) {
  AppQueue& q = queues_[app];
  const uint64_t seq = q.next_seq++;
  q.queue.push_back(PendingUpcall{seq, request, resource, level, sim_->now(), std::move(handler)});
  ++queued_;
  ODY_TRACE_INSTANT2(sim_->trace(), kViceroy, "upcall_post", sim_->now(), app, "seq",
                     static_cast<double>(seq), "level", level);
  ODY_TRACE_COUNTER(sim_->trace(), kViceroy, "upcall_queue_depth", sim_->now(), 0,
                    static_cast<double>(queued_));
  ScheduleDelivery(app);
  return seq;
}

void UpcallDispatcher::Block(AppId app) { queues_[app].blocked = true; }

void UpcallDispatcher::Unblock(AppId app) {
  AppQueue& q = queues_[app];
  q.blocked = false;
  ScheduleDelivery(app);
}

bool UpcallDispatcher::blocked(AppId app) const {
  const auto it = queues_.find(app);
  return it != queues_.end() && it->second.blocked;
}

uint64_t UpcallDispatcher::last_delivered_seq(AppId app) const {
  const auto it = queues_.find(app);
  return it == queues_.end() ? 0 : it->second.last_delivered;
}

void UpcallDispatcher::ScheduleDelivery(AppId app) {
  AppQueue& q = queues_[app];
  if (q.blocked || q.delivery_scheduled || q.queue.empty()) {
    return;
  }
  q.delivery_scheduled = true;
  const Time due = sim_->now() + delivery_latency_;
  if (!batches_.empty() && batches_.back().due == due) {
    // Ride the already-scheduled event for this instant.
    batches_.back().apps.push_back(app);
    return;
  }
  batches_.push_back(Batch{due, {app}});
  sim_->Post(delivery_latency_, [this] { FireBatch(); });
}

void UpcallDispatcher::FireBatch() {
  ODY_ASSERT(!batches_.empty(), "upcall batch event with no batch");
  Batch batch = std::move(batches_.front());
  batches_.pop_front();
  for (const AppId app : batch.apps) {
    DeliverNext(app);
  }
}

void UpcallDispatcher::DeliverNext(AppId app) {
  AppQueue& q = queues_[app];
  q.delivery_scheduled = false;
  if (q.blocked || q.queue.empty()) {
    return;
  }
  PendingUpcall upcall = std::move(q.queue.front());
  q.queue.pop_front();
  // Exactly-once, in-order delivery (§4.3): sequence numbers are assigned
  // consecutively at Post time and the queue is FIFO, so the next delivery
  // must be exactly the successor of the last — a gap means a lost upcall,
  // a repeat means a duplicate.
  ODY_ASSERT(upcall.seq == q.last_delivered + 1, "upcall delivered out of order");
  q.last_delivered = upcall.seq;
  ++delivered_;
  ODY_ASSERT(queued_ > 0, "delivering an upcall nobody queued");
  --queued_;
  const Duration latency = sim_->now() - upcall.posted_at;
  latency_total_ += latency;
  if (latency > latency_max_) {
    latency_max_ = latency;
  }
  ODY_TRACE_INSTANT2(sim_->trace(), kViceroy, "upcall_deliver", sim_->now(), app, "seq",
                     static_cast<double>(upcall.seq), "level", upcall.level);
  ODY_TRACE_COUNTER(sim_->trace(), kViceroy, "upcall_latency_us", sim_->now(), 0,
                    static_cast<double>(latency));
  ODY_TRACE_COUNTER(sim_->trace(), kViceroy, "upcall_queue_depth", sim_->now(), 0,
                    static_cast<double>(queued_));
  if (observer_) {
    observer_(app, upcall.seq, upcall.request, upcall.resource, upcall.level, upcall.posted_at);
  }
  if (upcall.handler) {
    upcall.handler(upcall.request, upcall.resource, upcall.level);
  }
  // Deliver any remaining upcalls on subsequent turns, preserving order even
  // if the handler posted new ones.
  ScheduleDelivery(app);
}

}  // namespace odyssey

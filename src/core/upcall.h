// Upcall delivery with exactly-once, in-order semantics (§4.3).
//
// Upcalls resemble Unix signals but are delivered exactly once and in order
// to each receiver, carry parameters, and can be blocked.  The dispatcher
// keeps a FIFO queue per application; deliveries are scheduled through the
// simulation so handlers always run from the event loop, never re-entrantly
// from the code that noticed the resource change.

#ifndef SRC_CORE_UPCALL_H_
#define SRC_CORE_UPCALL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "src/core/resource.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace odyssey {

class UpcallDispatcher {
 public:
  // Observes every delivery, after the bookkeeping but before the handler
  // runs: (app, seq, request, resource, level, posted_at).  Installed by the
  // fuzzing oracles (src/check) to audit exactly-once/in-order semantics
  // without aborting; unset (the default) costs one branch per delivery.
  using DeliveryObserver =
      std::function<void(AppId, uint64_t, RequestId, ResourceId, double, Time)>;

  // |delivery_latency| models the cost of crossing into the application;
  // zero still defers delivery to a subsequent event-loop turn.
  explicit UpcallDispatcher(Simulation* sim, Duration delivery_latency = 0)
      : sim_(sim), delivery_latency_(delivery_latency) {}

  UpcallDispatcher(const UpcallDispatcher&) = delete;
  UpcallDispatcher& operator=(const UpcallDispatcher&) = delete;

  // Enqueues an upcall for |app|.  Returns the per-app sequence number.
  uint64_t Post(AppId app, RequestId request, ResourceId resource, double level,
                UpcallHandler handler);

  // Blocks delivery to |app|; posted upcalls accumulate in order.
  void Block(AppId app);
  // Unblocks and drains any queued upcalls, still in order.
  void Unblock(AppId app);
  bool blocked(AppId app) const;

  // Total upcalls delivered (for tests and diagnostics).
  uint64_t delivered_count() const { return delivered_; }
  // Last sequence number delivered to |app| (0 if none).
  uint64_t last_delivered_seq(AppId app) const;

  // Upcall latency: sim time from Post() to the handler actually running.
  // This is the agility metric the paper cares about — how quickly a supply
  // change reaches application code — so it is measured at delivery, not
  // inferred from delivery_latency_ (blocking and queueing add real delay).
  Duration latency_total() const { return latency_total_; }
  Duration latency_max() const { return latency_max_; }
  double latency_mean_us() const {
    return delivered_ == 0 ? 0.0
                           : static_cast<double>(latency_total_) / static_cast<double>(delivered_);
  }

  // Upcalls posted but not yet delivered, across all apps.
  size_t queued_count() const { return queued_; }

  // Installs (or clears, with an empty function) the delivery observer.
  void set_delivery_observer(DeliveryObserver observer) { observer_ = std::move(observer); }

 private:
  struct PendingUpcall {
    uint64_t seq;
    RequestId request;
    ResourceId resource;
    double level;
    Time posted_at;
    UpcallHandler handler;
  };

  struct AppQueue {
    std::deque<PendingUpcall> queue;
    uint64_t next_seq = 1;
    uint64_t last_delivered = 0;
    bool blocked = false;
    bool delivery_scheduled = false;
  };

  // Deliveries due at the same instant ride one simulation event.  A supply
  // transition that violates N windows posts N upcalls with a common due
  // time; without batching that is N heap pushes and N pops per transition,
  // which dominates the event loop at 100k apps.  Dues are non-decreasing
  // (fixed latency, monotone clock), so a deque of batches stays sorted and
  // joining the newest batch is an O(1) back() check.  Apps within a batch
  // deliver in the order their deliveries were scheduled — exactly the
  // order separate same-time events would have fired in.
  struct Batch {
    Time due;
    std::vector<AppId> apps;
  };

  void ScheduleDelivery(AppId app);
  void FireBatch();
  void DeliverNext(AppId app);

  Simulation* sim_;
  Duration delivery_latency_;
  DeliveryObserver observer_;
  std::map<AppId, AppQueue> queues_;
  std::deque<Batch> batches_;
  uint64_t delivered_ = 0;
  size_t queued_ = 0;
  Duration latency_total_ = 0;
  Duration latency_max_ = 0;
};

}  // namespace odyssey

#endif  // SRC_CORE_UPCALL_H_

#include "src/core/battery_model.h"

namespace odyssey {

BatteryModel::BatteryModel(Simulation* sim, Viceroy* viceroy, Link* link, const Config& config)
    : sim_(sim),
      viceroy_(viceroy),
      link_(link),
      config_(config),
      remaining_minutes_(config.capacity_minutes) {}

BatteryModel::BatteryModel(Simulation* sim, Viceroy* viceroy, Link* link)
    : BatteryModel(sim, viceroy, link, Config()) {}

void BatteryModel::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  last_tick_ = sim_->now();
  last_bytes_ = link_->bytes_delivered();
  viceroy_->SetStaticLevel(ResourceId::kBatteryPower, remaining_minutes_);
  sim_->Schedule(config_.update_period, [this] { Tick(); });
}

void BatteryModel::Tick() {
  const Time now = sim_->now();
  const double elapsed_minutes = DurationToSeconds(now - last_tick_) / 60.0;
  const double bytes = link_->bytes_delivered();
  const double moved_mb = (bytes - last_bytes_) / (1024.0 * 1024.0);
  last_tick_ = now;
  last_bytes_ = bytes;

  remaining_minutes_ -= elapsed_minutes * config_.idle_drain_rate +
                        moved_mb * config_.network_minutes_per_mb;
  if (remaining_minutes_ < 0.0) {
    remaining_minutes_ = 0.0;
  }
  viceroy_->SetStaticLevel(ResourceId::kBatteryPower, remaining_minutes_);
  if (remaining_minutes_ > 0.0) {
    sim_->Schedule(config_.update_period, [this] { Tick(); });
  }
}

}  // namespace odyssey

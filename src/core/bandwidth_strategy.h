// Resource-management strategies for network bandwidth.
//
// The paper's evaluation (§6.2.3) compares three strategies:
//   * centralized — Odyssey proper: the viceroy combines information from
//     all endpoint logs, estimating total supply and per-connection shares;
//   * laissez-faire — each log is examined in isolation, reflecting what an
//     application would discover on its own;
//   * blind-optimism — the networking layer passes the theoretical bandwidth
//     to the viceroy at each transition, ignoring competing applications.
//
// A strategy answers one question for the viceroy: how much bandwidth is
// available to a given application right now?

#ifndef SRC_CORE_BANDWIDTH_STRATEGY_H_
#define SRC_CORE_BANDWIDTH_STRATEGY_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/resource.h"
#include "src/rpc/endpoint.h"
#include "src/sim/time.h"

namespace odyssey {

class ArbitrationStrategy;
class CentralizedStrategy;

// A strategy's summary of which applications a re-evaluation pass must
// look at, produced by TakeReevalHint() when estimates move.
//
// When |exact| is set, the hint is a *complete* description: every app not
// in |dirty| has had no per-connection state change since the last hint was
// taken, so its bandwidth availability is the pure fair-share level for an
// app with its connection count, and its smoothed rtt is unchanged.
// |idle_levels| lists, for each connection count k present among
// registered apps, the bandwidth level such an all-idle app sees — the
// viceroy probes the request table's interval index at each level to find
// the non-dirty apps whose windows those levels violate, instead of
// walking every app.  A hint with |exact| false (the default every
// strategy without incremental bookkeeping returns) tells the viceroy to
// fall back to the full scan.
struct ReevalHint {
  bool exact = false;
  // Apps whose availability or rtt may have moved arbitrarily.  Sorted and
  // deduplicated.
  std::vector<AppId> dirty;
  // (connection count, bandwidth availability) for every connection count
  // that at least one app currently has.  Valid for non-dirty apps.
  std::vector<std::pair<int, double>> idle_levels;
};

class BandwidthStrategy {
 public:
  virtual ~BandwidthStrategy() = default;

  virtual std::string name() const = 0;

  // Begins accounting for |endpoint|, owned by |app|.  Strategies that use
  // passive observation subscribe to the endpoint's log.
  virtual void AttachConnection(AppId app, Endpoint* endpoint) = 0;
  virtual void DetachConnection(Endpoint* endpoint) = 0;

  // Estimated bandwidth (bytes/second) available to |app| at |now|.
  virtual double AvailabilityFor(AppId app, Time now) const = 0;

  // Whether any bandwidth estimate exists yet.  Availability of zero with
  // no estimate means "nothing observed"; with an estimate it means
  // genuine disconnection — adaptive policies treat the two differently.
  virtual bool HasEstimate() const = 0;

  // Estimated total bandwidth available to the client.
  virtual double TotalSupply(Time now) const = 0;

  // Smoothed round trip for the app's connections (microseconds); zero if
  // unknown.
  virtual Duration SmoothedRttFor(AppId app) const = 0;

  // Connections currently attached for |app|.  The viceroy uses this as the
  // window class for the request table's interval index (idle apps with the
  // same count share one availability level), so strategies that produce
  // exact reevaluation hints must track it.  Strategies without connection
  // bookkeeping may leave the default; their hints are inexact, so the
  // class is never probed.
  virtual int ConnectionCountFor(AppId app) const {
    (void)app;
    return 0;
  }

  // The app |connection| is attached to, or 0 if unknown.
  virtual AppId OwnerOf(ConnectionId connection) const {
    (void)connection;
    return 0;
  }

  // Drains and returns the set of apps the next re-evaluation must visit.
  // Strategies that track per-app changes incrementally override this; the
  // default is the conservative "scan everything" hint.
  virtual ReevalHint TakeReevalHint(Time now) {
    (void)now;
    return {};
  }

  // Admission-controlling strategies return themselves; the viceroy consults
  // the returned interface before registering bandwidth windows.  Plain
  // estimation strategies (the default) admit everything.
  virtual ArbitrationStrategy* arbitration() { return nullptr; }

  // The centralized-family surface the oracle set can audit (supply totals,
  // per-connection availabilities, live-connection enumeration).  Strategies
  // built on shared supply bookkeeping return the underlying
  // CentralizedStrategy; isolated-estimate strategies return nullptr and the
  // supply/fair-share oracles stay disarmed.
  virtual CentralizedStrategy* audit_surface() { return nullptr; }

  // The viceroy installs a callback to be told estimates may have moved; it
  // then re-evaluates registered windows of tolerance.
  void SetChangeCallback(std::function<void()> cb) { on_change_ = std::move(cb); }

 protected:
  void NotifyChanged() {
    if (on_change_) {
      on_change_();
    }
  }

 private:
  std::function<void()> on_change_;
};

}  // namespace odyssey

#endif  // SRC_CORE_BANDWIDTH_STRATEGY_H_

// Resource-management strategies for network bandwidth.
//
// The paper's evaluation (§6.2.3) compares three strategies:
//   * centralized — Odyssey proper: the viceroy combines information from
//     all endpoint logs, estimating total supply and per-connection shares;
//   * laissez-faire — each log is examined in isolation, reflecting what an
//     application would discover on its own;
//   * blind-optimism — the networking layer passes the theoretical bandwidth
//     to the viceroy at each transition, ignoring competing applications.
//
// A strategy answers one question for the viceroy: how much bandwidth is
// available to a given application right now?

#ifndef SRC_CORE_BANDWIDTH_STRATEGY_H_
#define SRC_CORE_BANDWIDTH_STRATEGY_H_

#include <functional>
#include <string>

#include "src/core/resource.h"
#include "src/rpc/endpoint.h"
#include "src/sim/time.h"

namespace odyssey {

class BandwidthStrategy {
 public:
  virtual ~BandwidthStrategy() = default;

  virtual std::string name() const = 0;

  // Begins accounting for |endpoint|, owned by |app|.  Strategies that use
  // passive observation subscribe to the endpoint's log.
  virtual void AttachConnection(AppId app, Endpoint* endpoint) = 0;
  virtual void DetachConnection(Endpoint* endpoint) = 0;

  // Estimated bandwidth (bytes/second) available to |app| at |now|.
  virtual double AvailabilityFor(AppId app, Time now) const = 0;

  // Whether any bandwidth estimate exists yet.  Availability of zero with
  // no estimate means "nothing observed"; with an estimate it means
  // genuine disconnection — adaptive policies treat the two differently.
  virtual bool HasEstimate() const = 0;

  // Estimated total bandwidth available to the client.
  virtual double TotalSupply(Time now) const = 0;

  // Smoothed round trip for the app's connections (microseconds); zero if
  // unknown.
  virtual Duration SmoothedRttFor(AppId app) const = 0;

  // The viceroy installs a callback to be told estimates may have moved; it
  // then re-evaluates registered windows of tolerance.
  void SetChangeCallback(std::function<void()> cb) { on_change_ = std::move(cb); }

 protected:
  void NotifyChanged() {
    if (on_change_) {
      on_change_();
    }
  }

 private:
  std::function<void()> on_change_;
};

}  // namespace odyssey

#endif  // SRC_CORE_BANDWIDTH_STRATEGY_H_

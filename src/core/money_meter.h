// Money management (Figure 3c: Money, cents).
//
// Wireless overlay networks differ in cost (§2.1); on a metered link every
// byte has a price.  The meter charges the session budget for traffic
// crossing the link and keeps the viceroy's money level current, so a
// cost-conscious application can register a window of tolerance on its
// remaining budget and degrade fidelity (or go quiescent) when it runs
// low.

#ifndef SRC_CORE_MONEY_METER_H_
#define SRC_CORE_MONEY_METER_H_

#include "src/core/viceroy.h"
#include "src/net/link.h"
#include "src/sim/simulation.h"

namespace odyssey {

class MoneyMeter {
 public:
  struct Config {
    double budget_cents = 25.0;
    double cents_per_mb = 2.0;
    Duration update_period = 1 * kSecond;
  };

  MoneyMeter(Simulation* sim, Viceroy* viceroy, Link* link, const Config& config);
  // Defaults (out of line: a nested Config's member initializers cannot be
  // used as an in-class default argument).
  MoneyMeter(Simulation* sim, Viceroy* viceroy, Link* link);

  MoneyMeter(const MoneyMeter&) = delete;
  MoneyMeter& operator=(const MoneyMeter&) = delete;

  void Start();

  // Changes the tariff (e.g. when the overlay network hands off from WaveLAN
  // to a metered cellular link).
  void SetTariff(double cents_per_mb) { config_.cents_per_mb = cents_per_mb; }

  double remaining_cents() const { return remaining_cents_; }
  double spent_cents() const { return config_.budget_cents - remaining_cents_; }

 private:
  void Tick();

  Simulation* sim_;
  Viceroy* viceroy_;
  Link* link_;
  Config config_;
  double remaining_cents_;
  double last_bytes_ = 0.0;
  bool started_ = false;
};

}  // namespace odyssey

#endif  // SRC_CORE_MONEY_METER_H_

// The OdysseyClient facade: the programming interface of Figure 3.
//
// An OdysseyClient bundles the viceroy, the warden ensemble, and the object
// namespace — the paper's single-address-space Odyssey process.  Applications
// register themselves, then operate on Odyssey objects (read/write/tsop),
// express resource expectations (request), and receive upcalls.
//
// Construction follows the experiment recipe:
//
//   Simulation sim(seed);
//   Link link(&sim, capacity, latency);
//   Modulator modulator(&sim, &link);
//   OdysseyClient client(&sim, &link,
//                        std::make_unique<CentralizedStrategy>(&sim));
//   client.InstallWarden(std::make_unique<VideoWarden>(server));
//   AppId app = client.RegisterApplication("xanim");
//   ...
//   modulator.Replay(MakeStepUp());
//   sim.Run();

#ifndef SRC_CORE_ODYSSEY_CLIENT_H_
#define SRC_CORE_ODYSSEY_CLIENT_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/bandwidth_strategy.h"
#include "src/core/object_namespace.h"
#include "src/core/resource.h"
#include "src/core/status.h"
#include "src/core/viceroy.h"
#include "src/core/warden.h"
#include "src/net/link.h"
#include "src/rpc/endpoint.h"
#include "src/sim/simulation.h"

namespace odyssey {

class OdysseyClient {
 public:
  OdysseyClient(Simulation* sim, Link* link, std::unique_ptr<BandwidthStrategy> strategy,
                Duration upcall_latency = 0);

  // Detaches every open connection from the viceroy before members are torn
  // down: endpoints_ is destroyed before viceroy_, and the strategy must not
  // unsubscribe from logs that no longer exist.
  ~OdysseyClient();

  OdysseyClient(const OdysseyClient&) = delete;
  OdysseyClient& operator=(const OdysseyClient&) = delete;

  // --- Configuration ---

  // Installs |warden| at /odyssey/<name> and attaches it.  Returns a
  // non-owning pointer for convenience; the client keeps ownership.
  Warden* InstallWarden(std::unique_ptr<Warden> warden);

  // Registers an application with the viceroy.
  AppId RegisterApplication(std::string name);

  // Opens a connection from a warden to a remote service and attaches it to
  // the viceroy on behalf of |app|.  The endpoint lives as long as the
  // client and inherits the client's retry policy and fault injector.
  Endpoint* OpenConnection(AppId app, const std::string& service_name);

  // Failure semantics applied to connections opened afterwards (and, for
  // convenience, to already-open ones): per-call timeouts, bounded retries
  // with seeded backoff jitter.  Default-constructed RetryPolicy (timeout 0)
  // restores the fair-weather protocol.
  void set_retry_policy(const RetryPolicy& policy);
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  // Routes all connection traffic through |injector| (null detaches).  The
  // injector must outlive the client's traffic.
  void set_fault_injector(FaultInjector* injector);

  // Observes every connection the client opens (explicitly or on behalf of
  // a warden), after it is attached to the viceroy.  The fleet layer uses
  // this to map connections onto shared-server groups by service name.
  using ConnectionObserver = std::function<void(Endpoint* endpoint, const std::string& service)>;
  void set_connection_observer(ConnectionObserver observer) {
    connection_observer_ = std::move(observer);
  }

  // --- The Odyssey API (Figure 3) ---

  // Odyssey objects can also be identified by descriptor rather than
  // pathname (Figure 3's note: "the request and tsop calls have variants
  // that identify Odyssey objects by file descriptors").
  using OdysseyFd = int;

  struct [[nodiscard]] OpenResult {
    Status status;
    OdysseyFd fd = -1;
  };

  // Resolves |path| once and returns a descriptor for it.  The descriptor
  // is scoped to |app|.
  OpenResult Open(AppId app, const std::string& path);
  Status Close(AppId app, OdysseyFd fd);

  // Descriptor variants of tsop/read/write.  kInvalidArgument for unknown
  // or foreign descriptors.
  void TsopFd(AppId app, OdysseyFd fd, int opcode, const std::string& in,
              Warden::TsopCallback done);
  void ReadFd(AppId app, OdysseyFd fd, Warden::ReadCallback done);
  void WriteFd(AppId app, OdysseyFd fd, std::string data, Warden::WriteCallback done);

  // request(): expresses a resource expectation.
  RequestResult Request(AppId app, const ResourceDescriptor& descriptor);

  // The literal Figure 3(a) form: request(in path, in resource-descriptor,
  // out request-id).  The path names the Odyssey object on whose behalf
  // the expectation is expressed; it must resolve to an installed warden.
  RequestResult Request(AppId app, const std::string& path,
                        const ResourceDescriptor& descriptor);

  // Descriptor variant (Figure 3's note: "the request and tsop calls have
  // variants that identify Odyssey objects by file descriptors").
  RequestResult RequestFd(AppId app, OdysseyFd fd, const ResourceDescriptor& descriptor);

  // cancel(): discards a registered expectation.
  Status Cancel(RequestId id);

  // tsop(): type-specific operation on an Odyssey object.
  void Tsop(AppId app, const std::string& path, int opcode, const std::string& in,
            Warden::TsopCallback done);

  // File-style access for types that support it.
  void Read(AppId app, const std::string& path, Warden::ReadCallback done);
  void Write(AppId app, const std::string& path, std::string data, Warden::WriteCallback done);

  // Current availability, for applications polling instead of registering.
  double CurrentLevel(AppId app, ResourceId resource) const;

  // Whether any bandwidth estimate exists yet (see
  // BandwidthStrategy::HasEstimate).
  bool HasBandwidthEstimate() const { return viceroy_.HasBandwidthEstimate(); }

  // --- Accessors ---

  Simulation* sim() { return sim_; }
  Link* link() { return link_; }
  Viceroy& viceroy() { return viceroy_; }
  const ObjectNamespace& object_namespace() const { return namespace_; }

 private:
  struct OpenObject {
    AppId app = 0;
    Warden* warden = nullptr;
    std::string relative_path;
  };

  // Looks up |fd| for |app|; null if unknown or owned by another app.
  const OpenObject* Lookup(AppId app, OdysseyFd fd) const;

  Simulation* sim_;
  Link* link_;
  Viceroy viceroy_;
  ConnectionObserver connection_observer_;
  RetryPolicy retry_policy_;
  FaultInjector* fault_injector_ = nullptr;
  ObjectNamespace namespace_;
  std::vector<std::unique_ptr<Warden>> wardens_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::map<OdysseyFd, OpenObject> open_objects_;
  OdysseyFd next_fd_ = 3;  // 0-2 taken, as tradition demands
};

}  // namespace odyssey

#endif  // SRC_CORE_ODYSSEY_CLIENT_H_

// Annotated synchronization primitives for the threaded harness layer.
//
// The simulation itself is single-threaded by design; the only concurrency
// in the tree is the harness worker pool fanning shared-nothing trials over
// threads.  That layer's shared state is tiny — a claim counter, a stop
// flag, a first-exception slot — but history shows tiny shared state is
// exactly where the lifetime bugs lived, so every piece of it is guarded by
// these wrappers instead of raw std primitives:
//
//   Mutex      a std::mutex declared as an ODY_CAPABILITY, so Clang's
//              -Wthread-safety can prove every ODY_GUARDED_BY member is
//              only touched under it (see src/core/contract.h);
//   MutexLock  the RAII guard (an ODY_SCOPED_CAPABILITY);
//   CondVar    a condition variable that waits on a Mutex, keeping the
//              capability annotations intact across the wait.
//
// The wrappers add no state and no behavior over the std types; they exist
// so the annotations have something to attach to (std::mutex itself carries
// no capability attributes in libstdc++/libc++).

#ifndef SRC_CORE_SYNC_H_
#define SRC_CORE_SYNC_H_

#include <condition_variable>
#include <mutex>

#include "src/core/contract.h"

namespace odyssey {

class ODY_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ODY_ACQUIRE() { mu_.lock(); }
  void Unlock() ODY_RELEASE() { mu_.unlock(); }

  // BasicLockable spelling, so CondVar (std::condition_variable_any) can
  // wait directly on the annotated type.
  void lock() ODY_ACQUIRE() { mu_.lock(); }
  void unlock() ODY_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

// RAII guard: holds the mutex for the enclosing scope.
class ODY_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ODY_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() ODY_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

// Condition variable over the annotated Mutex.  Wait() atomically releases
// and reacquires the mutex, so from the caller's perspective the capability
// is held across the call — which is exactly what ODY_REQUIRES asserts.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) ODY_REQUIRES(*mu) { cv_.wait(*mu); }

  // Waits until |predicate| holds; the predicate runs with the mutex held.
  template <typename Predicate>
  void Wait(Mutex* mu, Predicate predicate) ODY_REQUIRES(*mu) {
    cv_.wait(*mu, std::move(predicate));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace odyssey

#endif  // SRC_CORE_SYNC_H_

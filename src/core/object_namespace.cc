#include "src/core/object_namespace.h"

namespace odyssey {

Status ObjectNamespace::Install(Warden* warden) {
  if (warden == nullptr || warden->name().empty()) {
    return InvalidArgumentError("warden must have a name");
  }
  if (warden->name().find('/') != std::string::npos) {
    return InvalidArgumentError("warden name must not contain '/'");
  }
  const auto [it, inserted] = wardens_.try_emplace(warden->name(), warden);
  if (!inserted) {
    return AlreadyExistsError("warden '" + warden->name() + "' already installed");
  }
  return OkStatus();
}

Status ObjectNamespace::Resolve(const std::string& path, Resolution* out) const {
  if (!IsOdysseyPath(path)) {
    return NotFoundError("not an Odyssey path: " + path);
  }
  const std::string rest = path.substr(sizeof(kOdysseyRoot) - 1);
  const auto slash = rest.find('/');
  const std::string warden_name = slash == std::string::npos ? rest : rest.substr(0, slash);
  const auto it = wardens_.find(warden_name);
  if (it == wardens_.end()) {
    return NotFoundError("no warden for '" + warden_name + "'");
  }
  out->warden = it->second;
  out->relative_path = slash == std::string::npos ? "" : rest.substr(slash + 1);
  return OkStatus();
}

bool ObjectNamespace::IsOdysseyPath(const std::string& path) {
  return path.rfind(kOdysseyRoot, 0) == 0;
}

std::vector<std::string> ObjectNamespace::WardenNames() const {
  std::vector<std::string> names;
  names.reserve(wardens_.size());
  for (const auto& [name, warden] : wardens_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace odyssey

// The viceroy's table of registered resource expectations (§4.2).
//
// Each entry is a window of tolerance on one resource for one application.
// When the availability of a resource strays outside a registered window,
// the entry is consumed and an upcall is generated; the application is then
// expected to register a revised window appropriate to its new fidelity.
//
// Layout: entries live in a slab of slots recycled through a free list, so
// a client cycling through request/upcall/re-request churn reuses the same
// hot cache lines instead of exercising the allocator, and 100k concurrent
// windows sit in one contiguous allocation.  Around the slab:
//
//   * per-(resource, app) buckets of slot indices, making TakeViolated and
//     EntriesFor O(app's windows) instead of O(table);
//   * per-resource interval indexes ordered by (class, window bound),
//     letting CollectViolatedApps find every app with a violated window at
//     a given level in O(log table + violated) — the query the indexed
//     viceroy re-evaluation is built on.  The class is an opaque caller
//     partition (the viceroy uses the app's connection count): idle apps
//     with the same class share one availability level, so probing each
//     class at its own level scans only that class's windows instead of
//     sweeping windows of every other class into the candidate set.
//
// All result orderings are by ascending RequestId, matching the original
// std::map-backed implementation entry for entry; slot reuse never leaks
// into observable order.

#ifndef SRC_CORE_REQUEST_TABLE_H_
#define SRC_CORE_REQUEST_TABLE_H_

#include <array>
#include <cstdint>
#include <map>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/resource.h"
#include "src/core/status.h"

namespace odyssey {

class RequestTable {
 public:
  struct Entry {
    RequestId id = 0;
    AppId app = 0;
    ResourceDescriptor descriptor;
  };

  // Registers a window of tolerance.  The caller has already verified the
  // current level lies within the window.  |klass| partitions the interval
  // index for scoped CollectViolatedApps queries; callers that never probe
  // by class can leave it 0.
  RequestId Register(AppId app, const ResourceDescriptor& descriptor, uint32_t klass = 0);

  // Moves every window of |app| (all resources) to |klass|.  The viceroy
  // calls this when an app's connection count changes, keeping each
  // window's class equal to its owner's current count.
  void Reclassify(AppId app, uint32_t klass);

  // Discards a registration.  kNotFound if it does not exist (it may have
  // been consumed by an upcall already).
  Status Cancel(RequestId id);

  // Removes and returns every entry for (|app|, |resource|) whose window
  // excludes |level|, in ascending id order.  The caller posts upcalls for
  // the returned entries.
  std::vector<Entry> TakeViolated(ResourceId resource, AppId app, double level);

  // Entries registered for |app| on |resource| (diagnostics/tests), in
  // ascending id order.
  std::vector<Entry> EntriesFor(AppId app, ResourceId resource) const;

  // Appends the app of every entry on |resource| whose window excludes
  // |level|.  May repeat an app (one per violated window); never misses
  // one.  Does not consume entries — the caller re-evaluates each reported
  // app through the normal TakeViolated path.
  void CollectViolatedApps(ResourceId resource, double level, std::vector<AppId>* out) const;

  // As above, restricted to windows registered (or reclassified) under
  // |klass|.  Cost is O(log table + violated in class): other classes'
  // windows are never touched, which is what keeps the indexed
  // re-evaluation sublinear when classes sit at widely different levels.
  void CollectViolatedApps(ResourceId resource, uint32_t klass, double level,
                           std::vector<AppId>* out) const;

  size_t size() const { return by_id_.size(); }

 private:
  struct Slot {
    Entry entry;
    uint32_t klass = 0;
    bool occupied = false;
  };

  static constexpr size_t kNumResources = std::size(kAllResources);

  // Index keys order by class first, then window bound with the owning id
  // as tiebreak, so equal bounds coexist, iteration is deterministic, and
  // one class's windows form a contiguous key range.
  using BoundKey = std::tuple<uint32_t, double, RequestId>;

  // Unlinks the slot from the id map and interval indexes and returns it to
  // the free list.  Bucket membership is the caller's to maintain.
  void Release(uint32_t index);

  std::vector<Slot> slots_;
  std::vector<uint32_t> free_;  // LIFO: the hottest slot is reused first
  std::unordered_map<RequestId, uint32_t> by_id_;
  std::map<std::pair<size_t, AppId>, std::vector<uint32_t>> buckets_;
  std::array<std::map<BoundKey, uint32_t>, kNumResources> lower_index_;
  std::array<std::map<BoundKey, uint32_t>, kNumResources> upper_index_;
  // Live window count per class, per resource — the class set the global
  // CollectViolatedApps overload iterates.
  std::array<std::map<uint32_t, size_t>, kNumResources> class_counts_;
  RequestId next_id_ = 1;
};

}  // namespace odyssey

#endif  // SRC_CORE_REQUEST_TABLE_H_

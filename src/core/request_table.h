// The viceroy's table of registered resource expectations (§4.2).
//
// Each entry is a window of tolerance on one resource for one application.
// When the availability of a resource strays outside a registered window,
// the entry is consumed and an upcall is generated; the application is then
// expected to register a revised window appropriate to its new fidelity.

#ifndef SRC_CORE_REQUEST_TABLE_H_
#define SRC_CORE_REQUEST_TABLE_H_

#include <map>
#include <vector>

#include "src/core/resource.h"
#include "src/core/status.h"

namespace odyssey {

class RequestTable {
 public:
  struct Entry {
    RequestId id = 0;
    AppId app = 0;
    ResourceDescriptor descriptor;
  };

  // Registers a window of tolerance.  The caller has already verified the
  // current level lies within the window.
  RequestId Register(AppId app, const ResourceDescriptor& descriptor);

  // Discards a registration.  kNotFound if it does not exist (it may have
  // been consumed by an upcall already).
  Status Cancel(RequestId id);

  // Removes and returns every entry for (app-any, |resource|) whose window
  // excludes |level|.  The caller posts upcalls for the returned entries.
  std::vector<Entry> TakeViolated(ResourceId resource, AppId app, double level);

  // Entries registered for |app| on |resource| (diagnostics/tests).
  std::vector<Entry> EntriesFor(AppId app, ResourceId resource) const;

  size_t size() const { return entries_.size(); }

 private:
  std::map<RequestId, Entry> entries_;
  RequestId next_id_ = 1;
};

}  // namespace odyssey

#endif  // SRC_CORE_REQUEST_TABLE_H_

#include "src/core/status.h"

namespace odyssey {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kOutOfBounds:
      return "OUT_OF_BOUNDS";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

}  // namespace odyssey

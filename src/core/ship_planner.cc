#include "src/core/ship_planner.h"

#include <limits>

namespace odyssey {

Duration ShipPlanner::Predict(const ShipCandidate& candidate, double bandwidth_bps,
                              Duration rtt) {
  Duration total = candidate.local_compute + candidate.remote_compute;
  const double network_bytes = candidate.upload_bytes + candidate.download_bytes;
  if (network_bytes > 0.0 || candidate.remote_compute > 0) {
    if (bandwidth_bps <= 0.0) {
      return std::numeric_limits<Duration>::max();
    }
    total += rtt + SecondsToDuration(network_bytes / bandwidth_bps);
  }
  return total;
}

int ShipPlanner::Choose(const std::vector<ShipCandidate>& candidates, double bandwidth_bps,
                        Duration rtt) {
  int best = -1;
  Duration best_time = std::numeric_limits<Duration>::max();
  for (size_t i = 0; i < candidates.size(); ++i) {
    const Duration predicted = Predict(candidates[i], bandwidth_bps, rtt);
    if (predicted < best_time) {
      best_time = predicted;
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace odyssey

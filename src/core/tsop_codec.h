// Packing helpers for tsop buffers.
//
// The tsop call (§4.4, Figure 3e) passes input and output parameters as
// unstructured memory buffers in the spirit of ioctl.  Wardens and
// applications agree on trivially copyable parameter structs and move them
// through std::string buffers with these helpers.

#ifndef SRC_CORE_TSOP_CODEC_H_
#define SRC_CORE_TSOP_CODEC_H_

#include <cstring>
#include <string>
#include <type_traits>

namespace odyssey {

// Serializes a trivially copyable struct into a byte buffer.
template <typename T>
[[nodiscard]] std::string PackStruct(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>, "tsop structs must be trivially copyable");
  std::string buffer(sizeof(T), '\0');
  std::memcpy(buffer.data(), &value, sizeof(T));
  return buffer;
}

// Deserializes a byte buffer into a trivially copyable struct.  Returns
// false on size mismatch (malformed tsop argument); the caller must check.
template <typename T>
[[nodiscard]] bool UnpackStruct(const std::string& buffer, T* out) {
  static_assert(std::is_trivially_copyable_v<T>, "tsop structs must be trivially copyable");
  if (buffer.size() != sizeof(T)) {
    return false;
  }
  std::memcpy(out, buffer.data(), sizeof(T));
  return true;
}

}  // namespace odyssey

#endif  // SRC_CORE_TSOP_CODEC_H_

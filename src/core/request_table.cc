#include "src/core/request_table.h"

namespace odyssey {

RequestId RequestTable::Register(AppId app, const ResourceDescriptor& descriptor) {
  const RequestId id = next_id_++;
  entries_[id] = Entry{id, app, descriptor};
  return id;
}

Status RequestTable::Cancel(RequestId id) {
  return entries_.erase(id) > 0 ? OkStatus() : NotFoundError("no such request");
}

std::vector<RequestTable::Entry> RequestTable::TakeViolated(ResourceId resource, AppId app,
                                                            double level) {
  std::vector<Entry> violated;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const Entry& entry = it->second;
    if (entry.app == app && entry.descriptor.resource == resource &&
        (level < entry.descriptor.lower || level > entry.descriptor.upper)) {
      violated.push_back(entry);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return violated;
}

std::vector<RequestTable::Entry> RequestTable::EntriesFor(AppId app, ResourceId resource) const {
  std::vector<Entry> matching;
  for (const auto& [id, entry] : entries_) {
    if (entry.app == app && entry.descriptor.resource == resource) {
      matching.push_back(entry);
    }
  }
  return matching;
}

}  // namespace odyssey

#include "src/core/request_table.h"

#include <algorithm>
#include <limits>

#include "src/core/contract.h"

namespace odyssey {

namespace {

size_t ResourceIndex(ResourceId resource) {
  const auto index = static_cast<size_t>(resource);
  ODY_DCHECK(index < std::size(kAllResources));
  return index;
}

bool Violates(const ResourceDescriptor& descriptor, double level) {
  return level < descriptor.lower || level > descriptor.upper;
}

}  // namespace

RequestId RequestTable::Register(AppId app, const ResourceDescriptor& descriptor,
                                 uint32_t klass) {
  const RequestId id = next_id_++;
  uint32_t index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
  } else {
    index = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.entry = Entry{id, app, descriptor};
  slot.klass = klass;
  slot.occupied = true;

  const size_t r = ResourceIndex(descriptor.resource);
  by_id_.emplace(id, index);
  buckets_[{r, app}].push_back(index);
  lower_index_[r].emplace(BoundKey{klass, descriptor.lower, id}, index);
  upper_index_[r].emplace(BoundKey{klass, descriptor.upper, id}, index);
  ++class_counts_[r][klass];
  return id;
}

void RequestTable::Reclassify(AppId app, uint32_t klass) {
  for (size_t r = 0; r < kNumResources; ++r) {
    const auto bucket_it = buckets_.find({r, app});
    if (bucket_it == buckets_.end()) {
      continue;
    }
    for (const uint32_t index : bucket_it->second) {
      Slot& slot = slots_[index];
      if (slot.klass == klass) {
        continue;
      }
      const Entry& entry = slot.entry;
      lower_index_[r].erase(BoundKey{slot.klass, entry.descriptor.lower, entry.id});
      upper_index_[r].erase(BoundKey{slot.klass, entry.descriptor.upper, entry.id});
      auto& counts = class_counts_[r];
      const auto count_it = counts.find(slot.klass);
      if (--count_it->second == 0) {
        counts.erase(count_it);
      }
      slot.klass = klass;
      lower_index_[r].emplace(BoundKey{klass, entry.descriptor.lower, entry.id}, index);
      upper_index_[r].emplace(BoundKey{klass, entry.descriptor.upper, entry.id}, index);
      ++counts[klass];
    }
  }
}

void RequestTable::Release(uint32_t index) {
  Slot& slot = slots_[index];
  const Entry& entry = slot.entry;
  const size_t r = ResourceIndex(entry.descriptor.resource);
  lower_index_[r].erase(BoundKey{slot.klass, entry.descriptor.lower, entry.id});
  upper_index_[r].erase(BoundKey{slot.klass, entry.descriptor.upper, entry.id});
  auto& counts = class_counts_[r];
  const auto count_it = counts.find(slot.klass);
  if (--count_it->second == 0) {
    counts.erase(count_it);
  }
  by_id_.erase(entry.id);
  slot.entry = Entry{};  // drops the handler closure promptly
  slot.klass = 0;
  slot.occupied = false;
  free_.push_back(index);
}

Status RequestTable::Cancel(RequestId id) {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return NotFoundError("no such request");
  }
  const uint32_t index = it->second;
  const Entry& entry = slots_[index].entry;
  auto& bucket = buckets_[{ResourceIndex(entry.descriptor.resource), entry.app}];
  bucket.erase(std::find(bucket.begin(), bucket.end(), index));
  Release(index);
  return OkStatus();
}

std::vector<RequestTable::Entry> RequestTable::TakeViolated(ResourceId resource, AppId app,
                                                            double level) {
  const auto bucket_it = buckets_.find({ResourceIndex(resource), app});
  if (bucket_it == buckets_.end()) {
    return {};
  }
  std::vector<uint32_t>& bucket = bucket_it->second;
  std::vector<uint32_t> violated;
  size_t keep = 0;
  for (const uint32_t index : bucket) {
    if (Violates(slots_[index].entry.descriptor, level)) {
      violated.push_back(index);
    } else {
      bucket[keep++] = index;
    }
  }
  bucket.resize(keep);
  // Slot recycling scrambles in-bucket index order; the observable contract
  // is ascending id (the order the old full-scan map iteration produced).
  std::sort(violated.begin(), violated.end(), [this](uint32_t a, uint32_t b) {
    return slots_[a].entry.id < slots_[b].entry.id;
  });
  std::vector<Entry> result;
  result.reserve(violated.size());
  for (const uint32_t index : violated) {
    // Moving the entry only pilfers the handler closure; the scalar fields
    // Release() keys its index erasures on are still intact.
    result.push_back(std::move(slots_[index].entry));
    Release(index);
  }
  return result;
}

std::vector<RequestTable::Entry> RequestTable::EntriesFor(AppId app, ResourceId resource) const {
  const auto bucket_it = buckets_.find({ResourceIndex(resource), app});
  if (bucket_it == buckets_.end()) {
    return {};
  }
  std::vector<Entry> matching;
  matching.reserve(bucket_it->second.size());
  for (const uint32_t index : bucket_it->second) {
    matching.push_back(slots_[index].entry);
  }
  std::sort(matching.begin(), matching.end(),
            [](const Entry& a, const Entry& b) { return a.id < b.id; });
  return matching;
}

void RequestTable::CollectViolatedApps(ResourceId resource, double level,
                                       std::vector<AppId>* out) const {
  // The index is class-contiguous, so "the whole table" is one scoped scan
  // per live class.
  for (const auto& [klass, count] : class_counts_[ResourceIndex(resource)]) {
    (void)count;
    CollectViolatedApps(resource, klass, level, out);
  }
}

void RequestTable::CollectViolatedApps(ResourceId resource, uint32_t klass, double level,
                                       std::vector<AppId>* out) const {
  const size_t r = ResourceIndex(resource);
  // Windows with lower > level: everything past (klass, level, max id) up
  // to the end of the class's key range in the lower-bound order.
  const auto& lower = lower_index_[r];
  for (auto it =
           lower.upper_bound(BoundKey{klass, level, std::numeric_limits<RequestId>::max()});
       it != lower.end() && std::get<0>(it->first) == klass; ++it) {
    out->push_back(slots_[it->second].entry.app);
  }
  // Windows with upper < level: everything in the class's range before
  // (klass, level, 0) in the upper-bound order.
  const auto& upper = upper_index_[r];
  const auto stop = upper.lower_bound(BoundKey{klass, level, 0});
  for (auto it =
           upper.lower_bound(BoundKey{klass, -std::numeric_limits<double>::infinity(), 0});
       it != stop; ++it) {
    out->push_back(slots_[it->second].entry.app);
  }
}

}  // namespace odyssey

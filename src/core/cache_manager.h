// Disk-cache space management (Figure 3c: Disk Cache Space, kilobytes).
//
// Wardens cache data from servers (§3.2); the cache manager arbitrates the
// client's limited disk between them and keeps the viceroy's disk-cache
// level current with the remaining free space, so applications (or wardens
// on their behalf) can be told when cache pressure changes the calculus of
// "compressing a cached item versus flushing it and refetching it later"
// (§3.2).

#ifndef SRC_CORE_CACHE_MANAGER_H_
#define SRC_CORE_CACHE_MANAGER_H_

#include "src/core/viceroy.h"

namespace odyssey {

class CacheManager {
 public:
  // |capacity_kb| is the client's cache partition; the viceroy's
  // kDiskCacheSpace level reports the free portion.
  CacheManager(Viceroy* viceroy, double capacity_kb);

  CacheManager(const CacheManager&) = delete;
  CacheManager& operator=(const CacheManager&) = delete;

  // Reserves |kb| of cache; false (and no change) if it does not fit.
  bool Reserve(double kb);
  // Returns |kb| of cache; over-release is clamped.
  void Release(double kb);

  double capacity_kb() const { return capacity_kb_; }
  double used_kb() const { return used_kb_; }
  double free_kb() const { return capacity_kb_ - used_kb_; }

 private:
  void Publish();

  Viceroy* viceroy_;
  double capacity_kb_;
  double used_kb_ = 0.0;
};

}  // namespace odyssey

#endif  // SRC_CORE_CACHE_MANAGER_H_

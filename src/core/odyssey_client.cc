#include "src/core/odyssey_client.h"

#include <utility>

namespace odyssey {

OdysseyClient::OdysseyClient(Simulation* sim, Link* link,
                             std::unique_ptr<BandwidthStrategy> strategy,
                             Duration upcall_latency)
    : sim_(sim), link_(link), viceroy_(sim, std::move(strategy), upcall_latency) {}

OdysseyClient::~OdysseyClient() {
  for (const auto& endpoint : endpoints_) {
    viceroy_.DetachConnection(endpoint.get());
  }
}

Warden* OdysseyClient::InstallWarden(std::unique_ptr<Warden> warden) {
  Warden* raw = warden.get();
  const Status status = namespace_.Install(raw);
  if (!status.ok()) {
    return nullptr;
  }
  wardens_.push_back(std::move(warden));
  raw->Attach(this);
  return raw;
}

AppId OdysseyClient::RegisterApplication(std::string name) {
  return viceroy_.RegisterApplication(std::move(name));
}

Endpoint* OdysseyClient::OpenConnection(AppId app, const std::string& service_name) {
  endpoints_.push_back(std::make_unique<Endpoint>(sim_, link_, service_name));
  Endpoint* endpoint = endpoints_.back().get();
  endpoint->set_retry_policy(retry_policy_);
  endpoint->set_fault_injector(fault_injector_);
  viceroy_.AttachConnection(app, endpoint);
  if (connection_observer_) {
    connection_observer_(endpoint, service_name);
  }
  return endpoint;
}

void OdysseyClient::set_retry_policy(const RetryPolicy& policy) {
  retry_policy_ = policy;
  for (auto& endpoint : endpoints_) {
    endpoint->set_retry_policy(policy);
  }
}

void OdysseyClient::set_fault_injector(FaultInjector* injector) {
  fault_injector_ = injector;
  for (auto& endpoint : endpoints_) {
    endpoint->set_fault_injector(injector);
  }
}

RequestResult OdysseyClient::Request(AppId app, const ResourceDescriptor& descriptor) {
  return viceroy_.Request(app, descriptor);
}

RequestResult OdysseyClient::Request(AppId app, const std::string& path,
                                     const ResourceDescriptor& descriptor) {
  ObjectNamespace::Resolution resolution;
  if (!namespace_.Resolve(path, &resolution).ok()) {
    return RequestResult{};  // !ok, level 0: not an Odyssey object
  }
  return viceroy_.Request(app, descriptor);
}

RequestResult OdysseyClient::RequestFd(AppId app, OdysseyFd fd,
                                       const ResourceDescriptor& descriptor) {
  if (Lookup(app, fd) == nullptr) {
    return RequestResult{};
  }
  return viceroy_.Request(app, descriptor);
}

Status OdysseyClient::Cancel(RequestId id) { return viceroy_.Cancel(id); }

void OdysseyClient::Tsop(AppId app, const std::string& path, int opcode, const std::string& in,
                         Warden::TsopCallback done) {
  ObjectNamespace::Resolution resolution;
  const Status status = namespace_.Resolve(path, &resolution);
  if (!status.ok()) {
    done(status, "");
    return;
  }
  resolution.warden->Tsop(app, resolution.relative_path, opcode, in, std::move(done));
}

void OdysseyClient::Read(AppId app, const std::string& path, Warden::ReadCallback done) {
  ObjectNamespace::Resolution resolution;
  const Status status = namespace_.Resolve(path, &resolution);
  if (!status.ok()) {
    done(status, "");
    return;
  }
  resolution.warden->Read(app, resolution.relative_path, std::move(done));
}

void OdysseyClient::Write(AppId app, const std::string& path, std::string data,
                          Warden::WriteCallback done) {
  ObjectNamespace::Resolution resolution;
  const Status status = namespace_.Resolve(path, &resolution);
  if (!status.ok()) {
    done(status);
    return;
  }
  resolution.warden->Write(app, resolution.relative_path, std::move(data), std::move(done));
}

double OdysseyClient::CurrentLevel(AppId app, ResourceId resource) const {
  return viceroy_.CurrentLevel(app, resource);
}

OdysseyClient::OpenResult OdysseyClient::Open(AppId app, const std::string& path) {
  ObjectNamespace::Resolution resolution;
  const Status status = namespace_.Resolve(path, &resolution);
  if (!status.ok()) {
    return OpenResult{status, -1};
  }
  const OdysseyFd fd = next_fd_++;
  open_objects_[fd] = OpenObject{app, resolution.warden, resolution.relative_path};
  return OpenResult{OkStatus(), fd};
}

Status OdysseyClient::Close(AppId app, OdysseyFd fd) {
  const auto it = open_objects_.find(fd);
  if (it == open_objects_.end() || it->second.app != app) {
    return InvalidArgumentError("bad descriptor");
  }
  open_objects_.erase(it);
  return OkStatus();
}

const OdysseyClient::OpenObject* OdysseyClient::Lookup(AppId app, OdysseyFd fd) const {
  const auto it = open_objects_.find(fd);
  if (it == open_objects_.end() || it->second.app != app) {
    return nullptr;
  }
  return &it->second;
}

void OdysseyClient::TsopFd(AppId app, OdysseyFd fd, int opcode, const std::string& in,
                           Warden::TsopCallback done) {
  const OpenObject* object = Lookup(app, fd);
  if (object == nullptr) {
    done(InvalidArgumentError("bad descriptor"), "");
    return;
  }
  object->warden->Tsop(app, object->relative_path, opcode, in, std::move(done));
}

void OdysseyClient::ReadFd(AppId app, OdysseyFd fd, Warden::ReadCallback done) {
  const OpenObject* object = Lookup(app, fd);
  if (object == nullptr) {
    done(InvalidArgumentError("bad descriptor"), "");
    return;
  }
  object->warden->Read(app, object->relative_path, std::move(done));
}

void OdysseyClient::WriteFd(AppId app, OdysseyFd fd, std::string data,
                            Warden::WriteCallback done) {
  const OpenObject* object = Lookup(app, fd);
  if (object == nullptr) {
    done(InvalidArgumentError("bad descriptor"));
    return;
  }
  object->warden->Write(app, object->relative_path, std::move(data), std::move(done));
}

}  // namespace odyssey

// Battery-power management (Figure 3c: Battery Power, minutes).
//
// The paper's prototype managed only network bandwidth and planned to
// "broaden support for resource management to the full range of resources"
// (§8).  This model implements the battery entry: remaining lifetime in
// minutes drains with time and with network activity (radios dominate the
// power budget of 1990s mobile hardware), and the viceroy's battery level
// tracks it, so applications can register windows of tolerance on battery
// exactly as they do on bandwidth.

#ifndef SRC_CORE_BATTERY_MODEL_H_
#define SRC_CORE_BATTERY_MODEL_H_

#include "src/core/viceroy.h"
#include "src/net/link.h"
#include "src/sim/simulation.h"

namespace odyssey {

class BatteryModel {
 public:
  struct Config {
    // Lifetime at idle, in minutes.
    double capacity_minutes = 480.0;
    // How often the level is re-published to the viceroy.
    Duration update_period = 1 * kSecond;
    // Extra lifetime consumed per megabyte moved over the radio.  0.25
    // means every 4 MB of traffic costs a minute of battery.
    double network_minutes_per_mb = 0.25;
    // Idle drain: minutes of lifetime per minute of wall clock (1.0 =
    // nominal; heavier CPU-bound configurations can exceed it).
    double idle_drain_rate = 1.0;
  };

  BatteryModel(Simulation* sim, Viceroy* viceroy, Link* link, const Config& config);
  // Defaults (out of line: a nested Config's member initializers cannot be
  // used as an in-class default argument).
  BatteryModel(Simulation* sim, Viceroy* viceroy, Link* link);

  BatteryModel(const BatteryModel&) = delete;
  BatteryModel& operator=(const BatteryModel&) = delete;

  // Begins draining and publishing levels.
  void Start();

  double remaining_minutes() const { return remaining_minutes_; }
  bool exhausted() const { return remaining_minutes_ <= 0.0; }

 private:
  void Tick();

  Simulation* sim_;
  Viceroy* viceroy_;
  Link* link_;
  Config config_;
  double remaining_minutes_;
  Time last_tick_ = 0;
  double last_bytes_ = 0.0;
  bool started_ = false;
};

}  // namespace odyssey

#endif  // SRC_CORE_BATTERY_MODEL_H_

// Runtime contract checks for Odyssey's load-bearing invariants.
//
// The correctness claims of the reproduction are invariants — exactly-once
// in-order upcalls, monotone simulated time, seeded determinism, non-negative
// byte accounting — and this header turns them into machine-enforced checks:
//
//   ODY_ASSERT(cond, "msg")   checked in every build type; aborts on failure.
//   ODY_DCHECK(cond, "msg")   checked unless NDEBUG (Debug and sanitizer
//                             builds); compiles to nothing on release hot
//                             paths, but the condition must still parse.
//   ODY_UNREACHABLE("msg")    marks control flow that must never execute;
//                             always aborts if reached.
//
// Failures print the condition, file:line, and the optional message to
// stderr before aborting, so a violated invariant dies loudly at the point
// of violation instead of corrupting a trial silently.  The message, when
// given, must be a string literal.

#ifndef SRC_CORE_CONTRACT_H_
#define SRC_CORE_CONTRACT_H_

#include <cstdio>
#include <cstdlib>

namespace odyssey {
namespace internal {

[[noreturn]] inline void ContractFailure(const char* kind, const char* condition,
                                         const char* file, int line, const char* message) {
  std::fprintf(stderr, "%s failed: %s (%s:%d)%s%s\n", kind, condition, file, line,
               message[0] != '\0' ? ": " : "", message);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace odyssey

#if defined(__GNUC__) || defined(__clang__)
#define ODY_PREDICT_TRUE(x) (__builtin_expect(static_cast<bool>(x), true))
#else
#define ODY_PREDICT_TRUE(x) (static_cast<bool>(x))
#endif

// Always-on invariant check.  The optional second argument is a string
// literal appended to the failure report ("" if omitted).
#define ODY_ASSERT(condition, ...)                                                      \
  (ODY_PREDICT_TRUE(condition)                                                          \
       ? static_cast<void>(0)                                                           \
       : ::odyssey::internal::ContractFailure("ODY_ASSERT", #condition, __FILE__,       \
                                              __LINE__, "" __VA_ARGS__))

// Debug-only invariant check for hot paths.  Under NDEBUG the condition is
// parsed (sizeof) but never evaluated, so checks are free in Release while
// still failing to compile if they rot.
#ifndef NDEBUG
#define ODY_DCHECK(condition, ...)                                                      \
  (ODY_PREDICT_TRUE(condition)                                                          \
       ? static_cast<void>(0)                                                           \
       : ::odyssey::internal::ContractFailure("ODY_DCHECK", #condition, __FILE__,       \
                                              __LINE__, "" __VA_ARGS__))
#else
#define ODY_DCHECK(condition, ...) \
  static_cast<void>(sizeof(static_cast<bool>(condition) ? 1 : 0))
#endif

// Marks control flow that must never be reached (e.g. an exhaustive switch's
// default).  Always aborts, in every build type.
#define ODY_UNREACHABLE(...)                                                            \
  ::odyssey::internal::ContractFailure("ODY_UNREACHABLE", "reached unreachable code",   \
                                       __FILE__, __LINE__, "" __VA_ARGS__)

#endif  // SRC_CORE_CONTRACT_H_

// Runtime contract checks for Odyssey's load-bearing invariants.
//
// The correctness claims of the reproduction are invariants — exactly-once
// in-order upcalls, monotone simulated time, seeded determinism, non-negative
// byte accounting — and this header turns them into machine-enforced checks:
//
//   ODY_ASSERT(cond, "msg")   checked in every build type; aborts on failure.
//   ODY_DCHECK(cond, "msg")   checked unless NDEBUG (Debug and sanitizer
//                             builds); compiles to nothing on release hot
//                             paths, but the condition must still parse.
//   ODY_UNREACHABLE("msg")    marks control flow that must never execute;
//                             always aborts if reached.
//
// Failures print the condition, file:line, and the optional message to
// stderr before aborting, so a violated invariant dies loudly at the point
// of violation instead of corrupting a trial silently.  The message, when
// given, must be a string literal.
//
// The second half of the header is the odysan thread-safety vocabulary
// (DESIGN.md §13): ODY_CAPABILITY / ODY_GUARDED_BY / ODY_REQUIRES /
// ODY_EXCLUDES and friends map onto Clang's thread-safety-analysis
// attributes, so a CI build with clang++ and -Wthread-safety -Werror proves
// every annotated mutex acquisition statically.  Under other compilers the
// macros expand to nothing; they are documentation there, never semantics.

#ifndef SRC_CORE_CONTRACT_H_
#define SRC_CORE_CONTRACT_H_

#include <cstdio>
#include <cstdlib>

namespace odyssey {
namespace internal {

[[noreturn]] inline void ContractFailure(const char* kind, const char* condition,
                                         const char* file, int line, const char* message) {
  std::fprintf(stderr, "%s failed: %s (%s:%d)%s%s\n", kind, condition, file, line,
               message[0] != '\0' ? ": " : "", message);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace odyssey

#if defined(__GNUC__) || defined(__clang__)
#define ODY_PREDICT_TRUE(x) (__builtin_expect(static_cast<bool>(x), true))
#else
#define ODY_PREDICT_TRUE(x) (static_cast<bool>(x))
#endif

// Always-on invariant check.  The optional second argument is a string
// literal appended to the failure report ("" if omitted).
#define ODY_ASSERT(condition, ...)                                                      \
  (ODY_PREDICT_TRUE(condition)                                                          \
       ? static_cast<void>(0)                                                           \
       : ::odyssey::internal::ContractFailure("ODY_ASSERT", #condition, __FILE__,       \
                                              __LINE__, "" __VA_ARGS__))

// Debug-only invariant check for hot paths.  Under NDEBUG the condition is
// parsed (sizeof) but never evaluated, so checks are free in Release while
// still failing to compile if they rot.
#ifndef NDEBUG
#define ODY_DCHECK(condition, ...)                                                      \
  (ODY_PREDICT_TRUE(condition)                                                          \
       ? static_cast<void>(0)                                                           \
       : ::odyssey::internal::ContractFailure("ODY_DCHECK", #condition, __FILE__,       \
                                              __LINE__, "" __VA_ARGS__))
#else
#define ODY_DCHECK(condition, ...) \
  static_cast<void>(sizeof(static_cast<bool>(condition) ? 1 : 0))
#endif

// Marks control flow that must never be reached (e.g. an exhaustive switch's
// default).  Always aborts, in every build type.
#define ODY_UNREACHABLE(...)                                                            \
  ::odyssey::internal::ContractFailure("ODY_UNREACHABLE", "reached unreachable code",   \
                                       __FILE__, __LINE__, "" __VA_ARGS__)

// --- Thread-safety annotations (Clang thread-safety analysis) ---------------
//
// Apply to the shared mutable state of the harness (the only threaded layer;
// see src/harness/worker_pool.h).  The capability model:
//
//   class ODY_CAPABILITY("mutex") Mutex { ... };      a lockable capability
//   int count_ ODY_GUARDED_BY(mu_);                   reads/writes need mu_
//   void Drain() ODY_REQUIRES(mu_);                   caller must hold mu_
//   void Join() ODY_EXCLUDES(mu_);                    caller must NOT hold mu_
//
// src/core/sync.h provides the annotated Mutex/MutexLock/CondVar wrappers
// these attach to.  Only Clang implements the analysis; elsewhere every
// macro vanishes, so annotated code builds identically under GCC/MSVC.

#if defined(__clang__) && (!defined(SWIG))
#define ODY_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define ODY_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

// Declares a type to be a capability (a lockable resource).
#define ODY_CAPABILITY(x) ODY_THREAD_ANNOTATION_(capability(x))
// Declares an RAII type that acquires a capability for its lifetime.
#define ODY_SCOPED_CAPABILITY ODY_THREAD_ANNOTATION_(scoped_lockable)
// Data members: reads and writes require the capability to be held.
#define ODY_GUARDED_BY(x) ODY_THREAD_ANNOTATION_(guarded_by(x))
// Pointer members: the pointed-to data requires the capability.
#define ODY_PT_GUARDED_BY(x) ODY_THREAD_ANNOTATION_(pt_guarded_by(x))
// Functions: the caller must hold (or must not hold) the capabilities.
#define ODY_REQUIRES(...) ODY_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define ODY_EXCLUDES(...) ODY_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
// Functions that acquire / release capabilities themselves.
#define ODY_ACQUIRE(...) ODY_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ODY_RELEASE(...) ODY_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define ODY_TRY_ACQUIRE(...) ODY_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
// Escape hatch for code the analysis cannot model; every use must carry a
// comment explaining why the access is safe.
#define ODY_NO_THREAD_SAFETY_ANALYSIS ODY_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // SRC_CORE_CONTRACT_H_

#include "src/core/money_meter.h"

namespace odyssey {

MoneyMeter::MoneyMeter(Simulation* sim, Viceroy* viceroy, Link* link, const Config& config)
    : sim_(sim),
      viceroy_(viceroy),
      link_(link),
      config_(config),
      remaining_cents_(config.budget_cents) {}

MoneyMeter::MoneyMeter(Simulation* sim, Viceroy* viceroy, Link* link)
    : MoneyMeter(sim, viceroy, link, Config()) {}

void MoneyMeter::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  last_bytes_ = link_->bytes_delivered();
  viceroy_->SetStaticLevel(ResourceId::kMoney, remaining_cents_);
  sim_->Schedule(config_.update_period, [this] { Tick(); });
}

void MoneyMeter::Tick() {
  const double bytes = link_->bytes_delivered();
  const double moved_mb = (bytes - last_bytes_) / (1024.0 * 1024.0);
  last_bytes_ = bytes;
  remaining_cents_ -= moved_mb * config_.cents_per_mb;
  if (remaining_cents_ < 0.0) {
    remaining_cents_ = 0.0;
  }
  viceroy_->SetStaticLevel(ResourceId::kMoney, remaining_cents_);
  if (remaining_cents_ > 0.0) {
    sim_->Schedule(config_.update_period, [this] { Tick(); });
  }
}

}  // namespace odyssey

// The warden base class (§3.2).
//
// A warden encapsulates the client-side, system-level support needed to
// manage one data type: it defines the type's fidelity levels, communicates
// with servers (applications never contact servers directly), caches data,
// and implements the type-specific operations (tsops) that applications use
// for access methods and fidelity changes.  Wardens execute in the same
// address space as the viceroy and interact with it through direct calls.
//
// Operations are asynchronous: completion callbacks fire in virtual time
// after the modeled network and compute delays.

#ifndef SRC_CORE_WARDEN_H_
#define SRC_CORE_WARDEN_H_

#include <functional>
#include <string>

#include "src/core/resource.h"
#include "src/core/status.h"

namespace odyssey {

class OdysseyClient;

class Warden {
 public:
  // Completion of a tsop: status plus the output buffer (in the spirit of
  // ioctl, an unstructured byte string; see src/core/tsop_codec.h).
  using TsopCallback = std::function<void(Status, std::string)>;
  // Completion of a read: status plus data.
  using ReadCallback = std::function<void(Status, std::string)>;
  // Completion of a write.
  using WriteCallback = std::function<void(Status)>;

  explicit Warden(std::string name) : name_(std::move(name)) {}
  virtual ~Warden() = default;

  Warden(const Warden&) = delete;
  Warden& operator=(const Warden&) = delete;

  // The warden's name, which is also its mount point: objects live under
  // /odyssey/<name>/...
  const std::string& name() const { return name_; }

  // Called once when the warden is installed into a client.  Override to
  // open server connections; always call the base implementation.
  virtual void Attach(OdysseyClient* client) { client_ = client; }

  // Type-specific operation on the object at |path| (relative to the mount
  // point).  The default rejects all opcodes.
  virtual void Tsop(AppId app, const std::string& path, int opcode, const std::string& in,
                    TsopCallback done);

  // Whole-object read, for types with natural byte-stream access.
  virtual void Read(AppId app, const std::string& path, ReadCallback done);

  // Whole-object write.
  virtual void Write(AppId app, const std::string& path, std::string data, WriteCallback done);

 protected:
  OdysseyClient* client() const { return client_; }

 private:
  std::string name_;
  OdysseyClient* client_ = nullptr;
};

}  // namespace odyssey

#endif  // SRC_CORE_WARDEN_H_

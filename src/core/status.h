// Error handling for the Odyssey API.
//
// The paper's system calls report errors through errno; we use a small
// Status value type instead of exceptions, keeping control flow explicit in
// event-driven code.

#ifndef SRC_CORE_STATUS_H_
#define SRC_CORE_STATUS_H_

#include <string>
#include <utility>

namespace odyssey {

enum class StatusCode {
  kOk = 0,
  // The resource is currently outside the requested window of tolerance
  // (§4.2: "an error code and the current available resource level are
  // returned").
  kOutOfBounds,
  kNotFound,
  kInvalidArgument,
  kUnsupported,
  kAlreadyExists,
  kUnavailable,
  // An RPC exhausted its per-call timeout and bounded retries (see
  // rpc::RetryPolicy); the transport gave up rather than hang.
  kDeadlineExceeded,
};

// Short name for a status code ("OK", "OUT_OF_BOUNDS", ...).
const char* StatusCodeName(StatusCode code);

// [[nodiscard]] on the class makes every function returning a Status by
// value warn (and, under ODYSSEY_WERROR, fail to compile) if the caller
// drops the result: each request/cancel answer must be consumed (§4.2).
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  explicit Status(StatusCode code, std::string message = "")
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    std::string out = StatusCodeName(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status UnsupportedError(std::string message) {
  return Status(StatusCode::kUnsupported, std::move(message));
}
inline Status OutOfBoundsError(std::string message) {
  return Status(StatusCode::kOutOfBounds, std::move(message));
}
inline Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
inline Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
inline Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}

}  // namespace odyssey

#endif  // SRC_CORE_STATUS_H_

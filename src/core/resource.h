// Generic resources and resource descriptors (Figure 3 of the paper).
//
// A resource descriptor names a resource, a window of tolerance on its
// availability, and the upcall handler to invoke when availability strays
// outside the window.  The prototype in the paper manages network bandwidth;
// this implementation manages the full Figure 3(c) table, with bandwidth and
// latency driven by passive estimation and the remainder by settable
// providers.

#ifndef SRC_CORE_RESOURCE_H_
#define SRC_CORE_RESOURCE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace odyssey {

// Identifies an application registered with the Odyssey client.
using AppId = uint64_t;

// Identifies a registered resource request (window of tolerance).
using RequestId = uint64_t;

// Figure 3(c): the generic resources Odyssey manages, with their units.
enum class ResourceId {
  kNetworkBandwidth,  // bytes/second
  kNetworkLatency,    // microseconds
  kDiskCacheSpace,    // kilobytes
  kCpu,               // SPECint95
  kBatteryPower,      // minutes
  kMoney,             // cents
};

inline constexpr ResourceId kAllResources[] = {
    ResourceId::kNetworkBandwidth, ResourceId::kNetworkLatency, ResourceId::kDiskCacheSpace,
    ResourceId::kCpu,              ResourceId::kBatteryPower,   ResourceId::kMoney,
};

// Human-readable resource name.
const char* ResourceName(ResourceId resource);
// Unit string from Figure 3(c).
const char* ResourceUnit(ResourceId resource);

// The upcall handler signature (Figure 3d): the request on whose behalf the
// upcall is delivered, the resource whose availability changed, and the new
// availability.
using UpcallHandler = std::function<void(RequestId, ResourceId, double)>;

// Figure 3(b): a resource descriptor.
struct ResourceDescriptor {
  ResourceId resource = ResourceId::kNetworkBandwidth;
  double lower = 0.0;
  double upper = std::numeric_limits<double>::max();
  UpcallHandler handler;
};

// Result of a request() call.  On kOk, |id| identifies the registration; on
// kOutOfBounds, |current_level| reports the available resource level so the
// application can pick a new fidelity and try again (§4.2).
struct [[nodiscard]] RequestResult {
  bool ok() const { return status_ok; }

  bool status_ok = false;
  RequestId id = 0;
  double current_level = 0.0;
};

}  // namespace odyssey

#endif  // SRC_CORE_RESOURCE_H_

// Generic resources and resource descriptors (Figure 3 of the paper).
//
// A resource descriptor names a resource, a window of tolerance on its
// availability, and the upcall handler to invoke when availability strays
// outside the window.  The prototype in the paper manages network bandwidth;
// this implementation manages the full Figure 3(c) table, with bandwidth and
// latency driven by passive estimation and the remainder by settable
// providers.

#ifndef SRC_CORE_RESOURCE_H_
#define SRC_CORE_RESOURCE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace odyssey {

// Identifies an application registered with the Odyssey client.
using AppId = uint64_t;

// Identifies a registered resource request (window of tolerance).
using RequestId = uint64_t;

// Figure 3(c): the generic resources Odyssey manages, with their units.
enum class ResourceId {
  kNetworkBandwidth,  // bytes/second
  kNetworkLatency,    // microseconds
  kDiskCacheSpace,    // kilobytes
  kCpu,               // SPECint95
  kBatteryPower,      // minutes
  kMoney,             // cents
};

inline constexpr ResourceId kAllResources[] = {
    ResourceId::kNetworkBandwidth, ResourceId::kNetworkLatency, ResourceId::kDiskCacheSpace,
    ResourceId::kCpu,              ResourceId::kBatteryPower,   ResourceId::kMoney,
};

// Human-readable resource name.
const char* ResourceName(ResourceId resource);
// Unit string from Figure 3(c).
const char* ResourceUnit(ResourceId resource);

// The upcall handler signature (Figure 3d): the request on whose behalf the
// upcall is delivered, the resource whose availability changed, and the new
// availability.
using UpcallHandler = std::function<void(RequestId, ResourceId, double)>;

// Figure 3(b): a resource descriptor.
struct ResourceDescriptor {
  ResourceId resource = ResourceId::kNetworkBandwidth;
  double lower = 0.0;
  double upper = std::numeric_limits<double>::max();
  UpcallHandler handler;
};

// Verdict of the admission check a window registration passes through when
// the installed bandwidth strategy implements QoS arbitration.  Strategies
// without admission control admit everything, so kAdmitted is the default.
enum class AdmissionVerdict {
  kAdmitted = 0,  // window registered at the requested fidelity
  kDegraded = 1,  // an existing window was pushed to a lower fidelity tier
  kRejected = 2,  // registration refused; nothing was registered
};

// Human-readable verdict name ("admit" / "degrade" / "reject").
const char* AdmissionVerdictName(AdmissionVerdict verdict);

// Structured outcome of one admission decision.  |reason| is a static
// string owned by the strategy ("ok", "over-committed", ...); |reason_code|
// is its stable numeric twin so trace events (which carry doubles) can
// record the decision.  |granted_level| is the availability the strategy
// believes the admitted window will see — informational, not a reservation.
struct AdmissionDecision {
  AdmissionVerdict verdict = AdmissionVerdict::kAdmitted;
  const char* reason = "ok";
  int reason_code = 0;
  double granted_level = 0.0;
};

// Result of a request() call.  On kOk, |id| identifies the registration; on
// kOutOfBounds, |current_level| reports the available resource level so the
// application can pick a new fidelity and try again (§4.2).  |admission|
// reports the arbitration verdict: a request can fail either because the
// current level sits outside the proposed window (the paper's Figure 3
// semantics, verdict stays kAdmitted) or because an admission-controlling
// strategy rejected it (verdict kRejected with a reason).
struct [[nodiscard]] RequestResult {
  bool ok() const { return status_ok; }

  bool status_ok = false;
  RequestId id = 0;
  double current_level = 0.0;
  AdmissionDecision admission;
};

}  // namespace odyssey

#endif  // SRC_CORE_RESOURCE_H_

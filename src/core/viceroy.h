// The viceroy: Odyssey's type-independent, centralized resource manager.
//
// The viceroy tracks resource availability (network bandwidth through a
// pluggable BandwidthStrategy; the other Figure 3(c) resources through
// settable levels), maintains the table of registered windows of tolerance,
// and generates upcalls when availability strays outside a window.  Wardens
// are subordinate to it; applications reach it through the OdysseyClient
// facade.

#ifndef SRC_CORE_VICEROY_H_
#define SRC_CORE_VICEROY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/bandwidth_strategy.h"
#include "src/core/request_table.h"
#include "src/core/resource.h"
#include "src/core/status.h"
#include "src/core/upcall.h"
#include "src/rpc/endpoint.h"
#include "src/sim/simulation.h"

namespace odyssey {

// How Reevaluate() finds the apps whose windows a change may have
// violated.  kIndexed consults the strategy's ReevalHint plus the request
// table's interval index and visits only candidate apps; kFullScan visits
// every registered app (the original behavior, kept as the reference side
// of the differential tests).  Both visit candidates in ascending AppId
// order and evaluate them with their real levels, and evaluating an app
// with no violated window posts nothing — so the two modes produce
// identical upcall sequences whenever the strategy's hint is exact.
enum class ReevaluateMode {
  kIndexed,
  kFullScan,
};

class Viceroy {
 public:
  // |strategy| decides bandwidth availability; |upcall_latency| models the
  // cost of delivering an upcall into an application.
  Viceroy(Simulation* sim, std::unique_ptr<BandwidthStrategy> strategy,
          Duration upcall_latency = 0);

  Viceroy(const Viceroy&) = delete;
  Viceroy& operator=(const Viceroy&) = delete;

  // Registers an application; the returned id scopes requests and upcalls.
  AppId RegisterApplication(std::string name);
  const std::string& ApplicationName(AppId app) const;

  // Wardens attach each server connection they open on behalf of an
  // application, so the strategy can observe and arbitrate it.
  void AttachConnection(AppId app, Endpoint* endpoint);
  void DetachConnection(Endpoint* endpoint);

  // The request system call (§4.2, Figure 3a).  If the resource is within
  // the window, registers it and returns ok with an id.  Otherwise returns
  // !ok with the current level; the caller is expected to try again with a
  // window appropriate to a new fidelity.
  RequestResult Request(AppId app, const ResourceDescriptor& descriptor);

  // The cancel system call: discards a registration.
  Status Cancel(RequestId id);

  // Current availability of |resource| as seen by |app|.
  double CurrentLevel(AppId app, ResourceId resource) const;

  // Whether the bandwidth strategy has produced any estimate yet.
  bool HasBandwidthEstimate() const { return strategy_->HasEstimate(); }

  // Sets the level of a statically managed resource (disk cache, CPU,
  // battery, money), triggering upcalls for any violated windows.
  void SetStaticLevel(ResourceId resource, double level);

  BandwidthStrategy& strategy() { return *strategy_; }
  const BandwidthStrategy& strategy() const { return *strategy_; }
  UpcallDispatcher& upcalls() { return upcalls_; }
  RequestTable& requests() { return requests_; }
  Simulation* sim() { return sim_; }

  // Forces re-evaluation of all registered windows (normally driven by the
  // strategy's change notifications).
  void Reevaluate();

  void set_reevaluate_mode(ReevaluateMode mode) { reevaluate_mode_ = mode; }
  ReevaluateMode reevaluate_mode() const { return reevaluate_mode_; }

 private:
  void EvaluateApp(AppId app, ResourceId resource, double level);
  void EvaluateCandidates();

  // The request-table class for |app|'s windows: its connection count.
  uint32_t WindowClassOf(AppId app) const;

  Simulation* sim_;
  std::unique_ptr<BandwidthStrategy> strategy_;
  UpcallDispatcher upcalls_;
  RequestTable requests_;
  std::map<AppId, std::string> apps_;
  std::map<ResourceId, double> static_levels_;
  AppId next_app_ = 1;
  ReevaluateMode reevaluate_mode_ = ReevaluateMode::kIndexed;
  // Candidate scratch, reused across re-evaluations to avoid reallocating
  // in the hot notification path.
  std::vector<AppId> candidates_;
};

}  // namespace odyssey

#endif  // SRC_CORE_VICEROY_H_

#include "src/core/warden.h"

namespace odyssey {

void Warden::Tsop(AppId app, const std::string& path, int opcode, const std::string& in,
                  TsopCallback done) {
  (void)app;
  (void)path;
  (void)opcode;
  (void)in;
  done(UnsupportedError("warden '" + name_ + "' defines no tsops"), "");
}

void Warden::Read(AppId app, const std::string& path, ReadCallback done) {
  (void)app;
  (void)path;
  done(UnsupportedError("warden '" + name_ + "' does not support read"), "");
}

void Warden::Write(AppId app, const std::string& path, std::string data, WriteCallback done) {
  (void)app;
  (void)path;
  (void)data;
  done(UnsupportedError("warden '" + name_ + "' does not support write"));
}

}  // namespace odyssey

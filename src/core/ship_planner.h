// Generic function-versus-data shipping decisions.
//
// §8: "The speech application suggests the importance of being able to
// dynamically decide whether to ship data or computation.  This capability
// is currently provided in an ad hoc manner by the speech warden.
// Extending Odyssey to provide full support for deciding between dynamic
// function or data shipping would enable us to more thoroughly explore this
// tradeoff."
//
// A ShipCandidate describes one way of splitting a computation between the
// mobile client and a server: how much compute runs on each side and how
// many bytes must move each way.  The planner predicts each candidate's
// completion time from the current bandwidth and round-trip estimates and
// picks the fastest feasible one.  The speech warden's hybrid/remote/local
// plans are three such candidates; any warden can define its own.

#ifndef SRC_CORE_SHIP_PLANNER_H_
#define SRC_CORE_SHIP_PLANNER_H_

#include <string>
#include <vector>

#include "src/sim/time.h"

namespace odyssey {

struct ShipCandidate {
  std::string name;
  // CPU time on the (slow) client.
  Duration local_compute = 0;
  // CPU time on the server.
  Duration remote_compute = 0;
  // Bytes shipped client -> server and server -> client.
  double upload_bytes = 0.0;
  double download_bytes = 0.0;
};

class ShipPlanner {
 public:
  // Predicted completion time of |candidate| at the given estimates.  A
  // candidate that moves data over a link with no bandwidth is infeasible
  // (max Duration).  Transfers are sequential with the compute phases, and
  // a candidate that touches the network pays one protocol round trip.
  static Duration Predict(const ShipCandidate& candidate, double bandwidth_bps, Duration rtt);

  // Index of the fastest feasible candidate; -1 if none is feasible.
  static int Choose(const std::vector<ShipCandidate>& candidates, double bandwidth_bps,
                    Duration rtt);

  // True if the candidate requires no network at all.
  static bool IsLocal(const ShipCandidate& candidate) {
    return candidate.upload_bytes <= 0.0 && candidate.download_bytes <= 0.0 &&
           candidate.remote_compute <= 0;
  }
};

}  // namespace odyssey

#endif  // SRC_CORE_SHIP_PLANNER_H_

#include "src/core/cache_manager.h"

namespace odyssey {

CacheManager::CacheManager(Viceroy* viceroy, double capacity_kb)
    : viceroy_(viceroy), capacity_kb_(capacity_kb) {
  Publish();
}

bool CacheManager::Reserve(double kb) {
  if (kb < 0.0 || used_kb_ + kb > capacity_kb_) {
    return false;
  }
  used_kb_ += kb;
  Publish();
  return true;
}

void CacheManager::Release(double kb) {
  used_kb_ -= kb;
  if (used_kb_ < 0.0) {
    used_kb_ = 0.0;
  }
  Publish();
}

void CacheManager::Publish() {
  viceroy_->SetStaticLevel(ResourceId::kDiskCacheSpace, free_kb());
}

}  // namespace odyssey

#include "src/core/viceroy.h"

#include <algorithm>
#include <utility>

#include "src/core/contract.h"
#include "src/strategies/arbitration_strategy.h"
#include "src/trace/trace_macros.h"

namespace odyssey {
namespace {

// Default levels for the statically managed resources of Figure 3(c).
// Battery: 8 hours; disk cache: 64 MB; CPU: a 90 MHz Pentium is roughly
// 2.9 SPECint95; money: a modest per-session budget.
constexpr double kDefaultDiskCacheKb = 64.0 * 1024.0;
constexpr double kDefaultCpuSpecint = 2.9;
constexpr double kDefaultBatteryMinutes = 480.0;
constexpr double kDefaultMoneyCents = 25.0;

}  // namespace

Viceroy::Viceroy(Simulation* sim, std::unique_ptr<BandwidthStrategy> strategy,
                 Duration upcall_latency)
    : sim_(sim), strategy_(std::move(strategy)), upcalls_(sim, upcall_latency) {
  static_levels_[ResourceId::kDiskCacheSpace] = kDefaultDiskCacheKb;
  static_levels_[ResourceId::kCpu] = kDefaultCpuSpecint;
  static_levels_[ResourceId::kBatteryPower] = kDefaultBatteryMinutes;
  static_levels_[ResourceId::kMoney] = kDefaultMoneyCents;
  strategy_->SetChangeCallback([this] { Reevaluate(); });
}

AppId Viceroy::RegisterApplication(std::string name) {
  const AppId id = next_app_++;
  apps_[id] = std::move(name);
  return id;
}

const std::string& Viceroy::ApplicationName(AppId app) const {
  static const std::string kUnknown = "<unknown>";
  const auto it = apps_.find(app);
  return it == apps_.end() ? kUnknown : it->second;
}

void Viceroy::AttachConnection(AppId app, Endpoint* endpoint) {
  strategy_->AttachConnection(app, endpoint);
  // Window classes track the owner's connection count (see Request), so an
  // attach moves the app's existing windows to the new count's class.
  requests_.Reclassify(app, WindowClassOf(app));
}

void Viceroy::DetachConnection(Endpoint* endpoint) {
  const AppId app = strategy_->OwnerOf(endpoint->id());
  strategy_->DetachConnection(endpoint);
  if (app != 0) {
    requests_.Reclassify(app, WindowClassOf(app));
  }
}

uint32_t Viceroy::WindowClassOf(AppId app) const {
  const int count = strategy_->ConnectionCountFor(app);
  return count > 0 ? static_cast<uint32_t>(count) : 0;
}

RequestResult Viceroy::Request(AppId app, const ResourceDescriptor& descriptor) {
  // A window of tolerance is an interval (Figure 3b); an inverted one is a
  // caller bug that would make every level "out of bounds".
  ODY_DCHECK(descriptor.lower <= descriptor.upper, "inverted window of tolerance");
  RequestResult result;
  result.current_level = CurrentLevel(app, descriptor.resource);
  if (result.current_level < descriptor.lower || result.current_level > descriptor.upper) {
    result.status_ok = false;
    ODY_TRACE_INSTANT2(sim_->trace(), kViceroy, "request_denied", sim_->now(), app, "resource",
                       static_cast<int>(descriptor.resource), "level", result.current_level);
    return result;
  }
  // The level fits the window; an admission-controlling strategy now gets
  // exactly one decision per registration attempt for bandwidth windows.
  ArbitrationStrategy* broker = strategy_->arbitration();
  if (broker != nullptr && descriptor.resource == ResourceId::kNetworkBandwidth) {
    result.admission = broker->DecideAdmission(app, descriptor, sim_->now());
    ODY_TRACE_INSTANT2(sim_->trace(), kViceroy, "admission_decision", sim_->now(), app, "verdict",
                       static_cast<int>(result.admission.verdict), "reason",
                       result.admission.reason_code);
    if (result.admission.verdict == AdmissionVerdict::kRejected) {
      result.status_ok = false;
      return result;
    }
  }
  result.status_ok = true;
  result.id = requests_.Register(app, descriptor, WindowClassOf(app));
  if (broker != nullptr) {
    broker->OnWindowRegistered(app, result.id, descriptor);
  }
  ODY_TRACE_INSTANT2(sim_->trace(), kViceroy, "request_granted", sim_->now(), app, "lower",
                     descriptor.lower, "upper", descriptor.upper);
  return result;
}

Status Viceroy::Cancel(RequestId id) {
  ODY_TRACE_INSTANT(sim_->trace(), kViceroy, "request_cancel", sim_->now(), id);
  const Status status = requests_.Cancel(id);
  if (status.ok()) {
    if (ArbitrationStrategy* broker = strategy_->arbitration()) {
      broker->OnWindowCancelled(id);
    }
  }
  return status;
}

double Viceroy::CurrentLevel(AppId app, ResourceId resource) const {
  switch (resource) {
    case ResourceId::kNetworkBandwidth:
      return strategy_->AvailabilityFor(app, sim_->now());
    case ResourceId::kNetworkLatency:
      return static_cast<double>(strategy_->SmoothedRttFor(app));
    default: {
      const auto it = static_levels_.find(resource);
      return it == static_levels_.end() ? 0.0 : it->second;
    }
  }
}

void Viceroy::SetStaticLevel(ResourceId resource, double level) {
  if (resource == ResourceId::kNetworkBandwidth || resource == ResourceId::kNetworkLatency) {
    return;  // estimation-driven; not settable
  }
  static_levels_[resource] = level;
  ODY_TRACE_INSTANT1(sim_->trace(), kViceroy, "static_level", sim_->now(),
                     static_cast<uint64_t>(resource), "level", level);
  if (reevaluate_mode_ == ReevaluateMode::kIndexed) {
    // A static level is the same for every app, so the interval index
    // answers "whose windows does this violate" directly.
    candidates_.clear();
    requests_.CollectViolatedApps(resource, level, &candidates_);
    std::sort(candidates_.begin(), candidates_.end());
    candidates_.erase(std::unique(candidates_.begin(), candidates_.end()), candidates_.end());
    for (const AppId app : candidates_) {
      EvaluateApp(app, resource, level);
    }
    return;
  }
  for (const auto& [app, name] : apps_) {
    EvaluateApp(app, resource, level);
  }
}

void Viceroy::Reevaluate() {
  if (reevaluate_mode_ == ReevaluateMode::kIndexed) {
    ReevalHint hint = strategy_->TakeReevalHint(sim_->now());
    if (hint.exact) {
      candidates_.clear();
      candidates_.insert(candidates_.end(), hint.dirty.begin(), hint.dirty.end());
      // A non-dirty app sits exactly at the idle fair-share level for its
      // connection count, and its windows are indexed under that count as
      // their class — so each count's probe scans only its own class's
      // windows.  Probing whole-table instead would be sound (a superset;
      // evaluating a non-violated app posts nothing) but quadratic in
      // steady state: every bucket's level would sweep in all windows of
      // every *other* bucket, each re-evaluation.  The probe may still
      // return dirty apps (their windows share the class); dedup below.
      for (const auto& [count, level] : hint.idle_levels) {
        requests_.CollectViolatedApps(ResourceId::kNetworkBandwidth,
                                      static_cast<uint32_t>(count), level, &candidates_);
      }
      // Apps with no connections see the empty-sum level 0.0; their windows
      // sit in class 0, which apps_by_count_ never lists.
      requests_.CollectViolatedApps(ResourceId::kNetworkBandwidth, 0, 0.0, &candidates_);
      std::sort(candidates_.begin(), candidates_.end());
      candidates_.erase(std::unique(candidates_.begin(), candidates_.end()), candidates_.end());
      EvaluateCandidates();
      return;
    }
  }
  candidates_.clear();
  for (const auto& [app, name] : apps_) {
    candidates_.push_back(app);
  }
  EvaluateCandidates();
}

// Evaluates candidates_ in ascending AppId order with their real levels,
// bandwidth before latency per app — the same visit order as the original
// all-apps loop, restricted to the candidate set.
void Viceroy::EvaluateCandidates() {
  for (const AppId app : candidates_) {
    EvaluateApp(app, ResourceId::kNetworkBandwidth,
                strategy_->AvailabilityFor(app, sim_->now()));
    EvaluateApp(app, ResourceId::kNetworkLatency,
                static_cast<double>(strategy_->SmoothedRttFor(app)));
  }
}

void Viceroy::EvaluateApp(AppId app, ResourceId resource, double level) {
  // Availability is a physical quantity (bytes/s, microseconds, kilobytes,
  // ...); a negative level means an estimator or accounting bug upstream.
  ODY_DCHECK(level >= 0.0, "negative resource availability");
  ArbitrationStrategy* broker = strategy_->arbitration();
  for (const auto& entry : requests_.TakeViolated(resource, app, level)) {
    // Windows of tolerance are one-shot: taking one out of the table to
    // deliver its upcall releases any admission commitment behind it.
    if (broker != nullptr) {
      broker->OnWindowConsumed(entry.id);
    }
    const uint64_t seq = upcalls_.Post(app, entry.id, resource, level, entry.descriptor.handler);
    ODY_DCHECK(seq > upcalls_.last_delivered_seq(app), "posted upcall not ahead of deliveries");
  }
}

}  // namespace odyssey

// The Odyssey namespace and in-kernel interceptor (§4.1, Figure 2).
//
// Operations on Odyssey objects are redirected to the viceroy by a small
// interceptor; here that is a path router.  Objects are named
// /odyssey/<warden>/<object-path>; the router resolves a full path to the
// responsible warden and the warden-relative remainder.

#ifndef SRC_CORE_OBJECT_NAMESPACE_H_
#define SRC_CORE_OBJECT_NAMESPACE_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/status.h"
#include "src/core/warden.h"

namespace odyssey {

inline constexpr char kOdysseyRoot[] = "/odyssey/";

class ObjectNamespace {
 public:
  // Mounts |warden| at /odyssey/<warden->name()>.  Fails if the name is
  // taken.
  Status Install(Warden* warden);

  struct Resolution {
    Warden* warden = nullptr;
    std::string relative_path;  // remainder after the mount point
  };

  // Resolves |path| to a warden.  kNotFound for paths outside /odyssey or
  // with no installed warden.
  Status Resolve(const std::string& path, Resolution* out) const;

  // True if |path| names an Odyssey object (lies under /odyssey/) —
  // the interceptor's redirect test.
  static bool IsOdysseyPath(const std::string& path);

  std::vector<std::string> WardenNames() const;

 private:
  std::map<std::string, Warden*> wardens_;
};

}  // namespace odyssey

#endif  // SRC_CORE_OBJECT_NAMESPACE_H_

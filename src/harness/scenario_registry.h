// The scenario registry: every figure and ablation as a named, enumerable
// experiment.
//
// A Scenario is a family of single-trial experiment bodies (its variants:
// one per cell of the figure's grid — a waveform, a strategy, a fidelity
// level).  Each variant's run function is shared-nothing: it builds its own
// Simulation from the seed it is handed and returns plain metric values, so
// the campaign runner may execute any set of variant trials concurrently
// and the result depends only on the seeds, never on scheduling.
//
// The registry is an ordinary value type, not a singleton: the campaign
// runner, the ody_bench CLI, and the tests each build one and populate it
// with RegisterBuiltinScenarios (builtin_scenarios.h), keeping the harness
// free of global mutable state.

#ifndef SRC_HARNESS_SCENARIO_REGISTRY_H_
#define SRC_HARNESS_SCENARIO_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/core/status.h"

namespace odyssey {

class TraceRecorder;

// How a metric's mean should be read by the regression gate.
enum class MetricDirection {
  kLowerIsBetter,   // latency, drops, settling time
  kHigherIsBetter,  // fidelity, goal-met percentage
  kEither,          // informational; never gates
};

// Stable short name ("lower", "higher", "either") used in artifacts.
const char* MetricDirectionName(MetricDirection direction);
// Inverse of MetricDirectionName; false if |name| is not a direction.
bool ParseMetricDirection(const std::string& name, MetricDirection* out);

// One measured value from one trial.
struct MetricValue {
  std::string name;
  double value = 0.0;
  MetricDirection direction = MetricDirection::kEither;
};

// Everything a trial reports.  Metric names and order must be identical
// across every trial of a variant (the aggregator checks).
using TrialMetrics = std::vector<MetricValue>;

// A single-trial experiment body.  |seed| fully determines the result;
// |trace| is null except for the one designated traced trial of a run.
using TrialFn = std::function<TrialMetrics(uint64_t seed, TraceRecorder* trace)>;

struct ScenarioVariant {
  std::string name;  // e.g. "step_up", "odyssey", "jpeg50_impulse_down"
  TrialFn run;
};

struct Scenario {
  std::string name;         // e.g. "fig10_video"
  std::string description;  // one line, shown by `ody_bench list`
  std::vector<ScenarioVariant> variants;

  // Variant lookup by name; null when absent.
  const ScenarioVariant* FindVariant(const std::string& variant_name) const;
};

class ScenarioRegistry {
 public:
  ScenarioRegistry() = default;

  // Adds |scenario|.  kInvalidArgument for an empty name, no variants, or a
  // duplicate variant name; kAlreadyExists if the scenario name is taken.
  Status Register(Scenario scenario);

  // Scenario lookup by name; null when absent.
  const Scenario* Find(const std::string& name) const;

  // Registered scenario names, sorted.
  std::vector<std::string> scenario_names() const;

  size_t size() const { return scenarios_.size(); }

 private:
  std::map<std::string, Scenario> scenarios_;
};

}  // namespace odyssey

#endif  // SRC_HARNESS_SCENARIO_REGISTRY_H_

// Registration of the built-in scenarios: one registry entry per figure
// and ablation of the evaluation, with one variant per cell of its grid.
//
// The nine bench binaries and the campaign runner draw on the same
// single-trial bodies in src/metrics/scenarios.h; registering them here
// makes every cell addressable by (scenario, variant) name so campaigns
// can sweep them and BENCH_*.json artifacts can gate regressions on them.

#ifndef SRC_HARNESS_BUILTIN_SCENARIOS_H_
#define SRC_HARNESS_BUILTIN_SCENARIOS_H_

#include "src/harness/scenario_registry.h"

namespace odyssey {

// Registers every built-in scenario into |registry|.  Asserts (via
// ODY_ASSERT) that registration succeeds — the built-in tables are static
// and a failure is a programming error, not an input error.
void RegisterBuiltinScenarios(ScenarioRegistry* registry);

}  // namespace odyssey

#endif  // SRC_HARNESS_BUILTIN_SCENARIOS_H_

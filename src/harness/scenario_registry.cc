#include "src/harness/scenario_registry.h"

#include <set>
#include <utility>

namespace odyssey {

const char* MetricDirectionName(MetricDirection direction) {
  switch (direction) {
    case MetricDirection::kLowerIsBetter:
      return "lower";
    case MetricDirection::kHigherIsBetter:
      return "higher";
    case MetricDirection::kEither:
      return "either";
  }
  return "either";
}

bool ParseMetricDirection(const std::string& name, MetricDirection* out) {
  if (name == "lower") {
    *out = MetricDirection::kLowerIsBetter;
    return true;
  }
  if (name == "higher") {
    *out = MetricDirection::kHigherIsBetter;
    return true;
  }
  if (name == "either") {
    *out = MetricDirection::kEither;
    return true;
  }
  return false;
}

const ScenarioVariant* Scenario::FindVariant(const std::string& variant_name) const {
  for (const ScenarioVariant& variant : variants) {
    if (variant.name == variant_name) {
      return &variant;
    }
  }
  return nullptr;
}

Status ScenarioRegistry::Register(Scenario scenario) {
  if (scenario.name.empty()) {
    return InvalidArgumentError("scenario has no name");
  }
  if (scenario.variants.empty()) {
    return InvalidArgumentError("scenario " + scenario.name + " has no variants");
  }
  std::set<std::string> seen;
  for (const ScenarioVariant& variant : scenario.variants) {
    if (variant.name.empty() || !variant.run) {
      return InvalidArgumentError("scenario " + scenario.name +
                                  " has an unnamed or empty variant");
    }
    if (!seen.insert(variant.name).second) {
      return InvalidArgumentError("scenario " + scenario.name + " repeats variant " +
                                  variant.name);
    }
  }
  const std::string name = scenario.name;
  if (!scenarios_.emplace(name, std::move(scenario)).second) {
    return AlreadyExistsError("scenario " + name + " already registered");
  }
  return OkStatus();
}

const Scenario* ScenarioRegistry::Find(const std::string& name) const {
  const auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

std::vector<std::string> ScenarioRegistry::scenario_names() const {
  std::vector<std::string> names;
  names.reserve(scenarios_.size());
  for (const auto& [name, scenario] : scenarios_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace odyssey

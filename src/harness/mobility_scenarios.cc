#include "src/harness/mobility_scenarios.h"

#include <utility>

#include "src/core/contract.h"
#include "src/metrics/scenarios.h"
#include "src/mobility/radio_environment.h"
#include "src/mobility/waveform_source.h"

namespace odyssey {
namespace {

void Add(ScenarioRegistry* registry, Scenario scenario) {
  const Status status = registry->Register(std::move(scenario));
  ODY_ASSERT(status.ok(), "mobility scenario registration failed");
}

// One named cell of the mobility grid.  Everything not listed here keeps
// the MobilityScenarioSpec defaults (1000x1000m arena, 120s at 500ms
// sampling, WaveLAN radio, live tail).
MobilityScenarioSpec Cell(MobilityModelKind model, BaseStationLayout layout, double speed_scale,
                          double memory) {
  MobilityScenarioSpec spec;
  spec.model = model;
  spec.layout = layout;
  spec.speed_scale = speed_scale;
  spec.memory = memory;
  return spec;
}

TrialMetrics TrackMetrics(const MobilityScenarioSpec& spec, uint64_t seed, TraceRecorder* trace) {
  const ReplayTrace waveform = MakeMobilityWaveform(spec, seed);
  const MobilityTrialResult result = RunMobilityTrackingTrial(waveform, seed, trace);
  return {
      {"tracking_error_pct", result.tracking_error_pct, MetricDirection::kLowerIsBetter},
      {"in_band_pct", result.in_band_pct, MetricDirection::kHigherIsBetter},
      {"shadow_seconds", result.shadow_seconds, MetricDirection::kEither},
      {"upcalls", static_cast<double>(result.upcalls), MetricDirection::kEither},
      {"upcall_latency_mean_ms", result.upcall_latency_mean_ms, MetricDirection::kLowerIsBetter},
      {"upcall_latency_max_ms", result.upcall_latency_max_ms, MetricDirection::kLowerIsBetter},
  };
}

void RegisterMobilityTracking(ScenarioRegistry* registry) {
  Scenario scenario;
  scenario.name = "mobility_track";
  scenario.description =
      "Mobility: adaptive tracking of motion-generated waveforms per model, layout and gait";
  struct NamedCell {
    const char* name;
    MobilityScenarioSpec spec;
  };
  const NamedCell cells[] = {
      // Pedestrian random waypoint: the classic evaluation gait, against a
      // lone cell (long fringe shadows) and a cell grid (edge flapping).
      {"rwp_walk_single",
       Cell(MobilityModelKind::kRandomWaypoint, BaseStationLayout::kSingleCell, 1.0, 0.75)},
      {"rwp_walk_grid",
       Cell(MobilityModelKind::kRandomWaypoint, BaseStationLayout::kCellGrid, 1.0, 0.75)},
      // A runner down a covered corridor: fast crossings between stations.
      {"rwp_sprint_corridor",
       Cell(MobilityModelKind::kRandomWaypoint, BaseStationLayout::kCorridor, 3.0, 0.75)},
      // Street-grid driving at 12 m/s; the crawl variant idles through
      // intersections slowly enough for the estimator to settle per block.
      {"manhattan_drive_grid",
       Cell(MobilityModelKind::kManhattanGrid, BaseStationLayout::kCellGrid, 1.0, 0.75)},
      {"manhattan_drive_corridor",
       Cell(MobilityModelKind::kManhattanGrid, BaseStationLayout::kCorridor, 1.0, 0.75)},
      {"manhattan_crawl_single",
       Cell(MobilityModelKind::kManhattanGrid, BaseStationLayout::kSingleCell, 0.25, 0.75)},
      // Gauss-Markov at the two ends of the memory knob: smooth arcs vs
      // near-Brownian jitter.
      {"gauss_markov_smooth_grid",
       Cell(MobilityModelKind::kGaussMarkov, BaseStationLayout::kCellGrid, 1.0, 0.9)},
      {"gauss_markov_jittery_single",
       Cell(MobilityModelKind::kGaussMarkov, BaseStationLayout::kSingleCell, 1.0, 0.3)},
      // The embedded vehicular trace: fixed motion, so only the radio seed
      // varies across trials.
      {"trace_drive_corridor",
       Cell(MobilityModelKind::kWaypointTrace, BaseStationLayout::kCorridor, 1.0, 0.75)},
      {"trace_drive_grid",
       Cell(MobilityModelKind::kWaypointTrace, BaseStationLayout::kCellGrid, 1.0, 0.75)},
  };
  for (const NamedCell& cell : cells) {
    scenario.variants.push_back(
        {cell.name, [spec = cell.spec](uint64_t seed, TraceRecorder* trace) {
           return TrackMetrics(spec, seed, trace);
         }});
  }
  Add(registry, std::move(scenario));
}

void RegisterMobilityWeb(ScenarioRegistry* registry) {
  Scenario scenario;
  scenario.name = "mobility_web";
  scenario.description = "Mobility: adaptive Web fetches over motion-generated waveforms";
  struct NamedCell {
    const char* name;
    MobilityScenarioSpec spec;
  };
  const NamedCell cells[] = {
      {"adaptive_manhattan_grid",
       Cell(MobilityModelKind::kManhattanGrid, BaseStationLayout::kCellGrid, 1.0, 0.75)},
      {"adaptive_rwp_single",
       Cell(MobilityModelKind::kRandomWaypoint, BaseStationLayout::kSingleCell, 1.0, 0.75)},
  };
  for (const NamedCell& cell : cells) {
    scenario.variants.push_back(
        {cell.name, [spec = cell.spec](uint64_t seed, TraceRecorder* trace) {
           const ReplayTrace waveform = MakeMobilityWaveform(spec, seed);
           const WebTrialResult result =
               RunWebTrial(waveform, /*fixed_level=*/-1, /*prime=*/true, seed, trace);
           return TrialMetrics{
               {"seconds", result.seconds, MetricDirection::kLowerIsBetter},
               {"fidelity", result.fidelity, MetricDirection::kHigherIsBetter},
           };
         }});
  }
  Add(registry, std::move(scenario));
}

}  // namespace

void RegisterMobilityScenarios(ScenarioRegistry* registry) {
  RegisterMobilityTracking(registry);
  RegisterMobilityWeb(registry);
}

}  // namespace odyssey

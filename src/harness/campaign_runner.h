// The campaign runner: expands a campaign into its trial plan and executes
// it on a fixed-size worker pool.
//
// Trials are shared-nothing (each builds its own Simulation from its
// derived seed) and results are written into slots indexed by plan
// position, so the collected CampaignResult is byte-for-byte identical for
// any worker count — `--jobs=4` must reproduce `--jobs=1` exactly, and the
// jobs-invariance test holds the runner to that.

#ifndef SRC_HARNESS_CAMPAIGN_RUNNER_H_
#define SRC_HARNESS_CAMPAIGN_RUNNER_H_

#include <vector>

#include "src/core/status.h"
#include "src/harness/campaign.h"
#include "src/harness/scenario_registry.h"

namespace odyssey {

struct CampaignRunOptions {
  // Worker threads; <= 1 runs every trial inline on the calling thread.
  int jobs = 1;
  // When set, the first planned trial runs with this recorder (one traced
  // exemplar per run keeps traces deterministic under any worker count).
  TraceRecorder* trace = nullptr;
};

// One executed trial: its plan cell plus the metrics it reported.
struct TrialOutcome {
  PlannedTrial plan;
  TrialMetrics metrics;
};

// A fully executed campaign, trials in plan order.
struct CampaignResult {
  CampaignSpec spec;
  std::vector<TrialOutcome> trials;
};

// Expands |spec| against |registry| and runs every planned trial on
// |options.jobs| workers.  Fails (without running anything) if expansion
// fails; otherwise |result| holds one outcome per planned trial, in plan
// order regardless of execution order.
Status RunCampaign(const CampaignSpec& spec, const ScenarioRegistry& registry,
                   const CampaignRunOptions& options, CampaignResult* result);

}  // namespace odyssey

#endif  // SRC_HARNESS_CAMPAIGN_RUNNER_H_

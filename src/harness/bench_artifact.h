// Bench artifacts: versioned JSON summaries of campaign runs, and the
// regression gate that compares two of them.
//
// AggregateCampaign folds per-trial metrics into per-variant summary
// statistics (mean/std/min/max/p50/p95/p99 via metrics/stats); ArtifactToJson
// serializes with hand-ordered keys and canonical number formatting so the
// bytes are a pure function of the campaign spec and seeds — the
// jobs-invariance guarantee is checked at this layer, by byte-comparing
// artifacts.  ParseArtifact reads one back (trace_json), and
// CompareArtifacts applies a direction-aware tolerance to every metric mean,
// which `ody_bench compare` turns into a CI exit code.

#ifndef SRC_HARNESS_BENCH_ARTIFACT_H_
#define SRC_HARNESS_BENCH_ARTIFACT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/status.h"
#include "src/harness/campaign_runner.h"
#include "src/harness/scenario_registry.h"
#include "src/metrics/stats.h"

namespace odyssey {

// Aggregated statistics for one metric of one scenario variant.
struct MetricSummary {
  std::string scenario;
  std::string variant;
  std::string metric;
  MetricDirection direction = MetricDirection::kEither;
  SummaryStats stats;
};

// Everything BENCH_<campaign>.json records.  Deliberately excludes
// wall-clock time and worker count: the artifact describes the experiment,
// not the machine it ran on, so identical specs yield identical bytes.
struct BenchArtifact {
  static constexpr int kSchemaVersion = 1;

  int schema_version = kSchemaVersion;
  std::string campaign;
  std::string description;
  uint64_t campaign_seed = 0;
  uint64_t trials = 0;  // total executed trials
  // Summaries in plan first-appearance order (scenario, then variant, then
  // each variant's metrics in trial-report order).
  std::vector<MetricSummary> metrics;
};

// Folds |result| into summary statistics.  kInvalidArgument if any trial of
// a variant reports metric names or order different from that variant's
// first trial — the per-trial schema is part of the scenario contract.
Status AggregateCampaign(const CampaignResult& result, BenchArtifact* artifact);

// Deterministic serialization: fixed key order, one metric object per line,
// canonical number formatting, campaign_seed as a decimal string (uint64
// does not survive a round-trip through double).
std::string ArtifactToJson(const BenchArtifact& artifact);

// Parses ArtifactToJson output (or a hand-edited baseline).
// kInvalidArgument on malformed JSON, a missing field, or an unsupported
// schema version.
Status ParseArtifact(const std::string& text, BenchArtifact* artifact);

// One metric's comparison verdict.
struct ComparisonRow {
  std::string scenario;
  std::string variant;
  std::string metric;
  MetricDirection direction = MetricDirection::kEither;
  double baseline_mean = 0.0;
  double current_mean = 0.0;
  double delta_pct = 0.0;  // signed change relative to the baseline mean
  bool regressed = false;
};

struct ComparisonReport {
  std::vector<ComparisonRow> rows;
  // Structural problems (campaign mismatch, metric missing from current);
  // any entry fails the comparison outright.
  std::vector<std::string> failures;

  bool HasRegression() const;
  // True when the gate passes: no structural failures and no regressed row.
  bool ok() const { return failures.empty() && !HasRegression(); }
};

// Compares every baseline metric against |current| with a direction-aware
// tolerance of |tolerance_pct| percent of the baseline mean: a
// lower-is-better mean may not rise above baseline + tolerance, a
// higher-is-better mean may not fall below baseline - tolerance, and
// kEither metrics never gate.  Metrics present only in |current| are
// ignored (adding a metric is not a regression).
ComparisonReport CompareArtifacts(const BenchArtifact& baseline, const BenchArtifact& current,
                                  double tolerance_pct);

}  // namespace odyssey

#endif  // SRC_HARNESS_BENCH_ARTIFACT_H_

#include "src/harness/campaign_runner.h"

#include <cstddef>

#include "src/core/contract.h"
#include "src/harness/worker_pool.h"

namespace odyssey {

Status RunCampaign(const CampaignSpec& spec, const ScenarioRegistry& registry,
                   const CampaignRunOptions& options, CampaignResult* result) {
  result->spec = spec;
  result->trials.clear();

  std::vector<PlannedTrial> plan;
  if (Status status = ExpandCampaign(spec, registry, &plan); !status.ok()) {
    return status;
  }

  // Resolve every variant before any trial runs: expansion already
  // validated the names, and after this loop the workers only ever read
  // the registry through stable pointers.
  std::vector<const ScenarioVariant*> variants;
  variants.reserve(plan.size());
  for (const PlannedTrial& trial : plan) {
    const Scenario* scenario = registry.Find(trial.scenario);
    ODY_ASSERT(scenario != nullptr, "expanded plan references unknown scenario");
    const ScenarioVariant* variant = scenario->FindVariant(trial.variant);
    ODY_ASSERT(variant != nullptr, "expanded plan references unknown variant");
    variants.push_back(variant);
  }

  // Pre-sized result slots: each worker writes only its own index, and the
  // collected order is the plan order no matter which worker finishes when.
  result->trials.resize(plan.size());
  for (size_t i = 0; i < plan.size(); ++i) {
    result->trials[i].plan = plan[i];
  }

  std::vector<TrialOutcome>& trials = result->trials;
  RunIndexedTasks(options.jobs, plan.size(), [&](size_t i) {
    TraceRecorder* trace = i == 0 ? options.trace : nullptr;
    trials[i].metrics = variants[i]->run(plan[i].seed, trace);
  });
  return OkStatus();
}

}  // namespace odyssey

// Mobility scenarios: named cells of the motion -> signal -> bandwidth
// pipeline (src/mobility, DESIGN.md §14), registered alongside the figure
// scenarios so campaigns can sweep them and BENCH_*.json artifacts can gate
// them.  Each variant fixes a (model, base-station layout, gait) cell; the
// trial seed picks the concrete track and shadowing, so trials of one cell
// drive different — but seed-reproducible — paths through the same world.

#ifndef SRC_HARNESS_MOBILITY_SCENARIOS_H_
#define SRC_HARNESS_MOBILITY_SCENARIOS_H_

#include "src/harness/scenario_registry.h"

namespace odyssey {

// Registers "mobility_track" (an adaptive bitstream consumer tracking a
// motion-generated waveform, ten model x layout x gait cells) and
// "mobility_web" (the Figure-11 browser over mobility waveforms).  Asserts
// (via ODY_ASSERT) that registration succeeds, like the builtin tables.
void RegisterMobilityScenarios(ScenarioRegistry* registry);

}  // namespace odyssey

#endif  // SRC_HARNESS_MOBILITY_SCENARIOS_H_

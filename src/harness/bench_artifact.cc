#include "src/harness/bench_artifact.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <map>
#include <utility>

#include "src/trace/trace_json.h"

namespace odyssey {
namespace {

// Key for grouping trials and for matching metrics across two artifacts.
std::string MetricKey(const std::string& scenario, const std::string& variant,
                      const std::string& metric) {
  return scenario + "/" + variant + "/" + metric;
}

void AppendStat(std::string* out, const char* name, double value, bool last = false) {
  out->append("\"");
  out->append(name);
  out->append("\": ");
  out->append(JsonNumberToString(value));
  if (!last) {
    out->append(", ");
  }
}

// Reads a required member of |object|, accumulating a description of the
// first problem into |error|.
const JsonValue* RequireMember(const JsonValue& object, const std::string& key,
                               JsonValue::Kind kind, const char* where, std::string* error) {
  if (!error->empty()) {
    return nullptr;
  }
  const JsonValue* member = object.Find(key);
  if (member == nullptr || member->kind() != kind) {
    *error = std::string(where) + " is missing or mistyped member \"" + key + "\"";
    return nullptr;
  }
  return member;
}

}  // namespace

bool ComparisonReport::HasRegression() const {
  for (const ComparisonRow& row : rows) {
    if (row.regressed) {
      return true;
    }
  }
  return false;
}

Status AggregateCampaign(const CampaignResult& result, BenchArtifact* artifact) {
  artifact->schema_version = BenchArtifact::kSchemaVersion;
  artifact->campaign = result.spec.name;
  artifact->description = result.spec.description;
  artifact->campaign_seed = result.spec.seed;
  artifact->trials = result.trials.size();
  artifact->metrics.clear();

  // Group trials by variant in plan first-appearance order, checking that
  // every trial of a variant reports the same metrics in the same order as
  // the variant's first trial.
  struct VariantSamples {
    const TrialOutcome* first = nullptr;              // defines the metric schema
    std::vector<std::vector<double>> metric_samples;  // one vector per metric
  };
  std::vector<std::string> variant_order;
  std::map<std::string, VariantSamples> by_variant;
  for (const TrialOutcome& outcome : result.trials) {
    const std::string key = outcome.plan.scenario + "/" + outcome.plan.variant;
    auto [it, inserted] = by_variant.try_emplace(key);
    VariantSamples& samples = it->second;
    if (inserted) {
      variant_order.push_back(key);
      samples.first = &outcome;
      samples.metric_samples.resize(outcome.metrics.size());
    } else {
      const TrialMetrics& schema = samples.first->metrics;
      if (outcome.metrics.size() != schema.size()) {
        return InvalidArgumentError("variant " + key +
                                    " reported a different metric count across trials");
      }
      for (size_t m = 0; m < schema.size(); ++m) {
        if (outcome.metrics[m].name != schema[m].name ||
            outcome.metrics[m].direction != schema[m].direction) {
          return InvalidArgumentError("variant " + key + " reported metric " +
                                      outcome.metrics[m].name + " where trial 0 reported " +
                                      schema[m].name);
        }
      }
    }
    for (size_t m = 0; m < outcome.metrics.size(); ++m) {
      samples.metric_samples[m].push_back(outcome.metrics[m].value);
    }
  }

  for (const std::string& key : variant_order) {
    const VariantSamples& samples = by_variant.at(key);
    const TrialOutcome& first = *samples.first;
    for (size_t m = 0; m < first.metrics.size(); ++m) {
      MetricSummary summary;
      summary.scenario = first.plan.scenario;
      summary.variant = first.plan.variant;
      summary.metric = first.metrics[m].name;
      summary.direction = first.metrics[m].direction;
      summary.stats = Summarize(samples.metric_samples[m]);
      artifact->metrics.push_back(std::move(summary));
    }
  }
  return OkStatus();
}

std::string ArtifactToJson(const BenchArtifact& artifact) {
  std::string out;
  out.append("{\n");
  out.append("  \"schema_version\": " + JsonNumberToString(artifact.schema_version) + ",\n");
  out.append("  \"campaign\": " + JsonQuote(artifact.campaign) + ",\n");
  out.append("  \"description\": " + JsonQuote(artifact.description) + ",\n");
  out.append("  \"campaign_seed\": " + JsonQuote(std::to_string(artifact.campaign_seed)) +
             ",\n");
  out.append("  \"trials\": " + JsonNumberToString(static_cast<double>(artifact.trials)) +
             ",\n");
  out.append("  \"metrics\": [");
  for (size_t i = 0; i < artifact.metrics.size(); ++i) {
    const MetricSummary& m = artifact.metrics[i];
    out.append(i == 0 ? "\n" : ",\n");
    out.append("    {");
    out.append("\"scenario\": " + JsonQuote(m.scenario) + ", ");
    out.append("\"variant\": " + JsonQuote(m.variant) + ", ");
    out.append("\"metric\": " + JsonQuote(m.metric) + ", ");
    out.append("\"direction\": " + JsonQuote(MetricDirectionName(m.direction)) + ", ");
    out.append("\"count\": " + JsonNumberToString(m.stats.count) + ", ");
    AppendStat(&out, "mean", m.stats.mean);
    AppendStat(&out, "stddev", m.stats.stddev);
    AppendStat(&out, "min", m.stats.min);
    AppendStat(&out, "max", m.stats.max);
    AppendStat(&out, "p50", m.stats.p50);
    AppendStat(&out, "p95", m.stats.p95);
    AppendStat(&out, "p99", m.stats.p99, /*last=*/true);
    out.append("}");
  }
  out.append(artifact.metrics.empty() ? "],\n" : "\n  ],\n");
  out.append("  \"generator\": \"ody_bench\"\n");
  out.append("}\n");
  return out;
}

Status ParseArtifact(const std::string& text, BenchArtifact* artifact) {
  std::string error;
  const JsonValue root = ParseJson(text, &error);
  if (!error.empty()) {
    return InvalidArgumentError("artifact is not valid JSON: " + error);
  }
  if (!root.is_object()) {
    return InvalidArgumentError("artifact root is not an object");
  }

  const JsonValue* version =
      RequireMember(root, "schema_version", JsonValue::Kind::kNumber, "artifact", &error);
  const JsonValue* campaign =
      RequireMember(root, "campaign", JsonValue::Kind::kString, "artifact", &error);
  const JsonValue* description =
      RequireMember(root, "description", JsonValue::Kind::kString, "artifact", &error);
  const JsonValue* seed =
      RequireMember(root, "campaign_seed", JsonValue::Kind::kString, "artifact", &error);
  const JsonValue* trials =
      RequireMember(root, "trials", JsonValue::Kind::kNumber, "artifact", &error);
  const JsonValue* metrics =
      RequireMember(root, "metrics", JsonValue::Kind::kArray, "artifact", &error);
  if (!error.empty()) {
    return InvalidArgumentError(error);
  }
  if (version->number_value() != BenchArtifact::kSchemaVersion) {
    return InvalidArgumentError("artifact schema_version " +
                                JsonNumberToString(version->number_value()) +
                                " is not the supported version " +
                                JsonNumberToString(BenchArtifact::kSchemaVersion));
  }

  artifact->schema_version = BenchArtifact::kSchemaVersion;
  artifact->campaign = campaign->string_value();
  artifact->description = description->string_value();
  errno = 0;
  char* end = nullptr;
  const std::string& seed_text = seed->string_value();
  const unsigned long long parsed_seed = std::strtoull(seed_text.c_str(), &end, 10);
  if (seed_text.empty() || end != seed_text.c_str() + seed_text.size() || errno == ERANGE) {
    return InvalidArgumentError("artifact campaign_seed \"" + seed_text +
                                "\" is not a decimal uint64");
  }
  artifact->campaign_seed = static_cast<uint64_t>(parsed_seed);
  artifact->trials = static_cast<uint64_t>(trials->number_value());

  artifact->metrics.clear();
  for (const JsonValue& entry : metrics->array_items()) {
    if (!entry.is_object()) {
      return InvalidArgumentError("artifact metrics entry is not an object");
    }
    const JsonValue* scenario =
        RequireMember(entry, "scenario", JsonValue::Kind::kString, "metric", &error);
    const JsonValue* variant =
        RequireMember(entry, "variant", JsonValue::Kind::kString, "metric", &error);
    const JsonValue* metric =
        RequireMember(entry, "metric", JsonValue::Kind::kString, "metric", &error);
    const JsonValue* direction =
        RequireMember(entry, "direction", JsonValue::Kind::kString, "metric", &error);
    const JsonValue* count =
        RequireMember(entry, "count", JsonValue::Kind::kNumber, "metric", &error);
    const JsonValue* mean =
        RequireMember(entry, "mean", JsonValue::Kind::kNumber, "metric", &error);
    const JsonValue* stddev =
        RequireMember(entry, "stddev", JsonValue::Kind::kNumber, "metric", &error);
    const JsonValue* min =
        RequireMember(entry, "min", JsonValue::Kind::kNumber, "metric", &error);
    const JsonValue* max =
        RequireMember(entry, "max", JsonValue::Kind::kNumber, "metric", &error);
    const JsonValue* p50 =
        RequireMember(entry, "p50", JsonValue::Kind::kNumber, "metric", &error);
    const JsonValue* p95 =
        RequireMember(entry, "p95", JsonValue::Kind::kNumber, "metric", &error);
    const JsonValue* p99 =
        RequireMember(entry, "p99", JsonValue::Kind::kNumber, "metric", &error);
    if (!error.empty()) {
      return InvalidArgumentError(error);
    }
    MetricSummary summary;
    summary.scenario = scenario->string_value();
    summary.variant = variant->string_value();
    summary.metric = metric->string_value();
    if (!ParseMetricDirection(direction->string_value(), &summary.direction)) {
      return InvalidArgumentError("metric " +
                                  MetricKey(summary.scenario, summary.variant, summary.metric) +
                                  " has unknown direction \"" + direction->string_value() +
                                  "\"");
    }
    summary.stats.count = static_cast<int>(count->number_value());
    summary.stats.mean = mean->number_value();
    summary.stats.stddev = stddev->number_value();
    summary.stats.min = min->number_value();
    summary.stats.max = max->number_value();
    summary.stats.p50 = p50->number_value();
    summary.stats.p95 = p95->number_value();
    summary.stats.p99 = p99->number_value();
    artifact->metrics.push_back(std::move(summary));
  }
  return OkStatus();
}

ComparisonReport CompareArtifacts(const BenchArtifact& baseline, const BenchArtifact& current,
                                  double tolerance_pct) {
  ComparisonReport report;
  if (baseline.campaign != current.campaign) {
    report.failures.push_back("campaign mismatch: baseline is \"" + baseline.campaign +
                              "\", current is \"" + current.campaign + "\"");
  }
  if (baseline.campaign_seed != current.campaign_seed) {
    report.failures.push_back("campaign_seed mismatch: baseline used " +
                              std::to_string(baseline.campaign_seed) + ", current used " +
                              std::to_string(current.campaign_seed));
  }

  std::map<std::string, const MetricSummary*> current_by_key;
  for (const MetricSummary& summary : current.metrics) {
    current_by_key[MetricKey(summary.scenario, summary.variant, summary.metric)] = &summary;
  }

  for (const MetricSummary& base : baseline.metrics) {
    const std::string key = MetricKey(base.scenario, base.variant, base.metric);
    auto it = current_by_key.find(key);
    if (it == current_by_key.end()) {
      report.failures.push_back("metric " + key + " is in the baseline but not the current run");
      continue;
    }
    const MetricSummary& cur = *it->second;
    if (cur.direction != base.direction) {
      report.failures.push_back("metric " + key + " changed direction (baseline " +
                                MetricDirectionName(base.direction) + ", current " +
                                MetricDirectionName(cur.direction) + ")");
      continue;
    }
    ComparisonRow row;
    row.scenario = base.scenario;
    row.variant = base.variant;
    row.metric = base.metric;
    row.direction = base.direction;
    row.baseline_mean = base.stats.mean;
    row.current_mean = cur.stats.mean;
    const double delta = cur.stats.mean - base.stats.mean;
    const double scale = std::abs(base.stats.mean);
    // Exact zero is deliberate: identical artifacts (the common CI case)
    // must report a delta of exactly 0%, never a rounded near-zero.
    // ody-lint: allow(float-equal)
    row.delta_pct = scale > 0.0 ? 100.0 * delta / scale : (delta == 0.0 ? 0.0 : 100.0);
    // The allowance is relative to the baseline mean, with a tiny absolute
    // floor so a zero baseline does not demand bit-exact equality.
    const double allowance = scale * tolerance_pct / 100.0 + 1e-12;
    switch (base.direction) {
      case MetricDirection::kLowerIsBetter:
        row.regressed = delta > allowance;
        break;
      case MetricDirection::kHigherIsBetter:
        row.regressed = -delta > allowance;
        break;
      case MetricDirection::kEither:
        row.regressed = false;
        break;
    }
    report.rows.push_back(row);
  }
  return report;
}

}  // namespace odyssey

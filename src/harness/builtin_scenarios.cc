#include "src/harness/builtin_scenarios.h"

#include <string>
#include <utility>
#include <vector>

#include "src/core/contract.h"
#include "src/harness/mobility_scenarios.h"
#include "src/metrics/scenarios.h"
#include "src/rpc/endpoint.h"

namespace odyssey {
namespace {

// Lowercase slug for variant names ("step_up"), unlike the display names
// WaveformName produces ("Step-Up").
const char* WaveformSlug(Waveform waveform) {
  switch (waveform) {
    case Waveform::kStepUp:
      return "step_up";
    case Waveform::kStepDown:
      return "step_down";
    case Waveform::kImpulseUp:
      return "impulse_up";
    case Waveform::kImpulseDown:
      return "impulse_down";
  }
  return "unknown";
}

// Nominal acceptance band around a theoretical level (the Figure 8 rule).
void Band(double nominal, double* lo, double* hi) {
  *lo = 0.85 * nominal;
  *hi = 1.15 * nominal;
}

void Add(ScenarioRegistry* registry, Scenario scenario) {
  const Status status = registry->Register(std::move(scenario));
  ODY_ASSERT(status.ok(), "builtin scenario registration failed");
}

// --- Figure 8: supply agility ---

TrialMetrics SupplyAgilityMetrics(Waveform waveform, uint64_t seed, TraceRecorder* trace) {
  const AgilityTrialResult result = RunSupplyAgilityTrial(waveform, seed, trace);
  const ReplayTrace replay = MakeWaveform(waveform);
  double lo = 0.0;
  double hi = 0.0;
  Band(replay.BandwidthAt(31 * kSecond), &lo, &hi);
  const double settle = SettlingTime(result.series, 30.0, lo, hi);
  TrialMetrics metrics{
      {"settle_s", settle, MetricDirection::kLowerIsBetter},
      {"upcall_latency_mean_ms", result.upcall_latency_mean_ms,
       MetricDirection::kLowerIsBetter},
      {"upcall_latency_max_ms", result.upcall_latency_max_ms, MetricDirection::kLowerIsBetter},
      {"upcalls", static_cast<double>(result.upcalls), MetricDirection::kEither},
  };
  if (waveform == Waveform::kImpulseUp || waveform == Waveform::kImpulseDown) {
    Band(replay.BandwidthAt(59 * kSecond), &lo, &hi);
    metrics.push_back(
        {"tail_settle_s", SettlingTime(result.series, 32.0, lo, hi),
         MetricDirection::kLowerIsBetter});
  }
  return metrics;
}

void RegisterSupplyAgility(ScenarioRegistry* registry) {
  Scenario scenario;
  scenario.name = "fig08_supply_agility";
  scenario.description = "Figure 8: supply estimate settling and upcall latency per waveform";
  for (const Waveform waveform : AllWaveforms()) {
    scenario.variants.push_back(
        {WaveformSlug(waveform), [waveform](uint64_t seed, TraceRecorder* trace) {
           return SupplyAgilityMetrics(waveform, seed, trace);
         }});
  }
  Add(registry, std::move(scenario));
}

// --- Figure 9: demand agility ---

TrialMetrics DemandAgilityMetrics(double utilization, uint64_t seed, TraceRecorder* trace) {
  const DemandTrialResult result = RunDemandAgilityTrial(utilization, seed, trace);
  double lo = 0.0;
  double hi = 0.0;
  Band(kHighBandwidth, &lo, &hi);
  const double total_settle = SettlingTime(result.total, 30.0, lo, hi);
  // Time for the second stream to reach 90% of its final share (Figure 9's
  // startup-transient measure).
  const double final_share =
      result.second_share.empty() ? 0.0 : result.second_share.back().value;
  double share_rise = -1.0;
  for (const SeriesPoint& point : result.second_share) {
    if (point.t_seconds >= 30.0 && point.value >= 0.9 * final_share) {
      share_rise = point.t_seconds - 30.0;
      break;
    }
  }
  return {
      {"total_settle_s", total_settle, MetricDirection::kLowerIsBetter},
      {"share_rise_s", share_rise, MetricDirection::kLowerIsBetter},
  };
}

void RegisterDemandAgility(ScenarioRegistry* registry) {
  Scenario scenario;
  scenario.name = "fig09_demand_agility";
  scenario.description =
      "Figure 9: second-stream startup transient at 10/45/100% utilization";
  const std::pair<const char*, double> cells[] = {
      {"util_10", 0.10}, {"util_45", 0.45}, {"util_100", 1.0}};
  for (const auto& [name, utilization] : cells) {
    scenario.variants.push_back({name, [utilization](uint64_t seed, TraceRecorder* trace) {
                                   return DemandAgilityMetrics(utilization, seed, trace);
                                 }});
  }
  Add(registry, std::move(scenario));
}

// --- Figure 10: video player ---

void RegisterVideo(ScenarioRegistry* registry) {
  Scenario scenario;
  scenario.name = "fig10_video";
  scenario.description = "Figure 10: video drops and fidelity per waveform and track policy";
  const std::pair<const char*, int> tracks[] = {
      {"bw", 2}, {"jpeg50", 1}, {"jpeg99", 0}, {"adaptive", -1}};
  for (const Waveform waveform : AllWaveforms()) {
    for (const auto& [track_name, track] : tracks) {
      const std::string name = std::string(track_name) + "_" + WaveformSlug(waveform);
      scenario.variants.push_back(
          {name, [waveform, track = track](uint64_t seed, TraceRecorder* trace) {
             const VideoTrialResult result = RunVideoTrial(waveform, track, seed, trace);
             return TrialMetrics{
                 {"drops", result.drops, MetricDirection::kLowerIsBetter},
                 {"fidelity", result.fidelity, MetricDirection::kHigherIsBetter},
             };
           }});
    }
  }
  Add(registry, std::move(scenario));
}

// --- Figure 11: Web browser ---

TrialMetrics WebMetrics(const WebTrialResult& result) {
  return {
      {"seconds", result.seconds, MetricDirection::kLowerIsBetter},
      {"fidelity", result.fidelity, MetricDirection::kHigherIsBetter},
  };
}

void RegisterWeb(ScenarioRegistry* registry) {
  Scenario scenario;
  scenario.name = "fig11_web";
  scenario.description =
      "Figure 11: image fetch seconds and fidelity per waveform and fidelity policy";
  scenario.variants.push_back({"ethernet", [](uint64_t seed, TraceRecorder* trace) {
                                 return WebMetrics(RunWebTrial(
                                     MakeEthernetBaseline(kWaveformLength), 0,
                                     /*prime=*/false, seed, trace));
                               }});
  const std::pair<const char*, int> levels[] = {
      {"jpeg5", 3}, {"jpeg25", 2}, {"jpeg50", 1}, {"full", 0}, {"adaptive", -1}};
  for (const Waveform waveform : AllWaveforms()) {
    for (const auto& [level_name, level] : levels) {
      const std::string name = std::string(level_name) + "_" + WaveformSlug(waveform);
      scenario.variants.push_back(
          {name, [waveform, level = level](uint64_t seed, TraceRecorder* trace) {
             return WebMetrics(
                 RunWebTrial(MakeWaveform(waveform), level, /*prime=*/true, seed, trace));
           }});
    }
  }
  Add(registry, std::move(scenario));
}

// --- Figure 12: speech recognizer ---

void RegisterSpeech(ScenarioRegistry* registry) {
  Scenario scenario;
  scenario.name = "fig12_speech";
  scenario.description =
      "Figure 12: recognition seconds per waveform under hybrid/remote/adaptive plans";
  const std::pair<const char*, SpeechMode> modes[] = {
      {"always_hybrid", SpeechMode::kAlwaysHybrid},
      {"always_remote", SpeechMode::kAlwaysRemote},
      {"adaptive", SpeechMode::kAdaptive}};
  for (const Waveform waveform : AllWaveforms()) {
    for (const auto& [mode_name, mode] : modes) {
      const std::string name = std::string(mode_name) + "_" + WaveformSlug(waveform);
      scenario.variants.push_back(
          {name, [waveform, mode = mode](uint64_t seed, TraceRecorder* trace) {
             return TrialMetrics{{"seconds", RunSpeechTrialSeconds(waveform, mode, seed, trace),
                                  MetricDirection::kLowerIsBetter}};
           }});
    }
  }
  Add(registry, std::move(scenario));
}

// --- Figures 13+14: concurrent applications ---

void RegisterConcurrent(ScenarioRegistry* registry) {
  Scenario scenario;
  scenario.name = "fig14_concurrent";
  scenario.description =
      "Figure 14: video+web+speech over the urban trace per resource strategy";
  const std::pair<const char*, StrategyKind> strategies[] = {
      {"odyssey", StrategyKind::kOdyssey},
      {"laissez_faire", StrategyKind::kLaissezFaire},
      {"blind_optimism", StrategyKind::kBlindOptimism}};
  for (const auto& [name, strategy] : strategies) {
    scenario.variants.push_back(
        {name, [strategy = strategy](uint64_t seed, TraceRecorder* trace) {
           const ConcurrentTrialResult result = RunConcurrentTrial(strategy, seed, trace);
           return TrialMetrics{
               {"video_drops", result.video_drops, MetricDirection::kLowerIsBetter},
               {"video_fidelity", result.video_fidelity, MetricDirection::kHigherIsBetter},
               {"web_seconds", result.web_seconds, MetricDirection::kLowerIsBetter},
               {"web_fidelity", result.web_fidelity, MetricDirection::kHigherIsBetter},
               {"speech_seconds", result.speech_seconds, MetricDirection::kLowerIsBetter},
           };
         }});
  }
  Add(registry, std::move(scenario));
}

// --- Ablation: estimator design choices ---

TrialMetrics EstimatorMetrics(const SupplyModelConfig& config, double window_bytes,
                              Waveform waveform, uint64_t seed, TraceRecorder* trace) {
  const EstimatorAblationTrialResult result =
      RunEstimatorAblationTrial(config, window_bytes, waveform, seed, trace);
  return {
      {"settle_s", result.settle_s, MetricDirection::kLowerIsBetter},
      {"steady_error_pct", result.steady_error_pct, MetricDirection::kLowerIsBetter},
  };
}

void RegisterEstimatorAblation(ScenarioRegistry* registry) {
  Scenario scenario;
  scenario.name = "ablation_estimator";
  scenario.description =
      "Ablation: supply window, transfer window, and rise cap vs Step settling";
  const Waveform steps[] = {Waveform::kStepUp, Waveform::kStepDown};
  for (const double window_s : {0.5, 1.0, 2.0, 4.0}) {
    for (const Waveform waveform : steps) {
      SupplyModelConfig config;
      config.supply_window = SecondsToDuration(window_s);
      const int window_ms = static_cast<int>(window_s * 1000.0);
      const std::string name =
          "supply_window_" + std::to_string(window_ms) + "ms_" + WaveformSlug(waveform);
      scenario.variants.push_back(
          {name, [config, waveform](uint64_t seed, TraceRecorder* trace) {
             return EstimatorMetrics(config, kDefaultWindowBytes, waveform, seed, trace);
           }});
    }
  }
  for (const double window_kb : {16.0, 32.0, 64.0, 128.0}) {
    for (const Waveform waveform : steps) {
      const std::string name = "transfer_window_" +
                               std::to_string(static_cast<int>(window_kb)) + "kb_" +
                               WaveformSlug(waveform);
      scenario.variants.push_back(
          {name, [window_kb, waveform](uint64_t seed, TraceRecorder* trace) {
             return EstimatorMetrics(SupplyModelConfig{}, window_kb * 1024.0, waveform, seed,
                                     trace);
           }});
    }
  }
  for (const double cap : {0.0, 0.25, 0.5, 2.0}) {
    for (const Waveform waveform : steps) {
      SupplyModelConfig config;
      config.estimator.rtt_rise_cap = cap;
      const std::string name =
          (cap <= 0.0 ? std::string("rise_cap_off")
                      : "rise_cap_" + std::to_string(static_cast<int>(cap * 100.0)) + "pct") +
          "_" + WaveformSlug(waveform);
      scenario.variants.push_back(
          {name, [config, waveform](uint64_t seed, TraceRecorder* trace) {
             return EstimatorMetrics(config, kDefaultWindowBytes, waveform, seed, trace);
           }});
    }
  }
  Add(registry, std::move(scenario));
}

// --- Ablation: availability-formula design choices ---

TrialMetrics FairshareMetrics(const SupplyModelConfig& config, uint64_t seed,
                              TraceRecorder* trace) {
  const FairshareTrialResult result = RunFairshareAblationTrial(config, seed, trace);
  return {
      {"video_drops", result.video_drops, MetricDirection::kLowerIsBetter},
      {"video_fidelity", result.video_fidelity, MetricDirection::kHigherIsBetter},
      {"web_seconds", result.web_seconds, MetricDirection::kLowerIsBetter},
      {"web_goal_pct", result.web_goal_pct, MetricDirection::kHigherIsBetter},
  };
}

void RegisterFairshareAblation(ScenarioRegistry* registry) {
  Scenario scenario;
  scenario.name = "ablation_fairshare";
  scenario.description =
      "Ablation: usage tau and activity window vs concurrent-app outcomes";
  for (const double tau_s : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    SupplyModelConfig config;
    config.usage_tau = SecondsToDuration(tau_s);
    const std::string name =
        "usage_tau_" + std::to_string(static_cast<int>(tau_s * 1000.0)) + "ms";
    scenario.variants.push_back({name, [config](uint64_t seed, TraceRecorder* trace) {
                                   return FairshareMetrics(config, seed, trace);
                                 }});
  }
  for (const double window_s : {1.0, 2.0, 5.0, 15.0}) {
    SupplyModelConfig config;
    config.activity_window = SecondsToDuration(window_s);
    const std::string name =
        "activity_window_" + std::to_string(static_cast<int>(window_s)) + "s";
    scenario.variants.push_back({name, [config](uint64_t seed, TraceRecorder* trace) {
                                   return FairshareMetrics(config, seed, trace);
                                 }});
  }
  Add(registry, std::move(scenario));
}

// --- Extension: consistency as fidelity ---

void RegisterFileConsistency(ScenarioRegistry* registry) {
  Scenario scenario;
  scenario.name = "ext_file_consistency";
  scenario.description =
      "Extension: read latency, staleness, and fidelity per consistency level";
  const std::pair<const char*, FileConsistency> levels[] = {
      {"strict", FileConsistency::kStrict},
      {"periodic", FileConsistency::kPeriodic},
      {"optimistic", FileConsistency::kOptimistic},
      {"adaptive", FileConsistency::kAdaptive}};
  for (const auto& [name, level] : levels) {
    scenario.variants.push_back({name, [level = level](uint64_t seed, TraceRecorder* trace) {
                                   const FileConsistencyTrialResult result =
                                       RunFileConsistencyTrial(level, seed, trace);
                                   return TrialMetrics{
                                       {"mean_read_ms", result.mean_read_ms,
                                        MetricDirection::kLowerIsBetter},
                                       {"stale_pct", result.stale_pct,
                                        MetricDirection::kLowerIsBetter},
                                       {"fidelity", result.fidelity,
                                        MetricDirection::kHigherIsBetter},
                                   };
                                 }});
  }
  Add(registry, std::move(scenario));
}

}  // namespace

void RegisterBuiltinScenarios(ScenarioRegistry* registry) {
  RegisterSupplyAgility(registry);
  RegisterDemandAgility(registry);
  RegisterVideo(registry);
  RegisterWeb(registry);
  RegisterSpeech(registry);
  RegisterConcurrent(registry);
  RegisterEstimatorAblation(registry);
  RegisterFairshareAblation(registry);
  RegisterFileConsistency(registry);
  RegisterMobilityScenarios(registry);
}

}  // namespace odyssey

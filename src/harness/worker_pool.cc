#include "src/harness/worker_pool.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace odyssey {

int DefaultJobCount() {
  const unsigned int hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

void RunIndexedTasks(int jobs, size_t count, const std::function<void(size_t)>& task) {
  if (count == 0) {
    return;
  }
  if (jobs <= 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) {
      task(i);
    }
    return;
  }
  const size_t workers = std::min(static_cast<size_t>(jobs), count);
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&next, count, &task] {
      for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < count;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        task(i);
      }
    });
  }
  for (std::thread& worker : pool) {
    worker.join();
  }
}

}  // namespace odyssey

#include "src/harness/worker_pool.h"

#include <algorithm>
#include <utility>

namespace odyssey {

int DefaultJobCount() {
  const unsigned int hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

WorkerPool::WorkerPool(int jobs, size_t count, std::function<void(size_t)> task)
    : count_(count), task_(std::move(task)) {
  ODY_ASSERT(jobs >= 1, "worker pool needs at least one worker");
  const size_t workers = std::min(static_cast<size_t>(jobs), count);
  workers_.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

WorkerPool::~WorkerPool() {
  Abandon();
  // A stored exception nobody Join()ed for dies here, silently: the
  // destructor's contract is cleanup, and throwing would terminate().
  JoinThreads();
}

void WorkerPool::Abandon() { abandoned_.store(true, std::memory_order_relaxed); }

void WorkerPool::WorkerMain() {
  for (;;) {
    if (abandoned_.load(std::memory_order_relaxed)) {
      return;
    }
    const size_t index = next_.fetch_add(1, std::memory_order_relaxed);
    if (index >= count_) {
      return;
    }
    try {
      task_(index);
    } catch (...) {
      {
        MutexLock lock(&mu_);
        if (first_error_ == nullptr) {
          first_error_ = std::current_exception();
        }
      }
      // One failure abandons the run: sibling workers finish their current
      // task and stop claiming, so Join() reports promptly instead of
      // grinding through a plan whose result will be thrown away.
      Abandon();
      return;
    }
    MutexLock lock(&mu_);
    ++completed_;
  }
}

void WorkerPool::JoinThreads() {
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

void WorkerPool::Join() {
  JoinThreads();
  std::exception_ptr error;
  {
    MutexLock lock(&mu_);
    if (joined_) {
      return;  // double-join: the first call already reported
    }
    joined_ = true;
    error = std::exchange(first_error_, nullptr);
  }
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
}

size_t WorkerPool::completed() {
  MutexLock lock(&mu_);
  return completed_;
}

void RunIndexedTasks(int jobs, size_t count, const std::function<void(size_t)>& task) {
  if (count == 0) {
    return;
  }
  if (jobs <= 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) {
      task(i);
    }
    return;
  }
  WorkerPool pool(jobs, count, task);
  pool.Join();
}

}  // namespace odyssey

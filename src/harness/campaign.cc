#include "src/harness/campaign.h"

#include "src/metrics/trial.h"
#include "src/sim/random.h"

namespace odyssey {

uint64_t DeriveTrialSeed(uint64_t campaign_seed, uint64_t trial_index) {
  // SplitMix64's state advances by a fixed gamma per Next(), so the stream
  // can be entered at any element in O(1): seeding at
  // campaign_seed + trial_index * gamma and taking one step yields exactly
  // what trial_index + 1 sequential Next() calls from the campaign seed
  // would (wrapping uint64 arithmetic; identical on every platform).
  constexpr uint64_t kGamma = 0x9e3779b97f4a7c15ULL;
  SplitMix64 at(campaign_seed + trial_index * kGamma);
  return at.Next();
}

std::vector<CampaignSpec> BuiltinCampaigns() {
  std::vector<CampaignSpec> campaigns;

  // The CI gate: the Figure 8 and Figure 14 grids at 64 seeds each —
  // enough samples for stable p95/p99, small enough to run on every push.
  CampaignSpec tier1;
  tier1.name = "tier1";
  tier1.description = "Fig-8 and Fig-14 grids at 64 seeds (the CI regression gate)";
  tier1.sweeps = {
      {"fig08_supply_agility", {}, 64},
      {"fig14_concurrent", {}, 64},
  };
  campaigns.push_back(tier1);

  // A seconds-long sanity campaign for tests and quick local checks.
  CampaignSpec smoke;
  smoke.name = "smoke";
  smoke.description = "four fast supply-agility trials (CLI and harness self-checks)";
  smoke.sweeps = {
      {"fig08_supply_agility", {"step_up", "step_down"}, 2},
  };
  campaigns.push_back(smoke);

  CampaignSpec agility;
  agility.name = "agility";
  agility.description = "Figures 8 and 9: supply and demand estimation agility";
  agility.sweeps = {
      {"fig08_supply_agility", {}, kPaperTrials},
      {"fig09_demand_agility", {}, kPaperTrials},
  };
  campaigns.push_back(agility);

  CampaignSpec apps;
  apps.name = "apps";
  apps.description = "Figures 10-12: video, Web, and speech application grids";
  apps.sweeps = {
      {"fig10_video", {}, kPaperTrials},
      {"fig11_web", {}, kPaperTrials},
      {"fig12_speech", {}, kPaperTrials},
  };
  campaigns.push_back(apps);

  CampaignSpec ablations;
  ablations.name = "ablations";
  ablations.description = "estimator and fair-share ablations plus the file extension";
  ablations.sweeps = {
      {"ablation_estimator", {}, kPaperTrials},
      {"ablation_fairshare", {}, kPaperTrials},
      {"ext_file_consistency", {}, kPaperTrials},
  };
  campaigns.push_back(ablations);

  // The mobility gate: every motion -> signal -> bandwidth cell at three
  // trials (per-trial cost is a 2-minute simulated drive, so this stays in
  // CI budget while covering all four models and all three layouts).
  CampaignSpec mobility;
  mobility.name = "tier_mobility";
  mobility.description = "mobility tracking and Web grids (the mobility CI gate)";
  mobility.sweeps = {
      {"mobility_track", {}, 3},
      {"mobility_web", {}, 3},
  };
  campaigns.push_back(mobility);

  CampaignSpec full;
  full.name = "full";
  full.description = "every scenario and variant at the paper's five trials";
  full.sweeps = {
      {"fig08_supply_agility", {}, kPaperTrials},
      {"fig09_demand_agility", {}, kPaperTrials},
      {"fig10_video", {}, kPaperTrials},
      {"fig11_web", {}, kPaperTrials},
      {"fig12_speech", {}, kPaperTrials},
      {"fig14_concurrent", {}, kPaperTrials},
      {"ablation_estimator", {}, kPaperTrials},
      {"ablation_fairshare", {}, kPaperTrials},
      {"ext_file_consistency", {}, kPaperTrials},
      {"mobility_track", {}, kPaperTrials},
      {"mobility_web", {}, kPaperTrials},
  };
  campaigns.push_back(full);

  return campaigns;
}

const CampaignSpec* FindCampaign(const std::vector<CampaignSpec>& campaigns,
                                 const std::string& name) {
  for (const CampaignSpec& campaign : campaigns) {
    if (campaign.name == name) {
      return &campaign;
    }
  }
  return nullptr;
}

Status ExpandCampaign(const CampaignSpec& spec, const ScenarioRegistry& registry,
                      std::vector<PlannedTrial>* plan) {
  plan->clear();
  uint64_t trial_index = 0;
  for (const SweepSpec& sweep : spec.sweeps) {
    const Scenario* scenario = registry.Find(sweep.scenario);
    if (scenario == nullptr) {
      return NotFoundError("campaign " + spec.name + " sweeps unknown scenario " +
                           sweep.scenario);
    }
    if (sweep.trials <= 0) {
      return InvalidArgumentError("campaign " + spec.name + " sweep " + sweep.scenario +
                                  " has a non-positive trial count");
    }
    std::vector<std::string> variants = sweep.variants;
    if (variants.empty()) {
      for (const ScenarioVariant& variant : scenario->variants) {
        variants.push_back(variant.name);
      }
    }
    for (const std::string& variant_name : variants) {
      if (scenario->FindVariant(variant_name) == nullptr) {
        return NotFoundError("campaign " + spec.name + " sweeps unknown variant " +
                             sweep.scenario + "/" + variant_name);
      }
      for (int trial = 0; trial < sweep.trials; ++trial) {
        plan->push_back({sweep.scenario, variant_name, trial, trial_index,
                         DeriveTrialSeed(spec.seed, trial_index)});
        ++trial_index;
      }
    }
  }
  return OkStatus();
}

}  // namespace odyssey

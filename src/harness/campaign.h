// Campaign specifications: declarative sweeps over registered scenarios.
//
// A campaign names a set of (scenario, variants, trial-count) sweeps and a
// single campaign seed.  ExpandCampaign flattens the sweeps into an ordered
// trial plan; each planned trial's seed is derived from the campaign seed
// and the trial's position in that plan (DeriveTrialSeed), so the plan —
// and therefore every result — is a pure function of the spec, independent
// of how many workers later execute it or in what order they finish.

#ifndef SRC_HARNESS_CAMPAIGN_H_
#define SRC_HARNESS_CAMPAIGN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/status.h"
#include "src/harness/scenario_registry.h"

namespace odyssey {

// The seed for trial |trial_index| of a campaign seeded |campaign_seed|:
// output number |trial_index| + 1 of the SplitMix64 stream rooted at the
// campaign seed, computed in O(1) by jumping the stream's state (it
// advances by a fixed gamma per output, so any element is one mix away).
// Fixed-width arithmetic only: the value is identical on every platform
// and for every worker count.
uint64_t DeriveTrialSeed(uint64_t campaign_seed, uint64_t trial_index);

// One sweep: run |trials| trials of each listed variant of |scenario|.
struct SweepSpec {
  std::string scenario;
  // Variant names to run; empty means every registered variant.
  std::vector<std::string> variants;
  int trials = 5;
};

struct CampaignSpec {
  std::string name;
  std::string description;
  uint64_t seed = kDefaultCampaignSeed;
  std::vector<SweepSpec> sweeps;

  static constexpr uint64_t kDefaultCampaignSeed = 1997;  // the paper's year
};

// The built-in campaigns (tier1, smoke, agility, apps, ablations, full).
std::vector<CampaignSpec> BuiltinCampaigns();

// Campaign lookup by name; null when absent.
const CampaignSpec* FindCampaign(const std::vector<CampaignSpec>& campaigns,
                                 const std::string& name);

// One cell of the expanded plan: variant |variant| of |scenario|, trial
// ordinal |trial| (0-based within its sweep), executed with |seed|.
struct PlannedTrial {
  std::string scenario;
  std::string variant;
  int trial = 0;
  uint64_t trial_index = 0;  // position in the campaign-wide plan
  uint64_t seed = 0;
};

// Flattens |spec| against |registry| into an ordered trial plan: sweeps in
// spec order, variants in sweep (or registration) order, trials 0..n-1.
// kNotFound for an unknown scenario or variant; kInvalidArgument for a
// non-positive trial count.
Status ExpandCampaign(const CampaignSpec& spec, const ScenarioRegistry& registry,
                      std::vector<PlannedTrial>* plan);

}  // namespace odyssey

#endif  // SRC_HARNESS_CAMPAIGN_H_

// A fixed-size worker pool for shared-nothing trial execution.
//
// This is the ONLY place in src/ that may create threads (ody_lint's
// harness-no-raw-thread rule pins std::thread to this file): everything a
// worker touches is handed to it through the indexed task callback, results
// are written to distinct slots, and the pool joins every worker before
// returning, so no thread ever outlives the call that spawned it and no
// other subsystem needs to know threads exist.
//
// WorkerPool is the annotated core (DESIGN.md §13): its shared mutable
// state is split between lock-free claim/stop atomics (each with its
// memory ordering justified inline) and ODY_GUARDED_BY members under an
// annotated Mutex, so the thread-safety CI job proves the locking
// discipline and the TSan job proves the claims at runtime.
// RunIndexedTasks remains the one entry point the rest of the tree uses.

#ifndef SRC_HARNESS_WORKER_POOL_H_
#define SRC_HARNESS_WORKER_POOL_H_

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "src/core/contract.h"
#include "src/core/sync.h"

namespace odyssey {

// The default --jobs value: the hardware concurrency, clamped to >= 1
// (hardware_concurrency() may report 0 on exotic platforms).
int DefaultJobCount();

// Runs task(0) .. task(count - 1) on min(jobs, count) workers, claimed from
// a shared atomic counter so workers stay busy regardless of per-task cost;
// every worker is joined before the call returns.  |task| must be safe to
// call concurrently for distinct indices.  If a task throws, the first
// exception is rethrown on the calling thread after every worker has been
// joined, and indices not yet claimed are abandoned (never run).  jobs <= 1
// runs every task inline on the calling thread — the degenerate case
// threads never touch, which the jobs-invariance tests use as the
// reference ordering.
void RunIndexedTasks(int jobs, size_t count, const std::function<void(size_t)>& task);

// The pool behind RunIndexedTasks, exposed so the harness tests can drive
// the shutdown and failure paths directly.  Construction spawns the
// workers; they immediately begin claiming indices.  Exactly one thread
// may call Join()/Abandon()/the destructor (the constructing thread, in
// every real use).
class WorkerPool {
 public:
  // Spawns min(jobs, count) workers executing task(0) .. task(count - 1).
  // Requires jobs >= 1; the task is copied into the pool so it outlives
  // the caller's frame.
  WorkerPool(int jobs, size_t count, std::function<void(size_t)> task);

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Abandons unclaimed indices, joins every worker, and swallows any stored
  // task exception (destructors must not throw; call Join() to observe it).
  ~WorkerPool();

  // Stops further claims: workers finish the task they are executing and
  // exit.  Indices not yet claimed never run.  Safe to call repeatedly.
  void Abandon();

  // Joins every worker, then rethrows the first task exception, if any.
  // Idempotent: a second Join() is a no-op (the exception, once thrown,
  // is consumed).  Returns normally when all claimed tasks succeeded.
  void Join();

  // Tasks that ran to completion (no exception).  Stable only once the
  // workers are joined; call after Join().
  size_t completed() ODY_EXCLUDES(mu_);

 private:
  void WorkerMain();
  void JoinThreads();

  const size_t count_;
  const std::function<void(size_t)> task_;

  // Lock-free claim counter.  Relaxed suffices: fetch_add's atomicity alone
  // guarantees each index is claimed exactly once, and the counter never
  // publishes data — task results are written to caller-owned slots whose
  // visibility is established by thread::join's synchronizes-with edge.
  std::atomic<size_t> next_{0};

  // Lock-free stop flag, checked between claims.  Relaxed suffices: the
  // flag only narrows how many indices get claimed (a worker observing it
  // late merely runs one more task); all data it gates (first_error_) is
  // published under mu_, not by the flag.
  std::atomic<bool> abandoned_{false};

  Mutex mu_;
  std::exception_ptr first_error_ ODY_GUARDED_BY(mu_);  // first task throw
  size_t completed_ ODY_GUARDED_BY(mu_) = 0;
  bool joined_ ODY_GUARDED_BY(mu_) = false;

  std::vector<std::thread> workers_;
};

}  // namespace odyssey

#endif  // SRC_HARNESS_WORKER_POOL_H_

// A fixed-size worker pool for shared-nothing trial execution.
//
// This is the ONLY place in src/ that may create threads (ody_lint's
// harness-no-raw-thread rule pins std::thread to this file): everything a
// worker touches is handed to it through the indexed task callback, results
// are written to distinct slots, and the pool joins every worker before
// returning, so no thread ever outlives the call that spawned it and no
// other subsystem needs to know threads exist.

#ifndef SRC_HARNESS_WORKER_POOL_H_
#define SRC_HARNESS_WORKER_POOL_H_

#include <cstddef>
#include <functional>

namespace odyssey {

// The default --jobs value: the hardware concurrency, clamped to >= 1
// (hardware_concurrency() may report 0 on exotic platforms).
int DefaultJobCount();

// Runs task(0) .. task(count - 1) on min(jobs, count) workers.  Tasks are
// claimed from a shared atomic counter, so workers stay busy regardless of
// per-task cost; every worker is joined before the call returns.  |task|
// must be safe to call concurrently for distinct indices and must not
// throw.  jobs <= 1 runs every task inline on the calling thread — the
// degenerate case threads never touch, which the jobs-invariance tests use
// as the reference ordering.
void RunIndexedTasks(int jobs, size_t count, const std::function<void(size_t)>& task);

}  // namespace odyssey

#endif  // SRC_HARNESS_WORKER_POOL_H_

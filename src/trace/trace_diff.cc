#include "src/trace/trace_diff.h"

#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "src/trace/trace_event.h"
#include "src/trace/trace_json.h"

namespace odyssey {
namespace {

bool IsMetadataEvent(const JsonValue& event) {
  const JsonValue* ph = event.Find("ph");
  return ph != nullptr && ph->is_string() && ph->string_value() == "M";
}

// Extracts `ts=<int>` from a canonical line; 0 if absent.
int64_t CanonicalLineTime(const std::string& line) {
  const size_t pos = line.find("ts=");
  if (pos == std::string::npos) {
    return 0;
  }
  return static_cast<int64_t>(std::strtoll(line.c_str() + pos + 3, nullptr, 10));
}

std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) {
    out.push_back(token);
  }
  return out;
}

std::string TokenKey(const std::string& token) {
  const size_t eq = token.find('=');
  return eq == std::string::npos ? token : token.substr(0, eq);
}

}  // namespace

std::vector<std::string> CanonicalizeChromeTrace(const std::string& json_text,
                                                 std::string* error) {
  const JsonValue root = ParseJson(json_text, error);
  if (!error->empty()) {
    return {};
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    *error = "trace has no traceEvents array";
    return {};
  }

  std::vector<std::string> lines;
  std::map<std::string, uint64_t> id_remap;  // raw id -> dense canonical id
  for (const JsonValue& event : events->array_items()) {
    if (!event.is_object() || IsMetadataEvent(event)) {
      continue;
    }
    const JsonValue* ph = event.Find("ph");
    const JsonValue* ts = event.Find("ts");
    const JsonValue* name = event.Find("name");
    const JsonValue* cat = event.Find("cat");
    if (ph == nullptr || ts == nullptr || name == nullptr || cat == nullptr) {
      *error = "event missing ph/ts/name/cat";
      return {};
    }
    std::string line;
    line.append("ts=");
    line.append(JsonNumberToString(ts->number_value()));
    line.append(" cat=");
    line.append(cat->string_value());
    line.append(" ph=");
    line.append(ph->string_value());
    line.append(" name=");
    line.append(name->string_value());
    const JsonValue* id = event.Find("id");
    if (id != nullptr && id->is_string()) {
      // Renumber within the (category, name) id space: raw ids from
      // unrelated counters (run-local app ids, process-global connection
      // ids, recorder span ids) may collide in one run but not another, so
      // a global remap would conflate them.
      const std::string key =
          cat->string_value() + "|" + name->string_value() + "|" + id->string_value();
      const auto [it, inserted] =
          id_remap.emplace(key, static_cast<uint64_t>(id_remap.size()) + 1);
      (void)inserted;
      line.append(" id=");
      line.append(std::to_string(it->second));
    }
    const JsonValue* args = event.Find("args");
    if (args != nullptr && args->is_object()) {
      // object_members() iterates in key-sorted order, so argument order
      // in the canonical form is stable regardless of emission order.
      for (const auto& [key, value] : args->object_members()) {
        line.append(" arg.");
        line.append(key);
        line.append("=");
        if (value.is_number()) {
          line.append(JsonNumberToString(value.number_value()));
        } else if (value.is_string()) {
          line.append(value.string_value());
        } else {
          line.append("?");
        }
      }
    }
    lines.push_back(std::move(line));
  }
  error->clear();
  return lines;
}

std::string TraceDiffResult::Format() const {
  if (identical) {
    return "traces are identical";
  }
  std::string out = "first divergence at event " + std::to_string(index) + " (sim time " +
                    std::to_string(ts_a) + "us vs " + std::to_string(ts_b) + "us), field '" +
                    field + "':\n  a: " + value_a + "\n  b: " + value_b;
  return out;
}

TraceDiffResult DiffCanonical(const std::vector<std::string>& a,
                              const std::vector<std::string>& b) {
  TraceDiffResult result;
  const size_t common = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < common; ++i) {
    if (a[i] == b[i]) {
      continue;
    }
    result.identical = false;
    result.index = i;
    result.ts_a = CanonicalLineTime(a[i]);
    result.ts_b = CanonicalLineTime(b[i]);
    // Find the first token that differs; report its key.
    const std::vector<std::string> ta = SplitTokens(a[i]);
    const std::vector<std::string> tb = SplitTokens(b[i]);
    const size_t tokens = ta.size() < tb.size() ? ta.size() : tb.size();
    for (size_t t = 0; t < tokens; ++t) {
      if (ta[t] != tb[t]) {
        result.field = TokenKey(ta[t]);
        result.value_a = ta[t];
        result.value_b = tb[t];
        return result;
      }
    }
    result.field = "arg_count";
    result.value_a = a[i];
    result.value_b = b[i];
    return result;
  }
  if (a.size() != b.size()) {
    result.identical = false;
    result.index = common;
    result.field = "missing_event";
    if (a.size() > common) {
      result.ts_a = CanonicalLineTime(a[common]);
      result.value_a = a[common];
      result.value_b = "<absent>";
    } else {
      result.ts_b = CanonicalLineTime(b[common]);
      result.value_a = "<absent>";
      result.value_b = b[common];
    }
  }
  return result;
}

TraceValidationResult ValidateChromeTrace(const std::string& json_text) {
  TraceValidationResult result;
  std::string error;
  const JsonValue root = ParseJson(json_text, &error);
  if (!error.empty()) {
    result.error = "not valid JSON: " + error;
    return result;
  }
  if (!root.is_object()) {
    result.error = "top level is not an object";
    return result;
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    result.error = "missing traceEvents array";
    return result;
  }

  std::set<std::string> known_categories;
  for (int c = 0; c < kTraceCategoryCount; ++c) {
    known_categories.insert(TraceCategoryName(static_cast<TraceCategory>(c)));
  }
  const std::set<std::string> known_phases = {"b", "e", "i", "C"};

  std::set<std::string> seen_categories;
  size_t index = 0;
  for (const JsonValue& event : events->array_items()) {
    const std::string where = "event " + std::to_string(index);
    ++index;
    if (!event.is_object()) {
      result.error = where + " is not an object";
      return result;
    }
    const JsonValue* ph = event.Find("ph");
    if (ph == nullptr || !ph->is_string()) {
      result.error = where + " has no ph";
      return result;
    }
    if (ph->string_value() == "M") {
      continue;  // metadata carries its own minimal shape
    }
    if (known_phases.count(ph->string_value()) == 0) {
      result.error = where + " has unknown phase '" + ph->string_value() + "'";
      return result;
    }
    const JsonValue* ts = event.Find("ts");
    if (ts == nullptr || !ts->is_number()) {
      result.error = where + " has no numeric ts";
      return result;
    }
    if (ts->number_value() < 0) {
      result.error = where + " has negative ts";
      return result;
    }
    const JsonValue* name = event.Find("name");
    if (name == nullptr || !name->is_string() || name->string_value().empty()) {
      result.error = where + " has no name";
      return result;
    }
    const JsonValue* cat = event.Find("cat");
    if (cat == nullptr || !cat->is_string()) {
      result.error = where + " has no cat";
      return result;
    }
    if (known_categories.count(cat->string_value()) == 0) {
      result.error = where + " has unknown category '" + cat->string_value() + "'";
      return result;
    }
    const std::string& phase = ph->string_value();
    if ((phase == "b" || phase == "e") && event.Find("id") == nullptr) {
      result.error = where + " is an async span without an id";
      return result;
    }
    if (phase == "C") {
      const JsonValue* args = event.Find("args");
      if (args == nullptr || args->Find("value") == nullptr ||
          !args->Find("value")->is_number()) {
        result.error = where + " is a counter without a numeric args.value";
        return result;
      }
    }
    seen_categories.insert(cat->string_value());
    ++result.event_count;
  }
  result.ok = true;
  result.categories.assign(seen_categories.begin(), seen_categories.end());
  return result;
}

}  // namespace odyssey

// The odytrace event model: fixed-size POD events in virtual time.
//
// Every event carries the simulation timestamp at which it was recorded, a
// category (the subsystem that emitted it), a phase (span begin/end,
// instant, or counter sample), a compile-time-constant name, a correlation
// id, and up to two named numeric arguments.  Events are trivially copyable
// and contain no owned memory, so recording is a struct copy into a
// preallocated ring buffer — nothing on the hot path allocates.
//
// Names and argument names MUST be string literals (the ODY_TRACE_* macros
// in src/trace/trace_macros.h enforce this at compile time, and
// tools/ody_lint enforces it at review time): the recorder stores the
// pointers, not copies, and a dynamically built string would both dangle
// and allocate.

#ifndef SRC_TRACE_TRACE_EVENT_H_
#define SRC_TRACE_TRACE_EVENT_H_

#include <cstdint>
#include <type_traits>

#include "src/sim/time.h"

namespace odyssey {

// The per-component categories.  Each category becomes its own track in the
// exported chrome://tracing view.
enum class TraceCategory : uint8_t {
  kSim = 0,        // simulation substrate (run markers, queue health)
  kViceroy = 1,    // request/cancel/arbitration and upcall dispatch
  kWarden = 2,     // fidelity transitions and warden-level operations
  kEstimator = 3,  // EWMA inputs, supply/demand updates
  kRpc = 4,        // endpoint exchanges, retries, backoff, timeouts
  kNet = 5,        // link/modulator transitions
  kFault = 6,      // injected drops, outages, spikes, stalls, kills
  kApp = 7,        // application-level adaptation decisions
};

inline constexpr int kTraceCategoryCount = 8;

// Stable lowercase category name, used as the chrome-trace "cat" field.
constexpr const char* TraceCategoryName(TraceCategory category) {
  switch (category) {
    case TraceCategory::kSim:
      return "sim";
    case TraceCategory::kViceroy:
      return "viceroy";
    case TraceCategory::kWarden:
      return "warden";
    case TraceCategory::kEstimator:
      return "estimator";
    case TraceCategory::kRpc:
      return "rpc";
    case TraceCategory::kNet:
      return "net";
    case TraceCategory::kFault:
      return "fault";
    case TraceCategory::kApp:
      return "app";
  }
  return "unknown";
}

enum class TracePhase : uint8_t {
  kSpanBegin = 0,  // start of a duration (async span, correlated by id)
  kSpanEnd = 1,    // end of a duration
  kInstant = 2,    // a point event
  kCounter = 3,    // a sampled value (arg0 is the sample)
};

// Stable single-character phase code, matching the chrome-trace "ph" field
// for async begin/end, instant, and counter events.
constexpr const char* TracePhaseCode(TracePhase phase) {
  switch (phase) {
    case TracePhase::kSpanBegin:
      return "b";
    case TracePhase::kSpanEnd:
      return "e";
    case TracePhase::kInstant:
      return "i";
    case TracePhase::kCounter:
      return "C";
  }
  return "?";
}

// One trace event.  56 bytes, trivially copyable, no owned storage.
struct TraceEvent {
  Time ts = 0;  // virtual time, microseconds since simulation start
  TraceCategory category = TraceCategory::kSim;
  TracePhase phase = TracePhase::kInstant;
  const char* name = nullptr;       // static string; never freed
  uint64_t id = 0;                  // span/app/connection correlation id
  const char* arg0_name = nullptr;  // static string or null
  const char* arg1_name = nullptr;  // static string or null
  double arg0 = 0.0;
  double arg1 = 0.0;
};

static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent must stay POD: recording is a struct copy");

}  // namespace odyssey

#endif  // SRC_TRACE_TRACE_EVENT_H_

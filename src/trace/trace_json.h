// A minimal, zero-dependency JSON reader for trace tooling.
//
// Exists so the exporter's output can be parsed back — by the validity
// tests, by the trace schema check, and by TraceDiff's canonicalizer —
// without adding a third-party dependency.  Supports the full JSON value
// grammar the exporter emits (objects, arrays, strings with escapes,
// numbers, booleans, null); it is a reader for machine-written traces, not
// a general-purpose library.

#ifndef SRC_TRACE_TRACE_JSON_H_
#define SRC_TRACE_TRACE_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace odyssey {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  // Members in key-sorted order (std::map), which canonicalization relies on.
  const std::map<std::string, JsonValue>& object_members() const { return object_; }

  // Member lookup; null pointer when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool v);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string v);
  static JsonValue MakeArray(std::vector<JsonValue> v);
  static JsonValue MakeObject(std::map<std::string, JsonValue> v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

// Parses |text| as one JSON document.  On success returns the value and
// clears |error|; on failure returns null and describes the first problem
// (with byte offset) in |error|.
JsonValue ParseJson(const std::string& text, std::string* error);

// Serializes a string with JSON escaping, including the surrounding quotes.
std::string JsonQuote(const std::string& text);

// Canonical number formatting shared by the exporter and the
// canonicalizer: shortest representation that round-trips a double
// ("%.17g", with integral values printed without a fraction).
std::string JsonNumberToString(double value);

}  // namespace odyssey

#endif  // SRC_TRACE_TRACE_JSON_H_

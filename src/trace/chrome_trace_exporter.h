// Exports a TraceRecorder to chrome://tracing / Perfetto JSON.
//
// The output is the Trace Event Format's "JSON Object Format": a
// `traceEvents` array plus metadata.  Timestamps are the simulation's
// virtual microseconds, so the timeline in the viewer reads in sim time.
// Category tracks are modeled as threads of one "odyssey" process (thread
// metadata events name each track); spans are async begin/end pairs
// correlated by id, counters are "C" events, instants are "i" events.
//
// Everything about the output is a pure function of the recorded events —
// no wall-clock stamps, no environment — so two runs that record the same
// events export byte-identical JSON.  The golden-trace regression and CI's
// same-seed diff rest on that property.

#ifndef SRC_TRACE_CHROME_TRACE_EXPORTER_H_
#define SRC_TRACE_CHROME_TRACE_EXPORTER_H_

#include <string>

#include "src/trace/trace_recorder.h"

namespace odyssey {

class ChromeTraceExporter {
 public:
  // Serializes |recorder|'s events as a chrome://tracing JSON document.
  static std::string ToJson(const TraceRecorder& recorder);

  // Writes ToJson() to |path|.  False (with |error| set) on I/O failure.
  [[nodiscard]] static bool WriteFile(const TraceRecorder& recorder, const std::string& path,
                                      std::string* error);
};

}  // namespace odyssey

#endif  // SRC_TRACE_CHROME_TRACE_EXPORTER_H_

#include "src/trace/trace_recorder.h"

#include "src/core/contract.h"

namespace odyssey {

TraceRecorder::TraceRecorder(size_t capacity, OverflowPolicy policy) : policy_(policy) {
  ODY_ASSERT(capacity > 0, "trace recorder needs a nonzero capacity");
  events_.resize(capacity);
}

void TraceRecorder::Record(const TraceEvent& event) {
  ++recorded_;
  const size_t cap = events_.size();
  if (size_ == cap) {
    if (policy_ == OverflowPolicy::kDropNewest) {
      ++dropped_;
      return;
    }
    // Overwrite the oldest event: the slot at head_ is recycled and the
    // ring's start advances.
    ++dropped_;
    category_counts_[static_cast<int>(events_[head_].category)] -= 1;
    events_[head_] = event;
    head_ = (head_ + 1) % cap;
    category_counts_[static_cast<int>(event.category)] += 1;
    return;
  }
  events_[(head_ + size_) % cap] = event;
  ++size_;
  category_counts_[static_cast<int>(event.category)] += 1;
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  const size_t cap = events_.size();
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(events_[(head_ + i) % cap]);
  }
  return out;
}

void TraceRecorder::Clear() {
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
  dropped_ = 0;
  for (uint64_t& count : category_counts_) {
    count = 0;
  }
}

}  // namespace odyssey

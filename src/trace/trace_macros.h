// The ODY_TRACE_* instrumentation macros.
//
// Every macro takes a `TraceRecorder*` first (usually `sim->trace()`); a
// null recorder reduces the whole macro to one pointer test, so instrumented
// hot paths cost nothing on untraced runs.  Compiling with
// -DODYSSEY_TRACE_DISABLED removes the macros entirely (they expand to a
// no-op statement that evaluates none of its arguments).
//
// Event names and argument names must be string literals: each is pasted
// against an empty literal (`"" name`), which fails to compile for anything
// else.  This keeps the hot path allocation-free (the recorder stores the
// pointer) and is additionally enforced by the `trace-static-name` rule in
// tools/ody_lint.
//
// The |cat| parameter is the bare category token (kViceroy, kRpc, ...); the
// macros qualify it.
//
//   ODY_TRACE_INSTANT(sim->trace(), kViceroy, "cancel", sim->now(), id);
//   const uint64_t span = ODY_TRACE_SPAN_ID(sim->trace());
//   ODY_TRACE_BEGIN1(sim->trace(), kRpc, "rpc_call", sim->now(), span,
//                    "bytes", request_bytes);
//   ...
//   ODY_TRACE_END1(sim->trace(), kRpc, "rpc_call", sim->now(), span,
//                  "rtt_us", rtt);

#ifndef SRC_TRACE_TRACE_MACROS_H_
#define SRC_TRACE_TRACE_MACROS_H_

#include "src/trace/trace_event.h"
#include "src/trace/trace_recorder.h"

#ifndef ODYSSEY_TRACE_DISABLED

// Internal: builds and records one event.  Names are literal-pasted; all
// numeric parameters are evaluated exactly once, only when recording.
#define ODY_TRACE_EVENT_(rec, cat, ph, name_lit, ts_, id_, a0n, a0, a1n, a1) \
  do {                                                                       \
    ::odyssey::TraceRecorder* ody_trace_rec_ = (rec);                        \
    if (ody_trace_rec_ != nullptr) {                                         \
      ::odyssey::TraceEvent ody_trace_ev_;                                   \
      ody_trace_ev_.ts = (ts_);                                              \
      ody_trace_ev_.category = ::odyssey::TraceCategory::cat;               \
      ody_trace_ev_.phase = ::odyssey::TracePhase::ph;                      \
      ody_trace_ev_.name = "" name_lit;                                     \
      ody_trace_ev_.id = (id_);                                             \
      ody_trace_ev_.arg0_name = (a0n);                                      \
      ody_trace_ev_.arg0 = static_cast<double>(a0);                         \
      ody_trace_ev_.arg1_name = (a1n);                                      \
      ody_trace_ev_.arg1 = static_cast<double>(a1);                         \
      ody_trace_rec_->Record(ody_trace_ev_);                                \
    }                                                                       \
  } while (0)

// Point events.
#define ODY_TRACE_INSTANT(rec, cat, name, ts, id) \
  ODY_TRACE_EVENT_(rec, cat, kInstant, name, ts, id, nullptr, 0.0, nullptr, 0.0)
#define ODY_TRACE_INSTANT1(rec, cat, name, ts, id, a0n, a0) \
  ODY_TRACE_EVENT_(rec, cat, kInstant, name, ts, id, "" a0n, a0, nullptr, 0.0)
#define ODY_TRACE_INSTANT2(rec, cat, name, ts, id, a0n, a0, a1n, a1) \
  ODY_TRACE_EVENT_(rec, cat, kInstant, name, ts, id, "" a0n, a0, "" a1n, a1)

// Counter samples: |value| becomes the "value" series of counter |name|.
#define ODY_TRACE_COUNTER(rec, cat, name, ts, id, value) \
  ODY_TRACE_EVENT_(rec, cat, kCounter, name, ts, id, "value", value, nullptr, 0.0)

// Async spans, correlated by id (see ODY_TRACE_SPAN_ID).
#define ODY_TRACE_BEGIN(rec, cat, name, ts, id) \
  ODY_TRACE_EVENT_(rec, cat, kSpanBegin, name, ts, id, nullptr, 0.0, nullptr, 0.0)
#define ODY_TRACE_BEGIN1(rec, cat, name, ts, id, a0n, a0) \
  ODY_TRACE_EVENT_(rec, cat, kSpanBegin, name, ts, id, "" a0n, a0, nullptr, 0.0)
#define ODY_TRACE_BEGIN2(rec, cat, name, ts, id, a0n, a0, a1n, a1) \
  ODY_TRACE_EVENT_(rec, cat, kSpanBegin, name, ts, id, "" a0n, a0, "" a1n, a1)
#define ODY_TRACE_END(rec, cat, name, ts, id) \
  ODY_TRACE_EVENT_(rec, cat, kSpanEnd, name, ts, id, nullptr, 0.0, nullptr, 0.0)
#define ODY_TRACE_END1(rec, cat, name, ts, id, a0n, a0) \
  ODY_TRACE_EVENT_(rec, cat, kSpanEnd, name, ts, id, "" a0n, a0, nullptr, 0.0)

// A fresh span-correlation id, or 0 when not recording (the paired
// begin/end macros are no-ops then, so the id is never observed).
#define ODY_TRACE_SPAN_ID(rec) \
  ((rec) != nullptr ? (rec)->NextSpanId() : ::std::uint64_t{0})

#else  // ODYSSEY_TRACE_DISABLED

// Disabled: expand to a statement that evaluates nothing.  The sizeof
// tricks keep variables that exist only for tracing (span ids, hoisted
// argument values) "used" without generating any code.
#define ODY_TRACE_NOP2_(x, y) \
  do {                        \
    (void)sizeof(x);          \
    (void)sizeof(y);          \
  } while (0)
#define ODY_TRACE_NOP3_(x, y, z) \
  do {                           \
    (void)sizeof(x);             \
    (void)sizeof(y);             \
    (void)sizeof(z);             \
  } while (0)

#define ODY_TRACE_INSTANT(rec, cat, name, ts, id) ODY_TRACE_NOP2_(rec, id)
#define ODY_TRACE_INSTANT1(rec, cat, name, ts, id, a0n, a0) ODY_TRACE_NOP3_(rec, id, a0)
#define ODY_TRACE_INSTANT2(rec, cat, name, ts, id, a0n, a0, a1n, a1) \
  ODY_TRACE_NOP3_(rec, a0, a1)
#define ODY_TRACE_COUNTER(rec, cat, name, ts, id, value) ODY_TRACE_NOP3_(rec, id, value)
#define ODY_TRACE_BEGIN(rec, cat, name, ts, id) ODY_TRACE_NOP2_(rec, id)
#define ODY_TRACE_BEGIN1(rec, cat, name, ts, id, a0n, a0) ODY_TRACE_NOP3_(rec, id, a0)
#define ODY_TRACE_BEGIN2(rec, cat, name, ts, id, a0n, a0, a1n, a1) \
  ODY_TRACE_NOP3_(rec, a0, a1)
#define ODY_TRACE_END(rec, cat, name, ts, id) ODY_TRACE_NOP2_(rec, id)
#define ODY_TRACE_END1(rec, cat, name, ts, id, a0n, a0) ODY_TRACE_NOP3_(rec, id, a0)
#define ODY_TRACE_SPAN_ID(rec) ((void)sizeof(rec), ::std::uint64_t{0})

#endif  // ODYSSEY_TRACE_DISABLED

#endif  // SRC_TRACE_TRACE_MACROS_H_

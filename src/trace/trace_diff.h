// Golden-trace canonicalization, schema validation, and determinism
// diffing.
//
// Canonical form: one line per non-metadata event, as space-separated
// `key=value` tokens in a fixed key order, with numbers normalized and
// correlation ids densely renumbered by first appearance.  The renumbering
// makes the canonical form independent of process-global id counters
// (ConnectionId, span ids), so two in-process runs of the same scenario —
// and a run compared against a checked-in golden file — canonicalize
// identically when and only when they recorded the same events.
//
// DiffCanonical reports the first divergence between two canonical traces:
// the event index, its sim time, and the first differing field.

#ifndef SRC_TRACE_TRACE_DIFF_H_
#define SRC_TRACE_TRACE_DIFF_H_

#include <cstdint>
#include <string>
#include <vector>

namespace odyssey {

// Parses |json_text| as an exported chrome trace and returns its canonical
// lines.  On failure returns an empty vector with |error| set.
std::vector<std::string> CanonicalizeChromeTrace(const std::string& json_text,
                                                 std::string* error);

// First divergence between two canonical traces.
struct TraceDiffResult {
  bool identical = true;
  size_t index = 0;        // index of the first divergent event
  int64_t ts_a = 0;        // that event's sim time in each trace (µs)
  int64_t ts_b = 0;
  std::string field;       // first differing key, or "missing_event"
  std::string value_a;     // the differing values (or whole lines)
  std::string value_b;
  std::string Format() const;
};

TraceDiffResult DiffCanonical(const std::vector<std::string>& a,
                              const std::vector<std::string>& b);

// Structural validation of an exported trace against the odytrace schema:
// a traceEvents array whose entries carry the required fields with the
// right types, known phases, and known categories.
struct TraceValidationResult {
  bool ok = false;
  std::string error;                     // first violation, when !ok
  size_t event_count = 0;                // non-metadata events
  std::vector<std::string> categories;   // distinct categories seen, sorted
};

TraceValidationResult ValidateChromeTrace(const std::string& json_text);

}  // namespace odyssey

#endif  // SRC_TRACE_TRACE_DIFF_H_

#include "src/trace/chrome_trace_exporter.h"

#include <fstream>
#include <string>

#include "src/trace/trace_json.h"

namespace odyssey {
namespace {

constexpr int kPid = 1;

// One chrome-trace event object, on a single line.
void AppendEvent(const TraceEvent& event, std::string* out) {
  out->append("{\"ph\":\"");
  out->append(TracePhaseCode(event.phase));
  out->append("\",\"pid\":");
  out->append(std::to_string(kPid));
  out->append(",\"tid\":");
  out->append(std::to_string(static_cast<int>(event.category) + 1));
  out->append(",\"ts\":");
  out->append(std::to_string(event.ts));
  out->append(",\"name\":");
  out->append(JsonQuote(event.name != nullptr ? event.name : "?"));
  out->append(",\"cat\":\"");
  out->append(TraceCategoryName(event.category));
  out->append("\"");
  // Async span events require an id to correlate begin with end; instants
  // and counters carry one only when the emitter set it (it scopes
  // per-connection/per-app series).
  if (event.phase == TracePhase::kSpanBegin || event.phase == TracePhase::kSpanEnd ||
      event.id != 0) {
    out->append(",\"id\":\"");
    out->append(std::to_string(event.id));
    out->append("\"");
  }
  if (event.phase == TracePhase::kInstant) {
    out->append(",\"s\":\"t\"");  // thread-scoped instant
  }
  if (event.arg0_name != nullptr || event.arg1_name != nullptr) {
    out->append(",\"args\":{");
    if (event.arg0_name != nullptr) {
      out->append(JsonQuote(event.arg0_name));
      out->append(":");
      out->append(JsonNumberToString(event.arg0));
    }
    if (event.arg1_name != nullptr) {
      if (event.arg0_name != nullptr) {
        out->append(",");
      }
      out->append(JsonQuote(event.arg1_name));
      out->append(":");
      out->append(JsonNumberToString(event.arg1));
    }
    out->append("}");
  }
  out->append("}");
}

void AppendThreadName(int tid, const std::string& name, std::string* out) {
  out->append("{\"ph\":\"M\",\"pid\":");
  out->append(std::to_string(kPid));
  out->append(",\"tid\":");
  out->append(std::to_string(tid));
  out->append(",\"name\":\"thread_name\",\"args\":{\"name\":");
  out->append(JsonQuote(name));
  out->append("}}");
}

}  // namespace

std::string ChromeTraceExporter::ToJson(const TraceRecorder& recorder) {
  const std::vector<TraceEvent> events = recorder.Snapshot();
  std::string out;
  out.reserve(events.size() * 128 + 1024);
  out.append("{\n\"displayTimeUnit\":\"ms\",\n");
  out.append("\"otherData\":{\"clock\":\"virtual-microseconds\",\"dropped_events\":\"");
  out.append(std::to_string(recorder.dropped_count()));
  out.append("\"},\n\"traceEvents\":[\n");

  // Metadata first: the process, then one named track per category that
  // actually recorded something.
  out.append("{\"ph\":\"M\",\"pid\":");
  out.append(std::to_string(kPid));
  out.append(",\"name\":\"process_name\",\"args\":{\"name\":\"odyssey\"}}");
  for (int c = 0; c < kTraceCategoryCount; ++c) {
    if (recorder.category_counts()[c] == 0) {
      continue;
    }
    out.append(",\n");
    AppendThreadName(c + 1, TraceCategoryName(static_cast<TraceCategory>(c)), &out);
  }
  for (const TraceEvent& event : events) {
    out.append(",\n");
    AppendEvent(event, &out);
  }
  out.append("\n]\n}\n");
  return out;
}

bool ChromeTraceExporter::WriteFile(const TraceRecorder& recorder, const std::string& path,
                                    std::string* error) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    if (error != nullptr) {
      *error = "cannot open " + path + " for writing";
    }
    return false;
  }
  const std::string json = ToJson(recorder);
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  file.flush();
  if (!file) {
    if (error != nullptr) {
      *error = "short write to " + path;
    }
    return false;
  }
  if (error != nullptr) {
    error->clear();
  }
  return true;
}

}  // namespace odyssey

#include "src/trace/trace_json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace odyssey {
namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  JsonValue Parse() {
    JsonValue value = ParseValue();
    if (failed_) {
      return JsonValue();
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after document");
    }
    error_->clear();
    return value;
  }

 private:
  JsonValue Fail(const std::string& message) {
    if (!failed_) {
      failed_ = true;
      *error_ = message + " at offset " + std::to_string(pos_);
    }
    return JsonValue();
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool Consume(char expected) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of document");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseKeyword();
      case 'n':
        return ParseNull();
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    ++pos_;  // '{'
    std::map<std::string, JsonValue> members;
    SkipWhitespace();
    if (Consume('}')) {
      return JsonValue::MakeObject(std::move(members));
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      JsonValue key = ParseString();
      if (failed_) {
        return JsonValue();
      }
      if (!Consume(':')) {
        return Fail("expected ':' after object key");
      }
      JsonValue value = ParseValue();
      if (failed_) {
        return JsonValue();
      }
      members[key.string_value()] = std::move(value);
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return JsonValue::MakeObject(std::move(members));
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  JsonValue ParseArray() {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) {
      return JsonValue::MakeArray(std::move(items));
    }
    while (true) {
      JsonValue value = ParseValue();
      if (failed_) {
        return JsonValue();
      }
      items.push_back(std::move(value));
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return JsonValue::MakeArray(std::move(items));
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  JsonValue ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return JsonValue::MakeString(std::move(out));
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) {
          return Fail("truncated escape sequence");
        }
        const char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Fail("truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad \\u escape");
              }
            }
            pos_ += 4;
            // Traces are ASCII; encode anything else as UTF-8.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Fail("unknown escape sequence");
        }
        continue;
      }
      out.push_back(c);
      ++pos_;
    }
    return Fail("unterminated string");
  }

  JsonValue ParseKeyword() {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return JsonValue::MakeBool(true);
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return JsonValue::MakeBool(false);
    }
    return Fail("unknown keyword");
  }

  JsonValue ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue::MakeNull();
    }
    return Fail("unknown keyword");
  }

  JsonValue ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected a value");
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail("malformed number '" + token + "'");
    }
    return JsonValue::MakeNumber(value);
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) {
    return nullptr;
  }
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::MakeNumber(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::MakeString(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> v) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.array_ = std::move(v);
  return out;
}

JsonValue JsonValue::MakeObject(std::map<std::string, JsonValue> v) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.object_ = std::move(v);
  return out;
}

JsonValue ParseJson(const std::string& text, std::string* error) {
  return Parser(text, error).Parse();
}

std::string JsonQuote(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
        break;
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonNumberToString(double value) {
  // Integral values (timestamps, ids, byte counts) print without a
  // fraction; everything else uses enough digits to round-trip, so the
  // canonical form of a number is a pure function of its bits.
  if (std::isfinite(value) && std::floor(value) == value &&
      std::fabs(value) < 9.007199254740992e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
  }
  if (!std::isfinite(value)) {
    return "0";  // JSON has no Inf/NaN; traces never contain them
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace odyssey

// TraceRecorder: a bounded ring buffer of trace events.
//
// The recorder is the only mutable state in the odytrace subsystem.  It is
// constructed with a fixed capacity (all storage preallocated), installed
// into a Simulation with Simulation::set_trace(), and consulted by the
// ODY_TRACE_* macros: a null recorder makes every macro a single pointer
// test, so instrumentation costs nothing on runs that do not record.
//
// Two overflow policies:
//   kDropNewest       keeps the oldest events and counts the rest as
//                     dropped — the stable-prefix behaviour golden-trace
//                     diffing wants;
//   kOverwriteOldest  classic flight-recorder semantics, keeping the most
//                     recent window of events.
//
// Determinism: the recorder draws nothing from wall clock or entropy.  Two
// runs with the same seed record identical event sequences, which is what
// the golden-trace regression enforces.

#ifndef SRC_TRACE_TRACE_RECORDER_H_
#define SRC_TRACE_TRACE_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/trace/trace_event.h"

namespace odyssey {

class TraceRecorder {
 public:
  enum class OverflowPolicy {
    kDropNewest,
    kOverwriteOldest,
  };

  // Default capacity: 256k events (~14 MB), ample for any single scenario
  // in the suite while keeping accidental recorders cheap.
  static constexpr size_t kDefaultCapacity = size_t{1} << 18;

  explicit TraceRecorder(size_t capacity = kDefaultCapacity,
                         OverflowPolicy policy = OverflowPolicy::kDropNewest);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Appends |event|; on a full buffer either drops it or overwrites the
  // oldest, per the policy.  Never allocates.
  void Record(const TraceEvent& event);

  // Issues a fresh span-correlation id (1-based, monotonically increasing).
  uint64_t NextSpanId() { return ++last_span_id_; }

  // Events currently held, in recording order.
  size_t size() const { return size_; }
  size_t capacity() const { return events_.size(); }
  // Total events ever offered to Record().
  uint64_t recorded_count() const { return recorded_; }
  // Events lost to overflow (dropped or overwritten, per the policy).
  uint64_t dropped_count() const { return dropped_; }
  OverflowPolicy policy() const { return policy_; }

  // The held events in chronological (recording) order; unwraps the ring.
  std::vector<TraceEvent> Snapshot() const;

  // Events held per category, indexed by static_cast<int>(TraceCategory).
  const uint64_t* category_counts() const { return category_counts_; }

  // Forgets all events and counters (span ids keep increasing, so ids stay
  // unique across a Clear).
  void Clear();

 private:
  std::vector<TraceEvent> events_;  // fixed-size ring storage
  OverflowPolicy policy_;
  size_t head_ = 0;  // index of the oldest held event
  size_t size_ = 0;  // events currently held
  uint64_t recorded_ = 0;
  uint64_t dropped_ = 0;
  uint64_t last_span_id_ = 0;
  uint64_t category_counts_[kTraceCategoryCount] = {};
};

}  // namespace odyssey

#endif  // SRC_TRACE_TRACE_RECORDER_H_

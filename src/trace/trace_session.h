// Command-line plumbing for opt-in tracing in benches and examples.
//
// TraceSession owns a TraceRecorder when the user asked for one
// (`--trace-out=<path>`) and exports it on Export().  When the flag is
// absent the session holds no recorder and recorder() returns nullptr, so
// every ODY_TRACE_* macro downstream is a cheap null-check — tracing truly
// off, not merely discarded.
//
// FromArgs() removes the flags it consumed from argv so the remaining
// arguments can be handed to google-benchmark or example-specific parsing.

#ifndef SRC_TRACE_TRACE_SESSION_H_
#define SRC_TRACE_TRACE_SESSION_H_

#include <atomic>
#include <iostream>
#include <memory>
#include <string>
#include <utility>

#include "src/trace/chrome_trace_exporter.h"
#include "src/trace/trace_recorder.h"

namespace odyssey {

class TraceSession {
 public:
  TraceSession() = default;
  explicit TraceSession(std::string path) : path_(std::move(path)) {
    if (!path_.empty()) {
      recorder_ = std::make_unique<TraceRecorder>();
    }
  }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  // Consumes --trace-out=<path> from |argv| (compacting the array and
  // decrementing |*argc|) and returns the corresponding session.
  static TraceSession FromArgs(int* argc, char** argv) {
    std::string path;
    int kept = 1;
    for (int i = 1; i < *argc; ++i) {
      const std::string arg = argv[i];
      const std::string prefix = "--trace-out=";
      if (arg.compare(0, prefix.size(), prefix) == 0) {
        path = arg.substr(prefix.size());
        continue;
      }
      argv[kept++] = argv[i];
    }
    *argc = kept;
    return TraceSession(path);
  }

  bool enabled() const { return recorder_ != nullptr; }
  TraceRecorder* recorder() { return recorder_.get(); }
  const std::string& path() const { return path_; }

  // Hands the recorder to the first caller only, so a harness that runs many
  // trials exports one coherent timeline (the first trial that asked) rather
  // than overlaying every trial's virtual clock.  Thread-safe: trials may
  // race to claim from worker threads and exactly one wins.  Returns null
  // when tracing is off or the recorder was already claimed.  (Deterministic
  // drivers — the campaign runner — should instead designate one trial and
  // claim once on its behalf, so the exported timeline does not depend on
  // which worker got there first.)
  TraceRecorder* ClaimRecorderOnce() {
    // acq_rel: the winning exchange must publish (release) whatever the
    // claimer wrote before claiming, and a loser must observe (acquire) the
    // winner's prior writes before deciding not to record.  In the current
    // single-designated-claimer campaign flow relaxed would suffice, but
    // the method's contract allows racing worker threads, so it keeps the
    // ordering its contract promises rather than the weakest one today's
    // callers need.
    if (recorder_ == nullptr || claimed_.exchange(true, std::memory_order_acq_rel)) {
      return nullptr;
    }
    return recorder_.get();
  }

  // Writes the trace to path().  No-op success when tracing is disabled.
  [[nodiscard]] bool Export(std::string* error) {
    if (recorder_ == nullptr) {
      if (error != nullptr) {
        error->clear();
      }
      return true;
    }
    return ChromeTraceExporter::WriteFile(*recorder_, path_, error);
  }

  // Export() with failure reported to stderr; returns whether it succeeded.
  bool ExportOrWarn() {
    std::string error;
    if (!Export(&error)) {
      std::cerr << "trace export failed: " << error << "\n";
      return false;
    }
    if (enabled()) {
      std::cerr << "trace written to " << path_ << " (" << recorder_->recorded_count()
                << " events, " << recorder_->dropped_count() << " dropped)\n";
    }
    return true;
  }

 private:
  std::string path_;
  std::unique_ptr<TraceRecorder> recorder_;
  std::atomic<bool> claimed_{false};
};

}  // namespace odyssey

#endif  // SRC_TRACE_TRACE_SESSION_H_

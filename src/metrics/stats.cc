#include "src/metrics/stats.h"

#include <cmath>
#include <cstdio>

namespace odyssey {

Stats::Stats(const std::vector<double>& samples) {
  for (const double sample : samples) {
    Add(sample);
  }
}

void Stats::Add(double sample) {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    if (sample < min_) {
      min_ = sample;
    }
    if (sample > max_) {
      max_ = sample;
    }
  }
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / count_;
  m2_ += delta * (sample - mean_);
}

double Stats::stddev() const {
  if (count_ < 2) {
    return 0.0;
  }
  return std::sqrt(m2_ / (count_ - 1));
}

std::string Stats::Format(int precision) const {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f (%.*f)", precision, mean(), precision, stddev());
  return buffer;
}

double SettlingTime(const Series& series, double from, double lo, double hi) {
  double settled_at = -1.0;
  for (const auto& point : series) {
    if (point.t_seconds < from) {
      continue;
    }
    const bool inside = point.value >= lo && point.value <= hi;
    if (inside) {
      if (settled_at < 0.0) {
        settled_at = point.t_seconds;
      }
    } else {
      settled_at = -1.0;
    }
  }
  return settled_at < 0.0 ? -1.0 : settled_at - from;
}

}  // namespace odyssey

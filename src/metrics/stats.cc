#include "src/metrics/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace odyssey {

Stats::Stats(const std::vector<double>& samples) {
  for (const double sample : samples) {
    Add(sample);
  }
}

void Stats::Add(double sample) {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    if (sample < min_) {
      min_ = sample;
    }
    if (sample > max_) {
      max_ = sample;
    }
  }
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / count_;
  m2_ += delta * (sample - mean_);
}

double Stats::stddev() const {
  if (count_ < 2) {
    return 0.0;
  }
  return std::sqrt(m2_ / (count_ - 1));
}

std::string Stats::Format(int precision) const {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f (%.*f)", precision, mean(), precision, stddev());
  return buffer;
}

double Percentile(std::vector<double> samples, double pct) {
  if (samples.empty()) {
    return 0.0;
  }
  if (pct > 100.0) {
    pct = 100.0;
  }
  std::sort(samples.begin(), samples.end());
  const auto n = samples.size();
  // Nearest rank, 1-based: rank = ceil(pct/100 * n), clamped to [1, n].
  auto rank = static_cast<size_t>(std::ceil(pct / 100.0 * static_cast<double>(n)));
  if (rank < 1) {
    rank = 1;
  }
  if (rank > n) {
    rank = n;
  }
  return samples[rank - 1];
}

SummaryStats Summarize(const std::vector<double>& samples) {
  SummaryStats out;
  if (samples.empty()) {
    return out;
  }
  const Stats stats(samples);
  out.count = stats.count();
  out.mean = stats.mean();
  out.stddev = stats.stddev();
  out.min = stats.min();
  out.max = stats.max();
  out.p50 = Percentile(samples, 50.0);
  out.p95 = Percentile(samples, 95.0);
  out.p99 = Percentile(samples, 99.0);
  return out;
}

double SettlingTime(const Series& series, double from, double lo, double hi) {
  double settled_at = -1.0;
  for (const auto& point : series) {
    if (point.t_seconds < from) {
      continue;
    }
    const bool inside = point.value >= lo && point.value <= hi;
    if (inside) {
      if (settled_at < 0.0) {
        settled_at = point.t_seconds;
      }
    } else {
      settled_at = -1.0;
    }
  }
  return settled_at < 0.0 ? -1.0 : settled_at - from;
}

}  // namespace odyssey

// Plain-text table formatting for the benchmark harnesses, matching the
// row/column structure of the paper's figures.

#ifndef SRC_METRICS_TABLE_H_
#define SRC_METRICS_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace odyssey {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Renders with column alignment and a separator under the header.
  void Print(std::ostream& os) const;
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace odyssey

#endif  // SRC_METRICS_TABLE_H_

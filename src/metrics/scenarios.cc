#include "src/metrics/scenarios.h"

#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "src/apps/bitstream_app.h"
#include "src/apps/speech_frontend.h"
#include "src/apps/video_player.h"
#include "src/apps/web_browser.h"
#include "src/core/cache_manager.h"
#include "src/core/contract.h"
#include "src/core/tsop_codec.h"
#include "src/metrics/experiment.h"
#include "src/metrics/trial.h"
#include "src/servers/calibration.h"
#include "src/servers/file_server.h"
#include "src/trace/trace_macros.h"
#include "src/trace/trace_recorder.h"

namespace odyssey {
namespace {

constexpr Duration kAgilitySamplePeriod = 100 * kMillisecond;

// The adaptive consumer tolerates a ±30% drift around its chosen level.
constexpr double kWindowLowerFactor = 0.7;
constexpr double kWindowUpperFactor = 1.3;

// Holds a window of tolerance around |level|, re-centering on every upcall
// (§4.2's request/upcall/re-request loop).  Each violation is one
// adaptation, recorded as a kApp "adapt" instant.
void RegisterAdaptiveWindow(OdysseyClient* client, AppId app, double level) {
  ResourceDescriptor descriptor;
  descriptor.resource = ResourceId::kNetworkBandwidth;
  descriptor.lower = kWindowLowerFactor * level;
  descriptor.upper = kWindowUpperFactor * level;
  descriptor.handler = [client, app](RequestId, ResourceId, double new_level) {
    ODY_TRACE_INSTANT1(client->sim()->trace(), kApp, "adapt", client->sim()->now(), app,
                       "level", new_level);
    RegisterAdaptiveWindow(client, app, new_level);
  };
  const RequestResult result = client->Request(app, descriptor);
  if (!result.ok()) {
    // The level moved since the upcall was posted; a window centered on the
    // level the viceroy just reported always admits it, so this recursion
    // terminates on the next call.
    RegisterAdaptiveWindow(client, app, result.current_level);
  }
}

// Waits (in one-second steps) for the estimator's first figures, then
// starts the adaptive loop at the reported level.
void StartAdaptingWhenEstimated(OdysseyClient* client, AppId app) {
  client->sim()->Schedule(kSecond, [client, app] {
    if (!client->HasBandwidthEstimate()) {
      StartAdaptingWhenEstimated(client, app);
      return;
    }
    RegisterAdaptiveWindow(client, app,
                           client->CurrentLevel(app, ResourceId::kNetworkBandwidth));
  });
}

}  // namespace

AgilityTrialResult RunSupplyAgilityTrial(Waveform waveform, uint64_t seed,
                                         TraceRecorder* trace) {
  ExperimentRig rig(seed, StrategyKind::kOdyssey);
  rig.sim().set_trace(trace);
  BitstreamApp app(&rig.client(), "bitstream");
  const Time measure = rig.Replay(MakeWaveform(waveform));
  app.Start();
  StartAdaptingWhenEstimated(&rig.client(), app.app());

  Sampler sampler(&rig.sim(), kAgilitySamplePeriod, measure, [&rig] {  // ody_lint: owned-capture
    return rig.centralized()->TotalSupply(rig.sim().now());
  });
  // ody_lint: owned-capture
  rig.sim().ScheduleAt(measure, [&] { sampler.Run(measure + kWaveformLength); });
  rig.sim().RunUntil(measure + kWaveformLength);

  const UpcallDispatcher& upcalls = rig.client().viceroy().upcalls();
  AgilityTrialResult result;
  result.series = sampler.series();
  result.upcalls = upcalls.delivered_count();
  result.upcall_latency_mean_ms = upcalls.latency_mean_us() / 1000.0;
  result.upcall_latency_max_ms = static_cast<double>(upcalls.latency_max()) / 1000.0;
  return result;
}

MobilityTrialResult RunMobilityTrackingTrial(const ReplayTrace& replay, uint64_t seed,
                                             TraceRecorder* trace) {
  ExperimentRig rig(seed, StrategyKind::kOdyssey);
  rig.sim().set_trace(trace);
  BitstreamApp app(&rig.client(), "bitstream");
  const Time measure = rig.Replay(replay);
  const Time end = measure + replay.TotalDuration();
  app.Start();
  StartAdaptingWhenEstimated(&rig.client(), app.app());

  Sampler sampler(&rig.sim(), kAgilitySamplePeriod, measure, [&rig] {  // ody_lint: owned-capture
    return rig.centralized()->TotalSupply(rig.sim().now());
  });
  // ody_lint: owned-capture
  rig.sim().ScheduleAt(measure, [&] { sampler.Run(end); });
  rig.sim().RunUntil(end);

  MobilityTrialResult result;
  uint64_t live = 0;
  uint64_t in_band = 0;
  double error_pct_sum = 0.0;
  for (const SeriesPoint& point : sampler.series()) {
    // Sample timestamps are relative to |measure|, which is also the start
    // of the unprimed replay, so they index the nominal waveform directly.
    const double nominal = replay.BandwidthAt(SecondsToDuration(point.t_seconds));
    if (nominal <= 0.0) {
      result.shadow_seconds += DurationToSeconds(kAgilitySamplePeriod);
      continue;
    }
    ++live;
    error_pct_sum += 100.0 * std::abs(point.value - nominal) / nominal;
    if (point.value >= 0.85 * nominal && point.value <= 1.15 * nominal) {
      ++in_band;
    }
  }
  if (live > 0) {
    result.tracking_error_pct = error_pct_sum / static_cast<double>(live);
    result.in_band_pct = 100.0 * static_cast<double>(in_band) / static_cast<double>(live);
  }
  const UpcallDispatcher& upcalls = rig.client().viceroy().upcalls();
  result.upcalls = upcalls.delivered_count();
  result.upcall_latency_mean_ms = upcalls.latency_mean_us() / 1000.0;
  result.upcall_latency_max_ms = static_cast<double>(upcalls.latency_max()) / 1000.0;
  return result;
}

DemandTrialResult RunDemandAgilityTrial(double utilization, uint64_t seed,
                                        TraceRecorder* trace) {
  constexpr Duration kSamplePeriod = 100 * kMillisecond;
  constexpr Duration kObservation = 60 * kSecond;

  ExperimentRig rig(seed, StrategyKind::kOdyssey);
  rig.sim().set_trace(trace);
  BitstreamApp first(&rig.client(), "bitstream-1");
  BitstreamApp second(&rig.client(), "bitstream-2");
  const double target = utilization >= 1.0 ? 0.0 : utilization * kHighBandwidth;

  // Steady high bandwidth throughout (the demand experiments run at the
  // higher modulated bandwidth, §6.2.1).
  const Time measure = rig.Replay(MakeConstant(kHighBandwidth, 2 * kObservation));
  first.Start(target);
  // ody_lint: owned-capture
  rig.sim().ScheduleAt(measure + 30 * kSecond, [&] { second.Start(target); });

  DemandTrialResult out;
  Sampler total_sampler(&rig.sim(), kSamplePeriod, measure, [&rig] {  // ody_lint: owned-capture
    return rig.centralized()->TotalSupply(rig.sim().now());
  });
  // ody_lint: owned-capture
  Sampler share_sampler(&rig.sim(), kSamplePeriod, measure, [&rig, &second] {
    if (second.connection() == 0) {
      return 0.0;
    }
    return rig.centralized()->ConnectionAvailability(second.connection(), rig.sim().now());
  });
  rig.sim().ScheduleAt(measure, [&] {  // ody_lint: owned-capture
    total_sampler.Run(measure + kObservation);
    share_sampler.Run(measure + kObservation);
  });
  rig.sim().RunUntil(measure + kObservation);
  out.total = total_sampler.series();
  out.second_share = share_sampler.series();
  return out;
}

VideoTrialResult RunVideoTrial(Waveform waveform, int fixed_track, uint64_t seed,
                               TraceRecorder* trace) {
  ExperimentRig rig(seed, StrategyKind::kOdyssey);
  rig.sim().set_trace(trace);
  VideoPlayerOptions options;
  options.fixed_track = fixed_track;
  // Play through priming plus the waveform; measure only the 600 frames
  // displayed during the waveform.
  options.frames_to_play = 1000;
  VideoPlayer player(&rig.client(), options);
  const Time measure = rig.Replay(MakeWaveform(waveform));
  player.Start();
  rig.sim().RunUntil(measure + kWaveformLength);
  VideoTrialResult result;
  result.drops = player.DropsBetween(measure, measure + kWaveformLength);
  result.fidelity = player.MeanFidelityBetween(measure, measure + kWaveformLength);
  return result;
}

WebTrialResult RunWebTrial(const ReplayTrace& replay, int fixed_level, bool prime,
                           uint64_t seed, TraceRecorder* trace) {
  ExperimentRig rig(seed, StrategyKind::kOdyssey);
  rig.sim().set_trace(trace);
  WebBrowserOptions options;
  options.fixed_level = fixed_level;
  WebBrowser browser(&rig.client(), options);
  const Time measure = rig.Replay(replay, prime);
  const Time end = measure + replay.TotalDuration();
  browser.Start();
  rig.sim().RunUntil(end);
  browser.Stop();
  WebTrialResult result;
  result.seconds = browser.MeanSecondsBetween(measure, end);
  result.fidelity = browser.MeanFidelityBetween(measure, end);
  return result;
}

double RunSpeechTrialSeconds(Waveform waveform, SpeechMode mode, uint64_t seed,
                             TraceRecorder* trace) {
  ExperimentRig rig(seed, StrategyKind::kOdyssey);
  rig.sim().set_trace(trace);
  SpeechFrontEndOptions options;
  options.mode = mode;
  SpeechFrontEnd frontend(&rig.client(), options);
  const Time measure = rig.Replay(MakeWaveform(waveform));
  frontend.Start();
  rig.sim().RunUntil(measure + kWaveformLength);
  frontend.Stop();
  return frontend.MeanSecondsBetween(measure, measure + kWaveformLength);
}

ConcurrentTrialResult RunConcurrentTrial(StrategyKind strategy, uint64_t seed,
                                         TraceRecorder* trace) {
  ExperimentRig rig(seed, strategy);
  rig.sim().set_trace(trace);
  VideoPlayerOptions video_options;
  // 15 minutes at 10 fps plus the priming period; the 600-frame movie
  // loops continuously.
  video_options.frames_to_play = 10000;
  VideoPlayer video(&rig.client(), video_options);
  WebBrowser web(&rig.client(), WebBrowserOptions{});
  SpeechFrontEnd speech(&rig.client(), SpeechFrontEndOptions{});

  const ReplayTrace urban = MakeUrbanScenario();
  const Time measure = rig.Replay(urban);
  const Time end = measure + urban.TotalDuration();
  video.Start();
  web.Start();
  speech.Start();
  rig.sim().RunUntil(end);

  ConcurrentTrialResult result;
  result.video_drops = video.DropsBetween(measure, end);
  result.video_fidelity = video.MeanFidelityBetween(measure, end);
  result.web_seconds = web.MeanSecondsBetween(measure, end);
  result.web_fidelity = web.MeanFidelityBetween(measure, end);
  result.speech_seconds = speech.MeanSecondsBetween(measure, end);
  return result;
}

EstimatorAblationTrialResult RunEstimatorAblationTrial(const SupplyModelConfig& config,
                                                       double window_bytes, Waveform waveform,
                                                       uint64_t seed, TraceRecorder* trace) {
  // Hand-built rig: the swept estimator configuration replaces the
  // ExperimentRig default.
  Simulation sim(seed);
  sim.set_trace(trace);
  Link link(&sim, kHighBandwidth, kOneWayLatency);
  Modulator modulator(&sim, &link);
  auto strategy = std::make_unique<CentralizedStrategy>(&sim, config);
  CentralizedStrategy* centralized = strategy.get();
  OdysseyClient client(&sim, &link, std::move(strategy));
  client.InstallWarden(std::make_unique<BitstreamWarden>());
  BitstreamApp app(&client, "bitstream");

  const ReplayTrace replay = MakeWaveform(waveform).WithPriming(kPrimingPeriod);
  modulator.Replay(replay);
  const Time measure = kPrimingPeriod;
  app.Start(0.0, window_bytes);
  Sampler sampler(&sim, 100 * kMillisecond, measure,
                  [&] { return centralized->TotalSupply(sim.now()); });  // ody_lint: owned-capture
  // ody_lint: owned-capture
  sim.ScheduleAt(measure, [&] { sampler.Run(measure + kWaveformLength); });
  sim.RunUntil(measure + kWaveformLength);

  EstimatorAblationTrialResult result;
  const double target = waveform == Waveform::kStepUp ? kHighBandwidth : kLowBandwidth;
  result.settle_s = SettlingTime(sampler.series(), 30.0, 0.85 * target, 1.15 * target);
  // Steady-state error over the pre-transition half.
  double error_sum = 0.0;
  int error_count = 0;
  const double pre = waveform == Waveform::kStepUp ? kLowBandwidth : kHighBandwidth;
  for (const auto& point : sampler.series()) {
    if (point.t_seconds > 10.0 && point.t_seconds < 29.0) {
      error_sum += 100.0 * std::abs(point.value - pre) / pre;
      ++error_count;
    }
  }
  if (error_count > 0) {
    result.steady_error_pct = error_sum / error_count;
  }
  return result;
}

FairshareTrialResult RunFairshareAblationTrial(const SupplyModelConfig& config, uint64_t seed,
                                               TraceRecorder* trace) {
  // Shortened urban walk: H, L, H, L, H at 45 s each.
  ReplayTrace replay;
  for (int i = 0; i < 5; ++i) {
    replay.Append(45 * kSecond, i % 2 == 0 ? kHighBandwidth : kLowBandwidth, kOneWayLatency);
  }

  Simulation sim(seed);
  sim.set_trace(trace);
  Link link(&sim, kHighBandwidth, kOneWayLatency);
  Modulator modulator(&sim, &link);
  OdysseyClient client(&sim, &link, std::make_unique<CentralizedStrategy>(&sim, config));

  Rng* rng = &sim.rng();
  VideoServer video_server(rng);
  DistillationServer distillation(rng);
  JanusServer janus(rng);
  const Status added =
      video_server.AddMovie(VideoServer::MakeDefaultMovie(kDefaultMovie, kVideoFramesPerTrial));
  ODY_ASSERT(added.ok(), "fresh video server rejected the default movie");
  distillation.PublishImage(kTestImageUrl, kWebImageBytes);
  client.InstallWarden(std::make_unique<VideoWarden>(&video_server));
  client.InstallWarden(std::make_unique<WebWarden>(&distillation));
  client.InstallWarden(std::make_unique<SpeechWarden>(&janus));

  VideoPlayerOptions video_options;
  video_options.frames_to_play = 4000;
  VideoPlayer video(&client, video_options);
  WebBrowser web(&client, WebBrowserOptions{});
  SpeechFrontEnd speech(&client, SpeechFrontEndOptions{});

  modulator.Replay(replay.WithPriming(kPrimingPeriod));
  const Time measure = kPrimingPeriod;
  const Time end = measure + replay.TotalDuration();
  video.Start();
  web.Start();
  speech.Start();
  sim.RunUntil(end);

  FairshareTrialResult result;
  result.video_drops = video.DropsBetween(measure, end);
  result.video_fidelity = video.MeanFidelityBetween(measure, end);
  result.web_seconds = web.MeanSecondsBetween(measure, end);
  int goal_met = 0;
  int fetches = 0;
  for (const auto& outcome : web.outcomes()) {
    if (outcome.started >= measure && outcome.started < end) {
      ++fetches;
      goal_met += outcome.elapsed <= kWebGoal ? 1 : 0;
    }
  }
  result.web_goal_pct = fetches == 0 ? 0.0 : 100.0 * goal_met / fetches;
  return result;
}

FileConsistencyTrialResult RunFileConsistencyTrial(FileConsistency level, uint64_t seed,
                                                   TraceRecorder* trace) {
  constexpr double kKb = 1024.0;
  ExperimentRig rig(seed, StrategyKind::kOdyssey);
  rig.sim().set_trace(trace);
  FileServer file_server(&rig.sim().rng());
  CacheManager cache(&rig.client().viceroy(), 1024.0);
  for (int i = 0; i < 8; ++i) {
    file_server.Publish("doc/" + std::to_string(i), 12.0 * kKb);
  }
  rig.client().InstallWarden(std::make_unique<FileWarden>(&file_server, &cache));
  const AppId app = rig.client().RegisterApplication("reader");
  rig.client().Tsop(app, std::string(kOdysseyRoot) + "files/", kFileSetConsistency,
                    PackStruct(FileSetConsistencyRequest{static_cast<int>(level)}),
                    [](Status, std::string) {});
  rig.Replay(MakeStepDown(), /*prime=*/true);

  // A server-side writer updates a random file every 2 s.
  std::function<void()> writer = [&] {
    const Status updated =
        file_server.Update("doc/" + std::to_string(rig.sim().rng().UniformInt(8)));
    ODY_ASSERT(updated.ok(), "writer touched an unpublished document");
    rig.sim().Schedule(2 * kSecond, writer);
  };
  rig.sim().Schedule(2 * kSecond, writer);

  // The reader sweeps the documents continuously.
  double read_ms_sum = 0.0;
  int reads = 0;
  double fidelity_sum = 0.0;
  // |index| and |start| are captured by value: the Tsop callback runs after
  // read_loop's frame is gone, so a default reference capture of the
  // parameter would read a dead stack slot (and did, before this was a
  // shared scenario — the reads swept pseudo-random documents that varied
  // with address-space layout instead of cycling 0..7).
  std::function<void(int)> read_loop = [&](int index) {
    const Time start = rig.sim().now();
    rig.client().Tsop(app, std::string(kOdysseyRoot) + "files/doc/" + std::to_string(index % 8),
                      // ody_lint: owned-capture
                      kFileRead, "", [&, start, index](Status status, std::string out) {
                        FileReadReply reply;
                        if (status.ok() && UnpackStruct(out, &reply)) {
                          read_ms_sum += DurationToMillis(rig.sim().now() - start);
                          fidelity_sum += reply.fidelity;
                          ++reads;
                        }
                        rig.sim().Schedule(200 * kMillisecond,
                                           // ody_lint: owned-capture
                                           [&read_loop, index] { read_loop(index + 1); });
                      });
  };
  read_loop(0);
  rig.sim().RunUntil(kPrimingPeriod + kWaveformLength);

  FileWardenStats stats;
  rig.client().Tsop(app, std::string(kOdysseyRoot) + "files/", kFileStats, "",
                    [&](Status status, std::string out) {  // ody_lint: owned-capture
                      ODY_ASSERT(status.ok() && UnpackStruct(out, &stats),
                                 "file stats tsop failed");
                    });
  FileConsistencyTrialResult result;
  result.mean_read_ms = reads == 0 ? 0.0 : read_ms_sum / reads;
  result.stale_pct = reads == 0 ? 0.0 : 100.0 * stats.stale_serves / reads;
  result.fidelity = reads == 0 ? 0.0 : fidelity_sum / reads;
  return result;
}

}  // namespace odyssey

#include "src/metrics/scenarios.h"

#include "src/apps/bitstream_app.h"
#include "src/metrics/experiment.h"
#include "src/metrics/trial.h"
#include "src/trace/trace_macros.h"
#include "src/trace/trace_recorder.h"

namespace odyssey {
namespace {

constexpr Duration kAgilitySamplePeriod = 100 * kMillisecond;

// The adaptive consumer tolerates a ±30% drift around its chosen level.
constexpr double kWindowLowerFactor = 0.7;
constexpr double kWindowUpperFactor = 1.3;

// Holds a window of tolerance around |level|, re-centering on every upcall
// (§4.2's request/upcall/re-request loop).  Each violation is one
// adaptation, recorded as a kApp "adapt" instant.
void RegisterAdaptiveWindow(OdysseyClient* client, AppId app, double level) {
  ResourceDescriptor descriptor;
  descriptor.resource = ResourceId::kNetworkBandwidth;
  descriptor.lower = kWindowLowerFactor * level;
  descriptor.upper = kWindowUpperFactor * level;
  descriptor.handler = [client, app](RequestId, ResourceId, double new_level) {
    ODY_TRACE_INSTANT1(client->sim()->trace(), kApp, "adapt", client->sim()->now(), app,
                       "level", new_level);
    RegisterAdaptiveWindow(client, app, new_level);
  };
  const RequestResult result = client->Request(app, descriptor);
  if (!result.ok()) {
    // The level moved since the upcall was posted; a window centered on the
    // level the viceroy just reported always admits it, so this recursion
    // terminates on the next call.
    RegisterAdaptiveWindow(client, app, result.current_level);
  }
}

// Waits (in one-second steps) for the estimator's first figures, then
// starts the adaptive loop at the reported level.
void StartAdaptingWhenEstimated(OdysseyClient* client, AppId app) {
  client->sim()->Schedule(kSecond, [client, app] {
    if (!client->HasBandwidthEstimate()) {
      StartAdaptingWhenEstimated(client, app);
      return;
    }
    RegisterAdaptiveWindow(client, app,
                           client->CurrentLevel(app, ResourceId::kNetworkBandwidth));
  });
}

}  // namespace

AgilityTrialResult RunSupplyAgilityTrial(Waveform waveform, uint64_t seed,
                                         TraceRecorder* trace) {
  ExperimentRig rig(seed, StrategyKind::kOdyssey);
  rig.sim().set_trace(trace);
  BitstreamApp app(&rig.client(), "bitstream");
  const Time measure = rig.Replay(MakeWaveform(waveform));
  app.Start();
  StartAdaptingWhenEstimated(&rig.client(), app.app());

  Sampler sampler(&rig.sim(), kAgilitySamplePeriod, measure, [&rig] {
    return rig.centralized()->TotalSupply(rig.sim().now());
  });
  rig.sim().ScheduleAt(measure, [&] { sampler.Run(measure + kWaveformLength); });
  rig.sim().RunUntil(measure + kWaveformLength);

  const UpcallDispatcher& upcalls = rig.client().viceroy().upcalls();
  AgilityTrialResult result;
  result.series = sampler.series();
  result.upcalls = upcalls.delivered_count();
  result.upcall_latency_mean_ms = upcalls.latency_mean_us() / 1000.0;
  result.upcall_latency_max_ms = static_cast<double>(upcalls.latency_max()) / 1000.0;
  return result;
}

}  // namespace odyssey

#include "src/metrics/trial.h"

#include <algorithm>

namespace odyssey {

SeriesBand MergeSeries(const std::vector<Series>& trials) {
  SeriesBand band;
  if (trials.empty()) {
    return band;
  }
  size_t length = trials.front().size();
  for (const auto& series : trials) {
    length = std::min(length, series.size());
  }
  band.t_seconds.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    double sum = 0.0;
    double lo = trials.front()[i].value;
    double hi = lo;
    for (const auto& series : trials) {
      const double v = series[i].value;
      sum += v;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    band.t_seconds.push_back(trials.front()[i].t_seconds);
    band.mean.push_back(sum / static_cast<double>(trials.size()));
    band.min.push_back(lo);
    band.max.push_back(hi);
  }
  return band;
}

}  // namespace odyssey

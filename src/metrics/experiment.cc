#include "src/metrics/experiment.h"

#include <utility>

#include "src/core/contract.h"
#include "src/servers/calibration.h"

namespace odyssey {

const char* StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kOdyssey:
      return "Odyssey";
    case StrategyKind::kLaissezFaire:
      return "Laissez-Faire";
    case StrategyKind::kBlindOptimism:
      return "Blind-Optimism";
    case StrategyKind::kCongestionManager:
      return "Congestion-Manager";
    case StrategyKind::kAdmissionBroker:
      return "Admission-Broker";
  }
  return "Unknown";
}

ExperimentRig::ExperimentRig(uint64_t seed, StrategyKind strategy)
    : sim_(seed),
      link_(&sim_, kHighBandwidth, kOneWayLatency),
      modulator_(&sim_, &link_),
      strategy_kind_(strategy),
      video_server_(&sim_.rng()),
      distillation_server_(&sim_.rng()) ,
      janus_server_(&sim_.rng()) {
  std::unique_ptr<BandwidthStrategy> bandwidth_strategy;
  switch (strategy) {
    case StrategyKind::kOdyssey: {
      auto centralized = std::make_unique<CentralizedStrategy>(&sim_);
      centralized_ = centralized.get();
      bandwidth_strategy = std::move(centralized);
      break;
    }
    case StrategyKind::kLaissezFaire:
      bandwidth_strategy = std::make_unique<LaissezFaireStrategy>();
      break;
    case StrategyKind::kBlindOptimism:
      bandwidth_strategy = std::make_unique<BlindOptimismStrategy>(&modulator_);
      break;
    case StrategyKind::kCongestionManager: {
      auto cm = std::make_unique<CongestionManagerStrategy>(&sim_);
      centralized_ = cm.get();
      bandwidth_strategy = std::move(cm);
      break;
    }
    case StrategyKind::kAdmissionBroker: {
      auto inner = std::make_unique<CentralizedStrategy>(&sim_);
      centralized_ = inner.get();
      bandwidth_strategy = std::make_unique<AdmissionBrokerStrategy>(&sim_, std::move(inner));
      break;
    }
  }
  client_ = std::make_unique<OdysseyClient>(&sim_, &link_, std::move(bandwidth_strategy),
                                            kUpcallLatency);

  // The rig is freshly constructed, so the catalog cannot already hold the
  // default movie; a failure here would invalidate every trial.
  const Status added =
      video_server_.AddMovie(VideoServer::MakeDefaultMovie(kDefaultMovie, kVideoFramesPerTrial));
  ODY_ASSERT(added.ok(), "experiment rig failed to seed the video catalog");
  distillation_server_.PublishImage(kTestImageUrl, kWebImageBytes);

  client_->InstallWarden(std::make_unique<VideoWarden>(&video_server_));
  client_->InstallWarden(std::make_unique<WebWarden>(&distillation_server_));
  client_->InstallWarden(std::make_unique<SpeechWarden>(&janus_server_));
  client_->InstallWarden(std::make_unique<BitstreamWarden>());
}

Time ExperimentRig::Replay(const ReplayTrace& trace, bool prime) {
  const ReplayTrace primed = prime ? trace.WithPriming(kPrimingPeriod) : trace;
  modulator_.Replay(primed);
  return sim_.now() + (prime ? kPrimingPeriod : 0);
}

}  // namespace odyssey

// Reusable experiment scenarios.
//
// The Figure-8 supply-agility trial lives here rather than in the bench so
// that the golden-trace regression, the CI determinism diff, and
// bench_fig08 all run the exact same event sequence.  The trial adds an
// adaptive consumer on top of the raw bitstream workload: it holds a
// window of tolerance around the reported bandwidth and re-centers on
// every upcall, so a traced run exercises the viceroy and application
// layers as well as estimation.

#ifndef SRC_METRICS_SCENARIOS_H_
#define SRC_METRICS_SCENARIOS_H_

#include <cstdint>

#include "src/metrics/stats.h"
#include "src/tracemod/waveforms.h"

namespace odyssey {

class TraceRecorder;

// Result of one supply-agility trial (one waveform, one seed).
struct AgilityTrialResult {
  Series series;  // supply estimate over the measured minute, 100ms grid

  // Upcall-latency accounting (satellite of the odytrace work): sim time
  // from a supply-change upcall being posted to its handler running.
  uint64_t upcalls = 0;
  double upcall_latency_mean_ms = 0.0;
  double upcall_latency_max_ms = 0.0;
};

// Runs one trial: a bitstream consumer at maximum rate with an adaptive
// bandwidth window, against |waveform| with the paper's 30-second priming.
// When |trace| is non-null every instrumented component records into it.
AgilityTrialResult RunSupplyAgilityTrial(Waveform waveform, uint64_t seed,
                                         TraceRecorder* trace = nullptr);

}  // namespace odyssey

#endif  // SRC_METRICS_SCENARIOS_H_

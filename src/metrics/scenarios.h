// Reusable experiment scenarios: the per-trial bodies of every figure and
// ablation in the evaluation.
//
// Each function runs ONE trial — one cell of a figure's grid at one seed —
// and returns plain numbers.  They live here rather than in the bench
// binaries so that three consumers run the exact same event sequence: the
// figure benches (which loop over kPaperTrials and print tables), the
// campaign harness in src/harness (which fans trials across a worker pool
// and aggregates them into BENCH_*.json artifacts), and the golden-trace /
// agility regression tests.  Every trial is shared-nothing: it builds its
// own Simulation from |seed|, touches no global state, and is safe to run
// concurrently with any other trial.
//
// The Figure-8 trial additionally adds an adaptive consumer on top of the
// raw bitstream workload: it holds a window of tolerance around the
// reported bandwidth and re-centers on every upcall, so a traced run
// exercises the viceroy and application layers as well as estimation.

#ifndef SRC_METRICS_SCENARIOS_H_
#define SRC_METRICS_SCENARIOS_H_

#include <cstdint>

#include "src/estimator/supply_model.h"
#include "src/metrics/experiment.h"
#include "src/metrics/stats.h"
#include "src/tracemod/waveforms.h"
#include "src/wardens/file_warden.h"
#include "src/wardens/speech_warden.h"

namespace odyssey {

class TraceRecorder;

// Result of one supply-agility trial (one waveform, one seed).
struct AgilityTrialResult {
  Series series;  // supply estimate over the measured minute, 100ms grid

  // Upcall-latency accounting (satellite of the odytrace work): sim time
  // from a supply-change upcall being posted to its handler running.
  uint64_t upcalls = 0;
  double upcall_latency_mean_ms = 0.0;
  double upcall_latency_max_ms = 0.0;
};

// Runs one trial: a bitstream consumer at maximum rate with an adaptive
// bandwidth window, against |waveform| with the paper's 30-second priming.
// When |trace| is non-null every instrumented component records into it.
AgilityTrialResult RunSupplyAgilityTrial(Waveform waveform, uint64_t seed,
                                         TraceRecorder* trace = nullptr);

// --- Figure 9: demand agility ---

// One demand-agility trial: a first bitstream runs from the start, an
// identical second one joins at t=30s, both at |utilization| of nominal
// (>= 1.0 means unthrottled).  Returns the total supply estimate and the
// second stream's availability estimate on the 100ms grid.
struct DemandTrialResult {
  Series total;
  Series second_share;
};

DemandTrialResult RunDemandAgilityTrial(double utilization, uint64_t seed,
                                        TraceRecorder* trace = nullptr);

// --- Figure 10: video player ---

// One video trial: the player runs over |waveform| on the given fixed track
// (-1 = Odyssey's adaptive selection), measured across the waveform minute.
struct VideoTrialResult {
  double drops = 0.0;
  double fidelity = 0.0;
};

VideoTrialResult RunVideoTrial(Waveform waveform, int fixed_track, uint64_t seed,
                               TraceRecorder* trace = nullptr);

// --- Figure 11: Web browser ---

// One Web trial: repeated image fetches over |replay| at the given fixed
// fidelity level (-1 = adaptive), with or without the priming prefix.
struct WebTrialResult {
  double seconds = 0.0;
  double fidelity = 0.0;
};

WebTrialResult RunWebTrial(const ReplayTrace& replay, int fixed_level, bool prime,
                           uint64_t seed, TraceRecorder* trace = nullptr);

// --- Figure 12: speech recognizer ---

// One speech trial: repeated short-phrase recognition over |waveform| under
// |mode|; returns the mean recognition seconds of the measured minute.
double RunSpeechTrialSeconds(Waveform waveform, SpeechMode mode, uint64_t seed,
                             TraceRecorder* trace = nullptr);

// --- Figures 13+14: concurrent applications ---

// One concurrent-applications trial: video + web + speech over the
// 15-minute urban trace under |strategy|.
struct ConcurrentTrialResult {
  double video_drops = 0.0;
  double video_fidelity = 0.0;
  double web_seconds = 0.0;
  double web_fidelity = 0.0;
  double speech_seconds = 0.0;
};

ConcurrentTrialResult RunConcurrentTrial(StrategyKind strategy, uint64_t seed,
                                         TraceRecorder* trace = nullptr);

// --- Ablation: estimator design choices ---

// One estimator-ablation trial: a bitstream over |waveform| with the swept
// estimator |config| and bulk-transfer |window_bytes|; returns the settling
// time after the t=30s transition and the pre-transition steady-state
// estimate error.
struct EstimatorAblationTrialResult {
  double settle_s = 0.0;
  double steady_error_pct = 0.0;
};

EstimatorAblationTrialResult RunEstimatorAblationTrial(const SupplyModelConfig& config,
                                                       double window_bytes, Waveform waveform,
                                                       uint64_t seed,
                                                       TraceRecorder* trace = nullptr);

// --- Ablation: availability-formula design choices ---

// One fair-share ablation trial: video + web + speech on the shortened
// urban walk under Odyssey with the swept |config|.
struct FairshareTrialResult {
  double video_drops = 0.0;
  double video_fidelity = 0.0;
  double web_seconds = 0.0;
  double web_goal_pct = 0.0;  // fetches meeting the 0.4 s goal
};

FairshareTrialResult RunFairshareAblationTrial(const SupplyModelConfig& config, uint64_t seed,
                                               TraceRecorder* trace = nullptr);

// --- Extension: consistency as fidelity (file warden) ---

// One file-consistency trial: a reader sweeps eight documents over
// Step-Down while a server-side writer updates them underneath the cache.
struct FileConsistencyTrialResult {
  double mean_read_ms = 0.0;
  double stale_pct = 0.0;
  double fidelity = 0.0;
};

FileConsistencyTrialResult RunFileConsistencyTrial(FileConsistency level, uint64_t seed,
                                                   TraceRecorder* trace = nullptr);

// --- Mobility: motion-generated waveform tracking ---

// One mobility-tracking trial: an adaptive bitstream consumer runs over a
// motion-generated waveform (src/mobility) end to end.  Tracking quality
// is measured against the nominal waveform on the 100ms grid, over the
// *live* samples only (nonzero nominal bandwidth): mean absolute estimate
// error as a percentage of nominal, and the fraction of live samples
// inside the Figure-8 ±15% acceptance band.  Time at zero nominal
// bandwidth is reported separately as radio-shadow seconds.
struct MobilityTrialResult {
  double tracking_error_pct = 0.0;
  double in_band_pct = 0.0;
  double shadow_seconds = 0.0;

  uint64_t upcalls = 0;
  double upcall_latency_mean_ms = 0.0;
  double upcall_latency_max_ms = 0.0;
};

// Runs one trial over |replay| with the paper's 30-second priming.  The
// caller builds the waveform (the metrics layer stays mobility-free); the
// harness passes MakeMobilityWaveform(spec, seed) so each trial of a cell
// drives a different — but seed-reproducible — track through it.
MobilityTrialResult RunMobilityTrackingTrial(const ReplayTrace& replay, uint64_t seed,
                                             TraceRecorder* trace = nullptr);

}  // namespace odyssey

#endif  // SRC_METRICS_SCENARIOS_H_

// The experiment rig: one mobile client, its modulated link, the Odyssey
// ensemble, and the modeled servers — §6.1.3's hardware configuration in
// simulation.  Integration tests and every benchmark build on this.

#ifndef SRC_METRICS_EXPERIMENT_H_
#define SRC_METRICS_EXPERIMENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/core/odyssey_client.h"
#include "src/net/link.h"
#include "src/net/modulator.h"
#include "src/servers/distillation_server.h"
#include "src/servers/janus_server.h"
#include "src/servers/video_server.h"
#include "src/sim/simulation.h"
#include "src/strategies/admission_broker.h"
#include "src/strategies/blind_optimism.h"
#include "src/strategies/centralized.h"
#include "src/strategies/congestion_manager.h"
#include "src/strategies/laissez_faire.h"
#include "src/tracemod/waveforms.h"
#include "src/wardens/bitstream_warden.h"
#include "src/wardens/speech_warden.h"
#include "src/wardens/video_warden.h"
#include "src/wardens/web_warden.h"

namespace odyssey {

// The resource-management strategies the experiment rig can install: the
// three compared in §6.2.3 plus the two zoo strategies grown on top
// (DESIGN.md §16).
enum class StrategyKind {
  kOdyssey,            // centralized (the real system)
  kLaissezFaire,       // per-log isolation
  kBlindOptimism,      // theoretical bandwidth at transitions
  kCongestionManager,  // per-server shared congestion state
  kAdmissionBroker,    // QoS admission control over centralized
};

const char* StrategyKindName(StrategyKind kind);

// The default test movie and image the workloads use.
inline constexpr char kDefaultMovie[] = "default";
inline constexpr char kTestImageUrl[] = "http://origin/test-image.jpg";

// Cost of delivering an upcall into an application (signal handler plus
// library dispatch), per the paper's measured upcall propagation latency
// (§6.4: sub-millisecond for a handful of registered applications).
inline constexpr Duration kUpcallLatency = 550;  // 0.55 ms

class ExperimentRig {
 public:
  // Builds the full client stack with the given trial |seed| and
  // |strategy|.  The link starts at the high bandwidth until a trace is
  // replayed.
  ExperimentRig(uint64_t seed, StrategyKind strategy);

  ExperimentRig(const ExperimentRig&) = delete;
  ExperimentRig& operator=(const ExperimentRig&) = delete;

  // Starts replaying |trace| immediately (with the paper's 30-second
  // priming prefix if |prime| is true) and returns the virtual time at
  // which the measured portion begins.
  Time Replay(const ReplayTrace& trace, bool prime = true);

  Simulation& sim() { return sim_; }
  Link& link() { return link_; }
  Modulator& modulator() { return modulator_; }
  OdysseyClient& client() { return *client_; }
  VideoServer& video_server() { return video_server_; }
  DistillationServer& distillation_server() { return distillation_server_; }
  JanusServer& janus_server() { return janus_server_; }
  StrategyKind strategy_kind() const { return strategy_kind_; }

  // The centralized-family audit surface, if the rig runs one (for share
  // probes in the agility experiments); null otherwise.  For the admission
  // broker this is the inner estimator.
  CentralizedStrategy* centralized() { return centralized_; }

 private:
  Simulation sim_;
  Link link_;
  Modulator modulator_;
  StrategyKind strategy_kind_;
  CentralizedStrategy* centralized_ = nullptr;
  std::unique_ptr<OdysseyClient> client_;
  VideoServer video_server_;
  DistillationServer distillation_server_;
  JanusServer janus_server_;
};

}  // namespace odyssey

#endif  // SRC_METRICS_EXPERIMENT_H_

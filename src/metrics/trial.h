// Experiment scaffolding: seeded trials and periodic sampling.
//
// Every figure in the paper is the mean of five trials; RunTrials runs a
// closure once per deterministic seed and collects the results.  Sampler
// records a value at a fixed virtual-time period, producing the estimate
// traces of Figures 8 and 9.

#ifndef SRC_METRICS_TRIAL_H_
#define SRC_METRICS_TRIAL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/metrics/stats.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace odyssey {

inline constexpr int kPaperTrials = 5;

// Runs |trial| once per seed; seeds are 1..n so runs reproduce exactly.
template <typename T>
std::vector<T> RunTrials(int n, const std::function<T(uint64_t seed)>& trial) {
  std::vector<T> results;
  results.reserve(n);
  for (int i = 0; i < n; ++i) {
    results.push_back(trial(static_cast<uint64_t>(i + 1)));
  }
  return results;
}

// Periodically samples |probe| into a Series until stopped or the
// simulation drains.  Sample timestamps are relative to |epoch|.
class Sampler {
 public:
  Sampler(Simulation* sim, Duration period, Time epoch, std::function<double()> probe)
      : sim_(sim), period_(period), epoch_(epoch), probe_(std::move(probe)) {}

  // Begins sampling at the next period boundary; continues until |until|.
  void Run(Time until) {
    until_ = until;
    Tick();
  }

  const Series& series() const { return series_; }

 private:
  void Tick() {
    if (sim_->now() > until_) {
      return;
    }
    series_.push_back(
        SeriesPoint{DurationToSeconds(sim_->now() - epoch_), probe_()});
    sim_->Schedule(period_, [this] { Tick(); });
  }

  Simulation* sim_;
  Duration period_;
  Time epoch_;
  std::function<double()> probe_;
  Time until_ = 0;
  Series series_;
};

// Merges per-trial series sampled on a common grid into mean/min/max bands
// (the solid line and gray spread of Figure 9).  All series must have equal
// length.
struct SeriesBand {
  std::vector<double> t_seconds;
  std::vector<double> mean;
  std::vector<double> min;
  std::vector<double> max;
};

SeriesBand MergeSeries(const std::vector<Series>& trials);

}  // namespace odyssey

#endif  // SRC_METRICS_TRIAL_H_

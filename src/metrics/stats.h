// Summary statistics for experiment reporting.
//
// The paper reports each observation as the mean of five trials with the
// standard deviation in parentheses; Stats accumulates samples with
// Welford's algorithm and formats them that way.

#ifndef SRC_METRICS_STATS_H_
#define SRC_METRICS_STATS_H_

#include <string>
#include <vector>

namespace odyssey {

class Stats {
 public:
  Stats() = default;
  explicit Stats(const std::vector<double>& samples);

  void Add(double sample);

  int count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  // Sample standard deviation (n-1 denominator); zero for fewer than two
  // samples.
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

  // "12.3 (0.4)" with the given precision, the paper's table cell format.
  std::string Format(int precision = 2) const;

 private:
  int count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Nearest-rank percentile: the smallest sample s such that at least
// ceil(pct/100 * n) of the samples are <= s.  Takes its input by value and
// sorts the copy, so the result is deterministic regardless of sample
// order and no interpolation ever mixes two samples.  |pct| is clamped to
// (0, 100]; an empty input yields 0.
double Percentile(std::vector<double> samples, double pct);

// The full per-metric summary the campaign artifact layer reports.
// Percentiles are nearest-rank (see Percentile) so a summary of n trials is
// a pure function of the sample multiset.
struct SummaryStats {
  int count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

SummaryStats Summarize(const std::vector<double>& samples);

// A timestamped series of measurements (estimate traces for Figures 8/9).
struct SeriesPoint {
  double t_seconds = 0.0;
  double value = 0.0;
};

using Series = std::vector<SeriesPoint>;

// First time >= |from| at which |series| enters [lo, hi] and stays inside
// through the end; returns a negative value if it never settles.  This is
// the control-systems settling time used to quantify agility.
double SettlingTime(const Series& series, double from, double lo, double hi);

}  // namespace odyssey

#endif  // SRC_METRICS_STATS_H_

#include "src/metrics/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <utility>

namespace odyssey {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << (i == 0 ? "" : "  ");
      os << row[i];
      os << std::string(widths[i] - row[i].size(), ' ');
    }
    os << "\n";
  };

  print_row(header_);
  size_t total = 0;
  for (size_t i = 0; i < widths.size(); ++i) {
    total += widths[i] + (i == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string Table::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

}  // namespace odyssey

#include "src/servers/janus_server.h"

// JanusServer is fully defined inline; this translation unit anchors the
// library target.

namespace odyssey {}  // namespace odyssey

// The Janus speech servers (§5.3, Figure 6).
//
// Janus is split into a local instance (on the slow client CPU) and a remote
// instance (on fast compute servers).  The server accepts either a raw
// utterance or one already pre-processed by the first Janus pass; that pass
// compresses roughly 5:1 at modest CPU cost.  The model answers with the
// compute time each pass costs on each machine.

#ifndef SRC_SERVERS_JANUS_SERVER_H_
#define SRC_SERVERS_JANUS_SERVER_H_

#include "src/servers/calibration.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace odyssey {

class JanusServer {
 public:
  // The per-run session factor models run-to-run variation in the compute
  // servers' environment.
  explicit JanusServer(Rng* rng) : rng_(rng), session_factor_(rng->JitterFactor(0.015)) {}

  // First-pass pre-processing on the client's slow CPU.
  Duration PreprocessLocal() { return Jitter(kSpeechPreprocessLocal); }
  // First-pass pre-processing on the remote server.
  Duration PreprocessRemote() { return Jitter(kSpeechPreprocessServer); }
  // The remaining recognition passes, on the remote server.
  Duration RecognizeRemote() { return Jitter(kSpeechRecognizeServer); }
  // Full recognition on the client — possible when disconnected, at severe
  // CPU cost.
  Duration RecognizeLocal() { return Jitter(kSpeechRecognizeLocal); }

  // Size of the pre-processed form of a raw utterance.
  static double CompressedBytes(double raw_bytes) { return raw_bytes / kSpeechCompressionRatio; }

 private:
  Duration Jitter(Duration nominal) {
    return static_cast<Duration>(static_cast<double>(nominal) * session_factor_ *
                                 rng_->JitterFactor(kComputeJitterStddev));
  }

  Rng* rng_;
  double session_factor_;
};

}  // namespace odyssey

#endif  // SRC_SERVERS_JANUS_SERVER_H_

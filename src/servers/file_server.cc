#include "src/servers/file_server.h"

namespace odyssey {

void FileServer::Publish(const std::string& name, double bytes) {
  files_[name] = FileInfo{bytes, 1};
}

Status FileServer::Update(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return NotFoundError("no such file: " + name);
  }
  ++it->second.version;
  return OkStatus();
}

Status FileServer::Stat(const std::string& name, FileInfo* out) const {
  const auto it = files_.find(name);
  if (it == files_.end()) {
    return NotFoundError("no such file: " + name);
  }
  *out = it->second;
  return OkStatus();
}

}  // namespace odyssey

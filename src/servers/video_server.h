// The video server (§5.1, Figure 4).
//
// Each movie is stored in multiple tracks, one per fidelity level; for
// Quicktime data the paper stores JPEG-compressed color frames at qualities
// 99 and 50 plus black-and-white frames.  The server model holds movie
// metadata and answers frame requests with the byte size and server compute
// time the warden's RPC should charge; the actual bytes move through the
// warden's endpoint over the emulated network.

#ifndef SRC_SERVERS_VIDEO_SERVER_H_
#define SRC_SERVERS_VIDEO_SERVER_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/status.h"
#include "src/servers/calibration.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace odyssey {

struct VideoTrack {
  std::string name;
  double frame_bytes = 0.0;
  double fidelity = 0.0;

  // Bandwidth needed to sustain this track at |fps| with protocol headroom.
  double RequiredBandwidth(double fps) const { return frame_bytes * fps * 1.05; }
};

struct MovieMeta {
  std::string name;
  double fps = kVideoFps;
  int frame_count = 0;
  // Ordered best fidelity first.
  std::vector<VideoTrack> tracks;

  // Storage cost of all tracks relative to the best track alone; the paper
  // reports "typically about 60% more".
  double StorageOverhead() const;
};

class VideoServer {
 public:
  explicit VideoServer(Rng* rng) : rng_(rng) {}

  // Registers a movie.  Fails on duplicates or empty track lists.
  Status AddMovie(MovieMeta movie);

  // A Quicktime movie with the paper's three tracks.
  static MovieMeta MakeDefaultMovie(std::string name, int frame_count);

  Status GetMeta(const std::string& movie, MovieMeta* out) const;

  struct FrameReply {
    double bytes = 0.0;
    Duration compute = 0;
    double fidelity = 0.0;
  };

  // Frame lookup: byte size and (jittered) server compute for one frame of
  // |track| in |movie|.  kNotFound / kInvalidArgument on bad names or
  // indices.
  Status GetFrame(const std::string& movie, int track, int frame_index, FrameReply* out);

 private:
  Rng* rng_;
  std::map<std::string, MovieMeta> movies_;
};

}  // namespace odyssey

#endif  // SRC_SERVERS_VIDEO_SERVER_H_

// A telemetry feed server: the remote end of the telemetry warden.
//
// Models the data sources behind §2.3's background information-filtering
// application ("monitoring data such as stock prices or enemy movements,
// and alert the user as appropriate").  Each feed produces samples at a
// native rate; a reading carries a value and the time it was produced, so
// clients can measure staleness (the *timeliness* fidelity dimension).

#ifndef SRC_SERVERS_TELEMETRY_SERVER_H_
#define SRC_SERVERS_TELEMETRY_SERVER_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/status.h"
#include "src/sim/random.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace odyssey {

struct TelemetrySample {
  Time produced_at = 0;
  double value = 0.0;
};

class TelemetryServer {
 public:
  explicit TelemetryServer(Simulation* sim) : sim_(sim) {}

  // Creates a feed producing a sample every |native_period| via a bounded
  // random walk starting at |initial_value| with per-step |step_stddev|.
  void CreateFeed(const std::string& name, Duration native_period, double initial_value,
                  double step_stddev);

  // Injects an out-of-band spike into a feed (an "enemy movement"): the
  // next produced sample jumps by |delta|.  Used to test alerting.
  Status InjectEvent(const std::string& name, double delta);

  // The latest |count| samples of a feed, newest last.  Sample payloads are
  // kTelemetrySampleBytes each on the wire.
  Status Latest(const std::string& name, int count, std::vector<TelemetrySample>* out) const;

  // Native production period of the feed.
  Status NativePeriod(const std::string& name, Duration* out) const;

  static constexpr double kTelemetrySampleBytes = 128.0;
  // History kept per feed.
  static constexpr size_t kHistoryDepth = 4096;

 private:
  struct Feed {
    Duration native_period = 0;
    double value = 0.0;
    double step_stddev = 0.0;
    double pending_event = 0.0;
    std::vector<TelemetrySample> history;
  };

  void Produce(const std::string& name);

  Simulation* sim_;
  std::map<std::string, Feed> feeds_;
};

}  // namespace odyssey

#endif  // SRC_SERVERS_TELEMETRY_SERVER_H_

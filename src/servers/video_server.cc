#include "src/servers/video_server.h"

#include <utility>

namespace odyssey {

double MovieMeta::StorageOverhead() const {
  if (tracks.empty() || tracks.front().frame_bytes <= 0.0) {
    return 0.0;
  }
  double total = 0.0;
  for (const auto& track : tracks) {
    total += track.frame_bytes;
  }
  return total / tracks.front().frame_bytes - 1.0;
}

Status VideoServer::AddMovie(MovieMeta movie) {
  if (movie.tracks.empty()) {
    return InvalidArgumentError("movie has no tracks");
  }
  if (movie.frame_count <= 0) {
    return InvalidArgumentError("movie has no frames");
  }
  const auto [it, inserted] = movies_.try_emplace(movie.name, std::move(movie));
  if (!inserted) {
    return AlreadyExistsError("movie already stored");
  }
  return OkStatus();
}

MovieMeta VideoServer::MakeDefaultMovie(std::string name, int frame_count) {
  MovieMeta movie;
  movie.name = std::move(name);
  movie.fps = kVideoFps;
  movie.frame_count = frame_count;
  movie.tracks = {
      VideoTrack{"JPEG(99)", kVideoJpeg99FrameBytes, kVideoJpeg99Fidelity},
      VideoTrack{"JPEG(50)", kVideoJpeg50FrameBytes, kVideoJpeg50Fidelity},
      VideoTrack{"B/W", kVideoBwFrameBytes, kVideoBwFidelity},
  };
  return movie;
}

Status VideoServer::GetMeta(const std::string& movie, MovieMeta* out) const {
  const auto it = movies_.find(movie);
  if (it == movies_.end()) {
    return NotFoundError("no such movie: " + movie);
  }
  *out = it->second;
  return OkStatus();
}

Status VideoServer::GetFrame(const std::string& movie, int track, int frame_index,
                             FrameReply* out) {
  const auto it = movies_.find(movie);
  if (it == movies_.end()) {
    return NotFoundError("no such movie: " + movie);
  }
  const MovieMeta& meta = it->second;
  if (track < 0 || track >= static_cast<int>(meta.tracks.size())) {
    return InvalidArgumentError("bad track index");
  }
  if (frame_index < 0 || frame_index >= meta.frame_count) {
    return InvalidArgumentError("bad frame index");
  }
  // Individual frames are variable-bitrate around the track mean.
  out->bytes = meta.tracks[track].frame_bytes * rng_->JitterFactor(kVideoFrameSizeJitter);
  out->fidelity = meta.tracks[track].fidelity;
  out->compute = static_cast<Duration>(static_cast<double>(kVideoFrameCompute) *
                                       rng_->JitterFactor(kComputeJitterStddev));
  return OkStatus();
}

}  // namespace odyssey

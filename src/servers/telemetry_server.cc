#include "src/servers/telemetry_server.h"

namespace odyssey {

void TelemetryServer::CreateFeed(const std::string& name, Duration native_period,
                                 double initial_value, double step_stddev) {
  Feed& feed = feeds_[name];
  feed.native_period = native_period;
  feed.value = initial_value;
  feed.step_stddev = step_stddev;
  feed.history.clear();
  feed.history.push_back(TelemetrySample{sim_->now(), initial_value});
  sim_->Schedule(native_period, [this, name] { Produce(name); });
}

Status TelemetryServer::InjectEvent(const std::string& name, double delta) {
  auto it = feeds_.find(name);
  if (it == feeds_.end()) {
    return NotFoundError("no such feed: " + name);
  }
  it->second.pending_event += delta;
  return OkStatus();
}

Status TelemetryServer::Latest(const std::string& name, int count,
                               std::vector<TelemetrySample>* out) const {
  const auto it = feeds_.find(name);
  if (it == feeds_.end()) {
    return NotFoundError("no such feed: " + name);
  }
  if (count < 1) {
    return InvalidArgumentError("count must be positive");
  }
  const auto& history = it->second.history;
  const size_t take = std::min(history.size(), static_cast<size_t>(count));
  out->assign(history.end() - static_cast<long>(take), history.end());
  return OkStatus();
}

Status TelemetryServer::NativePeriod(const std::string& name, Duration* out) const {
  const auto it = feeds_.find(name);
  if (it == feeds_.end()) {
    return NotFoundError("no such feed: " + name);
  }
  *out = it->second.native_period;
  return OkStatus();
}

void TelemetryServer::Produce(const std::string& name) {
  auto it = feeds_.find(name);
  if (it == feeds_.end()) {
    return;
  }
  Feed& feed = it->second;
  feed.value += sim_->rng().Normal(0.0, feed.step_stddev) + feed.pending_event;
  feed.pending_event = 0.0;
  feed.history.push_back(TelemetrySample{sim_->now(), feed.value});
  if (feed.history.size() > kHistoryDepth) {
    feed.history.erase(feed.history.begin(),
                       feed.history.begin() + (feed.history.size() - kHistoryDepth));
  }
  sim_->Schedule(feed.native_period, [this, name] { Produce(name); });
}

}  // namespace odyssey

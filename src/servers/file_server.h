// A versioned file server, the remote end of the file warden.
//
// Models a general-purpose file repository (§2.2's "file servers") with
// just enough state for consistency to matter: each file has a version
// that server-side updates bump.  A client that validates sees updates
// immediately; one that serves cached data optimistically may expose stale
// versions — the availability-for-consistency trade Coda, Ficus, and Bayou
// made, which the paper generalizes into the fidelity concept.

#ifndef SRC_SERVERS_FILE_SERVER_H_
#define SRC_SERVERS_FILE_SERVER_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/core/status.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace odyssey {

struct FileInfo {
  double bytes = 0.0;
  uint64_t version = 0;
};

class FileServer {
 public:
  explicit FileServer(Rng* rng) : rng_(rng) {}

  // Creates or replaces a file at version 1.
  void Publish(const std::string& name, double bytes);

  // Server-side update: bumps the version (size unchanged).  kNotFound if
  // the file does not exist.
  Status Update(const std::string& name);

  Status Stat(const std::string& name, FileInfo* out) const;

  // Compute cost of a validation (version check) and of locating a file
  // for transfer, jittered per call.
  Duration ValidateCompute() { return Jitter(2 * kMillisecond); }
  Duration FetchCompute() { return Jitter(5 * kMillisecond); }

  size_t file_count() const { return files_.size(); }

 private:
  Duration Jitter(Duration nominal) {
    return static_cast<Duration>(static_cast<double>(nominal) * rng_->JitterFactor(0.05));
  }

  Rng* rng_;
  std::map<std::string, FileInfo> files_;
};

}  // namespace odyssey

#endif  // SRC_SERVERS_FILE_SERVER_H_

#include "src/servers/distillation_server.h"

namespace odyssey {

const char* WebFidelityName(WebFidelity level) {
  switch (level) {
    case WebFidelity::kFullQuality:
      return "Full Quality";
    case WebFidelity::kJpeg50:
      return "JPEG(50)";
    case WebFidelity::kJpeg25:
      return "JPEG(25)";
    case WebFidelity::kJpeg5:
      return "JPEG(5)";
  }
  return "Unknown";
}

double WebFidelityScore(WebFidelity level) {
  switch (level) {
    case WebFidelity::kFullQuality:
      return kWebFullFidelity;
    case WebFidelity::kJpeg50:
      return kWebJpeg50Fidelity;
    case WebFidelity::kJpeg25:
      return kWebJpeg25Fidelity;
    case WebFidelity::kJpeg5:
      return kWebJpeg5Fidelity;
  }
  return 0.0;
}

void DistillationServer::PublishImage(const std::string& url, double bytes) {
  images_[url] = bytes;
}

void DistillationServer::PublishPage(const std::string& url, double html_bytes,
                                     std::vector<double> image_bytes) {
  pages_[url] = Page{html_bytes, std::move(image_bytes)};
}

Status DistillationServer::DistillPage(const std::string& url, WebFidelity level,
                                       PageReply* out) {
  const auto it = pages_.find(url);
  if (it == pages_.end()) {
    return NotFoundError("no such page: " + url);
  }
  const Page& page = it->second;
  out->html_bytes = page.html_bytes;  // markup ships as-is, reliably
  out->image_bytes = 0.0;
  out->image_count = static_cast<int>(page.image_bytes.size());
  out->fidelity = WebFidelityScore(level);

  Duration compute = kWebOriginFetch;
  for (const double original : page.image_bytes) {
    out->image_bytes += DistilledBytes(original, level);
    switch (level) {
      case WebFidelity::kFullQuality:
        break;
      case WebFidelity::kJpeg50:
        compute += kWebDistill50;
        break;
      case WebFidelity::kJpeg25:
        compute += kWebDistill25;
        break;
      case WebFidelity::kJpeg5:
        compute += kWebDistill5;
        break;
    }
  }
  out->compute = static_cast<Duration>(static_cast<double>(compute) * session_factor_ *
                                       rng_->JitterFactor(kComputeJitterStddev));
  return OkStatus();
}

Status DistillationServer::Distill(const std::string& url, WebFidelity level, DistillReply* out) {
  const auto it = images_.find(url);
  if (it == images_.end()) {
    return NotFoundError("no such image: " + url);
  }
  const double original = it->second;
  out->bytes = DistilledBytes(original, level);
  out->fidelity = WebFidelityScore(level);

  Duration compute = kWebOriginFetch;
  switch (level) {
    case WebFidelity::kFullQuality:
      break;  // shipped as-is, no distillation pass
    case WebFidelity::kJpeg50:
      compute += kWebDistill50;
      break;
    case WebFidelity::kJpeg25:
      compute += kWebDistill25;
      break;
    case WebFidelity::kJpeg5:
      compute += kWebDistill5;
      break;
  }
  out->compute = static_cast<Duration>(static_cast<double>(compute) * session_factor_ *
                                       rng_->JitterFactor(kComputeJitterStddev));
  return OkStatus();
}

double DistillationServer::DistilledBytes(double original_bytes, WebFidelity level) {
  // Distilled sizes scale with the original; the calibration constants are
  // fitted for the paper's 22 KB test image.
  const double scale = original_bytes / kWebImageBytes;
  switch (level) {
    case WebFidelity::kFullQuality:
      return original_bytes;
    case WebFidelity::kJpeg50:
      return kWebJpeg50Bytes * scale;
    case WebFidelity::kJpeg25:
      return kWebJpeg25Bytes * scale;
    case WebFidelity::kJpeg5:
      return kWebJpeg5Bytes * scale;
  }
  return original_bytes;
}

}  // namespace odyssey

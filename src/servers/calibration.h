// Calibration constants for the modeled servers and applications.
//
// The paper's absolute numbers come from a 1997 testbed (90 MHz Pentium
// client, 200 MHz Pentium Pro servers, 10 Mb/s LAN under trace modulation).
// Each constant below is derived from a number the paper reports, so the
// reproduced tables land near the published values; EXPERIMENTS.md records
// paper-vs-measured for every cell.  All sizes are bytes, all times are
// virtual-time Durations.

#ifndef SRC_SERVERS_CALIBRATION_H_
#define SRC_SERVERS_CALIBRATION_H_

#include "src/sim/time.h"

namespace odyssey {

// ---------------------------------------------------------------------------
// Video (xanim; §5.1, Figure 10).
//
// Movies play at 10 frames/second with 600 frames displayed per trial.
// "The higher bandwidth is sufficient to fetch JPEG(99) frames.  At the low
// bandwidth, JPEG(50) frames can be fetched without loss."  High = 120 KB/s
// and low = 40 KB/s, so the JPEG(99) track must need just under 120 KB/s and
// the JPEG(50) track just under 40 KB/s at 10 fps.
// ---------------------------------------------------------------------------

inline constexpr double kVideoFps = 10.0;
inline constexpr int kVideoFramesPerTrial = 600;
inline constexpr Duration kVideoFramePeriod = SecondsToDuration(1.0 / kVideoFps);

// 11.2 KB/frame -> 112 KB/s at 10 fps: fits 120 KB/s once the read-ahead
// protocol's ~4% round-trip overhead is added.
inline constexpr double kVideoJpeg99FrameBytes = 11.2 * 1024.0;
// 3.6 KB/frame -> 36 KB/s: fits 40 KB/s with the same headroom.
inline constexpr double kVideoJpeg50FrameBytes = 3.6 * 1024.0;
// Black-and-white frames are an order of magnitude smaller again.
inline constexpr double kVideoBwFrameBytes = 0.9 * 1024.0;

// Fidelity scores assigned by the paper's evaluation (§6.2.2).
inline constexpr double kVideoJpeg99Fidelity = 1.0;
inline constexpr double kVideoJpeg50Fidelity = 0.5;
inline constexpr double kVideoBwFidelity = 0.01;

// Server-side cost of locating and shipping one frame.
inline constexpr Duration kVideoFrameCompute = 2 * kMillisecond;

// Relative standard deviation of individual frame sizes around the track
// mean: JPEG tracks are variable-bitrate, and this is what gives the drop
// counts their trial-to-trial spread (the paper's stddev columns).
inline constexpr double kVideoFrameSizeJitter = 0.05;

// ---------------------------------------------------------------------------
// Web (Netscape + cellophane + distillation server; §5.2, Figure 11).
//
// The workload repeatedly fetches a 22 KB image.  The paper's Ethernet
// baseline is 0.20 s/fetch; at 1.1 MB/s the transfer itself costs ~0.02 s
// and the protocol round trip ~0.001 s, leaving ~0.18 s of fixed path cost
// which we split between the distillation server's origin fetch and the
// client's rendering.  With these constants the static strategies land on
// the paper's table values (see DESIGN.md §5.9 and EXPERIMENTS.md).
// ---------------------------------------------------------------------------

inline constexpr double kWebImageBytes = 22.0 * 1024.0;      // original image
inline constexpr double kWebJpeg50Bytes = 4.0 * 1024.0;      // distilled sizes
inline constexpr double kWebJpeg25Bytes = 2.9 * 1024.0;
inline constexpr double kWebJpeg5Bytes = 1.3 * 1024.0;

inline constexpr double kWebFullFidelity = 1.0;
inline constexpr double kWebJpeg50Fidelity = 0.5;
inline constexpr double kWebJpeg25Fidelity = 0.25;
inline constexpr double kWebJpeg5Fidelity = 0.05;

// Distillation server: fetch from the origin Web server (server-side LAN).
inline constexpr Duration kWebOriginFetch = 80 * kMillisecond;
// JPEG distillation compute, roughly proportional to output quality.
inline constexpr Duration kWebDistill50 = 20 * kMillisecond;
inline constexpr Duration kWebDistill25 = 18 * kMillisecond;
inline constexpr Duration kWebDistill5 = 15 * kMillisecond;
// Client-side decode and display.
inline constexpr Duration kWebRender = 100 * kMillisecond;

// "Our Web client's adaptation goal is to display the best quality image
// that can be fetched within twice the Ethernet time, in this case 0.4
// seconds."
inline constexpr Duration kWebEthernetTime = 200 * kMillisecond;
inline constexpr Duration kWebGoal = 2 * kWebEthernetTime;

// ---------------------------------------------------------------------------
// Speech (Janus; §5.3, Figure 12).
//
// "This pre-processing yields a compression ratio of approximately 5:1 at
// modest CPU cost."  Constants are fitted to the Figure 12 table: hybrid
// 0.80 s and remote 0.91 s on the Step waveforms, converging near 0.76 s at
// sustained high bandwidth.
// ---------------------------------------------------------------------------

inline constexpr double kSpeechRawBytes = 24.0 * 1024.0;
inline constexpr double kSpeechCompressionRatio = 5.0;
inline constexpr double kSpeechCompressedBytes = kSpeechRawBytes / kSpeechCompressionRatio;

// Capturing the utterance at the front end.
inline constexpr Duration kSpeechCapture = 70 * kMillisecond;
// First Janus pass on the slow client CPU...
inline constexpr Duration kSpeechPreprocessLocal = 210 * kMillisecond;
// ...and on the faster server.  Sized so hybrid still edges out remote at
// 120 KB/s (Figure 12's Impulse-Down row: 0.76 s vs 0.77 s).
inline constexpr Duration kSpeechPreprocessServer = 55 * kMillisecond;
// Remaining recognition passes (server).
inline constexpr Duration kSpeechRecognizeServer = 430 * kMillisecond;
// Full recognition on the client: possible when disconnected, "but at a
// severe CPU and memory cost".
inline constexpr Duration kSpeechRecognizeLocal = 2800 * kMillisecond;

// Below this availability the adaptive warden falls back to fully local
// recognition (effectively disconnected).
inline constexpr double kSpeechDisconnectedBps = 512.0;

// Recognition-fidelity levels (§8: "We also plan to add support for
// multiple levels of fidelity in the speech application").  A smaller
// vocabulary recognizes faster — on either CPU — at lower fidelity.
struct SpeechVocabulary {
  const char* name;
  double fidelity;        // strictly increasing with vocabulary size
  double compute_factor;  // scales the recognition passes
};

inline constexpr SpeechVocabulary kSpeechVocabularies[] = {
    {"full", 1.0, 1.0},
    {"medium", 0.7, 0.55},
    {"tiny", 0.3, 0.2},
};

// If a network recognition plan makes no progress for this long (e.g. the
// client entered a radio shadow mid-utterance), the warden abandons it and
// recognizes locally.  Passive monitoring cannot detect a dead link except
// by such timeouts.
inline constexpr Duration kSpeechNetworkTimeout = 3 * kSecond;

// ---------------------------------------------------------------------------
// Trial jitter: modeled compute costs vary by this relative standard
// deviation per operation, giving the tables their paper-like spread over
// five seeded trials.
// ---------------------------------------------------------------------------

inline constexpr double kComputeJitterStddev = 0.03;

}  // namespace odyssey

#endif  // SRC_SERVERS_CALIBRATION_H_

// The distillation server (§5.2, Figure 5).
//
// Sits between the mobile client and origin Web servers: it fetches a
// requested object from the Web server, distills it to the requested
// fidelity level (JPEG compression of decreasing quality, after Fox et al.),
// and returns the result.  These steps are transparent to both the browser
// and the origin server.

#ifndef SRC_SERVERS_DISTILLATION_SERVER_H_
#define SRC_SERVERS_DISTILLATION_SERVER_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/status.h"
#include "src/servers/calibration.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace odyssey {

// The cellophane's four fidelity levels, best first (§6.2.2).
enum class WebFidelity {
  kFullQuality = 0,
  kJpeg50 = 1,
  kJpeg25 = 2,
  kJpeg5 = 3,
};

inline constexpr WebFidelity kAllWebFidelities[] = {
    WebFidelity::kFullQuality,
    WebFidelity::kJpeg50,
    WebFidelity::kJpeg25,
    WebFidelity::kJpeg5,
};

// Human-readable level name ("Full Quality", "JPEG(50)", ...).
const char* WebFidelityName(WebFidelity level);
// The fidelity score the evaluation assigns this level.
double WebFidelityScore(WebFidelity level);

class DistillationServer {
 public:
  // The per-run session factor models run-to-run variation in the server's
  // environment (the paper's trials were measured on a live testbed).
  explicit DistillationServer(Rng* rng)
      : rng_(rng), session_factor_(rng->JitterFactor(0.08)) {}

  // Registers an image of |bytes| at |url| on the (modeled) origin server.
  void PublishImage(const std::string& url, double bytes);

  // Registers a full page: HTML markup plus inline images (§8: adaptation
  // for objects other than images).  Markup is never distilled — only
  // reliable, full-fidelity transfer is acceptable for it — while each
  // inline image distills per the requested level.
  void PublishPage(const std::string& url, double html_bytes, std::vector<double> image_bytes);

  struct DistillReply {
    double bytes = 0.0;       // distilled size to ship to the client
    Duration compute = 0;     // origin fetch + distillation time
    double fidelity = 0.0;    // fidelity score of the produced level
  };

  // Computes the size and server compute of serving |url| at |level|.
  Status Distill(const std::string& url, WebFidelity level, DistillReply* out);

  // Size the given level produces for an original of |original_bytes|.
  static double DistilledBytes(double original_bytes, WebFidelity level);

  struct PageReply {
    double html_bytes = 0.0;
    double image_bytes = 0.0;   // total across inline images, distilled
    int image_count = 0;
    Duration compute = 0;       // origin fetch + per-image distillation
    double fidelity = 0.0;      // the images' fidelity (markup never degrades)
  };

  // Computes the shipped size and server compute of serving the page at
  // |level|.
  Status DistillPage(const std::string& url, WebFidelity level, PageReply* out);

 private:
  struct Page {
    double html_bytes = 0.0;
    std::vector<double> image_bytes;
  };

  Rng* rng_;
  double session_factor_;
  std::map<std::string, double> images_;
  std::map<std::string, Page> pages_;
};

}  // namespace odyssey

#endif  // SRC_SERVERS_DISTILLATION_SERVER_H_

// Sliding-window maximum over timestamped samples.
//
// The supply estimator's capacity samples are *lower bounds* (a burst's raw
// rate; the aggregate delivery rate), so the right aggregation is an upper
// envelope, not a mean: the link's capacity is at least the largest bound
// observed recently.  A monotonic deque gives O(1) amortized push and
// query.  The window is anchored at the most recent sample, so with no new
// observations the estimate holds — passive monitoring cannot see what is
// not used (§6.2.1).

#ifndef SRC_ESTIMATOR_SLIDING_MAX_H_
#define SRC_ESTIMATOR_SLIDING_MAX_H_

#include <deque>

#include "src/core/contract.h"
#include "src/sim/time.h"

namespace odyssey {

class SlidingMax {
 public:
  explicit SlidingMax(Duration window) : window_(window) {}

  // Adds a sample; |at| must be non-decreasing across calls.
  void Push(Time at, double value) {
    // The monotonic-deque envelope is only correct for time-ordered pushes;
    // an out-of-order sample would silently corrupt the maximum.
    ODY_DCHECK(at >= last_push_, "SlidingMax samples must be time-ordered");
    last_push_ = at;
    while (!samples_.empty() && samples_.back().value <= value) {
      samples_.pop_back();
    }
    samples_.push_back(Sample{at, value});
    while (!samples_.empty() && samples_.front().at + window_ < at) {
      samples_.pop_front();
    }
    // The deque invariant: values strictly decreasing front-to-back, so
    // front() is the window maximum.
    ODY_DCHECK(samples_.front().value >= samples_.back().value,
               "SlidingMax deque envelope violated");
  }

  bool has_value() const { return !samples_.empty(); }

  // Maximum over the window ending at the most recent sample.
  double value() const { return samples_.empty() ? 0.0 : samples_.front().value; }

  Time last_push() const { return last_push_; }

  void Reset() {
    samples_.clear();
    last_push_ = 0;
  }

 private:
  struct Sample {
    Time at;
    double value;
  };

  Duration window_;
  std::deque<Sample> samples_;  // decreasing values, increasing times
  Time last_push_ = 0;
};

}  // namespace odyssey

#endif  // SRC_ESTIMATOR_SLIDING_MAX_H_

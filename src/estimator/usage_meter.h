// Recent consumption-rate accounting.
//
// The viceroy's per-connection availability estimate has a "competed-for
// part proportional to recent use" (§6.2.1).  A UsageMeter turns byte
// deliveries into a bytes/second rate over a sliding window of width tau.
// A delivery may be recorded as an interval (the span of the transfer that
// carried it); its bytes then count toward the window pro rata, so steady
// consumption of c bytes/second reads back as exactly c no matter when the
// rate is sampled.  Phase bias here would leak straight into the supply
// estimate, which the availability formula cannot afford.

#ifndef SRC_ESTIMATOR_USAGE_METER_H_
#define SRC_ESTIMATOR_USAGE_METER_H_

#include <deque>

#include "src/sim/time.h"

namespace odyssey {

class UsageMeter {
 public:
  // |tau| is the sliding-window width; use older than tau is forgotten.
  explicit UsageMeter(Duration tau = 2 * kSecond) : tau_(tau) {}

  // Records |bytes| delivered over (start, end].  End times across calls
  // must be non-decreasing.  A zero-length interval is a point delivery.
  void Record(Time start, Time end, double bytes) {
    if (end < start) {
      start = end;
    }
    events_.push_back(Event{start, end, bytes});
  }

  // Point-delivery convenience.
  void Record(Time at, double bytes) { Record(at, at, bytes); }

  // Consumption rate in bytes/second over the window (at - tau, at].
  double RateAt(Time at) const {
    Prune(at);
    const Time window_start = at - tau_;
    double bytes_in_window = 0.0;
    for (const Event& event : events_) {
      if (event.start == event.end) {
        // Point delivery: counts fully if inside the window.
        if (event.start > window_start && event.start <= at) {
          bytes_in_window += event.bytes;
        }
        continue;
      }
      const Time lo = event.start > window_start ? event.start : window_start;
      const Time hi = event.end < at ? event.end : at;
      if (hi > lo) {
        bytes_in_window += event.bytes * static_cast<double>(hi - lo) /
                           static_cast<double>(event.end - event.start);
      }
    }
    return bytes_in_window / DurationToSeconds(tau_);
  }

  // Whether recorded usage within the window is significant (the
  // connection is "active" for fair-share counting).
  bool ActiveAt(Time at, double threshold_bps = 16.0) const { return RateAt(at) > threshold_bps; }

  Time last_event() const { return events_.empty() ? 0 : events_.back().end; }

  void Reset() { events_.clear(); }

 private:
  struct Event {
    Time start;
    Time end;
    double bytes;
  };

  // Drops events fully left of the window.  Pruning on read keeps RateAt()
  // logically const.
  void Prune(Time at) const {
    while (!events_.empty() && events_.front().end + tau_ <= at) {
      events_.pop_front();
    }
  }

  Duration tau_;
  mutable std::deque<Event> events_;
};

}  // namespace odyssey

#endif  // SRC_ESTIMATOR_USAGE_METER_H_

// Recent consumption-rate accounting.
//
// The viceroy's per-connection availability estimate has a "competed-for
// part proportional to recent use" (§6.2.1).  A UsageMeter turns byte
// deliveries into a bytes/second rate over a sliding window of width tau.
// A delivery may be recorded as an interval (the span of the transfer that
// carried it); its bytes then count toward the window pro rata, so steady
// consumption of c bytes/second reads back as exactly c no matter when the
// rate is sampled.  Phase bias here would leak straight into the supply
// estimate, which the availability formula cannot afford.
//
// Storage is a contiguous ring buffer rather than a deque: with 100k+
// meters alive at once (one per connection), the deque's chunked heap
// blocks cost an indirection per event and scatter the working set; a ring
// keeps each meter's window in one cache-resident run and makes the empty
// (idle) case a pointer-free size check.

#ifndef SRC_ESTIMATOR_USAGE_METER_H_
#define SRC_ESTIMATOR_USAGE_METER_H_

#include <cstddef>
#include <vector>

#include "src/sim/time.h"

namespace odyssey {

class UsageMeter {
 public:
  // |tau| is the sliding-window width; use older than tau is forgotten.
  explicit UsageMeter(Duration tau = 2 * kSecond) : tau_(tau) {}

  // Records |bytes| delivered over (start, end].  End times across calls
  // must be non-decreasing.  A zero-length interval is a point delivery.
  void Record(Time start, Time end, double bytes) {
    if (end < start) {
      start = end;
    }
    PushBack(Event{start, end, bytes});
  }

  // Point-delivery convenience.
  void Record(Time at, double bytes) { Record(at, at, bytes); }

  // Consumption rate in bytes/second over the window (at - tau, at].
  double RateAt(Time at) const {
    Prune(at);
    const Time window_start = at - tau_;
    double bytes_in_window = 0.0;
    for (size_t i = 0; i < count_; ++i) {
      const Event& event = ring_[Index(i)];
      if (event.start == event.end) {
        // Point delivery: counts fully if inside the window.
        if (event.start > window_start && event.start <= at) {
          bytes_in_window += event.bytes;
        }
        continue;
      }
      const Time lo = event.start > window_start ? event.start : window_start;
      const Time hi = event.end < at ? event.end : at;
      if (hi > lo) {
        bytes_in_window += event.bytes * static_cast<double>(hi - lo) /
                           static_cast<double>(event.end - event.start);
      }
    }
    return bytes_in_window / DurationToSeconds(tau_);
  }

  // Whether recorded usage within the window is significant (the
  // connection is "active" for fair-share counting).
  bool ActiveAt(Time at, double threshold_bps = 16.0) const { return RateAt(at) > threshold_bps; }

  Time last_event() const { return count_ == 0 ? 0 : ring_[Index(count_ - 1)].end; }

  // No recorded events survive (everything pruned or never recorded).  The
  // rate is then exactly 0.0 at this and every later instant, which is what
  // lets the supply model drop the meter from its live set.
  bool empty() const { return count_ == 0; }

  void Reset() {
    head_ = 0;
    count_ = 0;
  }

 private:
  struct Event {
    Time start;
    Time end;
    double bytes;
  };

  size_t Index(size_t i) const { return (head_ + i) % ring_.size(); }

  void PushBack(const Event& event) {
    if (count_ == ring_.size()) {
      Grow();
    }
    ring_[(head_ + count_) % ring_.size()] = event;
    ++count_;
  }

  // Doubles capacity, unrolling the ring into logical order.
  void Grow() {
    std::vector<Event> bigger(ring_.empty() ? 8 : ring_.size() * 2);
    for (size_t i = 0; i < count_; ++i) {
      bigger[i] = ring_[Index(i)];
    }
    ring_.swap(bigger);
    head_ = 0;
  }

  // Drops events fully left of the window.  Pruning on read keeps RateAt()
  // logically const.
  void Prune(Time at) const {
    while (count_ > 0 && ring_[head_].end + tau_ <= at) {
      head_ = (head_ + 1) % ring_.size();
      --count_;
    }
  }

  Duration tau_;
  mutable std::vector<Event> ring_;
  mutable size_t head_ = 0;
  mutable size_t count_ = 0;
};

}  // namespace odyssey

#endif  // SRC_ESTIMATOR_USAGE_METER_H_

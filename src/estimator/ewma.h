// Exponentially weighted moving average, as used by the viceroy's smoothing
// step (§6.2.1): new = alpha * measured + (1 - alpha) * old.
//
// The paper's equation is typographically mangled in the archival text; we
// place the given alphas (0.75 for round trip, 0.875 for throughput) on the
// *measured* term, the only reading consistent with the near-instantaneous
// Step-Up detection of Figure 8 (see DESIGN.md §5.3).

#ifndef SRC_ESTIMATOR_EWMA_H_
#define SRC_ESTIMATOR_EWMA_H_

#include "src/core/contract.h"

namespace odyssey {

class EwmaFilter {
 public:
  // |alpha| is the weight on the newest measurement, in [0, 1].
  explicit EwmaFilter(double alpha) : alpha_(alpha) {
    ODY_ASSERT(alpha >= 0.0 && alpha <= 1.0, "EWMA alpha outside [0, 1]");
  }

  bool has_value() const { return has_value_; }
  double value() const { return value_; }
  double alpha() const { return alpha_; }

  // Folds in a measurement and returns the new smoothed value.  The first
  // measurement initializes the filter directly.
  double Update(double measured) {
    if (!has_value_) {
      value_ = measured;
      has_value_ = true;
    } else {
      const double previous = value_;
      value_ = alpha_ * measured + (1.0 - alpha_) * value_;
      // With alpha in [0, 1] the smoothed value is a convex combination: it
      // must land between the old value and the measurement (hot path, so a
      // DCHECK; violation means NaN crept into the estimator's inputs).
      ODY_DCHECK((value_ >= measured && value_ <= previous) ||
                     (value_ <= measured && value_ >= previous),
                 "EWMA left the [measured, previous] envelope");
      static_cast<void>(previous);
    }
    return value_;
  }

  // Seeds the filter with a prior (e.g. a nominal RTT before any
  // observation exists).
  void Prime(double value) {
    value_ = value;
    has_value_ = true;
  }

  void Reset() {
    has_value_ = false;
    value_ = 0.0;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool has_value_ = false;
};

}  // namespace odyssey

#endif  // SRC_ESTIMATOR_EWMA_H_

// Centralized supply and per-connection availability estimation (§6.2.1).
//
// The viceroy collects information from all endpoint logs to estimate the
// total bandwidth available to the client, then estimates the fraction
// likely to be available to each connection as the larger of a *fair-share*
// lower bound (supply / active connections) and a *competed-for* part
// proportional to recent use.
//
// Supply estimation: each completed window yields a capacity sample equal
// to the larger of two lower bounds — the window's raw rate (the link
// carried at least that much for one flow) and the aggregate recent
// delivery rate across all connections (the link carried at least their
// sum).  Since every sample is a lower bound, the supply estimate is their
// upper envelope: a sliding-window maximum anchored at the latest
// observation.  A capacity drop is detected once the stale high samples
// age out (about one window), matching the paper's ~2 s Step-Down settling
// and its observation that the 2 s downward impulse is too short for
// estimation to settle.  Per-
// connection availability is the fair share (supply / active connections)
// plus a competed-for slice of the unused headroom proportional to recent
// use, capped at the supply.
//
// Two implementations live behind SupplyModelInterface:
//
//   * SupplyModel — the production model.  It keeps a *live set*: the
//     connections whose usage meters may still hold unexpired events.  An
//     idle connection's rate is exactly 0.0 and adding 0.0 to an IEEE sum
//     of non-negative terms changes no bits, so summing only the live set
//     in ascending connection-id order reproduces the full-scan aggregate
//     bit for bit while costing O(recently active) instead of
//     O(registered).  Aggregate and active-count results are cached per
//     (time, mutation version), so a burst of availability queries at one
//     instant — the viceroy re-evaluating every app — pays for one scan.
//   * NaiveSupplyModel — the original full-rescan implementation, kept
//     verbatim as the reference side of the differential tests
//     (tests/scale_differential_test.cc).  Never used in production paths.

#ifndef SRC_ESTIMATOR_SUPPLY_MODEL_H_
#define SRC_ESTIMATOR_SUPPLY_MODEL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/estimator/connection_estimator.h"
#include "src/estimator/sliding_max.h"
#include "src/estimator/usage_meter.h"
#include "src/rpc/observation_log.h"
#include "src/sim/time.h"

namespace odyssey {

struct SupplyModelConfig {
  EstimatorConfig estimator;
  // Time constant of the recent-use decay.
  Duration usage_tau = 2 * kSecond;
  // Width of the supply upper-envelope window.
  Duration supply_window = 2 * kSecond;
  // A connection with no usage for this long stops counting toward the
  // fair-share denominator.
  Duration activity_window = 5 * kSecond;
};

// The estimator contract shared by the incremental model and the naive
// reference.  Everything the strategies, oracles and diagnostics need.
class SupplyModelInterface {
 public:
  virtual ~SupplyModelInterface() = default;

  virtual const char* name() const = 0;

  // Registers a connection.  Registered connections count toward fair-share
  // splitting once they have recent usage.
  virtual void AddConnection(ConnectionId connection) = 0;
  virtual void RemoveConnection(ConnectionId connection) = 0;

  // Feeds observations from connection logs.
  virtual void OnRoundTrip(ConnectionId connection, const RoundTripObservation& obs) = 0;
  virtual void OnThroughput(ConnectionId connection, const ThroughputObservation& obs) = 0;
  virtual void OnFailure(ConnectionId connection, const FailureObservation& obs) = 0;

  // Estimated total bandwidth available to the client, bytes/second.
  virtual double TotalSupply() const = 0;
  virtual bool has_supply() const = 0;

  // Estimated bandwidth available to |connection| at time |now|:
  // max(fair share, competed-for share).  Unknown connections get the fair
  // share of a hypothetical additional connection.
  virtual double AvailabilityFor(ConnectionId connection, Time now) const = 0;

  // Number of connections with significant recent usage at |now| (at least
  // one, once any connection exists).
  virtual int ActiveConnectionCount(Time now) const = 0;

  // Per-connection smoothed estimates, for diagnostics and the
  // laissez-faire strategy.
  virtual const ConnectionEstimator* EstimatorFor(ConnectionId connection) const = 0;
  virtual double UsageRateFor(ConnectionId connection, Time now) const = 0;

  // Appends the connections whose availability may differ from the idle
  // level at |now| (a superset is allowed).  The centralized strategy turns
  // these into the dirty-app set of its re-evaluation hint.
  virtual void CollectLiveConnections(Time now, std::vector<ConnectionId>* out) const = 0;

  // Lifetime count of per-connection meter evaluations performed by
  // aggregate scans and availability queries — a deterministic proxy for
  // the model's work, independent of the machine (the tier_scale campaign
  // charts it against the naive model's count).
  virtual uint64_t scan_ops() const = 0;
};

// The incremental production model (live set + per-instant cache).
class SupplyModel : public SupplyModelInterface {
 public:
  explicit SupplyModel(const SupplyModelConfig& config = {});

  const char* name() const override { return "incremental"; }
  void AddConnection(ConnectionId connection) override;
  void RemoveConnection(ConnectionId connection) override;
  void OnRoundTrip(ConnectionId connection, const RoundTripObservation& obs) override;
  void OnThroughput(ConnectionId connection, const ThroughputObservation& obs) override;
  void OnFailure(ConnectionId connection, const FailureObservation& obs) override;
  double TotalSupply() const override { return supply_.value(); }
  bool has_supply() const override { return supply_.has_value(); }
  double AvailabilityFor(ConnectionId connection, Time now) const override;
  int ActiveConnectionCount(Time now) const override;
  const ConnectionEstimator* EstimatorFor(ConnectionId connection) const override;
  double UsageRateFor(ConnectionId connection, Time now) const override;
  void CollectLiveConnections(Time now, std::vector<ConnectionId>* out) const override;
  uint64_t scan_ops() const override { return scan_ops_; }

 private:
  struct PerConnection {
    ConnectionEstimator estimator;
    UsageMeter usage;

    explicit PerConnection(const SupplyModelConfig& config)
        : estimator(config.estimator), usage(config.usage_tau) {}
  };

  // Recomputes (and caches) the aggregate usage rate and active count over
  // the live set at |now|, evicting connections whose meters pruned empty.
  void ScanAt(Time now) const;

  SupplyModelConfig config_;
  std::map<ConnectionId, PerConnection> connections_;
  SlidingMax supply_;

  // Ascending ids of connections whose meters may hold unexpired events.
  // Mutated lazily from const scans (eviction), like the meters' pruning.
  mutable std::vector<ConnectionId> live_;

  // Cache of the last ScanAt, keyed by (time, mutation version).
  mutable bool cache_valid_ = false;
  mutable Time cache_at_ = 0;
  mutable uint64_t cache_version_ = 0;
  mutable double cached_usage_ = 0.0;
  mutable int cached_active_ = 0;

  uint64_t version_ = 0;  // bumped whenever a meter or the live set changes
  mutable uint64_t scan_ops_ = 0;
};

// The original O(registered-connections) implementation, preserved as the
// reference side of the differential tests.
class NaiveSupplyModel : public SupplyModelInterface {
 public:
  explicit NaiveSupplyModel(const SupplyModelConfig& config = {});

  const char* name() const override { return "naive"; }
  void AddConnection(ConnectionId connection) override;
  void RemoveConnection(ConnectionId connection) override;
  void OnRoundTrip(ConnectionId connection, const RoundTripObservation& obs) override;
  void OnThroughput(ConnectionId connection, const ThroughputObservation& obs) override;
  void OnFailure(ConnectionId connection, const FailureObservation& obs) override;
  double TotalSupply() const override { return supply_.value(); }
  bool has_supply() const override { return supply_.has_value(); }
  double AvailabilityFor(ConnectionId connection, Time now) const override;
  int ActiveConnectionCount(Time now) const override;
  const ConnectionEstimator* EstimatorFor(ConnectionId connection) const override;
  double UsageRateFor(ConnectionId connection, Time now) const override;
  void CollectLiveConnections(Time now, std::vector<ConnectionId>* out) const override;
  uint64_t scan_ops() const override { return scan_ops_; }

 private:
  struct PerConnection {
    ConnectionEstimator estimator;
    UsageMeter usage;

    explicit PerConnection(const SupplyModelConfig& config)
        : estimator(config.estimator), usage(config.usage_tau) {}
  };

  SupplyModelConfig config_;
  std::map<ConnectionId, PerConnection> connections_;
  SlidingMax supply_;
  mutable uint64_t scan_ops_ = 0;
};

// Which implementation a strategy should instantiate.
enum class SupplyModelKind {
  kIncremental,  // production
  kNaive,        // differential-test reference
};

std::unique_ptr<SupplyModelInterface> MakeSupplyModel(SupplyModelKind kind,
                                                      const SupplyModelConfig& config);

}  // namespace odyssey

#endif  // SRC_ESTIMATOR_SUPPLY_MODEL_H_

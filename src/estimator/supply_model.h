// Centralized supply and per-connection availability estimation (§6.2.1).
//
// The viceroy collects information from all endpoint logs to estimate the
// total bandwidth available to the client, then estimates the fraction
// likely to be available to each connection as the larger of a *fair-share*
// lower bound (supply / active connections) and a *competed-for* part
// proportional to recent use.
//
// Supply estimation: each completed window yields a capacity sample equal
// to the larger of two lower bounds — the window's raw rate (the link
// carried at least that much for one flow) and the aggregate recent
// delivery rate across all connections (the link carried at least their
// sum).  Since every sample is a lower bound, the supply estimate is their
// upper envelope: a sliding-window maximum anchored at the latest
// observation.  A capacity drop is detected once the stale high samples
// age out (about one window), matching the paper's ~2 s Step-Down settling
// and its observation that the 2 s downward impulse is too short for
// estimation to settle.  Per-
// connection availability is the fair share (supply / active connections)
// plus a competed-for slice of the unused headroom proportional to recent
// use, capped at the supply.

#ifndef SRC_ESTIMATOR_SUPPLY_MODEL_H_
#define SRC_ESTIMATOR_SUPPLY_MODEL_H_

#include <map>

#include "src/estimator/connection_estimator.h"
#include "src/estimator/sliding_max.h"
#include "src/estimator/usage_meter.h"
#include "src/rpc/observation_log.h"
#include "src/sim/time.h"

namespace odyssey {

struct SupplyModelConfig {
  EstimatorConfig estimator;
  // Time constant of the recent-use decay.
  Duration usage_tau = 2 * kSecond;
  // Width of the supply upper-envelope window.
  Duration supply_window = 2 * kSecond;
  // A connection with no usage for this long stops counting toward the
  // fair-share denominator.
  Duration activity_window = 5 * kSecond;
};

class SupplyModel {
 public:
  explicit SupplyModel(const SupplyModelConfig& config = {});

  // Registers a connection.  Registered connections count toward fair-share
  // splitting once they have recent usage.
  void AddConnection(ConnectionId connection);
  void RemoveConnection(ConnectionId connection);

  // Feeds observations from connection logs.
  void OnRoundTrip(ConnectionId connection, const RoundTripObservation& obs);
  void OnThroughput(ConnectionId connection, const ThroughputObservation& obs);
  void OnFailure(ConnectionId connection, const FailureObservation& obs);

  // Estimated total bandwidth available to the client, bytes/second.
  double TotalSupply() const { return supply_.value(); }
  bool has_supply() const { return supply_.has_value(); }

  // Estimated bandwidth available to |connection| at time |now|:
  // max(fair share, competed-for share).  Unknown connections get the fair
  // share of a hypothetical additional connection.
  double AvailabilityFor(ConnectionId connection, Time now) const;

  // Number of connections with significant recent usage at |now| (at least
  // one, once any connection exists).
  int ActiveConnectionCount(Time now) const;

  // Per-connection smoothed estimates, for diagnostics and the
  // laissez-faire strategy.
  const ConnectionEstimator* EstimatorFor(ConnectionId connection) const;
  double UsageRateFor(ConnectionId connection, Time now) const;

 private:
  struct PerConnection {
    ConnectionEstimator estimator;
    UsageMeter usage;

    explicit PerConnection(const SupplyModelConfig& config)
        : estimator(config.estimator), usage(config.usage_tau) {}
  };

  SupplyModelConfig config_;
  std::map<ConnectionId, PerConnection> connections_;
  SlidingMax supply_;
};

}  // namespace odyssey

#endif  // SRC_ESTIMATOR_SUPPLY_MODEL_H_

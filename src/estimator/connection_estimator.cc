#include "src/estimator/connection_estimator.h"

namespace odyssey {
namespace {

// Floor on the effective transfer time, guarding the division when a window
// completes in about one round trip (tiny window or very fast link).
constexpr Duration kMinEffectiveTransfer = 100;  // 0.1 ms

}  // namespace

ConnectionEstimator::ConnectionEstimator(const EstimatorConfig& config)
    : config_(config), rtt_(config.rtt_alpha), bandwidth_(config.throughput_alpha) {
  rtt_.Prime(static_cast<double>(config.initial_rtt));
}

void ConnectionEstimator::OnRoundTrip(const RoundTripObservation& obs) {
  double measured = static_cast<double>(obs.rtt);
  if (config_.rtt_rise_cap > 0.0) {
    const double ceiling = rtt_.value() * (1.0 + config_.rtt_rise_cap);
    if (measured > ceiling) {
      measured = ceiling;
    }
  }
  rtt_.Update(measured);
  last_observation_ = obs.at;
}

double ConnectionEstimator::OnThroughput(const ThroughputObservation& obs) {
  Duration effective = obs.elapsed - smoothed_rtt();
  if (effective < kMinEffectiveTransfer) {
    effective = kMinEffectiveTransfer;
  }
  const double raw_bps = obs.window_bytes / DurationToSeconds(effective);
  bandwidth_.Update(raw_bps);
  last_observation_ = obs.at;
  return raw_bps;
}

}  // namespace odyssey

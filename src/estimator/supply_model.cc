#include "src/estimator/supply_model.h"

namespace odyssey {

SupplyModel::SupplyModel(const SupplyModelConfig& config)
    : config_(config), supply_(config.supply_window) {}

void SupplyModel::AddConnection(ConnectionId connection) {
  connections_.try_emplace(connection, config_);
}

void SupplyModel::RemoveConnection(ConnectionId connection) {
  connections_.erase(connection);
}

void SupplyModel::OnRoundTrip(ConnectionId connection, const RoundTripObservation& obs) {
  auto it = connections_.find(connection);
  if (it == connections_.end()) {
    return;
  }
  it->second.estimator.OnRoundTrip(obs);
}

void SupplyModel::OnThroughput(ConnectionId connection, const ThroughputObservation& obs) {
  auto it = connections_.find(connection);
  if (it == connections_.end()) {
    return;
  }
  const double raw_bps = it->second.estimator.OnThroughput(obs);
  // The window's bytes arrived over its whole transfer span, not at the
  // completion instant.
  it->second.usage.Record(obs.at - obs.elapsed, obs.at, obs.window_bytes);

  // Capacity sample: the larger of two lower bounds on link capacity.  The
  // window's raw rate is one (the link carried at least that for one flow);
  // the aggregate recent delivery rate across every connection is another
  // (the link carried at least their sum).  Taking the max never double
  // counts: a burst that ran fast because competitors were momentarily idle
  // is not inflated by their long-run usage.
  double aggregate = 0.0;
  for (const auto& [id, state] : connections_) {
    aggregate += state.usage.RateAt(obs.at);
  }
  supply_.Push(obs.at, raw_bps > aggregate ? raw_bps : aggregate);
}

void SupplyModel::OnFailure(ConnectionId connection, const FailureObservation& obs) {
  if (!connections_.contains(connection)) {
    return;
  }
  // A failed exchange is the only downward evidence a dead link produces:
  // no window completes, so no throughput sample would ever age the stale
  // highs out of the envelope.  Push a zero-capacity sample so the supply
  // estimate decays to zero within one envelope window of sustained
  // failure, and availability with it — turning an outage into a
  // disconnection decision instead of optimistic paralysis.
  supply_.Push(obs.at, 0.0);
}

double SupplyModel::AvailabilityFor(ConnectionId connection, Time now) const {
  const double supply = TotalSupply();
  if (supply <= 0.0) {
    return 0.0;
  }
  const int active = ActiveConnectionCount(now);

  const auto it = connections_.find(connection);
  const bool known = it != connections_.end();
  const bool self_active = known && it->second.usage.ActiveAt(now);

  // Fair share: the expected lower bound (§6.2.1).  If this connection is
  // not among the currently active ones, it would join them, so split one
  // way further.
  const int share_ways = active + (self_active ? 0 : 1);
  const double fair_share = supply / static_cast<double>(share_ways < 1 ? 1 : share_ways);

  if (!known) {
    return fair_share;
  }

  // Competed-for part: the capacity not currently consumed by anyone is
  // available in proportion to recent use — established traffic has more
  // claim on the headroom than a newcomer, which starts from its fair share
  // and grows as its usage registers ("higher rates of consumption by the
  // first stream give it more weight compared to the startup of the
  // second", §6.2.1).
  double total_usage = 0.0;
  for (const auto& [id, state] : connections_) {
    total_usage += state.usage.RateAt(now);
  }
  if (total_usage <= 0.0) {
    return fair_share;
  }
  const double slack = supply > total_usage ? supply - total_usage : 0.0;
  const double competed_for = slack * (it->second.usage.RateAt(now) / total_usage);
  const double availability = fair_share + competed_for;
  return availability < supply ? availability : supply;
}

int SupplyModel::ActiveConnectionCount(Time now) const {
  int active = 0;
  for (const auto& [id, state] : connections_) {
    if (state.usage.ActiveAt(now)) {
      ++active;
    }
  }
  if (active == 0 && !connections_.empty()) {
    active = 1;
  }
  return active;
}

const ConnectionEstimator* SupplyModel::EstimatorFor(ConnectionId connection) const {
  const auto it = connections_.find(connection);
  return it == connections_.end() ? nullptr : &it->second.estimator;
}

double SupplyModel::UsageRateFor(ConnectionId connection, Time now) const {
  const auto it = connections_.find(connection);
  return it == connections_.end() ? 0.0 : it->second.usage.RateAt(now);
}

}  // namespace odyssey

#include "src/estimator/supply_model.h"

#include <algorithm>

namespace odyssey {

// --- SupplyModel (incremental) ---
//
// Bit-identity with the naive full rescan rests on two facts: an idle
// connection (meter pruned empty) contributes exactly 0.0 to the aggregate,
// and x + 0.0 == x for every non-negative IEEE double — so summing only the
// live set, in the same ascending-id order the full scan uses, produces the
// same bits.  The differential tests hold the model to this.

SupplyModel::SupplyModel(const SupplyModelConfig& config)
    : config_(config), supply_(config.supply_window) {}

void SupplyModel::AddConnection(ConnectionId connection) {
  connections_.try_emplace(connection, config_);
}

void SupplyModel::RemoveConnection(ConnectionId connection) {
  if (connections_.erase(connection) > 0) {
    const auto it = std::lower_bound(live_.begin(), live_.end(), connection);
    if (it != live_.end() && *it == connection) {
      live_.erase(it);
    }
    ++version_;
  }
}

void SupplyModel::OnRoundTrip(ConnectionId connection, const RoundTripObservation& obs) {
  auto it = connections_.find(connection);
  if (it == connections_.end()) {
    return;
  }
  it->second.estimator.OnRoundTrip(obs);
}

void SupplyModel::OnThroughput(ConnectionId connection, const ThroughputObservation& obs) {
  auto it = connections_.find(connection);
  if (it == connections_.end()) {
    return;
  }
  const double raw_bps = it->second.estimator.OnThroughput(obs);
  // The window's bytes arrived over its whole transfer span, not at the
  // completion instant.
  it->second.usage.Record(obs.at - obs.elapsed, obs.at, obs.window_bytes);
  const auto pos = std::lower_bound(live_.begin(), live_.end(), connection);
  if (pos == live_.end() || *pos != connection) {
    live_.insert(pos, connection);
  }
  ++version_;

  // Capacity sample: the larger of two lower bounds on link capacity.  The
  // window's raw rate is one (the link carried at least that for one flow);
  // the aggregate recent delivery rate across every connection is another
  // (the link carried at least their sum).  Taking the max never double
  // counts: a burst that ran fast because competitors were momentarily idle
  // is not inflated by their long-run usage.
  ScanAt(obs.at);
  const double aggregate = cached_usage_;
  supply_.Push(obs.at, raw_bps > aggregate ? raw_bps : aggregate);
}

void SupplyModel::OnFailure(ConnectionId connection, const FailureObservation& obs) {
  if (!connections_.contains(connection)) {
    return;
  }
  // A failed exchange is the only downward evidence a dead link produces:
  // no window completes, so no throughput sample would ever age the stale
  // highs out of the envelope.  Push a zero-capacity sample so the supply
  // estimate decays to zero within one envelope window of sustained
  // failure, and availability with it — turning an outage into a
  // disconnection decision instead of optimistic paralysis.
  supply_.Push(obs.at, 0.0);
}

void SupplyModel::ScanAt(Time now) const {
  if (cache_valid_ && cache_at_ == now && cache_version_ == version_) {
    return;
  }
  double aggregate = 0.0;
  int active = 0;
  size_t keep = 0;
  for (const ConnectionId id : live_) {
    const auto it = connections_.find(id);
    ++scan_ops_;
    const double rate = it->second.usage.RateAt(now);
    aggregate += rate;
    if (rate > 16.0) {  // UsageMeter::ActiveAt's default threshold
      ++active;
    }
    // Eviction: RateAt pruned the meter; once empty it stays empty (event
    // end times are non-decreasing), so the connection is idle for good
    // until its next Record.
    if (!it->second.usage.empty()) {
      live_[keep++] = id;
    }
  }
  live_.resize(keep);
  cache_valid_ = true;
  cache_at_ = now;
  cache_version_ = version_;
  cached_usage_ = aggregate;
  cached_active_ = active;
}

double SupplyModel::AvailabilityFor(ConnectionId connection, Time now) const {
  const double supply = TotalSupply();
  if (supply <= 0.0) {
    return 0.0;
  }
  const int active = ActiveConnectionCount(now);

  const auto it = connections_.find(connection);
  const bool known = it != connections_.end();
  ++scan_ops_;
  const bool self_active = known && it->second.usage.ActiveAt(now);

  // Fair share: the expected lower bound (§6.2.1).  If this connection is
  // not among the currently active ones, it would join them, so split one
  // way further.
  const int share_ways = active + (self_active ? 0 : 1);
  const double fair_share = supply / static_cast<double>(share_ways < 1 ? 1 : share_ways);

  if (!known) {
    return fair_share;
  }

  // Competed-for part: the capacity not currently consumed by anyone is
  // available in proportion to recent use — established traffic has more
  // claim on the headroom than a newcomer, which starts from its fair share
  // and grows as its usage registers ("higher rates of consumption by the
  // first stream give it more weight compared to the startup of the
  // second", §6.2.1).
  ScanAt(now);
  const double total_usage = cached_usage_;
  if (total_usage <= 0.0) {
    return fair_share;
  }
  const double slack = supply > total_usage ? supply - total_usage : 0.0;
  const double competed_for = slack * (it->second.usage.RateAt(now) / total_usage);
  const double availability = fair_share + competed_for;
  return availability < supply ? availability : supply;
}

int SupplyModel::ActiveConnectionCount(Time now) const {
  ScanAt(now);
  int active = cached_active_;
  if (active == 0 && !connections_.empty()) {
    active = 1;
  }
  return active;
}

const ConnectionEstimator* SupplyModel::EstimatorFor(ConnectionId connection) const {
  const auto it = connections_.find(connection);
  return it == connections_.end() ? nullptr : &it->second.estimator;
}

double SupplyModel::UsageRateFor(ConnectionId connection, Time now) const {
  const auto it = connections_.find(connection);
  return it == connections_.end() ? 0.0 : it->second.usage.RateAt(now);
}

void SupplyModel::CollectLiveConnections(Time now, std::vector<ConnectionId>* out) const {
  (void)now;  // the unevicted live set is a valid superset at any instant
  out->insert(out->end(), live_.begin(), live_.end());
}

// --- NaiveSupplyModel (reference) ---
//
// The pre-scale implementation, verbatim except for the scan_ops counter:
// every estimator update and every availability query rescans all
// registered connections.

NaiveSupplyModel::NaiveSupplyModel(const SupplyModelConfig& config)
    : config_(config), supply_(config.supply_window) {}

void NaiveSupplyModel::AddConnection(ConnectionId connection) {
  connections_.try_emplace(connection, config_);
}

void NaiveSupplyModel::RemoveConnection(ConnectionId connection) {
  connections_.erase(connection);
}

void NaiveSupplyModel::OnRoundTrip(ConnectionId connection, const RoundTripObservation& obs) {
  auto it = connections_.find(connection);
  if (it == connections_.end()) {
    return;
  }
  it->second.estimator.OnRoundTrip(obs);
}

void NaiveSupplyModel::OnThroughput(ConnectionId connection, const ThroughputObservation& obs) {
  auto it = connections_.find(connection);
  if (it == connections_.end()) {
    return;
  }
  const double raw_bps = it->second.estimator.OnThroughput(obs);
  it->second.usage.Record(obs.at - obs.elapsed, obs.at, obs.window_bytes);

  double aggregate = 0.0;
  for (const auto& [id, state] : connections_) {
    ++scan_ops_;
    aggregate += state.usage.RateAt(obs.at);
  }
  supply_.Push(obs.at, raw_bps > aggregate ? raw_bps : aggregate);
}

void NaiveSupplyModel::OnFailure(ConnectionId connection, const FailureObservation& obs) {
  if (!connections_.contains(connection)) {
    return;
  }
  supply_.Push(obs.at, 0.0);
}

double NaiveSupplyModel::AvailabilityFor(ConnectionId connection, Time now) const {
  const double supply = TotalSupply();
  if (supply <= 0.0) {
    return 0.0;
  }
  const int active = ActiveConnectionCount(now);

  const auto it = connections_.find(connection);
  const bool known = it != connections_.end();
  ++scan_ops_;
  const bool self_active = known && it->second.usage.ActiveAt(now);

  const int share_ways = active + (self_active ? 0 : 1);
  const double fair_share = supply / static_cast<double>(share_ways < 1 ? 1 : share_ways);

  if (!known) {
    return fair_share;
  }

  double total_usage = 0.0;
  for (const auto& [id, state] : connections_) {
    ++scan_ops_;
    total_usage += state.usage.RateAt(now);
  }
  if (total_usage <= 0.0) {
    return fair_share;
  }
  const double slack = supply > total_usage ? supply - total_usage : 0.0;
  const double competed_for = slack * (it->second.usage.RateAt(now) / total_usage);
  const double availability = fair_share + competed_for;
  return availability < supply ? availability : supply;
}

int NaiveSupplyModel::ActiveConnectionCount(Time now) const {
  int active = 0;
  for (const auto& [id, state] : connections_) {
    ++scan_ops_;
    if (state.usage.ActiveAt(now)) {
      ++active;
    }
  }
  if (active == 0 && !connections_.empty()) {
    active = 1;
  }
  return active;
}

const ConnectionEstimator* NaiveSupplyModel::EstimatorFor(ConnectionId connection) const {
  const auto it = connections_.find(connection);
  return it == connections_.end() ? nullptr : &it->second.estimator;
}

double NaiveSupplyModel::UsageRateFor(ConnectionId connection, Time now) const {
  const auto it = connections_.find(connection);
  return it == connections_.end() ? 0.0 : it->second.usage.RateAt(now);
}

void NaiveSupplyModel::CollectLiveConnections(Time now, std::vector<ConnectionId>* out) const {
  (void)now;  // the naive model has no live set; every connection qualifies
  for (const auto& [id, state] : connections_) {
    out->push_back(id);
  }
}

std::unique_ptr<SupplyModelInterface> MakeSupplyModel(SupplyModelKind kind,
                                                      const SupplyModelConfig& config) {
  if (kind == SupplyModelKind::kNaive) {
    return std::make_unique<NaiveSupplyModel>(config);
  }
  return std::make_unique<SupplyModel>(config);
}

}  // namespace odyssey

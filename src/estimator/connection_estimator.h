// Per-connection bandwidth and round-trip estimation (§6.2.1).
//
// Round trip and throughput observations are smoothed with EWMA filters
// (alpha 0.75 and 0.875 respectively).  A throughput entry covering W bytes
// in elapsed time T yields a raw bandwidth of W / (T - R), where R is the
// smoothed round trip: T includes the window request (receiver side) or the
// acknowledgement (sender side), and assuming symmetric data rates both
// cost about one round trip.  Anomalous rises in measured round trip are
// capped at a configurable percentage per observation, erring on the side
// of underestimating bandwidth exactly as the paper describes.

#ifndef SRC_ESTIMATOR_CONNECTION_ESTIMATOR_H_
#define SRC_ESTIMATOR_CONNECTION_ESTIMATOR_H_

#include "src/estimator/ewma.h"
#include "src/rpc/observation_log.h"
#include "src/sim/time.h"

namespace odyssey {

struct EstimatorConfig {
  // EWMA weight on the newest round-trip measurement.
  double rtt_alpha = 0.75;
  // EWMA weight on the newest throughput measurement.
  double throughput_alpha = 0.875;
  // Maximum fractional rise of a round-trip measurement over the current
  // estimate, per observation (0.5 == 50%).  Nonpositive disables capping.
  double rtt_rise_cap = 0.5;
  // Prior used before the first round-trip observation.
  Duration initial_rtt = 21 * kMillisecond;
};

class ConnectionEstimator {
 public:
  explicit ConnectionEstimator(const EstimatorConfig& config = {});

  // Feeds one round-trip observation.
  void OnRoundTrip(const RoundTripObservation& obs);

  // Feeds one throughput observation; returns the raw (unsmoothed)
  // bandwidth sample derived from it, in bytes/second.
  double OnThroughput(const ThroughputObservation& obs);

  // Smoothed bandwidth in bytes/second; zero before any throughput
  // observation.
  double bandwidth_bps() const {
    return bandwidth_.has_value() ? bandwidth_.value() : 0.0;
  }
  bool has_bandwidth() const { return bandwidth_.has_value(); }

  // Smoothed round trip.
  Duration smoothed_rtt() const { return static_cast<Duration>(rtt_.value()); }

  // Virtual time of the most recent observation of either kind.
  Time last_observation() const { return last_observation_; }

  const EstimatorConfig& config() const { return config_; }

 private:
  EstimatorConfig config_;
  EwmaFilter rtt_;
  EwmaFilter bandwidth_;
  Time last_observation_ = 0;
};

}  // namespace odyssey

#endif  // SRC_ESTIMATOR_CONNECTION_ESTIMATOR_H_

// The tier_zoo campaign: every registered bandwidth strategy run through the
// same fixed workload grid, with every fuzzing oracle left on.
//
// The grid re-creates the three paper comparisons as deterministic fuzz
// scenarios — a Fig-8-style stepped-supply waveform, a Fig-9-style
// demand-churn schedule under constant supply, and a Fig-14-style six-warden
// concurrency mix — plus a mobility cell whose waveform comes from the
// motion -> signal -> bandwidth pipeline.  Each cell is swept across the
// whole StrategyRegistry, so laissez-faire, blind optimism, the shared
// congestion manager and the admission broker all face exactly the workload
// the seed centralized strategy faces, and the artifact shows their upcall,
// denial and byte-delivery profiles side by side.  oracle_violations gates
// at zero for every cell: the un-audited strategies still run under the
// dispatcher, conservation and determinism oracles.
//
// This lives in odyssey_check (like scale_scenario) because the cells
// execute through RunFuzzScenario with the full OracleSet attached.

#ifndef SRC_CHECK_ZOO_SCENARIO_H_
#define SRC_CHECK_ZOO_SCENARIO_H_

#include "src/harness/campaign.h"
#include "src/harness/scenario_registry.h"

namespace odyssey {

// Registers the "strategy_zoo" scenario: variants <strategy>_{supply,
// demand, concurrent, mob} for every name in StrategyRegistry::Builtin()
// (strategy short names match the fleet_share variant vocabulary:
// odyssey, laissez, blind, cm, broker).  Asserts that registration
// succeeds, like RegisterBuiltinScenarios.
void RegisterZooScenarios(ScenarioRegistry* registry);

// The tier_zoo campaign spec: every strategy_zoo variant plus the
// eight-node fleet_share cells of each strategy, so admission control and
// shared congestion state are exercised both single-node and sharded.
// Like ScaleCampaign, declared here because its scenarios live in
// odyssey_check/odyssey_fleet; ody_bench appends it after registering them.
CampaignSpec ZooCampaign();

}  // namespace odyssey

#endif  // SRC_CHECK_ZOO_SCENARIO_H_

// Greedy delta-debugging shrinker for failing fuzz scenarios.
//
// Given a scenario that trips an oracle, the shrinker searches for a
// smaller scenario that still trips the same oracle, by repeatedly trying
// structural reductions — drop an application, drop one of its operations,
// drop a fault, remove or merge waveform segments, shorten the horizon —
// and keeping each reduction that preserves the failure.  The search is
// greedy to a fixpoint: when no single reduction preserves the failure, the
// scenario is 1-minimal with respect to the reduction vocabulary.  Because
// scenario execution is deterministic, "preserves the failure" is a pure
// predicate and the minimization is reproducible.

#ifndef SRC_CHECK_SHRINK_H_
#define SRC_CHECK_SHRINK_H_

#include <cstddef>
#include <functional>
#include <string>

#include "src/check/fuzz_runner.h"
#include "src/check/fuzz_scenario.h"

namespace odyssey {

// Returns true when a candidate scenario still exhibits the failure of
// interest.  Must be deterministic.
using ScenarioPredicate = std::function<bool(const FuzzScenario&)>;

struct ShrinkResult {
  FuzzScenario minimized;
  size_t initial_elements = 0;
  size_t final_elements = 0;
  int rounds = 0;     // fixpoint iterations
  int attempts = 0;   // candidate evaluations (predicate calls)
  int accepted = 0;   // reductions that preserved the failure
};

// Minimizes |scenario| under |still_fails|, which must hold for |scenario|
// itself.  |max_attempts| bounds predicate evaluations; the search stops
// early (still sound, possibly less minimal) when exhausted.
ShrinkResult ShrinkWithPredicate(const FuzzScenario& scenario,
                                 const ScenarioPredicate& still_fails,
                                 int max_attempts = 500);

// Convenience wrapper: minimizes |scenario| while it keeps producing at
// least one violation of |oracle_name| (any oracle when empty) when run
// with |options|.
ShrinkResult ShrinkFailingScenario(const FuzzScenario& scenario, const std::string& oracle_name,
                                   const FuzzRunOptions& options = {});

// True when |result| (of running a candidate) contains a violation of
// |oracle_name| (any violation when the name is empty).
bool HasViolationOf(const FuzzRunResult& result, const std::string& oracle_name);

// Renders a minimized scenario as a self-contained C++ test snippet that
// reconstructs it literally and asserts the run is violation-free — the
// "minimal reproducer" artifact a failing CI run uploads.
std::string EmitReproSnippet(const FuzzScenario& scenario, const std::string& oracle_name);

// Runs |scenario| with tracing enabled and returns the canonicalized trace
// (one event per line, volatile fields scrubbed — see src/trace/trace_diff),
// so two replays of the reproducer can be diffed byte-for-byte.
std::string CanonicalTraceForScenario(const FuzzScenario& scenario,
                                      const FuzzRunOptions& options = {});

}  // namespace odyssey

#endif  // SRC_CHECK_SHRINK_H_

// Scenario synthesis for the deterministic simulation fuzzer (ody_fuzz).
//
// A FuzzScenario is a small, declarative description of one randomized but
// schedulable workload: a piecewise-constant link waveform, a handful of
// concurrent applications spread across all six wardens with randomized
// request/cancel/tsop interleavings, and a fault schedule drawn from the
// fault-injection vocabulary.  Everything downstream — execution
// (fuzz_runner), oracle checking (oracles) and minimization (shrink) — is a
// pure function of this description, which is itself a pure function of a
// single 64-bit seed.  That is what makes a fuzz failure replayable from one
// integer and shrinkable by editing the description rather than the trace.

#ifndef SRC_CHECK_FUZZ_SCENARIO_H_
#define SRC_CHECK_FUZZ_SCENARIO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace odyssey {

// The six data types a fuzzed application can exercise.
enum class FuzzWardenKind : int {
  kVideo = 0,
  kWeb = 1,
  kSpeech = 2,
  kBitstream = 3,
  kFile = 4,
  kTelemetry = 5,
};

inline constexpr int kFuzzWardenKinds = 6;

const char* FuzzWardenName(FuzzWardenKind kind);

// One piecewise-constant segment of the link waveform (mirrors
// TraceSegment, duplicated here so a scenario is self-contained and
// trivially serializable in a repro snippet).
struct FuzzSegment {
  Duration duration = 0;
  double bandwidth_bps = 0.0;
  Duration latency = 0;
};

// What a scheduled application action does.
enum class FuzzOpKind : int {
  kRequest = 0,  // register a window of tolerance around the current level
  kCancel = 1,   // cancel one outstanding registration
  kTsop = 2,     // a warden-specific type-specific operation
};

// One scheduled action of one application.  |variant| and |magnitude|
// parameterize the action per warden (opcode choice, levels, sizes); the
// driver derives every concrete argument from these two fields alone, never
// from the simulation's random stream, so replaying a scenario is exact.
struct FuzzOp {
  Time at = 0;
  FuzzOpKind kind = FuzzOpKind::kRequest;
  double window_lo_frac = 0.5;  // kRequest: lower bound as a fraction of level
  double window_hi_frac = 1.5;  // kRequest: upper bound as a fraction of level
  int variant = 0;
  double magnitude = 0.0;  // in [0, 1)
};

struct FuzzApp {
  FuzzWardenKind warden = FuzzWardenKind::kBitstream;
  Time start = 0;
  std::vector<FuzzOp> ops;
};

// One fault from the FaultPlan vocabulary (src/net/fault_injector.h).
enum class FuzzFaultKind : int {
  kDropProbability = 0,
  kDropMessage = 1,
  kOutage = 2,
  kLatencySpike = 3,
  kServerStall = 4,
  kFlowKill = 5,
};

const char* FuzzFaultName(FuzzFaultKind kind);

struct FuzzFault {
  FuzzFaultKind kind = FuzzFaultKind::kOutage;
  Time start = 0;
  Duration duration = 0;
  Duration extra = 0;    // spike latency / stall compute
  double p = 0.0;        // drop probability
  uint64_t index = 0;    // deterministic drop: global message ordinal
};

struct FuzzScenario {
  uint64_t seed = 1;
  Duration horizon = 0;
  std::vector<FuzzSegment> segments;
  std::vector<FuzzApp> apps;
  std::vector<FuzzFault> faults;

  // Fleet dimension (ScenarioOptions::fleet): when >= 2, the scenario runs
  // on the multi-node rig (src/fleet) with this many client nodes sharing
  // |fleet_servers| server groups.  0 selects the classic single-node rig.
  int fleet_nodes = 0;
  int fleet_servers = 0;

  // Strategy dimension (ScenarioOptions::strategies): the registry name of
  // the bandwidth strategy the rig installs.  Empty means the seed default
  // ("odyssey"), keeping historical repro snippets valid.
  std::string strategy;

  // Number of shrinkable elements: segments + apps + ops + faults.  The
  // shrinker minimizes this count; "minimal reproducer" is measured in it.
  size_t ElementCount() const;

  // Human-readable multi-line description (for failure reports).
  std::string Describe() const;
};

// Knobs for scenario synthesis beyond the seed.  Defaults reproduce the
// historical generator exactly (same seed -> byte-identical scenario).
struct ScenarioOptions {
  // Upper bound on the number of concurrent applications.  At the default
  // the app count is drawn uniformly in [1, 8], matching the original
  // generator draw for draw; above it the count is drawn log-uniform in
  // [1, max_apps], so large-N sweeps still spend most runs at moderate
  // sizes while regularly reaching the configured scale.
  int max_apps = 8;

  // Mobility dimension: when true, roughly half the scenarios derive their
  // link waveform from the motion -> signal -> bandwidth pipeline
  // (src/mobility) instead of the hand-rolled 2-6-segment draw, covering
  // shapes that draw never produces — long zero-bandwidth shadows and
  // rapid cell-edge tier flapping.  The generated waveform is materialized
  // into |segments|, so the oracles (including byte conservation via
  // IntegrateCapacityBytes) and the shrinker operate on it unchanged, and
  // the drain guarantee below still holds (the pipeline forces a live
  // final segment).  At the default false the generator stream is
  // untouched: historical seeds keep producing byte-identical scenarios.
  bool mobility = false;

  // Fleet dimension: when true, roughly half the scenarios run on the
  // multi-node rig — 2-8 client nodes (each a full viceroy + warden stack
  // behind its own scaled waveform) sharing 1-2 server groups through the
  // cross-node estimate aggregation protocol.  Like |mobility|, the extra
  // draws happen after every historical draw, so at the default false the
  // generator stream is untouched and scenarios stay byte-identical.
  bool fleet = false;

  // Strategy dimension: when true, every scenario draws its bandwidth
  // strategy uniformly from the builtin StrategyRegistry, so the full
  // oracle set sweeps the whole zoo.  Drawn after every other dimension
  // (the documented append-only pattern), so at the default false the
  // stream is untouched and scenarios stay byte-identical.
  bool strategies = false;
};

// Synthesizes a schedulable scenario from |seed| alone.  Guarantees: at
// least one segment, the final segment has positive bandwidth (so flows in
// flight at the end of the waveform can drain), all op times lie within the
// horizon, and fault windows are bounded so the workload cannot be starved
// for more than a few seconds at a time.
FuzzScenario GenerateScenario(uint64_t seed);
FuzzScenario GenerateScenario(uint64_t seed, const ScenarioOptions& options);

// Upper bound on bytes the link can deliver by |until|: the integral of the
// nominal waveform (the final segment persists past the end of the trace,
// matching Modulator semantics).  Faults only reduce delivery, so this
// bound holds for every fault schedule; the byte-conservation oracle checks
// the link never exceeds it.
double IntegrateCapacityBytes(const FuzzScenario& scenario, Time until);

}  // namespace odyssey

#endif  // SRC_CHECK_FUZZ_SCENARIO_H_

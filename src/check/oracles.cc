#include "src/check/oracles.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "src/estimator/supply_model.h"

namespace odyssey {
namespace {

// Relative tolerance for comparisons between floating-point availability
// figures.  The model's arithmetic is exact by construction (no measured
// noise), so tolerances only have to absorb accumulated rounding.
double ShareEps(double supply) { return 1e-6 * supply + 1e-3; }

}  // namespace

std::string FormatViolations(const std::vector<FuzzViolation>& violations) {
  std::ostringstream out;
  for (const FuzzViolation& v : violations) {
    out << "  [" << v.oracle << "] t=" << DurationToSeconds(v.at) << "s";
    if (v.app != 0) {
      out << " app=" << v.app;
    }
    out << " " << v.detail << "\n";
  }
  return out.str();
}

OracleSet::OracleSet(const FuzzScenario& scenario, Simulation* sim, Viceroy* viceroy,
                     CentralizedStrategy* strategy, Link* link)
    : scenario_(scenario), sim_(sim), viceroy_(viceroy), strategy_(strategy), link_(link) {}

void OracleSet::Report(const std::string& oracle, AppId app, std::string detail) {
  ++total_violations_;
  const uint64_t seen = ++per_oracle_count_[oracle];
  if (seen <= kMaxRecordedPerOracle) {
    violations_.push_back(FuzzViolation{oracle, sim_->now(), app, std::move(detail)});
  }
}

void OracleSet::OnUpcallDelivered(AppId app, uint64_t seq, RequestId request,
                                  ResourceId resource, double level, Time posted_at) {
  // Exactly-once, in-order (§4.3): per-app sequence numbers are dense.
  uint64_t& last = last_seq_[app];
  if (seq <= last) {
    std::ostringstream detail;
    detail << "seq " << seq << " delivered after seq " << last;
    Report("upcall-duplicate", app, detail.str());
  } else if (seq != last + 1) {
    std::ostringstream detail;
    detail << "seq " << seq << " skipped past " << last << " (lost upcalls)";
    Report("upcall-lost", app, detail.str());
  }
  if (seq > last) {
    last = seq;
  }

  if (posted_at > sim_->now()) {
    std::ostringstream detail;
    detail << "posted_at " << posted_at << "us is in the future of " << sim_->now() << "us";
    Report("clock-monotonicity", app, detail.str());
  }

  if (level < 0.0 || !std::isfinite(level)) {
    std::ostringstream detail;
    detail << "delivered level " << level << " for " << ResourceName(resource);
    Report("upcall-window", app, detail.str());
  }

  if (cancelled_.count(request) != 0) {
    // A cancel that returned ok proves the registration was still in the
    // table, which means no upcall had been posted for it — so none may
    // ever be delivered.
    std::ostringstream detail;
    detail << "request " << request << " was cancelled before any upcall was posted";
    Report("upcall-after-cancel", app, detail.str());
    return;
  }

  const auto it = registered_.find(request);
  if (it == registered_.end()) {
    std::ostringstream detail;
    detail << "request " << request << " was never registered (or already consumed)";
    Report("upcall-unknown-request", app, detail.str());
    return;
  }

  // Window consistency: an upcall fires only when availability strays
  // OUTSIDE the registered window; a level inside it is a spurious upcall.
  const Window& window = it->second;
  const double eps = 1e-9 * (std::fabs(window.upper) < 1.0 ? 1.0 : std::fabs(window.upper));
  if (level > window.lower + eps && level < window.upper - eps) {
    std::ostringstream detail;
    detail << "level " << level << " lies inside window [" << window.lower << ", "
           << window.upper << "]";
    Report("upcall-window", app, detail.str());
  }
  if (window.app != app) {
    std::ostringstream detail;
    detail << "request " << request << " registered by app " << window.app
           << " but delivered to app " << app;
    Report("upcall-unknown-request", app, detail.str());
  }
  // The registration is consumed by the upcall; a second delivery for the
  // same id will now surface as upcall-unknown-request.
  registered_.erase(it);
}

void OracleSet::OnStep(Time when) {
  if (when < last_event_time_) {
    std::ostringstream detail;
    detail << "event at " << when << "us fires after event at " << last_event_time_ << "us";
    Report("clock-monotonicity", 0, detail.str());
  }
  if (when < sim_->now()) {
    std::ostringstream detail;
    detail << "event at " << when << "us fires behind the clock " << sim_->now() << "us";
    Report("clock-monotonicity", 0, detail.str());
  }
  if (when > last_event_time_) {
    last_event_time_ = when;
  }
}

void OracleSet::OnTieBreak(Time when, uint64_t prev_seq, uint64_t seq) {
  ++tie_pairs_audited_;
  // The tie-break key (when, seq) is a total order, so among events sharing
  // a timestamp the queue must pop in scheduling order: strictly increasing
  // seq.  Equal seqs are impossible (the queue allocates them densely), so
  // <= catches both inversion and duplication.
  if (seq <= prev_seq) {
    std::ostringstream detail;
    detail << "at " << when << "us event seq " << seq << " fired after seq " << prev_seq
           << " (same-timestamp ties must pop in scheduling order)";
    Report("same-time-order", 0, detail.str());
  }
}

void OracleSet::OnWindowRegistered(AppId app, RequestId id, double lower, double upper) {
  registered_[id] = Window{app, lower, upper};
}

void OracleSet::OnWindowCancelled(RequestId id) {
  registered_.erase(id);
  cancelled_.insert(id);
}

void OracleSet::Sample() {
  const Time now = sim_->now();

  // Byte conservation: the link cannot deliver more than the nominal
  // waveform's integral (faults only take bandwidth away), and the lifetime
  // counter never decreases.
  const double bytes = link_->bytes_delivered();
  if (bytes + 1e-6 < last_bytes_delivered_) {
    std::ostringstream detail;
    detail << "bytes_delivered fell from " << last_bytes_delivered_ << " to " << bytes;
    Report("byte-conservation", 0, detail.str());
  }
  last_bytes_delivered_ = bytes;
  const double bound = IntegrateCapacityBytes(scenario_, now) * 1.01 + 8192.0;
  if (bytes > bound) {
    std::ostringstream detail;
    detail << "delivered " << bytes << " bytes > nominal capacity integral " << bound;
    Report("byte-conservation", 0, detail.str());
  }

  if (strategy_ == nullptr || !strategy_->HasEstimate()) {
    return;
  }
  const SupplyModelInterface& model = strategy_->supply_model();
  const double supply = model.TotalSupply();
  if (!std::isfinite(supply) || supply < 0.0) {
    std::ostringstream detail;
    detail << "total supply estimate " << supply;
    Report("supply-bounds", 0, detail.str());
    return;
  }

  const std::vector<ConnectionId> connections = strategy_->AttachedConnections();
  const int active = model.ActiveConnectionCount(now);
  if (!connections.empty() && active < 1) {
    std::ostringstream detail;
    detail << connections.size() << " connections attached but active count is " << active;
    Report("supply-bounds", 0, detail.str());
  }

  // Fair share (§6.2.1): every connection is guaranteed at least the fair
  // share a hypothetical extra connection would get, and never more than
  // the whole supply.  At 100k connections a full audit per sample would
  // dominate the run, so past the cap each sample audits a rotating window
  // — every connection is still visited regularly across samples.
  const double floor = supply / static_cast<double>(active + 1);
  const double eps = ShareEps(supply);
  size_t begin = 0;
  size_t count = connections.size();
  if (max_audited_connections_ > 0 && count > max_audited_connections_) {
    begin = audit_cursor_ % count;
    count = max_audited_connections_;
    audit_cursor_ += count;
  }
  for (size_t i = 0; i < count; ++i) {
    const ConnectionId connection = connections[(begin + i) % connections.size()];
    const double availability = strategy_->ConnectionAvailability(connection, now);
    if (availability + eps < floor) {
      std::ostringstream detail;
      detail << "connection " << connection << " availability " << availability
             << " below fair-share floor " << floor << " (supply " << supply << ", active "
             << active << ")";
      Report("fair-share", 0, detail.str());
    }
    if (availability > supply + eps) {
      std::ostringstream detail;
      detail << "connection " << connection << " availability " << availability
             << " exceeds supply " << supply;
      Report("fair-share", 0, detail.str());
    }
    const ConnectionEstimator* estimator = model.EstimatorFor(connection);
    if (estimator != nullptr) {
      const double bandwidth = estimator->bandwidth_bps();
      const auto rtt = static_cast<double>(estimator->smoothed_rtt());
      if (!std::isfinite(bandwidth) || bandwidth < 0.0) {
        std::ostringstream detail;
        detail << "connection " << connection << " smoothed bandwidth " << bandwidth;
        Report("ewma-bounds", 0, detail.str());
      }
      if (rtt < 0.0) {
        std::ostringstream detail;
        detail << "connection " << connection << " smoothed rtt " << rtt << "us";
        Report("ewma-bounds", 0, detail.str());
      }
    }
  }
}

void OracleSet::Finish() {
  Sample();
  // The fuzzer's drivers never Block() a receiver, so after the drain grace
  // period every posted upcall must have been delivered.
  const size_t queued = viceroy_->upcalls().queued_count();
  if (queued != 0) {
    std::ostringstream detail;
    detail << queued << " upcalls still queued after drain";
    Report("upcall-stranded", 0, detail.str());
  }
}

}  // namespace odyssey

// The tier_scale campaign: the viceroy hot core at 100 to 100k concurrent
// adaptive applications, with every fuzzing oracle left on.
//
// Each variant builds a shared-nothing rig — simulation, link, centralized
// strategy, viceroy — registers N applications each holding a re-registering
// window of tolerance, and drives a stepped supply waveform through a small
// set of hot connections.  Every supply step violates every window at once,
// so the rig exercises exactly the paths the scale work optimized: the
// indexed re-evaluation, batched upcall dispatch, slab-allocated request
// table and incremental supply model.  The n10k_naive variant runs the same
// rig on the pre-scale reference stack (naive supply model, full-scan
// re-evaluation) over a reduced schedule; comparing its events/sec rate
// against n10k's is the campaign's headline speedup figure.
//
// This lives in odyssey_check rather than odyssey_harness because the rig
// keeps the PR-5 OracleSet attached throughout — a trial with any oracle
// violation reports it in the artifact (oracle_violations gates at zero).

#ifndef SRC_CHECK_SCALE_SCENARIO_H_
#define SRC_CHECK_SCALE_SCENARIO_H_

#include "src/harness/campaign.h"
#include "src/harness/scenario_registry.h"

namespace odyssey {

// Registers the "scale_core" scenario (variants n100, n1k, n10k, n100k,
// n10k_naive).  Asserts that registration succeeds, like
// RegisterBuiltinScenarios.
void RegisterScaleScenarios(ScenarioRegistry* registry);

// The tier_scale campaign spec.  Declared here instead of in
// BuiltinCampaigns() because its scenario lives in odyssey_check: callers
// that can run it (ody_bench, the scale tests) append it to the built-in
// list after registering the scale scenarios.
CampaignSpec ScaleCampaign();

}  // namespace odyssey

#endif  // SRC_CHECK_SCALE_SCENARIO_H_

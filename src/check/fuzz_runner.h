// Executes one FuzzScenario against a full Odyssey stack under oracles.
//
// RunFuzzScenario builds a fresh shared-nothing rig (simulation, modulated
// link, fault injector, centralized strategy, all six wardens and their
// servers), attaches the invariant oracles, drives the scenario's per-app
// operation schedule, and returns every violation the oracles recorded.
// The result is a pure function of (scenario, options): running the same
// scenario twice — on any thread, in any order, with any number of sibling
// runs — yields identical results, which is what seed replay and shrinking
// rely on.

#ifndef SRC_CHECK_FUZZ_RUNNER_H_
#define SRC_CHECK_FUZZ_RUNNER_H_

#include <cstdint>
#include <vector>

#include "src/check/fuzz_scenario.h"
#include "src/check/oracles.h"
#include "src/sim/time.h"

namespace odyssey {

class TraceRecorder;

// Whether the intentionally seeded oracle-violation mutation was compiled
// in (-DODYSSEY_FUZZ_SELFTEST).  Release builds carry no mutation code.
#ifdef ODYSSEY_FUZZ_SELFTEST
inline constexpr bool kFuzzSelftestCompiled = true;
#else
inline constexpr bool kFuzzSelftestCompiled = false;
#endif

// One delivered upcall, as captured for differential comparison.  Two
// stacks that adapt identically produce identical record sequences.
struct UpcallRecord {
  AppId app = 0;
  uint64_t seq = 0;
  RequestId request = 0;
  ResourceId resource = ResourceId::kNetworkBandwidth;
  double level = 0.0;
  Time posted_at = 0;
  Time delivered_at = 0;

  bool operator==(const UpcallRecord&) const = default;
};

// Everything the differential tests compare between the production stack
// and the naive reference stack: the full upcall sequence and the
// availability figures observed at each periodic sample.
struct DifferentialLog {
  std::vector<UpcallRecord> upcalls;
  // Flat stream per sample: now, total supply, active count, then each
  // attached connection's availability in id order.  Bit-for-bit equality
  // is the pass criterion, so doubles are stored unrounded.
  std::vector<double> samples;
};

struct FuzzRunOptions {
  // Injects a deliberate duplicate upcall-delivery notification (the second
  // upcall of every app is observed twice), so CI can verify end-to-end
  // that the oracles detect it and the shrinker minimizes it.  Only honored
  // when kFuzzSelftestCompiled; silently inert otherwise.
  bool selftest_mutation = false;
  // Second seeded mutation: removes the event queue's deterministic FIFO
  // tie-break (same-timestamp events pop newest-first), which the
  // same-time-order oracle must catch.  Only honored when
  // kFuzzSelftestCompiled; silently inert otherwise.
  bool selftest_tiebreak = false;
  // Cadence of the periodic estimator/fair-share/conservation audit.
  Duration oracle_period = 100 * kMillisecond;
  // Extra virtual time after the horizon for queued upcalls and in-flight
  // transfers to drain before the stranded-upcall check.
  Duration drain_grace = 2 * kSecond;
  // Optional recorder for the canonical failure trace; borrowed.
  TraceRecorder* trace = nullptr;
  // Runs the pre-scale reference stack instead of the production one: the
  // naive full-rescan supply model and the viceroy's full-scan
  // re-evaluation.  The differential tests run every scenario both ways
  // and require identical DifferentialLogs.
  bool reference_stack = false;
  // When set, the run appends its upcall records and availability samples
  // here; borrowed.
  DifferentialLog* differential = nullptr;
  // Forwarded to OracleSet::set_max_audited_connections (0 = audit all).
  size_t max_audited_connections = 0;
};

struct FuzzRunResult {
  std::vector<FuzzViolation> violations;  // capped per oracle; see OracleSet
  uint64_t violation_count = 0;           // uncapped total
  uint64_t upcalls_delivered = 0;
  uint64_t requests_granted = 0;
  uint64_t requests_denied = 0;
  // Denials where an admission-controlling strategy rejected the window
  // (subset of requests_denied; 0 for strategies without admission).
  uint64_t admission_rejects = 0;
  uint64_t cancels_ok = 0;
  uint64_t tsops_issued = 0;
  uint64_t tie_pairs_audited = 0;  // same-timestamp pairs the auditor saw
  double bytes_delivered = 0.0;

  bool ok() const { return violation_count == 0; }
};

FuzzRunResult RunFuzzScenario(const FuzzScenario& scenario, const FuzzRunOptions& options = {});

}  // namespace odyssey

#endif  // SRC_CHECK_FUZZ_RUNNER_H_

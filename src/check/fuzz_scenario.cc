#include "src/check/fuzz_scenario.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/mobility/radio_environment.h"
#include "src/mobility/waveform_source.h"
#include "src/sim/random.h"
#include "src/strategies/strategy_registry.h"
#include "src/tracemod/replay_trace.h"

namespace odyssey {
namespace {

// Generation bounds.  Chosen so every scenario finishes in well under a
// second of wall time while still exercising contention, starvation and
// recovery: the waveform spans the calibrated experiment range (and dips to
// zero for radio shadows), and fault windows are short enough that the
// workload always gets bandwidth again before the horizon.
constexpr Duration kMinHorizon = 20 * kSecond;
constexpr Duration kMaxHorizon = 60 * kSecond;
constexpr int kMinSegments = 2;
constexpr int kMaxSegments = 6;
constexpr double kMinBandwidth = 8.0 * 1024.0;
constexpr double kMaxBandwidth = 240.0 * 1024.0;
constexpr Duration kMaxZeroSegment = 3 * kSecond;
constexpr int kMaxApps = 8;
constexpr int kMaxOpsPerApp = 6;
constexpr int kMaxFaults = 4;
constexpr Duration kMaxOutage = 3 * kSecond;
constexpr Duration kMaxSpikeExtra = 500 * kMillisecond;
constexpr Duration kMaxStallExtra = 200 * kMillisecond;

Duration UniformDuration(Rng& rng, Duration lo, Duration hi) {
  return lo + static_cast<Duration>(rng.UniformInt(static_cast<uint64_t>(hi - lo + 1)));
}

FuzzFault GenerateFault(Rng& rng, Duration horizon) {
  FuzzFault fault;
  fault.kind = static_cast<FuzzFaultKind>(rng.UniformInt(6));
  fault.start = UniformDuration(rng, 0, horizon);
  switch (fault.kind) {
    case FuzzFaultKind::kDropProbability:
      fault.p = rng.Uniform(0.01, 0.3);
      break;
    case FuzzFaultKind::kDropMessage:
      fault.index = 1 + rng.UniformInt(200);
      break;
    case FuzzFaultKind::kOutage:
      fault.duration = UniformDuration(rng, 100 * kMillisecond, kMaxOutage);
      break;
    case FuzzFaultKind::kLatencySpike:
      fault.duration = UniformDuration(rng, 100 * kMillisecond, 2 * kSecond);
      fault.extra = UniformDuration(rng, 1 * kMillisecond, kMaxSpikeExtra);
      break;
    case FuzzFaultKind::kServerStall:
      fault.duration = UniformDuration(rng, 100 * kMillisecond, 2 * kSecond);
      fault.extra = UniformDuration(rng, 1 * kMillisecond, kMaxStallExtra);
      break;
    case FuzzFaultKind::kFlowKill:
      break;
  }
  return fault;
}

// The mobility dimension's waveform draw: a model, a coverage layout and a
// sampling of the pipeline, all parameterized from the generator stream.
// ensure_live_tail keeps the documented drain guarantee (the final segment
// has positive bandwidth); everything else — shadow length, flap rate — is
// whatever the motion produces, which is exactly the point.
void GenerateMobilitySegments(Rng& rng, Duration horizon,
                              std::vector<FuzzSegment>* segments) {
  MobilityScenarioSpec spec;
  spec.model = static_cast<MobilityModelKind>(rng.UniformInt(kMobilityModelKinds));
  spec.layout = static_cast<BaseStationLayout>(rng.UniformInt(kBaseStationLayouts));
  spec.arena.width_m = rng.Uniform(400.0, 1500.0);
  spec.arena.height_m = rng.Uniform(400.0, 1500.0);
  spec.speed_scale = rng.Uniform(0.5, 4.0);
  spec.memory = rng.Uniform(0.2, 0.95);
  spec.duration = horizon;
  spec.sample_period = UniformDuration(rng, 250 * kMillisecond, kSecond);
  spec.ensure_live_tail = true;
  const uint64_t waveform_seed = rng.NextU64();
  const ReplayTrace waveform = MakeMobilityWaveform(spec, waveform_seed);
  for (const TraceSegment& segment : waveform.segments()) {
    segments->push_back(FuzzSegment{segment.duration, segment.bandwidth_bps, segment.latency});
  }
}

}  // namespace

const char* FuzzWardenName(FuzzWardenKind kind) {
  switch (kind) {
    case FuzzWardenKind::kVideo:
      return "video";
    case FuzzWardenKind::kWeb:
      return "web";
    case FuzzWardenKind::kSpeech:
      return "speech";
    case FuzzWardenKind::kBitstream:
      return "bitstream";
    case FuzzWardenKind::kFile:
      return "files";
    case FuzzWardenKind::kTelemetry:
      return "telemetry";
  }
  return "unknown";
}

const char* FuzzFaultName(FuzzFaultKind kind) {
  switch (kind) {
    case FuzzFaultKind::kDropProbability:
      return "drop_probability";
    case FuzzFaultKind::kDropMessage:
      return "drop_message";
    case FuzzFaultKind::kOutage:
      return "outage";
    case FuzzFaultKind::kLatencySpike:
      return "latency_spike";
    case FuzzFaultKind::kServerStall:
      return "server_stall";
    case FuzzFaultKind::kFlowKill:
      return "flow_kill";
  }
  return "unknown";
}

size_t FuzzScenario::ElementCount() const {
  size_t count = segments.size() + apps.size() + faults.size();
  for (const FuzzApp& app : apps) {
    count += app.ops.size();
  }
  return count;
}

std::string FuzzScenario::Describe() const {
  std::ostringstream out;
  out << "scenario seed=" << seed << " horizon=" << DurationToSeconds(horizon)
      << "s elements=" << ElementCount() << "\n";
  if (fleet_nodes >= 2) {
    out << "  fleet nodes=" << fleet_nodes << " servers=" << fleet_servers << "\n";
  }
  if (!strategy.empty()) {
    out << "  strategy " << strategy << "\n";
  }
  for (const FuzzSegment& segment : segments) {
    out << "  segment " << DurationToSeconds(segment.duration) << "s "
        << segment.bandwidth_bps / 1024.0 << " KB/s latency "
        << DurationToMillis(segment.latency) << "ms\n";
  }
  for (size_t i = 0; i < apps.size(); ++i) {
    const FuzzApp& app = apps[i];
    out << "  app" << i << " warden=" << FuzzWardenName(app.warden)
        << " start=" << DurationToSeconds(app.start) << "s ops=" << app.ops.size() << "\n";
    for (const FuzzOp& op : app.ops) {
      out << "    t=" << DurationToSeconds(op.at) << "s ";
      switch (op.kind) {
        case FuzzOpKind::kRequest:
          out << "request window [" << op.window_lo_frac << ", " << op.window_hi_frac
              << "] x level";
          break;
        case FuzzOpKind::kCancel:
          out << "cancel #" << op.variant;
          break;
        case FuzzOpKind::kTsop:
          out << "tsop variant=" << op.variant << " magnitude=" << op.magnitude;
          break;
      }
      out << "\n";
    }
  }
  for (const FuzzFault& fault : faults) {
    out << "  fault " << FuzzFaultName(fault.kind) << " start="
        << DurationToSeconds(fault.start) << "s duration="
        << DurationToSeconds(fault.duration) << "s extra=" << DurationToMillis(fault.extra)
        << "ms p=" << fault.p << " index=" << fault.index << "\n";
  }
  return out.str();
}

FuzzScenario GenerateScenario(uint64_t seed) { return GenerateScenario(seed, ScenarioOptions{}); }

FuzzScenario GenerateScenario(uint64_t seed, const ScenarioOptions& options) {
  // The generator stream is independent of the Simulation stream (which is
  // also rooted at scenario.seed): mixing once keeps the two decoupled.
  Rng rng(SplitMix64(seed ^ 0x6f647966757a7aULL).Next());

  FuzzScenario scenario;
  scenario.seed = seed;
  scenario.horizon = UniformDuration(rng, kMinHorizon, kMaxHorizon);

  // Mobility dimension: gated behind its own flag draw so that with the
  // option off, the stream below is bit-identical to the historical
  // generator.  With it on, about half the scenarios take a
  // motion-generated waveform instead of the hand-rolled segment draw.
  const bool mobility_waveform = options.mobility && rng.NextDouble() < 0.5;
  if (mobility_waveform) {
    GenerateMobilitySegments(rng, scenario.horizon, &scenario.segments);
  } else {
    const int segment_count =
        kMinSegments + static_cast<int>(rng.UniformInt(kMaxSegments - kMinSegments + 1));
    for (int i = 0; i < segment_count; ++i) {
      FuzzSegment segment;
      const bool last = i + 1 == segment_count;
      // Radio shadows: an occasional zero-bandwidth segment, never last (the
      // final segment persists forever, and a dead tail would strand every
      // in-flight transfer until the horizon).
      const bool shadow = !last && rng.NextDouble() < 0.2;
      if (shadow) {
        segment.duration = UniformDuration(rng, 200 * kMillisecond, kMaxZeroSegment);
        segment.bandwidth_bps = 0.0;
      } else {
        segment.duration = UniformDuration(rng, 2 * kSecond, 15 * kSecond);
        segment.bandwidth_bps = rng.Uniform(kMinBandwidth, kMaxBandwidth);
      }
      segment.latency = UniformDuration(rng, 1 * kMillisecond, 50 * kMillisecond);
      scenario.segments.push_back(segment);
    }
  }

  // Large-N mode (max_apps above the default): log-uniform in [1, max_apps]
  // biases toward moderate sizes while still reaching the configured scale
  // regularly.  The default takes the original uniform draw verbatim, so
  // historical seeds keep producing byte-identical scenarios.
  int app_count;
  if (options.max_apps <= kMaxApps) {
    app_count = 1 + static_cast<int>(rng.UniformInt(kMaxApps));
  } else {
    const double u = rng.NextDouble();
    const double raw = std::exp(u * std::log(static_cast<double>(options.max_apps) + 1.0));
    app_count = std::clamp(static_cast<int>(raw), 1, options.max_apps);
  }
  for (int i = 0; i < app_count; ++i) {
    FuzzApp app;
    // Cycle through the wardens so every scenario with >= 6 apps covers all
    // six data types; the offset randomizes which types small scenarios get.
    const auto offset = static_cast<int>(rng.UniformInt(kFuzzWardenKinds));
    app.warden = static_cast<FuzzWardenKind>((i + offset) % kFuzzWardenKinds);
    app.start = UniformDuration(rng, 0, scenario.horizon / 4);
    const int op_count = static_cast<int>(rng.UniformInt(kMaxOpsPerApp + 1));
    for (int j = 0; j < op_count; ++j) {
      FuzzOp op;
      op.at = UniformDuration(rng, app.start + kSecond, scenario.horizon);
      const double kind_draw = rng.NextDouble();
      if (kind_draw < 0.35) {
        op.kind = FuzzOpKind::kRequest;
      } else if (kind_draw < 0.5) {
        op.kind = FuzzOpKind::kCancel;
      } else {
        op.kind = FuzzOpKind::kTsop;
      }
      op.window_lo_frac = rng.Uniform(0.3, 0.9);
      op.window_hi_frac = op.window_lo_frac * rng.Uniform(1.2, 3.0);
      op.variant = static_cast<int>(rng.UniformInt(8));
      op.magnitude = rng.NextDouble();
      app.ops.push_back(op);
    }
    std::sort(app.ops.begin(), app.ops.end(),
              [](const FuzzOp& a, const FuzzOp& b) { return a.at < b.at; });
    scenario.apps.push_back(std::move(app));
  }

  const int fault_count = static_cast<int>(rng.UniformInt(kMaxFaults + 1));
  for (int i = 0; i < fault_count; ++i) {
    scenario.faults.push_back(GenerateFault(rng, scenario.horizon));
  }

  // Fleet dimension: drawn last, after every historical draw, so with the
  // option off the stream above is bit-identical to the historical
  // generator.  With it on, about half the scenarios run multi-node.
  const bool fleet_dimension = options.fleet && rng.NextDouble() < 0.5;
  if (fleet_dimension) {
    scenario.fleet_nodes = 2 + static_cast<int>(rng.UniformInt(7));
    scenario.fleet_servers = 1 + static_cast<int>(rng.UniformInt(2));
  }

  // Strategy dimension: drawn after everything else (same append-only
  // pattern as fleet), uniform over the builtin registry in registration
  // order, so the chosen name is a pure function of the seed.
  if (options.strategies) {
    const std::vector<std::string> names = StrategyRegistry::Builtin().Names();
    scenario.strategy = names[rng.UniformInt(names.size())];
  }

  return scenario;
}

double IntegrateCapacityBytes(const FuzzScenario& scenario, Time until) {
  // One audited integration path: the FuzzSegments mirror TraceSegments, so
  // the bound is exactly ReplayTrace::IntegralBytes over the same waveform
  // (identical arithmetic, byte-identical results).
  ReplayTrace waveform;
  for (const FuzzSegment& segment : scenario.segments) {
    waveform.Append(segment.duration, segment.bandwidth_bps, segment.latency);
  }
  return waveform.IntegralBytes(until);
}

}  // namespace odyssey

#include "src/check/fuzz_runner.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/contract.h"
#include "src/core/odyssey_client.h"
#include "src/core/tsop_codec.h"
#include "src/metrics/experiment.h"
#include "src/net/fault_injector.h"
#include "src/net/modulator.h"
#include "src/servers/calibration.h"
#include "src/servers/file_server.h"
#include "src/servers/telemetry_server.h"
#include "src/sim/random.h"
#include "src/strategies/centralized.h"
#include "src/tracemod/replay_trace.h"
#include "src/wardens/bitstream_warden.h"
#include "src/wardens/file_warden.h"
#include "src/wardens/speech_warden.h"
#include "src/wardens/telemetry_warden.h"
#include "src/wardens/video_warden.h"
#include "src/wardens/web_warden.h"

namespace odyssey {
namespace {

// Published objects every scenario can address (variant selects among them).
constexpr int kFuzzFiles = 4;
constexpr char kFuzzFeed[] = "feed0";

// Cap on upcall-handler re-registrations per app, so a scenario's event
// cascade is bounded no matter how lively the estimates are.
constexpr int kReregisterBudget = 128;

ReplayTrace BuildTrace(const FuzzScenario& scenario) {
  ReplayTrace trace;
  for (const FuzzSegment& segment : scenario.segments) {
    trace.Append(segment.duration, segment.bandwidth_bps, segment.latency);
  }
  return trace;
}

FaultPlan BuildFaultPlan(const FuzzScenario& scenario) {
  FaultPlan plan;
  // The injector's probabilistic stream is rooted in the scenario seed but
  // decoupled from both the Simulation and generator streams.
  plan.WithSeed(SplitMix64(scenario.seed ^ 0x6661756c7473ULL).Next());
  for (const FuzzFault& fault : scenario.faults) {
    switch (fault.kind) {
      case FuzzFaultKind::kDropProbability:
        plan.WithDropProbability(std::max(plan.drop_probability, fault.p));
        break;
      case FuzzFaultKind::kDropMessage:
        plan.WithDroppedMessage(fault.index);
        break;
      case FuzzFaultKind::kOutage:
        plan.WithOutage(fault.start, fault.duration);
        break;
      case FuzzFaultKind::kLatencySpike:
        plan.WithLatencySpike(fault.start, fault.duration, fault.extra);
        break;
      case FuzzFaultKind::kServerStall:
        plan.WithServerStall(fault.start, fault.duration, fault.extra);
        break;
      case FuzzFaultKind::kFlowKill:
        plan.WithFlowKill(fault.start);
        break;
    }
  }
  return plan;
}

// Drives one fuzzed application: registers it, executes its op schedule at
// the scheduled virtual times, and keeps upcall traffic flowing by
// re-registering a window around the delivered level.  Every decision is a
// pure function of the scenario's op fields — the driver never draws from
// the simulation's random stream — so replays are exact.
class FuzzDriver {
 public:
  FuzzDriver(OdysseyClient* client, OracleSet* oracle, const FuzzApp& app, int index,
             FuzzRunResult* result)
      : client_(client), oracle_(oracle), app_(app), index_(index), result_(result) {}

  void Start() {
    client_->sim()->ScheduleAt(app_.start, [this] {
      app_id_ = client_->RegisterApplication("fuzz-app-" + std::to_string(index_));
      for (const FuzzOp& op : app_.ops) {
        // &op binds the scenario-owned vector element (not the loop slot),
        // and the scenario outlives the run.
        client_->sim()->ScheduleAt(op.at, [this, &op] { Execute(op); });  // ody_lint: owned-capture
      }
    });
  }

  // After the horizon the driver goes quiet: scheduled ops and upcall
  // handlers still fire, but take no further action.
  void Stop() { stopped_ = true; }

 private:
  void Execute(const FuzzOp& op) {
    if (stopped_) {
      return;
    }
    switch (op.kind) {
      case FuzzOpKind::kRequest:
        DoRequest(op.window_lo_frac, op.window_hi_frac);
        break;
      case FuzzOpKind::kCancel:
        DoCancel(op.variant);
        break;
      case FuzzOpKind::kTsop:
        DoTsop(op);
        break;
    }
  }

  void DoRequest(double lo_frac, double hi_frac) {
    const double level = client_->CurrentLevel(app_id_, ResourceId::kNetworkBandwidth);
    // Clamp the window to contain the current level: the generator's
    // fractions may invert around 1.0, and a denied request would stall
    // the upcall loop this request is meant to feed.
    const double lower = level * std::min(lo_frac, 0.95);
    const double upper = std::max(level * std::max(hi_frac, 1.05), lower + 1.0);
    ResourceDescriptor descriptor;
    descriptor.resource = ResourceId::kNetworkBandwidth;
    descriptor.lower = lower;
    descriptor.upper = upper;
    descriptor.handler = [this, lo_frac, hi_frac](RequestId id, ResourceId, double) {
      std::erase(outstanding_, id);
      if (!stopped_ && reregister_budget_ > 0) {
        --reregister_budget_;
        DoRequest(lo_frac, hi_frac);
      }
    };
    const RequestResult granted = client_->Request(app_id_, descriptor);
    if (granted.ok()) {
      ++result_->requests_granted;
      outstanding_.push_back(granted.id);
      oracle_->OnWindowRegistered(app_id_, granted.id, lower, upper);
    } else {
      ++result_->requests_denied;
    }
  }

  void DoCancel(int variant) {
    if (outstanding_.empty()) {
      return;
    }
    const size_t index = static_cast<size_t>(variant) % outstanding_.size();
    const RequestId id = outstanding_[index];
    outstanding_.erase(outstanding_.begin() + static_cast<ptrdiff_t>(index));
    const Status status = client_->Cancel(id);
    if (status.ok()) {
      // A successful cancel proves no upcall was posted for this id, so
      // the oracle may flag any later delivery as upcall-after-cancel.
      ++result_->cancels_ok;
      oracle_->OnWindowCancelled(id);
    }
  }

  void DoTsop(const FuzzOp& op) {
    ++result_->tsops_issued;
    const auto discard = [](Status, std::string) {};
    switch (app_.warden) {
      case FuzzWardenKind::kVideo: {
        const std::string path = std::string(kOdysseyRoot) + "video/default";
        if (!opened_) {
          opened_ = true;
          client_->Tsop(app_id_, path, kVideoOpen, kDefaultMovie, discard);
          return;
        }
        switch (op.variant % 3) {
          case 0:
            client_->Tsop(app_id_, path, kVideoSetTrack,
                          PackStruct(VideoSetTrackRequest{op.variant % 4}), discard);
            return;
          case 1:
            client_->Tsop(
                app_id_, path, kVideoTakeFrame,
                PackStruct(VideoTakeFrameRequest{
                    static_cast<int>(op.magnitude * kVideoFramesPerTrial)}),
                discard);
            return;
          default:
            client_->Tsop(app_id_, path, kVideoStats, "", discard);
            return;
        }
      }
      case FuzzWardenKind::kWeb: {
        const std::string path = std::string(kOdysseyRoot) + "web/session";
        if (!opened_) {
          opened_ = true;
          client_->Tsop(app_id_, path, kWebOpen, kTestImageUrl, discard);
          return;
        }
        if (op.variant % 2 == 0) {
          client_->Tsop(app_id_, path, kWebSetFidelity,
                        PackStruct(WebSetFidelityRequest{op.variant % 4}), discard);
        } else {
          client_->Tsop(app_id_, path, kWebFetch, "", discard);
        }
        return;
      }
      case FuzzWardenKind::kSpeech: {
        const std::string path = std::string(kOdysseyRoot) + "speech/janus";
        if (op.variant % 3 == 0) {
          client_->Tsop(app_id_, path, kSpeechSetMode,
                        PackStruct(SpeechSetModeRequest{op.variant % 4}), discard);
        } else {
          SpeechUtterance utterance;
          // Degenerate zero-byte utterances are part of the vocabulary:
          // the warden must plan and answer them even at zero bandwidth.
          utterance.raw_bytes = op.magnitude < 0.15 ? 0.0 : op.magnitude * 40.0 * 1024.0;
          utterance.latency_goal_seconds = (op.variant % 2 == 1) ? 2.0 : 0.0;
          client_->Tsop(app_id_, path, kSpeechRecognize, PackStruct(utterance), discard);
        }
        return;
      }
      case FuzzWardenKind::kBitstream: {
        const std::string path = std::string(kOdysseyRoot) + "bitstream/stream";
        if (!streaming_) {
          streaming_ = true;
          BitstreamParams params;
          params.target_bps = (op.variant % 3 == 0) ? 0.0 : op.magnitude * 64.0 * 1024.0;
          params.window_bytes = 0.0;
          client_->Tsop(app_id_, path, kBitstreamStart, PackStruct(params), discard);
        } else {
          streaming_ = false;
          client_->Tsop(app_id_, path, kBitstreamStop, "", discard);
        }
        return;
      }
      case FuzzWardenKind::kFile: {
        const std::string path = std::string(kOdysseyRoot) + "files/doc/" +
                                 std::to_string(op.variant % kFuzzFiles);
        switch (op.variant % 3) {
          case 0:
            client_->Tsop(app_id_, path, kFileSetConsistency,
                          PackStruct(FileSetConsistencyRequest{op.variant % 4}), discard);
            return;
          case 1:
            client_->Tsop(app_id_, path, kFileRead, "", discard);
            return;
          default:
            client_->Tsop(app_id_, path, kFileStats, "", discard);
            return;
        }
      }
      case FuzzWardenKind::kTelemetry: {
        const std::string path = std::string(kOdysseyRoot) + "telemetry/" + kFuzzFeed;
        if (!subscribed_) {
          subscribed_ = true;
          client_->Tsop(app_id_, path, kTelemetrySubscribe,
                        PackStruct(TelemetrySubscribeRequest{(op.variant % 4) - 1}), discard);
          return;
        }
        switch (op.variant % 3) {
          case 0:
            client_->Tsop(app_id_, path, kTelemetrySetLevel,
                          PackStruct(TelemetrySetLevelRequest{op.variant % 3}), discard);
            return;
          case 1:
            client_->Tsop(app_id_, path, kTelemetryStats, "", discard);
            return;
          default:
            subscribed_ = false;
            client_->Tsop(app_id_, path, kTelemetryUnsubscribe, "", discard);
            return;
        }
      }
    }
  }

  OdysseyClient* client_;
  OracleSet* oracle_;
  const FuzzApp& app_;
  int index_;
  FuzzRunResult* result_;
  AppId app_id_ = 0;
  bool stopped_ = false;
  bool opened_ = false;
  bool streaming_ = false;
  bool subscribed_ = false;
  int reregister_budget_ = kReregisterBudget;
  std::vector<RequestId> outstanding_;
};

// Self-rescheduling periodic oracle audit; optionally records the
// availability figures the differential tests compare.
struct Sampler {
  Simulation* sim = nullptr;
  OracleSet* oracle = nullptr;
  CentralizedStrategy* strategy = nullptr;
  DifferentialLog* differential = nullptr;
  Time end = 0;
  Duration period = 0;

  void Tick() {
    oracle->Sample();
    if (differential != nullptr) {
      const Time now = sim->now();
      differential->samples.push_back(static_cast<double>(now));
      differential->samples.push_back(strategy->TotalSupply(now));
      differential->samples.push_back(
          static_cast<double>(strategy->supply_model().ActiveConnectionCount(now)));
      for (const ConnectionId connection : strategy->AttachedConnections()) {
        differential->samples.push_back(strategy->ConnectionAvailability(connection, now));
      }
    }
    if (sim->now() < end) {
      sim->Schedule(period, [this] { Tick(); });
    }
  }
};

}  // namespace

FuzzRunResult RunFuzzScenario(const FuzzScenario& scenario, const FuzzRunOptions& options) {
  FuzzRunResult result;

  Simulation sim(scenario.seed);
  if (options.trace != nullptr) {
    sim.set_trace(options.trace);
  }
  const FuzzSegment first =
      scenario.segments.empty() ? FuzzSegment{kSecond, kHighBandwidth, kOneWayLatency}
                                : scenario.segments.front();
  Link link(&sim, first.bandwidth_bps, first.latency);
  Modulator modulator(&sim, &link);
  FaultInjector injector(&sim, &link);

  VideoServer video_server(&sim.rng());
  const Status added =
      video_server.AddMovie(VideoServer::MakeDefaultMovie(kDefaultMovie, kVideoFramesPerTrial));
  ODY_ASSERT(added.ok(), "fuzz rig failed to seed the video catalog");
  DistillationServer distillation_server(&sim.rng());
  distillation_server.PublishImage(kTestImageUrl, kWebImageBytes);
  JanusServer janus_server(&sim.rng());
  FileServer file_server(&sim.rng());
  for (int i = 0; i < kFuzzFiles; ++i) {
    file_server.Publish("doc/" + std::to_string(i), (8.0 + 16.0 * i) * 1024.0);
  }
  TelemetryServer telemetry_server(&sim);
  telemetry_server.CreateFeed(kFuzzFeed, 200 * kMillisecond, 100.0, 5.0);

  auto strategy = std::make_unique<CentralizedStrategy>(
      &sim, SupplyModelConfig{},
      options.reference_stack ? SupplyModelKind::kNaive : SupplyModelKind::kIncremental);
  CentralizedStrategy* strategy_ptr = strategy.get();
  OdysseyClient client(&sim, &link, std::move(strategy), kUpcallLatency);
  if (options.reference_stack) {
    client.viceroy().set_reevaluate_mode(ReevaluateMode::kFullScan);
  }
  client.InstallWarden(std::make_unique<VideoWarden>(&video_server));
  client.InstallWarden(std::make_unique<WebWarden>(&distillation_server));
  client.InstallWarden(std::make_unique<SpeechWarden>(&janus_server));
  client.InstallWarden(std::make_unique<BitstreamWarden>());
  client.InstallWarden(std::make_unique<FileWarden>(&file_server));
  client.InstallWarden(std::make_unique<TelemetryWarden>(&telemetry_server));
  client.set_retry_policy(RetryPolicy::Default());
  client.set_fault_injector(&injector);
  injector.Arm(BuildFaultPlan(scenario));

  OracleSet oracle(scenario, &sim, &client.viceroy(), strategy_ptr, &link);
  oracle.set_max_audited_connections(options.max_audited_connections);
  client.viceroy().upcalls().set_delivery_observer(
      [&oracle, &result, &options, &sim](AppId app, uint64_t seq, RequestId request,
                                         ResourceId resource, double level, Time posted_at) {
        ++result.upcalls_delivered;
        if (options.differential != nullptr) {
          options.differential->upcalls.push_back(
              UpcallRecord{app, seq, request, resource, level, posted_at, sim.now()});
        }
        oracle.OnUpcallDelivered(app, seq, request, resource, level, posted_at);
#ifdef ODYSSEY_FUZZ_SELFTEST
        if (options.selftest_mutation && seq == 2) {
          // Intentionally seeded defect: the second upcall of every app is
          // observed twice, as if the dispatcher had delivered a duplicate.
          // The upcall-duplicate oracle must catch it and the shrinker must
          // reduce the scenario around it (CI's fuzz-selftest job).
          oracle.OnUpcallDelivered(app, seq, request, resource, level, posted_at);
        }
#else
        (void)options;
#endif
      });
  // The oracle outlives every event (both observers are detached below,
  // before the stack unwinds).
  sim.set_step_observer([&oracle](Time when) { oracle.OnStep(when); });  // ody_lint: owned-capture
  // ody_lint: owned-capture
  sim.set_tie_observer([&oracle](Time when, uint64_t prev_seq, uint64_t seq) {
    oracle.OnTieBreak(when, prev_seq, seq);
  });
#ifdef ODYSSEY_FUZZ_SELFTEST
  if (options.selftest_tiebreak) {
    // Intentionally seeded defect: the queue pops same-timestamp ties
    // newest-first instead of in scheduling order.  The same-time-order
    // oracle must catch it (CI's fuzz-selftest job).
    sim.set_selftest_lifo_ties(true);
  }
#endif

  const Time end = scenario.horizon + options.drain_grace;
  Sampler sampler{&sim, &oracle, strategy_ptr, options.differential, end, options.oracle_period};
  // The sampler stops rescheduling at |end| and the sim drains before it
  // leaves scope.
  sim.Schedule(options.oracle_period, [&sampler] { sampler.Tick(); });  // ody_lint: owned-capture

  std::vector<std::unique_ptr<FuzzDriver>> drivers;
  drivers.reserve(scenario.apps.size());
  for (size_t i = 0; i < scenario.apps.size(); ++i) {
    drivers.push_back(std::make_unique<FuzzDriver>(&client, &oracle, scenario.apps[i],
                                                   static_cast<int>(i), &result));
    drivers.back()->Start();
  }

  modulator.Replay(BuildTrace(scenario));
  sim.RunUntil(scenario.horizon);
  for (auto& driver : drivers) {
    driver->Stop();
  }
  sim.RunUntil(end);
  oracle.Finish();

  // Detach the observers before the stack unwinds: the oracle borrows the
  // viceroy and link, and no event may fire past this point anyway.
  client.viceroy().upcalls().set_delivery_observer({});
  sim.set_step_observer({});
  sim.set_tie_observer({});

  result.violations = oracle.violations();
  result.violation_count = oracle.violation_count();
  result.tie_pairs_audited = oracle.tie_pairs_audited();
  result.bytes_delivered = link.bytes_delivered();
  return result;
}

}  // namespace odyssey

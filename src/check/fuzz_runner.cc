#include "src/check/fuzz_runner.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/check/fuzz_driver.h"
#include "src/core/contract.h"
#include "src/core/odyssey_client.h"
#include "src/metrics/experiment.h"
#include "src/net/fault_injector.h"
#include "src/net/modulator.h"
#include "src/servers/calibration.h"
#include "src/servers/file_server.h"
#include "src/servers/telemetry_server.h"
#include "src/strategies/centralized.h"
#include "src/strategies/strategy_registry.h"
#include "src/tracemod/replay_trace.h"
#include "src/wardens/bitstream_warden.h"
#include "src/wardens/file_warden.h"
#include "src/wardens/speech_warden.h"
#include "src/wardens/telemetry_warden.h"
#include "src/wardens/video_warden.h"
#include "src/wardens/web_warden.h"

namespace odyssey {
namespace {

// Self-rescheduling periodic oracle audit; optionally records the
// availability figures the differential tests compare.
struct Sampler {
  Simulation* sim = nullptr;
  OracleSet* oracle = nullptr;
  // The audit surface, when the installed strategy exposes one; null for
  // isolated-estimate strategies (laissez-faire, blind-optimism).
  CentralizedStrategy* strategy = nullptr;
  // Always set: the strategy actually installed in the viceroy.
  BandwidthStrategy* base = nullptr;
  size_t app_count = 0;
  DifferentialLog* differential = nullptr;
  Time end = 0;
  Duration period = 0;

  void Tick() {
    oracle->Sample();
    if (differential != nullptr) {
      const Time now = sim->now();
      differential->samples.push_back(static_cast<double>(now));
      if (strategy != nullptr) {
        differential->samples.push_back(strategy->TotalSupply(now));
        differential->samples.push_back(
            static_cast<double>(strategy->supply_model().ActiveConnectionCount(now)));
        for (const ConnectionId connection : strategy->AttachedConnections()) {
          differential->samples.push_back(strategy->ConnectionAvailability(connection, now));
        }
      } else {
        // No per-connection surface; sample the per-app figures the viceroy
        // itself consults (apps register 1..N in driver order).
        differential->samples.push_back(base->TotalSupply(now));
        differential->samples.push_back(base->HasEstimate() ? 1.0 : 0.0);
        for (size_t i = 1; i <= app_count; ++i) {
          differential->samples.push_back(base->AvailabilityFor(static_cast<AppId>(i), now));
        }
      }
    }
    if (sim->now() < end) {
      sim->Schedule(period, [this] { Tick(); });
    }
  }
};

}  // namespace

FuzzRunResult RunFuzzScenario(const FuzzScenario& scenario, const FuzzRunOptions& options) {
  FuzzRunResult result;

  Simulation sim(scenario.seed);
  if (options.trace != nullptr) {
    sim.set_trace(options.trace);
  }
  const FuzzSegment first =
      scenario.segments.empty() ? FuzzSegment{kSecond, kHighBandwidth, kOneWayLatency}
                                : scenario.segments.front();
  Link link(&sim, first.bandwidth_bps, first.latency);
  Modulator modulator(&sim, &link);
  FaultInjector injector(&sim, &link);

  VideoServer video_server(&sim.rng());
  const Status added =
      video_server.AddMovie(VideoServer::MakeDefaultMovie(kDefaultMovie, kVideoFramesPerTrial));
  ODY_ASSERT(added.ok(), "fuzz rig failed to seed the video catalog");
  DistillationServer distillation_server(&sim.rng());
  distillation_server.PublishImage(kTestImageUrl, kWebImageBytes);
  JanusServer janus_server(&sim.rng());
  FileServer file_server(&sim.rng());
  for (int i = 0; i < kFuzzFiles; ++i) {
    file_server.Publish("doc/" + std::to_string(i), (8.0 + 16.0 * i) * 1024.0);
  }
  TelemetryServer telemetry_server(&sim);
  telemetry_server.CreateFeed(kFuzzFeed, 200 * kMillisecond, 100.0, 5.0);

  // The strategy comes from the registry so the fuzz dimension and the
  // conformance kit cover exactly what production scenarios can select.
  // The reference stack pairs the scenario's strategy with the naive
  // supply model and the full-scan viceroy.
  const std::string strategy_name = scenario.strategy.empty() ? "odyssey" : scenario.strategy;
  StrategyContext context;
  context.sim = &sim;
  context.modulator = &modulator;
  context.supply_kind =
      options.reference_stack ? SupplyModelKind::kNaive : SupplyModelKind::kIncremental;
  std::unique_ptr<BandwidthStrategy> strategy =
      StrategyRegistry::Builtin().Create(strategy_name, std::move(context));
  CentralizedStrategy* strategy_ptr = strategy->audit_surface();
  BandwidthStrategy* strategy_base = strategy.get();
  OdysseyClient client(&sim, &link, std::move(strategy), kUpcallLatency);
  if (options.reference_stack) {
    client.viceroy().set_reevaluate_mode(ReevaluateMode::kFullScan);
  }
  client.InstallWarden(std::make_unique<VideoWarden>(&video_server));
  client.InstallWarden(std::make_unique<WebWarden>(&distillation_server));
  client.InstallWarden(std::make_unique<SpeechWarden>(&janus_server));
  client.InstallWarden(std::make_unique<BitstreamWarden>());
  client.InstallWarden(std::make_unique<FileWarden>(&file_server));
  client.InstallWarden(std::make_unique<TelemetryWarden>(&telemetry_server));
  client.set_retry_policy(RetryPolicy::Default());
  client.set_fault_injector(&injector);
  injector.Arm(BuildFaultPlan(scenario));

  OracleSet oracle(scenario, &sim, &client.viceroy(), strategy_ptr, &link);
  oracle.set_max_audited_connections(options.max_audited_connections);
  client.viceroy().upcalls().set_delivery_observer(
      [&oracle, &result, &options, &sim](AppId app, uint64_t seq, RequestId request,
                                         ResourceId resource, double level, Time posted_at) {
        ++result.upcalls_delivered;
        if (options.differential != nullptr) {
          options.differential->upcalls.push_back(
              UpcallRecord{app, seq, request, resource, level, posted_at, sim.now()});
        }
        oracle.OnUpcallDelivered(app, seq, request, resource, level, posted_at);
#ifdef ODYSSEY_FUZZ_SELFTEST
        if (options.selftest_mutation && seq == 2) {
          // Intentionally seeded defect: the second upcall of every app is
          // observed twice, as if the dispatcher had delivered a duplicate.
          // The upcall-duplicate oracle must catch it and the shrinker must
          // reduce the scenario around it (CI's fuzz-selftest job).
          oracle.OnUpcallDelivered(app, seq, request, resource, level, posted_at);
        }
#else
        (void)options;
#endif
      });
  // The oracle outlives every event (both observers are detached below,
  // before the stack unwinds).
  sim.set_step_observer([&oracle](Time when) { oracle.OnStep(when); });  // ody_lint: owned-capture
  // ody_lint: owned-capture
  sim.set_tie_observer([&oracle](Time when, uint64_t prev_seq, uint64_t seq) {
    oracle.OnTieBreak(when, prev_seq, seq);
  });
#ifdef ODYSSEY_FUZZ_SELFTEST
  if (options.selftest_tiebreak) {
    // Intentionally seeded defect: the queue pops same-timestamp ties
    // newest-first instead of in scheduling order.  The same-time-order
    // oracle must catch it (CI's fuzz-selftest job).
    sim.set_selftest_lifo_ties(true);
  }
#endif

  const Time end = scenario.horizon + options.drain_grace;
  Sampler sampler{&sim,           &oracle, strategy_ptr,         strategy_base,
                  scenario.apps.size(),    options.differential, end,
                  options.oracle_period};
  // The sampler stops rescheduling at |end| and the sim drains before it
  // leaves scope.
  sim.Schedule(options.oracle_period, [&sampler] { sampler.Tick(); });  // ody_lint: owned-capture

  std::vector<std::unique_ptr<FuzzDriver>> drivers;
  drivers.reserve(scenario.apps.size());
  for (size_t i = 0; i < scenario.apps.size(); ++i) {
    drivers.push_back(std::make_unique<FuzzDriver>(&client, &oracle, scenario.apps[i],
                                                   static_cast<int>(i), &result));
    drivers.back()->Start();
  }

  modulator.Replay(BuildTrace(scenario));
  sim.RunUntil(scenario.horizon);
  for (auto& driver : drivers) {
    driver->Stop();
  }
  sim.RunUntil(end);
  oracle.Finish();

  // Detach the observers before the stack unwinds: the oracle borrows the
  // viceroy and link, and no event may fire past this point anyway.
  client.viceroy().upcalls().set_delivery_observer({});
  sim.set_step_observer({});
  sim.set_tie_observer({});

  result.violations = oracle.violations();
  result.violation_count = oracle.violation_count();
  result.tie_pairs_audited = oracle.tie_pairs_audited();
  result.bytes_delivered = link.bytes_delivered();
  return result;
}

}  // namespace odyssey

// Invariant oracles for the simulation fuzzer.
//
// An oracle is an always-on checker attached to a running Odyssey stack that
// records a structured violation when a system-level invariant breaks,
// instead of aborting — the fuzzer wants to harvest every violation in a
// run, attribute it to an oracle by name, and hand the scenario to the
// shrinker.  The oracles audit the contracts the paper's design leans on:
//
//   upcall-order / upcall-duplicate / upcall-lost   exactly-once, in-order
//       per-app delivery (§4.3), observed at the dispatcher;
//   upcall-after-cancel     no delivery for a registration that was
//       successfully cancelled (a cancel that returns ok proves the entry
//       was still in the table, so no upcall was ever posted for it);
//   upcall-window           a delivered level must lie outside the window
//       it was registered with (upcalls fire on violation, never inside);
//   upcall-unknown-request  every delivery maps to a registration the
//       driver made;
//   fair-share              per-connection availability respects the
//       fair-share floor supply/(active+1) and the supply ceiling (§6.2.1);
//   supply-bounds           the supply estimate is finite and non-negative;
//   ewma-bounds             per-connection smoothed estimates are finite
//       and non-negative (rtt strictly positive once observed);
//   byte-conservation       the link never delivers more bytes than the
//       integral of the nominal waveform;
//   clock-monotonicity      event firing times never run backwards;
//   same-time-order         every pair of events fired at an identical
//       virtual timestamp pops in scheduling order — the deterministic
//       (when, seq) tie-break key is a total order and the queue honors
//       it, which is what makes same-instant bursts (batched upcalls,
//       reaction storms to one supply step) replay identically;
//   upcall-stranded         no upcall remains queued after the run drains
//       (no receiver is ever blocked by the fuzzer's drivers).

#ifndef SRC_CHECK_ORACLES_H_
#define SRC_CHECK_ORACLES_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/check/fuzz_scenario.h"
#include "src/core/resource.h"
#include "src/core/viceroy.h"
#include "src/net/link.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"
#include "src/strategies/centralized.h"

namespace odyssey {

// One recorded invariant violation.
struct FuzzViolation {
  std::string oracle;  // which invariant (names above)
  Time at = 0;         // virtual time of detection
  AppId app = 0;       // 0 when not app-scoped
  std::string detail;  // human-readable specifics
};

// Formats violations one per line (for assertion messages and the CLI).
std::string FormatViolations(const std::vector<FuzzViolation>& violations);

class OracleSet {
 public:
  // Caps recorded violations per oracle name; later ones are counted but
  // not stored, so a systematically broken invariant cannot balloon memory.
  static constexpr size_t kMaxRecordedPerOracle = 32;

  // Audits the stack owned by the runner.  All pointers are borrowed and
  // must outlive the oracle set.  |scenario| supplies the nominal waveform
  // for the byte-conservation bound.  |strategy| may be null (fleet nodes
  // running laissez-faire or blind optimism); the supply/fair-share audits
  // are skipped and the strategy-independent oracles still run.
  OracleSet(const FuzzScenario& scenario, Simulation* sim, Viceroy* viceroy,
            CentralizedStrategy* strategy, Link* link);

  OracleSet(const OracleSet&) = delete;
  OracleSet& operator=(const OracleSet&) = delete;

  // --- Hooks wired by the runner ---

  // From UpcallDispatcher's delivery observer.
  void OnUpcallDelivered(AppId app, uint64_t seq, RequestId request, ResourceId resource,
                         double level, Time posted_at);

  // From Simulation's step observer: |when| is the next event's firing time.
  void OnStep(Time when);

  // From the event queue's tie observer: two events fired consecutively at
  // the identical virtual time |when|, scheduled as |prev_seq| then |seq|.
  // The tie-break contract requires prev_seq < seq (FIFO among ties).
  void OnTieBreak(Time when, uint64_t prev_seq, uint64_t seq);

  // Driver bookkeeping: a successful request() / cancel() call.
  void OnWindowRegistered(AppId app, RequestId id, double lower, double upper);
  void OnWindowCancelled(RequestId id);

  // Periodic audit of estimator, fair-share and link-conservation bounds.
  void Sample();

  // Caps how many connections one Sample() audits for the fair-share and
  // ewma bounds (0 = all).  Above the cap, samples audit a rotating window
  // so every connection is still covered across consecutive samples; the
  // tier_scale campaign sets this to keep oracle cost sub-linear in N.
  void set_max_audited_connections(size_t cap) { max_audited_connections_ = cap; }

  // End-of-run audit, after the drain grace period.
  void Finish();

  const std::vector<FuzzViolation>& violations() const { return violations_; }
  // Total violations detected, including ones beyond the recording cap.
  uint64_t violation_count() const { return total_violations_; }
  // Same-timestamp pairs the tie-break auditor examined (violating or not)
  // — the audit's coverage figure, reported by ody_fuzz's totals line.
  uint64_t tie_pairs_audited() const { return tie_pairs_audited_; }

 private:
  struct Window {
    AppId app = 0;
    double lower = 0.0;
    double upper = 0.0;
  };

  void Report(const std::string& oracle, AppId app, std::string detail);

  const FuzzScenario& scenario_;
  Simulation* sim_;
  Viceroy* viceroy_;
  CentralizedStrategy* strategy_;
  Link* link_;

  std::map<AppId, uint64_t> last_seq_;
  std::map<RequestId, Window> registered_;
  std::set<RequestId> cancelled_;
  Time last_event_time_ = 0;
  uint64_t tie_pairs_audited_ = 0;
  double last_bytes_delivered_ = 0.0;
  size_t max_audited_connections_ = 0;
  size_t audit_cursor_ = 0;

  std::vector<FuzzViolation> violations_;
  std::map<std::string, uint64_t> per_oracle_count_;
  uint64_t total_violations_ = 0;
};

}  // namespace odyssey

#endif  // SRC_CHECK_ORACLES_H_

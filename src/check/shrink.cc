#include "src/check/shrink.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <utility>

#include "src/trace/chrome_trace_exporter.h"
#include "src/trace/trace_diff.h"
#include "src/trace/trace_recorder.h"

namespace odyssey {
namespace {

// One shrink attempt bookkeeping: runs the predicate unless the attempt
// budget is exhausted, and accepts the candidate on success.
struct Search {
  const ScenarioPredicate& still_fails;
  int max_attempts;
  int attempts = 0;
  int accepted = 0;

  bool Try(FuzzScenario* current, FuzzScenario candidate) {
    if (attempts >= max_attempts) {
      return false;
    }
    ++attempts;
    if (!still_fails(candidate)) {
      return false;
    }
    ++accepted;
    *current = std::move(candidate);
    return true;
  }
};

// Each pass tries every single-step reduction once, greedily keeping the
// ones that preserve the failure.  Returns whether anything was accepted.
bool ShrinkPass(FuzzScenario* current, Search* search) {
  bool changed = false;

  // Drop whole applications, highest index first so accepted removals do
  // not invalidate the remaining candidates.
  for (size_t i = current->apps.size(); i-- > 0;) {
    FuzzScenario candidate = *current;
    candidate.apps.erase(candidate.apps.begin() + static_cast<ptrdiff_t>(i));
    changed |= search->Try(current, std::move(candidate));
  }

  // Drop individual operations.
  for (size_t i = current->apps.size(); i-- > 0;) {
    for (size_t j = current->apps[i].ops.size(); j-- > 0;) {
      FuzzScenario candidate = *current;
      candidate.apps[i].ops.erase(candidate.apps[i].ops.begin() + static_cast<ptrdiff_t>(j));
      changed |= search->Try(current, std::move(candidate));
    }
  }

  // Drop faults.
  for (size_t i = current->faults.size(); i-- > 0;) {
    FuzzScenario candidate = *current;
    candidate.faults.erase(candidate.faults.begin() + static_cast<ptrdiff_t>(i));
    changed |= search->Try(current, std::move(candidate));
  }

  // Remove waveform segments (keeping at least one so the link is defined).
  for (size_t i = current->segments.size(); i-- > 0 && current->segments.size() > 1;) {
    FuzzScenario candidate = *current;
    candidate.segments.erase(candidate.segments.begin() + static_cast<ptrdiff_t>(i));
    changed |= search->Try(current, std::move(candidate));
  }

  // Flatten: merge each adjacent segment pair into one segment holding the
  // first pair member's parameters for the combined duration.
  for (size_t i = current->segments.size(); i-- > 1;) {
    FuzzScenario candidate = *current;
    candidate.segments[i - 1].duration += candidate.segments[i].duration;
    candidate.segments.erase(candidate.segments.begin() + static_cast<ptrdiff_t>(i));
    changed |= search->Try(current, std::move(candidate));
  }

  // Shorten the horizon (ops past the new horizon become dead weight that
  // the drop-op reduction collects on the next pass).
  if (current->horizon > 2 * kSecond) {
    FuzzScenario candidate = *current;
    const Duration shortened = candidate.horizon * 3 / 4;
    candidate.horizon = std::max<Duration>(2 * kSecond, (shortened / kMillisecond) * kMillisecond);
    if (candidate.horizon < current->horizon) {
      changed |= search->Try(current, std::move(candidate));
    }
  }

  return changed;
}

const char* WardenEnumName(FuzzWardenKind kind) {
  switch (kind) {
    case FuzzWardenKind::kVideo:
      return "FuzzWardenKind::kVideo";
    case FuzzWardenKind::kWeb:
      return "FuzzWardenKind::kWeb";
    case FuzzWardenKind::kSpeech:
      return "FuzzWardenKind::kSpeech";
    case FuzzWardenKind::kBitstream:
      return "FuzzWardenKind::kBitstream";
    case FuzzWardenKind::kFile:
      return "FuzzWardenKind::kFile";
    case FuzzWardenKind::kTelemetry:
      return "FuzzWardenKind::kTelemetry";
  }
  return "FuzzWardenKind::kBitstream";
}

const char* OpEnumName(FuzzOpKind kind) {
  switch (kind) {
    case FuzzOpKind::kRequest:
      return "FuzzOpKind::kRequest";
    case FuzzOpKind::kCancel:
      return "FuzzOpKind::kCancel";
    case FuzzOpKind::kTsop:
      return "FuzzOpKind::kTsop";
  }
  return "FuzzOpKind::kRequest";
}

const char* FaultEnumName(FuzzFaultKind kind) {
  switch (kind) {
    case FuzzFaultKind::kDropProbability:
      return "FuzzFaultKind::kDropProbability";
    case FuzzFaultKind::kDropMessage:
      return "FuzzFaultKind::kDropMessage";
    case FuzzFaultKind::kOutage:
      return "FuzzFaultKind::kOutage";
    case FuzzFaultKind::kLatencySpike:
      return "FuzzFaultKind::kLatencySpike";
    case FuzzFaultKind::kServerStall:
      return "FuzzFaultKind::kServerStall";
    case FuzzFaultKind::kFlowKill:
      return "FuzzFaultKind::kFlowKill";
  }
  return "FuzzFaultKind::kOutage";
}

// Renders a double as a C++ literal that round-trips exactly.
std::string DoubleLiteral(double value) {
  std::ostringstream out;
  out << std::setprecision(17) << value;
  std::string text = out.str();
  if (text.find('.') == std::string::npos && text.find('e') == std::string::npos &&
      text.find("inf") == std::string::npos && text.find("nan") == std::string::npos) {
    text += ".0";
  }
  return text;
}

}  // namespace

ShrinkResult ShrinkWithPredicate(const FuzzScenario& scenario,
                                 const ScenarioPredicate& still_fails, int max_attempts) {
  ShrinkResult result;
  result.minimized = scenario;
  result.initial_elements = scenario.ElementCount();

  Search search{still_fails, max_attempts};
  while (ShrinkPass(&result.minimized, &search)) {
    ++result.rounds;
    if (search.attempts >= max_attempts) {
      break;
    }
  }
  // A fixpoint loop that never accepted anything still ran one pass.
  if (result.rounds == 0) {
    result.rounds = 1;
  }

  result.final_elements = result.minimized.ElementCount();
  result.attempts = search.attempts;
  result.accepted = search.accepted;
  return result;
}

bool HasViolationOf(const FuzzRunResult& result, const std::string& oracle_name) {
  if (oracle_name.empty()) {
    return result.violation_count > 0;
  }
  return std::any_of(result.violations.begin(), result.violations.end(),
                     [&oracle_name](const FuzzViolation& v) { return v.oracle == oracle_name; });
}

ShrinkResult ShrinkFailingScenario(const FuzzScenario& scenario, const std::string& oracle_name,
                                   const FuzzRunOptions& options) {
  const ScenarioPredicate still_fails = [&oracle_name, &options](const FuzzScenario& candidate) {
    return HasViolationOf(RunFuzzScenario(candidate, options), oracle_name);
  };
  return ShrinkWithPredicate(scenario, still_fails);
}

std::string EmitReproSnippet(const FuzzScenario& scenario, const std::string& oracle_name) {
  std::ostringstream out;
  out << "// Minimal reproducer emitted by ody_fuzz";
  if (!oracle_name.empty()) {
    out << " for oracle \"" << oracle_name << "\"";
  }
  out << ".\n";
  out << "// Original seed " << scenario.seed << ", " << scenario.ElementCount()
      << " scenario elements after shrinking.\n";
  out << "// Drop this test next to tests/check_test.cc; it rebuilds the scenario\n";
  out << "// literally and asserts the run is violation-free.\n";
  out << "\n";
  out << "#include <utility>\n";
  out << "\n";
  out << "#include <gtest/gtest.h>\n";
  out << "\n";
  out << "#include \"src/check/fuzz_runner.h\"\n";
  out << "#include \"src/check/fuzz_scenario.h\"\n";
  out << "#include \"src/check/oracles.h\"\n";
  out << "\n";
  out << "namespace odyssey {\n";
  out << "namespace {\n";
  out << "\n";
  out << "TEST(FuzzRepro, Minimized) {\n";
  out << "  FuzzScenario scenario;\n";
  out << "  scenario.seed = " << scenario.seed << "ULL;\n";
  out << "  scenario.horizon = " << scenario.horizon << ";  // "
      << DurationToSeconds(scenario.horizon) << " s\n";
  for (const FuzzSegment& segment : scenario.segments) {
    out << "  scenario.segments.push_back(FuzzSegment{" << segment.duration << ", "
        << DoubleLiteral(segment.bandwidth_bps) << ", " << segment.latency << "});\n";
  }
  for (size_t i = 0; i < scenario.apps.size(); ++i) {
    const FuzzApp& app = scenario.apps[i];
    out << "  {\n";
    out << "    FuzzApp app;\n";
    out << "    app.warden = " << WardenEnumName(app.warden) << ";\n";
    out << "    app.start = " << app.start << ";\n";
    for (const FuzzOp& op : app.ops) {
      out << "    app.ops.push_back(FuzzOp{" << op.at << ", " << OpEnumName(op.kind) << ", "
          << DoubleLiteral(op.window_lo_frac) << ", " << DoubleLiteral(op.window_hi_frac)
          << ", " << op.variant << ", " << DoubleLiteral(op.magnitude) << "});\n";
    }
    out << "    scenario.apps.push_back(std::move(app));\n";
    out << "  }\n";
  }
  for (const FuzzFault& fault : scenario.faults) {
    out << "  scenario.faults.push_back(FuzzFault{" << FaultEnumName(fault.kind) << ", "
        << fault.start << ", " << fault.duration << ", " << fault.extra << ", "
        << DoubleLiteral(fault.p) << ", " << fault.index << "});\n";
  }
  out << "\n";
  out << "  const FuzzRunResult result = RunFuzzScenario(scenario);\n";
  out << "  EXPECT_EQ(result.violation_count, 0u) << FormatViolations(result.violations);\n";
  out << "}\n";
  out << "\n";
  out << "}  // namespace\n";
  out << "}  // namespace odyssey\n";
  return out.str();
}

std::string CanonicalTraceForScenario(const FuzzScenario& scenario,
                                      const FuzzRunOptions& options) {
  TraceRecorder recorder;
  FuzzRunOptions traced = options;
  traced.trace = &recorder;
  (void)RunFuzzScenario(scenario, traced);
  const std::string json = ChromeTraceExporter::ToJson(recorder);
  std::string error;
  const std::vector<std::string> lines = CanonicalizeChromeTrace(json, &error);
  if (!error.empty()) {
    return "canonicalization error: " + error + "\n";
  }
  std::ostringstream out;
  for (const std::string& line : lines) {
    out << line << "\n";
  }
  return out.str();
}

}  // namespace odyssey

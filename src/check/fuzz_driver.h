// The per-application fuzz driver and the scenario->rig translation
// helpers, shared between the single-node runner (fuzz_runner.cc) and the
// fleet runner (src/fleet/fleet_fuzz.cc).
//
// A FuzzDriver drives one fuzzed application: registers it, executes its op
// schedule at the scheduled virtual times, and keeps upcall traffic flowing
// by re-registering a window around the delivered level.  Every decision is
// a pure function of the scenario's op fields — the driver never draws from
// the simulation's random stream — so replays are exact.

#ifndef SRC_CHECK_FUZZ_DRIVER_H_
#define SRC_CHECK_FUZZ_DRIVER_H_

#include <vector>

#include "src/check/fuzz_runner.h"
#include "src/check/fuzz_scenario.h"
#include "src/check/oracles.h"
#include "src/core/odyssey_client.h"
#include "src/net/fault_injector.h"
#include "src/tracemod/replay_trace.h"

namespace odyssey {

// Published objects every scenario can address (variant selects among them).
inline constexpr int kFuzzFiles = 4;
inline constexpr char kFuzzFeed[] = "feed0";

// The scenario's waveform as a replayable modulator trace.
ReplayTrace BuildTrace(const FuzzScenario& scenario);

// The scenario's fault list as an armable plan.  The injector's
// probabilistic stream is rooted in the scenario seed but decoupled from
// both the Simulation and generator streams.
FaultPlan BuildFaultPlan(const FuzzScenario& scenario);

class FuzzDriver {
 public:
  // Cap on upcall-handler re-registrations per app, so a scenario's event
  // cascade is bounded no matter how lively the estimates are.
  static constexpr int kReregisterBudget = 128;

  FuzzDriver(OdysseyClient* client, OracleSet* oracle, const FuzzApp& app, int index,
             FuzzRunResult* result)
      : client_(client), oracle_(oracle), app_(app), index_(index), result_(result) {}

  FuzzDriver(const FuzzDriver&) = delete;
  FuzzDriver& operator=(const FuzzDriver&) = delete;

  void Start();

  // After the horizon the driver goes quiet: scheduled ops and upcall
  // handlers still fire, but take no further action.
  void Stop() { stopped_ = true; }

 private:
  void Execute(const FuzzOp& op);
  void DoRequest(double lo_frac, double hi_frac);
  void DoCancel(int variant);
  void DoTsop(const FuzzOp& op);

  OdysseyClient* client_;
  OracleSet* oracle_;
  const FuzzApp& app_;
  int index_;
  FuzzRunResult* result_;
  AppId app_id_ = 0;
  bool stopped_ = false;
  bool opened_ = false;
  bool streaming_ = false;
  bool subscribed_ = false;
  int reregister_budget_ = kReregisterBudget;
  std::vector<RequestId> outstanding_;
};

}  // namespace odyssey

#endif  // SRC_CHECK_FUZZ_DRIVER_H_

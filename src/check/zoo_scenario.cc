#include "src/check/zoo_scenario.h"

#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "src/check/fuzz_runner.h"
#include "src/check/fuzz_scenario.h"
#include "src/core/contract.h"
#include "src/mobility/radio_environment.h"
#include "src/mobility/waveform_source.h"
#include "src/sim/time.h"
#include "src/strategies/strategy_registry.h"
#include "src/tracemod/replay_trace.h"

namespace odyssey {
namespace {

// Strategy rows of the zoo grid.  |token| is the variant-name prefix and
// matches the fleet_share vocabulary; |registry| is the builtin
// StrategyRegistry name the cell installs.
struct ZooStrategy {
  const char* token;
  const char* registry;
};

constexpr ZooStrategy kZooStrategies[] = {
    {"odyssey", "odyssey"},
    {"laissez", "laissez-faire"},
    {"blind", "blind-optimism"},
    {"cm", "congestion-manager"},
    {"broker", "admission-broker"},
};

// The workload shapes.  Each builds a fully explicit FuzzScenario — no
// generator draws — so every strategy faces the identical op schedule and
// the only degree of freedom per trial is the seed (server randomness, and
// the mobility cell's track).
enum class ZooShape { kSupply, kDemand, kConcurrent, kMobility };

constexpr const char* kShapeNames[] = {"supply", "demand", "concurrent", "mob"};

// A window registration op.  The paper's applications hold windows of
// tolerance around their current level; these fractions mirror the [0.7x,
// 1.3x] bands the agility experiments use.
FuzzOp RequestOp(Time at) {
  FuzzOp op;
  op.at = at;
  op.kind = FuzzOpKind::kRequest;
  op.window_lo_frac = 0.7;
  op.window_hi_frac = 1.3;
  return op;
}

FuzzOp TsopOp(Time at, int variant, double magnitude) {
  FuzzOp op;
  op.at = at;
  op.kind = FuzzOpKind::kTsop;
  op.variant = variant;
  op.magnitude = magnitude;
  return op;
}

FuzzOp CancelOp(Time at, int variant) {
  FuzzOp op;
  op.at = at;
  op.kind = FuzzOpKind::kCancel;
  op.variant = variant;
  return op;
}

// One application: a window registered shortly after start, type-specific
// operations every half second, a mid-life cancel + re-register so the
// request table churns, and a late window for the drain phase to consume.
FuzzApp MakeApp(FuzzWardenKind warden, Time start, Duration active, int salt) {
  FuzzApp app;
  app.warden = warden;
  app.start = start;
  app.ops.push_back(RequestOp(start + 200 * kMillisecond));
  const Time mid = start + active / 2;
  for (Time at = start + 400 * kMillisecond; at < start + active; at += 500 * kMillisecond) {
    app.ops.push_back(TsopOp(at, salt + static_cast<int>(at / (500 * kMillisecond)),
                             0.1 + 0.13 * static_cast<double>(salt % 7)));
  }
  app.ops.push_back(CancelOp(mid, salt));
  app.ops.push_back(RequestOp(mid + 300 * kMillisecond));
  return app;
}

FuzzSegment Segment(Duration duration, double bandwidth_bps) {
  FuzzSegment segment;
  segment.duration = duration;
  segment.bandwidth_bps = bandwidth_bps;
  segment.latency = 10 * kMillisecond;
  return segment;
}

// Fig-8 shape: generous supply, a hard step down to a quarter, a partial
// recovery and a final restoration, against two adaptive consumers.
void BuildSupplyCell(FuzzScenario* scenario) {
  scenario->horizon = 12 * kSecond;
  scenario->segments = {
      Segment(3 * kSecond, 1200.0 * 1024.0),
      Segment(3 * kSecond, 300.0 * 1024.0),
      Segment(3 * kSecond, 700.0 * 1024.0),
      Segment(3 * kSecond, 1200.0 * 1024.0),
  };
  scenario->apps.push_back(MakeApp(FuzzWardenKind::kVideo, 100 * kMillisecond, 11 * kSecond, 1));
  scenario->apps.push_back(MakeApp(FuzzWardenKind::kWeb, 300 * kMillisecond, 11 * kSecond, 2));
}

// Fig-9 shape: constant supply, demand churn — four consumers joining in a
// stagger and leaving early, so the arbiter's per-app shares keep moving
// while the link never does.
void BuildDemandCell(FuzzScenario* scenario) {
  scenario->horizon = 10 * kSecond;
  scenario->segments = {Segment(10 * kSecond, 800.0 * 1024.0)};
  const FuzzWardenKind wardens[] = {FuzzWardenKind::kVideo, FuzzWardenKind::kSpeech,
                                    FuzzWardenKind::kFile, FuzzWardenKind::kTelemetry};
  for (int i = 0; i < 4; ++i) {
    scenario->apps.push_back(MakeApp(wardens[i], (1 + 2 * static_cast<Time>(i)) * kSecond,
                                     (7 - static_cast<Duration>(i)) * kSecond, 3 + i));
  }
}

// Fig-14 shape: all six wardens live at once over a mildly varying
// waveform — the widest concurrency the single-node rig supports, and the
// cell where admission control actually has contention to arbitrate.
void BuildConcurrentCell(FuzzScenario* scenario) {
  scenario->horizon = 10 * kSecond;
  scenario->segments = {
      Segment(4 * kSecond, 900.0 * 1024.0),
      Segment(3 * kSecond, 500.0 * 1024.0),
      Segment(3 * kSecond, 900.0 * 1024.0),
  };
  for (int i = 0; i < kFuzzWardenKinds; ++i) {
    scenario->apps.push_back(MakeApp(static_cast<FuzzWardenKind>(i),
                                     (100 + 150 * static_cast<Time>(i)) * kMillisecond,
                                     9 * kSecond, 10 + i));
  }
}

// Mobility shape: the waveform comes from a pedestrian random-waypoint
// track through a cell grid (DESIGN.md §14), so the zoo covers the shadow
// and cell-edge shapes the hand-built cells never produce.  The track is
// the trial seed's, making this the one cell whose waveform varies across
// trials — deliberately, since agility under motion is the paper's point.
void BuildMobilityCell(FuzzScenario* scenario, uint64_t seed) {
  scenario->horizon = 12 * kSecond;
  MobilityScenarioSpec spec;
  spec.model = MobilityModelKind::kRandomWaypoint;
  spec.layout = BaseStationLayout::kCellGrid;
  spec.speed_scale = 2.0;
  spec.duration = scenario->horizon;
  spec.sample_period = 500 * kMillisecond;
  spec.ensure_live_tail = true;
  const ReplayTrace waveform = MakeMobilityWaveform(spec, seed);
  for (const TraceSegment& segment : waveform.segments()) {
    scenario->segments.push_back(
        FuzzSegment{segment.duration, segment.bandwidth_bps, segment.latency});
  }
  scenario->apps.push_back(
      MakeApp(FuzzWardenKind::kBitstream, 100 * kMillisecond, 11 * kSecond, 20));
  scenario->apps.push_back(MakeApp(FuzzWardenKind::kWeb, 400 * kMillisecond, 11 * kSecond, 21));
}

FuzzScenario BuildCell(ZooShape shape, const std::string& strategy, uint64_t seed) {
  FuzzScenario scenario;
  scenario.seed = seed;
  scenario.strategy = strategy;
  switch (shape) {
    case ZooShape::kSupply:
      BuildSupplyCell(&scenario);
      break;
    case ZooShape::kDemand:
      BuildDemandCell(&scenario);
      break;
    case ZooShape::kConcurrent:
      BuildConcurrentCell(&scenario);
      break;
    case ZooShape::kMobility:
      BuildMobilityCell(&scenario, seed);
      break;
  }
  return scenario;
}

TrialMetrics RunCell(ZooShape shape, const std::string& strategy, uint64_t seed,
                     TraceRecorder* trace) {
  const FuzzScenario scenario = BuildCell(shape, strategy, seed);
  FuzzRunOptions options;
  options.trace = trace;
  const FuzzRunResult result = RunFuzzScenario(scenario, options);
  return TrialMetrics{
      {"oracle_violations", static_cast<double>(result.violation_count),
       MetricDirection::kLowerIsBetter},
      {"upcalls", static_cast<double>(result.upcalls_delivered), MetricDirection::kEither},
      {"requests_granted", static_cast<double>(result.requests_granted),
       MetricDirection::kEither},
      {"requests_denied", static_cast<double>(result.requests_denied), MetricDirection::kEither},
      {"admission_rejects", static_cast<double>(result.admission_rejects),
       MetricDirection::kEither},
      {"cancels_ok", static_cast<double>(result.cancels_ok), MetricDirection::kEither},
      {"bytes_delivered_kb", result.bytes_delivered / 1024.0, MetricDirection::kEither},
  };
}

}  // namespace

void RegisterZooScenarios(ScenarioRegistry* registry) {
  Scenario scenario;
  scenario.name = "strategy_zoo";
  scenario.description =
      "Every registered bandwidth strategy through the supply-step, demand-churn, "
      "six-warden and mobility cells, with all fuzzing oracles on";
  for (const ZooStrategy& strategy : kZooStrategies) {
    // The table must stay in lockstep with the builtin registry: a strategy
    // added there without a zoo row would silently escape the campaign.
    ODY_ASSERT(StrategyRegistry::Builtin().Find(strategy.registry) != nullptr,
               "zoo table references an unregistered strategy");
    for (int s = 0; s < 4; ++s) {
      const ZooShape shape = static_cast<ZooShape>(s);
      const std::string name = std::string(strategy.token) + "_" + kShapeNames[s];
      scenario.variants.push_back(ScenarioVariant{
          name, [shape, registry_name = std::string(strategy.registry)](
                    uint64_t seed, TraceRecorder* trace) {
            return RunCell(shape, registry_name, seed, trace);
          }});
    }
  }
  ODY_ASSERT(scenario.variants.size() ==
                 std::size(kZooStrategies) * std::size(kShapeNames),
             "zoo grid is incomplete");
  const Status status = registry->Register(std::move(scenario));
  ODY_ASSERT(status.ok(), "zoo scenario registration failed");
}

CampaignSpec ZooCampaign() {
  CampaignSpec spec;
  spec.name = "tier_zoo";
  spec.description =
      "strategy zoo: the paper's supply, demand and concurrency comparisons plus mobility "
      "and eight-node fleet cells, swept across every registered strategy";
  // Every strategy_zoo variant (an empty list sweeps all of them, so a new
  // strategy row joins the campaign without touching this spec).
  spec.sweeps.push_back(SweepSpec{"strategy_zoo", {}, 3});
  // The sharded rig: admission control and shared congestion state must
  // compose with cross-node estimate aggregation, not just the local model.
  for (const ZooStrategy& strategy : kZooStrategies) {
    for (const char* wave : {"fixed", "mob"}) {
      spec.sweeps.push_back(
          SweepSpec{"fleet_share", {"n8_" + std::string(strategy.token) + "_" + wave}, 2});
    }
  }
  return spec;
}

}  // namespace odyssey
